// Differential property test for the slot-table EventQueue: drive it and
// a trivially correct reference implementation (linear scan over a flat
// list) through ~10k randomized push/cancel/pop sequences and assert
// identical pop order, cancel outcomes, and size() at every step.  This
// is the contract the engine's determinism rests on — (time, priority,
// FIFO-sequence) delivery must survive any interleaving of cancellations
// with slot recycling.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sim/event_queue.h"

namespace lpfps::sim {
namespace {

/// Naive reference: every operation is a linear scan, which is obviously
/// correct and obviously slow.
class ReferenceQueue {
 public:
  std::uint64_t push(const Event& event) {
    entries_.push_back({event, next_sequence_++, next_id_, false});
    return next_id_++;
  }

  bool cancel(std::uint64_t id) {
    for (auto& entry : entries_) {
      if (entry.id == id && !entry.cancelled) {
        entry.cancelled = true;
        return true;
      }
    }
    return false;
  }

  std::size_t size() const {
    std::size_t live = 0;
    for (const auto& entry : entries_) {
      if (!entry.cancelled) ++live;
    }
    return live;
  }

  bool empty() const { return size() == 0; }

  Event pop() {
    std::size_t best = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].cancelled) continue;
      if (best == entries_.size() || earlier(entries_[i], entries_[best])) {
        best = i;
      }
    }
    const Event event = entries_[best].event;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
    return event;
  }

 private:
  struct Entry {
    Event event;
    std::uint64_t sequence;
    std::uint64_t id;
    bool cancelled;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.event.time != b.event.time) return a.event.time < b.event.time;
    if (a.event.priority != b.event.priority) {
      return a.event.priority < b.event.priority;
    }
    return a.sequence < b.sequence;
  }

  std::vector<Entry> entries_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
};

class EventQueueDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueDiff, IdenticalToReferenceOverRandomSequences) {
  Rng rng(GetParam());
  EventQueue queue;
  ReferenceQueue reference;
  // Parallel id pairs for entries that have been pushed and may or may
  // not still be live — cancels of stale ids must agree too.
  std::vector<std::pair<EventId, std::uint64_t>> issued;

  constexpr int kOps = 10000;
  Time now = 0.0;
  for (int op = 0; op < kOps; ++op) {
    const double r = rng.uniform(0.0, 1.0);
    if (queue.empty() || r < 0.5) {
      Event event;
      // A coarse time grid plus a small priority range forces plenty of
      // exact ties, so the FIFO tiebreak is exercised constantly.
      event.time = now + static_cast<Time>(rng.uniform_int(0, 50));
      event.kind = static_cast<EventKind>(rng.uniform_int(0, 4));
      event.payload = static_cast<std::int32_t>(op);
      event.priority = static_cast<std::int32_t>(rng.uniform_int(0, 2));
      issued.emplace_back(queue.push(event), reference.push(event));
    } else if (r < 0.75 && !issued.empty()) {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(issued.size()) - 1));
      const bool cancelled = queue.cancel(issued[pick].first);
      const bool ref_cancelled = reference.cancel(issued[pick].second);
      ASSERT_EQ(cancelled, ref_cancelled) << "op " << op;
      // Keep the pair around: future cancels of the now-stale id must be
      // a no-op in both implementations.
    } else {
      const Event popped = queue.pop();
      const Event expected = reference.pop();
      ASSERT_DOUBLE_EQ(popped.time, expected.time) << "op " << op;
      ASSERT_EQ(popped.kind, expected.kind) << "op " << op;
      ASSERT_EQ(popped.payload, expected.payload) << "op " << op;
      ASSERT_EQ(popped.priority, expected.priority) << "op " << op;
      if (popped.time > now) now = popped.time;
    }
    ASSERT_EQ(queue.size(), reference.size()) << "op " << op;
    ASSERT_EQ(queue.empty(), reference.empty()) << "op " << op;
    // Bound the stale-id pool so slot recycling gets hit hard: dropping
    // old pairs lets their slots be reissued to later pushes.
    if (issued.size() > 256) {
      issued.erase(issued.begin(),
                   issued.begin() + static_cast<std::ptrdiff_t>(128));
    }
  }

  // Drain: the tail must come out in exactly the reference order too.
  while (!reference.empty()) {
    ASSERT_FALSE(queue.empty());
    const Event popped = queue.pop();
    const Event expected = reference.pop();
    ASSERT_DOUBLE_EQ(popped.time, expected.time);
    ASSERT_EQ(popped.payload, expected.payload);
    ASSERT_EQ(queue.size(), reference.size());
  }
  EXPECT_TRUE(queue.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDiff,
                         ::testing::Values(1u, 7u, 42u, 1999u, 123457u));

}  // namespace
}  // namespace lpfps::sim
