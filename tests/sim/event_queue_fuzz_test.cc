// Randomized differential test: EventQueue against a trivially correct
// reference (ordered multiset with explicit tombstones) across long
// random push/pop/cancel interleavings.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "sim/event_queue.h"

namespace lpfps::sim {
namespace {

struct Reference {
  // (time, priority, sequence) -> id; ordered exactly like EventQueue.
  using Key = std::tuple<Time, std::int32_t, std::uint64_t>;
  std::set<std::pair<Key, EventId>> live;
  std::uint64_t next_sequence = 0;

  Key push(const Event& event, EventId id) {
    const Key key{event.time, event.priority, next_sequence++};
    live.insert({key, id});
    return key;
  }
  bool cancel(EventId id) {
    for (auto it = live.begin(); it != live.end(); ++it) {
      if (it->second == id) {
        live.erase(it);
        return true;
      }
    }
    return false;
  }
  std::pair<Key, EventId> pop() {
    auto it = live.begin();
    const auto result = *it;
    live.erase(it);
    return result;
  }
};

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  EventQueue queue;
  Reference reference;
  std::vector<EventId> issued;

  for (int step = 0; step < 5000; ++step) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.5 || queue.empty()) {
      Event event;
      event.time = static_cast<Time>(rng.uniform_int(0, 200));
      event.priority = static_cast<std::int32_t>(rng.uniform_int(0, 3));
      event.payload = step;
      const EventId id = queue.push(event);
      reference.push(event, id);
      issued.push_back(id);
    } else if (dice < 0.75 && !issued.empty()) {
      const EventId id = issued[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(issued.size()) - 1))];
      EXPECT_EQ(queue.cancel(id), reference.cancel(id)) << "step " << step;
    } else {
      ASSERT_FALSE(queue.empty());
      const auto [key, id] = reference.pop();
      const Event popped = queue.pop();
      EXPECT_EQ(popped.time, std::get<0>(key)) << "step " << step;
      EXPECT_EQ(popped.priority, std::get<1>(key)) << "step " << step;
    }
    ASSERT_EQ(queue.size(), reference.live.size()) << "step " << step;
    if (!queue.empty()) {
      ASSERT_EQ(queue.next_time(),
                std::get<0>(reference.live.begin()->first))
          << "step " << step;
    }
  }

  // Drain and verify global ordering.
  Time last = -1.0;
  while (!queue.empty()) {
    const auto [key, id] = reference.pop();
    const Event popped = queue.pop();
    EXPECT_EQ(popped.time, std::get<0>(key));
    EXPECT_GE(popped.time, last);
    last = popped.time;
  }
  EXPECT_TRUE(reference.live.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1u, 22u, 333u, 4444u));

}  // namespace
}  // namespace lpfps::sim
