#include "sim/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::sim {
namespace {

Segment seg(Time begin, Time end, ProcessorMode mode,
            TaskIndex task = kNoTask, Ratio r0 = 1.0, Ratio r1 = 1.0) {
  Segment s;
  s.begin = begin;
  s.end = end;
  s.mode = mode;
  s.task = task;
  s.ratio_begin = r0;
  s.ratio_end = r1;
  return s;
}

TEST(Trace, DropsZeroLengthSegments) {
  Trace trace;
  trace.add_segment(seg(5.0, 5.0, ProcessorMode::kRunning, 0));
  EXPECT_TRUE(trace.segments().empty());
}

TEST(Trace, MergesAdjacentIdenticalSegments) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0));
  trace.add_segment(seg(5.0, 9.0, ProcessorMode::kRunning, 0));
  ASSERT_EQ(trace.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.segments()[0].end, 9.0);
}

TEST(Trace, DoesNotMergeAcrossTaskChange) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0));
  trace.add_segment(seg(5.0, 9.0, ProcessorMode::kRunning, 1));
  EXPECT_EQ(trace.segments().size(), 2u);
}

TEST(Trace, DoesNotMergeRampSegments) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0, 0.5, 0.5));
  trace.add_segment(seg(5.0, 9.0, ProcessorMode::kRunning, 0, 0.5, 0.8));
  EXPECT_EQ(trace.segments().size(), 2u);
}

TEST(Trace, MergesContinuingRampSegments) {
  // A ramp split by an unrelated decision boundary: same slope (0.02/us),
  // continuous ratio -> one segment.
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0, 0.5, 0.6));
  trace.add_segment(seg(5.0, 10.0, ProcessorMode::kRunning, 0, 0.6, 0.7));
  ASSERT_EQ(trace.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.segments()[0].end, 10.0);
  EXPECT_DOUBLE_EQ(trace.segments()[0].ratio_begin, 0.5);
  EXPECT_DOUBLE_EQ(trace.segments()[0].ratio_end, 0.7);
}

TEST(Trace, DoesNotMergeRampsWithDifferentRates) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0, 0.5, 0.6));
  trace.add_segment(seg(5.0, 10.0, ProcessorMode::kRunning, 0, 0.6, 0.9));
  EXPECT_EQ(trace.segments().size(), 2u);
}

TEST(Trace, DoesNotMergeOpposingRamps) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRamping, kNoTask, 0.5, 0.6));
  trace.add_segment(seg(5.0, 10.0, ProcessorMode::kRamping, kNoTask, 0.6, 0.5));
  EXPECT_EQ(trace.segments().size(), 2u);
}

TEST(Trace, CoalesceSegmentsMatchesRecordTimeMerging) {
  // The canonicalizer applied to a raw (unmerged) list must land on the
  // same segments the record-time writer produces — the property the
  // golden equivalence hashes rely on.
  const std::vector<Segment> raw = {
      seg(0.0, 4.0, ProcessorMode::kRunning, 0),
      seg(4.0, 6.0, ProcessorMode::kRunning, 0),
      seg(6.0, 8.0, ProcessorMode::kRunning, 0, 1.0, 0.8),
      seg(8.0, 10.0, ProcessorMode::kRunning, 0, 0.8, 0.6),
      seg(10.0, 12.0, ProcessorMode::kIdleBusyWait),
  };
  Trace trace;
  for (const Segment& s : raw) trace.add_segment(s);
  const std::vector<Segment> canonical = coalesce_segments(raw);
  ASSERT_EQ(canonical.size(), trace.segments().size());
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_DOUBLE_EQ(canonical[i].begin, trace.segments()[i].begin);
    EXPECT_DOUBLE_EQ(canonical[i].end, trace.segments()[i].end);
    EXPECT_DOUBLE_EQ(canonical[i].ratio_end, trace.segments()[i].ratio_end);
    EXPECT_EQ(canonical[i].mode, trace.segments()[i].mode);
  }
  // Idempotent: a second pass changes nothing.
  const std::vector<Segment> twice = coalesce_segments(canonical);
  EXPECT_EQ(twice.size(), canonical.size());
}

TEST(Trace, ReservePreallocatesWithoutChangingContent) {
  Trace trace;
  trace.reserve(100, 10);
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0));
  EXPECT_EQ(trace.segments().size(), 1u);
  EXPECT_TRUE(trace.jobs().empty());
}

TEST(Trace, RejectsNonContiguousSegments) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0));
  EXPECT_THROW(
      trace.add_segment(seg(6.0, 7.0, ProcessorMode::kIdleBusyWait)),
      std::logic_error);
}

TEST(Trace, RejectsBackwardsSegments) {
  Trace trace;
  EXPECT_THROW(trace.add_segment(seg(5.0, 4.0, ProcessorMode::kRunning, 0)),
               std::logic_error);
}

TEST(Trace, TimeInModeAggregates) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0));
  trace.add_segment(seg(5.0, 7.0, ProcessorMode::kIdleBusyWait));
  trace.add_segment(seg(7.0, 10.0, ProcessorMode::kRunning, 1));
  trace.add_segment(seg(10.0, 20.0, ProcessorMode::kPowerDown));
  EXPECT_DOUBLE_EQ(trace.time_in_mode(ProcessorMode::kRunning), 8.0);
  EXPECT_DOUBLE_EQ(trace.time_in_mode(ProcessorMode::kIdleBusyWait), 2.0);
  EXPECT_DOUBLE_EQ(trace.time_in_mode(ProcessorMode::kPowerDown), 10.0);
  EXPECT_DOUBLE_EQ(trace.running_time(0), 5.0);
  EXPECT_DOUBLE_EQ(trace.running_time(1), 3.0);
}

TEST(Trace, MissedJobsFilter) {
  Trace trace;
  JobRecord ok;
  ok.task = 0;
  ok.finished = true;
  trace.add_job(ok);
  JobRecord missed;
  missed.task = 1;
  missed.finished = true;
  missed.missed_deadline = true;
  trace.add_job(missed);
  ASSERT_EQ(trace.missed_jobs().size(), 1u);
  EXPECT_EQ(trace.missed_jobs()[0].task, 1);
}

TEST(Trace, CheckInvariantsAcceptsWellFormed) {
  Trace trace;
  trace.add_segment(seg(0.0, 5.0, ProcessorMode::kRunning, 0));
  trace.add_segment(seg(5.0, 7.0, ProcessorMode::kIdleBusyWait));
  EXPECT_NO_THROW(trace.check_invariants());
}

TEST(GanttRender, PaintsTaskRows) {
  Trace trace;
  trace.add_segment(seg(0.0, 50.0, ProcessorMode::kRunning, 0));
  trace.add_segment(seg(50.0, 80.0, ProcessorMode::kRunning, 1, 0.5, 0.5));
  trace.add_segment(seg(80.0, 100.0, ProcessorMode::kPowerDown));
  const std::string art =
      render_gantt(trace, {"tau1", "tau2"}, 0.0, 100.0, 50);
  EXPECT_NE(art.find("tau1"), std::string::npos);
  EXPECT_NE(art.find("tau2"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);  // Full-speed run.
  EXPECT_NE(art.find('o'), std::string::npos);  // Scaled run.
  EXPECT_NE(art.find('_'), std::string::npos);  // Power-down.
}

TEST(SegmentRender, ListsSegments) {
  Trace trace;
  trace.add_segment(seg(0.0, 50.0, ProcessorMode::kRunning, 0));
  const std::string text = render_segments(trace, {"tau1"});
  EXPECT_NE(text.find("run"), std::string::npos);
  EXPECT_NE(text.find("tau1"), std::string::npos);
}

TEST(JobRecord, ResponseTime) {
  JobRecord job;
  job.release = 100.0;
  job.completion = 130.0;
  EXPECT_DOUBLE_EQ(job.response_time(), 30.0);
}

}  // namespace
}  // namespace lpfps::sim
