#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace lpfps::sim {
namespace {

Event at(Time t, EventKind kind = EventKind::kTaskRelease,
         std::int32_t payload = 0, std::int32_t priority = 0) {
  return Event{t, kind, payload, priority};
}

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(at(30.0));
  queue.push(at(10.0));
  queue.push(at(20.0));
  EXPECT_DOUBLE_EQ(queue.pop().time, 10.0);
  EXPECT_DOUBLE_EQ(queue.pop().time, 20.0);
  EXPECT_DOUBLE_EQ(queue.pop().time, 30.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TieBrokenByPriorityThenFifo) {
  EventQueue queue;
  queue.push(at(5.0, EventKind::kTaskRelease, 1, /*priority=*/2));
  queue.push(at(5.0, EventKind::kCompletion, 2, /*priority=*/0));
  queue.push(at(5.0, EventKind::kTaskRelease, 3, /*priority=*/2));
  EXPECT_EQ(queue.pop().payload, 2);  // Lowest priority value first.
  EXPECT_EQ(queue.pop().payload, 1);  // FIFO among equals.
  EXPECT_EQ(queue.pop().payload, 3);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  queue.push(at(1.0, EventKind::kTaskRelease, 1));
  const EventId id = queue.push(at(2.0, EventKind::kTaskRelease, 2));
  queue.push(at(3.0, EventKind::kTaskRelease, 3));
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().payload, 1);
  EXPECT_EQ(queue.pop().payload, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelHeadEvent) {
  EventQueue queue;
  const EventId id = queue.push(at(1.0, EventKind::kTaskRelease, 1));
  queue.push(at(2.0, EventKind::kTaskRelease, 2));
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
}

TEST(EventQueue, DoubleCancelIsNoOp) {
  EventQueue queue;
  const EventId id = queue.push(at(1.0));
  queue.push(at(2.0));
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, CancelAfterPopIsNoOp) {
  EventQueue queue;
  const EventId id = queue.push(at(1.0));
  queue.push(at(2.0));
  (void)queue.pop();
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_EQ(queue.size(), 1u);  // Live count untouched.
}

TEST(EventQueue, CancelUnknownIdThrows) {
  EventQueue queue;
  queue.push(at(1.0));
  EXPECT_THROW(queue.cancel(999), std::logic_error);
}

TEST(EventQueue, PeekDoesNotRemove) {
  EventQueue queue;
  queue.push(at(4.0, EventKind::kTimerExpire));
  EXPECT_EQ(queue.peek().kind, EventKind::kTimerExpire);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW(queue.pop(), std::logic_error);
}

TEST(EventQueue, StressManyEventsOrdered) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 999; i >= 0; --i) {
    ids.push_back(queue.push(at(static_cast<Time>(i % 100), EventKind::kTaskRelease, i)));
  }
  // Cancel every third event.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (queue.cancel(ids[i])) ++cancelled;
  }
  EXPECT_EQ(queue.size(), 1000u - cancelled);
  Time last = -1.0;
  while (!queue.empty()) {
    const Event event = queue.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
  }
}

TEST(EventQueue, CanonicalEventsIsSortedAndNonDestructive) {
  EventQueue queue;
  queue.push(at(30.0, EventKind::kCompletion, 2));
  queue.push(at(10.0, EventKind::kTaskRelease, 0));
  queue.push(at(20.0, EventKind::kTaskRelease, 1));
  queue.push(at(10.0, EventKind::kCompletion, 3));
  const std::vector<Event> events = queue.canonical_events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  EXPECT_DOUBLE_EQ(events.front().time, 10.0);
  EXPECT_DOUBLE_EQ(events.back().time, 30.0);
  // The heap itself is untouched: popping still drains everything in
  // order after the canonical snapshot.
  EXPECT_EQ(queue.size(), 4u);
  Time last = -1.0;
  while (!queue.empty()) {
    const Event event = queue.pop();
    EXPECT_GE(event.time, last);
    last = event.time;
  }
}

TEST(EventDescribe, MentionsKindAndTime) {
  const std::string text = describe(at(12.0, EventKind::kCompletion, 3));
  EXPECT_NE(text.find("completion"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
  EXPECT_NE(text.find("task=3"), std::string::npos);
}

}  // namespace
}  // namespace lpfps::sim
