#include "faults/faults.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace lpfps::faults {
namespace {

TEST(OverrunFault, EnabledNeedsBothProbabilityAndMagnitude) {
  EXPECT_FALSE(OverrunFault{}.enabled());
  EXPECT_FALSE((OverrunFault{0.5, 0.0}).enabled());
  EXPECT_FALSE((OverrunFault{0.0, 0.5}).enabled());
  EXPECT_TRUE((OverrunFault{0.5, 0.5}).enabled());
}

TEST(OverrunFault, ValidateRejectsOutOfDomainParameters) {
  EXPECT_NO_THROW((OverrunFault{0.0, 0.0}).validate());
  EXPECT_NO_THROW((OverrunFault{1.0, 2.0}).validate());
  EXPECT_THROW((OverrunFault{-0.1, 0.5}).validate(), std::logic_error);
  EXPECT_THROW((OverrunFault{1.1, 0.5}).validate(), std::logic_error);
  EXPECT_THROW((OverrunFault{0.5, -0.5}).validate(), std::logic_error);
}

TEST(RampFault, EnabledOnlyWhenSlowerThanSpec) {
  EXPECT_FALSE(RampFault{}.enabled());
  EXPECT_FALSE((RampFault{1.0}).enabled());
  EXPECT_TRUE((RampFault{0.5}).enabled());
  EXPECT_THROW((RampFault{0.0}).validate(), std::logic_error);
  EXPECT_THROW((RampFault{1.5}).validate(), std::logic_error);
  EXPECT_NO_THROW((RampFault{0.25}).validate());
}

TEST(WakeupFault, EnabledNeedsProbabilityAndDelay) {
  EXPECT_FALSE(WakeupFault{}.enabled());
  EXPECT_TRUE((WakeupFault{0.3, 5.0}).enabled());
  EXPECT_THROW((WakeupFault{1.5, 5.0}).validate(), std::logic_error);
  EXPECT_THROW((WakeupFault{0.5, -1.0}).validate(), std::logic_error);
}

TEST(FaultPlan, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.overruns_enabled());
  EXPECT_NO_THROW(plan.validate(3));
  // The resolved spec for any task is disabled.
  EXPECT_FALSE(plan.overrun_for(0).enabled());
  EXPECT_FALSE(plan.overrun_for(7).enabled());
}

TEST(FaultPlan, SingleEntryBroadcastsToEveryTask) {
  FaultPlan plan;
  plan.overruns = {{0.5, 1.0}};
  EXPECT_TRUE(plan.overruns_enabled());
  EXPECT_TRUE(plan.any());
  EXPECT_NO_THROW(plan.validate(4));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(plan.overrun_for(i).probability, 0.5);
    EXPECT_DOUBLE_EQ(plan.overrun_for(i).magnitude, 1.0);
  }
}

TEST(FaultPlan, PerTaskEntriesResolveByIndex) {
  FaultPlan plan;
  plan.overruns = {{0.0, 0.0}, {1.0, 0.25}, {0.5, 0.5}};
  EXPECT_NO_THROW(plan.validate(3));
  EXPECT_FALSE(plan.overrun_for(0).enabled());
  EXPECT_DOUBLE_EQ(plan.overrun_for(1).magnitude, 0.25);
  EXPECT_DOUBLE_EQ(plan.overrun_for(2).probability, 0.5);
}

TEST(FaultPlan, ValidateRejectsMismatchedOverrunCount) {
  FaultPlan plan;
  plan.overruns = {{0.5, 0.5}, {0.5, 0.5}};
  EXPECT_NO_THROW(plan.validate(2));
  EXPECT_THROW(plan.validate(3), std::logic_error);
  EXPECT_THROW(plan.validate(1), std::logic_error);
}

TEST(ContainmentPolicy, EnabledByActionOrFallback) {
  EXPECT_FALSE(ContainmentPolicy{}.enabled());
  ContainmentPolicy kill;
  kill.on_overrun = OverrunAction::kKill;
  EXPECT_TRUE(kill.enabled());
  ContainmentPolicy safe;
  safe.safe_mode_fallback = true;
  EXPECT_TRUE(safe.enabled());
}

TEST(OverrunAction, ToStringNamesEveryAction) {
  EXPECT_EQ(std::string(to_string(OverrunAction::kNone)), "none");
  EXPECT_EQ(std::string(to_string(OverrunAction::kThrottle)), "throttle");
  EXPECT_EQ(std::string(to_string(OverrunAction::kKill)), "kill");
}

}  // namespace
}  // namespace lpfps::faults
