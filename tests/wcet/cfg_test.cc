#include "wcet/cfg.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::wcet {
namespace {

TEST(Cfg, SingleBlock) {
  const Bounds b = analyze(block("body", 42));
  EXPECT_EQ(b.best, 42);
  EXPECT_EQ(b.worst, 42);
  EXPECT_DOUBLE_EQ(b.ratio(), 1.0);
}

TEST(Cfg, SequenceAddsCosts) {
  const Bounds b = analyze(seq({block("a", 10), block("b", 20), block("c", 5)}));
  EXPECT_EQ(b.best, 35);
  EXPECT_EQ(b.worst, 35);
}

TEST(Cfg, BranchTakesExtremes) {
  const Bounds b = analyze(branch(2, block("cheap", 5), block("dear", 50)));
  EXPECT_EQ(b.best, 7);    // Condition + cheap arm.
  EXPECT_EQ(b.worst, 52);  // Condition + dear arm.
}

TEST(Cfg, BranchWithoutElse) {
  const Bounds b = analyze(branch(3, block("then", 10), nullptr));
  EXPECT_EQ(b.best, 3);
  EXPECT_EQ(b.worst, 13);
}

TEST(Cfg, LoopMultipliesBodyByIterationBounds) {
  const Bounds b = analyze(loop(2, 10, 1, block("body", 7)));
  EXPECT_EQ(b.best, 2 * 8 + 1);
  EXPECT_EQ(b.worst, 10 * 8 + 1);
}

TEST(Cfg, ZeroIterationLoopCostsOnlyExitTest) {
  const Bounds b = analyze(loop(0, 0, 4, block("never", 100)));
  EXPECT_EQ(b.best, 4);
  EXPECT_EQ(b.worst, 4);
}

TEST(Cfg, NestedLoops) {
  const Bounds b = analyze(loop(2, 2, 0, loop(3, 3, 0, block("inner", 5))));
  EXPECT_EQ(b.best, 30);
  EXPECT_EQ(b.worst, 30);
}

TEST(Cfg, BcetNeverExceedsWcet) {
  // Structural property on a deep mixed program.
  const NodePtr program = seq({
      block("prologue", 12),
      loop(1, 8, 2, branch(1, block("fast", 3), block("slow", 17))),
      branch(2, nullptr, loop(0, 4, 1, block("tail", 6))),
  });
  const Bounds b = analyze(program);
  EXPECT_LE(b.best, b.worst);
  EXPECT_GT(b.best, 0);
}

TEST(Cfg, RatioComputation) {
  Bounds b{25, 100};
  EXPECT_DOUBLE_EQ(b.ratio(), 0.25);
  Bounds zero{0, 0};
  EXPECT_DOUBLE_EQ(zero.ratio(), 1.0);
}

TEST(Cfg, RejectsInvalidConstruction) {
  EXPECT_THROW(block("neg", -1), std::logic_error);
  EXPECT_THROW(loop(5, 2, 0, block("b", 1)), std::logic_error);
  EXPECT_THROW(loop(0, 2, 0, nullptr), std::logic_error);
  EXPECT_THROW(analyze(nullptr), std::logic_error);
  EXPECT_THROW(seq({nullptr}), std::logic_error);
}

TEST(Cfg, DescribeShowsStructure) {
  const NodePtr program =
      seq({block("init", 1), loop(1, 4, 1, block("body", 2))});
  const std::string text = program->describe(0);
  EXPECT_NE(text.find("seq"), std::string::npos);
  EXPECT_NE(text.find("loop [1..4]"), std::string::npos);
  EXPECT_NE(text.find("block init"), std::string::npos);
}

}  // namespace
}  // namespace lpfps::wcet
