#include "wcet/benchmarks.h"

#include <gtest/gtest.h>

#include <set>

namespace lpfps::wcet {
namespace {

TEST(BenchmarkSuite, HasAtLeastADozenPrograms) {
  EXPECT_GE(benchmark_suite().size(), 12u);
}

TEST(BenchmarkSuite, NamesAreUnique) {
  std::set<std::string> names;
  for (const BenchmarkProgram& program : benchmark_suite()) {
    EXPECT_TRUE(names.insert(program.name).second) << program.name;
  }
}

TEST(BenchmarkSuite, AllAnalyzable) {
  for (const BenchmarkProgram& program : benchmark_suite()) {
    const Bounds b = analyze(program.program);
    EXPECT_GT(b.best, 0) << program.name;
    EXPECT_GE(b.worst, b.best) << program.name;
  }
}

TEST(BenchmarkSuite, RatiosSpanTheFigure1Range) {
  // The suite must cover both strongly data-dependent programs (low
  // BCET/WCET, like Ernst & Ye's sorting/searching examples) and fixed
  // kernels (ratio 1.0), with spread in between.
  double min_ratio = 1.0;
  double max_ratio = 0.0;
  int middle = 0;
  for (const BenchmarkProgram& program : benchmark_suite()) {
    const double r = analyze(program.program).ratio();
    min_ratio = std::min(min_ratio, r);
    max_ratio = std::max(max_ratio, r);
    if (r > 0.3 && r < 0.95) ++middle;
  }
  EXPECT_LT(min_ratio, 0.25);
  EXPECT_GT(max_ratio, 0.99);
  EXPECT_GE(middle, 2);
}

TEST(BenchmarkSuite, FixedKernelsHaveRatioOne) {
  for (const BenchmarkProgram& program : benchmark_suite()) {
    if (program.name == "dct_8x8" || program.name == "fir_filter" ||
        program.name == "fft_radix2") {
      EXPECT_DOUBLE_EQ(analyze(program.program).ratio(), 1.0)
          << program.name;
    }
  }
}

TEST(BenchmarkSuite, SortingIsStronglyDataDependent) {
  for (const BenchmarkProgram& program : benchmark_suite()) {
    if (program.archetype == "sorting" ||
        program.archetype == "searching") {
      EXPECT_LT(analyze(program.program).ratio(), 0.7) << program.name;
    }
  }
}

}  // namespace
}  // namespace lpfps::wcet
