// wcet/scaling.h — the non-ideal WCET-vs-frequency model.
#include "wcet/scaling.h"

#include <gtest/gtest.h>

#include "sched/priority.h"
#include "sched/task_set.h"

namespace lpfps::wcet {
namespace {

TEST(ScalingModel, IdealRecoversOneOverF) {
  const FrequencyScalingModel ideal = FrequencyScalingModel::ideal();
  EXPECT_DOUBLE_EQ(ideal.stretch(0.5), 2.0);
  EXPECT_DOUBLE_EQ(ideal.stretch(0.25), 4.0);
  EXPECT_DOUBLE_EQ(ideal.scaled_wcet(10.0, 0.5), 20.0);
}

TEST(ScalingModel, StretchIsExactlyOneAtFullSpeed) {
  // Bitwise 1.0 at ratio 1 for every beta — the admission service's
  // "top level == base set" identity rests on this.
  for (const double beta : {0.0, 0.15, 0.5, 0.99, 1.0}) {
    const FrequencyScalingModel model{beta};
    EXPECT_EQ(model.stretch(1.0), 1.0) << "beta=" << beta;
    EXPECT_EQ(model.scaled_wcet(12.75, 1.0), 12.75) << "beta=" << beta;
  }
}

TEST(ScalingModel, MemoryBoundFractionDoesNotScale) {
  // beta = 0.4: at half speed the compute 60% doubles, the memory 40%
  // stays put: stretch = 0.6*2 + 0.4 = 1.6.
  const FrequencyScalingModel model{0.4};
  EXPECT_DOUBLE_EQ(model.stretch(0.5), 1.6);
  // Fully memory-bound: the clock is irrelevant.
  const FrequencyScalingModel bound{1.0};
  EXPECT_DOUBLE_EQ(bound.stretch(0.1), 1.0);
}

TEST(ScalingModel, NonIdealStretchesLessThanIdeal) {
  const FrequencyScalingModel ideal = FrequencyScalingModel::ideal();
  const FrequencyScalingModel real{0.3};
  for (const double r : {0.1, 0.3, 0.5, 0.9}) {
    EXPECT_LT(real.stretch(r), ideal.stretch(r)) << "ratio=" << r;
    EXPECT_GT(real.stretch(r), 1.0) << "ratio=" << r;
  }
}

TEST(ScalingModel, MinRatioForBudgetInvertsScaledWcet) {
  const FrequencyScalingModel model{0.25};
  const auto ratio = model.min_ratio_for_budget(10.0, 16.0);
  ASSERT_TRUE(ratio.has_value());
  EXPECT_NEAR(model.scaled_wcet(10.0, *ratio), 16.0, 1e-9);
  // Budget below the non-scaling floor (beta * C) is unreachable...
  EXPECT_FALSE(model.min_ratio_for_budget(10.0, 2.0).has_value());
  // ...and a budget below C needs r > 1: also unreachable.
  EXPECT_FALSE(model.min_ratio_for_budget(10.0, 9.0).has_value());
  // Budget == C is met exactly at full speed.
  const auto exact = model.min_ratio_for_budget(10.0, 10.0);
  ASSERT_TRUE(exact.has_value());
  EXPECT_DOUBLE_EQ(*exact, 1.0);
}

TEST(ScalingModel, ValidateRejectsOutOfRangeBeta) {
  EXPECT_THROW(FrequencyScalingModel{-0.1}.validate(), std::logic_error);
  EXPECT_THROW(FrequencyScalingModel{1.1}.validate(), std::logic_error);
  FrequencyScalingModel{0.0}.validate();
  FrequencyScalingModel{1.0}.validate();
}

sched::TaskSet two_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 20.0));
  tasks.add(sched::make_task("b", 200, 60.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(ScaledTaskSet, StretchesWcetAndBcetOnly) {
  const sched::TaskSet base = two_tasks();
  const FrequencyScalingModel model{0.5};
  const auto scaled = scaled_task_set(base, model, 0.5);
  ASSERT_TRUE(scaled.has_value());
  ASSERT_EQ(scaled->size(), 2u);
  // stretch(0.5) at beta 0.5 = 1 + 0.5*(2-1) = 1.5.
  EXPECT_DOUBLE_EQ((*scaled)[0].wcet, 30.0);
  EXPECT_DOUBLE_EQ((*scaled)[1].wcet, 90.0);
  EXPECT_EQ((*scaled)[0].period, 100);
  EXPECT_EQ((*scaled)[0].deadline, 100);
  EXPECT_EQ((*scaled)[0].priority, base[0].priority);
  EXPECT_LE((*scaled)[0].bcet, (*scaled)[0].wcet);
}

TEST(ScaledTaskSet, FullSpeedIsBitIdentical) {
  const sched::TaskSet base = two_tasks();
  const auto scaled =
      scaled_task_set(base, FrequencyScalingModel{0.3}, 1.0);
  ASSERT_TRUE(scaled.has_value());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ((*scaled)[static_cast<TaskIndex>(i)].wcet,
              base[static_cast<TaskIndex>(i)].wcet);
    EXPECT_EQ((*scaled)[static_cast<TaskIndex>(i)].bcet,
              base[static_cast<TaskIndex>(i)].bcet);
  }
}

TEST(ScaledTaskSet, OverrunningDeadlineYieldsNullopt) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("tight", 100, 60.0));  // D = T = 100.
  sched::assign_rate_monotonic(tasks);
  // Ideal stretch at 0.5 doubles the WCET to 120 > 100.
  EXPECT_FALSE(
      scaled_task_set(tasks, FrequencyScalingModel::ideal(), 0.5).has_value());
  // A mostly memory-bound task still fits: stretch = 1 + 0.2*1 = 1.2.
  EXPECT_TRUE(
      scaled_task_set(tasks, FrequencyScalingModel{0.8}, 0.5).has_value());
}

}  // namespace
}  // namespace lpfps::wcet
