// The paper's §4 experimental claims, asserted as tests (DESIGN.md §6).
//
// Absolute numbers depend on the authors' exact workload tables, which
// the paper does not print; what must reproduce is the *shape*:
//  1. LPFPS <= FPS everywhere;
//  2. normalized power falls as BCET/WCET falls;
//  3. LPFPS wins even at BCET == WCET (static slack alone);
//  4. INS shows the deepest reduction, approaching the paper's 62%;
//  5. r_heu >= r_opt (Theorem 1) — covered in core/speed_ratio_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "metrics/experiment.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

using metrics::SweepConfig;
using metrics::SweepPoint;

/// One shared sweep per workload (expensive); computed lazily.
const std::map<std::string, std::vector<SweepPoint>>& sweeps() {
  static const auto* result = [] {
    auto* map = new std::map<std::string, std::vector<SweepPoint>>();
    for (const workloads::Workload& w : workloads::paper_workloads()) {
      SweepConfig config;
      config.bcet_ratios = {0.1, 0.3, 0.5, 0.7, 1.0};
      config.seeds = 3;
      config.horizon = std::min(w.horizon, 5e6);
      (*map)[w.name] = metrics::run_bcet_sweep(
          w.tasks, power::ProcessorConfig::arm8_default(),
          core::SchedulerPolicy::lpfps(), config);
    }
    return map;
  }();
  return *result;
}

TEST(PaperClaims, LpfpsNeverExceedsFpsPower) {
  for (const auto& [name, points] : sweeps()) {
    for (const SweepPoint& p : points) {
      EXPECT_LE(p.normalized, 1.0 + 1e-9)
          << name << " at BCET/WCET=" << p.bcet_ratio;
    }
  }
}

TEST(PaperClaims, SavingsGrowAsExecutionTimesShrink) {
  // Figure 8's dominant trend.  Sampling noise can wiggle single
  // adjacent points, so require the endpoints to be well ordered and
  // the sequence to be near-monotone.
  for (const auto& [name, points] : sweeps()) {
    ASSERT_GE(points.size(), 2u);
    EXPECT_LT(points.front().normalized, points.back().normalized - 0.02)
        << name;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      EXPECT_LE(points[i].normalized, points[i + 1].normalized + 0.03)
          << name << " between " << points[i].bcet_ratio << " and "
          << points[i + 1].bcet_ratio;
    }
  }
}

TEST(PaperClaims, LpfpsWinsEvenAtWorstCaseExecution) {
  // "Even when the BCET equals the WCET ... LPFPS obtains a higher power
  // reduction than FPS" — the static-slack effect.
  for (const auto& [name, points] : sweeps()) {
    const SweepPoint& at_wcet = points.back();
    ASSERT_DOUBLE_EQ(at_wcet.bcet_ratio, 1.0);
    EXPECT_LT(at_wcet.normalized, 0.995) << name;
  }
}

TEST(PaperClaims, InsShowsTheDeepestReduction) {
  // Paper §4: INS peaks at ~62% reduction because a single high-rate
  // task dominates its utilization.  The paper's FPS reference is the
  // WCET-utilization baseline ("for FPS, the average power consumption
  // is proportional to processor utilization sum C_i/T_i"), so the 62%
  // figure reads on reduction_vs_wcet_pct.
  double ins_best = 0.0;
  double others_best = 0.0;
  for (const auto& [name, points] : sweeps()) {
    double best = 0.0;
    for (const SweepPoint& p : points) {
      best = std::max(best, p.reduction_vs_wcet_pct);
    }
    if (name == "INS") {
      ins_best = best;
    } else {
      others_best = std::max(others_best, best);
    }
  }
  EXPECT_GT(ins_best, others_best);
  EXPECT_GT(ins_best, 55.0);  // Paper: up to 62%.
  EXPECT_LT(ins_best, 75.0);  // Sanity: not implausibly deep.
}

TEST(PaperClaims, FpsPowerTracksUtilizationButLpfpsDoesNot) {
  // §4's observation: FPS average power is ~proportional to utilization
  // across applications, while LPFPS's is reshaped by the load skew
  // (INS consumes relatively little despite the second-largest U).
  std::map<std::string, double> util;
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    util[w.name] = w.tasks.utilization();
  }
  // FPS at BCET==WCET: power ordering must follow utilization ordering.
  std::vector<std::pair<double, double>> fps_by_util;
  for (const auto& [name, points] : sweeps()) {
    fps_by_util.emplace_back(util.at(name), points.back().fps_power);
  }
  std::sort(fps_by_util.begin(), fps_by_util.end());
  for (std::size_t i = 0; i + 1 < fps_by_util.size(); ++i) {
    EXPECT_LE(fps_by_util[i].second, fps_by_util[i + 1].second + 1e-9);
  }
  // LPFPS at low BCET: INS must consume less than Flight control even
  // though INS's utilization is similar/higher.
  const double ins_low = sweeps().at("INS").front().policy_power;
  const double flight_low =
      sweeps().at("Flight control").front().policy_power;
  EXPECT_LT(ins_low, flight_low);
}

TEST(PaperClaims, ReductionPercentagesInPlausibleBand) {
  // Every workload saves something substantial at BCET/WCET = 0.1; none
  // saves more than the physical floor allows.
  for (const auto& [name, points] : sweeps()) {
    const SweepPoint& deepest = points.front();
    EXPECT_GT(deepest.reduction_pct, 15.0) << name;
    EXPECT_LT(deepest.reduction_pct, 90.0) << name;
  }
}

}  // namespace
}  // namespace lpfps
