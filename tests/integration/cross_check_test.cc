// Cross-validation between independent implementations:
//  * the power-aware engine with everything disabled (FPS policy) must
//    produce byte-identical schedules to the simple reference kernel;
//  * EDF and FPS must agree on total work and idle time per hyperperiod
//    (both are work-conserving);
//  * analytic FPS power formula vs the engine, on all four workloads.
#include <gtest/gtest.h>

#include <functional>

#include "core/engine.h"
#include "sched/edf.h"
#include "sched/kernel.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

using core::EngineOptions;
using core::SchedulerPolicy;
using core::SimulationResult;
using sim::ProcessorMode;

class CrossCheck : public ::testing::TestWithParam<std::string> {
 protected:
  workloads::Workload workload() const {
    return workloads::workload_by_name(GetParam());
  }
  /// Test horizon: capped for speed, still several thousand jobs.
  Time horizon() const { return std::min(workload().horizon, 5e6); }
};

TEST_P(CrossCheck, EngineFpsMatchesReferenceKernelSchedule) {
  const workloads::Workload w = workload();
  EngineOptions options;
  options.horizon = horizon();
  options.record_trace = true;
  const SimulationResult engine_result =
      core::simulate(w.tasks, power::ProcessorConfig::arm8_default(),
                     SchedulerPolicy::fps(), nullptr, options);

  sched::FixedPriorityKernel kernel(w.tasks);
  const sched::KernelResult kernel_result = kernel.run(options.horizon);

  ASSERT_TRUE(engine_result.trace.has_value());
  const auto& a = engine_result.trace->segments();
  const auto& b = kernel_result.trace.segments();
  ASSERT_EQ(a.size(), b.size()) << w.name;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].begin, b[i].begin, 1e-6) << w.name << " seg " << i;
    ASSERT_NEAR(a[i].end, b[i].end, 1e-6) << w.name << " seg " << i;
    ASSERT_EQ(a[i].task, b[i].task) << w.name << " seg " << i;
    ASSERT_EQ(a[i].mode, b[i].mode) << w.name << " seg " << i;
  }
  EXPECT_EQ(engine_result.context_switches, kernel_result.context_switches);
}

TEST_P(CrossCheck, EngineMatchesKernelUnderRandomExecutionTimes) {
  // Same check with varying execution times: both simulators are driven
  // by the same deterministic (task, instance) -> time function, so
  // their schedules must still be identical.
  const workloads::Workload w = workload();
  const sched::TaskSet varied = w.tasks.with_bcet_ratio(0.3);

  const auto pseudo_time = [&varied](TaskIndex task,
                                     std::int64_t instance) -> Work {
    const sched::Task& t = varied[task];
    // Deterministic hash -> fraction in [0, 1).
    std::uint64_t h = static_cast<std::uint64_t>(task) * 1000003u +
                      static_cast<std::uint64_t>(instance) * 29u + 17u;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    const double fraction =
        static_cast<double>(h % 100000u) / 100000.0;
    return t.bcet + fraction * (t.wcet - t.bcet);
  };

  /// Exec model adapter replaying the same function for the engine.
  class PseudoModel final : public exec::ExecutionTimeModel {
   public:
    PseudoModel(const sched::TaskSet& tasks,
                std::function<Work(TaskIndex, std::int64_t)> fn)
        : tasks_(tasks), fn_(std::move(fn)), next_(tasks.size(), 0) {}
    Work sample(const sched::Task& task, Rng&) const override {
      for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size());
           ++i) {
        if (tasks_[i].name == task.name) {
          return fn_(i, next_[static_cast<std::size_t>(i)]++);
        }
      }
      return task.wcet;
    }
    std::string name() const override { return "pseudo"; }

   private:
    const sched::TaskSet& tasks_;
    std::function<Work(TaskIndex, std::int64_t)> fn_;
    mutable std::vector<std::int64_t> next_;
  };

  EngineOptions options;
  options.horizon = std::min(horizon(), 2e6);
  options.record_trace = true;
  const SimulationResult engine_result = core::simulate(
      varied, power::ProcessorConfig::arm8_default(),
      SchedulerPolicy::fps(),
      std::make_shared<PseudoModel>(varied, pseudo_time), options);

  sched::FixedPriorityKernel kernel(varied);
  kernel.set_exec_time_provider(pseudo_time);
  const sched::KernelResult kernel_result = kernel.run(options.horizon);

  const auto& a = engine_result.trace->segments();
  const auto& b = kernel_result.trace.segments();
  ASSERT_EQ(a.size(), b.size()) << w.name;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i].begin, b[i].begin, 1e-6) << w.name << " seg " << i;
    ASSERT_EQ(a[i].task, b[i].task) << w.name << " seg " << i;
    ASSERT_EQ(a[i].mode, b[i].mode) << w.name << " seg " << i;
  }
}

TEST_P(CrossCheck, FpsPowerMatchesUtilizationFormulaOverHyperperiods) {
  // Over a whole number of hyperperiods at WCET, FPS average power is
  // exactly U + (1 - U) * 0.2.
  const workloads::Workload w = workload();
  const auto hyper = static_cast<Time>(w.tasks.hyperperiod());
  if (hyper > 5e6) GTEST_SKIP() << "hyperperiod too long for exact check";
  EngineOptions options;
  options.horizon = hyper;
  const SimulationResult result =
      core::simulate(w.tasks, power::ProcessorConfig::arm8_default(),
                     SchedulerPolicy::fps(), nullptr, options);
  const double u = w.tasks.utilization();
  EXPECT_NEAR(result.average_power, u + (1.0 - u) * 0.2, 1e-6) << w.name;
}

TEST_P(CrossCheck, EdfAndFpsAgreeOnIdleTime) {
  const workloads::Workload w = workload();
  const auto hyper = static_cast<Time>(w.tasks.hyperperiod());
  if (hyper > 5e6) GTEST_SKIP() << "hyperperiod too long for exact check";

  sched::FixedPriorityKernel fps(w.tasks);
  sched::EdfKernel edf(w.tasks);
  const Time fps_idle =
      fps.run(hyper).trace.time_in_mode(ProcessorMode::kIdleBusyWait);
  const Time edf_idle =
      edf.run(hyper).trace.time_in_mode(ProcessorMode::kIdleBusyWait);
  EXPECT_NEAR(fps_idle, edf_idle, 1e-3) << w.name;
  EXPECT_NEAR(fps_idle, hyper * (1.0 - w.tasks.utilization()), 1e-3)
      << w.name;
}

TEST_P(CrossCheck, LpfpsCompletesSameJobsAsFps) {
  // Power management must never change *what* gets done, only when and
  // at what speed.
  const workloads::Workload w = workload();
  EngineOptions options;
  options.horizon = std::min(horizon(), 2e6);
  const SimulationResult fps =
      core::simulate(w.tasks, power::ProcessorConfig::arm8_default(),
                     SchedulerPolicy::fps(), nullptr, options);
  const SimulationResult lpfps =
      core::simulate(w.tasks, power::ProcessorConfig::arm8_default(),
                     SchedulerPolicy::lpfps(), nullptr, options);
  // Slowed completions can shift a handful of jobs across the horizon
  // boundary; allow that slack only.
  EXPECT_NEAR(fps.jobs_completed, lpfps.jobs_completed,
              static_cast<double>(w.tasks.size()))
      << w.name;
  EXPECT_EQ(lpfps.deadline_misses, 0) << w.name;
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, CrossCheck,
                         ::testing::Values("Avionics", "INS",
                                           "Flight control", "CNC"));

}  // namespace
}  // namespace lpfps
