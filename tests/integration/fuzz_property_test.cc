// Randomized property sweep: UUniFast task sets x execution-time models
// x LPFPS variants must (a) never miss a deadline (the engine throws),
// (b) never consume more power than FPS, and (c) produce schedules the
// independent validator accepts.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/analysis.h"
#include "sched/validator.h"
#include "workloads/generator.h"

namespace lpfps {
namespace {

using core::EngineOptions;
using core::SchedulerPolicy;

exec::ExecModelPtr model_by_index(int index) {
  switch (index % 3) {
    case 0:
      return std::make_shared<exec::ClampedGaussianModel>();
    case 1:
      return std::make_shared<exec::UniformModel>();
    default:
      return std::make_shared<exec::BimodalModel>(0.7);
  }
}

class FuzzProperty : public ::testing::TestWithParam<double> {};

TEST_P(FuzzProperty, RandomSetsNeverMissAndNeverLoseToFps) {
  const double utilization = GetParam();
  Rng rng(static_cast<std::uint64_t>(utilization * 1000) + 7);

  workloads::GeneratorConfig config;
  config.task_count = 5;
  config.total_utilization = utilization;
  config.period_min = 10'000;
  config.period_max = 160'000;
  config.period_granularity = 10'000;
  config.bcet_ratio = 0.3;

  int tested = 0;
  int draws = 0;
  while (tested < 6 && draws < 200) {
    ++draws;
    const sched::TaskSet tasks = workloads::generate_task_set(config, rng);
    if (!sched::is_schedulable_rta(tasks)) continue;
    ++tested;

    EngineOptions options;
    options.horizon = 1e6;
    options.seed = static_cast<std::uint64_t>(tested);
    options.record_trace = true;
    const auto exec = model_by_index(tested);

    const auto fps = core::simulate(
        tasks, power::ProcessorConfig::arm8_default(),
        SchedulerPolicy::fps(), exec, options);
    const auto lpfps = core::simulate(
        tasks, power::ProcessorConfig::arm8_default(),
        SchedulerPolicy::lpfps(), exec, options);

    EXPECT_EQ(lpfps.deadline_misses, 0);
    EXPECT_LE(lpfps.average_power, fps.average_power + 1e-9)
        << "U=" << utilization << " draw=" << draws;

    const auto report = sched::validate_schedule(*lpfps.trace, tasks);
    EXPECT_TRUE(report.ok())
        << "U=" << utilization << " draw=" << draws << "\n"
        << report.to_string();
  }
  EXPECT_EQ(tested, 6) << "could not draw enough schedulable sets";
}

INSTANTIATE_TEST_SUITE_P(UtilizationGrid, FuzzProperty,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8),
                         [](const auto& info) {
                           std::string name = "U";
                           name += std::to_string(
                               static_cast<int>(info.param * 100));
                           return name;
                         });

}  // namespace
}  // namespace lpfps
