// The hard-real-time property: every LPFPS variant meets every deadline
// on every paper workload, across the BCET sweep and multiple random
// seeds.  The engine throws on any miss, so a single violation anywhere
// fails loudly.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.h"
#include "exec/exec_model.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

using core::EngineOptions;
using core::SchedulerPolicy;

SchedulerPolicy policy_by_name(const std::string& name) {
  if (name == "LPFPS") return SchedulerPolicy::lpfps();
  if (name == "LPFPS-opt") return SchedulerPolicy::lpfps_optimal();
  if (name == "LPFPS-dvs") return SchedulerPolicy::lpfps_dvs_only();
  if (name == "LPFPS-pd") return SchedulerPolicy::lpfps_powerdown_only();
  throw std::out_of_range(name);
}

class NoMissProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, double>> {};

TEST_P(NoMissProperty, EveryDeadlineHolds) {
  const auto& [workload_name, policy_name, bcet_ratio] = GetParam();
  const workloads::Workload w = workloads::workload_by_name(workload_name);
  const sched::TaskSet tasks = w.tasks.with_bcet_ratio(bcet_ratio);
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EngineOptions options;
    options.horizon = std::min(w.horizon, 2e6);
    options.seed = seed;
    // throw_on_miss (default) turns any violation into a test failure.
    const auto result =
        core::simulate(tasks, power::ProcessorConfig::arm8_default(),
                       policy_by_name(policy_name), exec, options);
    EXPECT_EQ(result.deadline_misses, 0)
        << workload_name << "/" << policy_name << "/bcet=" << bcet_ratio
        << "/seed=" << seed;
    EXPECT_GT(result.jobs_completed, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoMissProperty,
    ::testing::Combine(
        ::testing::Values("Avionics", "INS", "Flight control", "CNC"),
        ::testing::Values("LPFPS", "LPFPS-opt", "LPFPS-dvs", "LPFPS-pd"),
        ::testing::Values(0.1, 0.5, 1.0)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         std::to_string(static_cast<int>(
                             std::get<2>(info.param) * 10));
      for (char& c : name) {
        if (c == ' ' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace lpfps
