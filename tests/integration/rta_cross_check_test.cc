// Analysis vs simulation: with synchronous release (the critical
// instant) and every job at its WCET, the FIRST job of each task must
// exhibit exactly the response time the exact RTA predicts, and no job
// anywhere in a hyperperiod may exceed it.
#include <gtest/gtest.h>

#include <map>

#include "sched/analysis.h"
#include "sched/kernel.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

class RtaCrossCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(RtaCrossCheck, FirstJobResponseEqualsRtaBound) {
  const workloads::Workload w = workloads::workload_by_name(GetParam());
  const auto bounds = sched::response_times(w.tasks);

  sched::FixedPriorityKernel kernel(w.tasks);
  const Time horizon = std::min(static_cast<Time>(w.tasks.hyperperiod()),
                                5e6);
  const sched::KernelResult result = kernel.run(horizon);

  std::map<TaskIndex, double> first_response;
  std::map<TaskIndex, double> max_response;
  for (const sim::JobRecord& job : result.trace.jobs()) {
    if (!job.finished) continue;
    if (job.instance == 0) first_response[job.task] = job.response_time();
    auto& worst = max_response[job.task];
    worst = std::max(worst, job.response_time());
  }

  for (TaskIndex i = 0; i < static_cast<TaskIndex>(w.tasks.size()); ++i) {
    ASSERT_TRUE(bounds[static_cast<std::size_t>(i)].has_value())
        << w.tasks[i].name;
    const double bound = *bounds[static_cast<std::size_t>(i)];
    ASSERT_TRUE(first_response.count(i)) << w.tasks[i].name;
    // Critical instant: the synchronous first job attains the bound.
    EXPECT_NEAR(first_response[i], bound, 1e-6) << w.tasks[i].name;
    // And nothing ever exceeds it.
    EXPECT_LE(max_response[i], bound + 1e-6) << w.tasks[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, RtaCrossCheck,
                         ::testing::Values("Avionics", "INS",
                                           "Flight control", "CNC"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace lpfps
