#include "io/bench_json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace lpfps::io {
namespace {

TEST(JsonObject, SerializesScalarsInInsertionOrder) {
  JsonObject object;
  object.set("power", 0.25)
      .set("sets", 20)
      .set("name", "INS")
      .set("feasible", true);
  std::string out;
  object.append_to(out);
  EXPECT_EQ(out, "{\"power\":0.25,\"sets\":20,\"name\":\"INS\","
                 "\"feasible\":true}");
}

TEST(JsonObject, EscapesStringsAndMapsNonFiniteToNull) {
  JsonObject object;
  object.set("quote", "a\"b\\c\n\td");
  object.set("nan", std::nan(""));
  object.set("inf", HUGE_VAL);
  std::string out;
  object.append_to(out);
  EXPECT_EQ(out,
            "{\"quote\":\"a\\\"b\\\\c\\n\\td\",\"nan\":null,\"inf\":null}");
}

TEST(JsonObject, DoublesRoundTripExactly) {
  const double value = 0.1234567890123456789;  // Not representable short.
  JsonObject object;
  object.set("v", value);
  std::string out;
  object.append_to(out);
  // %.17g guarantees the decimal form parses back to the same bits.
  double parsed = 0.0;
  ASSERT_EQ(std::sscanf(out.c_str(), "{\"v\":%lf}", &parsed), 1);
  EXPECT_EQ(parsed, value);
}

TEST(BenchJsonWriter, EmitsTheDocumentedSchema) {
  BenchJsonWriter writer("unit_test");
  writer.set_jobs(4);
  writer.set_wall_time_seconds(1.5);
  writer.meta().set("base_seed", 2024).set("horizon_us", 2e6);
  writer.add_point().set("utilization", 0.5).set("mean_reduction_pct", 31.5);
  writer.add_point().set("utilization", 0.9).set("mean_reduction_pct", 4.0);

  const std::string json = writer.to_json();
  EXPECT_EQ(json,
            "{\"bench\":\"unit_test\",\"schema_version\":1,\"jobs\":4,"
            "\"wall_time_seconds\":1.5,"
            "\"meta\":{\"base_seed\":2024,\"horizon_us\":2000000},"
            "\"points\":[{\"utilization\":0.5,\"mean_reduction_pct\":31.5},"
            "{\"utilization\":0.9,\"mean_reduction_pct\":4}]}\n");
}

TEST(BenchJsonWriter, WritesToTheConfiguredDirectory) {
  ASSERT_EQ(setenv("LPFPS_BENCH_JSON_DIR", "/tmp", 1), 0);
  BenchJsonWriter writer("bench_json_unit");
  writer.add_point().set("k", 1);
  const std::string path = writer.write();
  ASSERT_EQ(unsetenv("LPFPS_BENCH_JSON_DIR"), 0);

  EXPECT_EQ(path, "/tmp/BENCH_bench_json_unit.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), writer.to_json());
  std::remove(path.c_str());
}

TEST(BenchJsonWriter, SupportsTheAuditFilePrefix) {
  ASSERT_EQ(setenv("LPFPS_BENCH_JSON_DIR", "/tmp", 1), 0);
  BenchJsonWriter writer("audit_prefix_unit", "AUDIT_");
  writer.meta().set("kind", "audit_report").set("violations", 0);
  const std::string path = writer.write();
  ASSERT_EQ(unsetenv("LPFPS_BENCH_JSON_DIR"), 0);

  EXPECT_EQ(path, "/tmp/AUDIT_audit_prefix_unit.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  // Same schema as BENCH files (the validators are shared); only the
  // file prefix differs.
  EXPECT_NE(contents.str().find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(contents.str().find("\"kind\":\"audit_report\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonObject, PreservesNanAsNullInPoints) {
  // Infeasible cells travel as NaN and must serialize as JSON null —
  // downstream validators key on this, so lock it in.
  JsonObject object;
  object.set("static", std::numeric_limits<double>::quiet_NaN());
  std::string out;
  object.append_to(out);
  EXPECT_EQ(out, "{\"static\":null}");
}

TEST(WallTimer, MeasuresForwardTime) {
  const WallTimer timer;
  EXPECT_GE(timer.seconds(), 0.0);
}

}  // namespace
}  // namespace lpfps::io
