#include "io/trace_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/engine.h"
#include "workloads/example.h"

namespace lpfps::io {
namespace {

core::SimulationResult traced_run() {
  core::EngineOptions options;
  options.horizon = 400.0;
  options.record_trace = true;
  return core::simulate(workloads::example_table1(),
                        power::ProcessorConfig::arm8_default(),
                        core::SchedulerPolicy::lpfps(), nullptr, options);
}

int count_lines(const std::string& text) {
  int lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(TraceCsv, SegmentsHaveHeaderAndRows) {
  const auto result = traced_run();
  const std::string csv = trace_segments_csv(
      *result.trace, workloads::example_table1().names());
  EXPECT_EQ(csv.rfind("begin,end,mode,task", 0), 0u);
  EXPECT_EQ(count_lines(csv),
            1 + static_cast<int>(result.trace->segments().size()));
  EXPECT_NE(csv.find("tau1"), std::string::npos);
  EXPECT_NE(csv.find("power-down"), std::string::npos);
}

TEST(TraceCsv, JobsHaveOneRowPerJob) {
  const auto result = traced_run();
  const std::string csv =
      trace_jobs_csv(*result.trace, workloads::example_table1().names());
  EXPECT_EQ(count_lines(csv),
            1 + static_cast<int>(result.trace->jobs().size()));
  // 8 + 5 + 4 jobs in one hyperperiod, none missed.
  EXPECT_EQ(count_lines(csv), 1 + 17);
  EXPECT_EQ(csv.find(",1\n"), std::string::npos);  // No missed flag set.
}

TEST(TraceCsv, UnknownTaskIndexFallsBackToNumber) {
  sim::Trace trace;
  sim::Segment s;
  s.begin = 0.0;
  s.end = 1.0;
  s.mode = sim::ProcessorMode::kRunning;
  s.task = 5;
  trace.add_segment(s);
  const std::string csv = trace_segments_csv(trace, {"only_one"});
  EXPECT_NE(csv.find(",5,"), std::string::npos);
}

TEST(ResultCsv, HeaderAndRowAgreeOnColumnCount) {
  const auto result = traced_run();
  const std::string header = result_csv_header();
  const std::string row = result_csv_row(result);
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(row.find("LPFPS"), std::string::npos);
}

TEST(ResultCsv, CarriesTheObservabilityCounters) {
  const std::string header = result_csv_header();
  EXPECT_NE(header.find("dvs_slowdowns"), std::string::npos);
  EXPECT_NE(header.find("run_queue_high_water"), std::string::npos);
  EXPECT_NE(header.find("delay_queue_high_water"), std::string::npos);

  core::SimulationResult result;
  result.policy_name = "X";
  result.dvs_slowdowns = 17;
  result.run_queue_high_water = 4;
  result.delay_queue_high_water = 9;
  EXPECT_NE(result_csv_row(result).find(",17,4,9,"), std::string::npos);
}

TEST(FaultCsv, HeaderAndRowAgreeOnColumnCount) {
  core::SimulationResult result;
  result.policy_name = "LPFPS";
  const std::string header = result_fault_csv_header();
  const std::string row = result_fault_csv_row(result);
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
}

TEST(FaultCsv, CarriesTheWeaklyHardCounters) {
  const std::string header = result_fault_csv_header();
  EXPECT_NE(header.find("jobs_skipped_weakly"), std::string::npos);
  EXPECT_NE(header.find("mk_violations"), std::string::npos);
  EXPECT_NE(header.find("worst_window_slack"), std::string::npos);

  core::SimulationResult result;
  result.policy_name = "X";
  result.safe_mode_entries = 3;
  result.jobs_skipped_weakly = 21;
  result.mk_violations = 2;
  // Slack column: min across weakly-hard tasks; INT_MAX entries (hard
  // tasks) are ignored and an all-hard vector collapses to 0.
  result.weakly_hard_worst_slack = {
      weakly_hard::SkipGovernor::kHardTaskSlack, -1, 4};
  EXPECT_NE(result_fault_csv_row(result).find(",3,21,2,-1\n"),
            std::string::npos);

  result.weakly_hard_worst_slack.clear();
  EXPECT_NE(result_fault_csv_row(result).find(",3,21,2,0\n"),
            std::string::npos);
}

}  // namespace
}  // namespace lpfps::io
