#include "io/task_set_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "workloads/ins.h"

namespace lpfps::io {
namespace {

TEST(TaskSetParse, PositionalMinimal) {
  const sched::TaskSet tasks =
      parse_task_set_string("ctrl 5000 1200\nlog 100000 9000\n");
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].name, "ctrl");
  EXPECT_EQ(tasks[0].period, 5000);
  EXPECT_DOUBLE_EQ(tasks[0].wcet, 1200.0);
  EXPECT_EQ(tasks[0].deadline, 5000);       // Defaults to period.
  EXPECT_DOUBLE_EQ(tasks[0].bcet, 1200.0);  // Defaults to wcet.
  EXPECT_EQ(tasks[0].phase, 0);
}

TEST(TaskSetParse, PositionalFull) {
  const sched::TaskSet tasks =
      parse_task_set_string("t 100 20 80 5 10\n");
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].deadline, 80);
  EXPECT_DOUBLE_EQ(tasks[0].bcet, 5.0);
  EXPECT_EQ(tasks[0].phase, 10);
}

TEST(TaskSetParse, KeyedFields) {
  const sched::TaskSet tasks = parse_task_set_string(
      "engine_ctl period=5000 wcet=1200 bcet=400\n"
      "aux wcet=10 period=100 deadline=50\n");
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_DOUBLE_EQ(tasks[0].bcet, 400.0);
  EXPECT_EQ(tasks[1].deadline, 50);
}

TEST(TaskSetParse, CommentsAndBlanksIgnored) {
  const sched::TaskSet tasks = parse_task_set_string(
      "# header comment\n"
      "\n"
      "a 100 10   # trailing comment\n"
      "   \t  \n"
      "b 200 20\n");
  EXPECT_EQ(tasks.size(), 2u);
}

TEST(TaskSetParse, ErrorsCarryLineNumbers) {
  try {
    parse_task_set_string("ok 100 10\nbroken 100\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(TaskSetParse, RejectsNumericName) {
  EXPECT_THROW(parse_task_set_string("42 100 10\n"), std::runtime_error);
}

TEST(TaskSetParse, RejectsUnknownKey) {
  EXPECT_THROW(parse_task_set_string("t period=100 wcet=10 prio=1\n"),
               std::runtime_error);
}

TEST(TaskSetParse, RejectsBadNumbers) {
  EXPECT_THROW(parse_task_set_string("t 100 ten\n"), std::runtime_error);
  EXPECT_THROW(parse_task_set_string("t 100.5 10\n"), std::runtime_error);
  EXPECT_THROW(parse_task_set_string("t -100 10\n"), std::runtime_error);
}

TEST(TaskSetParse, RejectsSemanticViolations) {
  // bcet > wcet surfaces as a line-numbered parse error.
  EXPECT_THROW(parse_task_set_string("t 100 10 100 20\n"),
               std::runtime_error);
  // wcet > deadline.
  EXPECT_THROW(parse_task_set_string("t 100 60 50\n"), std::runtime_error);
}

TEST(TaskSetParse, TooManyFields) {
  EXPECT_THROW(parse_task_set_string("t 100 10 100 10 0 77\n"),
               std::runtime_error);
}

TEST(TaskSetRoundTrip, FormatThenParse) {
  const sched::TaskSet original = workloads::ins();
  const sched::TaskSet reparsed =
      parse_task_set_string(format_task_set(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(original.size()); ++i) {
    EXPECT_EQ(reparsed[i].name, original[i].name);
    EXPECT_EQ(reparsed[i].period, original[i].period);
    EXPECT_EQ(reparsed[i].deadline, original[i].deadline);
    EXPECT_DOUBLE_EQ(reparsed[i].wcet, original[i].wcet);
    EXPECT_DOUBLE_EQ(reparsed[i].bcet, original[i].bcet);
    EXPECT_EQ(reparsed[i].phase, original[i].phase);
  }
}

TEST(TaskSetFiles, SaveAndLoad) {
  const std::string path = ::testing::TempDir() + "/lpfps_io_test_tasks.txt";
  save_task_set(workloads::ins(), path);
  const sched::TaskSet loaded = load_task_set(path);
  EXPECT_EQ(loaded.size(), 6u);
  std::remove(path.c_str());
}

TEST(TaskSetFiles, MissingFileThrows) {
  EXPECT_THROW(load_task_set("/nonexistent/definitely/not/here.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace lpfps::io
