#include "io/svg_gantt.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/example.h"

namespace lpfps::io {
namespace {

sim::Trace lpfps_trace() {
  core::EngineOptions options;
  options.horizon = 400.0;
  options.record_trace = true;
  return *core::simulate(workloads::example_table1(),
                         power::ProcessorConfig::arm8_default(),
                         core::SchedulerPolicy::lpfps(), nullptr, options)
              .trace;
}

SvgOptions window(Time begin, Time end) {
  SvgOptions options;
  options.begin = begin;
  options.end = end;
  return options;
}

TEST(SvgGantt, ProducesWellFormedDocument) {
  const std::string svg =
      render_svg_gantt(lpfps_trace(),
                       workloads::example_table1().names(),
                       window(0.0, 400.0));
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Balanced rect tags: every <rect is self-closed or titled.
  const auto count_of = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = svg.find(needle); pos != std::string::npos;
         pos = svg.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_GT(count_of("<rect"), 10u);
  EXPECT_EQ(count_of("<title>"), count_of("</title>"));
}

TEST(SvgGantt, LabelsEveryTaskAndCpuLane) {
  const std::string svg =
      render_svg_gantt(lpfps_trace(),
                       workloads::example_table1().names(),
                       window(0.0, 400.0));
  EXPECT_NE(svg.find(">tau1<"), std::string::npos);
  EXPECT_NE(svg.find(">tau2<"), std::string::npos);
  EXPECT_NE(svg.find(">tau3<"), std::string::npos);
  EXPECT_NE(svg.find(">cpu<"), std::string::npos);
}

TEST(SvgGantt, ShowsPowerStates) {
  const std::string svg =
      render_svg_gantt(lpfps_trace(),
                       workloads::example_table1().names(),
                       window(0.0, 400.0));
  EXPECT_NE(svg.find("power-down"), std::string::npos);
  EXPECT_NE(svg.find("wake-up"), std::string::npos);
}

TEST(SvgGantt, WindowClipsSegments) {
  const std::string full =
      render_svg_gantt(lpfps_trace(),
                       workloads::example_table1().names(),
                       window(0.0, 400.0));
  const std::string clipped =
      render_svg_gantt(lpfps_trace(),
                       workloads::example_table1().names(),
                       window(0.0, 50.0));
  EXPECT_LT(clipped.size(), full.size());
  EXPECT_EQ(clipped.find("power-down"), std::string::npos);  // None yet.
}

TEST(SvgGantt, EscapesMarkupInNames) {
  sim::Trace trace;
  sim::Segment s;
  s.begin = 0.0;
  s.end = 10.0;
  s.mode = sim::ProcessorMode::kRunning;
  s.task = 0;
  trace.add_segment(s);
  const std::string svg =
      render_svg_gantt(trace, {"a<b&c>"}, window(0.0, 10.0));
  EXPECT_NE(svg.find("a&lt;b&amp;c&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

TEST(SvgGantt, RejectsEmptyWindow) {
  EXPECT_THROW(render_svg_gantt(lpfps_trace(),
                                workloads::example_table1().names(),
                                window(10.0, 10.0)),
               std::logic_error);
}

}  // namespace
}  // namespace lpfps::io
