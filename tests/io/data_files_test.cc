// The shipped task-set files under data/ must parse and agree exactly
// with the programmatic workload registry.
#include <gtest/gtest.h>

#include <string>

#include "io/task_set_io.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/registry.h"

namespace lpfps::io {
namespace {

/// CMake passes LPFPS_SOURCE_DIR so the test can run from any cwd.
std::string data_path(const std::string& file) {
  return std::string(LPFPS_SOURCE_DIR) + "/data/" + file;
}

void expect_matches(const sched::TaskSet& parsed,
                    const sched::TaskSet& reference) {
  ASSERT_EQ(parsed.size(), reference.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(parsed.size()); ++i) {
    EXPECT_EQ(parsed[i].name, reference[i].name);
    EXPECT_EQ(parsed[i].period, reference[i].period);
    EXPECT_EQ(parsed[i].deadline, reference[i].deadline);
    EXPECT_DOUBLE_EQ(parsed[i].wcet, reference[i].wcet);
    EXPECT_DOUBLE_EQ(parsed[i].bcet, reference[i].bcet);
  }
}

TEST(DataFiles, ExampleTable1MatchesRegistry) {
  sched::TaskSet parsed = load_task_set(data_path("example_table1.tasks"));
  sched::assign_rate_monotonic(parsed);
  expect_matches(parsed, workloads::example_table1());
}

TEST(DataFiles, InsMatchesRegistry) {
  sched::TaskSet parsed = load_task_set(data_path("ins.tasks"));
  expect_matches(parsed, workloads::workload_by_name("INS").tasks);
}

TEST(DataFiles, CncMatchesRegistry) {
  sched::TaskSet parsed = load_task_set(data_path("cnc.tasks"));
  expect_matches(parsed, workloads::workload_by_name("CNC").tasks);
}

TEST(DataFiles, FlightControlMatchesRegistry) {
  sched::TaskSet parsed = load_task_set(data_path("flight_control.tasks"));
  expect_matches(parsed,
                 workloads::workload_by_name("Flight control").tasks);
}

TEST(DataFiles, AvionicsMatchesRegistry) {
  sched::TaskSet parsed = load_task_set(data_path("avionics.tasks"));
  expect_matches(parsed, workloads::workload_by_name("Avionics").tasks);
}

}  // namespace
}  // namespace lpfps::io
