// io/admission_io.h — the decision CSV row: field set, formatting, and
// the accounting-exclusion convention.
#include "io/admission_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace lpfps::io {
namespace {

admission::Decision sample_decision() {
  admission::Decision d;
  d.kind = admission::RequestKind::kAdd;
  d.admitted = true;
  d.min_level = 17;
  d.min_safe_mhz = 25.0;
  d.min_safe_ratio = 0.25;
  d.wcet_headroom = 1.5;
  d.fingerprint = 0xdeadbeefcafef00dull;
  d.task_count = 5;
  d.utilization = 0.62;
  return d;
}

TEST(AdmissionIo, HeaderMatchesRowFieldCount) {
  const std::string header = admission_csv_header();
  const std::string row = admission_csv_row(sample_decision());
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_EQ(header.back(), '\n');
  EXPECT_EQ(row.back(), '\n');
}

TEST(AdmissionIo, RowRendersDecisionFields) {
  EXPECT_EQ(admission_csv_row(sample_decision()),
            "add,1,17,25,0.25,1.5,deadbeefcafef00d,5,0.62\n");

  admission::Decision rejected;
  rejected.kind = admission::RequestKind::kMutate;
  rejected.admitted = false;
  rejected.fingerprint = 1;
  rejected.task_count = 3;
  rejected.utilization = 0.5;
  EXPECT_EQ(admission_csv_row(rejected),
            "mutate,0,-1,0,0,0,0000000000000001,3,0.5\n");
}

TEST(AdmissionIo, AccountingIsExcludedFromTheRow) {
  // Two decisions that differ only in accounting must render equal:
  // that is what lets the differential suite hash rows across arms.
  admission::Decision a = sample_decision();
  admission::Decision b = sample_decision();
  b.cache_hit = true;
  b.stationary = true;
  b.tasks_reanalyzed = 99;
  b.tasks_seeded = 42;
  b.levels_probed = 7;
  b.headroom_probes = 23;
  EXPECT_EQ(admission_csv_row(a), admission_csv_row(b));
}

TEST(AdmissionIo, DoublesRoundTripExactly) {
  admission::Decision d = sample_decision();
  d.utilization = 0.1 + 0.2;  // 0.30000000000000004: %.17g keeps it.
  const std::string row = admission_csv_row(d);
  EXPECT_NE(row.find("0.30000000000000004"), std::string::npos);
}

}  // namespace
}  // namespace lpfps::io
