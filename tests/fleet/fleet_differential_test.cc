// Differential suite pinning the fleet engine's bit-identity contract:
// every simulation run through fleet::FleetEngine — at any batch width,
// any stride, any lane-block size or block order, mixed with any
// neighbours — must produce results bit-identical to a serial
// core::simulate of the same spec.  Identity
// is asserted on the serialized forms the repo treats as ground truth
// (io::result_csv_row, trace segment/job CSVs), the same currency the
// runner-determinism and cycle-detection suites use.
#include "fleet/fleet.h"

#include <string>
#include <vector>

#include "audit/harness.h"
#include "core/engine.h"
#include "exec/exec_model.h"
#include "gtest/gtest.h"
#include "io/trace_io.h"
#include "runner/runner.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/generator.h"

namespace lpfps {
namespace {

std::vector<std::string> task_names(const sched::TaskSet& tasks) {
  std::vector<std::string> names;
  names.reserve(tasks.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    names.push_back(tasks[i].name);
  }
  return names;
}

/// The serialized identity of one simulation result: the golden CSV row
/// plus (when a trace was recorded) every segment and job row.
std::string identity(const sched::TaskSet& tasks,
                     const core::SimulationResult& result) {
  std::string id = io::result_csv_row(result);
  if (result.trace.has_value()) {
    const std::vector<std::string> names = task_names(tasks);
    id += io::trace_segments_csv(*result.trace, names);
    id += io::trace_jobs_csv(*result.trace, names);
  }
  return id;
}

/// A diverse spec mix: RM-schedulable UUniFast sets across utilizations
/// under both policies, stochastic execution, traces on, positionally
/// seeded like every sweep in this repo.
std::vector<fleet::SimSpec> make_specs(int sets, bool record_trace) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  std::vector<fleet::SimSpec> specs;
  Rng rng(99);
  int generated = 0;
  while (generated < sets) {
    workloads::GeneratorConfig config;
    config.task_count = 4;
    config.total_utilization = 0.3 + 0.1 * (generated % 5);
    config.bcet_ratio = 0.5;
    config.period_min = 10'000;
    config.period_max = 80'000;
    config.period_granularity = 10'000;
    sched::TaskSet tasks = workloads::generate_task_set(config, rng);
    if (!sched::is_schedulable_rta(tasks)) continue;
    ++generated;
    for (const auto& policy :
         {core::SchedulerPolicy::fps(), core::SchedulerPolicy::lpfps()}) {
      core::EngineOptions options;
      options.horizon = 400'000;
      options.seed = runner::derive_seed(2024, specs.size());
      options.record_trace = record_trace;
      specs.push_back({tasks, cpu, policy, exec, options});
    }
  }
  return specs;
}

std::vector<std::string> serial_identities(
    const std::vector<fleet::SimSpec>& specs) {
  std::vector<std::string> ids;
  ids.reserve(specs.size());
  for (const fleet::SimSpec& spec : specs) {
    ids.push_back(identity(
        spec.tasks, core::simulate(spec.tasks, spec.processor, spec.policy,
                                   spec.exec_model, spec.options)));
  }
  return ids;
}

TEST(FleetDifferential, BatchMatchesSerialAcrossWidthsAndPolicies) {
  const std::vector<fleet::SimSpec> specs = make_specs(6, true);
  const std::vector<std::string> serial = serial_identities(specs);

  for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{64}}) {
    fleet::FleetOptions options;
    options.batch_width = width;
    const std::vector<core::SimulationResult> results =
        fleet::run_fleet(specs, options);
    ASSERT_EQ(results.size(), specs.size()) << "width " << width;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, results[i]), serial[i])
          << "sim " << i << " diverged at batch width " << width;
    }
  }
}

TEST(FleetDifferential, StrideInvariance) {
  const std::vector<fleet::SimSpec> specs = make_specs(4, true);
  const std::vector<std::string> serial = serial_identities(specs);

  for (const Time stride : {1.0, 5'000.0, 1e9}) {
    fleet::FleetOptions options;
    options.batch_width = 8;
    options.stride = stride;
    const std::vector<core::SimulationResult> results =
        fleet::run_fleet(specs, options);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, results[i]), serial[i])
          << "sim " << i << " diverged at stride " << stride;
    }
  }
}

/// Lane-block invariance: a batch is scheduled as cache-sized blocks
/// of lane_block lanes, and any block size — including 0 (the whole
/// batch as one block, the pre-blocking behavior) and sizes that leave
/// uneven tails — must be bit-identical to serial.
TEST(FleetDifferential, BlockSizeInvariance) {
  const std::vector<fleet::SimSpec> specs = make_specs(6, true);  // 12 sims.
  const std::vector<std::string> serial = serial_identities(specs);

  for (const std::size_t lane_block :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{5},
        std::size_t{12}, std::size_t{64}}) {
    fleet::FleetOptions options;
    options.batch_width = specs.size();  // One batch, blocks inside it.
    options.lane_block = lane_block;
    fleet::FleetEngine engine(options);
    for (const fleet::SimSpec& spec : specs) engine.add(spec);
    const std::vector<core::SimulationResult> results = engine.run_all();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, results[i]), serial[i])
          << "sim " << i << " diverged at lane_block " << lane_block;
    }
    const std::size_t effective =
        lane_block == 0 ? specs.size() : lane_block;
    EXPECT_EQ(engine.stats().blocks,
              (specs.size() + effective - 1) / effective)
        << "lane_block " << lane_block;
  }
}

/// Block-order invariance: blocks are independent lane subsets, so
/// running them highest-index-first (the reverse_block_order
/// verification knob) must change nothing.
TEST(FleetDifferential, BlockOrderInvariance) {
  const std::vector<fleet::SimSpec> specs = make_specs(5, true);  // 10 sims.
  const std::vector<std::string> serial = serial_identities(specs);

  for (const bool reverse : {false, true}) {
    fleet::FleetOptions options;
    options.batch_width = specs.size();
    options.lane_block = 3;  // Four blocks, uneven tail.
    options.reverse_block_order = reverse;
    const std::vector<core::SimulationResult> results =
        fleet::run_fleet(specs, options);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, results[i]), serial[i])
          << "sim " << i << " diverged with reverse_block_order="
          << reverse;
    }
  }
}

/// One faulted-and-contained sim and one cycle-eligible sim mixed into
/// a batch of stochastic neighbours: the fleet must reproduce the
/// containment counters and the fast-forward (cycles_detected > 0)
/// bit-for-bit, proving both feature paths run unchanged inside lanes.
TEST(FleetDifferential, MixedBatchWithFaultedAndCycleEligibleSims) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  std::vector<fleet::SimSpec> specs = make_specs(2, true);

  // Faulted + contained: every job overruns by 40%, kill at budget,
  // safe-mode fallback, misses recorded instead of thrown.
  {
    core::EngineOptions options;
    options.horizon = 400'000;
    options.seed = 7;
    options.record_trace = true;
    options.throw_on_miss = false;
    options.faults.overruns = {{1.0, 0.4}};
    options.containment.on_overrun = faults::OverrunAction::kKill;
    options.containment.safe_mode_fallback = true;
    specs.push_back({workloads::example_table1(), cpu,
                     core::SchedulerPolicy::lpfps(),
                     std::make_shared<exec::ClampedGaussianModel>(),
                     options});
  }
  // Cycle-eligible: deterministic WCET execution (null model) over many
  // hyperperiods fast-forwards after two boundaries.
  {
    core::EngineOptions options;
    options.horizon = 4'000'000;
    options.seed = 11;
    options.record_trace = true;
    specs.push_back({workloads::example_table1(), cpu,
                     core::SchedulerPolicy::lpfps(), nullptr, options});
  }

  const std::vector<std::string> serial = serial_identities(specs);
  {
    // Prove the mixed batch actually exercises both paths.
    const fleet::SimSpec& faulted = specs[specs.size() - 2];
    const auto ref =
        core::simulate(faulted.tasks, faulted.processor, faulted.policy,
                       faulted.exec_model, faulted.options);
    ASSERT_GT(ref.overruns_detected, 0);
    ASSERT_GT(ref.jobs_killed, 0);
    const fleet::SimSpec& cyclic = specs.back();
    const auto cyc =
        core::simulate(cyclic.tasks, cyclic.processor, cyclic.policy,
                       cyclic.exec_model, cyclic.options);
    ASSERT_GT(cyc.cycles_detected, 0);
  }

  fleet::FleetOptions options;
  options.batch_width = specs.size();  // One batch holding everything.
  const std::vector<core::SimulationResult> results =
      fleet::run_fleet(specs, options);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(identity(specs[i].tasks, results[i]), serial[i])
        << "sim " << i << " diverged in the mixed batch";
  }
}

/// Lane reuse must not leak state between sims: run the same specs
/// twice through one engine (every lane is rebound in round two) and
/// through widths that force uneven batch tails.
TEST(FleetDifferential, LaneRebindLeaksNothing) {
  const std::vector<fleet::SimSpec> specs = make_specs(5, false);
  const std::vector<std::string> serial = serial_identities(specs);

  fleet::FleetEngine engine(fleet::FleetOptions{3, 0.0});
  for (const fleet::SimSpec& spec : specs) engine.add(spec);
  for (int round = 0; round < 2; ++round) {
    const std::vector<core::SimulationResult> results = engine.run_all();
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, results[i]), serial[i])
          << "sim " << i << " diverged in round " << round;
    }
  }
  EXPECT_GT(engine.stats().lane_rebinds, 0u);
}

TEST(FleetDifferential, IsolatedOutcomesCaptureFailuresPerLane) {
  std::vector<fleet::SimSpec> specs = make_specs(2, false);
  // An unschedulable two-task set under strict miss semantics: the
  // second task cannot make its deadline, so this sim throws.
  {
    sched::TaskSet tasks;
    tasks.add(sched::make_task("hog", 100, 80.0));
    tasks.add(sched::make_task("late", 100, 40.0));
    sched::assign_rate_monotonic(tasks);
    core::EngineOptions options;
    options.horizon = 1'000;
    options.seed = 3;
    specs.push_back({std::move(tasks), power::ProcessorConfig::arm8_default(),
                     core::SchedulerPolicy::fps(), nullptr, options});
  }
  const std::size_t failing = specs.size() - 1;

  fleet::FleetOptions options;
  options.batch_width = specs.size();
  const auto outcomes = fleet::run_fleet_isolated(specs, options);
  ASSERT_EQ(outcomes.size(), specs.size());
  EXPECT_FALSE(outcomes[failing].ok());
  EXPECT_NE(outcomes[failing].error.find("deadline miss"), std::string::npos);
  for (std::size_t i = 0; i < failing; ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(identity(specs[i].tasks, *outcomes[i].result),
              identity(specs[i].tasks,
                       core::simulate(specs[i].tasks, specs[i].processor,
                                      specs[i].policy, specs[i].exec_model,
                                      specs[i].options)))
        << "healthy sim " << i << " perturbed by a failing lane";
  }

  // run_all surfaces the lowest-index failure as the original type.
  fleet::FleetEngine engine(options);
  for (const fleet::SimSpec& spec : specs) engine.add(spec);
  EXPECT_THROW(engine.run_all(), std::runtime_error);
}

/// The audit battery accepts fleet-produced traces: zero violations
/// over a batched sweep, with the aggregator seeing every run.
TEST(FleetDifferential, AuditPassOverFleetTraces) {
  const std::vector<fleet::SimSpec> specs = make_specs(4, false);
  fleet::FleetOptions options;
  options.batch_width = 8;
  audit::AuditAggregator agg("fleet_differential");
  const auto results = audit::simulate_fleet(specs, options, &agg);
  ASSERT_EQ(results.size(), specs.size());
  // Traces were forced for auditing, then dropped per spec.
  for (const auto& result : results) EXPECT_FALSE(result.trace.has_value());
  EXPECT_EQ(agg.runs(), static_cast<std::int64_t>(specs.size()));
  EXPECT_EQ(agg.violation_count(), 0);
  EXPECT_NO_THROW(agg.check());
}

TEST(FleetDifferential, StatsObserveBatchingMechanics) {
  const std::vector<fleet::SimSpec> specs = make_specs(9, false);  // 18 sims.
  fleet::FleetEngine engine(fleet::FleetOptions{8, 0.0});
  for (const fleet::SimSpec& spec : specs) engine.add(spec);
  const auto results = engine.run_all();
  ASSERT_EQ(results.size(), specs.size());

  const fleet::FleetStats& stats = engine.stats();
  EXPECT_EQ(stats.sims, specs.size());
  EXPECT_EQ(stats.batches, (specs.size() + 7) / 8);
  // 18 sims over 8 lanes: 8 constructions, 10 rebinds.
  EXPECT_EQ(stats.lane_constructions, 8u);
  EXPECT_EQ(stats.lane_rebinds, specs.size() - 8);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.steps, 0);
  std::int64_t events = 0;
  for (const auto& result : results) events += result.scheduler_invocations;
  EXPECT_EQ(stats.events, events);
}

}  // namespace
}  // namespace lpfps
