// Fleet bit-identity for weakly-hard batches (docs/FLEET.md +
// docs/WEAKLY_HARD.md): a mixed batch of hard, governor-armed and
// skip-DVS sims must come out byte-identical whether run serially
// through core::simulate, through one batched FleetEngine, or sharded
// across workers — the skip governor's decisions are pure functions of
// per-lane state, so lane interleaving cannot perturb them.
#include "fleet/fleet.h"

#include <string>
#include <vector>

#include "core/engine.h"
#include "gtest/gtest.h"
#include "io/trace_io.h"
#include "runner/runner.h"
#include "sched/priority.h"
#include "sched/task.h"
#include "workloads/generator.h"

namespace lpfps {
namespace {

std::string identity(const sched::TaskSet& tasks,
                     const core::SimulationResult& result) {
  std::string id = io::result_fault_csv_row(result);
  if (result.trace.has_value()) {
    const std::vector<std::string> names = tasks.names();
    id += io::trace_segments_csv(*result.trace, names);
    id += io::trace_jobs_csv(*result.trace, names);
  }
  return id;
}

/// A mixed batch: overloaded weakly-hard sets under every policy arm
/// (kNever / kOverload / kAlways, skip-DVS on and off, FPS and LPFPS)
/// interleaved with plain hard sims, all with recorded traces.
std::vector<fleet::SimSpec> make_specs() {
  const auto cpu = power::ProcessorConfig::arm8_default();
  std::vector<fleet::SimSpec> specs;
  Rng rng(42);
  workloads::WeaklyHardGeneratorConfig wh_config;
  wh_config.base.task_count = 4;
  wh_config.base.period_max = 100'000;
  wh_config.total_utilization = 1.1;
  workloads::GeneratorConfig hard_config;
  hard_config.task_count = 4;
  hard_config.total_utilization = 0.5;
  hard_config.period_max = 100'000;

  const weakly_hard::SkipPolicy policies[] = {
      weakly_hard::SkipPolicy::kNever, weakly_hard::SkipPolicy::kOverload,
      weakly_hard::SkipPolicy::kAlways};
  for (int round = 0; round < 4; ++round) {
    const sched::TaskSet wh_tasks =
        workloads::generate_weakly_hard_task_set(wh_config, rng);
    for (const auto& policy :
         {core::SchedulerPolicy::fps(), core::SchedulerPolicy::lpfps()}) {
      for (const weakly_hard::SkipPolicy skip : policies) {
        for (const bool skip_dvs : {false, true}) {
          core::EngineOptions options;
          options.horizon = 150'000;
          options.seed = runner::derive_seed(9, specs.size());
          options.throw_on_miss = false;
          options.record_trace = true;
          options.weakly_hard.policy = skip;
          options.weakly_hard.skip_dvs = skip_dvs;
          specs.push_back({wh_tasks, cpu, policy, nullptr, options});
        }
      }
    }
    // A plain hard sim between rounds so shard cuts cross lane kinds.
    const sched::TaskSet hard_tasks =
        workloads::generate_task_set(hard_config, rng);
    core::EngineOptions options;
    options.horizon = 150'000;
    options.seed = runner::derive_seed(9, specs.size());
    options.throw_on_miss = false;
    options.record_trace = true;
    specs.push_back({hard_tasks, cpu, core::SchedulerPolicy::lpfps(),
                     nullptr, options});
  }
  return specs;
}

TEST(FleetWeaklyHard, SerialFleetAndShardedAreByteIdentical) {
  const std::vector<fleet::SimSpec> specs = make_specs();

  std::vector<std::string> serial;
  serial.reserve(specs.size());
  for (const fleet::SimSpec& spec : specs) {
    serial.push_back(identity(
        spec.tasks, core::simulate(spec.tasks, spec.processor, spec.policy,
                                   spec.exec_model, spec.options)));
  }

  const std::vector<core::SimulationResult> fleet_results =
      fleet::run_fleet(specs, fleet::FleetOptions{});
  ASSERT_EQ(fleet_results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(identity(specs[i].tasks, fleet_results[i]), serial[i])
        << "fleet lane " << i;
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const std::vector<core::SimulationResult> sharded =
        fleet::run_fleet_sharded(specs, fleet::FleetOptions{}, workers);
    ASSERT_EQ(sharded.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, sharded[i]), serial[i])
          << "sharded(" << workers << ") lane " << i;
    }
  }
}

TEST(FleetWeaklyHard, ArmedLanesActuallySkipped) {
  // Sanity on the batch itself: the identity test above is vacuous if
  // no lane ever skipped, so pin that armed overloaded lanes did.
  const std::vector<fleet::SimSpec> specs = make_specs();
  const std::vector<core::SimulationResult> results =
      fleet::run_fleet(specs, fleet::FleetOptions{});
  int skipped_lanes = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].jobs_skipped_weakly > 0) ++skipped_lanes;
    if (specs[i].options.weakly_hard.policy ==
        weakly_hard::SkipPolicy::kNever) {
      EXPECT_EQ(results[i].jobs_skipped_weakly, 0) << "lane " << i;
    }
  }
  EXPECT_GT(skipped_lanes, 0);
}

}  // namespace
}  // namespace lpfps
