// Suite pinning the sharded fleet's determinism contract: partitioning
// a spec list positionally across ThreadPool workers — one FleetEngine
// per worker — must produce output byte-identical to a serial fleet
// (and therefore to serial core::simulate) for any worker count,
// including failure surfacing (lowest-spec-index exception, original
// type) and per-lane isolation.  Identity is asserted on the same
// serialized currency the differential suite uses.
#include "fleet/fleet.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "audit/harness.h"
#include "core/engine.h"
#include "exec/exec_model.h"
#include "gtest/gtest.h"
#include "io/trace_io.h"
#include "runner/runner.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/generator.h"

namespace lpfps {
namespace {

std::vector<std::string> task_names(const sched::TaskSet& tasks) {
  std::vector<std::string> names;
  names.reserve(tasks.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    names.push_back(tasks[i].name);
  }
  return names;
}

std::string identity(const sched::TaskSet& tasks,
                     const core::SimulationResult& result) {
  std::string id = io::result_csv_row(result);
  if (result.trace.has_value()) {
    const std::vector<std::string> names = task_names(tasks);
    id += io::trace_segments_csv(*result.trace, names);
    id += io::trace_jobs_csv(*result.trace, names);
  }
  return id;
}

/// A 200-spec mixed batch: the sweep regime (RM-schedulable UUniFast
/// sets, both policies, stochastic execution, positional seeds) with a
/// faulted-and-contained sim and a cycle-eligible sim spliced into the
/// middle, so shard boundaries cut through feature-bearing lanes too.
std::vector<fleet::SimSpec> make_mixed_specs() {
  const auto cpu = power::ProcessorConfig::arm8_default();
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  std::vector<fleet::SimSpec> specs;
  Rng rng(123);
  while (specs.size() < 198) {
    workloads::GeneratorConfig config;
    config.task_count = 4;
    config.total_utilization = 0.3 + 0.1 * (specs.size() % 5);
    config.bcet_ratio = 0.5;
    config.period_min = 10'000;
    config.period_max = 80'000;
    config.period_granularity = 10'000;
    sched::TaskSet tasks = workloads::generate_task_set(config, rng);
    if (!sched::is_schedulable_rta(tasks)) continue;
    for (const auto& policy :
         {core::SchedulerPolicy::fps(), core::SchedulerPolicy::lpfps()}) {
      core::EngineOptions options;
      options.horizon = 100'000;
      options.seed = runner::derive_seed(77, specs.size());
      specs.push_back({tasks, cpu, policy, exec, options});
    }
  }
  // Faulted + contained, mid-list: overruns killed at budget with the
  // safe-mode fallback, misses recorded instead of thrown.
  {
    core::EngineOptions options;
    options.horizon = 400'000;
    options.seed = 7;
    options.throw_on_miss = false;
    options.faults.overruns = {{1.0, 0.4}};
    options.containment.on_overrun = faults::OverrunAction::kKill;
    options.containment.safe_mode_fallback = true;
    specs.insert(specs.begin() + 101,
                 {workloads::example_table1(), cpu,
                  core::SchedulerPolicy::lpfps(), exec, options});
  }
  // Cycle-eligible, mid-list: deterministic WCET execution over many
  // hyperperiods fast-forwards after two boundaries.
  {
    core::EngineOptions options;
    options.horizon = 4'000'000;
    options.seed = 11;
    specs.insert(specs.begin() + 50,
                 {workloads::example_table1(), cpu,
                  core::SchedulerPolicy::lpfps(), nullptr, options});
  }
  return specs;
}

TEST(FleetSharded, WorkerCountCannotChangeOutput) {
  const std::vector<fleet::SimSpec> specs = make_mixed_specs();
  ASSERT_EQ(specs.size(), 200u);

  const std::vector<core::SimulationResult> serial =
      fleet::run_fleet_sharded(specs, {}, 1);
  ASSERT_EQ(serial.size(), specs.size());
  {
    // Prove the batch exercises both feature paths.
    bool killed = false;
    bool cycled = false;
    for (const auto& result : serial) {
      killed = killed || result.jobs_killed > 0;
      cycled = cycled || result.cycles_detected > 0;
    }
    EXPECT_TRUE(killed);
    EXPECT_TRUE(cycled);
  }

  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const std::vector<core::SimulationResult> sharded =
        fleet::run_fleet_sharded(specs, {}, workers);
    ASSERT_EQ(sharded.size(), specs.size()) << workers << " workers";
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(identity(specs[i].tasks, sharded[i]),
                identity(specs[i].tasks, serial[i]))
          << "sim " << i << " diverged at " << workers << " workers";
    }
  }
}

TEST(FleetSharded, IsolationUnderShardingCapturesFailuresPerLane) {
  std::vector<fleet::SimSpec> specs = make_mixed_specs();
  // An unschedulable set under strict miss semantics, mid-shard: its
  // lane throws; every other lane — in the same shard and in others —
  // must be untouched.
  const std::size_t failing = 120;
  {
    sched::TaskSet tasks;
    tasks.add(sched::make_task("hog", 100, 80.0));
    tasks.add(sched::make_task("late", 100, 40.0));
    sched::assign_rate_monotonic(tasks);
    core::EngineOptions options;
    options.horizon = 1'000;
    options.seed = 3;
    specs[failing] = {std::move(tasks), power::ProcessorConfig::arm8_default(),
                      core::SchedulerPolicy::fps(), nullptr, options};
  }

  const auto serial = fleet::run_fleet_sharded_isolated(specs, {}, 1);
  const auto sharded = fleet::run_fleet_sharded_isolated(specs, {}, 4);
  ASSERT_EQ(sharded.size(), specs.size());
  EXPECT_FALSE(sharded[failing].ok());
  EXPECT_NE(sharded[failing].error.find("deadline miss"), std::string::npos);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i == failing) continue;
    ASSERT_TRUE(sharded[i].ok()) << "sim " << i << ": " << sharded[i].error;
    EXPECT_EQ(identity(specs[i].tasks, *sharded[i].result),
              identity(specs[i].tasks, *serial[i].result))
        << "healthy sim " << i << " perturbed under sharding";
  }

  // The non-isolated runner surfaces that same failure as the original
  // exception type, regardless of which shard hosts it.
  EXPECT_THROW(fleet::run_fleet_sharded(specs, {}, 4), std::runtime_error);
}

TEST(FleetSharded, MoreWorkersThanSpecsLeavesNoEmptyShardArtifacts) {
  // 3 specs across 8 requested workers: shard count clamps to the spec
  // count — no empty shard may emit, reorder, or drop results.
  std::vector<fleet::SimSpec> specs = make_mixed_specs();
  specs.resize(3);
  const std::vector<core::SimulationResult> serial =
      fleet::run_fleet_sharded(specs, {}, 1);
  const std::vector<core::SimulationResult> sharded =
      fleet::run_fleet_sharded(specs, {}, 8);
  ASSERT_EQ(sharded.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(identity(specs[i].tasks, sharded[i]),
              identity(specs[i].tasks, serial[i]))
        << "sim " << i;
  }

  // Degenerate inputs: no specs at all.
  EXPECT_TRUE(fleet::run_fleet_sharded({}, {}, 4).empty());
  EXPECT_TRUE(fleet::run_fleet_sharded_isolated({}, {}, 4).empty());
}

/// The audited sharded entry point: zero violations across workers,
/// results identical to the audited serial fleet, traces dropped per
/// spec after auditing.
TEST(FleetSharded, AuditedShardedMatchesAuditedSerial) {
  std::vector<fleet::SimSpec> specs = make_mixed_specs();
  specs.resize(40);
  audit::AuditAggregator serial_agg("fleet_sharded_serial");
  const auto serial = audit::simulate_fleet(specs, {}, &serial_agg);
  audit::AuditAggregator sharded_agg("fleet_sharded");
  const auto sharded =
      audit::simulate_fleet_sharded(specs, {}, &sharded_agg, 4);
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(identity(specs[i].tasks, sharded[i]),
              identity(specs[i].tasks, serial[i]))
        << "sim " << i;
    EXPECT_FALSE(sharded[i].trace.has_value());
  }
  EXPECT_EQ(sharded_agg.runs(), static_cast<std::int64_t>(specs.size()));
  EXPECT_EQ(sharded_agg.violation_count(), 0);
  EXPECT_NO_THROW(sharded_agg.check());
}

}  // namespace
}  // namespace lpfps
