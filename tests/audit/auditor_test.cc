// Adversarial auditor tests: hand-corrupt a known-good trace one
// invariant at a time (via sim::Trace::unchecked, which bypasses the
// recorder's own guards) and require the auditor to catch each breach
// with the right catalog code and an actionable diagnostic.
#include "audit/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/engine.h"
#include "sched/priority.h"
#include "sched/task.h"
#include "sim/trace.h"

namespace lpfps::audit {
namespace {

using sim::JobRecord;
using sim::ProcessorMode;
using sim::Segment;

sched::TaskSet solo_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", 100, 50.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

Segment seg(Time begin, Time end, ProcessorMode mode, TaskIndex task = kNoTask,
            Ratio rb = 1.0, Ratio re = 1.0) {
  Segment s;
  s.begin = begin;
  s.end = end;
  s.mode = mode;
  s.task = task;
  s.ratio_begin = rb;
  s.ratio_end = re;
  return s;
}

JobRecord job(TaskIndex task, std::int64_t instance, Time release,
              Time deadline, Time completion, Work executed) {
  JobRecord j;
  j.task = task;
  j.instance = instance;
  j.release = release;
  j.absolute_deadline = deadline;
  j.completion = completion;
  j.executed = executed;
  j.finished = true;
  j.missed_deadline = false;
  return j;
}

/// Two full-speed jobs of the solo task over [0, 200): the clean
/// reference every corruption below starts from.
std::vector<Segment> clean_segments() {
  return {seg(0.0, 50.0, ProcessorMode::kRunning, 0),
          seg(50.0, 100.0, ProcessorMode::kIdleBusyWait),
          seg(100.0, 150.0, ProcessorMode::kRunning, 0),
          seg(150.0, 200.0, ProcessorMode::kIdleBusyWait)};
}

std::vector<JobRecord> clean_jobs() {
  return {job(0, 0, 0.0, 100.0, 50.0, 50.0),
          job(0, 1, 100.0, 200.0, 150.0, 50.0)};
}

bool has_code(const AuditReport& report, const std::string& code) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.invariant == code; });
}

std::string message_of(const AuditReport& report, const std::string& code) {
  for (const Violation& v : report.violations) {
    if (v.invariant == code) return v.message;
  }
  return "";
}

TEST(Auditor, CleanHandBuiltTracePasses) {
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), clean_jobs());
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.segments_checked, 4);
  EXPECT_EQ(report.jobs_checked, 2);
}

TEST(Auditor, CatchesOverlappingSegments) {
  auto segments = clean_segments();
  segments[1].begin = 40.0;  // Overlaps the first running segment.
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), clean_jobs());
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "T1.overlap")) << report.to_string();
  // The diagnostic names both boundary times, so the overlap is
  // locatable without re-running anything.
  EXPECT_NE(message_of(report, "T1.overlap").find("40"), std::string::npos);
}

TEST(Auditor, CatchesTimelineGaps) {
  auto segments = clean_segments();
  segments[2].begin = 110.0;  // Hole in [100, 110).
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), clean_jobs());
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  EXPECT_TRUE(has_code(report, "T1.gap")) << report.to_string();
}

TEST(Auditor, CatchesOutOfRangeRatio) {
  auto segments = clean_segments();
  segments[0].ratio_begin = 1.2;  // Above the base (full) speed.
  segments[0].ratio_end = 1.2;
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), clean_jobs());
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  EXPECT_TRUE(has_code(report, "T2.range")) << report.to_string();
}

TEST(Auditor, CatchesJobOverrun) {
  auto jobs = clean_jobs();
  jobs[0].executed = 60.0;  // WCET is 50.
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), std::move(jobs));
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "J3.overrun")) << report.to_string();
  EXPECT_NE(message_of(report, "J3.overrun").find("solo"), std::string::npos);
}

TEST(Auditor, CatchesWorkIntegralMismatch) {
  auto jobs = clean_jobs();
  jobs[0].executed = 45.0;  // Trace integrates to 50 over [0, 50).
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), std::move(jobs));
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  EXPECT_TRUE(has_code(report, "J2.work")) << report.to_string();
}

TEST(Auditor, CatchesUnflaggedDeadlineMiss) {
  // Job 0 completes at 105, past its absolute deadline of 100, but the
  // record's missed_deadline flag stayed false.
  std::vector<Segment> segments = {
      seg(0.0, 50.0, ProcessorMode::kRunning, 0),
      seg(50.0, 100.0, ProcessorMode::kIdleBusyWait),
      seg(100.0, 105.0, ProcessorMode::kRunning, 0),
      seg(105.0, 155.0, ProcessorMode::kRunning, 0),
      seg(155.0, 200.0, ProcessorMode::kIdleBusyWait)};
  std::vector<JobRecord> jobs = {job(0, 0, 0.0, 100.0, 105.0, 55.0),
                                 job(0, 1, 100.0, 200.0, 155.0, 50.0)};
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  AuditOptions options;
  options.check_job_demand = false;  // The 55 > WCET overrun is bait.
  const AuditReport report =
      audit_trace(trace, solo_tasks(), 200.0, options);
  EXPECT_TRUE(has_code(report, "J4.flag")) << report.to_string();
}

TEST(Auditor, CatchesSleepWhilePending) {
  // Job 0 has 50 us of demand but the processor naps in the middle of
  // its window: work-conservation (paper L8-L13: sleep only when every
  // task is in the delay queue) is violated.
  std::vector<Segment> segments = {
      seg(0.0, 20.0, ProcessorMode::kRunning, 0),
      seg(20.0, 30.0, ProcessorMode::kPowerDown),
      seg(30.0, 60.0, ProcessorMode::kRunning, 0),
      seg(60.0, 100.0, ProcessorMode::kIdleBusyWait),
      seg(100.0, 150.0, ProcessorMode::kRunning, 0),
      seg(150.0, 200.0, ProcessorMode::kIdleBusyWait)};
  std::vector<JobRecord> jobs = {job(0, 0, 0.0, 100.0, 60.0, 50.0),
                                 job(0, 1, 100.0, 200.0, 150.0, 50.0)};
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  EXPECT_TRUE(has_code(report, "S1.idle-while-pending"))
      << report.to_string();
}

TEST(Auditor, CatchesTruncatedTimeline) {
  auto segments = clean_segments();
  segments.pop_back();  // Ends at 150, horizon says 200.
  auto jobs = clean_jobs();
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  const AuditReport report = audit_trace(trace, solo_tasks(), 200.0);
  EXPECT_TRUE(has_code(report, "T1.horizon")) << report.to_string();
}

TEST(Auditor, CatchesMisIntegratedEnergy) {
  // A real engine run whose result is then doctored: the reported
  // running-mode energy no longer matches re-integration of the speed
  // profile (E1), which also breaks the E3 total.
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  core::EngineOptions options;
  options.horizon = 1000.0;
  options.record_trace = true;
  core::SimulationResult result = core::simulate(
      tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  ASSERT_TRUE(audit_run(result, tasks, cpu).ok());

  result.by_mode[static_cast<std::size_t>(ProcessorMode::kRunning)].energy +=
      1.0;
  const AuditReport report = audit_run(result, tasks, cpu);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E1.energy")) << report.to_string();
}

TEST(Auditor, CatchesCorruptedCounters) {
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  core::EngineOptions options;
  options.horizon = 1000.0;
  options.record_trace = true;
  core::SimulationResult result = core::simulate(
      tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);

  core::SimulationResult wrong_jobs = result;
  wrong_jobs.jobs_completed += 1;
  EXPECT_TRUE(has_code(audit_run(wrong_jobs, tasks, cpu), "C1.jobs"));

  core::SimulationResult wrong_pd = result;
  wrong_pd.power_downs += 3;
  EXPECT_TRUE(has_code(audit_run(wrong_pd, tasks, cpu), "C2.power-downs"));
}

TEST(Auditor, StopsCollectingAtMaxViolations) {
  auto jobs = clean_jobs();
  jobs[0].executed = 60.0;
  jobs[1].executed = 60.0;
  AuditOptions options;
  options.max_violations = 1;
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), std::move(jobs));
  const AuditReport report =
      audit_trace(trace, solo_tasks(), 200.0, options);
  EXPECT_EQ(report.violations.size(), 1u);
}

// ---- F-codes: budget enforcement and safe-mode fallback -------------

/// Options arming the fault battery the way harness::derive_options
/// does for a contained run.
AuditOptions fault_options(faults::OverrunAction containment,
                           bool safe_mode = false) {
  AuditOptions options;
  options.faults_injected = true;
  options.containment = containment;
  options.safe_mode_fallback = safe_mode;
  options.expect_no_misses = false;
  options.check_job_demand = false;
  return options;
}

TEST(Auditor, CatchesKilledRecordMarkedFinished) {
  auto jobs = clean_jobs();
  jobs[0].killed = true;  // Killed *and* finished: contradictory.
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), std::move(jobs));
  const AuditReport report = audit_trace(
      trace, solo_tasks(), 200.0, fault_options(faults::OverrunAction::kKill));
  EXPECT_TRUE(has_code(report, "F3.finished")) << report.to_string();
}

TEST(Auditor, CatchesKillFiredOffBudget) {
  // A kill that did not happen at budget exhaustion (executed != C)
  // means enforcement aborted an in-contract job or fired late.
  auto jobs = clean_jobs();
  jobs[0].killed = true;
  jobs[0].finished = false;
  jobs[0].executed = 30.0;  // Budget is C = 50.
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), std::move(jobs));
  const AuditReport report = audit_trace(
      trace, solo_tasks(), 200.0, fault_options(faults::OverrunAction::kKill));
  EXPECT_TRUE(has_code(report, "F3.budget")) << report.to_string();
  const std::string message = message_of(report, "F3.budget");
  EXPECT_NE(message.find("30"), std::string::npos) << message;
  EXPECT_NE(message.find("50"), std::string::npos) << message;
}

TEST(Auditor, CatchesSurvivorPastBudgetUnderKill) {
  // With kKill armed, a record that ran past C without being killed
  // proves enforcement leaked.
  auto segments = clean_segments();
  segments[0].end = 60.0;    // tau runs [0, 60): 60 > C = 50.
  segments[1].begin = 60.0;
  auto jobs = clean_jobs();
  jobs[0].completion = 60.0;
  jobs[0].executed = 60.0;
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  const AuditReport report = audit_trace(
      trace, solo_tasks(), 200.0, fault_options(faults::OverrunAction::kKill));
  EXPECT_TRUE(has_code(report, "F1.budget")) << report.to_string();
}

TEST(Auditor, CatchesThrottledDemandPastItsReplenishedBudgets) {
  // A throttled job spanning one enforcement window holds one budget of
  // C; 60 units of demand against C = 50 exceeds it.
  auto segments = clean_segments();
  segments[0].end = 60.0;
  segments[1].begin = 60.0;
  auto jobs = clean_jobs();
  jobs[0].completion = 60.0;  // Spans a single 100-unit window.
  jobs[0].executed = 60.0;
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  const AuditReport report =
      audit_trace(trace, solo_tasks(), 200.0,
                  fault_options(faults::OverrunAction::kThrottle));
  EXPECT_TRUE(has_code(report, "F1.budget")) << report.to_string();
}

TEST(Auditor, CatchesClockSlowingAfterADetectedOverrun) {
  // Monitor mode + safe-mode fallback: the first job overruns its
  // budget at t = 50, after which the clock must hold base speed until
  // the processor next leaves the running modes.  A steady segment at
  // 0.6 violates that (F2.slow); a decelerating one violates the
  // non-decrease rule (F2.decrease).
  const auto make_trace = [](Ratio rb, Ratio re) {
    std::vector<Segment> segments = {
        seg(0.0, 50.0, ProcessorMode::kRunning, 0),
        seg(50.0, 80.0, ProcessorMode::kRunning, 0, rb, re),
        seg(80.0, 100.0, ProcessorMode::kIdleBusyWait),
        seg(100.0, 150.0, ProcessorMode::kRunning, 0),
        seg(150.0, 200.0, ProcessorMode::kIdleBusyWait)};
    const double executed = 50.0 + (rb + re) / 2.0 * 30.0;
    std::vector<JobRecord> jobs = {job(0, 0, 0.0, 100.0, 80.0, executed),
                                   job(0, 1, 100.0, 200.0, 150.0, 50.0)};
    return sim::Trace::unchecked(std::move(segments), std::move(jobs));
  };
  const AuditOptions options =
      fault_options(faults::OverrunAction::kNone, /*safe_mode=*/true);

  const AuditReport slow =
      audit_trace(make_trace(0.6, 0.6), solo_tasks(), 200.0, options);
  EXPECT_TRUE(has_code(slow, "F2.slow")) << slow.to_string();

  const AuditReport decrease =
      audit_trace(make_trace(1.0, 0.7), solo_tasks(), 200.0, options);
  EXPECT_TRUE(has_code(decrease, "F2.decrease")) << decrease.to_string();
}

TEST(Auditor, CatchesKillCounterDisagreeingWithTheTrace) {
  // A real kill run whose jobs_killed counter is then doctored.
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  core::EngineOptions options;
  options.horizon = 1000.0;
  options.record_trace = true;
  options.throw_on_miss = false;
  options.faults.overruns = {{1.0, 0.5}};
  options.containment.on_overrun = faults::OverrunAction::kKill;
  core::SimulationResult result = core::simulate(
      tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  ASSERT_GT(result.jobs_killed, 0);

  AuditOptions audit = fault_options(faults::OverrunAction::kKill);
  ASSERT_TRUE(audit_run(result, tasks, cpu, audit).ok());

  result.jobs_killed += 1;
  const AuditReport report = audit_run(result, tasks, cpu, audit);
  EXPECT_TRUE(has_code(report, "F3.count")) << report.to_string();
}

TEST(Auditor, CatchesDetectionsWithoutASafeModeEntry) {
  // Safe mode armed and anomalies detected, yet safe_mode_entries = 0:
  // the fallback never engaged.
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  core::EngineOptions options;
  options.horizon = 1000.0;
  options.record_trace = true;
  options.throw_on_miss = false;
  options.faults.overruns = {{1.0, 0.5}};
  options.containment.on_overrun = faults::OverrunAction::kKill;
  options.containment.safe_mode_fallback = true;
  core::SimulationResult result = core::simulate(
      tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  ASSERT_GT(result.overruns_detected, 0);
  ASSERT_GT(result.safe_mode_entries, 0);

  AuditOptions audit =
      fault_options(faults::OverrunAction::kKill, /*safe_mode=*/true);
  ASSERT_TRUE(audit_run(result, tasks, cpu, audit).ok());

  result.safe_mode_entries = 0;
  const AuditReport report = audit_run(result, tasks, cpu, audit);
  EXPECT_TRUE(has_code(report, "F2.entry")) << report.to_string();
}

TEST(Auditor, RequiresARecordedTrace) {
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  core::EngineOptions options;
  options.horizon = 100.0;
  core::SimulationResult result = core::simulate(
      tasks, cpu, core::SchedulerPolicy::fps(), nullptr, options);
  result.trace.reset();
  EXPECT_THROW((void)audit_run(result, tasks, cpu), std::logic_error);
}

}  // namespace
}  // namespace lpfps::audit
