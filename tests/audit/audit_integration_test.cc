// End-to-end audit sweep: every paper workload under every engine
// policy, plus the configuration corners (sleep hierarchy, context
// switch cost, release jitter), must produce zero audit violations.
// This is the library's standing proof that the engine's traces,
// counters and energy books stay mutually consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "audit/audit.h"
#include "audit/harness.h"
#include "core/static_slowdown.h"
#include "exec/exec_model.h"
#include "workloads/registry.h"

namespace lpfps::audit {
namespace {

AuditReport audit_one(const sched::TaskSet& tasks,
                      const power::ProcessorConfig& cpu,
                      const core::SchedulerPolicy& policy,
                      const exec::ExecModelPtr& exec,
                      core::EngineOptions options) {
  options.record_trace = true;
  const core::SimulationResult result =
      core::simulate(tasks, cpu, policy, exec, options);
  return audit_run(result, tasks, cpu, derive_options(policy, options));
}

TEST(AuditIntegration, AllWorkloadsAllPoliciesAreClean) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const auto cpu = power::ProcessorConfig::arm8_default();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.5);
    core::EngineOptions options;
    options.horizon = std::min(w.horizon, 1e6);
    options.seed = 7;

    std::vector<core::SchedulerPolicy> policies = {
        core::SchedulerPolicy::fps(),
        core::SchedulerPolicy::fps_timeout_shutdown(500.0),
        core::SchedulerPolicy::lpfps(),
        core::SchedulerPolicy::lpfps_optimal(),
        core::SchedulerPolicy::lpfps_powerdown_only(),
        core::SchedulerPolicy::lpfps_dvs_only(),
    };
    const auto static_ratio =
        core::min_feasible_static_ratio(w.tasks, cpu.frequencies);
    if (static_ratio) {
      policies.push_back(core::SchedulerPolicy::static_slowdown(*static_ratio));
      policies.push_back(core::SchedulerPolicy::lpfps_hybrid(*static_ratio));
    }

    for (const core::SchedulerPolicy& policy : policies) {
      const AuditReport report = audit_one(tasks, cpu, policy, exec, options);
      EXPECT_TRUE(report.ok())
          << w.name << " / " << policy.name << ": " << report.to_string();
      EXPECT_GT(report.segments_checked, 0) << w.name << "/" << policy.name;
      EXPECT_GT(report.jobs_checked, 0) << w.name << "/" << policy.name;
    }
  }
}

TEST(AuditIntegration, SleepHierarchyIsClean) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const auto cpu = power::ProcessorConfig::with_sleep_hierarchy();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    core::EngineOptions options;
    options.horizon = std::min(w.horizon, 1e6);
    options.seed = 11;
    const AuditReport report =
        audit_one(w.tasks.with_bcet_ratio(0.5), cpu,
                  core::SchedulerPolicy::lpfps(), exec, options);
    EXPECT_TRUE(report.ok()) << w.name << ": " << report.to_string();
  }
}

TEST(AuditIntegration, ContextSwitchOverheadIsClean) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  core::EngineOptions options;
  options.horizon = 1e6;
  options.context_switch_cost = 10.0;
  options.throw_on_miss = false;
  const AuditReport report =
      audit_one(w.tasks.with_bcet_ratio(0.5), cpu,
                core::SchedulerPolicy::fps(), exec, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditIntegration, ReleaseJitterIsClean) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("INS");
  const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.5);
  core::EngineOptions options;
  options.horizon = 1e6;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    options.release_jitter.push_back(
        0.01 *
        static_cast<double>(tasks[static_cast<TaskIndex>(i)].period));
  }
  const AuditReport report = audit_one(
      tasks, cpu, core::SchedulerPolicy::lpfps(), exec, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditIntegration, CountersMoveUnderLpfps) {
  // The observability counters must actually observe something: a DVS
  // workload with idle gaps has to report slowdowns, power-downs and a
  // non-trivial queue high-water mark.
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const workloads::Workload w = workloads::workload_by_name("INS");
  core::EngineOptions options;
  options.horizon = 1e6;
  const core::SimulationResult result = audit::simulate(
      w.tasks.with_bcet_ratio(0.5), power::ProcessorConfig::arm8_default(),
      core::SchedulerPolicy::lpfps(), exec, options);
  EXPECT_GT(result.dvs_slowdowns, 0);
  EXPECT_GT(result.power_downs, 0);
  EXPECT_GE(result.speed_changes, result.dvs_slowdowns);
  EXPECT_GE(result.run_queue_high_water, 1);
  EXPECT_GE(result.delay_queue_high_water, 1);
  EXPECT_LE(result.run_queue_high_water,
            static_cast<int>(w.tasks.size()));
}

}  // namespace
}  // namespace lpfps::audit
