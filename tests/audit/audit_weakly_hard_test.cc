// Adversarial weakly-hard auditor tests (W-codes): hand-build traces
// with sim::Trace::unchecked, corrupt one invariant at a time, and
// require the precise catalog code — plus W4 counter-agreement on a
// real engine run with counters corrupted after the fact.
#include "audit/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"
#include "sched/priority.h"
#include "sched/task.h"
#include "sim/trace.h"

namespace lpfps::audit {
namespace {

using sim::JobRecord;
using sim::ProcessorMode;
using sim::Segment;

/// One (1,2)-firm task: period 100, WCET 50, every other job skippable.
sched::TaskSet firm_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::with_mk_constraint(sched::make_task("firm", 100, 50.0),
                                      1, 2));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

Segment seg(Time begin, Time end, ProcessorMode mode,
            TaskIndex task = kNoTask) {
  Segment s;
  s.begin = begin;
  s.end = end;
  s.mode = mode;
  s.task = task;
  s.ratio_begin = 1.0;
  s.ratio_end = 1.0;
  return s;
}

JobRecord met_job(std::int64_t instance) {
  JobRecord j;
  j.task = 0;
  j.instance = instance;
  j.release = 100.0 * static_cast<Time>(instance);
  j.absolute_deadline = j.release + 100.0;
  j.completion = j.release + 50.0;
  j.executed = 50.0;
  j.finished = true;
  return j;
}

JobRecord skip_job(std::int64_t instance) {
  JobRecord j;
  j.task = 0;
  j.instance = instance;
  j.release = 100.0 * static_cast<Time>(instance);
  j.absolute_deadline = j.release + 100.0;
  j.completion = j.release;  // Decided at the release instant.
  j.executed = 0.0;
  j.finished = false;
  j.skipped = true;
  return j;
}

/// run, skip, run over [0, 300): the clean weakly-hard reference.
std::vector<Segment> clean_segments() {
  return {seg(0.0, 50.0, ProcessorMode::kRunning, 0),
          seg(50.0, 200.0, ProcessorMode::kIdleBusyWait),
          seg(200.0, 250.0, ProcessorMode::kRunning, 0),
          seg(250.0, 300.0, ProcessorMode::kIdleBusyWait)};
}

std::vector<JobRecord> clean_jobs() {
  return {met_job(0), skip_job(1), met_job(2)};
}

AuditOptions weakly_options() {
  AuditOptions options;
  options.weakly_hard = true;
  return options;
}

bool has_code(const AuditReport& report, const std::string& code) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.invariant == code; });
}

TEST(WeaklyHardAuditor, CleanSkipTracePasses) {
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), clean_jobs());
  const AuditReport report =
      audit_trace(trace, firm_tasks(), 300.0, weakly_options());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(WeaklyHardAuditor, SleepAcrossSkippedReleaseNeedsTheWeaklyHardBattery) {
  // Power-down spanning the skipped release: a plain audit must object
  // (S2.asleep — the sleep timer overran an arrival), while the
  // weakly-hard battery legitimizes it, because a skipped release never
  // demands the CPU.  This is the differential that proves the W
  // battery relaxes exactly the skip instants and nothing else.
  std::vector<Segment> segments = {
      seg(0.0, 50.0, ProcessorMode::kRunning, 0),
      seg(50.0, 200.0, ProcessorMode::kPowerDown),
      seg(200.0, 250.0, ProcessorMode::kRunning, 0),
      seg(250.0, 300.0, ProcessorMode::kIdleBusyWait)};
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), clean_jobs());
  const AuditReport plain = audit_trace(trace, firm_tasks(), 300.0);
  EXPECT_FALSE(plain.ok());
  EXPECT_TRUE(has_code(plain, "S2.asleep")) << plain.to_string();
  const AuditReport weakly =
      audit_trace(trace, firm_tasks(), 300.0, weakly_options());
  EXPECT_TRUE(weakly.ok()) << weakly.to_string();
}

TEST(WeaklyHardAuditor, CatchesWindowViolation) {
  // Two consecutive non-met instances on a (1,2)-firm task: the window
  // ending at instance 1 holds zero met jobs.
  auto jobs = clean_jobs();
  jobs[0] = skip_job(0);  // skip, skip, run.
  std::vector<Segment> segments = {
      seg(0.0, 200.0, ProcessorMode::kIdleBusyWait),
      seg(200.0, 250.0, ProcessorMode::kRunning, 0),
      seg(250.0, 300.0, ProcessorMode::kIdleBusyWait)};
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  const AuditReport report =
      audit_trace(trace, firm_tasks(), 300.0, weakly_options());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "W1.window")) << report.to_string();
  // The second skip was also impermissible (instance 0 not met).
  EXPECT_TRUE(has_code(report, "W2.impermissible")) << report.to_string();
}

TEST(WeaklyHardAuditor, CatchesImpermissibleSkipOverSkip) {
  // skip-over s = 2 forbids skips among the s-1 preceding jobs; a
  // second adjacent skip is impermissible even though the first was
  // fine.
  sched::TaskSet tasks;
  tasks.add(sched::with_skip_parameter(sched::make_task("skippy", 100, 50.0),
                                       2));
  sched::assign_rate_monotonic(tasks);
  std::vector<Segment> segments = {
      seg(0.0, 50.0, ProcessorMode::kRunning, 0),
      seg(50.0, 300.0, ProcessorMode::kIdleBusyWait),
      seg(300.0, 350.0, ProcessorMode::kRunning, 0),
      seg(350.0, 400.0, ProcessorMode::kIdleBusyWait)};
  std::vector<JobRecord> jobs = {met_job(0), skip_job(1), skip_job(2),
                                 met_job(3)};
  const sim::Trace trace =
      sim::Trace::unchecked(std::move(segments), std::move(jobs));
  const AuditReport report =
      audit_trace(trace, tasks, 400.0, weakly_options());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "W2.impermissible")) << report.to_string();
}

TEST(WeaklyHardAuditor, CatchesSkipOnHardTask) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("hard", 100, 50.0));
  sched::assign_rate_monotonic(tasks);
  const sim::Trace trace =
      sim::Trace::unchecked(clean_segments(), clean_jobs());
  const AuditReport report =
      audit_trace(trace, tasks, 300.0, weakly_options());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "W3.hard-skip")) << report.to_string();
}

TEST(WeaklyHardAuditor, CatchesSkipRecordShapeCorruption) {
  {
    auto jobs = clean_jobs();
    jobs[1].finished = true;  // A skip cannot also have finished.
    const sim::Trace trace =
        sim::Trace::unchecked(clean_segments(), std::move(jobs));
    const AuditReport report =
        audit_trace(trace, firm_tasks(), 300.0, weakly_options());
    EXPECT_TRUE(has_code(report, "W3.flags")) << report.to_string();
  }
  {
    auto jobs = clean_jobs();
    jobs[1].executed = 5.0;  // A skipped job never touches the CPU.
    const sim::Trace trace =
        sim::Trace::unchecked(clean_segments(), std::move(jobs));
    const AuditReport report =
        audit_trace(trace, firm_tasks(), 300.0, weakly_options());
    EXPECT_TRUE(has_code(report, "W3.demand")) << report.to_string();
  }
  {
    auto jobs = clean_jobs();
    jobs[1].completion = jobs[1].release + 30.0;  // Decided late.
    const sim::Trace trace =
        sim::Trace::unchecked(clean_segments(), std::move(jobs));
    const AuditReport report =
        audit_trace(trace, firm_tasks(), 300.0, weakly_options());
    EXPECT_TRUE(has_code(report, "W3.instant")) << report.to_string();
  }
}

TEST(WeaklyHardAuditor, CatchesCounterDisagreementOnEngineRun) {
  // A real armed engine run over an overloaded set: the full audit
  // battery passes, then each weakly-hard counter corruption is caught.
  sched::TaskSet tasks;
  tasks.add(sched::with_mk_constraint(
      sched::make_task("firm", 10'000, 6000.0), 1, 2));
  tasks.add(sched::make_task("hard", 20'000, 9000.0));
  sched::assign_rate_monotonic(tasks);
  const auto cpu = power::ProcessorConfig::arm8_default();
  core::EngineOptions options;
  options.horizon = 100'000;
  options.throw_on_miss = false;
  options.record_trace = true;
  core::SimulationResult result = core::simulate(
      tasks, cpu, core::SchedulerPolicy::fps(), nullptr, options);
  ASSERT_GT(result.jobs_skipped_weakly, 0);

  AuditOptions audit = weakly_options();
  audit.expect_no_misses = false;
  EXPECT_TRUE(audit_run(result, tasks, cpu, audit).ok());

  core::SimulationResult skewed_skips = result;
  skewed_skips.jobs_skipped_weakly += 1;
  EXPECT_TRUE(
      has_code(audit_run(skewed_skips, tasks, cpu, audit), "W4.skips"));

  core::SimulationResult skewed_violations = result;
  skewed_violations.mk_violations = -1;  // Replay finds >= 0.
  EXPECT_TRUE(has_code(audit_run(skewed_violations, tasks, cpu, audit),
                       "W4.violations"));
}

}  // namespace
}  // namespace lpfps::audit
