// Tests for the default-on audit wiring: the LPFPS_AUDIT toggle, the
// audited drop-in simulate(), counter aggregation, and the AUDIT report
// writer the CI gate consumes.
#include "audit/harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sched/priority.h"
#include "sched/task.h"

namespace lpfps::audit {
namespace {

sched::TaskSet solo_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", 100, 50.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

core::EngineOptions engine_options(Time horizon) {
  core::EngineOptions options;
  options.horizon = horizon;
  return options;
}

class AuditEnv : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("LPFPS_AUDIT"); }
};

TEST_F(AuditEnv, EnabledByDefaultAndOptOutSpellings) {
  unsetenv("LPFPS_AUDIT");
  EXPECT_TRUE(enabled());
  for (const char* off : {"0", "off", "false"}) {
    setenv("LPFPS_AUDIT", off, 1);
    EXPECT_FALSE(enabled()) << off;
  }
  for (const char* on : {"1", "on", "true", "anything"}) {
    setenv("LPFPS_AUDIT", on, 1);
    EXPECT_TRUE(enabled()) << on;
  }
}

TEST_F(AuditEnv, SimulateMatchesCoreSimulate) {
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  const auto policy = core::SchedulerPolicy::lpfps();
  const core::SimulationResult plain =
      core::simulate(tasks, cpu, policy, nullptr, engine_options(1000.0));
  const core::SimulationResult audited =
      audit::simulate(tasks, cpu, policy, nullptr, engine_options(1000.0));
  EXPECT_EQ(audited.total_energy, plain.total_energy);
  EXPECT_EQ(audited.jobs_completed, plain.jobs_completed);
  EXPECT_EQ(audited.power_downs, plain.power_downs);
  // The forced audit trace is dropped when the caller did not ask.
  EXPECT_FALSE(audited.trace.has_value());

  core::EngineOptions with_trace = engine_options(1000.0);
  with_trace.record_trace = true;
  EXPECT_TRUE(
      audit::simulate(tasks, cpu, policy, nullptr, with_trace).trace.has_value());
}

TEST_F(AuditEnv, DisabledSimulateSkipsTheAudit) {
  setenv("LPFPS_AUDIT", "0", 1);
  AuditAggregator agg("harness_unit_disabled");
  const core::SimulationResult result =
      audit::simulate(solo_tasks(), power::ProcessorConfig::arm8_default(),
               core::SchedulerPolicy::lpfps(), nullptr,
               engine_options(1000.0), &agg);
  EXPECT_GT(result.jobs_completed, 0);
  EXPECT_EQ(agg.runs(), 0);  // Nothing audited, nothing aggregated.
}

TEST_F(AuditEnv, AggregatorAccumulatesAndChecks) {
  AuditAggregator agg("harness_unit");
  const sched::TaskSet tasks = solo_tasks();
  const auto cpu = power::ProcessorConfig::arm8_default();
  for (int seed = 1; seed <= 3; ++seed) {
    core::EngineOptions options = engine_options(1000.0);
    options.seed = static_cast<std::uint64_t>(seed);
    (void)audit::simulate(tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr,
                   options, &agg);
  }
  EXPECT_EQ(agg.runs(), 3);
  EXPECT_EQ(agg.violation_count(), 0);
  EXPECT_EQ(agg.counters().jobs_completed, 30);
  EXPECT_NO_THROW(agg.check());

  const std::string line = agg.summary_line();
  EXPECT_NE(line.find("audit[harness_unit]"), std::string::npos);
  EXPECT_NE(line.find("3 runs"), std::string::npos);
  EXPECT_NE(line.find("0 violations"), std::string::npos);
}

TEST_F(AuditEnv, AggregatorCheckThrowsWithViolationDetail) {
  AuditAggregator agg("harness_unit_bad");
  AuditReport bad;
  bad.violations.push_back({"T1.overlap", 42.0, "segments collide"});
  agg.add(bad, core::SimulationResult{});
  EXPECT_EQ(agg.violation_count(), 1);
  try {
    agg.check();
    FAIL() << "check() must throw on violations";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("T1.overlap"), std::string::npos);
    EXPECT_NE(what.find("segments collide"), std::string::npos);
  }
}

TEST_F(AuditEnv, WriteReportEmitsAuditJson) {
  ASSERT_EQ(setenv("LPFPS_BENCH_JSON_DIR", "/tmp", 1), 0);
  AuditAggregator agg("harness_unit_report");
  AuditReport bad;
  bad.segments_checked = 7;
  bad.violations.push_back({"J2.work", 10.0, "integral off by 1"});
  agg.add(bad, core::SimulationResult{});
  const std::string path = agg.write_report();
  ASSERT_EQ(unsetenv("LPFPS_BENCH_JSON_DIR"), 0);

  EXPECT_EQ(path, "/tmp/AUDIT_harness_unit_report.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string json = contents.str();
  EXPECT_NE(json.find("\"kind\":\"audit_report\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"segments_checked\":7"), std::string::npos);
  EXPECT_NE(json.find("\"invariant\":\"J2.work\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(CounterTotals, SumsCountersAndMaxesHighWaters) {
  core::SimulationResult a;
  a.jobs_completed = 3;
  a.power_downs = 2;
  a.dvs_slowdowns = 1;
  a.run_queue_high_water = 4;
  a.simulated_time = 100.0;
  a.total_energy = 25.0;
  core::SimulationResult b;
  b.jobs_completed = 5;
  b.power_downs = 1;
  b.run_queue_high_water = 2;
  b.delay_queue_high_water = 3;
  b.simulated_time = 50.0;
  b.total_energy = 10.0;

  CounterTotals totals;
  totals.add(a);
  totals.add(b);
  EXPECT_EQ(totals.runs, 2);
  EXPECT_EQ(totals.jobs_completed, 8);
  EXPECT_EQ(totals.power_downs, 3);
  EXPECT_EQ(totals.dvs_slowdowns, 1);
  EXPECT_EQ(totals.run_queue_high_water, 4);
  EXPECT_EQ(totals.delay_queue_high_water, 3);
  EXPECT_DOUBLE_EQ(totals.simulated_time, 150.0);
  EXPECT_DOUBLE_EQ(totals.total_energy, 35.0);
}

TEST(CounterTotals, CsvHeaderAndRowAgreeOnColumns) {
  const std::string header = counters_csv_header();
  const std::string row = counters_csv_row(CounterTotals{});
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(header.find("dvs_slowdowns"), std::string::npos);
  EXPECT_NE(header.find("run_queue_high_water"), std::string::npos);
}

TEST(DeriveOptions, MirrorsEngineConfiguration) {
  core::EngineOptions options;
  options.horizon = 100.0;

  const AuditOptions plain =
      derive_options(core::SchedulerPolicy::lpfps(), options);
  EXPECT_DOUBLE_EQ(plain.base_ratio, 1.0);
  EXPECT_TRUE(plain.expect_no_misses);
  EXPECT_TRUE(plain.check_job_demand);
  EXPECT_TRUE(plain.check_work_conserving);
  EXPECT_TRUE(plain.check_dvs_plans);

  const AuditOptions fps =
      derive_options(core::SchedulerPolicy::fps(), options);
  EXPECT_FALSE(fps.check_dvs_plans);  // FPS never plans a slowdown.

  const AuditOptions static_policy = derive_options(
      core::SchedulerPolicy::static_slowdown(0.75), options);
  EXPECT_DOUBLE_EQ(static_policy.base_ratio, 0.75);

  core::EngineOptions overhead = options;
  overhead.context_switch_cost = 5.0;
  EXPECT_FALSE(
      derive_options(core::SchedulerPolicy::lpfps(), overhead)
          .check_job_demand);

  core::EngineOptions jittery = options;
  jittery.release_jitter = {1.0};
  const AuditOptions jitter_opts =
      derive_options(core::SchedulerPolicy::lpfps(), jittery);
  EXPECT_FALSE(jitter_opts.check_work_conserving);
  EXPECT_FALSE(jitter_opts.check_full_speed_at_releases);
  EXPECT_FALSE(jitter_opts.check_dvs_plans);

  core::EngineOptions tolerant = options;
  tolerant.throw_on_miss = false;
  EXPECT_FALSE(derive_options(core::SchedulerPolicy::lpfps(), tolerant)
                   .expect_no_misses);
}

}  // namespace
}  // namespace lpfps::audit
