// admission/pipeline.h — N-worker session batches replay bit-identically
// (the runner determinism contract carried up through the service).
#include "admission/pipeline.h"

#include <gtest/gtest.h>

#include <vector>

namespace lpfps::admission {
namespace {

std::vector<SessionSpec> batch(std::size_t sessions) {
  std::vector<SessionSpec> specs(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    specs[i].churn.requests = 40;
    specs[i].churn.initial_tasks = 4 + static_cast<int>(i % 4);
    specs[i].seed = 0x5e550000 + i;
  }
  return specs;
}

void expect_equal(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.decision_digest, b.decision_digest);
  EXPECT_EQ(a.final_fingerprint, b.final_fingerprint);
  // Accounting replays exactly too: each session owns its service, so
  // cache and RTA counters are thread-count-independent.
  EXPECT_EQ(a.stats.levels_probed, b.stats.levels_probed);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.rta.tasks_reanalyzed, b.rta.tasks_reanalyzed);
  EXPECT_EQ(a.rta.tasks_seeded, b.rta.tasks_seeded);
  EXPECT_EQ(a.rta.tasks_kept, b.rta.tasks_kept);
}

TEST(AdmissionPipeline, SerialAndParallelRunsAreBitIdentical) {
  const std::vector<SessionSpec> specs = batch(12);
  const auto serial = run_sessions(specs, 1);
  const auto parallel4 = run_sessions(specs, 4);
  const auto parallel7 = run_sessions(specs, 7);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel4.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_equal(serial[i], parallel4[i]);
    expect_equal(serial[i], parallel7[i]);
  }
}

TEST(AdmissionPipeline, SessionsAreIndependentOfBatchComposition) {
  // A session's result depends only on its own spec — running it alone
  // equals running it inside a larger batch.
  const std::vector<SessionSpec> specs = batch(6);
  const auto in_batch = run_sessions(specs, 3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_equal(in_batch[i], run_session(specs[i]));
  }
}

TEST(AdmissionPipeline, SessionsDoRealWork) {
  const auto results = run_sessions(batch(4), 2);
  for (const SessionResult& r : results) {
    EXPECT_GT(r.requests, 0u);
    EXPECT_GT(r.admitted, 0u);
    EXPECT_EQ(r.requests, r.admitted + r.rejected);
    EXPECT_EQ(r.stats.requests, r.requests);
  }
}

}  // namespace
}  // namespace lpfps::admission
