// admission/pipeline.h — N-worker session batches replay bit-identically
// (the runner determinism contract carried up through the service).
#include "admission/pipeline.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "admission/cache.h"

namespace lpfps::admission {
namespace {

std::vector<SessionSpec> batch(std::size_t sessions) {
  std::vector<SessionSpec> specs(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    specs[i].churn.requests = 40;
    specs[i].churn.initial_tasks = 4 + static_cast<int>(i % 4);
    specs[i].seed = 0x5e550000 + i;
  }
  return specs;
}

void expect_equal(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.decision_digest, b.decision_digest);
  EXPECT_EQ(a.final_fingerprint, b.final_fingerprint);
  // Accounting replays exactly too: each session owns its service, so
  // cache and RTA counters are thread-count-independent.
  EXPECT_EQ(a.stats.levels_probed, b.stats.levels_probed);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.evictions, b.cache.evictions);
  EXPECT_EQ(a.rta.tasks_reanalyzed, b.rta.tasks_reanalyzed);
  EXPECT_EQ(a.rta.tasks_seeded, b.rta.tasks_seeded);
  EXPECT_EQ(a.rta.tasks_kept, b.rta.tasks_kept);
}

TEST(AdmissionPipeline, SerialAndParallelRunsAreBitIdentical) {
  const std::vector<SessionSpec> specs = batch(12);
  const auto serial = run_sessions(specs, 1);
  const auto parallel4 = run_sessions(specs, 4);
  const auto parallel7 = run_sessions(specs, 7);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel4.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_equal(serial[i], parallel4[i]);
    expect_equal(serial[i], parallel7[i]);
  }
}

TEST(AdmissionPipeline, SessionsAreIndependentOfBatchComposition) {
  // A session's result depends only on its own spec — running it alone
  // equals running it inside a larger batch.
  const std::vector<SessionSpec> specs = batch(6);
  const auto in_batch = run_sessions(specs, 3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_equal(in_batch[i], run_session(specs[i]));
  }
}

TEST(AdmissionPipeline, CacheCapacityNeverChangesDecisions) {
  // Accounting is excluded from the decision digest, so squeezing the
  // cache (different hit/eviction trajectories) must leave every digest
  // untouched while the counters visibly diverge.
  std::vector<SessionSpec> roomy = batch(6);
  std::vector<SessionSpec> tight = batch(6);
  for (SessionSpec& spec : tight) spec.service.cache_capacity = 1;
  const auto a = run_sessions(roomy, 2);
  const auto b = run_sessions(tight, 2);
  bool counters_differ = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].decision_digest, b[i].decision_digest) << i;
    EXPECT_EQ(a[i].final_fingerprint, b[i].final_fingerprint) << i;
    counters_differ = counters_differ ||
                      a[i].cache.hits != b[i].cache.hits ||
                      a[i].cache.evictions != b[i].cache.evictions;
  }
  EXPECT_TRUE(counters_differ);  // The arms really took different paths.
}

TEST(AdmissionPipeline, SharedCacheBatchesMatchPrivateSerialBitwise) {
  // One SharedAdmissionCache across the whole batch: which session pays
  // for an analysis becomes thread-timing dependent, but every decision
  // digest must stay byte-identical to the serial private-cache run —
  // at 1 worker and at 4.
  const std::vector<SessionSpec> private_specs = batch(8);
  const auto reference = run_sessions(private_specs, 1);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<SessionSpec> shared_specs = batch(8);
    const auto cache = std::make_shared<SharedAdmissionCache>(4096);
    for (SessionSpec& spec : shared_specs) spec.service.shared_cache = cache;
    const auto shared = run_sessions(shared_specs, threads);
    ASSERT_EQ(shared.size(), reference.size());
    for (std::size_t i = 0; i < shared.size(); ++i) {
      EXPECT_EQ(shared[i].decision_digest, reference[i].decision_digest)
          << "threads=" << threads << " session " << i;
      EXPECT_EQ(shared[i].final_fingerprint, reference[i].final_fingerprint)
          << "threads=" << threads << " session " << i;
      EXPECT_EQ(shared[i].requests, reference[i].requests);
      EXPECT_EQ(shared[i].admitted, reference[i].admitted);
      EXPECT_EQ(shared[i].rejected, reference[i].rejected);
    }
  }
}

TEST(AdmissionPipeline, MulticoreBatchesReplayAcrossThreadCounts) {
  std::vector<MulticoreSessionSpec> specs(8);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].churn.requests = 40;
    specs[i].churn.initial_tasks = 4 + static_cast<int>(i % 4);
    specs[i].cores = 2 + static_cast<int>(i % 3);
    specs[i].seed = 0xc0de0000 + i;
  }
  const auto serial = run_multicore_sessions(specs, 1);
  const auto parallel4 = run_multicore_sessions(specs, 4);
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].decision_digest, parallel4[i].decision_digest) << i;
    EXPECT_EQ(serial[i].final_fingerprint, parallel4[i].final_fingerprint)
        << i;
    EXPECT_EQ(serial[i].requests, parallel4[i].requests);
    EXPECT_EQ(serial[i].rta.tasks_reanalyzed,
              parallel4[i].rta.tasks_reanalyzed)
        << i;
    EXPECT_GT(serial[i].requests, 0u);
  }
}

TEST(AdmissionPipeline, SessionsDoRealWork) {
  const auto results = run_sessions(batch(4), 2);
  for (const SessionResult& r : results) {
    EXPECT_GT(r.requests, 0u);
    EXPECT_GT(r.admitted, 0u);
    EXPECT_EQ(r.requests, r.admitted + r.rejected);
    EXPECT_EQ(r.stats.requests, r.requests);
  }
}

}  // namespace
}  // namespace lpfps::admission
