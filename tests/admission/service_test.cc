// admission/service.h — admit/reject semantics, rollback, and the
// minimum-safe-frequency answer checked against brute force.
#include "admission/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "admission/workload.h"
#include "common/float_compare.h"
#include "power/frequency.h"
#include "sched/analysis.h"
#include "sched/task.h"
#include "wcet/scaling.h"

namespace lpfps::admission {
namespace {

sched::Task task(const char* name, std::int64_t period, Work wcet,
                 sched::Priority priority) {
  sched::Task t = sched::make_task(name, period, wcet);
  t.priority = priority;
  return t;
}

Request add(sched::Task t) {
  Request r;
  r.kind = RequestKind::kAdd;
  r.task = std::move(t);
  return r;
}

Request remove(TaskIndex index) {
  Request r;
  r.kind = RequestKind::kRemove;
  r.index = index;
  return r;
}

Request mutate(TaskIndex index, sched::Task t) {
  Request r;
  r.kind = RequestKind::kMutate;
  r.index = index;
  r.task = std::move(t);
  return r;
}

ServiceConfig small_table_config() {
  ServiceConfig config;
  config.table = power::FrequencyTable::from_levels({25, 50, 75, 100});
  return config;
}

/// Reference answer: scan levels from the bottom, first feasible wins.
int brute_force_min_level(const sched::TaskSet& tasks,
                          const ServiceConfig& config) {
  const auto& levels = config.table.levels();
  for (int level = 0; level < static_cast<int>(levels.size()); ++level) {
    const auto scaled = wcet::scaled_task_set(
        tasks, config.scaling,
        config.table.ratio_of(levels[static_cast<std::size_t>(level)]));
    if (!scaled.has_value()) continue;
    bool feasible = true;
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(scaled->size()); ++i) {
      const auto r = sched::response_time_from_seed(*scaled, i,
                                                    (*scaled)[i].wcet);
      if (!r.has_value() ||
          definitely_greater(*r, static_cast<double>((*scaled)[i].deadline))) {
        feasible = false;
        break;
      }
    }
    if (feasible) return level;
  }
  return static_cast<int>(levels.size()) - 1;
}

/// Reference for the sensitivity answer: every WCET stretched to
/// `level` and further scaled by `scale`, then the exact RTA — the
/// materialized mirror of AdmissionService::headroom_feasible.
bool reference_headroom_feasible(const sched::TaskSet& tasks,
                                 const ServiceConfig& config, int level,
                                 double scale) {
  const MegaHertz f = config.table.levels()[static_cast<std::size_t>(level)];
  const double stretch = config.scaling.stretch(config.table.ratio_of(f));
  sched::TaskSet scaled;
  for (const sched::Task& t : tasks.tasks()) {
    sched::Task s = t;
    s.wcet = t.wcet * stretch * scale;
    if (s.wcet > static_cast<double>(s.deadline)) return false;
    s.bcet = std::min(s.bcet, s.wcet);
    scaled.add(s);
  }
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(scaled.size()); ++i) {
    const auto r = sched::response_time_from_seed(scaled, i, scaled[i].wcet);
    if (!r.has_value() ||
        definitely_greater(*r, static_cast<double>(scaled[i].deadline))) {
      return false;
    }
  }
  return true;
}

TEST(AdmissionService, AdmitsFeasibleAddAndReportsMinFrequency) {
  AdmissionService service(sched::TaskSet{}, small_table_config());
  const Decision d = service.handle(add(task("a", 100, 10.0, 0)));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.kind, RequestKind::kAdd);
  EXPECT_EQ(d.task_count, 1);
  // U = 0.1: even 25 MHz (ideal stretch 4x -> WCET 40 <= D 100) works.
  EXPECT_EQ(d.min_level, 0);
  EXPECT_DOUBLE_EQ(d.min_safe_mhz, 25.0);
  EXPECT_DOUBLE_EQ(d.min_safe_ratio, 0.25);
  EXPECT_EQ(service.fingerprint(), d.fingerprint);
}

TEST(AdmissionService, RejectRollsBackEveryObservableState) {
  AdmissionService service(sched::TaskSet{}, small_table_config());
  service.handle(add(task("a", 100, 60.0, 0)));
  const std::uint64_t fp_before = service.fingerprint();
  const auto r_before = service.response_times();

  // 60/100 + 50/100 > 1: unschedulable even at f_max.
  const Decision d = service.handle(add(task("b", 100, 50.0, 1)));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.min_level, -1);
  EXPECT_DOUBLE_EQ(d.min_safe_mhz, 0.0);
  EXPECT_EQ(d.task_count, 1);  // Still just "a".
  EXPECT_NE(d.fingerprint, fp_before);  // The *candidate's* fingerprint.
  EXPECT_EQ(service.fingerprint(), fp_before);
  EXPECT_EQ(service.tasks().size(), 1u);
  ASSERT_EQ(service.response_times().size(), r_before.size());
  EXPECT_EQ(service.response_times()[0], r_before[0]);
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(AdmissionService, RemovalsAreAlwaysAdmitted) {
  AdmissionService service(sched::TaskSet{}, small_table_config());
  service.handle(add(task("a", 100, 40.0, 0)));
  service.handle(add(task("b", 200, 80.0, 1)));
  const Decision d = service.handle(remove(0));
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.kind, RequestKind::kRemove);
  EXPECT_EQ(d.task_count, 1);
  EXPECT_EQ(service.tasks()[0].name, "b");
}

TEST(AdmissionService, PriorityClashIsRejectedWithoutAnalysis) {
  AdmissionService service(sched::TaskSet{}, small_table_config());
  service.handle(add(task("a", 100, 10.0, 0)));
  const Decision d = service.handle(add(task("b", 200, 10.0, 0)));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.tasks_reanalyzed, 0);
  EXPECT_EQ(service.tasks().size(), 1u);
}

TEST(AdmissionService, MutateAdmitsAndRejects) {
  AdmissionService service(sched::TaskSet{}, small_table_config());
  service.handle(add(task("a", 100, 40.0, 0)));
  // Growing to 90 still fits (R = 90 <= 100)...
  EXPECT_TRUE(service.handle(mutate(0, task("a", 100, 90.0, 0))).admitted);
  EXPECT_DOUBLE_EQ(service.tasks()[0].wcet, 90.0);
  // ...but a second task then cannot.
  EXPECT_FALSE(service.handle(add(task("b", 100, 20.0, 1))).admitted);
  // Shrinking back always admits.
  EXPECT_TRUE(service.handle(mutate(0, task("a", 100, 10.0, 0))).admitted);
}

TEST(AdmissionService, MinLevelMatchesBruteForceOverChurn) {
  // Both search strategies (hinted walk and binary search), against the
  // linear-scan reference, across a random churn run on the full
  // ARM8-like 93-level table.
  for (const bool incremental : {true, false}) {
    ServiceConfig config;
    config.incremental = incremental;
    config.scaling = wcet::FrequencyScalingModel{0.3};
    ChurnConfig churn;
    churn.requests = 80;
    const ChurnStream stream = make_churn_stream(churn, 2026);
    AdmissionService service(stream.initial, config);
    int checked = 0;
    for (const ChurnOp& op : stream.ops) {
      const auto request = resolve(op, service.tasks());
      if (!request.has_value()) continue;
      const Decision d = service.handle(*request);
      if (!d.admitted) continue;
      ASSERT_EQ(d.min_level, brute_force_min_level(service.tasks(), config))
          << "incremental=" << incremental;
      ++checked;
    }
    EXPECT_GT(checked, 20) << "churn run admitted too few requests";
  }
}

TEST(AdmissionService, MemoryBoundTasksNeedLowerFrequency) {
  // beta > 0 stretches WCET less when slowing down, so the minimum safe
  // level can only be <= the ideal model's.
  ServiceConfig ideal = small_table_config();
  ServiceConfig memory_bound = small_table_config();
  memory_bound.scaling = wcet::FrequencyScalingModel{0.8};

  AdmissionService a(sched::TaskSet{}, ideal);
  AdmissionService b(sched::TaskSet{}, memory_bound);
  const Decision da = a.handle(add(task("t", 100, 60.0, 0)));
  const Decision db = b.handle(add(task("t", 100, 60.0, 0)));
  ASSERT_TRUE(da.admitted);
  ASSERT_TRUE(db.admitted);
  // Ideal: 75 MHz stretches 60 -> 80 <= 100, 50 MHz -> 120 > 100.
  EXPECT_EQ(da.min_level, 2);
  // beta=0.8 at 25 MHz: stretch = 1 + 0.2*3 = 1.6 -> 96 <= 100.
  EXPECT_EQ(db.min_level, 0);
  EXPECT_LE(db.min_level, da.min_level);
}

TEST(AdmissionService, CacheHitReplaysDecisionBitwise) {
  // add A, add B, remove B, re-add B: the final state repeats an
  // earlier fingerprint, so the second "add B" must hit and reproduce
  // the exact first decision.
  ServiceConfig with_cache = small_table_config();
  ServiceConfig no_cache = small_table_config();
  no_cache.use_cache = false;

  AdmissionService cached(sched::TaskSet{}, with_cache);
  AdmissionService plain(sched::TaskSet{}, no_cache);
  const sched::Task a = task("a", 100, 30.0, 0);
  const sched::Task b = task("b", 400, 100.0, 1);

  Decision dc{}, dp{};
  for (const Request& r :
       {add(a), add(b), remove(1), add(b)}) {
    dc = cached.handle(r);
    dp = plain.handle(r);
    EXPECT_EQ(dc.admitted, dp.admitted);
    EXPECT_EQ(dc.min_level, dp.min_level);
    EXPECT_EQ(dc.min_safe_mhz, dp.min_safe_mhz);  // Bitwise.
    EXPECT_EQ(dc.fingerprint, dp.fingerprint);
  }
  EXPECT_TRUE(dc.cache_hit);   // The re-add replayed from the cache.
  EXPECT_FALSE(dp.cache_hit);  // The uncached arm analyzed again.
  EXPECT_GE(cached.cache_counters().hits, 1u);
  EXPECT_EQ(plain.cache_counters().hits, 0u);
  // Adopted state is indistinguishable from the recomputed one.
  ASSERT_EQ(cached.response_times().size(), plain.response_times().size());
  for (std::size_t i = 0; i < cached.response_times().size(); ++i) {
    EXPECT_EQ(cached.response_times()[i], plain.response_times()[i]);
  }
}

TEST(AdmissionService, StationaryChurnAnswersWithoutSearching) {
  // Measured-WCET-revision churn (every mutate a small relative scale)
  // leaves the minimum-frequency boundary where it was almost every
  // request: the incremental arm must take the stationary fast path and
  // probe far fewer levels than the binary-searching reference — with
  // byte-identical decisions.
  ChurnConfig churn;
  churn.requests = 120;
  churn.initial_tasks = 8;
  churn.initial_utilization = 0.55;
  churn.add_fraction = 0.02;
  churn.remove_fraction = 0.02;
  churn.relative_mutates = 1.0;
  churn.deadline_monotonic_hints = true;
  const ChurnStream stream = make_churn_stream(churn, 99);

  ServiceConfig fast_config;
  fast_config.scaling = wcet::FrequencyScalingModel{0.3};
  ServiceConfig reference_config = fast_config;
  reference_config.incremental = false;

  AdmissionService fast(stream.initial, fast_config);
  AdmissionService reference(stream.initial, reference_config);
  for (const ChurnOp& op : stream.ops) {
    const auto request = resolve(op, fast.tasks());
    if (!request.has_value()) continue;
    const Decision df = fast.handle(*request);
    const Decision dr = reference.handle(*request);
    ASSERT_EQ(df.admitted, dr.admitted);
    ASSERT_EQ(df.min_level, dr.min_level);
    ASSERT_EQ(df.min_safe_mhz, dr.min_safe_mhz);        // Bitwise.
    ASSERT_EQ(df.wcet_headroom, dr.wcet_headroom);      // Bitwise.
    ASSERT_EQ(df.fingerprint, dr.fingerprint);
  }
  EXPECT_GT(fast.stats().stationary_hits, 0u);
  EXPECT_LT(fast.stats().levels_probed, reference.stats().levels_probed);
}

TEST(AdmissionService, HeadroomBracketsTheFeasibilityBoundary) {
  // For every admitted request, the reported headroom must be feasible
  // and a hair above it infeasible (the probe schedule's final bracket
  // is narrower than 0.1%), against the materialized reference.
  ServiceConfig config;
  config.scaling = wcet::FrequencyScalingModel{0.3};
  ChurnConfig churn;
  churn.requests = 80;
  const ChurnStream stream = make_churn_stream(churn, 515);
  AdmissionService service(stream.initial, config);
  int checked = 0;
  for (const ChurnOp& op : stream.ops) {
    const auto request = resolve(op, service.tasks());
    if (!request.has_value()) continue;
    const Decision d = service.handle(*request);
    if (!d.admitted) continue;
    ASSERT_GE(d.wcet_headroom, 1.0);
    if (d.wcet_headroom >= 1048576.0) continue;  // Capped: no boundary.
    EXPECT_TRUE(reference_headroom_feasible(service.tasks(), config,
                                            d.min_level, d.wcet_headroom));
    EXPECT_FALSE(reference_headroom_feasible(
        service.tasks(), config, d.min_level, d.wcet_headroom * 1.001));
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(AdmissionService, SensitivityOffReportsZeroHeadroom) {
  ServiceConfig config = small_table_config();
  config.sensitivity = false;
  AdmissionService service(sched::TaskSet{}, config);
  const Decision d = service.handle(add(task("a", 100, 10.0, 0)));
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(d.wcet_headroom, 0.0);
  EXPECT_EQ(service.stats().headroom_probes, 0u);
}

TEST(AdmissionService, EnvOverridesCacheCapacity) {
  const sched::Task a = task("a", 100, 30.0, 0);
  const sched::Task b = task("b", 400, 100.0, 1);

  ::setenv("LPFPS_ADMISSION_CACHE", "0", 1);
  {
    AdmissionService service(sched::TaskSet{}, small_table_config());
    for (const Request& r : {add(a), add(b), remove(1), add(b)}) {
      service.handle(r);
    }
    EXPECT_EQ(service.cache_counters().hits, 0u);
    EXPECT_EQ(service.cache_counters().insertions, 0u);
  }
  {
    // 0 must silence a shared cache too.
    ServiceConfig config = small_table_config();
    config.shared_cache = std::make_shared<SharedAdmissionCache>(64, 2);
    AdmissionService service(sched::TaskSet{}, config);
    service.handle(add(a));
    EXPECT_EQ(config.shared_cache->size(), 0u);
  }

  ::setenv("LPFPS_ADMISSION_CACHE", "1", 1);
  {
    AdmissionService service(sched::TaskSet{}, small_table_config());
    for (const Request& r : {add(a), add(b), remove(1), add(b)}) {
      service.handle(r);
    }
    // Capacity 1 cannot hold the distinct candidate sets.
    EXPECT_GT(service.cache_counters().evictions, 0u);
  }
  ::unsetenv("LPFPS_ADMISSION_CACHE");
}

TEST(AdmissionService, SharedCacheServesAcrossServicesNotAcrossConfigs) {
  const auto shared = std::make_shared<SharedAdmissionCache>(1024, 4);
  ServiceConfig config = small_table_config();
  config.shared_cache = shared;
  const sched::Task a = task("a", 100, 30.0, 0);
  const sched::Task b = task("b", 400, 100.0, 1);

  // A private-cache reference supplies the expected decisions.
  AdmissionService reference(sched::TaskSet{}, small_table_config());
  AdmissionService first(sched::TaskSet{}, config);
  std::vector<Decision> expected;
  for (const Request& r : {add(a), add(b)}) {
    expected.push_back(reference.handle(r));
    first.handle(r);
  }
  EXPECT_EQ(first.cache_counters().hits, 0u);
  EXPECT_GE(first.cache_counters().insertions, 2u);

  // A second service on the same shared cache replays first's analyses
  // — bit-identically to the private-cache reference.
  AdmissionService second(sched::TaskSet{}, config);
  std::size_t i = 0;
  for (const Request& r : {add(a), add(b)}) {
    const Decision d = second.handle(r);
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(d.admitted, expected[i].admitted);
    EXPECT_EQ(d.min_level, expected[i].min_level);
    EXPECT_EQ(d.min_safe_mhz, expected[i].min_safe_mhz);    // Bitwise.
    EXPECT_EQ(d.wcet_headroom, expected[i].wcet_headroom);  // Bitwise.
    EXPECT_EQ(d.fingerprint, expected[i].fingerprint);
    EXPECT_TRUE(d.cache_hit);
    ++i;
  }
  EXPECT_EQ(second.cache_counters().hits, 2u);

  // A differently configured service sharing the cache must never be
  // served first's entries: the config token isolates the key spaces.
  ServiceConfig other = config;
  other.scaling = wcet::FrequencyScalingModel{0.5};
  AdmissionService third(sched::TaskSet{}, other);
  third.handle(add(a));
  EXPECT_EQ(third.cache_counters().hits, 0u);
}

TEST(AdmissionService, RequiresDiscreteTableAndSchedulableInitial) {
  ServiceConfig continuous;
  continuous.table = power::FrequencyTable::continuous(8, 100);
  EXPECT_THROW(AdmissionService(sched::TaskSet{}, continuous),
               std::logic_error);

  sched::TaskSet overload;
  overload.add(task("x", 100, 90.0, 0));
  overload.add(task("y", 100, 90.0, 1));
  EXPECT_THROW(AdmissionService(std::move(overload), small_table_config()),
               std::logic_error);
}

TEST(AdmissionService, CanonicalKeyIgnoresNameBcetPhase) {
  sched::TaskSet s1, s2;
  sched::Task t1 = task("alpha", 100, 10.0, 0);
  sched::Task t2 = task("beta", 100, 10.0, 0);
  t2.bcet = 5.0;
  t2.phase = 7;
  s1.add(t1);
  s2.add(t2);
  EXPECT_EQ(AdmissionService::canonical_key(s1),
            AdmissionService::canonical_key(s2));
  sched::TaskSet s3;
  s3.add(task("alpha", 100, 10.5, 0));  // WCET differs -> key differs.
  EXPECT_NE(AdmissionService::canonical_key(s1),
            AdmissionService::canonical_key(s3));
}

}  // namespace
}  // namespace lpfps::admission
