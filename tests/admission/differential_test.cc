// The admission differential property: the incremental arm (seeded RTA
// resumes, memoization cache, hinted frequency walk) and the reference
// arm (from-scratch RTA, no cache, binary-search frequency) must
// produce *bit-identical* decisions — admitted flags, minimum safe
// frequencies, response times, fingerprints, and the exact CSV rows —
// across hundreds of random add/remove/mutate sequences.  Accounting
// (cache hits, probe counts, tasks reanalyzed) is allowed — and
// expected — to differ; it is excluded from the row by design.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "admission/cache.h"
#include "admission/pipeline.h"
#include "admission/service.h"
#include "admission/workload.h"
#include "io/admission_io.h"
#include "wcet/scaling.h"

namespace lpfps::admission {
namespace {

constexpr int kSequences = 200;
constexpr int kRequestsPerSequence = 24;

ChurnConfig churn_for(int sequence) {
  ChurnConfig churn;
  churn.requests = kRequestsPerSequence;
  // Vary the landscape so sequences exercise different admit/reject
  // mixes: initial load from light to near-saturated.
  churn.initial_tasks = 3 + sequence % 5;
  churn.initial_utilization = 0.3 + 0.1 * (sequence % 5);
  churn.task_utilization_max = 0.1 + 0.05 * (sequence % 4);
  // A third of the landscape has no relative mutates, a third some, a
  // third mostly — so the stationary fast path and direction-known
  // retention get exercised alongside the classic redraw churn.
  churn.relative_mutates = 0.45 * (sequence % 3);
  return churn;
}

wcet::FrequencyScalingModel scaling_for(int sequence) {
  // Ideal, lightly and heavily memory-bound models all obey the
  // contract; the bound is part of what must stay bit-identical.
  return wcet::FrequencyScalingModel{0.3 * (sequence % 4) / 3.0};
}

TEST(AdmissionDifferential, IncrementalEqualsFromScratchBitwise) {
  std::int64_t total_requests = 0;
  std::int64_t total_admitted = 0;
  std::int64_t total_rejected = 0;
  std::uint64_t total_cache_hits = 0;
  std::uint64_t total_stationary = 0;
  std::uint64_t total_shared_hits = 0;

  // One shared cache across all 200 sequences: sequences with equal
  // configs cross-serve each other (the config token isolates the
  // rest), and every served decision still has to be bit-identical.
  const auto shared_cache = std::make_shared<SharedAdmissionCache>(1 << 14);

  for (int sequence = 0; sequence < kSequences; ++sequence) {
    const ChurnConfig churn = churn_for(sequence);
    const ChurnStream stream =
        make_churn_stream(churn, 9000 + static_cast<std::uint64_t>(sequence));

    ServiceConfig fast;  // The production arm: everything on.
    fast.incremental = true;
    fast.use_cache = true;
    fast.scaling = scaling_for(sequence);
    ServiceConfig plain = fast;  // Incremental but uncached.
    plain.use_cache = false;
    ServiceConfig reference = fast;  // From scratch, uncached.
    reference.incremental = false;
    reference.use_cache = false;
    ServiceConfig shared = fast;  // Incremental, cache shared cross-seq.
    shared.shared_cache = shared_cache;

    AdmissionService arm_fast(stream.initial, fast);
    AdmissionService arm_plain(stream.initial, plain);
    AdmissionService arm_reference(stream.initial, reference);
    AdmissionService arm_shared(stream.initial, shared);

    int request_index = 0;
    for (const ChurnOp& op : stream.ops) {
      // Resolution is a pure function of (op, state); the arms' states
      // must agree, so resolving against any arm yields the same
      // request.  The fingerprint assert below enforces the premise.
      const std::optional<Request> request = resolve(op, arm_fast.tasks());
      if (!request.has_value()) continue;
      const Decision d_fast = arm_fast.handle(*request);
      const Decision d_plain = arm_plain.handle(*request);
      const Decision d_reference = arm_reference.handle(*request);
      const Decision d_shared = arm_shared.handle(*request);

      const std::string row = io::admission_csv_row(d_fast);
      ASSERT_EQ(row, io::admission_csv_row(d_plain))
          << "seq " << sequence << " request " << request_index;
      ASSERT_EQ(row, io::admission_csv_row(d_reference))
          << "seq " << sequence << " request " << request_index;
      ASSERT_EQ(row, io::admission_csv_row(d_shared))
          << "seq " << sequence << " request " << request_index;

      // Bitwise decision fields (the CSV compare already covers these
      // through %.17g; assert the doubles directly as well).
      ASSERT_EQ(d_fast.min_safe_mhz, d_reference.min_safe_mhz);
      ASSERT_EQ(d_fast.min_safe_ratio, d_reference.min_safe_ratio);
      ASSERT_EQ(d_fast.utilization, d_reference.utilization);
      // The sensitivity answer is a decision field: bitwise across all
      // four arms, whether searched, fast-pathed, or cache-served.
      ASSERT_EQ(d_fast.wcet_headroom, d_reference.wcet_headroom)
          << "seq " << sequence << " request " << request_index;
      ASSERT_EQ(d_fast.wcet_headroom, d_plain.wcet_headroom);
      ASSERT_EQ(d_fast.wcet_headroom, d_shared.wcet_headroom);

      // Full state equality: fingerprints and response-time vectors.
      ASSERT_EQ(arm_fast.fingerprint(), arm_reference.fingerprint());
      ASSERT_EQ(arm_fast.fingerprint(), arm_plain.fingerprint());
      ASSERT_EQ(arm_fast.fingerprint(), arm_shared.fingerprint());
      const auto& r_fast = arm_fast.response_times();
      const auto& r_reference = arm_reference.response_times();
      ASSERT_EQ(r_fast.size(), r_reference.size());
      for (std::size_t i = 0; i < r_fast.size(); ++i) {
        ASSERT_EQ(r_fast[i].has_value(), r_reference[i].has_value())
            << "seq " << sequence << " request " << request_index
            << " task " << i;
        if (r_fast[i].has_value()) {
          ASSERT_EQ(*r_fast[i], *r_reference[i])
              << "seq " << sequence << " request " << request_index
              << " task " << i;
        }
      }

      ++request_index;
      ++total_requests;
      total_admitted += d_fast.admitted ? 1 : 0;
      total_rejected += d_fast.admitted ? 0 : 1;
    }
    total_cache_hits += arm_fast.cache_counters().hits;
    total_stationary += arm_fast.stats().stationary_hits;
    total_shared_hits += arm_shared.cache_counters().hits;

    // The fast arm must genuinely have done less analysis work.
    EXPECT_LE(arm_fast.rta_stats().tasks_reanalyzed,
              arm_reference.rta_stats().tasks_reanalyzed)
        << "seq " << sequence;
  }

  // The property is vacuous unless the workload actually exercised
  // both outcomes, the caches, and the stationary fast path.
  EXPECT_GT(total_requests, kSequences * kRequestsPerSequence / 2);
  EXPECT_GT(total_admitted, 0);
  EXPECT_GT(total_rejected, 0);
  EXPECT_GT(total_cache_hits, 0u);
  EXPECT_GT(total_stationary, 0u);
  EXPECT_GT(total_shared_hits, 0u);
}

TEST(AdmissionDifferential, SessionDigestsAgreeAcrossArms) {
  // The pipeline-level restatement: whole-session decision digests are
  // equal between arms, so the bench's incremental-vs-scratch speedup
  // comparison is comparing like with like.
  for (int sequence = 0; sequence < 20; ++sequence) {
    SessionSpec fast;
    fast.churn = churn_for(sequence);
    fast.seed = 7000 + static_cast<std::uint64_t>(sequence);
    fast.service.scaling = scaling_for(sequence);
    SessionSpec reference = fast;
    reference.service.incremental = false;
    reference.service.use_cache = false;

    const SessionResult a = run_session(fast);
    const SessionResult b = run_session(reference);
    ASSERT_EQ(a.decision_digest, b.decision_digest) << "seq " << sequence;
    ASSERT_EQ(a.final_fingerprint, b.final_fingerprint) << "seq " << sequence;
    ASSERT_EQ(a.requests, b.requests);
    ASSERT_EQ(a.admitted, b.admitted);
    ASSERT_EQ(a.rejected, b.rejected);
    ASSERT_EQ(a.skipped, b.skipped);
  }
}

TEST(AdmissionDifferential, MulticoreSessionsAgreeAcrossArmsAndWorkers) {
  // The multicore restatement, at full differential scale: the per-core
  // incremental engines and the from-scratch reference must admit the
  // same tasks to the same cores (equal decision digests and placement
  // fingerprints) across 200 random sequences — and a 4-worker batch
  // must be bit-identical to the serial one.
  std::vector<MulticoreSessionSpec> fast(kSequences);
  for (int sequence = 0; sequence < kSequences; ++sequence) {
    fast[static_cast<std::size_t>(sequence)].churn = churn_for(sequence);
    fast[static_cast<std::size_t>(sequence)].cores = 2 + sequence % 3;
    fast[static_cast<std::size_t>(sequence)].seed =
        11000 + static_cast<std::uint64_t>(sequence);
  }
  std::vector<MulticoreSessionSpec> scratch = fast;
  for (MulticoreSessionSpec& spec : scratch) spec.scratch = true;

  const std::vector<MulticoreSessionResult> serial =
      run_multicore_sessions(fast, 1);
  const std::vector<MulticoreSessionResult> workers4 =
      run_multicore_sessions(fast, 4);
  const std::vector<MulticoreSessionResult> reference =
      run_multicore_sessions(scratch, 1);

  std::uint64_t total_admitted = 0;
  std::uint64_t total_rejected = 0;
  ASSERT_EQ(serial.size(), fast.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].decision_digest, workers4[i].decision_digest) << i;
    ASSERT_EQ(serial[i].final_fingerprint, workers4[i].final_fingerprint)
        << i;
    ASSERT_EQ(serial[i].decision_digest, reference[i].decision_digest) << i;
    ASSERT_EQ(serial[i].final_fingerprint, reference[i].final_fingerprint)
        << i;
    ASSERT_EQ(serial[i].requests, reference[i].requests);
    ASSERT_EQ(serial[i].admitted, reference[i].admitted);
    ASSERT_EQ(serial[i].rejected, reference[i].rejected);
    ASSERT_EQ(serial[i].skipped, reference[i].skipped);
    // The incremental arm never analyzes more than the reference.
    EXPECT_LE(serial[i].rta.tasks_reanalyzed,
              reference[i].rta.tasks_reanalyzed)
        << i;
    total_admitted += serial[i].admitted;
    total_rejected += serial[i].rejected;
  }
  EXPECT_GT(total_admitted, 0u);
  EXPECT_GT(total_rejected, 0u);
}

}  // namespace
}  // namespace lpfps::admission
