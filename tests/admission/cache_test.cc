// admission/cache.h — LRU behavior, collision safety, and the
// saturating counters that keep month-long services from wrapping.
#include "admission/cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace lpfps::admission {
namespace {

CacheEntry entry(bool schedulable, int level) {
  CacheEntry e;
  e.schedulable = schedulable;
  e.min_level = level;
  e.response_times = {Time{1.0}, std::nullopt};
  return e;
}

TEST(SaturatingCounter, IncrementsSaturateAtMax) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t c = kMax - 2;
  saturating_increment(c);
  EXPECT_EQ(c, kMax - 1);
  saturating_increment(c);
  EXPECT_EQ(c, kMax);
  saturating_increment(c);  // Must stick, not wrap to 0.
  EXPECT_EQ(c, kMax);

  std::uint64_t d = kMax - 10;
  saturating_add(d, 7);
  EXPECT_EQ(d, kMax - 3);
  saturating_add(d, 1000);
  EXPECT_EQ(d, kMax);
  saturating_add(d, 1);
  EXPECT_EQ(d, kMax);
}

TEST(AdmissionCache, MissThenHit) {
  AdmissionCache cache(4);
  EXPECT_EQ(cache.find(42, "key-a"), nullptr);
  EXPECT_EQ(cache.counters().misses, 1u);

  cache.insert(42, "key-a", entry(true, 3));
  const CacheEntry* hit = cache.find(42, "key-a");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->schedulable);
  EXPECT_EQ(hit->min_level, 3);
  ASSERT_EQ(hit->response_times.size(), 2u);
  EXPECT_EQ(hit->response_times[0], Time{1.0});
  EXPECT_FALSE(hit->response_times[1].has_value());
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().insertions, 1u);
}

TEST(AdmissionCache, CollisionIsCountedAndNeverServed) {
  AdmissionCache cache(4);
  cache.insert(42, "key-a", entry(true, 3));
  // Same digest, different canonical bytes: must be a miss.
  EXPECT_EQ(cache.find(42, "key-b"), nullptr);
  EXPECT_EQ(cache.counters().collisions, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().hits, 0u);
}

TEST(AdmissionCache, LruEvictionOrder) {
  AdmissionCache cache(2);
  cache.insert(1, "k1", entry(true, 0));
  cache.insert(2, "k2", entry(true, 1));
  // Touch k1 so k2 becomes the LRU victim.
  ASSERT_NE(cache.find(1, "k1"), nullptr);
  cache.insert(3, "k3", entry(true, 2));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_NE(cache.find(1, "k1"), nullptr);  // Survived.
  EXPECT_EQ(cache.find(2, "k2"), nullptr);  // Evicted.
  EXPECT_NE(cache.find(3, "k3"), nullptr);
}

TEST(AdmissionCache, ReinsertRefreshesInPlace) {
  AdmissionCache cache(2);
  cache.insert(1, "k1", entry(true, 0));
  cache.insert(1, "k1", entry(false, -1));  // Replace, no growth.
  EXPECT_EQ(cache.size(), 1u);
  const CacheEntry* hit = cache.find(1, "k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->schedulable);
  EXPECT_EQ(cache.counters().insertions, 2u);
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(AdmissionCache, ZeroCapacityDisablesStorage) {
  AdmissionCache cache(0);
  cache.insert(1, "k1", entry(true, 0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1, "k1"), nullptr);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(AdmissionCache, DeterministicReplay) {
  // The exact counter trajectory is part of the determinism contract:
  // two identical op sequences end in identical counters.
  const auto run = [] {
    AdmissionCache cache(3);
    for (int round = 0; round < 5; ++round) {
      for (std::uint64_t d = 0; d < 6; ++d) {
        std::string key = "k0";
        key[1] = static_cast<char>('0' + d);
        if (cache.find(d, key) == nullptr) {
          cache.insert(d, key, entry(true, static_cast<int>(d)));
        }
      }
    }
    return cache.counters();
  };
  const CacheCounters a = run();
  const CacheCounters b = run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.collisions, b.collisions);
}

TEST(SharedAdmissionCache, FindCopiesEntriesAcrossShards) {
  SharedAdmissionCache cache(64, 4);
  EXPECT_EQ(cache.shard_count(), 4u);
  // Digests chosen arbitrarily; the mixing step spreads them over
  // shards, and every one must round-trip regardless of which shard
  // it lands in.
  for (std::uint64_t d = 1; d <= 16; ++d) {
    CacheEntry e = entry(true, static_cast<int>(d));
    e.wcet_headroom = 1.0 + 0.25 * static_cast<double>(d);
    cache.insert(d, std::to_string(d), std::move(e));
  }
  for (std::uint64_t d = 1; d <= 16; ++d) {
    const auto hit = cache.find(d, std::to_string(d));
    ASSERT_TRUE(hit.has_value()) << d;
    EXPECT_EQ(hit->min_level, static_cast<int>(d));
    EXPECT_EQ(hit->wcet_headroom, 1.0 + 0.25 * static_cast<double>(d));
  }
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.counters().hits, 16u);
  EXPECT_EQ(cache.counters().insertions, 16u);
}

TEST(SharedAdmissionCache, CollisionIsFlaggedCountedAndNeverServed) {
  SharedAdmissionCache cache(8, 2);
  cache.insert(42, "key-a", entry(true, 3));
  bool collision = false;
  EXPECT_FALSE(cache.find(42, "key-b", &collision).has_value());
  EXPECT_TRUE(collision);
  collision = true;
  EXPECT_TRUE(cache.find(42, "key-a", &collision).has_value());
  EXPECT_FALSE(collision);
  EXPECT_EQ(cache.counters().collisions, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(SharedAdmissionCache, ZeroCapacityDisablesStorage) {
  SharedAdmissionCache cache(0, 4);
  cache.insert(1, "k1", entry(true, 0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(1, "k1").has_value());
}

TEST(SharedAdmissionCache, CapacitySplitsAcrossShardsAndEvicts) {
  // 4 total slots over 4 shards: one per shard, so a second distinct
  // digest landing on an occupied shard must evict.
  SharedAdmissionCache cache(4, 4);
  EXPECT_EQ(cache.capacity(), 4u);
  for (std::uint64_t d = 0; d < 32; ++d) {
    cache.insert(d, std::to_string(d), entry(true, 0));
  }
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.counters().evictions, 0u);
}

TEST(SharedAdmissionCache, ConcurrentMixedUseStaysConsistent) {
  // Not a determinism claim (counters are thread-ordering dependent) —
  // a sanity check that concurrent find/insert on one cache neither
  // crashes nor serves wrong bytes.
  SharedAdmissionCache cache(256, 8);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&cache, w] {
      for (int round = 0; round < 200; ++round) {
        const std::uint64_t d = static_cast<std::uint64_t>(round % 37);
        const std::string key = std::to_string(d);
        const auto hit = cache.find(d, key);
        if (hit.has_value()) {
          // Entries are keyed on d; a served entry must carry d's level.
          EXPECT_EQ(hit->min_level, static_cast<int>(d));
        } else {
          cache.insert(d, key, entry(true, static_cast<int>(d)));
        }
        (void)w;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const CacheCounters totals = cache.counters();
  EXPECT_EQ(totals.hits + totals.misses, 4u * 200u);
  EXPECT_EQ(totals.collisions, 0u);
}

TEST(CacheEnv, CapacityParsesDisablesAndIgnoresGarbage) {
  ::unsetenv("LPFPS_ADMISSION_CACHE");
  EXPECT_FALSE(cache_capacity_from_env().has_value());

  ::setenv("LPFPS_ADMISSION_CACHE", "512", 1);
  ASSERT_TRUE(cache_capacity_from_env().has_value());
  EXPECT_EQ(*cache_capacity_from_env(), 512u);

  ::setenv("LPFPS_ADMISSION_CACHE", "0", 1);
  ASSERT_TRUE(cache_capacity_from_env().has_value());
  EXPECT_EQ(*cache_capacity_from_env(), 0u);

  ::setenv("LPFPS_ADMISSION_CACHE", "not-a-number", 1);
  EXPECT_FALSE(cache_capacity_from_env().has_value());

  ::setenv("LPFPS_ADMISSION_CACHE", "-3", 1);
  EXPECT_FALSE(cache_capacity_from_env().has_value());

  ::unsetenv("LPFPS_ADMISSION_CACHE");
}

}  // namespace
}  // namespace lpfps::admission
