#include "common/random.h"

#include <gtest/gtest.h>

namespace lpfps {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(3.0, 9.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.uniform(5.0, 5.0), 5.0);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo = saw_lo || v == 1;
    saw_hi = saw_hi || v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianZeroSigmaIsMean) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.gaussian(12.5, 0.0), 12.5);
}

TEST(Rng, GaussianMomentsApproximate) {
  Rng rng(13);
  const int n = 50'000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ClampedGaussianRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i) {
    // Wide sigma so that clamping actually engages.
    const double v = rng.clamped_gaussian(5.0, 10.0, 2.0, 8.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LE(v, 8.0);
  }
}

TEST(Rng, ForkSeedProducesIndependentStreams) {
  Rng parent(99);
  Rng child_a(parent.fork_seed());
  Rng child_b(parent.fork_seed());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.uniform(0.0, 1.0) == child_b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace lpfps
