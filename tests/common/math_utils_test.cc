#include "common/math_utils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lpfps {
namespace {

TEST(Gcd, BasicCases) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(100, 100), 100);
}

TEST(Lcm, BasicCases) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(50, 80), 400);
  EXPECT_EQ(lcm64(50, 100), 100);
}

TEST(Lcm, PaperExampleHyperperiod) {
  // Table 1 periods {50, 80, 100} -> LCM 400.
  EXPECT_EQ(lcm64({50, 80, 100}), 400);
}

TEST(Lcm, InsHyperperiod) {
  EXPECT_EQ(
      lcm64({2'500, 40'000, 625'000, 1'000'000, 1'250'000, 1'000'000}),
      5'000'000);
}

TEST(Lcm, EmptyListIsOne) { EXPECT_EQ(lcm64({}), 1); }

TEST(Lcm, OverflowThrows) {
  // Two large coprime numbers whose product exceeds int64.
  const std::int64_t a = 4'000'000'007;
  const std::int64_t b = 4'000'000'009;
  EXPECT_THROW(lcm64(a, b), std::overflow_error);
}

TEST(CeilDiv, Rounding) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 0.5), 6.0);
}

TEST(Clamp, Basic) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_THROW(clamp(0.0, 2.0, 1.0), std::logic_error);
}

TEST(Simpson, ExactForCubics) {
  // Simpson's rule integrates polynomials up to degree 3 exactly.
  const auto cubic = [](double x) { return x * x * x - 2 * x + 1; };
  const double result = integrate_simpson(cubic, 0.0, 2.0, 2);
  const double exact = 4.0 - 4.0 + 2.0;  // x^4/4 - x^2 + x over [0,2].
  EXPECT_NEAR(result, exact, 1e-12);
}

TEST(Simpson, ConvergesForSqrt) {
  const auto f = [](double x) { return std::sqrt(x + 1.0); };
  const double result = integrate_simpson(f, 0.0, 3.0, 128);
  const double exact = 2.0 / 3.0 * (8.0 - 1.0);  // (2/3)(x+1)^{3/2}.
  EXPECT_NEAR(result, exact, 1e-6);
}

TEST(Simpson, EmptyIntervalIsZero) {
  const auto f = [](double) { return 42.0; };
  EXPECT_DOUBLE_EQ(integrate_simpson(f, 1.0, 1.0, 8), 0.0);
}

}  // namespace
}  // namespace lpfps
