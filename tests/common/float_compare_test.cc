#include "common/float_compare.h"

#include <gtest/gtest.h>

namespace lpfps {
namespace {

TEST(FloatCompare, ApproxEqualWithinEpsilon) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + kTimeEpsilon / 2));
  EXPECT_TRUE(approx_equal(1.0, 1.0 - kTimeEpsilon / 2));
  EXPECT_FALSE(approx_equal(1.0, 1.0 + 2 * kTimeEpsilon));
}

TEST(FloatCompare, ApproxEqualCustomEpsilon) {
  EXPECT_TRUE(approx_equal(10.0, 10.4, 0.5));
  EXPECT_FALSE(approx_equal(10.0, 10.6, 0.5));
}

TEST(FloatCompare, ApproxLeIsTolerant) {
  EXPECT_TRUE(approx_le(1.0, 1.0));
  EXPECT_TRUE(approx_le(1.0 + kTimeEpsilon / 2, 1.0));
  EXPECT_FALSE(approx_le(1.0 + 2 * kTimeEpsilon, 1.0));
  EXPECT_TRUE(approx_le(0.5, 1.0));
}

TEST(FloatCompare, ApproxGeIsTolerant) {
  EXPECT_TRUE(approx_ge(1.0, 1.0));
  EXPECT_TRUE(approx_ge(1.0 - kTimeEpsilon / 2, 1.0));
  EXPECT_FALSE(approx_ge(1.0 - 2 * kTimeEpsilon, 1.0));
}

TEST(FloatCompare, DefinitelyLessRequiresMargin) {
  EXPECT_TRUE(definitely_less(1.0, 2.0));
  EXPECT_FALSE(definitely_less(1.0, 1.0));
  EXPECT_FALSE(definitely_less(1.0 - kTimeEpsilon / 2, 1.0));
}

TEST(FloatCompare, DefinitelyGreaterRequiresMargin) {
  EXPECT_TRUE(definitely_greater(2.0, 1.0));
  EXPECT_FALSE(definitely_greater(1.0, 1.0));
  EXPECT_FALSE(definitely_greater(1.0 + kTimeEpsilon / 2, 1.0));
}

TEST(FloatCompare, SnapNonnegativeClampsRoundingDebris) {
  EXPECT_EQ(snap_nonnegative(0.0), 0.0);
  EXPECT_EQ(snap_nonnegative(-kTimeEpsilon / 2), 0.0);
  EXPECT_EQ(snap_nonnegative(5.0), 5.0);
  // Genuinely negative values pass through for assertions downstream.
  EXPECT_LT(snap_nonnegative(-1.0), 0.0);
}

TEST(FloatCompare, ReleaseInstantVsScaledCompletion) {
  // The motivating scenario: a completion computed through a division
  // lands a hair before an integer release instant.
  const double release = 100.0;
  const double completion = 20.0 / 0.2 + 1e-13;  // "100.0" with noise.
  EXPECT_TRUE(approx_equal(completion, release));
  EXPECT_FALSE(definitely_greater(completion, release));
}

}  // namespace
}  // namespace lpfps
