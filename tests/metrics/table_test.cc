#include "metrics/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::metrics {
namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_aligned();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::logic_error);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Table, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace lpfps::metrics
