#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::metrics {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h({0.0, 10.0, 20.0, 30.0});
  h.add(5.0);
  h.add(10.0);  // Left-closed: lands in [10, 20).
  h.add(15.0);
  h.add(29.999);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.count(2), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h({0.0, 10.0});
  h.add(-1.0);
  h.add(10.0);  // At the last edge: overflow.
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, LogSpacedEdges) {
  const Histogram h = Histogram::log_spaced(1.0, 1000.0, 3);
  // Edges 1, 10, 100, 1000.
  EXPECT_EQ(h.bin_count(), 3u);
  Histogram copy = h;
  copy.add(5.0);
  copy.add(50.0);
  copy.add(500.0);
  EXPECT_EQ(copy.count(0), 1);
  EXPECT_EQ(copy.count(1), 1);
  EXPECT_EQ(copy.count(2), 1);
}

TEST(Histogram, FractionBelow) {
  Histogram h({0.0, 100.0});
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i * 10));
  EXPECT_DOUBLE_EQ(h.fraction_below(50.0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
}

TEST(Histogram, FractionBelowEmptyIsZero) {
  const Histogram h({0.0, 1.0});
  EXPECT_DOUBLE_EQ(h.fraction_below(0.5), 0.0);
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h({0.0, 10.0, 20.0});
  for (int i = 0; i < 8; ++i) h.add(5.0);
  h.add(15.0);
  const std::string art = h.render(16);
  EXPECT_NE(art.find("################"), std::string::npos);
  EXPECT_NE(art.find(" 8"), std::string::npos);
  EXPECT_NE(art.find(" 1"), std::string::npos);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({1.0}), std::logic_error);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
  EXPECT_THROW(Histogram::log_spaced(0.0, 10.0, 3), std::logic_error);
}

}  // namespace
}  // namespace lpfps::metrics
