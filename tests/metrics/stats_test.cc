#include "metrics/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::metrics {
namespace {

TEST(Summary, EmptyThrows) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(Summary, StddevIsSqrtVariance) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0);
  EXPECT_NEAR(s.stddev() * s.stddev(), 2.0, 1e-12);
}

}  // namespace
}  // namespace lpfps::metrics
