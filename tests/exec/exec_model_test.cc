#include "exec/exec_model.h"

#include <gtest/gtest.h>

#include "metrics/stats.h"
#include "sched/task.h"

namespace lpfps::exec {
namespace {

sched::Task task_with_bcet(double bcet_ratio) {
  return sched::make_task("t", 1000, 1000, 100.0, 100.0 * bcet_ratio);
}

TEST(WcetModel, AlwaysWorstCase) {
  Rng rng(1);
  const WcetModel model;
  const sched::Task t = task_with_bcet(0.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(t, rng), 100.0);
  }
}

TEST(BcetModel, AlwaysBestCase) {
  Rng rng(1);
  const BcetModel model;
  const sched::Task t = task_with_bcet(0.5);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), 50.0);
}

TEST(ClampedGaussian, AlwaysWithinBounds) {
  Rng rng(2);
  const ClampedGaussianModel model;
  const sched::Task t = task_with_bcet(0.1);
  for (int i = 0; i < 20'000; ++i) {
    const Work w = model.sample(t, rng);
    EXPECT_GE(w, t.bcet);
    EXPECT_LE(w, t.wcet);
  }
}

TEST(ClampedGaussian, DegeneratesToWcetWhenBcetEqualsWcet) {
  Rng rng(3);
  const ClampedGaussianModel model;
  const sched::Task t = task_with_bcet(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(t, rng), 100.0);
  }
}

TEST(ClampedGaussian, MeanMatchesEquation4) {
  // m = (BCET + WCET) / 2; clamping at +-3 sigma barely moves the mean.
  Rng rng(4);
  const ClampedGaussianModel model;
  const sched::Task t = task_with_bcet(0.4);
  metrics::Summary summary;
  for (int i = 0; i < 50'000; ++i) summary.add(model.sample(t, rng));
  EXPECT_NEAR(summary.mean(), (t.bcet + t.wcet) / 2.0, 0.3);
}

TEST(ClampedGaussian, StddevMatchesEquation5) {
  // sigma = (WCET - BCET) / 6 = 10 for bcet_ratio 0.4.
  Rng rng(5);
  const ClampedGaussianModel model;
  const sched::Task t = task_with_bcet(0.4);
  metrics::Summary summary;
  for (int i = 0; i < 50'000; ++i) summary.add(model.sample(t, rng));
  EXPECT_NEAR(summary.stddev(), (t.wcet - t.bcet) / 6.0, 0.3);
}

TEST(Uniform, CoversTheWholeInterval) {
  Rng rng(6);
  const UniformModel model;
  const sched::Task t = task_with_bcet(0.2);
  metrics::Summary summary;
  for (int i = 0; i < 20'000; ++i) {
    const Work w = model.sample(t, rng);
    EXPECT_GE(w, t.bcet);
    EXPECT_LE(w, t.wcet);
    summary.add(w);
  }
  EXPECT_NEAR(summary.mean(), 60.0, 1.0);
  EXPECT_LT(summary.min(), 25.0);
  EXPECT_GT(summary.max(), 95.0);
}

TEST(Bimodal, SamplesClusterAtBothEnds) {
  Rng rng(7);
  const BimodalModel model(0.5);
  const sched::Task t = task_with_bcet(0.2);
  int low = 0;
  int high = 0;
  for (int i = 0; i < 10'000; ++i) {
    const Work w = model.sample(t, rng);
    EXPECT_GE(w, t.bcet);
    EXPECT_LE(w, t.wcet);
    if (w < 40.0) ++low;
    if (w > 80.0) ++high;
  }
  EXPECT_GT(low, 3000);
  EXPECT_GT(high, 3000);
}

TEST(Bimodal, ProbabilityParameterRespected) {
  Rng rng(8);
  const BimodalModel model(0.9);
  const sched::Task t = task_with_bcet(0.2);
  int low = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(t, rng) < 60.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.9, 0.03);
}

TEST(TraceDriven, ReplaysSequenceInOrder) {
  Rng rng(9);
  const TraceDrivenModel model({{"t", {10.0, 20.0, 30.0}}});
  const sched::Task t = task_with_bcet(0.1);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), 10.0);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), 20.0);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), 30.0);
}

TEST(TraceDriven, CyclesWhenExhausted) {
  Rng rng(9);
  const TraceDrivenModel model({{"t", {10.0, 20.0}}});
  const sched::Task t = task_with_bcet(0.1);
  (void)model.sample(t, rng);
  (void)model.sample(t, rng);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), 10.0);  // Wraps around.
}

TEST(TraceDriven, UnknownTaskFallsBackToWcet) {
  Rng rng(9);
  const TraceDrivenModel model({{"other", {5.0}}});
  const sched::Task t = task_with_bcet(0.1);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), t.wcet);
}

TEST(TraceDriven, IndependentCursorsPerTask) {
  Rng rng(9);
  const TraceDrivenModel model({{"a", {1.0, 2.0}}, {"b", {3.0, 4.0}}});
  const sched::Task a = sched::make_task("a", 1000, 1000, 100.0, 1.0);
  const sched::Task b = sched::make_task("b", 1000, 1000, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(model.sample(a, rng), 1.0);
  EXPECT_DOUBLE_EQ(model.sample(b, rng), 3.0);
  EXPECT_DOUBLE_EQ(model.sample(a, rng), 2.0);
  EXPECT_DOUBLE_EQ(model.sample(b, rng), 4.0);
}

TEST(TraceDriven, RejectsBadSequences) {
  std::map<std::string, std::vector<Work>> empty_sequence;
  empty_sequence["t"] = {};
  EXPECT_THROW(TraceDrivenModel model(std::move(empty_sequence)),
               std::logic_error);
  EXPECT_THROW(TraceDrivenModel({{"t", {0.0}}}), std::logic_error);
}

TEST(TraceDriven, RejectsValuesAboveWcet) {
  Rng rng(9);
  const TraceDrivenModel model({{"t", {500.0}}});
  const sched::Task t = task_with_bcet(0.1);  // WCET 100.
  EXPECT_THROW(model.sample(t, rng), std::logic_error);
}

TEST(FaultyModel, DisabledSpecsAreSampleIdenticalToInner) {
  // With every overrun spec disabled the wrapper must add no RNG draws:
  // identical seeds produce identical sample streams.
  Rng plain_rng(11);
  Rng wrapped_rng(11);
  const auto inner = std::make_shared<ClampedGaussianModel>();
  const FaultyExecModel wrapped(inner, {}, {"t"});
  const sched::Task t = task_with_bcet(0.3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(wrapped.sample(t, wrapped_rng),
                     inner->sample(t, plain_rng));
  }
}

TEST(FaultyModel, CertainOverrunIsDeterministicMagnitude) {
  Rng rng(12);
  const FaultyExecModel model(nullptr, {{1.0, 0.5}}, {"t"});
  const sched::Task t = task_with_bcet(0.3);  // WCET 100.
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(t, rng), 150.0);  // wcet * (1 + 0.5).
  }
}

TEST(FaultyModel, NullInnerFallsBackToWcetWhenNotFaulting) {
  Rng rng(13);
  const FaultyExecModel model(nullptr, {{0.0, 0.0}}, {"t"});
  const sched::Task t = task_with_bcet(0.3);
  EXPECT_DOUBLE_EQ(model.sample(t, rng), t.wcet);
}

TEST(FaultyModel, ProbabilityGovernsOverrunRate) {
  Rng rng(14);
  const FaultyExecModel model(std::make_shared<WcetModel>(), {{0.25, 1.0}},
                              {"t"});
  const sched::Task t = task_with_bcet(0.3);
  int overruns = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const Work w = model.sample(t, rng);
    if (w > t.wcet) {
      EXPECT_DOUBLE_EQ(w, 200.0);
      ++overruns;
    }
  }
  EXPECT_NEAR(static_cast<double>(overruns) / n, 0.25, 0.02);
}

TEST(FaultyModel, PerTaskSpecsResolveByName) {
  Rng rng(15);
  const FaultyExecModel model(nullptr, {{0.0, 0.0}, {1.0, 1.0}},
                              {"safe", "faulty"});
  const sched::Task safe = sched::make_task("safe", 1000, 1000, 100.0, 50.0);
  const sched::Task faulty =
      sched::make_task("faulty", 1000, 1000, 80.0, 40.0);
  EXPECT_DOUBLE_EQ(model.sample(safe, rng), 100.0);
  EXPECT_DOUBLE_EQ(model.sample(faulty, rng), 160.0);
}

TEST(FaultyModel, NameAdvertisesWrapping) {
  EXPECT_EQ(FaultyExecModel(nullptr, {}, {}).name(), "faulty+wcet");
  EXPECT_EQ(
      FaultyExecModel(std::make_shared<UniformModel>(), {}, {}).name(),
      "faulty+uniform");
}

TEST(Models, NamesAreDistinct) {
  EXPECT_EQ(WcetModel().name(), "wcet");
  EXPECT_EQ(BcetModel().name(), "bcet");
  EXPECT_EQ(ClampedGaussianModel().name(), "gaussian");
  EXPECT_EQ(UniformModel().name(), "uniform");
  EXPECT_EQ(BimodalModel().name(), "bimodal");
  EXPECT_EQ(TraceDrivenModel({{"x", {1.0}}}).name(), "trace");
}

}  // namespace
}  // namespace lpfps::exec
