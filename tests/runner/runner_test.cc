#include "runner/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>

#include "common/random.h"

namespace lpfps::runner {
namespace {

TEST(DeriveSeed, IsAPureFunctionOfItsArguments) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(2024, 17), derive_seed(2024, 17));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(DeriveSeed, ProducesDistinctSeedsAcrossAGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 2024ULL, ~0ULL}) {
    for (std::uint64_t index = 0; index < 2000; ++index) {
      seen.insert(derive_seed(base, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 2000u);  // No collisions on realistic grids.
}

TEST(DeriveSeed, MatchesSplitmix64Reference) {
  // splitmix64 with state = base + (index + 1) * golden gamma.  The
  // published test vector: splitmix64 seeded with 0 outputs
  // 0xe220a8397b1dcdaf first, i.e. state golden-gamma after one bump.
  EXPECT_EQ(derive_seed(0, 0), 0xe220a8397b1dcdafULL);
}

TEST(DefaultJobCount, HonorsTheEnvironmentVariable) {
  ASSERT_EQ(setenv("LPFPS_JOBS", "3", 1), 0);
  EXPECT_EQ(default_job_count(), 3u);
  ASSERT_EQ(setenv("LPFPS_JOBS", "1", 1), 0);
  EXPECT_EQ(default_job_count(), 1u);
  // Invalid values fall back to hardware concurrency (>= 1).
  for (const char* bad : {"0", "-2", "four", ""}) {
    ASSERT_EQ(setenv("LPFPS_JOBS", bad, 1), 0);
    EXPECT_GE(default_job_count(), 1u) << "LPFPS_JOBS=" << bad;
  }
  ASSERT_EQ(unsetenv("LPFPS_JOBS"), 0);
  EXPECT_GE(default_job_count(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsTheQueue) {
  // Destroying the pool must still run everything already submitted.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WaitIdleOnAnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

TEST(RunBatch, ReturnsResultsInJobOrder) {
  const auto results = run_batch(
      100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(RunBatch, SerialAndParallelRunsAreBitIdentical) {
  const auto job = [](std::size_t i) {
    Rng rng(derive_seed(7, i));
    double sum = 0.0;
    for (int draw = 0; draw < 100; ++draw) {
      sum += rng.gaussian(0.0, 1.0) * rng.uniform(0.5, 2.0);
    }
    return sum;
  };
  const auto serial = run_batch(64, job, 1);
  const auto parallel = run_batch(64, job, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "job " << i;  // Exact, not NEAR.
  }
}

TEST(RunBatch, PropagatesJobExceptions) {
  const auto batch = [](std::size_t threads) {
    return run_batch(
        32,
        [](std::size_t i) -> int {
          if (i == 17) throw std::runtime_error("job 17 failed");
          return static_cast<int>(i);
        },
        threads);
  };
  EXPECT_THROW(batch(1), std::runtime_error);
  EXPECT_THROW(batch(4), std::runtime_error);
}

TEST(RunBatch, RethrowsTheLowestIndexFailureFirst) {
  // With several failing jobs, the surfaced exception must be the one a
  // serial run would have hit first — part of the determinism contract.
  try {
    run_batch(
        32,
        [](std::size_t i) -> int {
          if (i == 5 || i == 9 || i == 30) {
            throw std::runtime_error("job " + std::to_string(i));
          }
          return 0;
        },
        4);
    FAIL() << "expected a runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "job 5");
  }
}

TEST(RunBatch, HandlesZeroJobsAndMoreThreadsThanJobs) {
  EXPECT_TRUE(run_batch(0, [](std::size_t) { return 1; }, 4).empty());
  const auto results = run_batch(
      2, [](std::size_t i) { return static_cast<int>(i); }, 16);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 0);
  EXPECT_EQ(results[1], 1);
}

TEST(RunBatch, SupportsMoveOnlyResults) {
  const auto results = run_batch(
      8, [](std::size_t i) { return std::make_unique<int>(int(i)); }, 4);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(*results[i], static_cast<int>(i));
  }
}

TEST(RunBatchIsolated, CapturesAThrowingJobWithoutAbortingTheBatch) {
  // Satellite contract: one faulted configuration in a sweep must not
  // take down the healthy results around it.
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto outcomes = run_batch_isolated(
        8,
        [](std::size_t i) -> int {
          if (i == 3) throw std::runtime_error("job 3 blew up");
          return static_cast<int>(i * 10);
        },
        threads);
    ASSERT_EQ(outcomes.size(), 8u);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (i == 3) {
        EXPECT_FALSE(outcomes[i].ok());
        EXPECT_FALSE(outcomes[i].result.has_value());
        EXPECT_EQ(outcomes[i].error, "job 3 blew up");
      } else {
        EXPECT_TRUE(outcomes[i].ok()) << outcomes[i].error;
        EXPECT_EQ(*outcomes[i].result, static_cast<int>(i * 10));
        EXPECT_TRUE(outcomes[i].error.empty());
      }
    }
  }
}

TEST(RunBatchIsolated, NonStandardExceptionsGetAPlaceholderMessage) {
  const auto outcomes = run_batch_isolated(
      2,
      [](std::size_t i) -> int {
        if (i == 0) throw 42;  // Not derived from std::exception.
        return 1;
      },
      1);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].error, "unknown exception");
  EXPECT_TRUE(outcomes[1].ok());
}

TEST(RunBatchIsolated, OutcomesAreThreadCountInvariant) {
  // The determinism contract extends to error text: job i's outcome is
  // a pure function of i, never of scheduling order.
  const auto job = [](std::size_t i) -> double {
    if (i % 5 == 2) {
      throw std::runtime_error("seeded failure " + std::to_string(i));
    }
    Rng rng(derive_seed(11, i));
    return rng.uniform(0.0, 1.0);
  };
  const auto serial = run_batch_isolated(25, job, 1);
  const auto parallel = run_batch_isolated(25, job, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].ok(), parallel[i].ok()) << "job " << i;
    EXPECT_EQ(serial[i].error, parallel[i].error) << "job " << i;
    if (serial[i].ok()) {
      EXPECT_EQ(*serial[i].result, *parallel[i].result) << "job " << i;
    }
  }
}

}  // namespace
}  // namespace lpfps::runner
