// The runner's determinism contract, asserted end-to-end: a batch of
// real LPFPS simulations fanned out over 4 threads must be
// bit-identical — not merely close — to the same batch run serially.
// This is what licenses rewiring the experiment pipeline onto the
// thread pool without perturbing any published number.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/engine.h"
#include "exec/exec_model.h"
#include "metrics/experiment.h"
#include "multicore/partition.h"
#include "multicore/simulate.h"
#include "runner/runner.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/generator.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

/// 50 RM-feasible random task sets, generated from one serial stream
/// (generation is cheap; only the simulations fan out).
std::vector<sched::TaskSet> random_task_sets() {
  workloads::GeneratorConfig config;
  config.task_count = 4;
  config.total_utilization = 0.6;
  config.bcet_ratio = 0.4;
  config.period_min = 1'000;
  config.period_max = 32'000;
  config.period_granularity = 1'000;

  Rng rng(99);
  std::vector<sched::TaskSet> sets;
  while (sets.size() < 50) {
    sched::TaskSet tasks = workloads::generate_task_set(config, rng);
    if (!sched::is_schedulable_rta(tasks)) continue;
    sets.push_back(std::move(tasks));
  }
  return sets;
}

TEST(RunnerDeterminism, FourThreadBatchBitIdenticalToSerial) {
  const std::vector<sched::TaskSet> sets = random_task_sets();
  const auto cpu = power::ProcessorConfig::arm8_default();
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();

  const auto job = [&](std::size_t i) {
    core::EngineOptions options;
    options.horizon = 64'000.0;
    options.seed = runner::derive_seed(42, i);
    return core::simulate(sets[i], cpu, core::SchedulerPolicy::lpfps(),
                          exec, options);
  };

  const auto serial = runner::run_batch(sets.size(), job, 1);
  const auto parallel = runner::run_batch(sets.size(), job, 4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Exact floating-point equality: same seeds, same order, same bits.
    EXPECT_EQ(serial[i].total_energy, parallel[i].total_energy) << i;
    EXPECT_EQ(serial[i].average_power, parallel[i].average_power) << i;
    EXPECT_EQ(serial[i].mean_running_ratio, parallel[i].mean_running_ratio)
        << i;
    EXPECT_EQ(serial[i].jobs_completed, parallel[i].jobs_completed) << i;
    EXPECT_EQ(serial[i].speed_changes, parallel[i].speed_changes) << i;
    EXPECT_EQ(serial[i].power_downs, parallel[i].power_downs) << i;
  }
}

/// Runs `fn` with LPFPS_JOBS pinned to `jobs`, restoring the prior
/// value afterwards (the sweep and multicore layers read the env var
/// through runner::default_job_count on every call).
template <typename Fn>
auto with_jobs(const char* jobs, Fn&& fn) {
  const char* old = std::getenv("LPFPS_JOBS");
  const std::string saved = old ? old : "";
  EXPECT_EQ(setenv("LPFPS_JOBS", jobs, 1), 0);
  auto result = fn();
  if (old) {
    EXPECT_EQ(setenv("LPFPS_JOBS", saved.c_str(), 1), 0);
  } else {
    EXPECT_EQ(unsetenv("LPFPS_JOBS"), 0);
  }
  return result;
}

TEST(RunnerDeterminism, BcetSweepInvariantUnderLpfpsJobs) {
  const workloads::Workload ins = workloads::workload_by_name("INS");
  metrics::SweepConfig config;
  config.bcet_ratios = {0.3, 0.7, 1.0};
  config.seeds = 2;
  config.horizon = 500'000.0;

  const auto sweep = [&] {
    return metrics::run_bcet_sweep(ins.tasks,
                                   power::ProcessorConfig::arm8_default(),
                                   core::SchedulerPolicy::lpfps(), config);
  };
  const auto serial = with_jobs("1", sweep);
  const auto parallel = with_jobs("4", sweep);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].fps_power, parallel[i].fps_power) << i;
    EXPECT_EQ(serial[i].policy_power, parallel[i].policy_power) << i;
    EXPECT_EQ(serial[i].normalized, parallel[i].normalized) << i;
    EXPECT_EQ(serial[i].reduction_vs_wcet_pct,
              parallel[i].reduction_vs_wcet_pct)
        << i;
  }
}

TEST(RunnerDeterminism, MulticoreSimulationInvariantUnderLpfpsJobs) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 60.0));
  tasks.add(sched::make_task("b", 200, 100.0));
  tasks.add(sched::make_task("c", 400, 160.0));
  tasks.add(sched::make_task("d", 100, 30.0));
  tasks.add(sched::make_task("e", 200, 80.0));
  tasks.add(sched::make_task("f", 400, 120.0));
  sched::assign_rate_monotonic(tasks);
  const auto partition = multicore::partition_tasks(
      tasks, 4, multicore::PackingHeuristic::kWorstFitDecreasing);
  ASSERT_TRUE(partition.has_value());

  const auto run = [&] {
    core::EngineOptions options;
    options.horizon = 4'000.0;
    return multicore::simulate_partitioned(
        tasks, *partition, power::ProcessorConfig::arm8_default(),
        core::SchedulerPolicy::lpfps(),
        std::make_shared<exec::ClampedGaussianModel>(), options);
  };
  const auto serial = with_jobs("1", run);
  const auto parallel = with_jobs("4", run);

  EXPECT_EQ(serial.total_energy, parallel.total_energy);
  EXPECT_EQ(serial.mean_core_power, parallel.mean_core_power);
  ASSERT_EQ(serial.per_core.size(), parallel.per_core.size());
  for (std::size_t i = 0; i < serial.per_core.size(); ++i) {
    EXPECT_EQ(serial.per_core[i].total_energy,
              parallel.per_core[i].total_energy)
        << i;
  }
}

}  // namespace
}  // namespace lpfps
