// Engine-level weakly-hard scheduling (docs/WEAKLY_HARD.md): graceful
// overload degradation, the never-skip differential identity, skip-aware
// DVS, the overload latch, and the kernel cross-check.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "io/trace_io.h"
#include "sched/kernel.h"
#include "sched/priority.h"
#include "sched/task.h"
#include "weakly_hard/governor.h"

namespace lpfps::core {
namespace {

/// Nominal utilization 1.05 (> 1, hard-infeasible); the (1,2)-firm
/// high-rate task makes the degraded set feasible.  Deterministic
/// (BCET = WCET, null exec model), so every number below is exact.
sched::TaskSet overloaded_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::with_mk_constraint(sched::make_task("firm", 10'000, 6000.0),
                                      1, 2));
  tasks.add(sched::make_task("hard", 20'000, 9000.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

/// Utilization 0.5: comfortably hard-feasible, so the kOverload latch
/// never raises without injected trouble.
sched::TaskSet feasible_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::with_mk_constraint(sched::make_task("firm", 10'000, 3000.0),
                                      1, 2));
  tasks.add(sched::make_task("hard", 20'000, 4000.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

const auto kCpu = power::ProcessorConfig::arm8_default();

EngineOptions overload_options() {
  EngineOptions options;
  options.horizon = 200'000;
  options.throw_on_miss = false;
  return options;
}

TEST(WeaklyHardEngine, OverloadedSetDegradesGracefully) {
  const sched::TaskSet tasks = overloaded_tasks();

  // Hard baseline: the governor disarmed, the overload lands as misses.
  EngineOptions hard = overload_options();
  hard.weakly_hard.policy = weakly_hard::SkipPolicy::kNever;
  const SimulationResult hard_run =
      simulate(tasks, kCpu, SchedulerPolicy::fps(), nullptr, hard);
  EXPECT_GT(hard_run.deadline_misses, 0);
  EXPECT_EQ(hard_run.jobs_skipped_weakly, 0);

  // Armed: the structural latch raises at t = 0 (hard RTA fails), every
  // permitted skip is spent, and *nothing* misses — the headline claim.
  EngineOptions armed = overload_options();
  const SimulationResult armed_run =
      simulate(tasks, kCpu, SchedulerPolicy::fps(), nullptr, armed);
  EXPECT_EQ(armed_run.deadline_misses, 0);
  EXPECT_GT(armed_run.jobs_skipped_weakly, 0);
  EXPECT_EQ(armed_run.mk_violations, 0);
  // (1,2)-firm at period 10 ms over [0, 200 ms]: 21 releases (the
  // horizon-instant release included), even instances skipped.
  EXPECT_EQ(armed_run.jobs_skipped_weakly, 11);
  // Worst window of the firm task: exactly m met (slack 0), never less.
  ASSERT_EQ(armed_run.weakly_hard_worst_slack.size(), tasks.size());
  EXPECT_EQ(armed_run.weakly_hard_worst_slack[0], 0);
  EXPECT_EQ(armed_run.weakly_hard_worst_slack[1],
            weakly_hard::SkipGovernor::kHardTaskSlack);
}

TEST(WeaklyHardEngine, NeverSkipIsByteIdenticalToStrippedTwin) {
  // The same physical task set, once with constraints + kNever and once
  // with the constraints stripped: the governor must be perfectly inert.
  const sched::TaskSet constrained = overloaded_tasks();
  sched::TaskSet stripped;
  for (const sched::Task& t : constrained.tasks()) {
    sched::Task copy = t;
    copy.mk_m = copy.mk_k = copy.skip_s = 0;
    stripped.add(copy);
  }
  EngineOptions options = overload_options();
  options.record_trace = true;
  options.weakly_hard.policy = weakly_hard::SkipPolicy::kNever;
  for (const SchedulerPolicy& policy :
       {SchedulerPolicy::fps(), SchedulerPolicy::lpfps()}) {
    const SimulationResult with_constraints =
        simulate(constrained, kCpu, policy, nullptr, options);
    const SimulationResult plain =
        simulate(stripped, kCpu, policy, nullptr, options);
    const std::vector<std::string> names = stripped.names();
    EXPECT_EQ(io::result_csv_row(with_constraints),
              io::result_csv_row(plain));
    ASSERT_TRUE(with_constraints.trace.has_value());
    ASSERT_TRUE(plain.trace.has_value());
    EXPECT_EQ(io::trace_segments_csv(*with_constraints.trace, names),
              io::trace_segments_csv(*plain.trace, names));
    EXPECT_EQ(io::trace_jobs_csv(*with_constraints.trace, names),
              io::trace_jobs_csv(*plain.trace, names));
  }
}

TEST(WeaklyHardEngine, SkipAwareDvsSavesEnergyAtEqualQoS) {
  const sched::TaskSet tasks = overloaded_tasks();
  EngineOptions plain = overload_options();
  EngineOptions skip_dvs = overload_options();
  skip_dvs.weakly_hard.skip_dvs = true;
  const SimulationResult without =
      simulate(tasks, kCpu, SchedulerPolicy::lpfps(), nullptr, plain);
  const SimulationResult with =
      simulate(tasks, kCpu, SchedulerPolicy::lpfps(), nullptr, skip_dvs);
  // Equal QoS: the skip pattern is a pure function of the window
  // history under a latched overload, so both arms shed the same jobs.
  EXPECT_EQ(with.jobs_skipped_weakly, without.jobs_skipped_weakly);
  EXPECT_EQ(with.deadline_misses, 0);
  EXPECT_EQ(without.deadline_misses, 0);
  EXPECT_EQ(with.mk_violations, 0);
  // Skip-to-slack: plans extending past certainly-skipped arrivals can
  // only deepen slowdowns, never add demand.
  EXPECT_LE(with.total_energy, without.total_energy);
}

TEST(WeaklyHardEngine, OverloadLatchStaysDownOnFeasibleSets) {
  const sched::TaskSet tasks = feasible_tasks();
  EngineOptions options;
  options.horizon = 200'000;
  const SimulationResult overload_run =
      simulate(tasks, kCpu, SchedulerPolicy::lpfps(), nullptr, options);
  // kOverload on a feasible, fault-free run: no skips at all.
  EXPECT_EQ(overload_run.jobs_skipped_weakly, 0);
  EXPECT_EQ(overload_run.deadline_misses, 0);

  EngineOptions always = options;
  always.weakly_hard.policy = weakly_hard::SkipPolicy::kAlways;
  const SimulationResult always_run =
      simulate(tasks, kCpu, SchedulerPolicy::lpfps(), nullptr, always);
  // kAlways spends every permitted skip even with zero pressure.
  EXPECT_GT(always_run.jobs_skipped_weakly, 0);
  EXPECT_EQ(always_run.mk_violations, 0);
}

TEST(WeaklyHardEngine, ThrottleContainmentCannotCombineWithGovernor) {
  EngineOptions options = overload_options();
  options.containment.on_overrun = faults::OverrunAction::kThrottle;
  EXPECT_THROW(simulate(overloaded_tasks(), kCpu, SchedulerPolicy::fps(),
                        nullptr, options),
               std::logic_error);
  // Disarmed (kNever), throttle is fine again.
  options.weakly_hard.policy = weakly_hard::SkipPolicy::kNever;
  EXPECT_NO_THROW(simulate(overloaded_tasks(), kCpu, SchedulerPolicy::fps(),
                           nullptr, options));
}

TEST(WeaklyHardEngine, ArmedRunsAreCycleDetectionIneligible) {
  const sched::TaskSet tasks = feasible_tasks();
  EngineOptions options;
  options.horizon = 400'000;  // 20 hyperperiods of 20 ms.
  options.cycle_detection = true;
  options.weakly_hard.policy = weakly_hard::SkipPolicy::kAlways;
  const SimulationResult armed =
      simulate(tasks, kCpu, SchedulerPolicy::fps(), nullptr, options);
  EXPECT_EQ(armed.cycles_detected, 0);

  options.weakly_hard.policy = weakly_hard::SkipPolicy::kNever;
  const SimulationResult disarmed =
      simulate(tasks, kCpu, SchedulerPolicy::fps(), nullptr, options);
  EXPECT_GT(disarmed.cycles_detected, 0);
}

TEST(WeaklyHardEngine, KernelCrossCheckAgreesOnSkipsAndWindows) {
  // The reference kernel runs the same governor rule; under full-speed
  // FPS with WCET execution the two simulators must agree on every
  // weakly-hard observable.
  const sched::TaskSet tasks = overloaded_tasks();
  EngineOptions options = overload_options();
  const SimulationResult engine_run =
      simulate(tasks, kCpu, SchedulerPolicy::fps(), nullptr, options);

  sched::FixedPriorityKernel kernel(tasks);
  kernel.set_skip_policy(weakly_hard::SkipPolicy::kOverload);
  const sched::KernelResult kernel_run = kernel.run(options.horizon);

  EXPECT_EQ(engine_run.jobs_skipped_weakly, kernel_run.jobs_skipped_weakly);
  EXPECT_EQ(engine_run.mk_violations, kernel_run.mk_violations);
  EXPECT_EQ(engine_run.deadline_misses, kernel_run.deadline_misses);
  int skip_records = 0;
  for (const sim::JobRecord& job : kernel_run.trace.jobs()) {
    if (job.skipped) ++skip_records;
  }
  EXPECT_EQ(skip_records, engine_run.jobs_skipped_weakly);
}

}  // namespace
}  // namespace lpfps::core
