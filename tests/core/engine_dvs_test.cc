#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

using sim::ProcessorMode;

/// An idealized processor: continuous frequencies, cubic power law
/// (proportional voltage, no floor), near-instant transitions.  Makes
/// DVS outcomes analytically predictable.
power::ProcessorConfig ideal_cpu() {
  power::ProcessorConfig config;
  config.frequencies = power::FrequencyTable::continuous(1.0, 100.0);
  config.voltage = std::make_shared<power::ProportionalVoltageModel>(3.3, 0.0);
  config.ramp_rate = 1e6;  // Effectively instant ramps.
  return config;
}

sched::TaskSet single_task(std::int64_t period, Work wcet) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", period, wcet));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

EngineOptions options(Time horizon, bool trace = false) {
  EngineOptions opts;
  opts.horizon = horizon;
  opts.record_trace = trace;
  return opts;
}

TEST(EngineDvs, SingleTaskStretchesToItsPeriod) {
  // C = 50, T = 100: LPFPS runs the lone task at ratio 0.5 wall-to-wall.
  const SimulationResult result =
      simulate(single_task(100, 50.0), ideal_cpu(),
               SchedulerPolicy::lpfps_dvs_only(), nullptr, options(1000.0));
  EXPECT_NEAR(result.mean_running_ratio, 0.5, 1e-3);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.jobs_completed, 10);
  // Cubic power law: power = 0.5^3 = 0.125 while running ~all the time.
  EXPECT_NEAR(result.average_power, 0.125, 5e-3);
}

TEST(EngineDvs, CubicEnergySavingVersusFps) {
  const sched::TaskSet tasks = single_task(100, 50.0);
  const SimulationResult fps = simulate(
      tasks, ideal_cpu(), SchedulerPolicy::fps(), nullptr, options(1000.0));
  const SimulationResult lpfps =
      simulate(tasks, ideal_cpu(), SchedulerPolicy::lpfps_dvs_only(),
               nullptr, options(1000.0));
  // FPS: 0.5 * 1 + 0.5 * 0.2 = 0.6.  LPFPS-DVS: 0.125.
  EXPECT_NEAR(fps.average_power, 0.6, 1e-6);
  EXPECT_LT(lpfps.average_power / fps.average_power, 0.25);
}

TEST(EngineDvs, QuantizationRoundsSpeedUp) {
  // Discrete levels {25, 50, 100} MHz: a desired ratio of 0.30 must pick
  // 50 MHz, never 25 MHz.
  power::ProcessorConfig config = ideal_cpu();
  config.frequencies = power::FrequencyTable::from_levels({25.0, 50.0, 100.0});
  const SimulationResult result =
      simulate(single_task(100, 30.0), config,
               SchedulerPolicy::lpfps_dvs_only(), nullptr,
               options(1000.0, true));
  EXPECT_EQ(result.deadline_misses, 0);
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kRunning && s.ratio_begin < 1.0) {
      EXPECT_NEAR(s.ratio_begin, 0.5, 1e-9);
    }
  }
}

TEST(EngineDvs, NoSlowdownWithoutSlack) {
  // C == T: zero slack, LPFPS must run at full speed throughout.
  const SimulationResult result =
      simulate(single_task(100, 100.0), ideal_cpu(),
               SchedulerPolicy::lpfps_dvs_only(), nullptr, options(500.0));
  EXPECT_DOUBLE_EQ(result.mean_running_ratio, 1.0);
  EXPECT_EQ(result.speed_changes, 0);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(EngineDvs, SlowdownOnlyWhenAlone) {
  // Two equal-period tasks: while both are pending the processor stays
  // at full speed; only the lower-priority one (running last, alone)
  // may be stretched.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("first", 100, 30.0));
  tasks.add(sched::make_task("second", 100, 30.0));
  sched::assign_rate_monotonic(tasks);
  const SimulationResult result =
      simulate(tasks, ideal_cpu(), SchedulerPolicy::lpfps_dvs_only(),
               nullptr, options(1000.0, true));
  EXPECT_EQ(result.deadline_misses, 0);
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kRunning && s.task == 0) {
      // The higher-priority task always has the other one pending.
      EXPECT_DOUBLE_EQ(s.ratio_begin, 1.0);
    }
  }
  EXPECT_GT(result.speed_changes, 0);  // "second" does get stretched.
}

TEST(EngineDvs, RealRampRateStillMeetsDeadlines) {
  // Paper transition rate, paper frequency grid, Table 1 task set at
  // WCET: every deadline holds (throw_on_miss is on by default).
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps(), nullptr, options(4000.0));
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.speed_changes, 0);
}

TEST(EngineDvs, OptimalRatioNeverSlowerThanDeadlinesAllow) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps_optimal(), nullptr, options(4000.0));
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(EngineDvs, OptimalSavesAtLeastAsMuchAsHeuristicOnShortWindows) {
  // CNC-like short windows are where r_opt < r_heu matters (Figure 7).
  sched::TaskSet tasks;
  tasks.add(sched::make_task("short_a", 200, 40.0));
  tasks.add(sched::make_task("short_b", 400, 60.0));
  sched::assign_rate_monotonic(tasks);
  const power::ProcessorConfig config =
      power::ProcessorConfig::arm8_default();
  const SimulationResult heuristic = simulate(
      tasks, config, SchedulerPolicy::lpfps(), nullptr, options(4000.0));
  const SimulationResult optimal =
      simulate(tasks, config, SchedulerPolicy::lpfps_optimal(), nullptr,
               options(4000.0));
  EXPECT_LE(optimal.total_energy, heuristic.total_energy + 1e-6);
}

TEST(EngineDvs, MeanRunningRatioBelowOneWhenSlackExists) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps(), nullptr, options(4000.0));
  EXPECT_LT(result.mean_running_ratio, 1.0);
  EXPECT_GT(result.mean_running_ratio, 0.3);
}

}  // namespace
}  // namespace lpfps::core
