// core/fingerprint.h — the shared FNV-1a machinery.  The constants and
// byte-for-byte behavior are pinned here because three consumers (the
// golden-equivalence suite, the cycle detector's state digests, the
// admission cache) must keep agreeing forever: a change to this hash
// silently invalidates golden files and cached decisions alike.
#include "core/fingerprint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace lpfps::core {
namespace {

TEST(Fingerprint, PinnedConstants) {
  EXPECT_EQ(kFnvOffsetBasis, 1469598103934665603ull);
  EXPECT_EQ(kFnvPrime, 1099511628211ull);
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), kFnvOffsetBasis);
}

TEST(Fingerprint, FollowsTheFnv1aRecurrence) {
  // One step: (basis ^ byte) * prime, xor-before-multiply (the "1a"
  // ordering).  The repo's basis predates this header (it is what the
  // golden files were hashed with), so the vectors are self-derived.
  EXPECT_EQ(fnv1a("a"), (kFnvOffsetBasis ^ 'a') * kFnvPrime);
  const std::uint64_t step1 = (kFnvOffsetBasis ^ 'h') * kFnvPrime;
  EXPECT_EQ(fnv1a("hi"), (step1 ^ 'i') * kFnvPrime);
}

TEST(Fingerprint, ChainingEqualsConcatenation) {
  const std::string a = "hello ";
  const std::string b = "world";
  EXPECT_EQ(fnv1a(b, fnv1a(a)), fnv1a(a + b));
  EXPECT_EQ(fnv1a_bytes(b.data(), b.size(), fnv1a_bytes(a.data(), a.size())),
            fnv1a(a + b));
}

TEST(Fingerprint, HasherMixesScalarsByBitPattern) {
  FnvHasher h1;
  h1.mix(1.5).mix(std::int64_t{42});
  FnvHasher h2;
  h2.mix(1.5).mix(std::int64_t{42});
  EXPECT_EQ(h1.digest(), h2.digest());

  FnvHasher h3;
  h3.mix(1.5 + 1e-12).mix(std::int64_t{42});
  EXPECT_NE(h1.digest(), h3.digest());

  // Signed zero has a distinct bit pattern — documented behavior.
  FnvHasher pos, neg;
  pos.mix(0.0);
  neg.mix(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(Fingerprint, StringsAreLengthPrefixed) {
  FnvHasher ab_c, a_bc;
  ab_c.mix(std::string_view("ab")).mix(std::string_view("c"));
  a_bc.mix(std::string_view("a")).mix(std::string_view("bc"));
  EXPECT_NE(ab_c.digest(), a_bc.digest());
}

TEST(Fingerprint, Hex64Rendering) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(hex64(0xffffffffffffffffull), "ffffffffffffffff");
  // The golden files' rendering: fnv1a of empty string.
  EXPECT_EQ(hex64(kFnvOffsetBasis), "14650fb0739d0383");
}

}  // namespace
}  // namespace lpfps::core
