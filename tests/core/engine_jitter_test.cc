// Release jitter in the engine, paired with the jitter-aware RTA.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "metrics/stats.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

sched::TaskSet slack_set() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("fast", 100, 10.0));
  tasks.add(sched::make_task("slow", 400, 80.0));  // U = 0.3.
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(EngineJitter, EmptyVectorMatchesDefaultExactly) {
  EngineOptions plain;
  plain.horizon = 4000.0;
  EngineOptions with_empty = plain;
  with_empty.release_jitter = {};
  const auto a = simulate(slack_set(), cpu(), SchedulerPolicy::lpfps(),
                          nullptr, plain);
  const auto b = simulate(slack_set(), cpu(), SchedulerPolicy::lpfps(),
                          nullptr, with_empty);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
}

TEST(EngineJitter, ZeroJitterVectorMatchesDefaultExactly) {
  EngineOptions plain;
  plain.horizon = 4000.0;
  EngineOptions zero = plain;
  zero.release_jitter = {0.0, 0.0};
  const auto a = simulate(slack_set(), cpu(), SchedulerPolicy::lpfps(),
                          nullptr, plain);
  const auto b = simulate(slack_set(), cpu(), SchedulerPolicy::lpfps(),
                          nullptr, zero);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
}

TEST(EngineJitter, WrongVectorSizeRejected) {
  EngineOptions options;
  options.horizon = 400.0;
  options.release_jitter = {1.0};  // Two tasks.
  EXPECT_THROW(simulate(slack_set(), cpu(), SchedulerPolicy::fps(),
                        nullptr, options),
               std::logic_error);
  options.release_jitter = {1.0, -1.0};
  EXPECT_THROW(simulate(slack_set(), cpu(), SchedulerPolicy::fps(),
                        nullptr, options),
               std::logic_error);
}

TEST(EngineJitter, DispatchDelayedByUpToJitter) {
  // Single task with jitter 5: each job's first running segment starts
  // between its nominal release and release + 5; mean offset ~2.5.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", 100, 10.0));
  sched::assign_rate_monotonic(tasks);
  EngineOptions options;
  options.horizon = 100.0 * 400;
  options.record_trace = true;
  options.release_jitter = {5.0};
  const auto result = simulate(tasks, cpu(), SchedulerPolicy::fps(),
                               nullptr, options);
  metrics::Summary offsets;
  Time expected_release = 0.0;
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode != sim::ProcessorMode::kRunning) continue;
    const double offset = s.begin - expected_release;
    EXPECT_GE(offset, -1e-9);
    EXPECT_LE(offset, 5.0 + 1e-9);
    offsets.add(offset);
    expected_release += 100.0;
  }
  EXPECT_GT(offsets.count(), 300u);
  EXPECT_NEAR(offsets.mean(), 2.5, 0.3);
}

TEST(EngineJitter, ResponseTimesStayWithinExtendedRta) {
  // The engine's observed response times (from nominal release) must
  // respect the jitter-aware analysis bound.
  sched::TaskSet tasks = slack_set();
  sched::AnalysisExtras extras = sched::AnalysisExtras::zero(tasks);
  extras.jitter = {20.0, 30.0};
  ASSERT_TRUE(sched::is_schedulable_extended(tasks, extras));
  const auto bound_fast = sched::response_time_extended(tasks, 0, extras);
  const auto bound_slow = sched::response_time_extended(tasks, 1, extras);
  ASSERT_TRUE(bound_fast.has_value());
  ASSERT_TRUE(bound_slow.has_value());

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EngineOptions options;
    options.horizon = 40'000.0;
    options.seed = seed;
    options.record_trace = true;
    options.release_jitter = {20.0, 30.0};
    const auto result = simulate(tasks, cpu(), SchedulerPolicy::fps(),
                                 nullptr, options);
    for (const sim::JobRecord& job : result.trace->jobs()) {
      const double bound = job.task == 0 ? *bound_fast : *bound_slow;
      EXPECT_LE(job.response_time(), bound + 1e-6)
          << "task " << job.task << " seed " << seed;
    }
  }
}

TEST(EngineJitter, LpfpsStaysSafeUnderJitter) {
  // The conservative staging rules (no DVS / no power-down while a
  // jitter-delayed arrival is in flight) must preserve hard deadlines.
  const sched::TaskSet tasks = slack_set();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EngineOptions options;
    options.horizon = 40'000.0;
    options.seed = seed;
    options.release_jitter = {20.0, 30.0};
    for (const auto& policy :
         {SchedulerPolicy::lpfps(), SchedulerPolicy::lpfps_optimal(),
          SchedulerPolicy::lpfps_powerdown_only()}) {
      const auto result =
          simulate(tasks, cpu(), policy, nullptr, options);
      EXPECT_EQ(result.deadline_misses, 0)
          << policy.name << " seed " << seed;
    }
  }
}

TEST(EngineJitter, JitterReducesLpfpsSavings) {
  // Staged arrivals suppress DVS/power-down windows, so jittered runs
  // spend at least as much energy.
  const sched::TaskSet tasks = slack_set();
  EngineOptions plain;
  plain.horizon = 40'000.0;
  const double base_energy =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), nullptr, plain)
          .total_energy;
  EngineOptions jittered = plain;
  jittered.release_jitter = {40.0, 80.0};
  const double jittered_energy =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), nullptr, jittered)
          .total_energy;
  EXPECT_GE(jittered_energy, base_energy - 1e-6);
}

}  // namespace
}  // namespace lpfps::core
