// Safety of the slowdown window.
//
// The paper's L17 stretches the active task's remaining WCET across
// [t_c, t_a] where t_a is the next release in the delay queue.  That is
// unsafe in general: t_a can lie beyond the active task's own absolute
// deadline.  Concretely (all deadlines == periods):
//
//   tau_b: T = 70,  C = 20  (higher priority under RM)
//   tau_a: T = 100, C = 60  (response time exactly 100: just feasible)
//
// Timeline: tau_a's 2nd job (release 100) runs [100,140), is preempted
// by tau_b's 3rd job [140,160), and resumes at 160 with 20 us of work
// left.  The run queue is empty and the delay queue's head (tau_b) is
// released at 210 — *after* tau_a's deadline at 200.  The paper's
// uncapped ratio (C-E)/(t_a-t_c) = 20/50 = 0.4 would finish at 210 and
// miss.  Our engine caps the window at min(t_a, deadline), computing
// 20/40 = 0.5 and finishing by 200.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/speed_ratio.h"
#include "sched/analysis.h"
#include "sched/priority.h"

namespace lpfps::core {
namespace {

sched::TaskSet hazardous_set() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("tau_b", 70, 20.0));
  tasks.add(sched::make_task("tau_a", 100, 60.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(EngineSafety, HazardSetIsJustFeasible) {
  const sched::TaskSet tasks = hazardous_set();
  ASSERT_TRUE(sched::is_schedulable_rta(tasks));
  const auto r = sched::response_time(tasks, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 100.0);  // Exactly at the deadline: zero margin.
}

TEST(EngineSafety, UncappedPaperFormulaWouldMiss) {
  // Pure arithmetic of the scenario: remaining 20 over the uncapped
  // window 50 (t_a = 210, t_c = 160) finishes at 210 > deadline 200.
  const double uncapped = heuristic_ratio(20.0, 210.0 - 160.0);
  EXPECT_NEAR(uncapped, 0.4, 1e-12);
  EXPECT_GT(160.0 + 20.0 / uncapped, 200.0);
  // The capped window (deadline 200) is safe by construction.
  const double capped = heuristic_ratio(20.0, 200.0 - 160.0);
  EXPECT_LE(160.0 + 20.0 / capped, 200.0 + 1e-9);
}

TEST(EngineSafety, LpfpsMeetsEveryDeadlineOnHazardSet) {
  // throw_on_miss is on: a miss anywhere in 10 hyperperiods would throw.
  EngineOptions options;
  options.horizon = 7000.0;  // lcm(70, 100) = 700.
  const SimulationResult result =
      simulate(hazardous_set(), power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps(), nullptr, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.speed_changes, 0);  // DVS did engage.
}

TEST(EngineSafety, AllLpfpsVariantsSafeOnHazardSet) {
  EngineOptions options;
  options.horizon = 7000.0;
  for (const auto& policy :
       {SchedulerPolicy::lpfps(), SchedulerPolicy::lpfps_optimal(),
        SchedulerPolicy::lpfps_dvs_only(),
        SchedulerPolicy::lpfps_powerdown_only()}) {
    const SimulationResult result =
        simulate(hazardous_set(), power::ProcessorConfig::arm8_default(),
                 policy, nullptr, options);
    EXPECT_EQ(result.deadline_misses, 0) << policy.name;
  }
}

TEST(EngineSafety, HazardSetWithRandomExecutionTimes) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const sched::TaskSet tasks = hazardous_set().with_bcet_ratio(0.2);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EngineOptions options;
    options.horizon = 7000.0;
    options.seed = seed;
    const SimulationResult result =
        simulate(tasks, power::ProcessorConfig::arm8_default(),
                 SchedulerPolicy::lpfps(), exec, options);
    EXPECT_EQ(result.deadline_misses, 0) << "seed " << seed;
  }
}

TEST(EngineSafety, ZeroSlackTaskSetNeverSlowsOrSleeps) {
  // U = 1 harmonic set: LPFPS degrades gracefully to plain FPS.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("half", 10, 5.0));
  tasks.add(sched::make_task("rest", 20, 10.0));
  sched::assign_rate_monotonic(tasks);
  EngineOptions options;
  options.horizon = 2000.0;
  const SimulationResult result =
      simulate(tasks, power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps(), nullptr, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(result.mean_running_ratio, 1.0);
  EXPECT_EQ(result.power_downs, 0);
}

}  // namespace
}  // namespace lpfps::core
