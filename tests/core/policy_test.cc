#include "core/policy.h"

#include <gtest/gtest.h>

namespace lpfps::core {
namespace {

TEST(Policy, FpsBaseline) {
  const SchedulerPolicy fps = SchedulerPolicy::fps();
  EXPECT_EQ(fps.name, "FPS");
  EXPECT_EQ(fps.dvs, RatioMethod::kNone);
  EXPECT_EQ(fps.idle, IdleMethod::kBusyWait);
  EXPECT_FALSE(fps.uses_dvs());
  EXPECT_NO_THROW(fps.validate());
}

TEST(Policy, LpfpsUsesHeuristicAndExactPowerDown) {
  const SchedulerPolicy lpfps = SchedulerPolicy::lpfps();
  EXPECT_EQ(lpfps.dvs, RatioMethod::kHeuristic);
  EXPECT_EQ(lpfps.idle, IdleMethod::kExactPowerDown);
  EXPECT_TRUE(lpfps.uses_dvs());
}

TEST(Policy, OptimalVariant) {
  EXPECT_EQ(SchedulerPolicy::lpfps_optimal().dvs, RatioMethod::kOptimal);
}

TEST(Policy, AblationVariantsIsolateMechanisms) {
  const SchedulerPolicy dvs_only = SchedulerPolicy::lpfps_dvs_only();
  EXPECT_TRUE(dvs_only.uses_dvs());
  EXPECT_EQ(dvs_only.idle, IdleMethod::kBusyWait);

  const SchedulerPolicy pd_only = SchedulerPolicy::lpfps_powerdown_only();
  EXPECT_FALSE(pd_only.uses_dvs());
  EXPECT_EQ(pd_only.idle, IdleMethod::kExactPowerDown);
}

TEST(Policy, TimeoutShutdownStoresTimeout) {
  const SchedulerPolicy timeout =
      SchedulerPolicy::fps_timeout_shutdown(500.0);
  EXPECT_EQ(timeout.idle, IdleMethod::kTimeoutShutdown);
  EXPECT_DOUBLE_EQ(timeout.shutdown_timeout, 500.0);
}

TEST(Policy, NamesAreDistinct) {
  EXPECT_NE(SchedulerPolicy::fps().name, SchedulerPolicy::lpfps().name);
  EXPECT_NE(SchedulerPolicy::lpfps().name,
            SchedulerPolicy::lpfps_optimal().name);
}

TEST(Policy, ToStringCoverage) {
  EXPECT_STREQ(to_string(RatioMethod::kNone), "none");
  EXPECT_STREQ(to_string(RatioMethod::kHeuristic), "heuristic");
  EXPECT_STREQ(to_string(RatioMethod::kOptimal), "optimal");
  EXPECT_STREQ(to_string(IdleMethod::kBusyWait), "busy-wait");
  EXPECT_STREQ(to_string(IdleMethod::kExactPowerDown), "exact-power-down");
  EXPECT_STREQ(to_string(IdleMethod::kTimeoutShutdown), "timeout-shutdown");
}

}  // namespace
}  // namespace lpfps::core
