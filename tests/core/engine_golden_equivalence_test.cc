// Golden engine-equivalence test: every registered workload under every
// engine policy must reproduce the exact trace (segments and job
// records) and SimulationResult counters captured from the engine before
// the zero-allocation hot-path work, bit for bit.
//
// Segments are canonicalized with sim::coalesce_segments before hashing,
// so the record-time coalescing writer (which merges continuing ramps
// and constant-speed runs as they are appended) compares equal to the
// uncoalesced traces the goldens were captured from — that is exactly
// the "modulo documented coalescing" contract of docs/PERFORMANCE.md.
//
// Regenerate data/golden/engine_equivalence.csv after an *intended*
// behaviour change with:
//
//   LPFPS_UPDATE_GOLDEN=1 build/tests/core_engine_golden_equivalence_test
//
// The hashes cover text rendered at 12 significant digits, which is
// robust to sub-ulp noise but still pins every schedule decision.  The
// execution-time model draws through libstdc++'s normal_distribution,
// so goldens are tied to the CI toolchain family (GNU/Linux).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/fingerprint.h"
#include "core/static_slowdown.h"
#include "exec/exec_model.h"
#include "io/trace_io.h"
#include "power/processor.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

// The hashing itself lives in core/fingerprint.h — the same FNV-1a the
// admission cache and cycle detector use; goldens pin its output too.
using core::fnv1a;
using core::hex64;

struct GoldenRow {
  std::int64_t segment_count = 0;
  std::int64_t job_count = 0;
  std::string segments_hash;
  std::string jobs_hash;
  std::string result_hash;

  std::string to_csv() const {
    std::ostringstream os;
    os << segment_count << "," << job_count << "," << segments_hash << ","
       << jobs_hash << "," << result_hash;
    return os.str();
  }
};

std::string golden_path() {
  return std::string(LPFPS_SOURCE_DIR) + "/data/golden/engine_equivalence.csv";
}

std::vector<core::SchedulerPolicy> policies_for(
    const sched::TaskSet& tasks, const power::ProcessorConfig& cpu) {
  std::vector<core::SchedulerPolicy> policies = {
      core::SchedulerPolicy::fps(),
      core::SchedulerPolicy::fps_timeout_shutdown(500.0),
      core::SchedulerPolicy::lpfps(),
      core::SchedulerPolicy::lpfps_optimal(),
      core::SchedulerPolicy::lpfps_powerdown_only(),
      core::SchedulerPolicy::lpfps_dvs_only(),
  };
  const auto static_ratio =
      core::min_feasible_static_ratio(tasks, cpu.frequencies);
  if (static_ratio) {
    policies.push_back(core::SchedulerPolicy::static_slowdown(*static_ratio));
    policies.push_back(core::SchedulerPolicy::lpfps_hybrid(*static_ratio));
  }
  return policies;
}

GoldenRow row_for(const core::SimulationResult& result) {
  const sim::Trace& trace = result.trace.value();
  const std::vector<sim::Segment> canonical =
      sim::coalesce_segments(trace.segments());
  const sim::Trace canon = sim::Trace::unchecked(canonical, trace.jobs());
  GoldenRow row;
  row.segment_count = static_cast<std::int64_t>(canonical.size());
  row.job_count = static_cast<std::int64_t>(trace.jobs().size());
  row.segments_hash = hex64(fnv1a(io::trace_segments_csv(canon, {})));
  row.jobs_hash = hex64(fnv1a(io::trace_jobs_csv(canon, {})));
  row.result_hash = hex64(fnv1a(io::result_csv_row(result)));
  return row;
}

/// Runs every workload x policy combination and returns "workload/policy"
/// -> golden row.  Keyed rows (rather than a positional list) keep the
/// diff readable when one combination drifts.
///
/// Two passes per workload: the stochastic (clamped-Gaussian) pass pins
/// the classic fully-simulated path, and the "/wcet@4H" pass runs the
/// deterministic model over four hyperperiods — long enough for the
/// steady-state fast-forward to detect a cycle and splice the replayed
/// timeline, so these rows pin the extrapolated path bit for bit.
std::map<std::string, GoldenRow> compute_rows() {
  std::map<std::string, GoldenRow> rows;
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const auto cpu = power::ProcessorConfig::arm8_default();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.5);
    core::EngineOptions options;
    options.horizon = std::min(w.horizon, 1e6);
    options.seed = 7;
    options.record_trace = true;
    core::EngineOptions wcet_options = options;
    wcet_options.horizon =
        4.0 * static_cast<Time>(tasks.hyperperiod());
    for (const core::SchedulerPolicy& policy :
         policies_for(w.tasks, cpu)) {
      rows[w.name + "/" + policy.name] =
          row_for(core::simulate(tasks, cpu, policy, exec, options));
      const core::SimulationResult wcet_result =
          core::simulate(tasks, cpu, policy, nullptr, wcet_options);
      EXPECT_GT(wcet_result.cycles_detected, 0)
          << w.name << "/" << policy.name
          << ": deterministic 4-hyperperiod run did not fast-forward";
      rows[w.name + "/" + policy.name + "/wcet@4H"] = row_for(wcet_result);
    }
  }
  return rows;
}

TEST(EngineGoldenEquivalence, MatchesCapturedEngineBehaviour) {
  const std::map<std::string, GoldenRow> rows = compute_rows();

  const char* update = std::getenv("LPFPS_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << "key,segment_count,job_count,segments_hash,jobs_hash,"
           "result_hash\n";
    for (const auto& [key, row] : rows) {
      out << key << "," << row.to_csv() << "\n";
    }
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good())
      << "missing " << golden_path()
      << " — regenerate with LPFPS_UPDATE_GOLDEN=1";
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));  // Header.
  std::map<std::string, std::string> golden;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    golden[line.substr(0, comma)] = line.substr(comma + 1);
  }

  // Every captured combination must still exist and match; every
  // current combination must have been captured.
  for (const auto& [key, expected] : golden) {
    const auto it = rows.find(key);
    ASSERT_NE(it, rows.end()) << "combination disappeared: " << key;
    EXPECT_EQ(it->second.to_csv(), expected)
        << key << " diverged from the captured engine behaviour";
  }
  for (const auto& [key, row] : rows) {
    EXPECT_TRUE(golden.count(key) != 0)
        << "new combination not captured in goldens: " << key
        << " (run with LPFPS_UPDATE_GOLDEN=1)";
  }
  EXPECT_EQ(rows.size(), golden.size());
}

}  // namespace
}  // namespace lpfps
