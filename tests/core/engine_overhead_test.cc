// Context-switch overhead modelling (EngineOptions::context_switch_cost).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

SimulationResult run_with_cost(Work cost, Time horizon = 400.0) {
  EngineOptions options;
  options.horizon = horizon;
  options.context_switch_cost = cost;
  return simulate(workloads::example_table1(), cpu(),
                  SchedulerPolicy::fps(), nullptr, options);
}

TEST(ContextSwitchCost, ZeroCostMatchesBaseline) {
  const SimulationResult baseline = run_with_cost(0.0);
  EXPECT_NEAR(baseline.average_power, 0.88, 1e-9);
}

TEST(ContextSwitchCost, EnergyGrowsWithCost) {
  // Each preemption burns extra full-power work instead of NOP idle.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("fast", 100, 10.0));
  tasks.add(sched::make_task("long", 200, 120.0));
  sched::assign_rate_monotonic(tasks);
  auto power_at = [&](Work cost) {
    EngineOptions options;
    options.horizon = 2000.0;
    options.context_switch_cost = cost;
    return simulate(tasks, cpu(), SchedulerPolicy::fps(), nullptr, options)
        .average_power;
  };
  const double p0 = power_at(0.0);
  const double p1 = power_at(1.0);
  const double p2 = power_at(3.0);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
}

TEST(ContextSwitchCost, ChargedPerPreemption) {
  // Two tasks engineered for exactly one preemption per hyperperiod:
  // the busy time must grow by exactly cost * context_switches.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("fast", 100, 10.0));
  tasks.add(sched::make_task("long", 200, 120.0));
  sched::assign_rate_monotonic(tasks);

  auto run = [&](Work cost) {
    EngineOptions options;
    options.horizon = 2000.0;
    options.context_switch_cost = cost;
    return simulate(tasks, cpu(), SchedulerPolicy::fps(), nullptr,
                    options);
  };
  const SimulationResult base = run(0.0);
  const double cost = 2.0;
  const SimulationResult loaded = run(cost);
  EXPECT_EQ(base.context_switches, 10);  // One per 200 us hyperperiod.
  ASSERT_EQ(base.context_switches, loaded.context_switches);
  const double busy_base = base.mode(sim::ProcessorMode::kRunning).time;
  const double busy_loaded =
      loaded.mode(sim::ProcessorMode::kRunning).time;
  EXPECT_NEAR(busy_loaded - busy_base, cost * base.context_switches, 1e-6);
}

TEST(ContextSwitchCost, AnyCostBreaksZeroSlackSetLoudly) {
  // Table 1 "just meets" schedulability (tau3's response time equals
  // the window to tau2's next release), so even 1 us of unbudgeted
  // kernel overhead must surface as a deadline throw, not silent
  // lateness.
  EXPECT_THROW(run_with_cost(1.0), std::runtime_error);
}

TEST(ContextSwitchCost, RecordedWhenNotThrowing) {
  EngineOptions options;
  options.horizon = 400.0;
  options.context_switch_cost = 1.0;
  options.throw_on_miss = false;
  const SimulationResult result =
      simulate(workloads::example_table1(), cpu(), SchedulerPolicy::fps(),
               nullptr, options);
  EXPECT_GT(result.deadline_misses, 0);
}

TEST(ContextSwitchCost, NegativeCostRejected) {
  EngineOptions options;
  options.horizon = 400.0;
  options.context_switch_cost = -1.0;
  EXPECT_THROW(simulate(workloads::example_table1(), cpu(),
                        SchedulerPolicy::fps(), nullptr, options),
               std::logic_error);
}

}  // namespace
}  // namespace lpfps::core
