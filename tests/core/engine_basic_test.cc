#include "core/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/kernel.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

using sim::ProcessorMode;

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

EngineOptions options(Time horizon, bool trace = false) {
  EngineOptions opts;
  opts.horizon = horizon;
  opts.record_trace = trace;
  return opts;
}

TEST(EngineFps, AveragePowerMatchesUtilizationFormula) {
  // FPS at WCET: busy U of the time at power 1, idle (1-U) at NOP power
  // 0.2 -> average power = 0.85 + 0.15 * 0.2 = 0.88 for Table 1.
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(400.0));
  EXPECT_NEAR(result.average_power, 0.88, 1e-9);
}

TEST(EngineHook, InvocationHookObservesEveryInvocation) {
  // The opt-in observer must fire exactly once per scheduler invocation
  // with a coherent snapshot; without it the engine never copies the
  // queues (the snapshot-free default).
  EngineOptions opts = options(400.0);
  std::vector<sched::QueueSnapshot> snapshots;
  opts.invocation_hook = [&](const sched::QueueSnapshot& snapshot) {
    snapshots.push_back(snapshot);
  };
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::lpfps(), nullptr, opts);
  EXPECT_EQ(snapshots.size(),
            static_cast<std::size_t>(result.scheduler_invocations));
  Time last = -1.0;
  for (const sched::QueueSnapshot& snapshot : snapshots) {
    EXPECT_GE(snapshot.time, last);
    last = snapshot.time;
    for (const sched::RunEntry& entry : snapshot.run_queue) {
      EXPECT_NE(entry.task, kNoTask);
      EXPECT_NE(entry.task, snapshot.active_task);
    }
  }
  // The run queue was genuinely observed: with three tasks the snapshot
  // stream must show a non-empty queue at least once.
  bool saw_waiting = false;
  for (const sched::QueueSnapshot& snapshot : snapshots) {
    saw_waiting = saw_waiting || !snapshot.run_queue.empty();
  }
  EXPECT_TRUE(saw_waiting);
}

TEST(EngineFps, ScheduleMatchesReferenceKernel) {
  // With DVS and power-down disabled the engine must produce exactly the
  // reference kernel's schedule.
  const SimulationResult engine_result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(400.0, true));
  sched::FixedPriorityKernel kernel(lpfps::workloads::example_table1());
  const sched::KernelResult kernel_result = kernel.run(400.0);

  ASSERT_TRUE(engine_result.trace.has_value());
  const auto& engine_segments = engine_result.trace->segments();
  const auto& kernel_segments = kernel_result.trace.segments();
  ASSERT_EQ(engine_segments.size(), kernel_segments.size());
  for (std::size_t i = 0; i < engine_segments.size(); ++i) {
    EXPECT_NEAR(engine_segments[i].begin, kernel_segments[i].begin, 1e-9);
    EXPECT_NEAR(engine_segments[i].end, kernel_segments[i].end, 1e-9);
    EXPECT_EQ(engine_segments[i].mode, kernel_segments[i].mode);
    EXPECT_EQ(engine_segments[i].task, kernel_segments[i].task);
  }
}

TEST(EngineFps, RunsAtFullSpeedAlways) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(400.0, true));
  EXPECT_DOUBLE_EQ(result.mean_running_ratio, 1.0);
  EXPECT_EQ(result.speed_changes, 0);
  EXPECT_EQ(result.power_downs, 0);
  for (const sim::Segment& s : result.trace->segments()) {
    EXPECT_DOUBLE_EQ(s.ratio_begin, 1.0);
    EXPECT_DOUBLE_EQ(s.ratio_end, 1.0);
  }
}

TEST(EngineFps, JobCountsOverHyperperiod) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(400.0));
  EXPECT_EQ(result.jobs_completed, 8 + 5 + 4);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(EngineFps, ContextSwitchCounted) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(200.0));
  EXPECT_GE(result.context_switches, 1);  // tau3 preempted at t=50.
}

TEST(Engine, TraceOmittedByDefault) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(400.0));
  EXPECT_FALSE(result.trace.has_value());
}

TEST(Engine, TraceInvariantsHoldWhenRecorded) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::lpfps(), nullptr, options(400.0, true));
  ASSERT_TRUE(result.trace.has_value());
  EXPECT_NO_THROW(result.trace->check_invariants());
}

TEST(Engine, ThrowsOnDeadlineMissByDefault) {
  sched::TaskSet overloaded;
  overloaded.add(sched::make_task("hog", 10, 8.0));
  overloaded.add(sched::make_task("victim", 20, 10.0));
  sched::assign_rate_monotonic(overloaded);
  EXPECT_THROW(simulate(overloaded, cpu(), SchedulerPolicy::fps(), nullptr,
                        options(100.0)),
               std::runtime_error);
}

TEST(Engine, RecordsMissesWhenAskedNotToThrow) {
  sched::TaskSet overloaded;
  overloaded.add(sched::make_task("hog", 10, 8.0));
  overloaded.add(sched::make_task("victim", 20, 10.0));
  sched::assign_rate_monotonic(overloaded);
  EngineOptions opts = options(200.0);
  opts.throw_on_miss = false;
  const SimulationResult result =
      simulate(overloaded, cpu(), SchedulerPolicy::fps(), nullptr, opts);
  EXPECT_GT(result.deadline_misses, 0);
}

TEST(Engine, RejectsEmptyTaskSet) {
  EXPECT_THROW(Engine(sched::TaskSet{}, cpu(), SchedulerPolicy::fps(),
                      nullptr),
               std::logic_error);
}

TEST(Engine, RejectsNonPositiveHorizon) {
  const Engine engine(lpfps::workloads::example_table1(), cpu(),
                      SchedulerPolicy::fps(), nullptr);
  EXPECT_THROW(engine.run(options(0.0)), std::logic_error);
}

TEST(Engine, PhasedTaskStartsLate) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("phased", 100, 100, 10.0, 10.0, /*phase=*/40));
  sched::assign_rate_monotonic(tasks);
  const SimulationResult result = simulate(
      tasks, cpu(), SchedulerPolicy::fps(), nullptr, options(140.0, true));
  ASSERT_TRUE(result.trace.has_value());
  const auto& segments = result.trace->segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().mode, ProcessorMode::kIdleBusyWait);
  EXPECT_NEAR(segments.front().end, 40.0, 1e-9);
}

TEST(Engine, EnergyConservesAcrossModeBreakdown) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::lpfps(), nullptr, options(400.0));
  Energy sum = 0.0;
  Time time = 0.0;
  for (const auto& slot : result.by_mode) {
    sum += slot.energy;
    time += slot.time;
  }
  EXPECT_NEAR(sum, result.total_energy, 1e-9);
  EXPECT_NEAR(time, 400.0, 1e-6);
}

TEST(Engine, PerTaskEnergySumsToRunningTotals) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::lpfps(), nullptr, options(400.0));
  ASSERT_EQ(result.per_task.size(), 3u);
  Energy energy = 0.0;
  Time time = 0.0;
  for (const auto& slot : result.per_task) {
    energy += slot.energy;
    time += slot.time;
  }
  EXPECT_NEAR(energy, result.mode(sim::ProcessorMode::kRunning).energy,
              1e-9);
  EXPECT_NEAR(time, result.mode(sim::ProcessorMode::kRunning).time, 1e-9);
}

TEST(Engine, PerTaskTimeMatchesWorkUnderFps) {
  // At full speed with WCET jobs, each task's processor time over a
  // hyperperiod is jobs * WCET.
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::fps(), nullptr, options(400.0));
  EXPECT_NEAR(result.per_task[0].time, 8 * 10.0, 1e-9);
  EXPECT_NEAR(result.per_task[1].time, 5 * 20.0, 1e-9);
  EXPECT_NEAR(result.per_task[2].time, 4 * 40.0, 1e-9);
}

TEST(Engine, DeterministicAcrossRepeatedRuns) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const sched::TaskSet tasks =
      lpfps::workloads::example_table1().with_bcet_ratio(0.3);
  const SimulationResult a =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), exec, options(4000.0));
  const SimulationResult b =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), exec, options(4000.0));
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.speed_changes, b.speed_changes);
}

}  // namespace
}  // namespace lpfps::core
