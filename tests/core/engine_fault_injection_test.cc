// Fault injection and containment: the engine must stay bit-identical
// with the fault layer disarmed, contain injected overruns under
// kill/throttle, detect ramp and wakeup faults, and fail toward plain
// FPS under the safe-mode fallback — all while the trace auditor's
// fault-aware battery stays clean.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/harness.h"
#include "io/trace_io.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

EngineOptions traced_options(Time horizon) {
  EngineOptions opts;
  opts.horizon = horizon;
  opts.record_trace = true;
  return opts;
}

sched::TaskSet example(double bcet_ratio = 1.0) {
  return lpfps::workloads::example_table1().with_bcet_ratio(bcet_ratio);
}

std::vector<std::string> names(const sched::TaskSet& tasks) {
  std::vector<std::string> out;
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    out.push_back(tasks[i].name);
  }
  return out;
}

/// Audits `result` with the option derivation benches use and expects a
/// clean report.
void expect_audit_clean(const SimulationResult& result,
                        const sched::TaskSet& tasks,
                        const SchedulerPolicy& policy,
                        const EngineOptions& options) {
  const audit::AuditReport report = audit::audit_run(
      result, tasks, cpu(), audit::derive_options(policy, options));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultBitIdentity, ArmedContainmentWithoutFaultsChangesNothing) {
  // The acceptance bar: enabling detection + containment with an empty
  // FaultPlan must leave every exported byte identical — in-contract
  // jobs never exhaust their budget, so the machinery stays invisible.
  const sched::TaskSet tasks = example(0.4);
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  for (const SchedulerPolicy& policy :
       {SchedulerPolicy::fps(), SchedulerPolicy::lpfps()}) {
    const EngineOptions plain = traced_options(4000.0);
    EngineOptions armed = plain;
    armed.containment.on_overrun = faults::OverrunAction::kKill;
    armed.containment.safe_mode_fallback = true;

    const SimulationResult a = simulate(tasks, cpu(), policy, exec, plain);
    const SimulationResult b = simulate(tasks, cpu(), policy, exec, armed);

    EXPECT_EQ(io::result_csv_row(a), io::result_csv_row(b)) << policy.name;
    EXPECT_EQ(io::trace_segments_csv(*a.trace, names(tasks)),
              io::trace_segments_csv(*b.trace, names(tasks)))
        << policy.name;
    EXPECT_EQ(io::trace_jobs_csv(*a.trace, names(tasks)),
              io::trace_jobs_csv(*b.trace, names(tasks)))
        << policy.name;
    EXPECT_EQ(b.overruns_detected, 0);
    EXPECT_EQ(b.jobs_killed, 0);
    EXPECT_EQ(b.safe_mode_entries, 0);
  }
}

TEST(FaultKill, CertainOverrunsAreKilledAtBudgetWithZeroMisses) {
  // Every job overruns to 1.5 C; kill caps the executed demand at C, so
  // the faulted run is dominated by the all-WCET run — which is
  // schedulable for Table 1 — and no deadline is ever missed.
  const sched::TaskSet tasks = example();
  const SchedulerPolicy policy = SchedulerPolicy::lpfps();
  EngineOptions opts = traced_options(4000.0);
  opts.throw_on_miss = false;
  opts.faults.overruns = {{1.0, 0.5}};
  opts.containment.on_overrun = faults::OverrunAction::kKill;
  opts.containment.safe_mode_fallback = true;

  const SimulationResult result =
      simulate(tasks, cpu(), policy, nullptr, opts);

  EXPECT_GT(result.overruns_detected, 0);
  EXPECT_EQ(result.jobs_killed, result.overruns_detected);
  EXPECT_GT(result.safe_mode_entries, 0);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.jobs_completed, 0);  // p=1: every job is shed.
  EXPECT_EQ(result.jobs_throttled, 0);

  ASSERT_TRUE(result.trace.has_value());
  for (const sim::JobRecord& job : result.trace->jobs()) {
    EXPECT_TRUE(job.killed);
    EXPECT_FALSE(job.finished);
    EXPECT_FALSE(job.missed_deadline);
    const Work wcet = tasks[job.task].wcet;
    EXPECT_NEAR(job.executed, wcet, 1e-6) << tasks[job.task].name;
  }
  expect_audit_clean(result, tasks, policy, opts);
}

TEST(FaultThrottle, OverrunsResumeWithReplenishedBudgets) {
  // 1.6 C of demand against a 1.0 C budget: each job is suspended at
  // its budget and finishes in its second window (a deliberate
  // weakly-hard degradation — late completions count as misses).
  const sched::TaskSet tasks = example();
  const SchedulerPolicy policy = SchedulerPolicy::lpfps();
  EngineOptions opts = traced_options(4000.0);
  opts.throw_on_miss = false;
  opts.faults.overruns = {{1.0, 0.6}};
  opts.containment.on_overrun = faults::OverrunAction::kThrottle;
  opts.containment.safe_mode_fallback = true;

  const SimulationResult result =
      simulate(tasks, cpu(), policy, nullptr, opts);

  EXPECT_GT(result.jobs_throttled, 0);
  EXPECT_EQ(result.overruns_detected, result.jobs_throttled);
  EXPECT_EQ(result.jobs_killed, 0);
  EXPECT_GT(result.safe_mode_entries, 0);

  ASSERT_TRUE(result.trace.has_value());
  int finished = 0;
  for (const sim::JobRecord& job : result.trace->jobs()) {
    if (!job.finished) continue;
    ++finished;
    const sched::Task& t = tasks[job.task];
    // The full faulted demand ran: nothing was shed, only deferred.
    EXPECT_NEAR(job.executed, 1.6 * t.wcet, 1e-6) << t.name;
    // Budget ceiling: at most one replenishment per period window.
    const double windows = std::ceil(
        (job.completion - job.release) / static_cast<double>(t.period));
    EXPECT_LE(job.executed, windows * t.wcet + 1e-6) << t.name;
  }
  EXPECT_GT(finished, 0);
  EXPECT_EQ(result.jobs_completed, finished);
  expect_audit_clean(result, tasks, policy, opts);
}

TEST(FaultMonitor, SafeModeEngagesOnDetectionWithoutDisplacingJobs) {
  // kNone + safe mode: overruns are detected and the engine runs full
  // speed until idle, but no job is killed, throttled or skipped.
  const sched::TaskSet tasks = example(0.4);
  const SchedulerPolicy policy = SchedulerPolicy::lpfps();
  EngineOptions opts = traced_options(8000.0);
  opts.throw_on_miss = false;
  opts.seed = 7;
  opts.faults.overruns = {{0.3, 0.3}};
  opts.containment.on_overrun = faults::OverrunAction::kNone;
  opts.containment.safe_mode_fallback = true;

  const SimulationResult result = simulate(
      tasks, cpu(), policy, std::make_shared<exec::ClampedGaussianModel>(),
      opts);

  EXPECT_GT(result.overruns_detected, 0);
  EXPECT_GT(result.safe_mode_entries, 0);
  EXPECT_EQ(result.jobs_killed, 0);
  EXPECT_EQ(result.jobs_throttled, 0);
  EXPECT_EQ(result.jobs_skipped, 0);
  expect_audit_clean(result, tasks, policy, opts);
}

TEST(FaultRamp, SlowRegulatorMakesPlansLateAndIsDetected) {
  // Physics at half the spec rho.  With WCET demand the slowdown plans
  // run just-in-time, so the slow regulator leaves the clock measurably
  // below the commanded trajectory when the plan ends — which the
  // engine must flag and answer with safe mode.
  const sched::TaskSet tasks = example();
  const SchedulerPolicy policy = SchedulerPolicy::lpfps();
  EngineOptions opts = traced_options(8000.0);
  opts.throw_on_miss = false;
  opts.faults.ramp.rho_factor = 0.5;
  opts.containment.safe_mode_fallback = true;

  const SimulationResult result =
      simulate(tasks, cpu(), policy, nullptr, opts);

  EXPECT_GT(result.dvs_slowdowns, 0);
  EXPECT_GT(result.ramp_faults_detected, 0);
  EXPECT_GT(result.safe_mode_entries, 0);
  expect_audit_clean(result, tasks, policy, opts);
}

TEST(FaultWakeup, LateTimerIsDetectedAtTheWakeInstant) {
  const sched::TaskSet tasks = example(0.4);
  const SchedulerPolicy policy = SchedulerPolicy::lpfps();
  EngineOptions opts = traced_options(8000.0);
  opts.throw_on_miss = false;
  opts.faults.wakeup = {1.0, 5.0};
  opts.containment.safe_mode_fallback = true;

  const SimulationResult result = simulate(
      tasks, cpu(), policy, std::make_shared<exec::ClampedGaussianModel>(),
      opts);

  EXPECT_GT(result.power_downs, 0);
  EXPECT_GT(result.late_wakeups_detected, 0);
  EXPECT_GT(result.safe_mode_entries, 0);
  expect_audit_clean(result, tasks, policy, opts);
}

TEST(FaultCycles, FaultAndContainmentRunsNeverFastForward) {
  // Budget windows, the safe-mode latch and perturbed timers live
  // outside the cycle fingerprint, so such runs must stay ineligible.
  const sched::TaskSet tasks = example();
  EngineOptions opts = traced_options(40'000.0);
  opts.throw_on_miss = false;
  opts.faults.overruns = {{0.05, 0.2}};
  opts.containment.on_overrun = faults::OverrunAction::kKill;
  const SimulationResult faulted =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), nullptr, opts);
  EXPECT_EQ(faulted.cycles_detected, 0);

  EngineOptions armed_only = traced_options(40'000.0);
  armed_only.containment.on_overrun = faults::OverrunAction::kThrottle;
  const SimulationResult armed =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), nullptr, armed_only);
  EXPECT_EQ(armed.cycles_detected, 0);

  // Bit-identity still holds against the fast-forwarding plain twin.
  const SimulationResult plain = simulate(
      tasks, cpu(), SchedulerPolicy::lpfps(), nullptr,
      traced_options(40'000.0));
  EXPECT_EQ(io::result_csv_row(plain), io::result_csv_row(armed));
}

TEST(FaultValidation, MismatchedOverrunVectorIsRejected) {
  const sched::TaskSet tasks = example();  // Three tasks.
  EngineOptions opts = traced_options(400.0);
  opts.faults.overruns = {{0.5, 0.5}, {0.5, 0.5}};  // Two specs.
  EXPECT_THROW(
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), nullptr, opts),
      std::logic_error);

  EngineOptions bad = traced_options(400.0);
  bad.faults.overruns = {{1.5, 0.5}};  // Probability out of domain.
  EXPECT_THROW(
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), nullptr, bad),
      std::logic_error);
}

}  // namespace
}  // namespace lpfps::core
