#include "core/yds.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/cnc.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

TEST(YdsSchedule, SingleJobRunsAtItsDensity) {
  const auto schedule =
      yds_schedule({YdsJob{0.0, 10.0, 5.0}});
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(schedule[0].end, 10.0);
  EXPECT_DOUBLE_EQ(schedule[0].speed, 0.5);
}

TEST(YdsSchedule, DisjointJobsKeepOwnSpeeds) {
  const auto schedule = yds_schedule(
      {YdsJob{0.0, 10.0, 2.0}, YdsJob{20.0, 30.0, 8.0}});
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(schedule[0].end, 10.0);
  EXPECT_DOUBLE_EQ(schedule[0].speed, 0.2);
  EXPECT_DOUBLE_EQ(schedule[1].begin, 20.0);
  EXPECT_DOUBLE_EQ(schedule[1].end, 30.0);
  EXPECT_DOUBLE_EQ(schedule[1].speed, 0.8);
}

TEST(YdsSchedule, SharedWindowAverages) {
  // A: [0,10] w=5, B: [0,2] w=1.  The whole [0,10] has intensity 0.6 >
  // [0,2]'s 0.5, so one constant interval at 0.6 (EDF fits B first).
  const auto schedule = yds_schedule(
      {YdsJob{0.0, 10.0, 5.0}, YdsJob{0.0, 2.0, 1.0}});
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule[0].speed, 0.6);
  EXPECT_DOUBLE_EQ(schedule[0].end, 10.0);
}

TEST(YdsSchedule, NestedCriticalIntervalTextbookCase) {
  // A: [0,10] w=2, B: [4,6] w=1.5.  Critical interval [4,6] @ 0.75;
  // after collapsing, A runs at 0.25 around it.
  const auto schedule = yds_schedule(
      {YdsJob{0.0, 10.0, 2.0}, YdsJob{4.0, 6.0, 1.5}});
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(schedule[0].end, 4.0);
  EXPECT_DOUBLE_EQ(schedule[0].speed, 0.25);
  EXPECT_DOUBLE_EQ(schedule[1].begin, 4.0);
  EXPECT_DOUBLE_EQ(schedule[1].end, 6.0);
  EXPECT_DOUBLE_EQ(schedule[1].speed, 0.75);
  EXPECT_DOUBLE_EQ(schedule[2].begin, 6.0);
  EXPECT_DOUBLE_EQ(schedule[2].end, 10.0);
  EXPECT_DOUBLE_EQ(schedule[2].speed, 0.25);
}

TEST(YdsSchedule, TotalWorkIsConserved) {
  const std::vector<YdsJob> jobs = {
      {0.0, 50.0, 10.0}, {10.0, 30.0, 8.0}, {25.0, 90.0, 20.0},
      {60.0, 70.0, 6.0}, {0.0, 100.0, 5.0},
  };
  Work total = 0.0;
  for (const YdsJob& job : jobs) total += job.work;
  Work scheduled = 0.0;
  for (const SpeedInterval& s : yds_schedule(jobs)) {
    scheduled += s.speed * (s.end - s.begin);
  }
  EXPECT_NEAR(scheduled, total, 1e-9);
}

TEST(YdsSchedule, SpeedsAreNonIncreasingInCriticality) {
  // Every point's speed equals some round's intensity, and rounds are
  // found in non-increasing intensity order; spot-check the profile has
  // no speed above the max intensity.
  const std::vector<YdsJob> jobs = {
      {0.0, 40.0, 10.0}, {5.0, 15.0, 6.0}, {20.0, 25.0, 4.0},
  };
  const double peak = yds_max_intensity(jobs);
  for (const SpeedInterval& s : yds_schedule(jobs)) {
    EXPECT_LE(s.speed, peak + 1e-12);
  }
  EXPECT_NEAR(peak, 0.8, 1e-12);  // [20,25]: 4/5.
}

TEST(YdsMaxIntensity, FeasibilityOracle) {
  // Table 1 is schedulable at full speed, so max intensity <= 1; the
  // overloaded variant exceeds 1.
  const auto feasible = jobs_from_task_set(
      lpfps::workloads::example_table1(), 400.0, nullptr, 1);
  EXPECT_LE(yds_max_intensity(feasible), 1.0 + 1e-12);

  sched::TaskSet overloaded;
  overloaded.add(sched::make_task("hog", 10, 8.0));
  overloaded.add(sched::make_task("more", 20, 10.0));
  sched::assign_rate_monotonic(overloaded);
  const auto infeasible =
      jobs_from_task_set(overloaded, 100.0, nullptr, 1);
  EXPECT_GT(yds_max_intensity(infeasible), 1.0);
}

TEST(YdsMaxIntensity, EmptyAndZeroWork) {
  EXPECT_DOUBLE_EQ(yds_max_intensity({}), 0.0);
  EXPECT_DOUBLE_EQ(yds_max_intensity({YdsJob{0.0, 10.0, 0.0}}), 0.0);
}

TEST(YdsSchedule, RejectsMalformedJobs) {
  EXPECT_THROW(yds_schedule({YdsJob{10.0, 10.0, 1.0}}), std::logic_error);
  EXPECT_THROW(yds_schedule({YdsJob{0.0, 10.0, -1.0}}), std::logic_error);
}

TEST(YdsEnergy, ConstantSpeedCase) {
  const auto model =
      power::ProcessorConfig::arm8_default().make_power_model();
  const std::vector<SpeedInterval> schedule = {{0.0, 100.0, 0.5}};
  EXPECT_NEAR(yds_energy(schedule, model, 0.08),
              100.0 * model.run_power(0.5), 1e-9);
}

TEST(YdsEnergy, SubMinimumSpeedChargesAtFloorDensity) {
  const auto model =
      power::ProcessorConfig::arm8_default().make_power_model();
  // speed 0.04 < floor 0.08: run the 4 units of work at 0.08 for 50 us.
  const std::vector<SpeedInterval> schedule = {{0.0, 100.0, 0.04}};
  EXPECT_NEAR(yds_energy(schedule, model, 0.08),
              50.0 * model.run_power(0.08), 1e-9);
}

TEST(YdsEnergy, InfeasibleSpeedThrows) {
  const auto model =
      power::ProcessorConfig::arm8_default().make_power_model();
  EXPECT_THROW(yds_energy({{0.0, 1.0, 1.5}}, model, 0.08),
               std::logic_error);
}

TEST(YdsBound, LowerBoundsEveryOnlinePolicy) {
  // The core optimality claim, checked empirically on CNC over two
  // hyperperiods with random execution times.
  const sched::TaskSet tasks =
      lpfps::workloads::cnc().with_bcet_ratio(0.4);
  const Time horizon = 38'400.0;
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const auto cpu = power::ProcessorConfig::arm8_default();
  const auto model = cpu.make_power_model();

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto jobs = jobs_from_task_set(tasks, horizon, exec, seed);
    const Energy bound =
        yds_energy(yds_schedule(jobs), model,
                   cpu.frequencies.f_min() / cpu.frequencies.f_max());
    for (const auto& policy :
         {SchedulerPolicy::fps(), SchedulerPolicy::lpfps(),
          SchedulerPolicy::lpfps_optimal(),
          SchedulerPolicy::lpfps_hybrid(0.9)}) {
      EngineOptions options;
      options.horizon = horizon;
      options.seed = seed;
      const Energy actual =
          simulate(tasks, cpu, policy, exec, options).total_energy;
      EXPECT_LE(bound, actual + 1e-6) << policy.name << " seed " << seed;
    }
  }
}

TEST(JobsFromTaskSet, CountsAndDeadlines) {
  const auto jobs = jobs_from_task_set(
      lpfps::workloads::example_table1(), 400.0, nullptr, 1);
  EXPECT_EQ(jobs.size(), 8u + 5u + 4u);
  for (const YdsJob& job : jobs) {
    EXPECT_GT(job.deadline, job.release);
    EXPECT_GT(job.work, 0.0);
  }
}

}  // namespace
}  // namespace lpfps::core
