// The hybrid static+dynamic policy: a feasible static base clock with
// LPFPS-style per-window reclamation below it.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/speed_ratio.h"
#include "core/static_slowdown.h"
#include "sched/priority.h"
#include "sched/validator.h"
#include "workloads/registry.h"

namespace lpfps::core {
namespace {

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

sched::TaskSet harmonic_half() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 25.0));
  tasks.add(sched::make_task("b", 200, 50.0));  // U = 0.5, harmonic.
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(OptimalRatioToTarget, ReducesToPaperFormulaAtTargetOne) {
  EXPECT_DOUBLE_EQ(optimal_ratio_to_target(20.0, 40.0, 0.07, 1.0),
                   optimal_ratio(20.0, 40.0, 0.07));
}

TEST(OptimalRatioToTarget, SolvesGeneralizedEquationExactly) {
  const double target = 0.7;
  const double rho = 0.07;
  const double window = 100.0;
  const double remaining = 30.0;
  const double r =
      optimal_ratio_to_target(remaining, window, rho, target);
  ASSERT_LT(r, target);
  ASSERT_GT(r, target - rho * window);
  // window*r + (target - r)^2/(2 rho) == remaining.
  EXPECT_NEAR(window * r + (target - r) * (target - r) / (2 * rho),
              remaining, 1e-9);
}

TEST(OptimalRatioToTarget, NoSlackReturnsTarget) {
  EXPECT_DOUBLE_EQ(optimal_ratio_to_target(70.0, 100.0, 0.07, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(optimal_ratio_to_target(90.0, 100.0, 0.07, 0.7), 0.7);
}

TEST(HybridEngine, RunsAtBaseWithoutSlackAndBelowWithIt) {
  // Base 0.75 on the U=0.5 harmonic set: the lone tail task gets
  // stretched below 0.75.
  EngineOptions options;
  options.horizon = 2000.0;
  options.record_trace = true;
  const SimulationResult result =
      simulate(harmonic_half(), cpu(), SchedulerPolicy::lpfps_hybrid(0.75),
               nullptr, options);
  EXPECT_EQ(result.deadline_misses, 0);
  bool saw_base = false;
  bool saw_below = false;
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode != sim::ProcessorMode::kRunning) continue;
    EXPECT_LE(s.ratio_begin, 0.75 + 1e-9);
    if (s.ratio_begin == s.ratio_end) {
      if (s.ratio_begin == 0.75) saw_base = true;
      if (s.ratio_begin < 0.75 - 1e-9) saw_below = true;
    }
  }
  EXPECT_TRUE(saw_base);
  EXPECT_TRUE(saw_below);
}

TEST(HybridEngine, NeverExceedsItsBaseClock) {
  EngineOptions options;
  options.horizon = 4000.0;
  options.record_trace = true;
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const SimulationResult result = simulate(
      harmonic_half().with_bcet_ratio(0.3), cpu(),
      SchedulerPolicy::lpfps_hybrid(0.8), exec, options);
  for (const sim::Segment& s : result.trace->segments()) {
    EXPECT_LE(s.ratio_begin, 0.8 + 1e-9);
    EXPECT_LE(s.ratio_end, 0.8 + 1e-9);
  }
}

TEST(HybridEngine, MeetsDeadlinesOnAllPaperWorkloads) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    const auto base =
        min_feasible_static_ratio(w.tasks, cpu().frequencies);
    ASSERT_TRUE(base.has_value()) << w.name;
    for (const double bcet : {1.0, 0.3}) {
      EngineOptions options;
      options.horizon = std::min(w.horizon, 2e6);
      options.record_trace = true;
      const SimulationResult result =
          simulate(w.tasks.with_bcet_ratio(bcet), cpu(),
                   SchedulerPolicy::lpfps_hybrid(*base), exec, options);
      EXPECT_EQ(result.deadline_misses, 0) << w.name << " bcet " << bcet;
      const auto report =
          sched::validate_schedule(*result.trace, w.tasks);
      EXPECT_TRUE(report.ok()) << w.name << "\n" << report.to_string();
    }
  }
}

TEST(HybridEngine, DominatesPureStaticWithVaryingExecTimes) {
  // With real slack to reclaim, the hybrid can only improve on its own
  // static base (it never runs faster, and sleeps the same gaps).
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    const auto base =
        min_feasible_static_ratio(w.tasks, cpu().frequencies);
    ASSERT_TRUE(base.has_value());
    EngineOptions options;
    options.horizon = std::min(w.horizon, 2e6);
    const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.3);
    const double hybrid =
        simulate(tasks, cpu(), SchedulerPolicy::lpfps_hybrid(*base), exec,
                 options)
            .average_power;
    const double pure_static =
        simulate(tasks, cpu(), SchedulerPolicy::static_slowdown(*base),
                 exec, options)
            .average_power;
    EXPECT_LE(hybrid, pure_static + 1e-9) << w.name;
  }
}

TEST(HybridEngine, MatchesLpfpsWhenBaseIsFullSpeed) {
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  EngineOptions options;
  options.horizon = 4000.0;
  const sched::TaskSet tasks = harmonic_half().with_bcet_ratio(0.5);
  const double hybrid =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps_hybrid(1.0), exec,
               options)
          .total_energy;
  const double lpfps =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps(), exec, options)
          .total_energy;
  EXPECT_NEAR(hybrid, lpfps, 1e-9);
}

}  // namespace
}  // namespace lpfps::core
