#include "core/static_slowdown.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/registry.h"

namespace lpfps::core {
namespace {

TEST(ScaleToRatio, InflatesExecutionTimes) {
  const sched::TaskSet scaled =
      scale_to_ratio(workloads::example_table1(), 0.5);
  EXPECT_DOUBLE_EQ(scaled[0].wcet, 20.0);
  EXPECT_DOUBLE_EQ(scaled[2].wcet, 80.0);
  EXPECT_EQ(scaled[0].period, 50);  // Periods untouched.
}

TEST(ScaleToRatio, RejectsWcetBeyondDeadline) {
  // tau3 at ratio 0.3: 40/0.3 = 133 > deadline 100.
  EXPECT_THROW(scale_to_ratio(workloads::example_table1(), 0.3),
               std::logic_error);
}

TEST(SchedulableAtRatio, FullSpeedMatchesPlainRta) {
  const sched::TaskSet tasks = workloads::example_table1();
  EXPECT_EQ(schedulable_at_ratio(tasks, 1.0),
            sched::is_schedulable_rta(tasks));
}

TEST(SchedulableAtRatio, InfeasibleRatioIsFalseNotThrow) {
  EXPECT_FALSE(schedulable_at_ratio(workloads::example_table1(), 0.3));
}

TEST(MinFeasibleRatio, PaperExampleIsNearlyUnscalable) {
  // Table 1 "just meets" schedulability: U = 0.85 and R3 == D3, so the
  // minimum feasible ratio is high.
  const auto ratio = min_feasible_static_ratio(
      workloads::example_table1(), power::FrequencyTable::arm8_like());
  ASSERT_TRUE(ratio.has_value());
  EXPECT_GE(*ratio, 0.85);   // Cannot beat the utilization floor.
  EXPECT_LE(*ratio, 1.0);
  EXPECT_TRUE(
      schedulable_at_ratio(workloads::example_table1(), *ratio));
}

TEST(MinFeasibleRatio, MinimalityOnTheDiscreteGrid) {
  const sched::TaskSet tasks = workloads::example_table1();
  const power::FrequencyTable table = power::FrequencyTable::arm8_like();
  const auto ratio = min_feasible_static_ratio(tasks, table);
  ASSERT_TRUE(ratio.has_value());
  // One level lower must be infeasible.
  const double one_lower = *ratio - 0.01;
  if (one_lower >= table.f_min() / table.f_max()) {
    EXPECT_FALSE(schedulable_at_ratio(tasks, one_lower));
  }
}

TEST(MinFeasibleRatio, HarmonicSetScalesToUtilization) {
  // Harmonic periods: RM schedulable up to U = 1, so the minimal ratio
  // is the utilization itself (rounded up to the grid).
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 25.0));
  tasks.add(sched::make_task("b", 200, 50.0));  // U = 0.5.
  sched::assign_rate_monotonic(tasks);
  const auto ratio = min_feasible_static_ratio(
      tasks, power::FrequencyTable::arm8_like());
  ASSERT_TRUE(ratio.has_value());
  EXPECT_NEAR(*ratio, 0.5, 1e-9);
}

TEST(MinFeasibleRatio, ContinuousBisectionTightens) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 25.0));
  tasks.add(sched::make_task("b", 200, 50.0));
  sched::assign_rate_monotonic(tasks);
  const auto ratio = min_feasible_static_ratio(
      tasks, power::FrequencyTable::continuous(8.0, 100.0));
  ASSERT_TRUE(ratio.has_value());
  EXPECT_NEAR(*ratio, 0.5, 1e-4);
}

TEST(MinFeasibleRatio, UnschedulableSetYieldsNullopt) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("hog", 10, 8.0));
  tasks.add(sched::make_task("victim", 20, 10.0));
  sched::assign_rate_monotonic(tasks);
  EXPECT_FALSE(min_feasible_static_ratio(
                   tasks, power::FrequencyTable::arm8_like())
                   .has_value());
}

TEST(StaticPolicy, EngineRunsAtConstantRatio) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 25.0));
  tasks.add(sched::make_task("b", 200, 50.0));
  sched::assign_rate_monotonic(tasks);

  EngineOptions options;
  options.horizon = 2000.0;
  options.record_trace = true;
  const SimulationResult result =
      simulate(tasks, power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::static_slowdown(0.5), nullptr, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(result.mean_running_ratio, 0.5);
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode == sim::ProcessorMode::kRunning) {
      EXPECT_DOUBLE_EQ(s.ratio_begin, 0.5);
      EXPECT_DOUBLE_EQ(s.ratio_end, 0.5);
    }
  }
}

TEST(StaticPolicy, PowerDownStillWorksAtBaseRatio) {
  // U = 0.5 at ratio 0.75 leaves idle gaps the timer can absorb.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 25.0));
  tasks.add(sched::make_task("b", 200, 50.0));
  sched::assign_rate_monotonic(tasks);
  EngineOptions options;
  options.horizon = 2000.0;
  const SimulationResult result =
      simulate(tasks, power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::static_slowdown(0.75), nullptr, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.power_downs, 0);
}

TEST(StaticPolicy, InfeasibleRatioThrowsDeadlineMiss) {
  // At ratio 0.5 Table 1's demand is 1.7x capacity: tau3's first job
  // only completes (late) around t=800 once the backlog drains enough —
  // misses are detected at completion, so give the horizon room.
  EngineOptions options;
  options.horizon = 2000.0;
  EXPECT_THROW(
      simulate(workloads::example_table1(),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::static_slowdown(0.5), nullptr, options),
      std::runtime_error);
}

TEST(StaticPolicy, HybridCombinesBaseAndDynamicReclamation) {
  const SchedulerPolicy hybrid = SchedulerPolicy::lpfps_hybrid(0.75);
  EXPECT_TRUE(hybrid.uses_dvs());
  EXPECT_DOUBLE_EQ(hybrid.static_ratio, 0.75);
  EXPECT_EQ(hybrid.idle, IdleMethod::kExactPowerDown);
  EXPECT_NO_THROW(hybrid.validate());
}

TEST(StaticPolicy, StaticAlwaysBeatsPlainFpsAndMeetsDeadlines) {
  // Static slowdown at the minimal feasible ratio dominates FPS (it
  // runs slower *and* power-downs when idle) on every workload, with
  // every deadline intact.  Whether it beats LPFPS depends on the load
  // shape — bench_baselines maps that trade-off (at low utilization the
  // static clock slows *every* task, which dynamic per-window slowdown
  // cannot; with tight static ratios LPFPS's dynamic reclamation wins).
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    const auto static_ratio = min_feasible_static_ratio(
        w.tasks, power::FrequencyTable::arm8_like());
    ASSERT_TRUE(static_ratio.has_value()) << w.name;
    const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.5);
    const auto exec = std::make_shared<exec::ClampedGaussianModel>();
    EngineOptions options;
    options.horizon = std::min(w.horizon, 2e6);
    const double fps =
        simulate(tasks, power::ProcessorConfig::arm8_default(),
                 SchedulerPolicy::fps(), exec, options)
            .average_power;
    const auto static_result =
        simulate(tasks, power::ProcessorConfig::arm8_default(),
                 SchedulerPolicy::static_slowdown(*static_ratio), exec,
                 options);
    EXPECT_EQ(static_result.deadline_misses, 0) << w.name;
    EXPECT_LT(static_result.average_power, fps) << w.name;
  }
}

}  // namespace
}  // namespace lpfps::core
