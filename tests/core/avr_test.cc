#include "core/avr.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/ins.h"

namespace lpfps::core {
namespace {

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

TEST(AvrRatio, IsQuantizedUtilization) {
  // Table 1: U = 0.85 -> exactly 85 MHz on the 1 MHz grid.
  EXPECT_DOUBLE_EQ(
      avr_ratio(workloads::example_table1(),
                power::FrequencyTable::arm8_like()),
      0.85);
}

TEST(AvrRatio, RequiresImplicitDeadlines) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("constrained", 100, 50, 10.0, 10.0));
  EXPECT_THROW(avr_ratio(tasks, power::FrequencyTable::arm8_like()),
               std::logic_error);
}

TEST(Avr, MeetsAllDeadlinesAtWcet) {
  AvrOptions options;
  options.horizon = 4000.0;
  const SimulationResult result = simulate_avr(
      workloads::example_table1(), cpu(), nullptr, options);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_DOUBLE_EQ(result.mean_running_ratio, 0.85);
  EXPECT_EQ(result.policy_name, "AVR");
}

TEST(Avr, BusyFractionMatchesAnalytic) {
  // At WCET, EDF at ratio U keeps the processor busy U_actual / ratio
  // of the time: with ratio == U exactly, 100% busy.
  AvrOptions options;
  options.horizon = 4000.0;
  const SimulationResult result = simulate_avr(
      workloads::example_table1(), cpu(), nullptr, options);
  const auto busy = result.mode(sim::ProcessorMode::kRunning).time;
  EXPECT_NEAR(busy / options.horizon, 1.0, 1e-6);
}

TEST(Avr, CannotReclaimDynamicSlackInItsClock) {
  // The paper's §2.2 criticism, asserted mechanically: AVR's speed is
  // computed from WCET-based average rates, so its clock ratio stays
  // pinned at quantize(U) no matter how short actual execution times
  // run — unlike LPFPS, whose mean running ratio falls with BCET.
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  const double ratios[] = {1.0, 0.5, 0.1};
  double lpfps_prev_ratio = 2.0;
  for (const double bcet : ratios) {
    const sched::TaskSet tasks = workloads::ins().with_bcet_ratio(bcet);
    AvrOptions avr_options;
    avr_options.horizon = 5e6;
    const auto avr = simulate_avr(tasks, cpu(), exec, avr_options);
    EXPECT_DOUBLE_EQ(avr.mean_running_ratio, 0.73);  // Pinned.

    EngineOptions engine_options;
    engine_options.horizon = 5e6;
    const auto lpfps = simulate(tasks, cpu(), SchedulerPolicy::lpfps(),
                                exec, engine_options);
    EXPECT_LT(lpfps.mean_running_ratio, lpfps_prev_ratio);  // Adapts.
    lpfps_prev_ratio = lpfps.mean_running_ratio;
  }
}

TEST(Avr, BeatsPlainFps) {
  const sched::TaskSet tasks = workloads::ins().with_bcet_ratio(0.5);
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  AvrOptions avr_options;
  avr_options.horizon = 5e6;
  const double avr_power =
      simulate_avr(tasks, cpu(), exec, avr_options).average_power;
  EngineOptions engine_options;
  engine_options.horizon = 5e6;
  const double fps_power =
      simulate(tasks, cpu(), SchedulerPolicy::fps(), exec, engine_options)
          .average_power;
  EXPECT_LT(avr_power, fps_power);
}

TEST(Avr, EnergyDropsWithShorterExecutionTimes) {
  // Busy time shrinks with BCET even though the clock is fixed.
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  AvrOptions options;
  options.horizon = 4000.0 * 50;
  double previous = 1e9;
  for (const double ratio : {1.0, 0.5, 0.1}) {
    const double power =
        simulate_avr(workloads::example_table1().with_bcet_ratio(ratio),
                     cpu(), exec, options)
            .average_power;
    EXPECT_LT(power, previous + 1e-12);
    previous = power;
  }
}

TEST(Avr, ThrowsOnOverload) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("hog", 10, 8.0));
  tasks.add(sched::make_task("more", 20, 10.0));  // U = 1.3.
  sched::assign_rate_monotonic(tasks);
  AvrOptions options;
  options.horizon = 100.0;
  EXPECT_THROW(simulate_avr(tasks, cpu(), nullptr, options),
               std::logic_error);
}

}  // namespace
}  // namespace lpfps::core
