// Overload accounting with throw_on_miss=false: misses are charged at
// the instant a late job *completes* (never at the horizon for jobs
// still in flight), backlog drains within each hyperperiod when total
// demand fits, and the counters agree with the recorded trace.
//
// The workload is hand-traceable under plain FPS at full speed:
//   T1: P = D = 10, C = 6     (higher priority under RM)
//   T2: P = 15, D = 9, C = 5.5
// Utilization 0.6 + 0.3667 = 0.9667; hyperperiod 30 carries
// 3*6 + 2*5.5 = 29 units of demand, so the processor idles in [29, 30)
// and every hyperperiod repeats the same pattern:
//   [0,6)    T1 job 0                completes  6   (on time)
//   [6,10)   T2 job 0 (4 of 5.5 run)
//   [10,16)  T1 job 1 preempts       completes 16   (on time)
//   [16,17.5) T2 job 0               completes 17.5 (deadline 9: MISS)
//   [17.5,20) T2 job 1 (2.5 of 5.5)
//   [20,26)  T1 job 2                completes 26   (on time)
//   [26,29)  T2 job 1                completes 29   (deadline 24: MISS)
//   [29,30)  idle
#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audit/audit.h"
#include "audit/harness.h"
#include "sched/priority.h"

namespace lpfps::core {
namespace {

sched::TaskSet overloaded_pair() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("t1", 10, 6.0));
  tasks.add(sched::make_task("t2", 15, 9, 5.5, 5.5));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

SimulationResult run(Time horizon) {
  EngineOptions opts;
  opts.horizon = horizon;
  opts.throw_on_miss = false;
  opts.record_trace = true;
  return simulate(overloaded_pair(), power::ProcessorConfig::arm8_default(),
                  SchedulerPolicy::fps(), nullptr, opts);
}

TEST(MissAccounting, InFlightLateJobIsNotCountedAtTheHorizon) {
  // At t = 9.5, T2 job 0 is past its deadline (9) but still running —
  // no completion yet, so no miss is charged.
  const SimulationResult result = run(9.5);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.jobs_completed, 1);  // Only T1 job 0.
  // The in-flight T2 job leaves no record at all — a miss can only ever
  // be charged at a completion instant.
  ASSERT_TRUE(result.trace.has_value());
  ASSERT_EQ(result.trace->jobs().size(), 1u);
  EXPECT_TRUE(result.trace->jobs().front().finished);
  EXPECT_FALSE(result.trace->jobs().front().missed_deadline);
}

TEST(MissAccounting, MissChargedWhenTheLateJobCompletes) {
  // Horizon 18 covers T2 job 0's late completion at 17.5.
  const SimulationResult result = run(18.0);
  EXPECT_EQ(result.deadline_misses, 1);
  EXPECT_EQ(result.jobs_completed, 3);  // T1 x2 + T2 job 0.
}

TEST(MissAccounting, BacklogDrainsEveryHyperperiodAndCountersMatchTrace) {
  const int hyperperiods = 10;
  const SimulationResult result = run(30.0 * hyperperiods);
  EXPECT_EQ(result.jobs_completed, 5 * hyperperiods);
  EXPECT_EQ(result.deadline_misses, 2 * hyperperiods);

  ASSERT_TRUE(result.trace.has_value());
  int finished = 0;
  int missed = 0;
  for (const sim::JobRecord& job : result.trace->jobs()) {
    if (!job.finished) continue;
    ++finished;
    if (job.missed_deadline) ++missed;
    // Every job runs its full demand: overload defers work, never
    // sheds it.
    const double wcet = job.task == 0 ? 6.0 : 5.5;
    EXPECT_NEAR(job.executed, wcet, 1e-9);
  }
  EXPECT_EQ(finished, result.jobs_completed);
  EXPECT_EQ(missed, result.deadline_misses);

  // The backlog really drains: T2's k-th hyperperiod copies complete at
  // 17.5 + 30j and 29 + 30j, never drifting across the boundary.
  for (const sim::JobRecord& job : result.trace->jobs()) {
    if (job.task != 1 || !job.finished) continue;
    const double local = std::fmod(job.completion, 30.0);
    EXPECT_TRUE(std::fabs(local - 17.5) < 1e-6 ||
                std::fabs(local - 29.0) < 1e-6)
        << "t2 completion at " << job.completion;
  }

  // The fault-aware audit battery accepts the overloaded trace as long
  // as misses are declared expected.
  const EngineOptions opts = [] {
    EngineOptions o;
    o.horizon = 300.0;
    o.throw_on_miss = false;
    o.record_trace = true;
    return o;
  }();
  const audit::AuditReport report = audit::audit_run(
      result, overloaded_pair(), power::ProcessorConfig::arm8_default(),
      audit::derive_options(SchedulerPolicy::fps(), opts));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace lpfps::core
