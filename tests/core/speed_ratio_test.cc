#include "core/speed_ratio.h"

#include <gtest/gtest.h>

#include <tuple>

namespace lpfps::core {
namespace {

constexpr double kRho = 0.07;  // The paper's transition rate.

TEST(Heuristic, PaperExample2) {
  // t=160: C2 - E2 = 20, t_a - t_c = 40 -> r_heu = 0.5 (paper §3.2).
  EXPECT_NEAR(heuristic_ratio(20.0, 40.0), 0.5, 1e-12);
}

TEST(Heuristic, NoSlackMeansFullSpeed) {
  EXPECT_DOUBLE_EQ(heuristic_ratio(40.0, 40.0), 1.0);
  EXPECT_DOUBLE_EQ(heuristic_ratio(50.0, 40.0), 1.0);
}

TEST(Heuristic, ZeroRemainingWork) {
  EXPECT_DOUBLE_EQ(heuristic_ratio(0.0, 40.0), 0.0);
}

TEST(Optimal, SatisfiesEquation1Exactly) {
  // The returned ratio must make plan capacity == remaining work.
  for (double window : {50.0, 100.0, 500.0, 3000.0}) {
    for (double frac : {0.15, 0.3, 0.5, 0.7, 0.9}) {
      const double remaining = frac * window;
      const double r = optimal_ratio(remaining, window, kRho);
      if (r < 1.0 && r > 1.0 - kRho * window) {
        EXPECT_NEAR(plan_work_capacity(r, window, kRho), remaining,
                    1e-6 * window)
            << "window=" << window << " frac=" << frac;
      }
    }
  }
}

TEST(Optimal, PaperExample2WithTransitionDelay) {
  // t_I = 40, R = 20, rho = 0.07: eq. (2) gives ~0.4446 (< r_heu = 0.5
  // because the ramp back to full speed contributes work).
  const double r = optimal_ratio(20.0, 40.0, kRho);
  EXPECT_NEAR(r, 0.445, 1e-3);
  EXPECT_LT(r, 0.5);
}

TEST(Optimal, ApproachesHeuristicForLongWindows) {
  // Figure 7: r_heu -> r_opt as t_a - t_c grows.
  const double remaining_frac = 0.5;
  double prev_gap = 1.0;
  for (double window : {50.0, 200.0, 1000.0, 3000.0}) {
    const double remaining = remaining_frac * window;
    const double gap =
        heuristic_ratio(remaining, window) -
        optimal_ratio(remaining, window, kRho);
    EXPECT_GE(gap, -1e-12);
    EXPECT_LE(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.01);  // Nearly converged at 3000 us.
}

TEST(Optimal, InstantTransitionEqualsHeuristic) {
  // rho -> infinity removes the ramp term: r_opt == r_heu.
  EXPECT_NEAR(optimal_ratio(20.0, 40.0, 1e9),
              heuristic_ratio(20.0, 40.0), 1e-6);
}

TEST(Optimal, ShortWindowHitsFeasibilityFloor) {
  // window = 5 us: even r = 1 - rho*5 = 0.65 leaves more capacity than
  // tiny remaining work; the floor is returned.
  const double r = optimal_ratio(0.5, 5.0, kRho);
  EXPECT_NEAR(r, 1.0 - kRho * 5.0, 1e-12);
}

TEST(Optimal, NoSlackMeansFullSpeed) {
  EXPECT_DOUBLE_EQ(optimal_ratio(40.0, 40.0, kRho), 1.0);
  EXPECT_DOUBLE_EQ(optimal_ratio(80.0, 40.0, kRho), 1.0);
}

TEST(Theorem1Domain, MatchesPaperHypotheses) {
  EXPECT_TRUE(theorem1_applies(20.0, 40.0));
  EXPECT_FALSE(theorem1_applies(40.0, 40.0));
  EXPECT_FALSE(theorem1_applies(50.0, 40.0));
  EXPECT_FALSE(theorem1_applies(20.0, 0.0));
}

// ---------------------------------------------------------------------
// Theorem 1 as a parameterized property: r_heu >= r_opt over a dense
// sweep of (window, remaining-fraction) pairs, mirroring Figure 7's
// axes (t_a - t_c in [50, 3000], r_heu in [0.1, 0.9]).
// ---------------------------------------------------------------------
class Theorem1Property
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Theorem1Property, HeuristicIsAlwaysSafe) {
  const double window = std::get<0>(GetParam());
  const double frac = std::get<1>(GetParam());
  const double remaining = frac * window;
  ASSERT_TRUE(theorem1_applies(remaining, window));
  const double r_heu = heuristic_ratio(remaining, window);
  const double r_opt = optimal_ratio(remaining, window, kRho);
  // Safety (Theorem 1): r_heu never below r_opt.
  EXPECT_GE(r_heu, r_opt - 1e-12)
      << "window=" << window << " frac=" << frac;
  // And running at r_heu completes no later than the window's end under
  // the optimal plan's own accounting.
  if (r_heu < 1.0 && r_heu >= 1.0 - kRho * window) {
    EXPECT_GE(plan_work_capacity(r_heu, window, kRho), remaining - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Figure7Grid, Theorem1Property,
    ::testing::Combine(
        ::testing::Values(50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0,
                          3000.0),
        ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)));

}  // namespace
}  // namespace lpfps::core
