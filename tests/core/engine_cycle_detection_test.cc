// Steady-state cycle detection: the engine fingerprints the scheduler
// state at each hyperperiod boundary and, once two consecutive
// boundaries match bit for bit, replays the proven cycle instead of
// re-simulating it.  These tests pin the contract from engine.h:
//
//  - the fast-forwarded run's result CSV row, coalesced trace and job
//    records are bit-identical to a full simulation (differential test
//    over every paper workload x parameterless policy x wcet/bcet);
//  - stochastic execution models, release jitter and timer granularity
//    never fast-forward and their output is untouched;
//  - EngineOptions::cycle_detection and LPFPS_CYCLE=0 both opt out;
//  - the replayed timeline passes the full audit battery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "audit/harness.h"
#include "core/engine.h"
#include "exec/exec_model.h"
#include "io/trace_io.h"
#include "power/processor.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace lpfps {
namespace {

std::vector<core::SchedulerPolicy> parameterless_policies() {
  return {core::SchedulerPolicy::fps(), core::SchedulerPolicy::lpfps(),
          core::SchedulerPolicy::lpfps_optimal(),
          core::SchedulerPolicy::lpfps_powerdown_only(),
          core::SchedulerPolicy::lpfps_dvs_only()};
}

std::string canonical_segments(const core::SimulationResult& result) {
  const sim::Trace canon = sim::Trace::unchecked(
      sim::coalesce_segments(result.trace->segments()),
      result.trace->jobs());
  return io::trace_segments_csv(canon, {});
}

std::string jobs_csv(const core::SimulationResult& result) {
  return io::trace_jobs_csv(*result.trace, {});
}

TEST(EngineCycleDetection, FastForwardIsBitIdenticalToFullSimulation) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.5);
    const Time hyper = static_cast<Time>(tasks.hyperperiod());
    core::EngineOptions on;
    on.horizon = 3.0 * hyper;
    on.seed = 7;
    on.record_trace = true;
    core::EngineOptions off = on;
    off.cycle_detection = false;
    for (const core::SchedulerPolicy& policy : parameterless_policies()) {
      for (const exec::ExecModelPtr& exec :
           {exec::ExecModelPtr{},
            exec::ExecModelPtr(std::make_shared<exec::BcetModel>())}) {
        const std::string label = w.name + "/" + policy.name + "/" +
                                  (exec ? exec->name() : "wcet");
        const auto fast = core::simulate(tasks, cpu, policy, exec, on);
        const auto full = core::simulate(tasks, cpu, policy, exec, off);
        EXPECT_GT(fast.cycles_detected, 0) << label;
        EXPECT_EQ(fast.fast_forwarded_time,
                  static_cast<Time>(fast.cycles_detected) * hyper)
            << label;
        EXPECT_EQ(full.cycles_detected, 0) << label;
        // Bit-identical outputs: the result CSV row (all counters and
        // float totals at full print precision), the coalesced segment
        // timeline, and every job record.
        EXPECT_EQ(io::result_csv_row(fast), io::result_csv_row(full))
            << label;
        EXPECT_EQ(canonical_segments(fast), canonical_segments(full))
            << label;
        EXPECT_EQ(jobs_csv(fast), jobs_csv(full)) << label;
      }
    }
  }
}

TEST(EngineCycleDetection, PartialTailCycleResumesSimulation) {
  // A horizon of 3.5 hyperperiods: detection matches at 2H, replay skips
  // one whole cycle, and the final half cycle simulates normally.
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  const Time hyper = static_cast<Time>(w.tasks.hyperperiod());
  core::EngineOptions on;
  on.horizon = 3.5 * hyper;
  on.seed = 7;
  on.record_trace = true;
  core::EngineOptions off = on;
  off.cycle_detection = false;
  for (const core::SchedulerPolicy& policy : parameterless_policies()) {
    const auto fast = core::simulate(w.tasks, cpu, policy, nullptr, on);
    const auto full = core::simulate(w.tasks, cpu, policy, nullptr, off);
    EXPECT_EQ(fast.cycles_detected, 1) << policy.name;
    EXPECT_EQ(fast.fast_forwarded_time, hyper) << policy.name;
    EXPECT_EQ(io::result_csv_row(fast), io::result_csv_row(full))
        << policy.name;
    EXPECT_EQ(canonical_segments(fast), canonical_segments(full))
        << policy.name;
    EXPECT_EQ(jobs_csv(fast), jobs_csv(full)) << policy.name;
  }
}

TEST(EngineCycleDetection, FastForwardedRunPassesAudit) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  for (const workloads::Workload& w : workloads::paper_workloads()) {
    core::EngineOptions options;
    options.horizon = 3.0 * static_cast<Time>(w.tasks.hyperperiod());
    options.record_trace = true;
    for (const core::SchedulerPolicy& policy : parameterless_policies()) {
      const auto result =
          core::simulate(w.tasks, cpu, policy, nullptr, options);
      ASSERT_GT(result.cycles_detected, 0) << w.name << "/" << policy.name;
      const audit::AuditReport report = audit::audit_run(
          result, w.tasks, cpu, audit::derive_options(policy, options));
      EXPECT_TRUE(report.ok())
          << w.name << "/" << policy.name << ": " << report.to_string();
    }
  }
}

TEST(EngineCycleDetection, StochasticModelsNeverFastForward) {
  // Stochastic draws advance the RNG every cycle, so two boundaries can
  // never match; the detector notices the moved generator state at the
  // second fingerprint and disarms.  Output must equal a detection-off
  // run exactly (same seed, same path).
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  const sched::TaskSet tasks = w.tasks.with_bcet_ratio(0.5);
  core::EngineOptions on;
  on.horizon = 6.0 * static_cast<Time>(tasks.hyperperiod());
  on.seed = 11;
  on.record_trace = true;
  core::EngineOptions off = on;
  off.cycle_detection = false;
  const std::vector<exec::ExecModelPtr> models = {
      std::make_shared<exec::ClampedGaussianModel>(),
      std::make_shared<exec::UniformModel>(),
      std::make_shared<exec::BimodalModel>()};
  for (const exec::ExecModelPtr& exec : models) {
    const auto fast = core::simulate(
        tasks, cpu, core::SchedulerPolicy::lpfps(), exec, on);
    const auto full = core::simulate(
        tasks, cpu, core::SchedulerPolicy::lpfps(), exec, off);
    EXPECT_EQ(fast.cycles_detected, 0) << exec->name();
    EXPECT_EQ(fast.fast_forwarded_time, 0.0) << exec->name();
    // At most two fingerprints per run: one to record, one to notice the
    // RNG moved.
    EXPECT_LE(fast.fingerprint_checks, 2) << exec->name();
    EXPECT_GT(fast.fingerprint_checks, 0) << exec->name();
    EXPECT_EQ(io::result_csv_row(fast), io::result_csv_row(full))
        << exec->name();
    EXPECT_EQ(canonical_segments(fast), canonical_segments(full))
        << exec->name();
  }
}

TEST(EngineCycleDetection, JitterAndGranularityAreIneligible) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  core::EngineOptions options;
  options.horizon = 4.0 * static_cast<Time>(w.tasks.hyperperiod());
  options.record_trace = true;

  core::EngineOptions jittered = options;
  jittered.release_jitter = std::vector<Time>(w.tasks.size(), 1.0);
  const auto jittered_result = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, jittered);
  EXPECT_EQ(jittered_result.cycles_detected, 0);
  EXPECT_EQ(jittered_result.fingerprint_checks, 0);

  core::EngineOptions granular = options;
  granular.timer_granularity = 0.5;
  const auto granular_result = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, granular);
  EXPECT_EQ(granular_result.cycles_detected, 0);
  EXPECT_EQ(granular_result.fingerprint_checks, 0);

  // Zero-valued jitter entries are still periodic and stay eligible.
  core::EngineOptions zero_jitter = options;
  zero_jitter.release_jitter = std::vector<Time>(w.tasks.size(), 0.0);
  const auto zero_result = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, zero_jitter);
  EXPECT_GT(zero_result.cycles_detected, 0);
}

TEST(EngineCycleDetection, ShortHorizonNeverFingerprints) {
  // Detection needs boundaries at H and 2H inside the horizon; anything
  // shorter must not even pay for one fingerprint.
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  core::EngineOptions options;
  options.horizon = 1.5 * static_cast<Time>(w.tasks.hyperperiod());
  const auto result = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  EXPECT_EQ(result.cycles_detected, 0);
  EXPECT_EQ(result.fingerprint_checks, 0);
}

TEST(EngineCycleDetection, OptionAndEnvironmentOptOuts) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  core::EngineOptions options;
  options.horizon = 4.0 * static_cast<Time>(w.tasks.hyperperiod());

  core::EngineOptions disabled = options;
  disabled.cycle_detection = false;
  const auto off = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, disabled);
  EXPECT_EQ(off.cycles_detected, 0);
  EXPECT_EQ(off.fingerprint_checks, 0);

  ASSERT_EQ(setenv("LPFPS_CYCLE", "0", 1), 0);
  const auto env_off = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  ASSERT_EQ(unsetenv("LPFPS_CYCLE"), 0);
  EXPECT_EQ(env_off.cycles_detected, 0);
  EXPECT_EQ(env_off.fingerprint_checks, 0);

  const auto on = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  EXPECT_GT(on.cycles_detected, 0);
  // All three agree on every reported quantity.
  EXPECT_EQ(io::result_csv_row(on), io::result_csv_row(off));
  EXPECT_EQ(io::result_csv_row(on), io::result_csv_row(env_off));
}

TEST(EngineCycleDetection, SummaryReportsSkippedCycles) {
  const auto cpu = power::ProcessorConfig::arm8_default();
  const workloads::Workload w = workloads::workload_by_name("CNC");
  core::EngineOptions options;
  options.horizon = 4.0 * static_cast<Time>(w.tasks.hyperperiod());
  const auto result = core::simulate(
      w.tasks, cpu, core::SchedulerPolicy::lpfps(), nullptr, options);
  ASSERT_GT(result.cycles_detected, 0);
  EXPECT_NE(result.summary().find("cycles skipped"), std::string::npos);
  EXPECT_GE(result.fingerprint_seconds, 0.0);
}

}  // namespace
}  // namespace lpfps
