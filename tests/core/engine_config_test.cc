// Engine behaviour across processor-configuration variations: wake-up
// latency, power fractions, frequency tables, transition rates.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

sched::TaskSet single_task(std::int64_t period, Work wcet) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", period, wcet));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

EngineOptions options(Time horizon, bool trace = false) {
  EngineOptions opts;
  opts.horizon = horizon;
  opts.record_trace = trace;
  return opts;
}

TEST(EngineConfig, ZeroWakeupDelaySleepsToTheRelease) {
  power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
  cpu.power.wakeup_cycles = 0.0;
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu,
               SchedulerPolicy::lpfps_powerdown_only(), nullptr,
               options(1000.0, true));
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_EQ(result.power_downs, 10);
  // No kWakeUp segments; power-down runs to the release instant.
  EXPECT_DOUBLE_EQ(result.mode(sim::ProcessorMode::kWakeUp).time, 0.0);
  EXPECT_NEAR(result.mode(sim::ProcessorMode::kPowerDown).time,
              10 * 80.0, 1e-6);
}

TEST(EngineConfig, FreePowerDownApproachesWorkOnlyEnergy) {
  power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
  cpu.power.power_down_fraction = 0.0;
  cpu.power.wakeup_cycles = 0.0;
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu,
               SchedulerPolicy::lpfps_powerdown_only(), nullptr,
               options(1000.0));
  // 20 us of full-power work per 100 us period, everything else free.
  EXPECT_NEAR(result.average_power, 0.2, 1e-9);
}

TEST(EngineConfig, ExpensiveNopErasesFpsIdleSavings) {
  power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
  cpu.power.nop_power_fraction = 1.0;  // Busy-wait as dear as real work.
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu, SchedulerPolicy::fps(),
               nullptr, options(1000.0));
  EXPECT_NEAR(result.average_power, 1.0, 1e-9);
}

TEST(EngineConfig, SingleFrequencyTableDisablesDvs) {
  power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
  cpu.frequencies = power::FrequencyTable::from_levels({100.0});
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu, SchedulerPolicy::lpfps(),
               nullptr, options(1000.0));
  EXPECT_DOUBLE_EQ(result.mean_running_ratio, 1.0);
  EXPECT_GT(result.power_downs, 0);  // Power-down still works.
}

TEST(EngineConfig, SlowerRampsShrinkButKeepSavings) {
  const sched::TaskSet tasks = single_task(1'000, 300.0);
  double previous = 0.0;
  for (const double rho : {0.0007, 0.007, 0.07}) {
    power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
    cpu.ramp_rate = rho;
    const SimulationResult result = simulate(
        tasks, cpu, SchedulerPolicy::lpfps(), nullptr, options(10'000.0));
    EXPECT_EQ(result.deadline_misses, 0) << rho;
    if (previous > 0.0) {
      // Faster transitions never cost more energy here.
      EXPECT_LE(result.total_energy, previous + 1e-6) << rho;
    }
    previous = result.total_energy;
  }
}

TEST(EngineConfig, ContinuousTableStretchesExactly) {
  power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
  cpu.frequencies = power::FrequencyTable::continuous(8.0, 100.0);
  const SimulationResult result =
      simulate(single_task(1'000, 300.0), cpu,
               SchedulerPolicy::lpfps_dvs_only(), nullptr,
               options(10'000.0, true));
  EXPECT_EQ(result.deadline_misses, 0);
  // The steady stretched segments run at almost exactly C/T = 0.3
  // (slightly above: the just-in-time ramp-back plan reserves capacity).
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode == sim::ProcessorMode::kRunning &&
        s.ratio_begin == s.ratio_end && s.ratio_begin < 1.0) {
      EXPECT_NEAR(s.ratio_begin, 0.3, 0.02);
    }
  }
}

TEST(EngineConfig, TimerGranularityWakesOnTheGrid) {
  // T=100, C=20, 10 us ticks: the 99.9 us timer rounds down to 90, so
  // each period is run 20 + sleep [20,90) + wake 0.1 + NOP [90.1,100):
  // 20 + 70*0.05 + 0.1 + 9.9*0.2 = 25.58.
  EngineOptions opts = options(1000.0);
  opts.timer_granularity = 10.0;
  const SimulationResult result =
      simulate(single_task(100, 20.0),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps_powerdown_only(), nullptr, opts);
  EXPECT_NEAR(result.average_power, 25.58 / 100.0, 1e-6);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(EngineConfig, CoarseTicksDisablePowerDownEntirely) {
  // Ticks as long as the period: the rounded timer lands at/before now.
  EngineOptions opts = options(1000.0);
  opts.timer_granularity = 100.0;
  const SimulationResult result =
      simulate(single_task(100, 20.0),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps_powerdown_only(), nullptr, opts);
  EXPECT_EQ(result.power_downs, 0);
  // Degenerates to the FPS busy-wait energy.
  EXPECT_NEAR(result.average_power, 0.36, 1e-9);
}

TEST(EngineConfig, ZeroGranularityMatchesDefaultExactly) {
  EngineOptions plain = options(1000.0);
  EngineOptions gran = options(1000.0);
  gran.timer_granularity = 0.0;
  const double a =
      simulate(single_task(100, 20.0),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps_powerdown_only(), nullptr, plain)
          .total_energy;
  const double b =
      simulate(single_task(100, 20.0),
               power::ProcessorConfig::arm8_default(),
               SchedulerPolicy::lpfps_powerdown_only(), nullptr, gran)
          .total_energy;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EngineConfig, ValidateRejectsBrokenConfigs) {
  power::ProcessorConfig cpu = power::ProcessorConfig::arm8_default();
  cpu.ramp_rate = 0.0;
  EXPECT_THROW(cpu.validate(), std::logic_error);
  cpu = power::ProcessorConfig::arm8_default();
  cpu.voltage = nullptr;
  EXPECT_THROW(cpu.validate(), std::logic_error);
}

}  // namespace
}  // namespace lpfps::core
