// Paper Example 2 (§3.2, Figure 5) end-to-end on the engine.
//
// At t=160 a request for tau2 arrives while every other task sleeps in
// the delay queue until t=200.  The scheduler computes
// (C2 - E2)/(t_a - t_c) = 20/40 = 0.5 and halves the processor speed.
// If that instance then executes only half its WCET, it completes early
// and the processor enters power-down with the timer set to tau1's next
// arrival at t=200.
//
// The paper idealizes both transition delays to zero for the example;
// the engine models them (rho = 0.07/us, 0.1 us wake-up), so instants
// below are checked against the exact delayed equivalents.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/exec_model.h"
#include "sched/kernel.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

using sim::ProcessorMode;
using sim::Segment;

/// Execution times: everything at WCET except tau2's third instance
/// (released at 160), which takes half its WCET as in Figure 2(b)'s
/// t=160..180 episode.
class Example2ExecModel final : public exec::ExecutionTimeModel {
 public:
  Work sample(const sched::Task& task, Rng&) const override {
    if (task.name == "tau2" && ++counts_ == 3) return 10.0;
    return task.wcet;
  }
  std::string name() const override { return "example2"; }

 private:
  mutable int counts_ = 0;
};

SimulationResult run_example2() {
  EngineOptions options;
  options.horizon = 200.0;
  options.record_trace = true;
  return simulate(lpfps::workloads::example_table1(),
                  power::ProcessorConfig::arm8_default(),
                  SchedulerPolicy::lpfps(),
                  std::make_shared<Example2ExecModel>(), options);
}

TEST(Example2, SpeedHalvedAtTime160) {
  const SimulationResult result = run_example2();
  ASSERT_TRUE(result.trace.has_value());
  // After the down-ramp (duration (1-0.5)/0.07 = 7.142857 us) tau2 runs
  // at exactly ratio 0.5.
  bool found = false;
  for (const Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kRunning && s.task == 1 &&
        s.begin > 160.0 && s.ratio_begin == s.ratio_end &&
        s.ratio_begin < 1.0) {
      EXPECT_NEAR(s.ratio_begin, 0.5, 1e-9);
      EXPECT_NEAR(s.begin, 160.0 + 0.5 / 0.07, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Example2, EarlyCompletionTriggersPowerDownUntil200) {
  const SimulationResult result = run_example2();
  ASSERT_TRUE(result.trace.has_value());
  // tau2's work: down-ramp [160, 167.143) contributes
  // (1+0.5)/2 * 7.142857 = 5.357 us; the remaining 4.643 us at ratio 0.5
  // takes 9.286 us -> completion at ~176.43.
  const Time expected_completion = 160.0 + (0.5 / 0.07) + 4.642857 / 0.5;
  bool completion_checked = false;
  for (const sim::JobRecord& job : result.trace->jobs()) {
    if (job.task == 1 && job.instance == 2) {
      EXPECT_NEAR(job.completion, expected_completion, 1e-3);
      completion_checked = true;
    }
  }
  EXPECT_TRUE(completion_checked);

  // After the L1-L4 ramp back to full speed (7.14 us) the processor
  // powers down with the timer at 200 - 0.1 = 199.9 (L14), then wakes.
  bool saw_powerdown = false;
  bool saw_wakeup = false;
  for (const Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kPowerDown && s.begin > 160.0) {
      saw_powerdown = true;
      EXPECT_NEAR(s.begin, expected_completion + 0.5 / 0.07, 1e-3);
      EXPECT_NEAR(s.end, 199.9, 1e-9);
    }
    if (s.mode == ProcessorMode::kWakeUp && s.begin > 160.0) {
      saw_wakeup = true;
      EXPECT_NEAR(s.begin, 199.9, 1e-9);
      EXPECT_NEAR(s.end, 200.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_powerdown);
  EXPECT_TRUE(saw_wakeup);
  EXPECT_GE(result.power_downs, 1);
}

TEST(Example2, ScheduleBefore160MatchesFigure2a) {
  // Up to t=160 every instance runs at WCET, so the schedule matches the
  // conventional FPS schedule (the first slack window LPFPS can exploit
  // with DVS only opens at t=160; the idle gap at [80,100) in Figure
  // 2(a) does not exist — tau2 occupies it).
  const SimulationResult result = run_example2();
  ASSERT_TRUE(result.trace.has_value());
  sched::FixedPriorityKernel kernel(lpfps::workloads::example_table1());
  const sched::KernelResult reference = kernel.run(160.0);

  std::vector<Segment> engine_running;
  for (const Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kRunning && s.end <= 160.0 + 1e-9) {
      engine_running.push_back(s);
    }
  }
  std::vector<Segment> kernel_running;
  for (const Segment& s : reference.trace.segments()) {
    if (s.mode == ProcessorMode::kRunning) kernel_running.push_back(s);
  }
  ASSERT_EQ(engine_running.size(), kernel_running.size());
  for (std::size_t i = 0; i < engine_running.size(); ++i) {
    EXPECT_NEAR(engine_running[i].begin, kernel_running[i].begin, 1e-9);
    EXPECT_NEAR(engine_running[i].end, kernel_running[i].end, 1e-9);
    EXPECT_EQ(engine_running[i].task, kernel_running[i].task);
  }
}

TEST(Example2, NoDeadlineMissed) {
  const SimulationResult result = run_example2();
  EXPECT_EQ(result.deadline_misses, 0);
}

}  // namespace
}  // namespace lpfps::core
