#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::core {
namespace {

using sim::ProcessorMode;

power::ProcessorConfig cpu() { return power::ProcessorConfig::arm8_default(); }

sched::TaskSet single_task(std::int64_t period, Work wcet) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", period, wcet));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

EngineOptions options(Time horizon, bool trace = false) {
  EngineOptions opts;
  opts.horizon = horizon;
  opts.record_trace = trace;
  return opts;
}

TEST(EnginePowerDown, ExactShutdownEnergyIsAnalytic) {
  // Power-down-only policy, one task C=20 T=100 at WCET: per period the
  // processor runs [0,20] at full power, powers down until the timer at
  // 99.9 (= release - 0.1 us wake-up), and wakes at full power for
  // 0.1 us.  Energy/period = 20 + 79.9*0.05 + 0.1 = 24.095.
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu(),
               SchedulerPolicy::lpfps_powerdown_only(), nullptr,
               options(1000.0));
  EXPECT_NEAR(result.average_power, 24.095 / 100.0, 1e-6);
  EXPECT_EQ(result.power_downs, 10);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(EnginePowerDown, TimerSetEarlyByWakeupDelay) {
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu(),
               SchedulerPolicy::lpfps_powerdown_only(), nullptr,
               options(100.0, true));
  ASSERT_TRUE(result.trace.has_value());
  bool saw_wakeup = false;
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kWakeUp) {
      saw_wakeup = true;
      EXPECT_NEAR(s.begin, 99.9, 1e-9);  // L14: release - wakeup delay.
      EXPECT_NEAR(s.end, 100.0, 1e-9);
    }
    if (s.mode == ProcessorMode::kPowerDown) {
      EXPECT_NEAR(s.begin, 20.0, 1e-9);
      EXPECT_NEAR(s.end, 99.9, 1e-9);
    }
  }
  EXPECT_TRUE(saw_wakeup);
}

TEST(EnginePowerDown, BeatsNopBusyWaiting) {
  const sched::TaskSet tasks = single_task(100, 20.0);
  const SimulationResult fps = simulate(tasks, cpu(), SchedulerPolicy::fps(),
                                        nullptr, options(1000.0));
  const SimulationResult pd =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps_powerdown_only(),
               nullptr, options(1000.0));
  // FPS: 20 + 80*0.2 = 36 per period.
  EXPECT_NEAR(fps.average_power, 0.36, 1e-9);
  EXPECT_LT(pd.average_power, fps.average_power);
}

TEST(EnginePowerDown, NoPowerDownWhenGapTooShort) {
  // C = T - 0.05: the remaining idle gap (0.05 us) is shorter than the
  // 0.1 us wake-up delay, so the timer would already have expired; the
  // scheduler must busy-wait instead.
  sched::TaskSet tasks;
  tasks.add(sched::make_task("tight", 100, 100, 99.95, 99.95));
  sched::assign_rate_monotonic(tasks);
  const SimulationResult result =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps_powerdown_only(),
               nullptr, options(1000.0));
  EXPECT_EQ(result.power_downs, 0);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(EnginePowerDown, WakeupAlwaysCompletesBeforeRelease) {
  const SimulationResult result =
      simulate(lpfps::workloads::example_table1(), cpu(),
               SchedulerPolicy::lpfps(), nullptr, options(4000.0, true));
  ASSERT_TRUE(result.trace.has_value());
  const auto& segments = result.trace->segments();
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i].mode == ProcessorMode::kWakeUp) {
      // The segment after a wake-up must not be another wait: a release
      // is due exactly at its end, so the processor goes busy.
      EXPECT_EQ(segments[i + 1].mode, ProcessorMode::kRunning);
    }
  }
}

TEST(EnginePowerDown, TimeoutShutdownBurnsNopBeforeSleeping) {
  // Conventional timeout policy with a 30 us timeout on the C=20/T=100
  // task: idle [20, 50) is busy-waited, then power-down [50, 99.9).
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu(),
               SchedulerPolicy::fps_timeout_shutdown(30.0), nullptr,
               options(100.0, true));
  ASSERT_TRUE(result.trace.has_value());
  Time nop_time = 0.0;
  Time pd_time = 0.0;
  for (const sim::Segment& s : result.trace->segments()) {
    if (s.mode == ProcessorMode::kIdleBusyWait) nop_time += s.duration();
    if (s.mode == ProcessorMode::kPowerDown) pd_time += s.duration();
  }
  EXPECT_NEAR(nop_time, 30.0, 1e-6);
  EXPECT_NEAR(pd_time, 49.9, 1e-6);
}

TEST(EnginePowerDown, TimeoutLongerThanGapNeverSleeps) {
  const SimulationResult result =
      simulate(single_task(100, 20.0), cpu(),
               SchedulerPolicy::fps_timeout_shutdown(200.0), nullptr,
               options(1000.0));
  EXPECT_EQ(result.power_downs, 0);
}

TEST(EnginePowerDown, TimeoutZeroMatchesExactPowerDown) {
  const sched::TaskSet tasks = single_task(100, 20.0);
  const SimulationResult exact =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps_powerdown_only(),
               nullptr, options(1000.0));
  const SimulationResult timeout0 =
      simulate(tasks, cpu(), SchedulerPolicy::fps_timeout_shutdown(0.0),
               nullptr, options(1000.0));
  EXPECT_NEAR(exact.total_energy, timeout0.total_energy, 1e-6);
}

TEST(EnginePowerDown, ConventionalTimeoutWastesEnergyVersusExact) {
  // The related-work comparison of §2.1: intermittent short idle gaps
  // make timeout shutdown miss most of the saving.
  const sched::TaskSet tasks = single_task(100, 20.0);
  const SimulationResult exact =
      simulate(tasks, cpu(), SchedulerPolicy::lpfps_powerdown_only(),
               nullptr, options(1000.0));
  const SimulationResult timeout =
      simulate(tasks, cpu(), SchedulerPolicy::fps_timeout_shutdown(60.0),
               nullptr, options(1000.0));
  EXPECT_LT(exact.total_energy, timeout.total_energy);
}

}  // namespace
}  // namespace lpfps::core
