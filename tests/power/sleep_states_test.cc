// Sleep-state hierarchy (paper §2.1's PowerPC-style mode ladder).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "power/processor.h"
#include "sched/priority.h"

namespace lpfps::power {
namespace {

TEST(SleepLadder, DefaultSynthesizesClassicState) {
  const ProcessorConfig config = ProcessorConfig::arm8_default();
  const auto ladder = config.sleep_ladder();
  ASSERT_EQ(ladder.size(), 1u);
  EXPECT_DOUBLE_EQ(ladder[0].power_fraction, 0.05);
  EXPECT_DOUBLE_EQ(ladder[0].wakeup_cycles, 10.0);
}

TEST(SleepLadder, HierarchyPresetHasFourModes) {
  const ProcessorConfig config = ProcessorConfig::with_sleep_hierarchy();
  EXPECT_EQ(config.sleep_ladder().size(), 4u);
  EXPECT_NO_THROW(config.validate());
}

TEST(SleepSelection, NoStateFitsTinyGap) {
  const ProcessorConfig config = ProcessorConfig::with_sleep_hierarchy();
  // Shallowest state (doze) needs 0.1 us.
  EXPECT_FALSE(config.deepest_state_for_gap(0.05).has_value());
}

TEST(SleepSelection, EnergyOptimalThresholds) {
  const ProcessorConfig config = ProcessorConfig::with_sleep_hierarchy();
  // gap 0.15 us: only doze can wake in time.
  EXPECT_STREQ(config.deepest_state_for_gap(0.15)->name, "doze");
  // gap 80 us: nap (0.2 us wake) beats sleep, whose 10 us full-power
  // wake-up is not yet amortized: 79.8*0.1+0.2 = 8.18 < 70*0.05+10.
  EXPECT_STREQ(config.deepest_state_for_gap(80.0)->name, "nap");
  // gap 1000 us: sleep's 5% now wins (59.5 < 100.2 < 118).
  EXPECT_STREQ(config.deepest_state_for_gap(1000.0)->name, "sleep");
  // gap 10000 us: deep sleep amortizes its 100 us wake (298 < 509).
  EXPECT_STREQ(config.deepest_state_for_gap(10000.0)->name, "deep-sleep");
}

TEST(SleepSelection, ClassicLadderMatchesLegacyBehaviour) {
  const ProcessorConfig config = ProcessorConfig::arm8_default();
  EXPECT_FALSE(config.deepest_state_for_gap(0.05).has_value());
  const auto state = config.deepest_state_for_gap(50.0);
  ASSERT_TRUE(state.has_value());
  EXPECT_DOUBLE_EQ(state->power_fraction, 0.05);
}

TEST(SleepSelection, ValidatesStateRanges) {
  ProcessorConfig config = ProcessorConfig::with_sleep_hierarchy();
  config.sleep_states[0].power_fraction = 1.5;
  EXPECT_THROW(config.validate(), std::logic_error);
}

// ---- engine integration -------------------------------------------------

sched::TaskSet single_task(std::int64_t period, Work wcet) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("solo", period, wcet));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(SleepHierarchyEngine, PicksNapForMediumGaps) {
  // T=100, C=20: the 80 us gap selects nap (10%, 0.2 us wake).
  // Energy/period = 20 + 79.8*0.1 + 0.2*1.0 = 28.18.
  core::EngineOptions options;
  options.horizon = 1000.0;
  const auto result = core::simulate(
      single_task(100, 20.0), power::ProcessorConfig::with_sleep_hierarchy(),
      core::SchedulerPolicy::lpfps_powerdown_only(), nullptr, options);
  EXPECT_NEAR(result.average_power, 28.18 / 100.0, 1e-6);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(SleepHierarchyEngine, DeepSleepOnLongGaps) {
  // T=100000, C=1000: 99 ms gap -> deep sleep at 2%.
  // Energy/period = 1000 + (99000-100)*0.02 + 100*1.0 = 3078.
  core::EngineOptions options;
  options.horizon = 1e6;
  const auto result = core::simulate(
      single_task(100'000, 1'000.0),
      power::ProcessorConfig::with_sleep_hierarchy(),
      core::SchedulerPolicy::lpfps_powerdown_only(), nullptr, options);
  EXPECT_NEAR(result.average_power, 3078.0 / 100'000.0, 1e-6);
}

TEST(SleepHierarchyEngine, HierarchyNeverWorseThanSingleState) {
  for (const std::int64_t period : {100, 1'000, 10'000, 100'000}) {
    const sched::TaskSet tasks =
        single_task(period, static_cast<double>(period) / 5.0);
    core::EngineOptions options;
    options.horizon = static_cast<Time>(period) * 10;
    const double classic =
        core::simulate(tasks, power::ProcessorConfig::arm8_default(),
                       core::SchedulerPolicy::lpfps_powerdown_only(),
                       nullptr, options)
            .total_energy;
    const double ladder =
        core::simulate(tasks, power::ProcessorConfig::with_sleep_hierarchy(),
                       core::SchedulerPolicy::lpfps_powerdown_only(),
                       nullptr, options)
            .total_energy;
    // The ladder contains strictly better options for long gaps and at
    // worst a shallower-but-adequate one for short gaps; the classic
    // single state (5% / 10 cycles) is in neither config's way of
    // meeting deadlines.
    EXPECT_EQ(core::simulate(
                  tasks, power::ProcessorConfig::with_sleep_hierarchy(),
                  core::SchedulerPolicy::lpfps_powerdown_only(), nullptr,
                  options)
                  .deadline_misses,
              0)
        << period;
    // Not strictly comparable at every period (nap 10% vs classic 5%),
    // so only demand sanity: within 2x of each other.
    EXPECT_LT(ladder, classic * 2.0) << period;
    EXPECT_LT(classic, ladder * 2.0) << period;
  }
}

}  // namespace
}  // namespace lpfps::power
