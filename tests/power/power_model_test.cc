#include "power/power_model.h"

#include <gtest/gtest.h>

#include "power/processor.h"

namespace lpfps::power {
namespace {

PowerModel paper_model() {
  return ProcessorConfig::arm8_default().make_power_model();
}

TEST(PowerModel, FullSpeedRunPowerIsUnity) {
  EXPECT_NEAR(paper_model().run_power(1.0), 1.0, 1e-9);
}

TEST(PowerModel, NopIdleIsTwentyPercentOfRun) {
  const PowerModel model = paper_model();
  EXPECT_NEAR(model.idle_nop_power(1.0), 0.2, 1e-9);
  EXPECT_NEAR(model.idle_nop_power(0.5), 0.2 * model.run_power(0.5), 1e-12);
}

TEST(PowerModel, PowerDownIsFivePercent) {
  EXPECT_NEAR(paper_model().power_down_power(), 0.05, 1e-12);
}

TEST(PowerModel, WakeupDelayIsTenCyclesAt100MHz) {
  // 10 cycles / 100 MHz = 0.1 us.
  EXPECT_NEAR(paper_model().wakeup_delay(100.0), 0.1, 1e-12);
}

TEST(PowerModel, RampEnergyBetweenEndpointBounds) {
  const PowerModel model = paper_model();
  const double rho = 0.07;
  const double duration = (1.0 - 0.5) / rho;
  const Energy energy = model.ramp_energy(0.5, 1.0, rho, true);
  EXPECT_GT(energy, duration * model.run_power(0.5));
  EXPECT_LT(energy, duration * model.run_power(1.0));
}

TEST(PowerModel, RampEnergySymmetricInDirection) {
  const PowerModel model = paper_model();
  EXPECT_NEAR(model.ramp_energy(0.3, 0.9, 0.07, true),
              model.ramp_energy(0.9, 0.3, 0.07, true), 1e-9);
}

TEST(PowerModel, IdleRampIsNopScaled) {
  const PowerModel model = paper_model();
  EXPECT_NEAR(model.ramp_energy(0.4, 1.0, 0.07, false),
              0.2 * model.ramp_energy(0.4, 1.0, 0.07, true), 1e-9);
}

TEST(PowerModel, ZeroLengthRampCostsNothing) {
  EXPECT_DOUBLE_EQ(paper_model().ramp_energy(0.7, 0.7, 0.07, true), 0.0);
}

TEST(PowerModel, SlowerIsAlwaysCheaperPerUnitTime) {
  const PowerModel model = paper_model();
  double prev = 0.0;
  for (double r = 0.08; r <= 1.0; r += 0.01) {
    const double p = model.run_power(r);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, HalfSpeedBeatsFullSpeedPerUnitWork) {
  // Energy per unit of work at ratio r is run_power(r) / r; DVS wins
  // only because voltage drops too.  Verify the energy-per-work gain.
  const PowerModel model = paper_model();
  const double full = model.run_power(1.0) / 1.0;
  const double half = model.run_power(0.5) / 0.5;
  EXPECT_LT(half, full);
}

TEST(ProcessorConfig, DefaultsMatchPaperSection4) {
  const ProcessorConfig config = ProcessorConfig::arm8_default();
  EXPECT_DOUBLE_EQ(config.frequencies.f_max(), 100.0);
  EXPECT_DOUBLE_EQ(config.frequencies.f_min(), 8.0);
  EXPECT_DOUBLE_EQ(config.ramp_rate, 0.07);
  EXPECT_DOUBLE_EQ(config.power.nop_power_fraction, 0.2);
  EXPECT_DOUBLE_EQ(config.power.power_down_fraction, 0.05);
  EXPECT_DOUBLE_EQ(config.power.wakeup_cycles, 10.0);
  EXPECT_NEAR(config.wakeup_delay(), 0.1, 1e-12);
  EXPECT_NO_THROW(config.validate());
}

TEST(ProcessorConfig, PaperTransitionExample) {
  // "the clock frequency can be raised from 30 MHz to 100 MHz in 10 us"
  // => rho = 0.07 / us.
  const ProcessorConfig config = ProcessorConfig::arm8_default();
  const double duration = (1.0 - 0.3) / config.ramp_rate;
  EXPECT_NEAR(duration, 10.0, 1e-9);
}

}  // namespace
}  // namespace lpfps::power
