// Randomized properties of the ramp math: work/time inversion, plan
// capacity consistency, and monotonicity — the numerical bedrock under
// every engine completion prediction.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/speed_ratio.h"
#include "power/speed_profile.h"

namespace lpfps::power {
namespace {

class SpeedProfileProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SpeedProfileProperty, TimeToCompleteInvertsWorkDone) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double r0 = rng.uniform(0.05, 1.0);
    const double rho = rng.uniform(0.001, 1.0);
    const double slope = rng.uniform(0.0, 1.0) < 0.5 ? rho : -rho;
    // Keep the speed positive over the window.
    double window = rng.uniform(0.1, 50.0);
    if (slope < 0.0) window = std::min(window, (r0 - 0.01) / rho);
    if (window <= 0.0) continue;
    const double elapsed = rng.uniform(0.0, window);
    const Work w = work_done(r0, slope, elapsed);
    const auto tau = time_to_complete(r0, slope, window, w);
    ASSERT_TRUE(tau.has_value())
        << "r0=" << r0 << " slope=" << slope << " elapsed=" << elapsed;
    EXPECT_NEAR(*tau, elapsed, 1e-6 + elapsed * 1e-9);
  }
}

TEST_P(SpeedProfileProperty, WorkBeyondWindowIsNullopt) {
  Rng rng(GetParam() + 99);
  for (int i = 0; i < 2000; ++i) {
    const double r0 = rng.uniform(0.05, 1.0);
    const double window = rng.uniform(0.1, 50.0);
    // Constant speed: anything above r0*window (+eps) cannot fit.
    const Work beyond = r0 * window * rng.uniform(1.01, 3.0) + 1e-3;
    EXPECT_FALSE(time_to_complete(r0, 0.0, window, beyond).has_value());
  }
}

TEST_P(SpeedProfileProperty, PlanCapacityMonotoneInRatio) {
  Rng rng(GetParam() + 7);
  for (int i = 0; i < 1000; ++i) {
    const double rho = rng.uniform(0.01, 0.5);
    const double window = rng.uniform(1.0 / rho, 100.0 + 1.0 / rho);
    const double r1 = rng.uniform(0.05, 0.95);
    const double r2 = rng.uniform(r1, 1.0);
    // Both plans must fit their ramp in the window (window >= 1/rho
    // guarantees it for any ratio).
    EXPECT_LE(plan_capacity(r1, window, rho),
              plan_capacity(r2, window, rho) + 1e-9);
  }
}

TEST_P(SpeedProfileProperty, OptimalRatioSolvesItsOwnCapacityEquation) {
  Rng rng(GetParam() + 13);
  for (int i = 0; i < 1000; ++i) {
    const double rho = rng.uniform(0.01, 0.5);
    const double window = rng.uniform(5.0, 500.0);
    const double target = rng.uniform(0.2, 1.0);
    const double remaining =
        rng.uniform(0.01, 0.99) * target * window;
    const double r = lpfps::core::optimal_ratio_to_target(
        remaining, window, rho, target);
    // r == 0 is legitimate: the just-in-time ramp alone over-delivers
    // the remaining work (the caller's frequency floor takes over).
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, target + 1e-12);
    const double floor = std::max(0.0, target - rho * window);
    EXPECT_GE(r, floor - 1e-12);
    if (r > floor + 1e-9 && r < target - 1e-9) {
      // Interior solution: capacity is exact.
      const double capacity =
          window * r + (target - r) * (target - r) / (2.0 * rho);
      EXPECT_NEAR(capacity, remaining, 1e-6 * window);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeedProfileProperty,
                         ::testing::Values(11u, 222u, 3333u));

}  // namespace
}  // namespace lpfps::power
