#include "power/voltage.h"

#include <gtest/gtest.h>

namespace lpfps::power {
namespace {

TEST(RingOscillator, FullRatioIsVmax) {
  const RingOscillatorVoltageModel model(3.3, 0.8);
  EXPECT_NEAR(model.voltage_for_ratio(1.0), 3.3, 1e-9);
}

TEST(RingOscillator, InverseRoundTrips) {
  const RingOscillatorVoltageModel model(3.3, 0.8);
  for (double r = 0.05; r <= 1.0; r += 0.05) {
    const Volts v = model.voltage_for_ratio(r);
    EXPECT_NEAR(model.ratio_for_voltage(v), r, 1e-9) << "ratio " << r;
  }
}

TEST(RingOscillator, VoltageMonotonicInRatio) {
  const RingOscillatorVoltageModel model(3.3, 0.8);
  Volts prev = 0.0;
  for (double r = 0.05; r <= 1.0; r += 0.01) {
    const Volts v = model.voltage_for_ratio(r);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(RingOscillator, VoltageStaysAboveThreshold) {
  const RingOscillatorVoltageModel model(3.3, 0.8);
  for (double r = 0.01; r <= 1.0; r += 0.01) {
    EXPECT_GT(model.voltage_for_ratio(r), 0.8);
  }
}

TEST(RingOscillator, PaperOperatingPoint) {
  // At the 8 MHz floor (ratio 0.08) the required voltage is far below
  // 3.3 V — the quadratic saving LPFPS banks on.
  const RingOscillatorVoltageModel model(3.3, 0.8);
  const Volts v = model.voltage_for_ratio(0.08);
  EXPECT_LT(v, 1.4);
  EXPECT_GT(v, 0.8);
}

TEST(PowerFactor, CubicLikeScalingAtLowSpeed) {
  // P/Pfull = r * (V/Vmax)^2 must shrink much faster than r itself.
  const RingOscillatorVoltageModel model(3.3, 0.8);
  EXPECT_NEAR(model.power_factor(1.0), 1.0, 1e-9);
  EXPECT_LT(model.power_factor(0.5), 0.30);   // << 0.5.
  EXPECT_LT(model.power_factor(0.08), 0.015);  // << 0.08.
}

TEST(PowerFactor, MonotonicInRatio) {
  const RingOscillatorVoltageModel model(3.3, 0.8);
  double prev = 0.0;
  for (double r = 0.05; r <= 1.0; r += 0.01) {
    const double p = model.power_factor(r);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Proportional, LinearWithFloor) {
  const ProportionalVoltageModel model(3.3, 0.8);
  EXPECT_NEAR(model.voltage_for_ratio(1.0), 3.3, 1e-12);
  EXPECT_NEAR(model.voltage_for_ratio(0.5), 1.65, 1e-12);
  EXPECT_NEAR(model.voltage_for_ratio(0.1), 0.8, 1e-12);  // Floor.
}

TEST(Proportional, PowerFactorIsCubicAboveFloor) {
  const ProportionalVoltageModel model(3.3, 0.0);
  EXPECT_NEAR(model.power_factor(0.5), 0.125, 1e-12);  // r^3.
}

TEST(VoltageModels, RingOscillatorNeedsHigherVoltageThanProportional) {
  // The ring-oscillator law is concave: sustaining ratio r needs more
  // voltage than the idealized proportional model, hence less saving —
  // the realistic pessimism the paper's reference [20] models.
  const RingOscillatorVoltageModel ring(3.3, 0.8);
  const ProportionalVoltageModel prop(3.3, 0.0);
  for (double r = 0.1; r < 1.0; r += 0.1) {
    EXPECT_GT(ring.voltage_for_ratio(r), prop.voltage_for_ratio(r))
        << "ratio " << r;
  }
}

}  // namespace
}  // namespace lpfps::power
