#include "power/speed_profile.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::power {
namespace {

TEST(RampDuration, Basic) {
  EXPECT_NEAR(ramp_duration(0.3, 1.0, 0.07), 10.0, 1e-12);
  EXPECT_NEAR(ramp_duration(1.0, 0.3, 0.07), 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(ramp_duration(0.5, 0.5, 0.07), 0.0);
}

TEST(RampWork, TrapezoidArea) {
  // Ramp 0.5 -> 1.0 at rho 0.07: duration 50/7, mean speed 0.75.
  EXPECT_NEAR(ramp_work(0.5, 1.0, 0.07), (0.5 / 0.07) * 0.75, 1e-12);
}

TEST(WorkDone, ConstantSpeed) {
  EXPECT_NEAR(work_done(0.5, 0.0, 10.0), 5.0, 1e-12);
}

TEST(WorkDone, LinearRampMatchesTrapezoid) {
  // From 0.4 rising at 0.07 for 2 us: mean speed 0.47.
  EXPECT_NEAR(work_done(0.4, 0.07, 2.0), 0.47 * 2.0, 1e-12);
}

TEST(WorkDone, DeceleratingRamp) {
  // From 1.0 falling at 0.07 for 5 us: mean speed 0.825.
  EXPECT_NEAR(work_done(1.0, -0.07, 5.0), 0.825 * 5.0, 1e-12);
}

TEST(TimeToComplete, ConstantSpeedExact) {
  const auto tau = time_to_complete(0.5, 0.0, 100.0, 20.0);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, 40.0, 1e-12);
}

TEST(TimeToComplete, ConstantSpeedBeyondWindow) {
  EXPECT_FALSE(time_to_complete(0.5, 0.0, 10.0, 20.0).has_value());
}

TEST(TimeToComplete, ZeroWorkIsImmediate) {
  const auto tau = time_to_complete(0.5, 0.0, 10.0, 0.0);
  ASSERT_TRUE(tau.has_value());
  EXPECT_DOUBLE_EQ(*tau, 0.0);
}

TEST(TimeToComplete, AcceleratingRampInvertsWorkDone) {
  const double r0 = 0.3;
  const double slope = 0.07;
  const double elapsed = 7.5;
  const Work w = work_done(r0, slope, elapsed);
  const auto tau = time_to_complete(r0, slope, 100.0, w);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, elapsed, 1e-9);
}

TEST(TimeToComplete, DeceleratingRampInvertsWorkDone) {
  const double r0 = 1.0;
  const double slope = -0.07;
  const double elapsed = 4.0;
  const Work w = work_done(r0, slope, elapsed);
  const auto tau = time_to_complete(r0, slope, 10.0, w);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, elapsed, 1e-9);
}

TEST(TimeToComplete, DeceleratingNeverReachesLargeWork) {
  // From 0.5 decelerating at 0.07 the speed hits zero after ~7.1 us
  // having done ~1.79 us of work; 3.0 is unreachable no matter the
  // window.
  EXPECT_FALSE(time_to_complete(0.5, -0.07, 1000.0, 3.0).has_value());
}

TEST(TimeToComplete, ExactlyAtWindowBoundary) {
  const auto tau = time_to_complete(0.5, 0.0, 40.0, 20.0);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, 40.0, 1e-9);
}

TEST(PlanCapacity, MatchesPaperEquation1) {
  // Capacity = r*w + (1-r)^2 / (2 rho).  Example 2 of the paper with
  // rho -> infinity reduces to r*w; with finite rho the ramp adds work.
  const double rho = 0.07;
  const double w = 40.0;
  const double r = 0.445;
  EXPECT_NEAR(plan_capacity(r, w, rho),
              r * w + (1 - r) * (1 - r) / (2 * rho), 1e-12);
}

TEST(PlanCapacity, FullSpeedPlanIsWindow) {
  EXPECT_NEAR(plan_capacity(1.0, 25.0, 0.07), 25.0, 1e-12);
}

TEST(PlanCapacity, RejectsWindowShorterThanRamp) {
  // Ramp from 0.3 needs 10 us; a 5 us window cannot host the plan.
  EXPECT_THROW(plan_capacity(0.3, 5.0, 0.07), std::logic_error);
}

}  // namespace
}  // namespace lpfps::power
