#include "power/frequency.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::power {
namespace {

TEST(FrequencyTable, Arm8HasPaperLevels) {
  const FrequencyTable table = FrequencyTable::arm8_like();
  EXPECT_DOUBLE_EQ(table.f_min(), 8.0);
  EXPECT_DOUBLE_EQ(table.f_max(), 100.0);
  EXPECT_EQ(table.levels().size(), 93u);  // 8..100 inclusive, step 1.
  EXPECT_FALSE(table.is_continuous());
}

TEST(FrequencyTable, QuantizeUpSelectsNextLevel) {
  const FrequencyTable table = FrequencyTable::arm8_like();
  // Desired 0.5 -> exactly 50 MHz.
  EXPECT_DOUBLE_EQ(table.quantize_up(0.5), 0.50);
  // Desired 0.505 -> 51 MHz.
  EXPECT_DOUBLE_EQ(table.quantize_up(0.505), 0.51);
  // Desired 0.5001 -> 51 MHz (never round down).
  EXPECT_DOUBLE_EQ(table.quantize_up(0.5001), 0.51);
}

TEST(FrequencyTable, QuantizeClampsToFloorAndCeiling) {
  const FrequencyTable table = FrequencyTable::arm8_like();
  EXPECT_DOUBLE_EQ(table.quantize_up(0.01), 0.08);  // 8 MHz floor.
  EXPECT_DOUBLE_EQ(table.quantize_up(1.5), 1.0);
  EXPECT_DOUBLE_EQ(table.quantize_up(0.999), 1.0);
}

TEST(FrequencyTable, QuantizedRatioNeverBelowDesired) {
  const FrequencyTable table = FrequencyTable::arm8_like();
  for (double desired = 0.08; desired <= 1.0; desired += 0.001) {
    EXPECT_GE(table.quantize_up(desired), desired - 1e-9) << desired;
  }
}

TEST(FrequencyTable, ExplicitLevels) {
  const FrequencyTable table =
      FrequencyTable::from_levels({100.0, 25.0, 75.0, 50.0});
  EXPECT_DOUBLE_EQ(table.f_min(), 25.0);
  EXPECT_DOUBLE_EQ(table.f_max(), 100.0);
  EXPECT_DOUBLE_EQ(table.quantize_up(0.3), 0.5);
  EXPECT_DOUBLE_EQ(table.quantize_up(0.75), 0.75);
  EXPECT_DOUBLE_EQ(table.quantize_up(0.76), 1.0);
}

TEST(FrequencyTable, ContinuousPassesRatiosThrough) {
  const FrequencyTable table = FrequencyTable::continuous(8.0, 100.0);
  EXPECT_TRUE(table.is_continuous());
  EXPECT_DOUBLE_EQ(table.quantize_up(0.4321), 0.4321);
  EXPECT_DOUBLE_EQ(table.quantize_up(0.01), 0.08);
  EXPECT_DOUBLE_EQ(table.quantize_up(2.0), 1.0);
}

TEST(FrequencyTable, SteppedIncludesMaxEvenOffGrid) {
  const FrequencyTable table = FrequencyTable::stepped(10.0, 95.0, 20.0);
  // Levels 10,30,50,70,90 plus the 95 ceiling.
  EXPECT_DOUBLE_EQ(table.f_max(), 95.0);
  EXPECT_DOUBLE_EQ(table.quantize_up(0.99), 1.0);
}

TEST(FrequencyTable, RejectsBadInput) {
  EXPECT_THROW(FrequencyTable::stepped(0.0, 100.0, 1.0), std::logic_error);
  EXPECT_THROW(FrequencyTable::from_levels({}), std::logic_error);
  EXPECT_THROW(FrequencyTable::continuous(50.0, 40.0), std::logic_error);
}

}  // namespace
}  // namespace lpfps::power
