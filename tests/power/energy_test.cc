#include "power/energy.h"

#include <gtest/gtest.h>

#include "power/processor.h"

namespace lpfps::power {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest()
      : model_(ProcessorConfig::arm8_default().make_power_model()),
        acc_(&model_) {}

  PowerModel model_;
  EnergyAccumulator acc_;
};

TEST_F(EnergyTest, StartsEmpty) {
  EXPECT_DOUBLE_EQ(acc_.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(acc_.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(acc_.average_power(), 0.0);
}

TEST_F(EnergyTest, FullSpeedRun) {
  acc_.add_run(10.0, 1.0);
  EXPECT_NEAR(acc_.total_energy(), 10.0, 1e-9);
  EXPECT_NEAR(acc_.average_power(), 1.0, 1e-9);
}

TEST_F(EnergyTest, IdleNopIsTwentyPercent) {
  acc_.add_idle_nop(10.0, 1.0);
  EXPECT_NEAR(acc_.total_energy(), 2.0, 1e-9);
}

TEST_F(EnergyTest, PowerDownIsFivePercent) {
  acc_.add_power_down(100.0);
  EXPECT_NEAR(acc_.total_energy(), 5.0, 1e-9);
}

TEST_F(EnergyTest, WakeupIsFullPower) {
  acc_.add_wakeup(0.1);
  EXPECT_NEAR(acc_.total_energy(), 0.1, 1e-9);
}

TEST_F(EnergyTest, PerModeBreakdown) {
  acc_.add_run(10.0, 1.0);
  acc_.add_idle_nop(5.0, 1.0);
  acc_.add_power_down(20.0);
  EXPECT_NEAR(acc_.totals(sim::ProcessorMode::kRunning).time, 10.0, 1e-12);
  EXPECT_NEAR(acc_.totals(sim::ProcessorMode::kIdleBusyWait).energy, 1.0,
              1e-12);
  EXPECT_NEAR(acc_.totals(sim::ProcessorMode::kPowerDown).time, 20.0,
              1e-12);
  EXPECT_NEAR(acc_.total_time(), 35.0, 1e-12);
}

TEST_F(EnergyTest, RunRampMatchesModelIntegral) {
  const double rho = 0.07;
  const double duration = (1.0 - 0.5) / rho;
  acc_.add_run_ramp(duration, 0.5, 1.0, rho);
  EXPECT_NEAR(acc_.total_energy(), model_.ramp_energy(0.5, 1.0, rho, true),
              1e-12);
  EXPECT_NEAR(acc_.total_time(), duration, 1e-12);
}

TEST_F(EnergyTest, RampDurationMismatchRejected) {
  EXPECT_THROW(acc_.add_run_ramp(3.0, 0.5, 1.0, 0.07), std::logic_error);
}

TEST_F(EnergyTest, SlowRunningIsCheaperThanFullIdleComparison) {
  // The paper's §3.2 argument: running slowed beats running at full then
  // powering down, for the same work, when the window is fixed.
  const double window = 40.0;
  const double work = 20.0;  // Example 2: half-utilized window.
  // Plan A: run at 0.5 the whole window.
  EnergyAccumulator slow(&model_);
  slow.add_run(window, 0.5);
  // Plan B: run at full speed for 20 us, then power down for 20 us.
  EnergyAccumulator fast(&model_);
  fast.add_run(work, 1.0);
  fast.add_power_down(window - work);
  EXPECT_LT(slow.total_energy(), fast.total_energy());
}

TEST_F(EnergyTest, NegativeDurationRejected) {
  EXPECT_THROW(acc_.add_run(-1.0, 1.0), std::logic_error);
}

}  // namespace
}  // namespace lpfps::power
