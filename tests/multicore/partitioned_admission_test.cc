// multicore/partitioned_admission.h — online first-fit admission over
// per-core incremental RTA engines: placement, removal index shifting,
// priority-clash skipping, and incremental/scratch arm equality.
#include "multicore/partitioned_admission.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sched/priority.h"
#include "sched/task.h"
#include "workloads/generator.h"

namespace lpfps::multicore {
namespace {

sched::Task task(const char* name, std::int64_t period, double wcet,
                 sched::Priority priority) {
  sched::Task t = sched::make_task(name, period, wcet);
  t.priority = priority;
  return t;
}

TEST(PartitionedAdmission, FirstFitPlacesOnLowestIndexCoreThatFits) {
  PartitionedAdmission admission(3);
  // Core 0 takes the first two heavy tasks (U = 0.9), the third must
  // spill to core 1.
  EXPECT_EQ(admission.try_add(task("a", 100, 50.0, 1)), 0);
  EXPECT_EQ(admission.try_add(task("b", 100, 40.0, 2)), 0);
  EXPECT_EQ(admission.try_add(task("c", 100, 40.0, 3)), 1);
  EXPECT_EQ(admission.task_count(), 3u);
  EXPECT_EQ(admission.core(0).tasks().size(), 2u);
  EXPECT_EQ(admission.core(1).tasks().size(), 1u);
  EXPECT_EQ(admission.core(2).tasks().size(), 0u);
}

TEST(PartitionedAdmission, RejectsWhenNoCoreFits) {
  PartitionedAdmission admission(2);
  EXPECT_EQ(admission.try_add(task("a", 100, 90.0, 1)), 0);
  EXPECT_EQ(admission.try_add(task("b", 100, 90.0, 2)), 1);
  // U = 0.9 everywhere: a third such task fits nowhere.
  EXPECT_EQ(admission.try_add(task("c", 100, 90.0, 3)), -1);
  EXPECT_EQ(admission.task_count(), 2u);
}

TEST(PartitionedAdmission, PriorityClashSkipsTheCore) {
  PartitionedAdmission admission(2);
  EXPECT_EQ(admission.try_add(task("a", 100, 10.0, 7)), 0);
  // Same priority: core 0 is skipped even though it has room.
  EXPECT_EQ(admission.try_add(task("b", 100, 10.0, 7)), 1);
  // Both cores hold priority 7 now — nowhere to go.
  EXPECT_EQ(admission.try_add(task("c", 100, 10.0, 7)), -1);
}

TEST(PartitionedAdmission, RemoveShiftsHigherIndicesDown) {
  PartitionedAdmission admission(1);
  ASSERT_EQ(admission.try_add(task("a", 100, 10.0, 1)), 0);
  ASSERT_EQ(admission.try_add(task("b", 200, 10.0, 2)), 0);
  ASSERT_EQ(admission.try_add(task("c", 400, 10.0, 3)), 0);
  admission.remove(0, 1);  // Drop "b".
  ASSERT_EQ(admission.core(0).tasks().size(), 2u);
  EXPECT_EQ(admission.core(0).tasks()[0].name, "a");
  EXPECT_EQ(admission.core(0).tasks()[1].name, "c");
  EXPECT_TRUE(admission.core(0).schedulable());
}

TEST(PartitionedAdmission, DepartureFreesCapacityForReadmission) {
  PartitionedAdmission admission(1);
  ASSERT_EQ(admission.try_add(task("a", 100, 90.0, 1)), 0);
  EXPECT_EQ(admission.try_add(task("b", 100, 90.0, 2)), -1);
  admission.remove(0, 0);
  EXPECT_EQ(admission.try_add(task("b", 100, 90.0, 2)), 0);
}

TEST(PartitionedAdmission, ArmsAgreeOnPlacementAndFingerprint) {
  // Replay one random arrival/departure schedule through both arms;
  // every decision, every placement, and the canonical fingerprint
  // must match bit for bit.
  Rng rng(0xfee1);
  workloads::GeneratorConfig config;
  config.task_count = 16;
  config.total_utilization = 0.95;
  for (int round = 0; round < 5; ++round) {
    const sched::TaskSet pool = workloads::generate_task_set(config, rng);
    PartitionedAdmission fast(2, /*scratch=*/false);
    PartitionedAdmission reference(2, /*scratch=*/true);
    std::vector<int> homes;  // Cores of currently admitted tasks (fast arm).
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const int a = fast.try_add(pool[i]);
      const int b = reference.try_add(pool[i]);
      ASSERT_EQ(a, b) << "round " << round << " task " << i;
      if (a >= 0) homes.push_back(a);
      // Occasionally retire the oldest resident from both arms.
      if (i % 5 == 4 && !homes.empty()) {
        fast.remove(homes.front(), 0);
        reference.remove(homes.front(), 0);
        // Index 0 left its core; surviving entries on that core shifted,
        // but we only track cores here, which are unaffected.
        homes.erase(homes.begin());
      }
      ASSERT_EQ(fast.fingerprint(), reference.fingerprint())
          << "round " << round << " task " << i;
    }
    EXPECT_EQ(fast.task_count(), reference.task_count());
  }
}

TEST(PartitionedAdmission, IncrementalArmDoesLessWork) {
  Rng rng(0xbeef);
  workloads::GeneratorConfig config;
  config.task_count = 24;
  config.total_utilization = 0.95;
  const sched::TaskSet pool = workloads::generate_task_set(config, rng);
  PartitionedAdmission fast(3, /*scratch=*/false);
  PartitionedAdmission reference(3, /*scratch=*/true);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    fast.try_add(pool[i]);
    reference.try_add(pool[i]);
  }
  EXPECT_LT(fast.rta_stats().tasks_reanalyzed,
            reference.rta_stats().tasks_reanalyzed);
  EXPECT_GT(fast.rta_stats().tasks_seeded, 0);
}

}  // namespace
}  // namespace lpfps::multicore
