#include "multicore/simulate.h"

#include <gtest/gtest.h>

#include "exec/exec_model.h"
#include "sched/priority.h"

namespace lpfps::multicore {
namespace {

sched::TaskSet heavy_set() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 60.0));
  tasks.add(sched::make_task("b", 200, 100.0));
  tasks.add(sched::make_task("c", 400, 160.0));
  tasks.add(sched::make_task("d", 100, 30.0));
  tasks.add(sched::make_task("e", 200, 80.0));
  tasks.add(sched::make_task("f", 400, 120.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(MulticoreSim, EnergyAggregatesAcrossCores) {
  const sched::TaskSet tasks = heavy_set();
  const auto partition = partition_tasks(
      tasks, 4, PackingHeuristic::kWorstFitDecreasing);
  ASSERT_TRUE(partition.has_value());

  core::EngineOptions options;
  options.horizon = 4000.0;
  const MulticoreResult result = simulate_partitioned(
      tasks, *partition, power::ProcessorConfig::arm8_default(),
      core::SchedulerPolicy::lpfps(),
      std::make_shared<exec::ClampedGaussianModel>(), options);

  ASSERT_EQ(result.per_core.size(), 4u);
  Energy sum = 0.0;
  for (const auto& core_result : result.per_core) {
    sum += core_result.total_energy;
  }
  EXPECT_NEAR(sum, result.total_energy, 1e-9);
  EXPECT_NEAR(result.mean_core_power,
              result.total_energy / (4.0 * options.horizon), 1e-12);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_GT(result.jobs_completed, 0);
}

TEST(MulticoreSim, EmptyCoreIsParkedAtDeepestSleep) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("only", 100, 10.0));
  sched::assign_rate_monotonic(tasks);
  Partition partition;
  partition.cores = {{0}, {}};  // Second core unused.

  core::EngineOptions options;
  options.horizon = 1000.0;
  const MulticoreResult result = simulate_partitioned(
      tasks, partition, power::ProcessorConfig::arm8_default(),
      core::SchedulerPolicy::lpfps(), nullptr, options);
  ASSERT_EQ(result.per_core.size(), 2u);
  EXPECT_NEAR(result.per_core[1].average_power, 0.05, 1e-12);
}

TEST(MulticoreSim, MoreCoresMeansLessPerCorePowerUnderLpfps) {
  // Spreading the same work over more cores leaves more slack per core:
  // the per-core DVS savings should make TOTAL energy fall (or at least
  // not rise much) despite paying idle floors on extra cores — the
  // spread-vs-race trade DVS is famous for.
  const sched::TaskSet tasks = heavy_set();
  core::EngineOptions options;
  options.horizon = 4000.0;
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();

  std::vector<double> totals;
  for (const int cores : {3, 4, 6}) {
    const auto partition = partition_tasks(
        tasks, cores, PackingHeuristic::kWorstFitDecreasing);
    ASSERT_TRUE(partition.has_value()) << cores;
    totals.push_back(simulate_partitioned(
                         tasks, *partition,
                         power::ProcessorConfig::arm8_default(),
                         core::SchedulerPolicy::lpfps(), exec, options)
                         .total_energy);
  }
  // 4 balanced cores beat 3 loaded ones under the cubic-ish power law.
  EXPECT_LT(totals[1], totals[0]);
}

TEST(MulticoreSim, RejectsJitterVectors) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("only", 100, 10.0));
  sched::assign_rate_monotonic(tasks);
  Partition partition;
  partition.cores = {{0}};
  core::EngineOptions options;
  options.horizon = 1000.0;
  options.release_jitter = {5.0};
  EXPECT_THROW(simulate_partitioned(
                   tasks, partition, power::ProcessorConfig::arm8_default(),
                   core::SchedulerPolicy::lpfps(), nullptr, options),
               std::logic_error);
}

}  // namespace
}  // namespace lpfps::multicore
