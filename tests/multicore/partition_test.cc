#include "multicore/partition.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/generator.h"
#include "workloads/ins.h"

namespace lpfps::multicore {
namespace {

/// A heavy set (U = 2.2) that needs several cores.
sched::TaskSet heavy_set() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 100, 60.0));
  tasks.add(sched::make_task("b", 200, 100.0));
  tasks.add(sched::make_task("c", 400, 160.0));
  tasks.add(sched::make_task("d", 100, 30.0));
  tasks.add(sched::make_task("e", 200, 80.0));
  tasks.add(sched::make_task("f", 400, 120.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(Partition, EveryTaskAssignedExactlyOnce) {
  const sched::TaskSet tasks = heavy_set();
  const auto partition =
      partition_tasks(tasks, 4, PackingHeuristic::kFirstFitDecreasing);
  ASSERT_TRUE(partition.has_value());
  EXPECT_NO_THROW(partition->validate(tasks.size()));
}

TEST(Partition, EveryCoreIsRtaSchedulable) {
  const sched::TaskSet tasks = heavy_set();
  for (const auto heuristic :
       {PackingHeuristic::kFirstFitDecreasing,
        PackingHeuristic::kBestFitDecreasing,
        PackingHeuristic::kWorstFitDecreasing}) {
    const auto partition = partition_tasks(tasks, 4, heuristic);
    ASSERT_TRUE(partition.has_value()) << to_string(heuristic);
    for (const auto& members : partition->cores) {
      if (members.empty()) continue;
      EXPECT_TRUE(
          sched::is_schedulable_rta(core_task_set(tasks, members)))
          << to_string(heuristic);
    }
  }
}

TEST(Partition, SingleCoreRejectsOverload) {
  EXPECT_FALSE(partition_tasks(heavy_set(), 1,
                               PackingHeuristic::kFirstFitDecreasing)
                   .has_value());
  EXPECT_FALSE(partition_tasks(heavy_set(), 2,
                               PackingHeuristic::kFirstFitDecreasing)
                   .has_value());  // U = 2.2 needs > 2 cores.
}

TEST(Partition, SingleCoreAcceptsSchedulableSet) {
  const auto partition = partition_tasks(
      lpfps::workloads::ins(), 1, PackingHeuristic::kFirstFitDecreasing);
  ASSERT_TRUE(partition.has_value());
  EXPECT_EQ(partition->cores[0].size(), 6u);
}

TEST(Partition, MinCoresFindsTheKnee) {
  const auto cores = min_cores(heavy_set(), 8,
                               PackingHeuristic::kWorstFitDecreasing);
  ASSERT_TRUE(cores.has_value());
  EXPECT_GE(*cores, 3);  // U = 2.2 cannot fit on 2.
  EXPECT_LE(*cores, 4);
  // And indeed one fewer core must fail.
  EXPECT_FALSE(
      partition_tasks(heavy_set(), *cores - 1,
                      PackingHeuristic::kWorstFitDecreasing)
          .has_value());
}

TEST(Partition, MinCoresNulloptWhenImpossible) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("huge", 100, 99.0));
  tasks.add(sched::make_task("huge2", 100, 99.0));
  sched::assign_rate_monotonic(tasks);
  EXPECT_TRUE(min_cores(tasks, 2, PackingHeuristic::kFirstFitDecreasing)
                  .has_value());  // One per core fits.
  EXPECT_FALSE(min_cores(tasks, 1, PackingHeuristic::kFirstFitDecreasing)
                   .has_value());
}

TEST(Partition, WorstFitBalancesBetterThanFirstFit) {
  const sched::TaskSet tasks = heavy_set();
  const auto first = partition_tasks(
      tasks, 4, PackingHeuristic::kFirstFitDecreasing);
  const auto worst = partition_tasks(
      tasks, 4, PackingHeuristic::kWorstFitDecreasing);
  ASSERT_TRUE(first.has_value() && worst.has_value());
  EXPECT_LE(utilization_imbalance(tasks, *worst),
            utilization_imbalance(tasks, *first) + 1e-12);
}

TEST(Partition, CoreTaskSetReassignsPrioritiesRm) {
  const sched::TaskSet tasks = heavy_set();
  const sched::TaskSet subset = core_task_set(tasks, {2, 0});
  ASSERT_EQ(subset.size(), 2u);
  // "a" (period 100) must outrank "c" (period 400) within the core.
  EXPECT_EQ(subset[1].name, "a");
  EXPECT_LT(subset[1].priority, subset[0].priority);
}

TEST(Partition, IncrementalAndScratchModesAgreeExactly) {
  // The incremental arm (per-core IncrementalRta under global
  // RM-equivalent ranks) must place every task on the same core as the
  // materialize-and-reanalyze reference, for every heuristic, across
  // random sets spanning fit and no-fit outcomes.
  Rng rng(4242);
  workloads::GeneratorConfig config;
  config.task_count = 12;
  for (int i = 0; i < 20; ++i) {
    config.total_utilization = 0.5 + 0.05 * (i % 10);
    const sched::TaskSet tasks = workloads::generate_task_set(config, rng);
    for (const auto heuristic :
         {PackingHeuristic::kFirstFitDecreasing,
          PackingHeuristic::kBestFitDecreasing,
          PackingHeuristic::kWorstFitDecreasing}) {
      for (const int cores : {1, 2, 3}) {
        const auto fast = partition_tasks(tasks, cores, heuristic,
                                          PartitionMode::kIncremental);
        const auto reference = partition_tasks(tasks, cores, heuristic,
                                               PartitionMode::kFromScratch);
        ASSERT_EQ(fast.has_value(), reference.has_value())
            << to_string(heuristic) << " cores=" << cores << " set " << i;
        if (fast.has_value()) {
          EXPECT_EQ(fast->cores, reference->cores)
              << to_string(heuristic) << " cores=" << cores << " set " << i;
        }
      }
    }
  }
}

TEST(Partition, MinCoresAgreesAcrossModes) {
  const sched::TaskSet tasks = heavy_set();
  for (const auto heuristic :
       {PackingHeuristic::kFirstFitDecreasing,
        PackingHeuristic::kWorstFitDecreasing}) {
    EXPECT_EQ(min_cores(tasks, 8, heuristic, PartitionMode::kIncremental),
              min_cores(tasks, 8, heuristic, PartitionMode::kFromScratch))
        << to_string(heuristic);
  }
}

TEST(Partition, RandomSetsAlwaysPartitionValidly) {
  Rng rng(77);
  workloads::GeneratorConfig config;
  config.task_count = 10;
  config.total_utilization = 0.9;  // Per generator limits U <= 1.
  for (int i = 0; i < 10; ++i) {
    const sched::TaskSet tasks = workloads::generate_task_set(config, rng);
    const auto partition = partition_tasks(
        tasks, 3, PackingHeuristic::kWorstFitDecreasing);
    ASSERT_TRUE(partition.has_value()) << i;
    partition->validate(tasks.size());
    for (const auto& members : partition->cores) {
      if (!members.empty()) {
        EXPECT_TRUE(
            sched::is_schedulable_rta(core_task_set(tasks, members)));
      }
    }
  }
}

}  // namespace
}  // namespace lpfps::multicore
