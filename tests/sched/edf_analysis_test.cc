// Processor-demand analysis for EDF (exact test for constrained
// deadlines), cross-checked against the EDF kernel simulator.
#include <gtest/gtest.h>

#include "sched/analysis.h"
#include "sched/edf.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::sched {
namespace {

TEST(DemandBound, ClosedFormValues) {
  TaskSet tasks;
  tasks.add(make_task("a", 4, 2, 2.0, 2.0));   // D = 2.
  tasks.add(make_task("b", 8, 4, 2.0, 2.0));   // D = 4.
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 1.9), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 2.0), 2.0);   // a's first job.
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 4.0), 4.0);   // + b's first.
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 6.0), 6.0);   // + a's second.
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 12.0), 10.0);
}

TEST(EdfExact, ImplicitDeadlinesReduceToUtilization) {
  EXPECT_TRUE(is_schedulable_edf_exact(workloads::example_table1()));
  TaskSet overloaded;
  overloaded.add(make_task("hog", 10, 8.0));
  overloaded.add(make_task("more", 20, 10.0));  // U = 1.3.
  EXPECT_FALSE(is_schedulable_edf_exact(overloaded));
}

TEST(EdfExact, ConstrainedDeadlinesFeasibleCase) {
  TaskSet tasks;
  tasks.add(make_task("a", 4, 2, 2.0, 2.0));
  tasks.add(make_task("b", 8, 4, 2.0, 2.0));  // U = 0.75, h(t) <= t.
  EXPECT_TRUE(is_schedulable_edf_exact(tasks));
}

TEST(EdfExact, ConstrainedDeadlinesInfeasibleDespiteUtilizationOk) {
  // U = 1.0 but h(3) = 4 > 3: the deadline crunch at t = 3 is fatal.
  TaskSet tasks;
  tasks.add(make_task("a", 4, 2, 2.0, 2.0));
  tasks.add(make_task("b", 4, 3, 2.0, 2.0));
  EXPECT_TRUE(is_schedulable_edf(tasks));  // Necessary test passes...
  EXPECT_FALSE(is_schedulable_edf_exact(tasks));  // ...exact one fails.
}

TEST(EdfExact, AgreesWithSimulationOnFeasibility) {
  struct Case {
    TaskSet tasks;
    const char* label;
  };
  std::vector<Case> cases;
  {
    TaskSet tasks;
    tasks.add(make_task("a", 4, 2, 2.0, 2.0));
    tasks.add(make_task("b", 8, 4, 2.0, 2.0));
    cases.push_back({tasks, "feasible constrained"});
  }
  {
    TaskSet tasks;
    tasks.add(make_task("a", 4, 2, 2.0, 2.0));
    tasks.add(make_task("b", 4, 3, 2.0, 2.0));
    cases.push_back({tasks, "infeasible constrained"});
  }
  {
    TaskSet tasks;
    tasks.add(make_task("a", 10, 5.0));
    tasks.add(make_task("b", 20, 10.0));
    cases.push_back({tasks, "U = 1 implicit"});
  }
  for (const Case& c : cases) {
    TaskSet tasks = c.tasks;
    assign_deadline_monotonic(tasks);  // EdfKernel ignores priorities.
    EdfKernel kernel(tasks);
    const KernelResult result =
        kernel.run(static_cast<Time>(tasks.hyperperiod()) * 4.0);
    const bool predicted = is_schedulable_edf_exact(c.tasks);
    EXPECT_EQ(result.deadline_misses == 0, predicted) << c.label;
  }
}

TEST(EdfExact, BusyPeriodBoundKeepsTestFinite) {
  // U < 1 with mutually prime periods: the Baruah-Rosier bound, not the
  // (large) hyperperiod, limits the testing set; just verify it runs
  // and accepts a clearly feasible set.
  TaskSet tasks;
  tasks.add(make_task("p", 9973, 5000, 100.0, 100.0));
  tasks.add(make_task("q", 10007, 6000, 100.0, 100.0));
  tasks.add(make_task("r", 10009, 7000, 100.0, 100.0));
  EXPECT_TRUE(is_schedulable_edf_exact(tasks));
}

TEST(EdfExact, RejectsUnsupportedShapes) {
  TaskSet tasks;
  tasks.add(make_task("late", 100, 150, 10.0, 10.0, 0));
  // D > T violates make_task? No: deadline 150 > period 100 is allowed
  // by the task model but not by this analysis.
  EXPECT_THROW(is_schedulable_edf_exact(tasks), std::logic_error);
}

}  // namespace
}  // namespace lpfps::sched
