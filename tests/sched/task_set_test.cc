#include "sched/task_set.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workloads/example.h"

namespace lpfps::sched {
namespace {

TaskSet table1() { return lpfps::workloads::example_table1(); }

TEST(TaskSet, SizeAndAccess) {
  const TaskSet tasks = table1();
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].name, "tau1");
  EXPECT_EQ(tasks[2].period, 100);
}

TEST(TaskSet, OutOfRangeAccessThrows) {
  const TaskSet tasks = table1();
  EXPECT_THROW((void)tasks[3], std::logic_error);
  EXPECT_THROW((void)tasks[-1], std::logic_error);
}

TEST(TaskSet, UtilizationOfPaperExample) {
  // 10/50 + 20/80 + 40/100 = 0.2 + 0.25 + 0.4 = 0.85.
  EXPECT_NEAR(table1().utilization(), 0.85, 1e-12);
}

TEST(TaskSet, HyperperiodOfPaperExample) {
  EXPECT_EQ(table1().hyperperiod(), 400);
}

TEST(TaskSet, WcetRange) {
  const TaskSet tasks = table1();
  EXPECT_DOUBLE_EQ(tasks.min_wcet(), 10.0);
  EXPECT_DOUBLE_EQ(tasks.max_wcet(), 40.0);
}

TEST(TaskSet, NamesInIndexOrder) {
  const auto names = table1().names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "tau1");
  EXPECT_EQ(names[1], "tau2");
  EXPECT_EQ(names[2], "tau3");
}

TEST(TaskSet, ImplicitDeadlinesDetected) {
  TaskSet tasks = table1();
  EXPECT_TRUE(tasks.implicit_deadlines());
  tasks.add(make_task("constrained", 200, 150, 10.0, 10.0));
  EXPECT_FALSE(tasks.implicit_deadlines());
}

TEST(TaskSet, DuplicatePrioritiesRejectedByValidate) {
  TaskSet tasks;
  Task a = make_task("a", 50, 10.0);
  Task b = make_task("b", 100, 10.0);
  a.priority = 0;
  b.priority = 0;
  tasks.add(a);
  tasks.add(b);
  EXPECT_FALSE(tasks.priorities_are_unique());
  EXPECT_THROW(tasks.validate(), std::logic_error);
}

TEST(TaskSet, WithBcetRatioScalesEveryTask) {
  const TaskSet scaled = table1().with_bcet_ratio(0.25);
  for (const Task& t : scaled.tasks()) {
    EXPECT_DOUBLE_EQ(t.bcet, t.wcet * 0.25);
  }
  // Original untouched semantics: returns a copy.
  const TaskSet original = table1();
  for (const Task& t : original.tasks()) {
    EXPECT_DOUBLE_EQ(t.bcet, t.wcet);
  }
}

TEST(TaskSet, WithBcetRatioRejectsOutOfRange) {
  EXPECT_THROW(table1().with_bcet_ratio(0.0), std::logic_error);
  EXPECT_THROW(table1().with_bcet_ratio(1.5), std::logic_error);
}

TEST(TaskSet, HyperperiodOnEmptyThrows) {
  const TaskSet empty;
  EXPECT_THROW(empty.hyperperiod(), std::logic_error);
}

}  // namespace
}  // namespace lpfps::sched
