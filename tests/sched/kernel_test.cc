#include "sched/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/float_compare.h"
#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::sched {
namespace {

using sim::ProcessorMode;
using sim::Segment;

KernelResult run_table1(Time horizon,
                        ExecTimeProvider provider = nullptr,
                        InvocationHook hook = nullptr) {
  FixedPriorityKernel kernel(lpfps::workloads::example_table1());
  if (provider) kernel.set_exec_time_provider(std::move(provider));
  if (hook) kernel.set_invocation_hook(std::move(hook));
  return kernel.run(horizon);
}

/// The running segments of the paper's Figure 2(a) over [0, 200).
struct ExpectedRun {
  Time begin;
  Time end;
  TaskIndex task;
};

TEST(Kernel, ReproducesFigure2aSchedule) {
  const KernelResult result = run_table1(200.0);
  const std::vector<ExpectedRun> expected = {
      {0, 10, 0},     // tau1
      {10, 30, 1},    // tau2
      {30, 50, 2},    // tau3 (preempted at 50)
      {50, 60, 0},    // tau1
      {60, 80, 2},    // tau3 resumes, finishes exactly at 80
      {80, 100, 1},   // tau2 (released 80)
      {100, 110, 0},  // tau1
      {110, 150, 2},  // tau3
      {150, 160, 0},  // tau1
      {160, 180, 1},  // tau2 (released 160)
  };

  std::vector<Segment> running;
  for (const Segment& s : result.trace.segments()) {
    if (s.mode == ProcessorMode::kRunning) running.push_back(s);
  }
  ASSERT_EQ(running.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(running[i].begin, expected[i].begin, 1e-9) << "segment " << i;
    EXPECT_NEAR(running[i].end, expected[i].end, 1e-9) << "segment " << i;
    EXPECT_EQ(running[i].task, expected[i].task) << "segment " << i;
  }
}

TEST(Kernel, Figure2aIdleInterval) {
  // The only idle interval in [0, 200) is [180, 200).
  const KernelResult result = run_table1(200.0);
  Time idle = 0.0;
  for (const Segment& s : result.trace.segments()) {
    if (s.mode == ProcessorMode::kIdleBusyWait) {
      idle += s.duration();
      EXPECT_NEAR(s.begin, 180.0, 1e-9);
      EXPECT_NEAR(s.end, 200.0, 1e-9);
    }
  }
  EXPECT_NEAR(idle, 20.0, 1e-9);
}

TEST(Kernel, HyperperiodIdleMatchesAnalyticValue) {
  // Idle over one hyperperiod (400 us) = H * (1 - U) = 400 * 0.15 = 60.
  const KernelResult result = run_table1(400.0);
  EXPECT_NEAR(result.trace.time_in_mode(ProcessorMode::kIdleBusyWait), 60.0,
              1e-9);
}

TEST(Kernel, NoDeadlineMissesAtWcet) {
  const KernelResult result = run_table1(4000.0);
  EXPECT_EQ(result.deadline_misses, 0);
  EXPECT_TRUE(result.trace.missed_jobs().empty());
}

TEST(Kernel, Tau3PreemptedAtTime50) {
  const KernelResult result = run_table1(200.0);
  EXPECT_GE(result.context_switches, 1);
}

TEST(Kernel, Figure3aSnapshotAtTimeZero) {
  // Paper Figure 3(a): at t=0 tau1 is active; tau2 and tau3 wait in the
  // run queue in priority order; the delay queue is empty.
  std::map<Time, QueueSnapshot> snapshots;
  run_table1(200.0, nullptr, [&](const QueueSnapshot& snapshot) {
    snapshots.emplace(snapshot.time, snapshot);
  });
  ASSERT_TRUE(snapshots.count(0.0));
  const QueueSnapshot& at0 = snapshots.at(0.0);
  EXPECT_EQ(at0.active_task, 0);
  ASSERT_EQ(at0.run_queue.size(), 2u);
  EXPECT_EQ(at0.run_queue[0].task, 1);
  EXPECT_EQ(at0.run_queue[1].task, 2);
  EXPECT_TRUE(at0.delay_queue.empty());
}

TEST(Kernel, Figure3bSnapshotAtTime50) {
  // Paper Figure 3(b): at t=50 tau1 (2nd instance) preempts tau3, which
  // re-enters the run queue; tau2 sleeps in the delay queue until 80.
  std::map<Time, QueueSnapshot> snapshots;
  run_table1(200.0, nullptr, [&](const QueueSnapshot& snapshot) {
    snapshots.emplace(snapshot.time, snapshot);
  });
  ASSERT_TRUE(snapshots.count(50.0));
  const QueueSnapshot& at50 = snapshots.at(50.0);
  EXPECT_EQ(at50.active_task, 0);
  ASSERT_EQ(at50.run_queue.size(), 1u);
  EXPECT_EQ(at50.run_queue[0].task, 2);
  ASSERT_EQ(at50.delay_queue.size(), 1u);
  EXPECT_EQ(at50.delay_queue[0].task, 1);
  EXPECT_NEAR(at50.delay_queue[0].release_time, 80.0, 1e-9);
}

TEST(Kernel, EarlyCompletionsCreateMoreIdle) {
  // Figure 2(b): when the first instances of tau2 and tau3 run short,
  // extra idle time appears before t=100.
  auto provider = [](TaskIndex task, std::int64_t instance) -> Work {
    if (task == 1 && instance == 0) return 10.0;  // tau2 first instance.
    if (task == 2 && instance == 0) return 30.0;  // tau3 first instance.
    if (task == 1) return 20.0;
    if (task == 2) return 40.0;
    return 10.0;
  };
  const KernelResult result = run_table1(100.0, provider);
  // Work in [0,100): tau1 twice (20) + tau2 (10) + tau3 (30) + tau2's
  // second instance at WCET (20) = 80, so idle is 20 us — versus 0 us of
  // idle in the same window when every job takes its WCET (Figure 2(a)).
  EXPECT_NEAR(result.trace.time_in_mode(ProcessorMode::kIdleBusyWait), 20.0,
              1e-9);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(Kernel, ExecProviderOutOfRangeRejected) {
  auto provider = [](TaskIndex, std::int64_t) -> Work { return 1000.0; };
  FixedPriorityKernel kernel(lpfps::workloads::example_table1());
  kernel.set_exec_time_provider(provider);
  EXPECT_THROW(kernel.run(100.0), std::logic_error);
}

TEST(Kernel, ResponseTimesMatchAnalysisAtCriticalInstant) {
  // First job of tau3 completes at t=80 (its RTA response time).
  const KernelResult result = run_table1(100.0);
  for (const sim::JobRecord& job : result.trace.jobs()) {
    if (job.task == 2 && job.instance == 0) {
      EXPECT_NEAR(job.completion, 80.0, 1e-9);
      return;
    }
  }
  FAIL() << "tau3's first job not found";
}

TEST(Kernel, JobCountsOverHyperperiod) {
  const KernelResult result = run_table1(400.0);
  std::map<TaskIndex, int> counts;
  for (const sim::JobRecord& job : result.trace.jobs()) {
    if (job.finished) ++counts[job.task];
  }
  EXPECT_EQ(counts[0], 8);  // 400/50.
  EXPECT_EQ(counts[1], 5);  // 400/80.
  EXPECT_EQ(counts[2], 4);  // 400/100.
}

// ---- budget enforcement (set_overrun_containment) -------------------

/// A provider inflating every task's demand to `factor` x WCET.
ExecTimeProvider inflate_all(const TaskSet& tasks, double factor) {
  return [tasks, factor](TaskIndex task, std::int64_t) -> Work {
    return tasks[task].wcet * factor;
  };
}

KernelResult run_contained(const TaskSet& tasks, Time horizon,
                           faults::OverrunAction action,
                           ExecTimeProvider provider) {
  FixedPriorityKernel kernel(tasks);
  kernel.set_exec_time_provider(std::move(provider));
  kernel.set_overrun_containment(action);
  return kernel.run(horizon);
}

TEST(KernelContainment, MonitorModeCountsOverrunsWithoutDisplacingJobs) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const KernelResult result =
      run_contained(tasks, 400.0, faults::OverrunAction::kNone,
                    inflate_all(tasks, 1.2));
  EXPECT_GT(result.overruns_detected, 0);
  EXPECT_EQ(result.jobs_killed, 0);
  EXPECT_EQ(result.jobs_throttled, 0);
  EXPECT_EQ(result.jobs_skipped, 0);
  // Monitor mode never sheds demand: every record ran its full 1.2 C.
  for (const sim::JobRecord& job : result.trace.jobs()) {
    if (!job.finished) continue;
    EXPECT_NEAR(job.executed, 1.2 * tasks[job.task].wcet, 1e-9);
  }
}

TEST(KernelContainment, KillReproducesTheWcetScheduleWithZeroMisses) {
  // Kill caps every job at exactly C, so the contained schedule's
  // running segments coincide with the plain WCET run (Figure 2a) and
  // no deadline is ever missed — the containment acceptance bar.
  const TaskSet tasks = lpfps::workloads::example_table1();
  const KernelResult contained =
      run_contained(tasks, 400.0, faults::OverrunAction::kKill,
                    inflate_all(tasks, 1.5));
  const KernelResult plain = FixedPriorityKernel(tasks).run(400.0);

  EXPECT_GT(contained.jobs_killed, 0);
  EXPECT_EQ(contained.jobs_killed, contained.overruns_detected);
  EXPECT_EQ(contained.deadline_misses, 0);
  for (const sim::JobRecord& job : contained.trace.jobs()) {
    EXPECT_TRUE(job.killed);
    EXPECT_FALSE(job.finished);
    EXPECT_NEAR(job.executed, tasks[job.task].wcet, 1e-9);
  }

  const auto& a = contained.trace.segments();
  const auto& b = plain.trace.segments();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].begin, b[i].begin, 1e-9) << "segment " << i;
    EXPECT_NEAR(a[i].end, b[i].end, 1e-9) << "segment " << i;
    EXPECT_EQ(a[i].task, b[i].task) << "segment " << i;
    EXPECT_EQ(a[i].mode, b[i].mode) << "segment " << i;
  }
}

TEST(KernelContainment, ThrottleResumesWithAReplenishedBudget) {
  // Only tau2 overruns (30 against a budget of C = 20): it is suspended
  // at its budget and finishes the remaining 10 in its next enforcement
  // window, consuming every other tau2 release.
  const TaskSet tasks = lpfps::workloads::example_table1();
  auto provider = [&tasks](TaskIndex task, std::int64_t) -> Work {
    return task == 1 ? 1.5 * tasks[task].wcet : tasks[task].wcet;
  };
  const KernelResult result = run_contained(
      tasks, 800.0, faults::OverrunAction::kThrottle, provider);

  EXPECT_GT(result.jobs_throttled, 0);
  EXPECT_EQ(result.jobs_throttled, result.overruns_detected);
  EXPECT_EQ(result.jobs_killed, 0);

  int tau2_finished = 0;
  for (const sim::JobRecord& job : result.trace.jobs()) {
    if (!job.finished) continue;
    if (job.task != 1) continue;
    ++tau2_finished;
    // The full faulted demand ran — deferred across windows, not shed.
    EXPECT_NEAR(job.executed, 1.5 * tasks[1].wcet, 1e-9);
    // ...and it really spans into a later window.
    EXPECT_GT(job.completion - job.release,
              static_cast<double>(tasks[1].period));
  }
  EXPECT_GT(tau2_finished, 0);
}

TEST(KernelContainment, KillForfeitsTheWindowsTheOverrunConsumed) {
  // An overloaded pair: t1 (P=10, C=6) preempts t2 (P=15, C=5.5), so
  // t2's budget exhausts at t=17.5, past its own next release at 15 —
  // the requeue must skip that forfeited window instead of releasing
  // into the past.
  TaskSet tasks;
  tasks.add(make_task("t1", 10, 6.0));
  tasks.add(make_task("t2", 15, 9, 5.5, 5.5));
  assign_rate_monotonic(tasks);
  auto provider = [&tasks](TaskIndex task, std::int64_t) -> Work {
    return task == 1 ? 1.5 * tasks[task].wcet : tasks[task].wcet;
  };
  const KernelResult result =
      run_contained(tasks, 300.0, faults::OverrunAction::kKill, provider);
  EXPECT_GT(result.jobs_killed, 0);
  EXPECT_GT(result.jobs_skipped, 0);
  for (const sim::JobRecord& job : result.trace.jobs()) {
    if (!job.killed) continue;
    EXPECT_EQ(job.task, 1);
    EXPECT_NEAR(job.executed, tasks[1].wcet, 1e-9);
  }
}

TEST(KernelContainment, KillCrossChecksTheEngineUnderIdenticalFaults) {
  // The engine's deterministic overrun plan (p=1, magnitude 0.5) is the
  // same workload as a 1.5 C provider; under plain FPS at full speed
  // the two simulators must kill the same instances at the same times.
  const TaskSet tasks = lpfps::workloads::example_table1();
  const KernelResult kernel =
      run_contained(tasks, 400.0, faults::OverrunAction::kKill,
                    inflate_all(tasks, 1.5));

  core::EngineOptions options;
  options.horizon = 400.0;
  options.record_trace = true;
  options.throw_on_miss = false;
  options.faults.overruns = {{1.0, 0.5}};
  options.containment.on_overrun = faults::OverrunAction::kKill;
  const core::SimulationResult engine =
      core::simulate(tasks, power::ProcessorConfig::arm8_default(),
                     core::SchedulerPolicy::fps(), nullptr, options);

  EXPECT_EQ(engine.jobs_killed, kernel.jobs_killed);
  EXPECT_EQ(engine.overruns_detected, kernel.overruns_detected);

  const auto kills = [](const std::vector<sim::JobRecord>& jobs) {
    std::map<std::pair<TaskIndex, std::int64_t>, Time> out;
    for (const sim::JobRecord& job : jobs) {
      if (job.killed) out[{job.task, job.instance}] = job.completion;
    }
    return out;
  };
  const auto from_kernel = kills(kernel.trace.jobs());
  const auto from_engine = kills(engine.trace->jobs());
  ASSERT_EQ(from_kernel.size(), from_engine.size());
  for (const auto& [key, at] : from_kernel) {
    const auto it = from_engine.find(key);
    ASSERT_NE(it, from_engine.end())
        << "task " << key.first << " instance " << key.second;
    EXPECT_NEAR(it->second, at, 1e-6)
        << "task " << key.first << " instance " << key.second;
  }
}

}  // namespace
}  // namespace lpfps::sched
