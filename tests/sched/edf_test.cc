#include "sched/edf.h"

#include <gtest/gtest.h>

#include "sched/priority.h"
#include "workloads/example.h"

namespace lpfps::sched {
namespace {

using sim::ProcessorMode;

TEST(Edf, SchedulesPaperExampleWithoutMisses) {
  EdfKernel kernel(lpfps::workloads::example_table1());
  const KernelResult result = kernel.run(4000.0);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(Edf, IdleTimeEqualsFixedPriorityIdleOverHyperperiod) {
  // Both EDF and RM are work-conserving: over a hyperperiod they do the
  // same total work, so idle time is identical (only its placement
  // differs).
  EdfKernel kernel(lpfps::workloads::example_table1());
  const KernelResult result = kernel.run(400.0);
  EXPECT_NEAR(result.trace.time_in_mode(ProcessorMode::kIdleBusyWait), 60.0,
              1e-9);
}

TEST(Edf, SchedulesFullUtilizationSetRmCannot) {
  // Classic EDF superiority example: U = 1.0 exactly.  RM misses, EDF
  // does not.
  TaskSet tasks;
  tasks.add(make_task("a", 10, 5.0));
  tasks.add(make_task("b", 20, 10.0));
  assign_rate_monotonic(tasks);

  EdfKernel edf(tasks);
  EXPECT_EQ(edf.run(2000.0).deadline_misses, 0);
}

TEST(Edf, DispatchesByAbsoluteDeadline) {
  // Two tasks released together: shorter-deadline one runs first even
  // though it has the longer period (anti-RM ordering).
  TaskSet tasks;
  tasks.add(make_task("long_period_tight_deadline", 200, 50, 10.0, 10.0));
  tasks.add(make_task("short_period_loose_deadline", 100, 100, 10.0, 10.0));
  EdfKernel kernel(tasks);
  const KernelResult result = kernel.run(100.0);
  const auto& segments = result.trace.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().task, 0);
}

TEST(Edf, PreemptsOnEarlierDeadlineArrival) {
  TaskSet tasks;
  tasks.add(make_task("background", 1000, 300.0));
  tasks.add(make_task("urgent", 100, 10.0, 10.0, 10.0));
  EdfKernel kernel(tasks);
  const KernelResult result = kernel.run(1000.0);
  EXPECT_GT(result.context_switches, 0);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(Edf, CustomExecutionTimes) {
  EdfKernel kernel(lpfps::workloads::example_table1());
  kernel.set_exec_time_provider(
      [](TaskIndex, std::int64_t) -> Work { return 10.0; });
  const KernelResult result = kernel.run(400.0);
  // 8 + 5 + 4 jobs, each 10 us of work = 170 busy.
  EXPECT_NEAR(result.trace.time_in_mode(ProcessorMode::kRunning), 170.0,
              1e-9);
}

}  // namespace
}  // namespace lpfps::sched
