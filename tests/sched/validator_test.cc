#include "sched/validator.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/ins.h"

namespace lpfps::sched {
namespace {

core::SimulationResult run_traced(const TaskSet& tasks,
                                  const core::SchedulerPolicy& policy,
                                  Time horizon, double bcet_ratio = 1.0) {
  core::EngineOptions options;
  options.horizon = horizon;
  options.record_trace = true;
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  return core::simulate(tasks.with_bcet_ratio(bcet_ratio),
                        power::ProcessorConfig::arm8_default(), policy,
                        exec, options);
}

TEST(Validator, AcceptsFpsSchedule) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const auto result =
      run_traced(tasks, core::SchedulerPolicy::fps(), 4000.0);
  const ValidationReport report =
      validate_schedule(*result.trace, tasks);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validator, AcceptsLpfpsScheduleWithDvsAndPowerDown) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const auto result =
      run_traced(tasks, core::SchedulerPolicy::lpfps(), 4000.0, 0.4);
  const ValidationReport report =
      validate_schedule(*result.trace, tasks);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validator, AcceptsAllPolicyVariantsOnIns) {
  const TaskSet tasks = lpfps::workloads::ins();
  for (const auto& policy :
       {core::SchedulerPolicy::fps(), core::SchedulerPolicy::lpfps(),
        core::SchedulerPolicy::lpfps_optimal(),
        core::SchedulerPolicy::lpfps_dvs_only(),
        core::SchedulerPolicy::lpfps_powerdown_only()}) {
    const auto result = run_traced(tasks, policy, 5e6, 0.3);
    const ValidationReport report =
        validate_schedule(*result.trace, tasks);
    EXPECT_TRUE(report.ok()) << policy.name << ":\n" << report.to_string();
  }
}

// ---- negative cases: corrupt a genuine trace and expect detection ----

sim::Trace valid_trace(const TaskSet& tasks) {
  return *run_traced(tasks, core::SchedulerPolicy::fps(), 400.0).trace;
}

sim::Trace rebuild_with_segments(const sim::Trace& original,
                                 std::vector<sim::Segment> segments) {
  sim::Trace out;
  for (const sim::Segment& s : segments) out.add_segment(s);
  for (const sim::JobRecord& job : original.jobs()) out.add_job(job);
  return out;
}

TEST(Validator, DetectsWrongTaskInSegment) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Figure 2(a): [10,30) belongs to tau2; claim tau1 ran instead.
  for (sim::Segment& s : segments) {
    if (s.begin == 10.0 && s.task == 1) s.task = 0;
  }
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsPriorityInversion) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Swap the tasks of the first two running segments: tau2 before tau1
  // at t=0 is an inversion (tau1 pending, higher priority).
  ASSERT_GE(segments.size(), 2u);
  std::swap(segments[0].task, segments[1].task);
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsIdlingWithPendingWork) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Turn tau1's first segment into busy-wait idling: tau1 is pending.
  segments[0].mode = sim::ProcessorMode::kIdleBusyWait;
  segments[0].task = kNoTask;
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsWorkIntegralMismatch) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Pretend tau1's first segment ran at half speed: the job's recorded
  // 10 us of work no longer integrates.
  segments[0].ratio_begin = 0.5;
  segments[0].ratio_end = 0.5;
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsInconsistentMissFlag) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  sim::Trace tampered;
  for (const sim::Segment& s : original.segments()) {
    tampered.add_segment(s);
  }
  bool first = true;
  for (sim::JobRecord job : original.jobs()) {
    if (first) {
      job.missed_deadline = true;  // Flag an on-time job as missed.
      first = false;
    }
    tampered.add_job(job);
  }
  const auto report = validate_schedule(tampered, tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsForgedReleaseTime) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  sim::Trace tampered;
  for (const sim::Segment& s : original.segments()) {
    tampered.add_segment(s);
  }
  bool first = true;
  for (sim::JobRecord job : original.jobs()) {
    if (first) {
      job.release += 7.0;  // Releases are deterministic: phase + k*T.
      first = false;
    }
    tampered.add_job(job);
  }
  const auto report = validate_schedule(tampered, tasks);
  EXPECT_FALSE(report.ok());
}

// ---- incompatible traces: one precise rejection, not a cascade ------

/// The rejection contract: exactly one violation, naming the rejection
/// and pointing at the audit layer as the right tool.
void expect_single_rejection(const ValidationReport& report) {
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u) << report.to_string();
  EXPECT_NE(report.violations[0].find("trace rejected"), std::string::npos)
      << report.violations[0];
  EXPECT_NE(report.violations[0].find("audit"), std::string::npos)
      << report.violations[0];
}

TEST(Validator, RejectsRunsWithDeclaredReleaseJitter) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  core::EngineOptions options;
  options.horizon = 400.0;
  options.record_trace = true;
  options.release_jitter = {2.0, 2.0, 2.0};
  const auto result = core::simulate(
      tasks, power::ProcessorConfig::arm8_default(),
      core::SchedulerPolicy::fps(), nullptr, options);
  ValidatorOptions vopts;
  vopts.release_jitter = options.release_jitter;
  expect_single_rejection(
      validate_schedule(*result.trace, tasks, vopts));
}

TEST(Validator, RejectsTracesWithKilledRecords) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  core::EngineOptions options;
  options.horizon = 400.0;
  options.record_trace = true;
  options.throw_on_miss = false;
  options.faults.overruns = {{1.0, 0.5}};
  options.containment.on_overrun = faults::OverrunAction::kKill;
  const auto result = core::simulate(
      tasks, power::ProcessorConfig::arm8_default(),
      core::SchedulerPolicy::fps(), nullptr, options);
  ASSERT_GT(result.jobs_killed, 0);
  expect_single_rejection(validate_schedule(*result.trace, tasks));
}

TEST(Validator, RejectsJitteredReleasesEvenWhenUndeclared) {
  // A trace whose releases drift off the phase + k*T grid is rejected
  // up front even without ValidatorOptions::release_jitter being set.
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  sim::Trace tampered;
  for (const sim::Segment& s : original.segments()) {
    tampered.add_segment(s);
  }
  for (sim::JobRecord job : original.jobs()) {
    job.release += 3.0;
    job.completion += 3.0;
    tampered.add_job(job);
  }
  expect_single_rejection(validate_schedule(tampered, tasks));
}

TEST(Validator, RejectsPastWcetDemandInsteadOfMisattributingIt) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  sim::Trace tampered;
  for (const sim::Segment& s : original.segments()) {
    tampered.add_segment(s);
  }
  bool first = true;
  for (sim::JobRecord job : original.jobs()) {
    if (first) {
      job.executed = tasks[job.task].wcet * 1.5;  // Injected overrun.
      first = false;
    }
    tampered.add_job(job);
  }
  expect_single_rejection(validate_schedule(tampered, tasks));
}

TEST(Validator, ReportCapsViolationCount) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  for (sim::Segment& s : segments) {
    if (s.mode == sim::ProcessorMode::kRunning) s.ratio_begin = 0.5;
  }
  ValidatorOptions options;
  options.max_violations = 5;
  const auto report = validate_schedule(
      rebuild_with_segments(original, segments), tasks, options);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.violations.size(), 5u);
}

}  // namespace
}  // namespace lpfps::sched
