#include "sched/validator.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/ins.h"

namespace lpfps::sched {
namespace {

core::SimulationResult run_traced(const TaskSet& tasks,
                                  const core::SchedulerPolicy& policy,
                                  Time horizon, double bcet_ratio = 1.0) {
  core::EngineOptions options;
  options.horizon = horizon;
  options.record_trace = true;
  const auto exec = std::make_shared<exec::ClampedGaussianModel>();
  return core::simulate(tasks.with_bcet_ratio(bcet_ratio),
                        power::ProcessorConfig::arm8_default(), policy,
                        exec, options);
}

TEST(Validator, AcceptsFpsSchedule) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const auto result =
      run_traced(tasks, core::SchedulerPolicy::fps(), 4000.0);
  const ValidationReport report =
      validate_schedule(*result.trace, tasks);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validator, AcceptsLpfpsScheduleWithDvsAndPowerDown) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const auto result =
      run_traced(tasks, core::SchedulerPolicy::lpfps(), 4000.0, 0.4);
  const ValidationReport report =
      validate_schedule(*result.trace, tasks);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validator, AcceptsAllPolicyVariantsOnIns) {
  const TaskSet tasks = lpfps::workloads::ins();
  for (const auto& policy :
       {core::SchedulerPolicy::fps(), core::SchedulerPolicy::lpfps(),
        core::SchedulerPolicy::lpfps_optimal(),
        core::SchedulerPolicy::lpfps_dvs_only(),
        core::SchedulerPolicy::lpfps_powerdown_only()}) {
    const auto result = run_traced(tasks, policy, 5e6, 0.3);
    const ValidationReport report =
        validate_schedule(*result.trace, tasks);
    EXPECT_TRUE(report.ok()) << policy.name << ":\n" << report.to_string();
  }
}

// ---- negative cases: corrupt a genuine trace and expect detection ----

sim::Trace valid_trace(const TaskSet& tasks) {
  return *run_traced(tasks, core::SchedulerPolicy::fps(), 400.0).trace;
}

sim::Trace rebuild_with_segments(const sim::Trace& original,
                                 std::vector<sim::Segment> segments) {
  sim::Trace out;
  for (const sim::Segment& s : segments) out.add_segment(s);
  for (const sim::JobRecord& job : original.jobs()) out.add_job(job);
  return out;
}

TEST(Validator, DetectsWrongTaskInSegment) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Figure 2(a): [10,30) belongs to tau2; claim tau1 ran instead.
  for (sim::Segment& s : segments) {
    if (s.begin == 10.0 && s.task == 1) s.task = 0;
  }
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsPriorityInversion) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Swap the tasks of the first two running segments: tau2 before tau1
  // at t=0 is an inversion (tau1 pending, higher priority).
  ASSERT_GE(segments.size(), 2u);
  std::swap(segments[0].task, segments[1].task);
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsIdlingWithPendingWork) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Turn tau1's first segment into busy-wait idling: tau1 is pending.
  segments[0].mode = sim::ProcessorMode::kIdleBusyWait;
  segments[0].task = kNoTask;
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsWorkIntegralMismatch) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  // Pretend tau1's first segment ran at half speed: the job's recorded
  // 10 us of work no longer integrates.
  segments[0].ratio_begin = 0.5;
  segments[0].ratio_end = 0.5;
  const auto report =
      validate_schedule(rebuild_with_segments(original, segments), tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsInconsistentMissFlag) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  sim::Trace tampered;
  for (const sim::Segment& s : original.segments()) {
    tampered.add_segment(s);
  }
  bool first = true;
  for (sim::JobRecord job : original.jobs()) {
    if (first) {
      job.missed_deadline = true;  // Flag an on-time job as missed.
      first = false;
    }
    tampered.add_job(job);
  }
  const auto report = validate_schedule(tampered, tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsForgedReleaseTime) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  sim::Trace tampered;
  for (const sim::Segment& s : original.segments()) {
    tampered.add_segment(s);
  }
  bool first = true;
  for (sim::JobRecord job : original.jobs()) {
    if (first) {
      job.release += 7.0;  // Releases are deterministic: phase + k*T.
      first = false;
    }
    tampered.add_job(job);
  }
  const auto report = validate_schedule(tampered, tasks);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, ReportCapsViolationCount) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const sim::Trace original = valid_trace(tasks);
  auto segments = original.segments();
  for (sim::Segment& s : segments) {
    if (s.mode == sim::ProcessorMode::kRunning) s.ratio_begin = 0.5;
  }
  ValidatorOptions options;
  options.max_violations = 5;
  const auto report = validate_schedule(
      rebuild_with_segments(original, segments), tasks, options);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.violations.size(), 5u);
}

}  // namespace
}  // namespace lpfps::sched
