#include "sched/priority.h"

#include <gtest/gtest.h>

#include "sched/analysis.h"

namespace lpfps::sched {
namespace {

TEST(RateMonotonic, ShorterPeriodHigherPriority) {
  TaskSet tasks;
  tasks.add(make_task("slow", 100, 10.0));
  tasks.add(make_task("fast", 10, 1.0));
  tasks.add(make_task("mid", 50, 5.0));
  assign_rate_monotonic(tasks);
  EXPECT_EQ(tasks[1].priority, 0);  // fast.
  EXPECT_EQ(tasks[2].priority, 1);  // mid.
  EXPECT_EQ(tasks[0].priority, 2);  // slow.
}

TEST(RateMonotonic, TiesBreakByIndex) {
  TaskSet tasks;
  tasks.add(make_task("first", 50, 5.0));
  tasks.add(make_task("second", 50, 5.0));
  assign_rate_monotonic(tasks);
  EXPECT_LT(tasks[0].priority, tasks[1].priority);
}

TEST(RateMonotonic, PaperTable1Order) {
  TaskSet tasks;
  tasks.add(make_task("tau1", 50, 10.0));
  tasks.add(make_task("tau2", 80, 20.0));
  tasks.add(make_task("tau3", 100, 40.0));
  assign_rate_monotonic(tasks);
  EXPECT_EQ(tasks[0].priority, 0);
  EXPECT_EQ(tasks[1].priority, 1);
  EXPECT_EQ(tasks[2].priority, 2);
}

TEST(DeadlineMonotonic, ShorterDeadlineHigherPriority) {
  TaskSet tasks;
  tasks.add(make_task("a", 100, 90, 10.0, 10.0));
  tasks.add(make_task("b", 100, 30, 10.0, 10.0));
  tasks.add(make_task("c", 100, 60, 10.0, 10.0));
  assign_deadline_monotonic(tasks);
  EXPECT_EQ(tasks[1].priority, 0);
  EXPECT_EQ(tasks[2].priority, 1);
  EXPECT_EQ(tasks[0].priority, 2);
}

TEST(Audsley, FindsAssignmentForSchedulableSet) {
  TaskSet tasks;
  tasks.add(make_task("tau1", 50, 10.0));
  tasks.add(make_task("tau2", 80, 20.0));
  tasks.add(make_task("tau3", 100, 40.0));
  ASSERT_TRUE(assign_audsley_optimal(tasks));
  EXPECT_TRUE(tasks.priorities_are_unique());
  EXPECT_TRUE(is_schedulable_rta(tasks));
}

TEST(Audsley, AgreesWithDmWhenDmWorks) {
  // Constrained-deadline set where DM is optimal; Audsley must also
  // succeed (possibly with a different but valid ordering).
  TaskSet tasks;
  tasks.add(make_task("a", 100, 40, 10.0, 10.0));
  tasks.add(make_task("b", 150, 150, 30.0, 30.0));
  tasks.add(make_task("c", 300, 120, 20.0, 20.0));
  TaskSet dm = tasks;
  assign_deadline_monotonic(dm);
  ASSERT_TRUE(is_schedulable_rta(dm));
  ASSERT_TRUE(assign_audsley_optimal(tasks));
  EXPECT_TRUE(is_schedulable_rta(tasks));
}

TEST(Audsley, FailsForInfeasibleSet) {
  TaskSet tasks;
  tasks.add(make_task("a", 10, 6.0));
  tasks.add(make_task("b", 10, 6.0));  // U = 1.2: hopeless.
  TaskSet before = tasks;
  EXPECT_FALSE(assign_audsley_optimal(tasks));
  // Priorities untouched on failure.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[static_cast<TaskIndex>(i)].priority,
              before[static_cast<TaskIndex>(i)].priority);
  }
}

}  // namespace
}  // namespace lpfps::sched
