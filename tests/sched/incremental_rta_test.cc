// sched/incremental_rta.h — fixed-point reuse across mutations, checked
// against from-scratch analysis (which the class itself hosts as
// Mode::kFromScratch, and which tests here also cross-check against the
// free-standing sched::response_times()).
#include "sched/incremental_rta.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "sched/task.h"

namespace lpfps::sched {
namespace {

Task task(const char* name, std::int64_t period, Work wcet,
          Priority priority) {
  Task t = make_task(name, period, wcet);
  t.priority = priority;
  return t;
}

TaskSet three_tasks() {
  TaskSet tasks;
  tasks.add(task("hi", 100, 20.0, 0));
  tasks.add(task("mid", 200, 40.0, 1));
  tasks.add(task("lo", 400, 60.0, 2));
  return tasks;
}

/// Response times must equal a from-scratch analysis of the same set,
/// bitwise (the class contract; nullopt positions must agree too).
void expect_matches_scratch(const IncrementalRta& rta) {
  const auto scratch = response_times(rta.tasks());
  ASSERT_EQ(rta.response_times().size(), scratch.size());
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    const auto& inc = rta.response_times()[i];
    ASSERT_EQ(inc.has_value(), scratch[i].has_value()) << "task " << i;
    if (inc.has_value()) {
      // The seeded iterate lands on the same least fixed point the
      // approx-terminating reference converges to.
      EXPECT_NEAR(*inc, *scratch[i], 1e-6) << "task " << i;
    }
  }
}

TEST(IncrementalRta, InitialAnalysisMatchesScratch) {
  IncrementalRta rta(three_tasks());
  EXPECT_TRUE(rta.schedulable());
  expect_matches_scratch(rta);
  // Classic hand-check: R_hi = 20, R_mid = 60, R_lo = 140.
  EXPECT_DOUBLE_EQ(*rta.response_times()[0], 20.0);
  EXPECT_DOUBLE_EQ(*rta.response_times()[1], 60.0);
  EXPECT_DOUBLE_EQ(*rta.response_times()[2], 140.0);
}

TEST(IncrementalRta, AddOnlyReanalyzesLowerPriority) {
  IncrementalRta rta(three_tasks());
  const auto before = rta.stats();
  rta.add_task(task("new", 300, 10.0, 3));  // Lowest priority.
  // Only the newcomer runs; the existing three keep their values.
  EXPECT_EQ(rta.stats().tasks_reanalyzed - before.tasks_reanalyzed, 1);
  EXPECT_EQ(rta.stats().tasks_kept - before.tasks_kept, 3);
  expect_matches_scratch(rta);

  const auto mid = rta.stats();
  rta.add_task(task("top", 50, 5.0, -1));  // Highest priority.
  // Everyone below gains interference: 1 scratch + 4 seeded resumes.
  EXPECT_EQ(rta.stats().tasks_reanalyzed - mid.tasks_reanalyzed, 5);
  EXPECT_EQ(rta.stats().tasks_seeded - mid.tasks_seeded, 4);
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, RemoveRecomputesOnlyLowerPriority) {
  IncrementalRta rta(three_tasks());
  const auto before = rta.stats();
  rta.remove_task(1);  // "mid".
  EXPECT_EQ(rta.tasks().size(), 2u);
  // "hi" kept, "lo" recomputed from scratch.
  EXPECT_EQ(rta.stats().tasks_reanalyzed - before.tasks_reanalyzed, 1);
  EXPECT_EQ(rta.stats().tasks_kept - before.tasks_kept, 1);
  EXPECT_EQ(rta.stats().tasks_seeded - before.tasks_seeded, 0);
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, MutateGrowOnlyResumesFromOldFixedPoint) {
  IncrementalRta rta(three_tasks());
  const auto before = rta.stats();
  rta.mutate_task(0, task("hi", 100, 25.0, 0));  // WCET up: grow-only.
  // Mutated task from scratch; mid and lo resume seeded.
  EXPECT_EQ(rta.stats().tasks_reanalyzed - before.tasks_reanalyzed, 3);
  EXPECT_EQ(rta.stats().tasks_seeded - before.tasks_seeded, 2);
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, MutateShrinkRecomputesAffected) {
  IncrementalRta rta(three_tasks());
  const auto before = rta.stats();
  rta.mutate_task(0, task("hi", 100, 10.0, 0));  // WCET down.
  EXPECT_EQ(rta.stats().tasks_reanalyzed - before.tasks_reanalyzed, 3);
  EXPECT_EQ(rta.stats().tasks_seeded - before.tasks_seeded, 0);
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, MutateOwnWcetPastOldResponseTime) {
  // Regression guard for the seed clamp: a lone task's old R equals its
  // WCET; raising the WCET must not trip a seed-below-C precondition.
  TaskSet tasks;
  tasks.add(task("solo", 100, 5.0, 0));
  IncrementalRta rta(std::move(tasks));
  EXPECT_DOUBLE_EQ(*rta.response_times()[0], 5.0);
  rta.mutate_task(0, task("solo", 100, 8.0, 0));
  EXPECT_DOUBLE_EQ(*rta.response_times()[0], 8.0);
}

TEST(IncrementalRta, InvisibleMutationKeepsEveryOtherTask) {
  IncrementalRta rta(three_tasks());
  Task t = rta.tasks()[1];
  t.bcet = t.wcet * 0.5;  // bcet/phase/name do not affect RTA.
  t.phase = 50;
  const auto before = rta.stats();
  rta.mutate_task(1, std::move(t));
  EXPECT_EQ(rta.stats().tasks_reanalyzed - before.tasks_reanalyzed, 1);
  EXPECT_EQ(rta.stats().tasks_kept - before.tasks_kept, 2);
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, DivergentStaysDivergentUnderGrowth) {
  TaskSet tasks;
  tasks.add(task("hog", 100, 80.0, 0));
  tasks.add(task("starved", 150, 40.0, 1));  // 80*2 + 40 > 150: diverges.
  IncrementalRta rta(std::move(tasks));
  EXPECT_FALSE(rta.schedulable());
  ASSERT_FALSE(rta.response_times()[1].has_value());
  const auto before = rta.stats();
  rta.mutate_task(0, task("hog", 100, 85.0, 0));  // Strictly more load.
  EXPECT_EQ(rta.stats().tasks_skipped - before.tasks_skipped, 1);
  EXPECT_FALSE(rta.response_times()[1].has_value());
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, FromScratchModeMatchesIncrementalBitwise) {
  // The differential property in miniature: a random mutation walk,
  // compared bitwise after every step.
  Rng rng(0xfeedbeef);
  IncrementalRta inc(three_tasks(), IncrementalRta::Mode::kIncremental);
  IncrementalRta scratch(three_tasks(), IncrementalRta::Mode::kFromScratch);
  Priority next_priority = 10;
  for (int step = 0; step < 60; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 2));
    if (op == 0 || inc.tasks().size() <= 1) {
      const Task t = task("w", rng.uniform_int(5, 50) * 10,
                          rng.uniform(1.0, 40.0), next_priority++);
      inc.add_task(t);
      scratch.add_task(t);
    } else if (op == 1) {
      const TaskIndex victim = static_cast<TaskIndex>(
          rng.uniform_int(0, static_cast<std::int64_t>(inc.tasks().size()) - 1));
      inc.remove_task(victim);
      scratch.remove_task(victim);
    } else {
      const TaskIndex victim = static_cast<TaskIndex>(
          rng.uniform_int(0, static_cast<std::int64_t>(inc.tasks().size()) - 1));
      Task t = inc.tasks()[victim];
      t.wcet = std::min(static_cast<double>(t.deadline),
                        t.wcet * rng.uniform(0.5, 1.5));
      t.bcet = std::min(t.bcet, t.wcet);
      inc.mutate_task(victim, t);
      scratch.mutate_task(victim, t);
    }
    ASSERT_EQ(inc.schedulable(), scratch.schedulable()) << "step " << step;
    ASSERT_EQ(inc.response_times().size(), scratch.response_times().size());
    for (std::size_t i = 0; i < inc.response_times().size(); ++i) {
      const auto& a = inc.response_times()[i];
      const auto& b = scratch.response_times()[i];
      ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
      if (a.has_value()) {
        // Bitwise, not approximate: the exact-fixed-point contract.
        ASSERT_EQ(*a, *b) << "step " << step << " task " << i;
      }
    }
  }
  // The incremental arm must actually have been incremental.
  EXPECT_GT(inc.stats().tasks_kept, 0);
  EXPECT_GT(inc.stats().tasks_seeded, 0);
  EXPECT_LT(inc.stats().tasks_reanalyzed, scratch.stats().tasks_reanalyzed);
}

TEST(IncrementalRta, ResetReplacesState) {
  IncrementalRta rta(three_tasks());
  TaskSet other;
  other.add(task("x", 100, 30.0, 0));
  IncrementalRta reference(other);
  rta.reset(other, reference.response_times());
  EXPECT_EQ(rta.tasks().size(), 1u);
  EXPECT_DOUBLE_EQ(*rta.response_times()[0], 30.0);
  expect_matches_scratch(rta);
}

TEST(IncrementalRta, RejectsDuplicatePriorities) {
  IncrementalRta rta(three_tasks());
  EXPECT_THROW(rta.add_task(task("dup", 100, 1.0, 1)), std::logic_error);
  EXPECT_THROW(rta.mutate_task(0, task("hi", 100, 20.0, 2)),
               std::logic_error);
}

}  // namespace
}  // namespace lpfps::sched
