#include "sched/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sched/priority.h"
#include "workloads/avionics.h"
#include "workloads/cnc.h"
#include "workloads/example.h"
#include "workloads/flight.h"
#include "workloads/ins.h"

namespace lpfps::sched {
namespace {

TEST(LiuLayland, KnownBounds) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 2 * (std::sqrt(2.0) - 1), 1e-12);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  // n -> infinity: ln 2.
  EXPECT_NEAR(liu_layland_bound(100000), std::log(2.0), 1e-4);
}

TEST(LiuLayland, PaperExampleExceedsBoundButIsSchedulable) {
  // Table 1's utilization 0.85 exceeds the 3-task bound (0.7798); the
  // LL test is sufficient, not necessary — RTA must still accept it.
  const TaskSet tasks = lpfps::workloads::example_table1();
  EXPECT_FALSE(passes_utilization_bound(tasks));
  EXPECT_TRUE(is_schedulable_rta(tasks));
}

TEST(ResponseTime, HighestPriorityTaskIsItsWcet) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const auto r = response_time(tasks, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 10.0);
}

TEST(ResponseTime, PaperExampleExactValues) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  // tau2: C2 + ceil(R/50)*C1: R = 20+10 = 30.
  const auto r2 = response_time(tasks, 1);
  ASSERT_TRUE(r2.has_value());
  EXPECT_DOUBLE_EQ(*r2, 30.0);
  // tau3 finishes exactly at its deadline horizon minus nothing: the
  // paper says the set "just meets" schedulability.  R3 = 40 + 2*10 +
  // 20 = 80... iterating: R=40 -> 40+10+20=70 -> 70+2*10+20 = 80 -> 80.
  const auto r3 = response_time(tasks, 2);
  ASSERT_TRUE(r3.has_value());
  EXPECT_DOUBLE_EQ(*r3, 80.0);
}

TEST(ResponseTime, JustMeetsSchedulability) {
  // Increasing tau2's WCET slightly makes tau3 miss (paper §2.3).
  TaskSet tasks = lpfps::workloads::example_table1();
  tasks.at(1).wcet += 1.0;
  tasks.at(1).bcet = tasks.at(1).wcet;
  EXPECT_FALSE(is_schedulable_rta(tasks));
}

TEST(ResponseTime, DivergentWhenOverloaded) {
  TaskSet tasks;
  tasks.add(make_task("hog", 10, 8.0));
  tasks.add(make_task("victim", 20, 10.0));
  assign_rate_monotonic(tasks);
  EXPECT_FALSE(response_time(tasks, 1).has_value());
  EXPECT_FALSE(is_schedulable_rta(tasks));
}

TEST(ResponseTimes, AllTasksReported) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  const auto all = response_times(tasks);
  ASSERT_EQ(all.size(), 3u);
  for (const auto& r : all) EXPECT_TRUE(r.has_value());
}

TEST(Edf, UtilizationTest) {
  const TaskSet tasks = lpfps::workloads::example_table1();
  EXPECT_TRUE(is_schedulable_edf(tasks));
}

TEST(PaperWorkloads, AllSchedulableUnderRm) {
  EXPECT_TRUE(is_schedulable_rta(lpfps::workloads::example_table1()));
  EXPECT_TRUE(is_schedulable_rta(lpfps::workloads::avionics()));
  EXPECT_TRUE(is_schedulable_rta(lpfps::workloads::ins()));
  EXPECT_TRUE(is_schedulable_rta(lpfps::workloads::flight_control()));
  EXPECT_TRUE(is_schedulable_rta(lpfps::workloads::cnc()));
}

TEST(StaticIdle, PaperExample) {
  // H = 400, U = 0.85 -> idle 60 us per hyperperiod.
  const TaskSet tasks = lpfps::workloads::example_table1();
  EXPECT_NEAR(static_idle_time_per_hyperperiod(tasks), 60.0, 1e-9);
}

TEST(StaticIdle, ZeroForFullUtilization) {
  TaskSet tasks;
  tasks.add(make_task("a", 10, 5.0));
  tasks.add(make_task("b", 20, 10.0));
  assign_rate_monotonic(tasks);
  EXPECT_NEAR(static_idle_time_per_hyperperiod(tasks), 0.0, 1e-9);
}

}  // namespace
}  // namespace lpfps::sched
