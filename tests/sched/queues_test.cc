#include "sched/queues.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::sched {
namespace {

TEST(RunQueue, OrderedByPriority) {
  RunQueue queue;
  queue.insert({2, 5});
  queue.insert({0, 1});
  queue.insert({1, 3});
  EXPECT_EQ(queue.head().task, 0);
  EXPECT_EQ(queue.pop_head().task, 0);
  EXPECT_EQ(queue.pop_head().task, 1);
  EXPECT_EQ(queue.pop_head().task, 2);
  EXPECT_TRUE(queue.empty());
}

TEST(RunQueue, ReserveKeepsSemanticsAndCapacity) {
  RunQueue queue;
  queue.reserve(8);
  for (TaskIndex i = 0; i < 8; ++i) queue.insert({i, 8 - i});
  EXPECT_EQ(queue.size(), 8u);
  EXPECT_EQ(queue.head().task, 7);  // Lowest priority value wins.
}

TEST(DelayQueue, ReserveKeepsSemantics) {
  DelayQueue queue;
  queue.reserve(4);
  queue.insert({0, 30.0});
  queue.insert({1, 10.0});
  EXPECT_EQ(queue.head().task, 1);
  ASSERT_TRUE(queue.next_release().has_value());
  EXPECT_DOUBLE_EQ(*queue.next_release(), 10.0);
}

TEST(RunQueue, HeadOnEmptyThrows) {
  RunQueue queue;
  EXPECT_THROW(queue.head(), std::logic_error);
  EXPECT_THROW(queue.pop_head(), std::logic_error);
}

TEST(RunQueue, EntriesExposedInOrder) {
  RunQueue queue;
  queue.insert({5, 9});
  queue.insert({3, 2});
  ASSERT_EQ(queue.entries().size(), 2u);
  EXPECT_EQ(queue.entries()[0].task, 3);
  EXPECT_EQ(queue.entries()[1].task, 5);
}

TEST(RunQueue, RejectsInvalidTask) {
  RunQueue queue;
  EXPECT_THROW(queue.insert({kNoTask, 0}), std::logic_error);
}

TEST(DelayQueue, OrderedByReleaseTime) {
  DelayQueue queue;
  queue.insert({0, 300.0});
  queue.insert({1, 100.0});
  queue.insert({2, 200.0});
  EXPECT_EQ(queue.head().task, 1);
  EXPECT_DOUBLE_EQ(*queue.next_release(), 100.0);
  EXPECT_EQ(queue.pop_head().task, 1);
  EXPECT_EQ(queue.pop_head().task, 2);
  EXPECT_EQ(queue.pop_head().task, 0);
}

TEST(DelayQueue, TiesBreakByTaskIndex) {
  DelayQueue queue;
  queue.insert({7, 100.0});
  queue.insert({2, 100.0});
  EXPECT_EQ(queue.pop_head().task, 2);
  EXPECT_EQ(queue.pop_head().task, 7);
}

TEST(DelayQueue, NextReleaseEmptyIsNullopt) {
  DelayQueue queue;
  EXPECT_FALSE(queue.next_release().has_value());
}

TEST(DelayQueue, ShiftReleaseTimesTranslatesUniformly) {
  // The engine's steady-state fast-forward moves every pending release
  // forward by a whole number of hyperperiods: a uniform translation
  // that must preserve ordering and tie-breaks exactly.
  DelayQueue queue;
  queue.insert({3, 250.0});
  queue.insert({0, 100.0});
  queue.insert({1, 100.0});
  queue.shift_release_times(1000.0);
  ASSERT_TRUE(queue.next_release().has_value());
  EXPECT_DOUBLE_EQ(*queue.next_release(), 1100.0);
  EXPECT_EQ(queue.pop_head().task, 0);  // Same-release ties keep order.
  EXPECT_EQ(queue.pop_head().task, 1);
  const DelayEntry last = queue.pop_head();
  EXPECT_EQ(last.task, 3);
  EXPECT_DOUBLE_EQ(last.release_time, 1250.0);
  EXPECT_TRUE(queue.empty());
}

TEST(PaperFigure3a, QueueStateAtTimeZero) {
  // At t=0 all three tasks are released; tau1 becomes active, so the run
  // queue holds tau2 then tau3 (priority order) and the delay queue is
  // empty (paper Figure 3(a) shows tau2, tau3 in the run queue).
  RunQueue run;
  run.insert({1, 1});  // tau2.
  run.insert({2, 2});  // tau3.
  EXPECT_EQ(run.entries()[0].task, 1);
  EXPECT_EQ(run.entries()[1].task, 2);
}

}  // namespace
}  // namespace lpfps::sched
