#include <gtest/gtest.h>

#include "core/static_slowdown.h"
#include "sched/analysis.h"
#include "sched/priority.h"
#include "workloads/example.h"
#include "workloads/registry.h"

namespace lpfps::sched {
namespace {

TaskSet table1() { return lpfps::workloads::example_table1(); }

TEST(ExtendedRta, ZeroExtrasMatchesPlainRta) {
  const TaskSet tasks = table1();
  const AnalysisExtras extras = AnalysisExtras::zero(tasks);
  for (TaskIndex i = 0; i < 3; ++i) {
    const auto plain = response_time(tasks, i);
    const auto extended = response_time_extended(tasks, i, extras);
    ASSERT_TRUE(plain.has_value());
    ASSERT_TRUE(extended.has_value());
    EXPECT_DOUBLE_EQ(*plain, *extended) << "task " << i;
  }
}

TEST(ExtendedRta, BlockingAddsDirectly) {
  // tau1 blocked for 5 us by a lower-priority critical section:
  // R1 = 10 + 5.
  const TaskSet tasks = table1();
  AnalysisExtras extras = AnalysisExtras::zero(tasks);
  extras.blocking[0] = 5.0;
  const auto r = response_time_extended(tasks, 0, extras);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 15.0);
}

TEST(ExtendedRta, OwnJitterAddsToResponse) {
  const TaskSet tasks = table1();
  AnalysisExtras extras = AnalysisExtras::zero(tasks);
  extras.jitter[0] = 4.0;
  const auto r = response_time_extended(tasks, 0, extras);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 14.0);  // w = 10, R = w + J.
}

TEST(ExtendedRta, HigherPriorityJitterAddsInterference) {
  // tau2 sees tau1 with jitter 25: within w=30, ceil((30+25)/50) = 2
  // tau1 jobs instead of 1: R2 = 20 + 2*10 = 40.
  const TaskSet tasks = table1();
  AnalysisExtras extras = AnalysisExtras::zero(tasks);
  extras.jitter[0] = 25.0;
  const auto r = response_time_extended(tasks, 1, extras);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 40.0);
}

TEST(ExtendedRta, BlockingCanBreakTightSets) {
  // tau3 has zero slack in Table 1; any blocking on it diverges.
  const TaskSet tasks = table1();
  AnalysisExtras extras = AnalysisExtras::zero(tasks);
  extras.blocking[2] = 1.0;
  EXPECT_FALSE(response_time_extended(tasks, 2, extras).has_value());
  EXPECT_FALSE(is_schedulable_extended(tasks, extras));
}

TEST(ExtendedRta, MismatchedExtrasRejected) {
  const TaskSet tasks = table1();
  AnalysisExtras extras;  // Wrong sizes.
  EXPECT_THROW(response_time_extended(tasks, 0, extras), std::logic_error);
  extras = AnalysisExtras::zero(tasks);
  extras.jitter[1] = -1.0;
  EXPECT_THROW(response_time_extended(tasks, 0, extras), std::logic_error);
}

TEST(CriticalScaling, Table1JustMeetsSchedulability) {
  // The paper's §2.3 claim, quantified: the example set tolerates no
  // WCET growth (alpha ~= 1.0).
  const double alpha = critical_scaling_factor(table1());
  EXPECT_NEAR(alpha, 1.0, 1e-4);
}

TEST(CriticalScaling, HarmonicSetScalesToCapacity) {
  TaskSet tasks;
  tasks.add(make_task("a", 100, 25.0));
  tasks.add(make_task("b", 200, 50.0));  // U = 0.5, harmonic.
  assign_rate_monotonic(tasks);
  EXPECT_NEAR(critical_scaling_factor(tasks), 2.0, 1e-4);
}

TEST(CriticalScaling, UnschedulableSetIsBelowOne) {
  TaskSet tasks;
  tasks.add(make_task("hog", 10, 8.0));
  tasks.add(make_task("victim", 20, 10.0));
  assign_rate_monotonic(tasks);
  const double alpha = critical_scaling_factor(tasks);
  EXPECT_LT(alpha, 1.0);
  EXPECT_GT(alpha, 0.0);
}

TEST(CriticalScaling, AgreesWithMinStaticRatioReciprocal) {
  // Running at constant ratio r is the same as scaling every WCET by
  // 1/r, so on a continuous frequency table the minimal static ratio
  // must equal 1/alpha.
  for (const auto& w : lpfps::workloads::paper_workloads()) {
    const double alpha = critical_scaling_factor(w.tasks, 1e-7);
    ASSERT_GE(alpha, 1.0) << w.name;
    const auto ratio = lpfps::core::min_feasible_static_ratio(
        w.tasks, lpfps::power::FrequencyTable::continuous(1.0, 100.0));
    ASSERT_TRUE(ratio.has_value()) << w.name;
    EXPECT_NEAR(*ratio, 1.0 / alpha, 1e-4) << w.name;
  }
}

TEST(CriticalScaling, PaperWorkloadHeadroomOrdering) {
  // CNC (U = 0.445) has far more WCET headroom than Avionics (U = .85).
  const double cnc = critical_scaling_factor(
      lpfps::workloads::workload_by_name("CNC").tasks);
  const double avionics = critical_scaling_factor(
      lpfps::workloads::workload_by_name("Avionics").tasks);
  EXPECT_GT(cnc, avionics);
  EXPECT_GT(cnc, 1.8);
  EXPECT_LT(avionics, 1.3);
}

}  // namespace
}  // namespace lpfps::sched
