#include "sched/task.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lpfps::sched {
namespace {

TEST(Task, ImplicitDeadlineConstructor) {
  const Task t = make_task("tau1", 50, 10.0);
  EXPECT_EQ(t.period, 50);
  EXPECT_EQ(t.deadline, 50);
  EXPECT_DOUBLE_EQ(t.wcet, 10.0);
  EXPECT_DOUBLE_EQ(t.bcet, 10.0);
  EXPECT_EQ(t.phase, 0);
}

TEST(Task, Utilization) {
  const Task t = make_task("t", 100, 25.0);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.25);
}

TEST(Task, FullConstructorValidates) {
  const Task t = make_task("t", 100, 80, 20.0, 5.0, 10);
  EXPECT_EQ(t.deadline, 80);
  EXPECT_DOUBLE_EQ(t.bcet, 5.0);
  EXPECT_EQ(t.phase, 10);
}

TEST(Task, RejectsEmptyName) {
  EXPECT_THROW(make_task("", 100, 10.0), std::logic_error);
}

TEST(Task, RejectsNonPositivePeriod) {
  EXPECT_THROW(make_task("t", 0, 10.0), std::logic_error);
  EXPECT_THROW(make_task("t", -5, 10.0), std::logic_error);
}

TEST(Task, RejectsNonPositiveWcet) {
  EXPECT_THROW(make_task("t", 100, 100, 0.0, 0.0), std::logic_error);
}

TEST(Task, RejectsBcetAboveWcet) {
  EXPECT_THROW(make_task("t", 100, 100, 10.0, 11.0), std::logic_error);
}

TEST(Task, RejectsWcetAboveDeadline) {
  EXPECT_THROW(make_task("t", 100, 50, 60.0, 60.0), std::logic_error);
}

TEST(Task, RejectsNegativePhase) {
  EXPECT_THROW(make_task("t", 100, 100, 10.0, 10.0, -1),
               std::logic_error);
}

}  // namespace
}  // namespace lpfps::sched
