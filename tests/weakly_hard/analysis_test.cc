// Weakly-hard schedulability analysis: the (m,k) interference bound,
// degraded-mode utilization, and the degraded RTA admission test
// (docs/WEAKLY_HARD.md).
#include "weakly_hard/analysis.h"

#include <gtest/gtest.h>

#include "sched/analysis.h"
#include "sched/priority.h"
#include "sched/task.h"

namespace lpfps::weakly_hard {
namespace {

TEST(MaxMetJobs, MatchesTheCyclicPatternBound) {
  // floor(n/k)*m + min(n mod k, m).
  EXPECT_EQ(max_met_jobs(0, 2, 3), 0);
  EXPECT_EQ(max_met_jobs(1, 2, 3), 1);
  EXPECT_EQ(max_met_jobs(2, 2, 3), 2);
  EXPECT_EQ(max_met_jobs(3, 2, 3), 2);
  EXPECT_EQ(max_met_jobs(7, 2, 3), 5);
  // Skip-over form (s-1, s): at most every s-th job is shed.
  EXPECT_EQ(max_met_jobs(4, 1, 2), 2);
  EXPECT_EQ(max_met_jobs(5, 1, 2), 3);
}

TEST(MaxMetJobs, HardTasksContributeEveryJob) {
  EXPECT_EQ(max_met_jobs(9, 0, 0), 9);
}

sched::TaskSet overloaded_pair() {
  // Nominal utilization 0.6 + 0.45 = 1.05 > 1: hard-infeasible.  The
  // high-priority task is (1,2)-firm, so in degraded mode it runs every
  // other job and the set fits.
  sched::TaskSet tasks;
  tasks.add(sched::with_mk_constraint(sched::make_task("firm", 10, 6.0),
                                      1, 2));
  tasks.add(sched::make_task("hard", 20, 9.0));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(WeaklyHardUtilization, ScalesFirmTasksByMOverK) {
  const sched::TaskSet tasks = overloaded_pair();
  EXPECT_GT(tasks.utilization(), 1.0);
  // 0.6 * 1/2 + 0.45 = 0.75.
  EXPECT_NEAR(weakly_hard_utilization(tasks), 0.75, 1e-12);
}

TEST(DegradedResponseTime, ReducesToPlainRtaWithoutConstraints) {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("a", 10, 3.0));
  tasks.add(sched::make_task("b", 20, 5.0));
  sched::assign_rate_monotonic(tasks);
  for (TaskIndex i = 0; i < 2; ++i) {
    const auto degraded = degraded_response_time(tasks, i);
    const auto plain = sched::response_time(tasks, i);
    ASSERT_TRUE(degraded.has_value());
    ASSERT_TRUE(plain.has_value());
    EXPECT_DOUBLE_EQ(*degraded, *plain);
  }
}

TEST(DegradedResponseTime, CountsOnlyMandatoryHigherPriorityJobs) {
  const sched::TaskSet tasks = overloaded_pair();
  // Hard task: own 9 + one mandatory firm job per 2 periods.
  // R = 9 + 6 = 15 (ceil(15/10) = 2 releases, max_met(2,1,2) = 1).
  const auto response = degraded_response_time(tasks, 1);
  ASSERT_TRUE(response.has_value());
  EXPECT_NEAR(*response, 15.0, 1e-9);
}

TEST(IsSchedulableWeaklyHardRta, AdmitsOverloadedSetHardRtaRejects) {
  const sched::TaskSet tasks = overloaded_pair();
  EXPECT_FALSE(sched::is_schedulable_rta(tasks));
  EXPECT_TRUE(is_schedulable_weakly_hard_rta(tasks));
}

TEST(IsSchedulableWeaklyHardRta, RejectsWhenDegradedDemandStillTooHigh) {
  // Even shedding every permitted job leaves 0.9 + 0.45 ... the firm
  // task at (3,4) sheds only a quarter: 0.9 * 3/4 + 0.45 > 1.
  sched::TaskSet tasks;
  tasks.add(sched::with_mk_constraint(sched::make_task("firm", 10, 9.0),
                                      3, 4));
  tasks.add(sched::make_task("hard", 20, 9.0));
  sched::assign_rate_monotonic(tasks);
  EXPECT_FALSE(is_schedulable_weakly_hard_rta(tasks));
}

}  // namespace
}  // namespace lpfps::weakly_hard
