// WindowHistory bitmask mechanics and SkipGovernor decision/settlement
// accounting (docs/WEAKLY_HARD.md).
#include "weakly_hard/window.h"

#include <gtest/gtest.h>

#include "sched/priority.h"
#include "sched/task.h"
#include "weakly_hard/governor.h"

namespace lpfps::weakly_hard {
namespace {

TEST(WindowHistory, PrehistoryCountsAsMetAndUnskipped) {
  const WindowHistory history;
  EXPECT_EQ(history.met_in_last(1), 1);
  EXPECT_EQ(history.met_in_last(64), 64);
  EXPECT_FALSE(history.skip_in_last(64));
  EXPECT_EQ(history.settled, 0);
}

TEST(WindowHistory, RecordShiftsMostRecentIntoBitZero) {
  WindowHistory history;
  history.record(false, false);  // A miss.
  EXPECT_EQ(history.met_in_last(1), 0);
  EXPECT_EQ(history.met_in_last(2), 1);  // Prehistory behind it.
  history.record(true, false);
  EXPECT_EQ(history.met_in_last(1), 1);
  EXPECT_EQ(history.met_in_last(2), 1);
  EXPECT_EQ(history.settled, 2);
}

TEST(WindowHistory, SkipInLastSeesOnlySkips) {
  WindowHistory history;
  history.record(false, false);  // Miss, not a skip.
  EXPECT_FALSE(history.skip_in_last(1));
  history.record(false, true);  // Policy skip.
  EXPECT_TRUE(history.skip_in_last(1));
  history.record(true, false);
  EXPECT_FALSE(history.skip_in_last(1));
  EXPECT_TRUE(history.skip_in_last(2));
  EXPECT_FALSE(history.skip_in_last(0));  // Vacuous.
}

TEST(WindowHistory, MaySkipMkCountsPredecessorWindow) {
  // (m,k) = (1,3): the window ending at the skipped job needs >= 1 met
  // among its k-1 = 2 predecessors.
  WindowHistory history;
  EXPECT_TRUE(history.may_skip(1, 3, 0));  // Prehistory all met.
  history.record(false, true);             // Skip #1.
  EXPECT_TRUE(history.may_skip(1, 3, 0));  // [prehistory met, skip].
  history.record(false, true);             // Skip #2.
  EXPECT_FALSE(history.may_skip(1, 3, 0));  // Both predecessors failed.
  history.record(true, false);             // A met job restores budget.
  EXPECT_TRUE(history.may_skip(1, 3, 0));
}

TEST(WindowHistory, MaySkipTightMkNeverPermits) {
  // (m,k) = (k,k) tolerates no failure at all.
  const WindowHistory history;
  EXPECT_FALSE(history.may_skip(3, 3, 0));
}

TEST(WindowHistory, MaySkipSkipOverForbidsAdjacentSkips) {
  // skip_s = 2: no skip among the s-1 = 1 predecessor.
  WindowHistory history;
  EXPECT_TRUE(history.may_skip(1, 2, 2));
  history.record(false, true);
  EXPECT_FALSE(history.may_skip(1, 2, 2));  // Previous job was a skip.
  history.record(false, false);             // A *miss* is not a skip...
  EXPECT_TRUE(history.may_skip(1, 2, 2));   // ...so skipping is allowed.
}

TEST(WindowHistory, WindowSlack) {
  WindowHistory history;
  EXPECT_EQ(history.window_slack(2, 4), 2);  // All-met: k - m.
  history.record(false, false);
  history.record(false, true);
  EXPECT_EQ(history.window_slack(2, 4), 0);
  history.record(false, false);
  EXPECT_EQ(history.window_slack(2, 4), -1);  // Violated.
}

sched::TaskSet governor_tasks() {
  sched::TaskSet tasks;
  tasks.add(sched::make_task("hard", 100, 10.0));
  tasks.add(sched::with_mk_constraint(sched::make_task("firm", 200, 20.0),
                                      1, 2));
  tasks.add(sched::with_skip_parameter(sched::make_task("skippy", 400, 30.0),
                                       2));
  sched::assign_rate_monotonic(tasks);
  return tasks;
}

TEST(SkipGovernor, SkippabilityFollowsConstraints) {
  SkipGovernor governor;
  governor.reset(governor_tasks());
  EXPECT_FALSE(governor.skippable(0));
  EXPECT_TRUE(governor.skippable(1));
  EXPECT_TRUE(governor.skippable(2));
}

TEST(SkipGovernor, ShouldSkipPolicyMatrix) {
  SkipGovernor governor;
  governor.reset(governor_tasks());
  // kNever: inert even with the window wide open.
  EXPECT_FALSE(governor.should_skip(1, SkipPolicy::kNever, true));
  // kOverload: gated on the latch.
  EXPECT_FALSE(governor.should_skip(1, SkipPolicy::kOverload, false));
  EXPECT_TRUE(governor.should_skip(1, SkipPolicy::kOverload, true));
  // kAlways: whenever the window permits.
  EXPECT_TRUE(governor.should_skip(1, SkipPolicy::kAlways, false));
  // Hard tasks are never skipped under any policy.
  EXPECT_FALSE(governor.should_skip(0, SkipPolicy::kAlways, true));
}

TEST(SkipGovernor, SettleCountsSkipsViolationsAndSlack) {
  SkipGovernor governor;
  governor.reset(governor_tasks());
  // Task 1 is (1,2)-firm.  met, skip, skip: the second skip closes a
  // window with zero met jobs.
  governor.settle(1, true, false);
  governor.settle(1, false, true);
  EXPECT_EQ(governor.jobs_skipped_weakly(), 1);
  EXPECT_EQ(governor.mk_violations(), 0);
  governor.settle(1, false, true);
  EXPECT_EQ(governor.jobs_skipped_weakly(), 2);
  EXPECT_EQ(governor.mk_violations(), 1);
  EXPECT_EQ(governor.worst_window_slack()[1], -1);
  // Hard task settlements are no-ops.
  governor.settle(0, false, false);
  EXPECT_EQ(governor.mk_violations(), 1);
  EXPECT_EQ(governor.worst_window_slack()[0], SkipGovernor::kHardTaskSlack);
}

TEST(SkipGovernor, ResetClearsHistoryAndCounters) {
  SkipGovernor governor;
  governor.reset(governor_tasks());
  governor.settle(1, false, true);
  governor.settle(1, false, true);
  ASSERT_GT(governor.mk_violations(), 0);
  governor.reset(governor_tasks());
  EXPECT_EQ(governor.jobs_skipped_weakly(), 0);
  EXPECT_EQ(governor.mk_violations(), 0);
  EXPECT_TRUE(governor.skip_permitted(1));  // Prehistory restored.
}

}  // namespace
}  // namespace lpfps::weakly_hard
