#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sched/analysis.h"
#include "workloads/avionics.h"
#include "workloads/cnc.h"
#include "workloads/example.h"
#include "workloads/flight.h"
#include "workloads/ins.h"
#include "workloads/registry.h"

namespace lpfps::workloads {
namespace {

TEST(ExampleTable1, MatchesPaperParameters) {
  const sched::TaskSet tasks = example_table1();
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].period, 50);
  EXPECT_DOUBLE_EQ(tasks[0].wcet, 10.0);
  EXPECT_EQ(tasks[1].period, 80);
  EXPECT_DOUBLE_EQ(tasks[1].wcet, 20.0);
  EXPECT_EQ(tasks[2].period, 100);
  EXPECT_DOUBLE_EQ(tasks[2].wcet, 40.0);
  EXPECT_TRUE(tasks.implicit_deadlines());
  // Priorities in row order (paper Table 1 fifth column).
  EXPECT_EQ(tasks[0].priority, 0);
  EXPECT_EQ(tasks[1].priority, 1);
  EXPECT_EQ(tasks[2].priority, 2);
}

TEST(Table2, AvionicsShape) {
  const sched::TaskSet tasks = avionics();
  EXPECT_EQ(tasks.size(), 17u);  // Paper Table 2: 17 tasks.
  EXPECT_DOUBLE_EQ(tasks.min_wcet(), 1'000.0);
  EXPECT_DOUBLE_EQ(tasks.max_wcet(), 9'000.0);
  EXPECT_LT(tasks.utilization(), 1.0);
  EXPECT_GT(tasks.utilization(), 0.7);  // Heavily loaded platform.
}

TEST(Table2, InsShape) {
  const sched::TaskSet tasks = ins();
  EXPECT_EQ(tasks.size(), 6u);
  EXPECT_DOUBLE_EQ(tasks.min_wcet(), 1'180.0);
  EXPECT_DOUBLE_EQ(tasks.max_wcet(), 100'280.0);
  EXPECT_NEAR(tasks.utilization(), 0.73, 0.02);  // Paper: 0.736.
}

TEST(Table2, InsUtilizationSkew) {
  // Paper §4: one task with period 2,500 us holds utilization 0.472; all
  // others are between 0.02 and ~0.1.
  const sched::TaskSet tasks = ins();
  int dominant = 0;
  for (const sched::Task& t : tasks.tasks()) {
    if (t.period == 2'500) {
      EXPECT_NEAR(t.utilization(), 0.472, 1e-3);
      EXPECT_EQ(t.priority, 0);  // Highest rate -> highest RM priority.
      ++dominant;
    } else {
      EXPECT_GE(t.utilization(), 0.015);
      EXPECT_LE(t.utilization(), 0.11);
    }
  }
  EXPECT_EQ(dominant, 1);
}

TEST(Table2, InsHyperperiodIsFiveSeconds) {
  EXPECT_EQ(ins().hyperperiod(), 5'000'000);
}

TEST(Table2, FlightControlShape) {
  const sched::TaskSet tasks = flight_control();
  EXPECT_EQ(tasks.size(), 6u);
  EXPECT_DOUBLE_EQ(tasks.min_wcet(), 10'000.0);
  EXPECT_DOUBLE_EQ(tasks.max_wcet(), 60'000.0);
  EXPECT_NEAR(tasks.utilization(), 0.735, 0.01);
}

TEST(Table2, CncShape) {
  const sched::TaskSet tasks = cnc();
  EXPECT_EQ(tasks.size(), 8u);
  EXPECT_DOUBLE_EQ(tasks.min_wcet(), 35.0);
  EXPECT_DOUBLE_EQ(tasks.max_wcet(), 720.0);
  // Sub-10ms machining loops: timing parameters comparable to the 10 us
  // transition delay (paper §4's caveat).
  for (const sched::Task& t : tasks.tasks()) {
    EXPECT_LE(t.period, 20'000);
  }
}

TEST(Table2, AllWorkloadsRmSchedulable) {
  for (const Workload& workload : paper_workloads()) {
    EXPECT_TRUE(sched::is_schedulable_rta(workload.tasks)) << workload.name;
  }
}

TEST(Registry, FourApplicationsInTable2Order) {
  const auto all = paper_workloads();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "Avionics");
  EXPECT_EQ(all[1].name, "INS");
  EXPECT_EQ(all[2].name, "Flight control");
  EXPECT_EQ(all[3].name, "CNC");
}

TEST(Registry, HorizonsAreWholeHyperperiodsWhereTractable) {
  for (const Workload& workload : paper_workloads()) {
    EXPECT_GT(workload.horizon, 0.0);
    const auto hyper = static_cast<Time>(workload.tasks.hyperperiod());
    if (hyper <= 2e7) {
      const double periods = workload.horizon / hyper;
      EXPECT_NEAR(periods, std::round(periods), 1e-9) << workload.name;
      EXPECT_GE(workload.horizon, 1e6 - 1e-9) << workload.name;
    } else {
      EXPECT_DOUBLE_EQ(workload.horizon, 2e7) << workload.name;
    }
  }
}

TEST(Registry, PickHorizonKeepsWholeHyperperiodsUnderTheCap) {
  // Single task with period 700 -> hyperperiod 700.
  const sched::TaskSet tasks({sched::make_task("t", 700, 10.0)});

  // Smallest whole multiple covering the minimum.
  EXPECT_DOUBLE_EQ(pick_horizon(tasks, 1'000.0, 20'000.0), 1'400.0);
  EXPECT_DOUBLE_EQ(pick_horizon(tasks, 700.0, 20'000.0), 700.0);
  EXPECT_DOUBLE_EQ(pick_horizon(tasks, 1.0, 20'000.0), 700.0);

  // Regression: when the ceil-multiple (3 x 700 = 2100) overruns the
  // cap, fall back to the largest whole multiple under it (1400), not
  // the raw cap (2000, a partial cycle).
  EXPECT_DOUBLE_EQ(pick_horizon(tasks, 1'900.0, 2'000.0), 1'400.0);

  // hyper == maximum exactly still yields the whole cycle.
  EXPECT_DOUBLE_EQ(pick_horizon(tasks, 500.0, 700.0), 700.0);

  // Only when one hyperperiod cannot fit does the cap win.
  EXPECT_DOUBLE_EQ(pick_horizon(tasks, 100.0, 500.0), 500.0);
}

TEST(Registry, LookupByName) {
  EXPECT_EQ(workload_by_name("INS").tasks.size(), 6u);
  EXPECT_THROW(workload_by_name("nonsense"), std::out_of_range);
}

TEST(Registry, PrioritiesAssignedRateMonotonic) {
  for (const Workload& workload : paper_workloads()) {
    const auto& tasks = workload.tasks;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        const auto& a = tasks[static_cast<TaskIndex>(i)];
        const auto& b = tasks[static_cast<TaskIndex>(j)];
        if (a.period < b.period) {
          EXPECT_LT(a.priority, b.priority)
              << workload.name << ": " << a.name << " vs " << b.name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace lpfps::workloads
