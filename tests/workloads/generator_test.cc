#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/analysis.h"
#include "weakly_hard/analysis.h"

namespace lpfps::workloads {
namespace {

TEST(UUniFast, SumsExactlyToTarget) {
  Rng rng(1);
  for (int n : {1, 2, 5, 20}) {
    const auto utils = uunifast(n, 0.7, rng);
    ASSERT_EQ(utils.size(), static_cast<std::size_t>(n));
    double sum = 0.0;
    for (const double u : utils) {
      EXPECT_GE(u, 0.0);
      sum += u;
    }
    EXPECT_NEAR(sum, 0.7, 1e-12);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(2);
  const auto utils = uunifast(1, 0.42, rng);
  ASSERT_EQ(utils.size(), 1u);
  EXPECT_DOUBLE_EQ(utils[0], 0.42);
}

TEST(UUniFast, MeanShareIsUniform) {
  // Across many draws each slot's mean utilization must be U/n.
  Rng rng(3);
  const int n = 4;
  const int draws = 5'000;
  std::vector<double> sums(n, 0.0);
  for (int d = 0; d < draws; ++d) {
    const auto utils = uunifast(n, 0.8, rng);
    for (int i = 0; i < n; ++i) sums[static_cast<std::size_t>(i)] += utils[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(sums[static_cast<std::size_t>(i)] / draws, 0.2, 0.01);
  }
}

TEST(Generator, ProducesValidTaskSets) {
  Rng rng(4);
  GeneratorConfig config;
  config.task_count = 6;
  config.total_utilization = 0.6;
  for (int i = 0; i < 50; ++i) {
    const sched::TaskSet tasks = generate_task_set(config, rng);
    ASSERT_EQ(tasks.size(), 6u);
    EXPECT_NO_THROW(tasks.validate());
    EXPECT_NEAR(tasks.utilization(), 0.6, 1e-9);
    EXPECT_TRUE(tasks.implicit_deadlines());
  }
}

TEST(Generator, PeriodsOnGranularityGrid) {
  Rng rng(5);
  GeneratorConfig config;
  config.period_granularity = 10'000;
  const sched::TaskSet tasks = generate_task_set(config, rng);
  for (const sched::Task& t : tasks.tasks()) {
    EXPECT_EQ(t.period % 10'000, 0) << t.name;
    EXPECT_GE(t.period, config.period_min);
    EXPECT_LE(t.period, config.period_max);
  }
}

TEST(Generator, BcetRatioApplied) {
  Rng rng(6);
  GeneratorConfig config;
  config.bcet_ratio = 0.3;
  const sched::TaskSet tasks = generate_task_set(config, rng);
  for (const sched::Task& t : tasks.tasks()) {
    EXPECT_NEAR(t.bcet, t.wcet * 0.3, 1e-9);
  }
}

TEST(Generator, LowUtilizationSetsAreUsuallySchedulable) {
  Rng rng(7);
  GeneratorConfig config;
  config.task_count = 5;
  config.total_utilization = 0.5;
  int schedulable = 0;
  const int draws = 50;
  for (int i = 0; i < draws; ++i) {
    if (sched::is_schedulable_rta(generate_task_set(config, rng))) {
      ++schedulable;
    }
  }
  EXPECT_GT(schedulable, draws * 9 / 10);  // U=0.5 almost always fits.
}

TEST(Generator, RejectsBadConfig) {
  Rng rng(8);
  GeneratorConfig config;
  config.total_utilization = 1.5;
  EXPECT_THROW(generate_task_set(config, rng), std::logic_error);
  config.total_utilization = 0.5;
  config.task_count = 0;
  EXPECT_THROW(generate_task_set(config, rng), std::logic_error);
}

TEST(WeaklyHardGenerator, DrawsOverloadedDegradedFeasibleSets) {
  Rng rng(9);
  WeaklyHardGeneratorConfig config;
  config.base.task_count = 6;
  config.total_utilization = 1.15;
  for (int i = 0; i < 10; ++i) {
    const sched::TaskSet tasks = generate_weakly_hard_task_set(config, rng);
    ASSERT_EQ(tasks.size(), 6u);
    EXPECT_NO_THROW(tasks.validate());
    // Hard-infeasible by construction, degraded-feasible by admission.
    EXPECT_NEAR(tasks.utilization(), 1.15, 1e-9);
    EXPECT_FALSE(sched::is_schedulable_rta(tasks));
    EXPECT_TRUE(weakly_hard::is_schedulable_weakly_hard_rta(tasks));
    EXPECT_TRUE(tasks.has_weakly_hard());
  }
}

TEST(WeaklyHardGenerator, ConstrainsTheHeaviestTasksAlternatingForms) {
  Rng rng(10);
  WeaklyHardGeneratorConfig config;
  config.base.task_count = 6;
  config.total_utilization = 1.1;
  config.weakly_hard_fraction = 0.5;  // ceil(0.5 * 6) = 3 tasks.
  const sched::TaskSet tasks = generate_weakly_hard_task_set(config, rng);
  int constrained = 0;
  int mk_form = 0;
  int skip_form = 0;
  double min_constrained_util = 2.0;
  double max_hard_util = 0.0;
  for (const sched::Task& t : tasks.tasks()) {
    if (t.weakly_hard()) {
      ++constrained;
      if (t.mk_k > 0) ++mk_form;
      if (t.skip_s > 0) ++skip_form;
      min_constrained_util = std::min(min_constrained_util, t.utilization());
    } else {
      max_hard_util = std::max(max_hard_util, t.utilization());
    }
  }
  EXPECT_EQ(constrained, 3);
  EXPECT_GT(mk_form, 0);    // Both constraint forms present when both
  EXPECT_GT(skip_form, 0);  // are configured (default (2,4) and s=2).
  // The heaviest tasks carry the constraints.
  EXPECT_GE(min_constrained_util, max_hard_util);
}

TEST(WeaklyHardGenerator, SingleFormWhenTheOtherIsDisabled) {
  Rng rng(11);
  WeaklyHardGeneratorConfig config;
  config.base.task_count = 4;
  config.total_utilization = 1.05;
  config.skip_s = 0;  // All constrained tasks (m,k)-firm.
  const sched::TaskSet tasks = generate_weakly_hard_task_set(config, rng);
  for (const sched::Task& t : tasks.tasks()) {
    EXPECT_EQ(t.skip_s, 0) << t.name;
  }
  EXPECT_TRUE(tasks.has_weakly_hard());
}

TEST(WeaklyHardGenerator, DeterministicForASeed) {
  WeaklyHardGeneratorConfig config;
  config.base.task_count = 5;
  config.total_utilization = 1.2;
  Rng rng_a(12);
  Rng rng_b(12);
  const sched::TaskSet a = generate_weakly_hard_task_set(config, rng_a);
  const sched::TaskSet b = generate_weakly_hard_task_set(config, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(a.size()); ++i) {
    EXPECT_EQ(a[i].period, b[i].period);
    EXPECT_DOUBLE_EQ(a[i].wcet, b[i].wcet);
    EXPECT_EQ(a[i].mk_m, b[i].mk_m);
    EXPECT_EQ(a[i].mk_k, b[i].mk_k);
    EXPECT_EQ(a[i].skip_s, b[i].skip_s);
    EXPECT_EQ(a[i].priority, b[i].priority);
  }
}

TEST(WeaklyHardGenerator, RejectsBadConfig) {
  Rng rng(13);
  WeaklyHardGeneratorConfig config;
  config.weakly_hard_fraction = 0.0;  // Overload with nothing skippable.
  EXPECT_THROW(generate_weakly_hard_task_set(config, rng), std::logic_error);
  config.weakly_hard_fraction = 0.5;
  config.mk_k = 0;
  config.skip_s = 0;  // No constraint form at all.
  EXPECT_THROW(generate_weakly_hard_task_set(config, rng), std::logic_error);
}

}  // namespace
}  // namespace lpfps::workloads
