// A set of periodic tasks plus whole-set utilities.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sched/task.h"

namespace lpfps::sched {

class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks);

  /// Appends a task (validated).  Returns its index.
  TaskIndex add(Task task);

  /// Removes the task at `index`; tasks above it shift down one slot.
  /// (The admission service's churn primitive — callers holding indices
  /// must re-resolve them after a removal.)
  void remove(TaskIndex index);

  /// Replaces the task at `index` with `task` (validated).
  void replace(TaskIndex index, Task task);

  const Task& operator[](TaskIndex index) const;
  Task& at(TaskIndex index);

  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Sum of C_i / T_i.
  double utilization() const;

  /// LCM of all periods, in microseconds.  Throws std::overflow_error for
  /// pathological (mutually prime, huge) period combinations — the very
  /// failure mode the paper cites against static LCM schedules.
  std::int64_t hyperperiod() const;

  /// Smallest and largest WCET across tasks (Table 2's "Range of WCETs").
  Work min_wcet() const;
  Work max_wcet() const;

  /// Task names in index order (for trace rendering).
  std::vector<std::string> names() const;

  /// True if every task has deadline == period (pure Liu & Layland model,
  /// where rate-monotonic assignment is optimal).
  bool implicit_deadlines() const;

  /// True if priorities are a permutation of distinct values (every pair
  /// ordered).  Engine and analyses require this.
  bool priorities_are_unique() const;

  /// True if any task carries an (m,k)-firm or skip-over constraint
  /// (docs/WEAKLY_HARD.md).
  bool has_weakly_hard() const;

  /// Throws unless every task validates and priorities are unique.
  void validate() const;

  /// Returns a copy whose every task's BCET is `ratio` * WCET (the
  /// Figure 8 sweep: BCET from 10% to 100% of WCET).
  TaskSet with_bcet_ratio(double ratio) const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace lpfps::sched
