// Reference fixed-priority preemptive kernel simulator (full speed, no
// power model).
//
// This is the conventional scheduler of paper §3.1, implemented exactly
// on the run-queue / delay-queue model: it reproduces Example 1 and the
// Figure 3 queue snapshots, and serves as an independent cross-check for
// the power-aware engine in core/engine.h (with DVS and power-down
// disabled, the engine must produce the identical schedule).
#pragma once

#include <functional>

#include "faults/faults.h"
#include "sched/queues.h"
#include "sched/task_set.h"
#include "sim/trace.h"
#include "weakly_hard/governor.h"

namespace lpfps::sched {

/// Supplies the actual execution time of a job.  Arguments: task index,
/// 0-based instance number.  Must return a value in [BCET, WCET].
using ExecTimeProvider = std::function<Work(TaskIndex, std::int64_t)>;

// InvocationHook (the opt-in QueueSnapshot observer) lives in
// sched/queues.h next to the snapshot type it delivers.

struct KernelResult {
  sim::Trace trace;
  int context_switches = 0;   ///< Preemptive switches (paper's sense).
  int scheduler_invocations = 0;
  int deadline_misses = 0;
  /// Deepest the ready set ever got (run queue + running task).
  int run_queue_high_water = 0;
  // Budget-enforcement counters; non-zero only after
  // set_overrun_containment with an out-of-contract provider.
  int overruns_detected = 0;  ///< WCET-budget exhaustions observed.
  int jobs_killed = 0;
  int jobs_throttled = 0;
  int jobs_skipped = 0;       ///< Releases displaced by kill/throttle.
  // Weakly-hard governor counters; non-zero only after set_skip_policy
  // on a task set declaring (m,k)/skip constraints (docs/WEAKLY_HARD.md).
  int jobs_skipped_weakly = 0;  ///< Jobs skipped at release by policy.
  int mk_violations = 0;  ///< Settled k-windows that fell below m met.
};

class FixedPriorityKernel {
 public:
  /// The task set must validate; priorities must already be assigned.
  explicit FixedPriorityKernel(TaskSet tasks);

  /// Overrides the default all-jobs-take-WCET behaviour.
  void set_exec_time_provider(ExecTimeProvider provider);

  /// Installs an observer called after every scheduler invocation.
  void set_invocation_hook(InvocationHook hook);

  /// Arms WCET-budget enforcement: the provider contract relaxes to
  /// allow out-of-range execution times, and a job reaching its budget
  /// triggers `action` — count only (kNone), suspend to the next period
  /// window with a replenished budget (kThrottle), or abort with the
  /// remaining work discarded (kKill).  Mirrors the containment
  /// semantics of core::Engine (docs/ROBUSTNESS.md) so the two
  /// simulators stay cross-checkable under faults.
  void set_overrun_containment(faults::OverrunAction action);

  /// Arms the weakly-hard skip governor with the same decision rule as
  /// core::Engine (docs/WEAKLY_HARD.md): at each release of a task
  /// declaring an (m,k) or skip constraint, a permitted skip is spent —
  /// always under kAlways, only while the overload latch (hard RTA
  /// failure at rest, or a detected overrun / actual miss until the next
  /// idle instant, or a release-time predicted miss) is raised under
  /// kOverload.  Inert with kNever or on a purely hard task set, keeping
  /// the engine cross-check exact.  Cannot combine with kThrottle
  /// containment (out-of-order window settlement).
  void set_skip_policy(weakly_hard::SkipPolicy policy);

  /// Simulates [0, horizon) and returns the schedule.  Jobs still running
  /// at the horizon are recorded unfinished (not counted as misses unless
  /// their deadline already passed).
  KernelResult run(Time horizon);

 private:
  TaskSet tasks_;
  ExecTimeProvider exec_time_;
  InvocationHook hook_;
  bool containment_armed_ = false;
  faults::OverrunAction overrun_action_ = faults::OverrunAction::kNone;
  weakly_hard::SkipPolicy skip_policy_ = weakly_hard::SkipPolicy::kNever;
};

}  // namespace lpfps::sched
