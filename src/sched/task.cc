#include "sched/task.h"

#include "common/check.h"

namespace lpfps::sched {

double Task::utilization() const {
  LPFPS_CHECK(period > 0);
  return wcet / static_cast<double>(period);
}

void Task::validate() const {
  LPFPS_CHECK_MSG(!name.empty(), "task must be named");
  LPFPS_CHECK_MSG(period > 0, name);
  LPFPS_CHECK_MSG(deadline > 0, name);
  LPFPS_CHECK_MSG(wcet > 0.0, name);
  LPFPS_CHECK_MSG(bcet > 0.0 && bcet <= wcet, name);
  LPFPS_CHECK_MSG(wcet <= static_cast<double>(deadline), name);
  LPFPS_CHECK_MSG(phase >= 0, name);
  LPFPS_CHECK_MSG(mk_m >= 0 && mk_k >= 0 && skip_s >= 0, name);
  LPFPS_CHECK_MSG(mk_k == 0 || (mk_m >= 1 && mk_m <= mk_k && mk_k <= 64),
                  name);
  LPFPS_CHECK_MSG(mk_k > 0 || mk_m == 0, name);
  LPFPS_CHECK_MSG(skip_s == 0 || (skip_s >= 2 && skip_s <= 64), name);
  // One constraint form per task: combining them would make the
  // degraded-mode interference pattern (weakly_hard::max_met_jobs)
  // ill-defined.
  LPFPS_CHECK_MSG(mk_k == 0 || skip_s == 0, name);
  // D <= T keeps per-task job outcomes settled at the next release.
  LPFPS_CHECK_MSG(!weakly_hard() || deadline <= period, name);
}

Task make_task(std::string name, std::int64_t period, Work wcet) {
  return make_task(std::move(name), period, period, wcet, wcet, 0);
}

Task make_task(std::string name, std::int64_t period, std::int64_t deadline,
               Work wcet, Work bcet, std::int64_t phase) {
  Task task;
  task.name = std::move(name);
  task.period = period;
  task.deadline = deadline;
  task.wcet = wcet;
  task.bcet = bcet;
  task.phase = phase;
  task.validate();
  return task;
}

Task with_mk_constraint(Task task, int m, int k) {
  task.mk_m = m;
  task.mk_k = k;
  task.validate();
  return task;
}

Task with_skip_parameter(Task task, int s) {
  task.skip_s = s;
  task.validate();
  return task;
}

}  // namespace lpfps::sched
