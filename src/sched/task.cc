#include "sched/task.h"

#include "common/check.h"

namespace lpfps::sched {

double Task::utilization() const {
  LPFPS_CHECK(period > 0);
  return wcet / static_cast<double>(period);
}

void Task::validate() const {
  LPFPS_CHECK_MSG(!name.empty(), "task must be named");
  LPFPS_CHECK_MSG(period > 0, name);
  LPFPS_CHECK_MSG(deadline > 0, name);
  LPFPS_CHECK_MSG(wcet > 0.0, name);
  LPFPS_CHECK_MSG(bcet > 0.0 && bcet <= wcet, name);
  LPFPS_CHECK_MSG(wcet <= static_cast<double>(deadline), name);
  LPFPS_CHECK_MSG(phase >= 0, name);
}

Task make_task(std::string name, std::int64_t period, Work wcet) {
  return make_task(std::move(name), period, period, wcet, wcet, 0);
}

Task make_task(std::string name, std::int64_t period, std::int64_t deadline,
               Work wcet, Work bcet, std::int64_t phase) {
  Task task;
  task.name = std::move(name);
  task.period = period;
  task.deadline = deadline;
  task.wcet = wcet;
  task.bcet = bcet;
  task.phase = phase;
  task.validate();
  return task;
}

}  // namespace lpfps::sched
