// Incremental response-time analysis — fixed-point state reused across
// queries.
//
// A long-lived admission service answers "is this set still
// schedulable?" thousands of times per second while the set churns one
// task at a time.  Recomputing every response time from scratch on
// every change wastes exactly the structure churn preserves:
//
//   * a task's recurrence only involves *higher*-priority tasks, so a
//     change to task tau never touches the response times of tasks
//     with higher priority than tau;
//   * when interference grows (a task added, a WCET increased, a
//     period shortened), the old response time is an exact fixed point
//     of the old recurrence and a valid *seed* for the new one — the
//     iteration resumes from where it stopped instead of from C_i and
//     typically converges in one or two steps;
//   * a task whose iteration diverged past its deadline stays
//     divergent under strictly larger interference, so it is skipped
//     outright.
//
// Bit-identity contract: every reanalysis runs through
// sched::response_time_from_seed, which terminates only on an exact
// (bitwise) fixed point, and the least fixed point does not depend on
// the seed (see analysis.h).  A from-scratch reanalysis of the same
// set therefore produces bit-identical response times, schedulability
// decisions, and (downstream) minimum-safe-frequency answers — the
// property tests/admission/differential_test.cc asserts across
// hundreds of random churn sequences.  Mode::kFromScratch runs that
// reference strategy through the same class, so the two arms differ
// only in the analysis schedule, never in task bookkeeping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.h"
#include "sched/analysis.h"
#include "sched/task_set.h"

namespace lpfps::sched {

class IncrementalRta {
 public:
  enum class Mode {
    kIncremental,  ///< Reuse fixed-point state across mutations.
    kFromScratch,  ///< Reanalyze every task on every mutation (reference).
  };

  /// Analysis-effort accounting for one object's lifetime.
  struct Stats {
    std::int64_t mutations = 0;         ///< add/remove/mutate calls.
    std::int64_t tasks_reanalyzed = 0;  ///< Fixed-point iterations run.
    std::int64_t tasks_seeded = 0;      ///< ...of which seeded from a prior R.
    std::int64_t tasks_kept = 0;        ///< Cached results reused unchanged.
    std::int64_t tasks_skipped = 0;     ///< Divergent-stays-divergent skips.
  };

  IncrementalRta() = default;
  /// Validates and fully analyzes `tasks`.
  explicit IncrementalRta(TaskSet tasks, Mode mode = Mode::kIncremental);

  const TaskSet& tasks() const { return tasks_; }
  Mode mode() const { return mode_; }

  /// Exact response times (nullopt where divergent), indexed like the
  /// set.  Bitwise equal to a from-scratch analysis of tasks().
  const std::vector<std::optional<Time>>& response_times() const {
    return response_;
  }

  /// True iff every task's response time exists and meets its deadline.
  bool schedulable() const;

  /// Appends a task (unique priority required) and returns its index.
  /// Incremental cost: the new task from scratch, plus a seeded resume
  /// for every lower-priority task that previously converged.
  TaskIndex add_task(Task task);

  /// Tentatively appends `task`: keeps it and returns true iff the
  /// grown set is schedulable, otherwise rolls the add back (undo_add)
  /// and returns false.  The probe primitive of first-fit partitioning
  /// — each rejected core pays one incremental add/check/undo instead
  /// of a from-scratch reanalysis of its whole set.
  bool try_add_task(Task task);

  /// Removes the task at `index` (indices above shift down).  Only
  /// lower-priority tasks lost interference; they are reanalyzed from
  /// scratch (a shrunken recurrence's fixed point lies *below* the old
  /// one, so the old value is not a valid seed).
  void remove_task(TaskIndex index);

  /// Replaces the task at `index`.  Affected lower-priority tasks are
  /// resumed from their old response times when the change can only
  /// have grown interference (WCET up and/or period down, priority
  /// unchanged), reanalyzed from scratch otherwise.
  void mutate_task(TaskIndex index, Task task);

  /// Discards all cached state and reanalyzes every task from scratch.
  void reanalyze_all();

  /// Replaces the whole state with externally supplied values (cache
  /// hits, snapshot rollback).  `response_times` must be what analyzing
  /// `tasks` would produce — the admission cache stores exactly that.
  void reset(TaskSet tasks, std::vector<std::optional<Time>> response_times);

  /// Reverts the most recent add_task without reanalysis: pops the
  /// appended task and adopts `response_times`, the pre-add vector the
  /// caller saved.  O(1) plus the vector move — the cheap rollback path
  /// for rejected admission requests (a full TaskSet snapshot is never
  /// needed because add only appends).
  void undo_add(std::vector<std::optional<Time>> response_times);

  /// Reverts the most recent mutate_task at `index`: restores
  /// `previous` (the task the caller saved before mutating) and adopts
  /// the saved pre-mutation `response_times`.
  void undo_mutate(TaskIndex index, Task previous,
                   std::vector<std::optional<Time>> response_times);

  const Stats& stats() const { return stats_; }

 private:
  /// True if `priority` is already taken by a task other than `except`.
  bool priority_taken(Priority priority, TaskIndex except) const;
  /// Reanalyzes task `i` from scratch (seed C_i).
  void recompute(TaskIndex i);
  /// Resumes task `i` from its cached response time; skips tasks whose
  /// iteration had diverged (still divergent under grown interference).
  void resume(TaskIndex i);

  TaskSet tasks_;
  std::vector<std::optional<Time>> response_;
  Mode mode_ = Mode::kIncremental;
  Stats stats_;
};

}  // namespace lpfps::sched
