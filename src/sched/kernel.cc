#include "sched/kernel.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/float_compare.h"
#include "sched/analysis.h"

namespace lpfps::sched {

namespace {

/// Book-keeping for the job of a task currently in flight.
struct JobState {
  std::int64_t instance = 0;
  Time release = 0.0;
  Work total_work = 0.0;     ///< Actual execution time of this instance.
  Work executed = 0.0;       ///< E_i so far.
  // Budget enforcement (inert unless containment is armed).
  Time window_release = 0.0; ///< Release of the enforcement window.
  Work budget_used = 0.0;    ///< Work consumed against the window budget.
  bool over_budget = false;  ///< Exhaustion latch: one firing per window.
  bool throttled = false;    ///< Suspended; the next start_job resumes it.
};

}  // namespace

FixedPriorityKernel::FixedPriorityKernel(TaskSet tasks)
    : tasks_(std::move(tasks)) {
  tasks_.validate();
  exec_time_ = [this](TaskIndex task, std::int64_t) {
    return tasks_[task].wcet;
  };
}

void FixedPriorityKernel::set_exec_time_provider(ExecTimeProvider provider) {
  LPFPS_CHECK(static_cast<bool>(provider));
  exec_time_ = std::move(provider);
}

void FixedPriorityKernel::set_invocation_hook(InvocationHook hook) {
  hook_ = std::move(hook);
}

void FixedPriorityKernel::set_overrun_containment(
    faults::OverrunAction action) {
  containment_armed_ = true;
  overrun_action_ = action;
}

void FixedPriorityKernel::set_skip_policy(weakly_hard::SkipPolicy policy) {
  skip_policy_ = policy;
}

KernelResult FixedPriorityKernel::run(Time horizon) {
  LPFPS_CHECK(horizon > 0.0);
  KernelResult result;

  // Weakly-hard governor wiring, mirroring core::SimState exactly so
  // the engine cross-check stays bit-identical (docs/WEAKLY_HARD.md).
  const bool weakly_hard_enabled =
      tasks_.has_weakly_hard() &&
      skip_policy_ != weakly_hard::SkipPolicy::kNever;
  LPFPS_CHECK_MSG(!weakly_hard_enabled ||
                      overrun_action_ != faults::OverrunAction::kThrottle,
                  "throttle containment cannot combine with the "
                  "weakly-hard governor");
  weakly_hard::SkipGovernor governor;
  bool overload_structural = false;
  bool overload_dynamic = false;
  if (weakly_hard_enabled) {
    governor.reset(tasks_);
    // Structural latch: the kernel runs at full speed, so the plain
    // hard RTA verdict decides (utilization guard first — RTA assumes
    // a feasible fixed point exists).
    overload_structural = tasks_.utilization() > 1.0;
    if (!overload_structural) {
      bool rta_domain = true;
      for (const Task& t : tasks_.tasks()) {
        if (t.deadline > t.period) rta_domain = false;
      }
      if (rta_domain) overload_structural = !is_schedulable_rta(tasks_);
    }
  }

  const auto n = static_cast<TaskIndex>(tasks_.size());
  RunQueue run_queue;
  DelayQueue delay_queue;
  run_queue.reserve(tasks_.size());
  delay_queue.reserve(tasks_.size());
  std::vector<JobState> jobs(static_cast<std::size_t>(n));
  std::vector<std::int64_t> next_instance(static_cast<std::size_t>(n), 0);

  {
    // One job record per released instance; segments alternate between
    // runs (split by preemptions) and idle gaps.
    std::size_t job_hint = 0;
    for (TaskIndex i = 0; i < n; ++i) {
      job_hint += static_cast<std::size_t>(
                      horizon / static_cast<Time>(tasks_[i].period)) +
                  1;
    }
    result.trace.reserve(4 * job_hint + 16, job_hint);
  }

  for (TaskIndex i = 0; i < n; ++i) {
    delay_queue.insert({i, static_cast<Time>(tasks_[i].phase)});
  }

  TaskIndex active = kNoTask;
  Time now = 0.0;

  auto start_job = [&](TaskIndex task) {
    JobState& job = jobs[static_cast<std::size_t>(task)];
    auto& instance = next_instance[static_cast<std::size_t>(task)];
    if (job.throttled) {
      // Resuming a throttled job: same instance, release and residual
      // demand; only the enforcement window (and its budget) is new.
      job.throttled = false;
      job.window_release =
          static_cast<Time>(tasks_[task].phase) +
          static_cast<Time>(instance * tasks_[task].period);
      ++instance;
      job.budget_used = 0.0;
      job.over_budget = false;
      return;
    }
    job.instance = instance++;
    job.release = static_cast<Time>(tasks_[task].phase) +
                  static_cast<Time>(job.instance * tasks_[task].period);
    job.window_release = job.release;
    job.total_work = exec_time_(task, job.instance);
    // Longer than WCET voids the analysis; shorter than the nominal BCET
    // is allowed (scenario providers use it).  With containment armed
    // the overrun is the point: budget enforcement absorbs it.
    LPFPS_CHECK_MSG(job.total_work > 0.0 &&
                        (containment_armed_ ||
                         job.total_work <= tasks_[task].wcet + kTimeEpsilon),
                    tasks_[task].name);
    job.executed = 0.0;
    job.budget_used = 0.0;
    job.over_budget = false;
  };

  auto settle_weakly_hard = [&](TaskIndex task, bool met, bool skipped) {
    if (!weakly_hard_enabled) return;
    governor.settle(task, met, skipped);
  };

  // Re-inserts a contained task at its next enforcement-window boundary,
  // forfeiting windows the overrun already consumed.
  auto requeue_contained = [&](TaskIndex task) {
    auto& instance = next_instance[static_cast<std::size_t>(task)];
    Time next_release =
        static_cast<Time>(tasks_[task].phase) +
        static_cast<Time>(instance * tasks_[task].period);
    while (definitely_greater(now, next_release)) {
      ++instance;
      ++result.jobs_skipped;
      // Forfeited windows are failed deliveries, settled in instance
      // order (the aborted instance settles before this loop runs).
      settle_weakly_hard(task, /*met=*/false, /*skipped=*/false);
      next_release = static_cast<Time>(tasks_[task].phase) +
                     static_cast<Time>(instance * tasks_[task].period);
    }
    delay_queue.insert({task, next_release});
  };

  // Release-time overload probe, the engine's note_release_pressure at
  // base ratio 1: declared demand that must clear before the released
  // job's deadline — its own WCET plus remaining declared budgets of
  // strictly-higher-priority jobs in flight.
  auto note_release_pressure = [&](TaskIndex task) {
    if (overload_structural || overload_dynamic) return;
    if (skip_policy_ != weakly_hard::SkipPolicy::kOverload) return;
    const Task& t = tasks_[task];
    const JobState& released = jobs[static_cast<std::size_t>(task)];
    Work demand = t.wcet;
    const auto add_if_higher = [&](TaskIndex other) {
      const Task& o = tasks_[other];
      if (o.priority >= t.priority) return;
      const JobState& s = jobs[static_cast<std::size_t>(other)];
      demand += snap_nonnegative(o.wcet - s.executed);
    };
    if (active != kNoTask) add_if_higher(active);
    for (const RunEntry& entry : run_queue.entries()) {
      add_if_higher(entry.task);
    }
    const Time deadline = released.release + static_cast<Time>(t.deadline);
    if (definitely_greater(now + demand, deadline)) {
      overload_dynamic = true;
    }
  };

  auto skip_released_job = [&](TaskIndex task) {
    const Task& t = tasks_[task];
    JobState& job = jobs[static_cast<std::size_t>(task)];
    sim::JobRecord record;
    record.task = task;
    record.instance = job.instance;
    record.release = job.release;
    record.absolute_deadline = job.release + static_cast<Time>(t.deadline);
    record.completion = now;
    record.executed = 0.0;
    record.finished = false;
    record.skipped = true;
    result.trace.add_job(record);
    settle_weakly_hard(task, /*met=*/false, /*skipped=*/true);
    delay_queue.insert(
        {task, job.window_release + static_cast<Time>(t.period)});
  };

  // The scheduler invocation of Figure 4 lines L5-L11 (no power logic).
  auto invoke_scheduler = [&]() {
    ++result.scheduler_invocations;
    while (!delay_queue.empty() &&
           approx_le(delay_queue.head().release_time, now)) {
      const DelayEntry due = delay_queue.pop_head();
      start_job(due.task);
      // Governor decision at release, after the demand draw — exactly
      // the engine's hook order.  (Throttle cannot combine with the
      // governor, so every popped entry is a fresh release here.)
      if (weakly_hard_enabled) {
        note_release_pressure(due.task);
        if (governor.should_skip(due.task, skip_policy_,
                                 overload_structural || overload_dynamic)) {
          skip_released_job(due.task);
          continue;
        }
      }
      run_queue.insert({due.task, tasks_[due.task].priority});
    }
    if (!run_queue.empty()) {
      if (active == kNoTask) {
        active = run_queue.pop_head().task;
      } else if (run_queue.head().priority < tasks_[active].priority) {
        // Context switch: the preempted task re-enters the run queue.
        run_queue.insert({active, tasks_[active].priority});
        active = run_queue.pop_head().task;
        ++result.context_switches;
      }
    }
    const int ready = static_cast<int>(run_queue.size()) +
                      (active != kNoTask ? 1 : 0);
    result.run_queue_high_water =
        std::max(result.run_queue_high_water, ready);
    // An idle instant ends a dynamic overload episode (the engine's
    // idle-branch clear); the structural latch never clears.
    if (active == kNoTask && run_queue.empty()) overload_dynamic = false;
    if (hook_) {
      QueueSnapshot snapshot;
      snapshot.time = now;
      snapshot.run_queue = run_queue.entries();
      snapshot.delay_queue = delay_queue.entries();
      snapshot.active_task = active;
      snapshot.active_executed =
          active == kNoTask ? 0.0
                            : jobs[static_cast<std::size_t>(active)].executed;
      hook_(snapshot);
    }
  };

  invoke_scheduler();

  while (definitely_less(now, horizon)) {
    // Next decision point: the earliest of the next release, the active
    // job's completion, and the horizon.
    Time next = horizon;
    if (const auto release = delay_queue.next_release();
        release.has_value()) {
      next = std::min(next, *release);
    }
    bool completion_first = false;
    bool budget_first = false;
    if (active != kNoTask) {
      const JobState& job = jobs[static_cast<std::size_t>(active)];
      const Time completion = now + (job.total_work - job.executed);
      if (approx_le(completion, next)) {
        next = std::min(next, completion);
        completion_first = true;
      }
      if (containment_armed_ && !job.over_budget) {
        // Full speed: work and time share one clock.  Strictly-before
        // only — a job finishing exactly at its budget is in contract,
        // so completion wins the tie.
        const Time exhaust =
            now + (tasks_[active].wcet - job.budget_used);
        if (definitely_less(exhaust, completion) &&
            approx_le(exhaust, next)) {
          next = std::min(next, exhaust);
          completion_first = false;
          budget_first = true;
        }
      }
    }
    LPFPS_CHECK(approx_ge(next, now));

    // Advance time, accounting the segment.
    if (definitely_less(now, next)) {
      sim::Segment segment;
      segment.begin = now;
      segment.end = next;
      if (active != kNoTask) {
        segment.mode = sim::ProcessorMode::kRunning;
        segment.task = active;
        jobs[static_cast<std::size_t>(active)].executed += next - now;
        jobs[static_cast<std::size_t>(active)].budget_used += next - now;
      } else {
        segment.mode = sim::ProcessorMode::kIdleBusyWait;
      }
      result.trace.add_segment(segment);
    }
    now = next;

    if (budget_first && active != kNoTask) {
      JobState& job = jobs[static_cast<std::size_t>(active)];
      job.over_budget = true;
      ++result.overruns_detected;
      if (weakly_hard_enabled) overload_dynamic = true;
      switch (overrun_action_) {
        case faults::OverrunAction::kNone:
          // Monitor only: the job keeps the CPU past its budget.
          break;
        case faults::OverrunAction::kThrottle:
          ++result.jobs_throttled;
          job.throttled = true;
          requeue_contained(active);
          active = kNoTask;
          break;
        case faults::OverrunAction::kKill: {
          const Task& task = tasks_[active];
          sim::JobRecord record;
          record.task = active;
          record.instance = job.instance;
          record.release = job.release;
          record.absolute_deadline =
              job.release + static_cast<Time>(task.deadline);
          record.completion = now;
          record.executed = job.executed;
          record.finished = false;
          record.killed = true;
          result.trace.add_job(record);
          ++result.jobs_killed;
          // The aborted instance settles as a failed delivery before
          // requeue_contained settles the forfeited windows.
          settle_weakly_hard(active, /*met=*/false, /*skipped=*/false);
          requeue_contained(active);
          active = kNoTask;
          break;
        }
      }
    }

    if (completion_first && active != kNoTask) {
      JobState& job = jobs[static_cast<std::size_t>(active)];
      const Task& task = tasks_[active];
      sim::JobRecord record;
      record.task = active;
      record.instance = job.instance;
      record.release = job.release;
      record.absolute_deadline =
          job.release + static_cast<Time>(task.deadline);
      record.completion = now;
      record.executed = job.executed;
      record.finished = true;
      record.missed_deadline =
          definitely_greater(now, record.absolute_deadline);
      if (record.missed_deadline) ++result.deadline_misses;
      result.trace.add_job(record);
      if (weakly_hard_enabled) {
        if (record.missed_deadline) overload_dynamic = true;
        settle_weakly_hard(active, /*met=*/!record.missed_deadline,
                           /*skipped=*/false);
      }
      delay_queue.insert(
          {active, job.window_release + static_cast<Time>(task.period)});
      active = kNoTask;
    }

    invoke_scheduler();
  }

  if (weakly_hard_enabled) {
    result.jobs_skipped_weakly = governor.jobs_skipped_weakly();
    result.mk_violations = governor.mk_violations();
  }
  return result;
}

}  // namespace lpfps::sched
