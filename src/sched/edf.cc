#include "sched/edf.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/float_compare.h"

namespace lpfps::sched {

namespace {

struct ReadyJob {
  TaskIndex task = kNoTask;
  std::int64_t instance = 0;
  Time release = 0.0;
  Time absolute_deadline = 0.0;
  Work total_work = 0.0;
  Work executed = 0.0;
};

/// EDF dispatch order: earliest absolute deadline first, ties by task.
bool earlier(const ReadyJob& a, const ReadyJob& b) {
  if (a.absolute_deadline != b.absolute_deadline) {
    return a.absolute_deadline < b.absolute_deadline;
  }
  return a.task < b.task;
}

}  // namespace

EdfKernel::EdfKernel(TaskSet tasks) : tasks_(std::move(tasks)) {
  for (const Task& t : tasks_.tasks()) t.validate();
  exec_time_ = [this](TaskIndex task, std::int64_t) {
    return tasks_[task].wcet;
  };
}

void EdfKernel::set_exec_time_provider(ExecTimeProvider provider) {
  LPFPS_CHECK(static_cast<bool>(provider));
  exec_time_ = std::move(provider);
}

KernelResult EdfKernel::run(Time horizon) {
  LPFPS_CHECK(horizon > 0.0);
  KernelResult result;

  const auto n = static_cast<TaskIndex>(tasks_.size());
  std::vector<ReadyJob> ready;
  std::vector<Time> next_release(static_cast<std::size_t>(n));
  std::vector<std::int64_t> next_instance(static_cast<std::size_t>(n), 0);
  for (TaskIndex i = 0; i < n; ++i) {
    next_release[static_cast<std::size_t>(i)] =
        static_cast<Time>(tasks_[i].phase);
  }

  Time now = 0.0;
  TaskIndex running = kNoTask;  // Index into `ready` is found on demand.

  auto release_due_jobs = [&]() {
    for (TaskIndex i = 0; i < n; ++i) {
      auto& release = next_release[static_cast<std::size_t>(i)];
      while (approx_le(release, now)) {
        ReadyJob job;
        job.task = i;
        job.instance = next_instance[static_cast<std::size_t>(i)]++;
        job.release = release;
        job.absolute_deadline =
            release + static_cast<Time>(tasks_[i].deadline);
        job.total_work = exec_time_(i, job.instance);
        ready.push_back(job);
        release += static_cast<Time>(tasks_[i].period);
      }
    }
  };

  auto pick = [&]() -> int {
    if (ready.empty()) return -1;
    int best = 0;
    for (int i = 1; i < static_cast<int>(ready.size()); ++i) {
      if (earlier(ready[static_cast<std::size_t>(i)],
                  ready[static_cast<std::size_t>(best)])) {
        best = i;
      }
    }
    return best;
  };

  release_due_jobs();
  while (definitely_less(now, horizon)) {
    ++result.scheduler_invocations;
    const int current = pick();

    // Next decision point.
    Time next = horizon;
    for (TaskIndex i = 0; i < n; ++i) {
      next = std::min(next, next_release[static_cast<std::size_t>(i)]);
    }
    bool completes = false;
    if (current >= 0) {
      const ReadyJob& job = ready[static_cast<std::size_t>(current)];
      const Time completion = now + (job.total_work - job.executed);
      if (approx_le(completion, next)) {
        next = completion;
        completes = true;
      }
    }
    LPFPS_CHECK(approx_ge(next, now));

    if (definitely_less(now, next)) {
      sim::Segment segment;
      segment.begin = now;
      segment.end = next;
      if (current >= 0) {
        ReadyJob& job = ready[static_cast<std::size_t>(current)];
        if (running != job.task && running != kNoTask) {
          ++result.context_switches;
        }
        running = job.task;
        segment.mode = sim::ProcessorMode::kRunning;
        segment.task = job.task;
        job.executed += next - now;
      } else {
        segment.mode = sim::ProcessorMode::kIdleBusyWait;
        running = kNoTask;
      }
      result.trace.add_segment(segment);
    }
    now = next;

    if (completes && current >= 0) {
      const ReadyJob job = ready[static_cast<std::size_t>(current)];
      sim::JobRecord record;
      record.task = job.task;
      record.instance = job.instance;
      record.release = job.release;
      record.absolute_deadline = job.absolute_deadline;
      record.completion = now;
      record.executed = job.total_work;
      record.finished = true;
      record.missed_deadline =
          definitely_greater(now, record.absolute_deadline);
      if (record.missed_deadline) ++result.deadline_misses;
      result.trace.add_job(record);
      ready.erase(ready.begin() + current);
      running = kNoTask;
    }
    release_due_jobs();
  }

  return result;
}

}  // namespace lpfps::sched
