#include "sched/queues.h"

#include <algorithm>

#include "common/check.h"

namespace lpfps::sched {

void RunQueue::insert(RunEntry entry) {
  LPFPS_CHECK(entry.task != kNoTask);
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const RunEntry& a, const RunEntry& b) {
        if (a.priority != b.priority) return a.priority < b.priority;
        return a.task < b.task;
      });
  entries_.insert(pos, entry);
}

const RunEntry& RunQueue::head() const {
  LPFPS_CHECK(!entries_.empty());
  return entries_.front();
}

RunEntry RunQueue::pop_head() {
  LPFPS_CHECK(!entries_.empty());
  const RunEntry entry = entries_.front();
  entries_.erase(entries_.begin());
  return entry;
}

void DelayQueue::insert(DelayEntry entry) {
  LPFPS_CHECK(entry.task != kNoTask);
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const DelayEntry& a, const DelayEntry& b) {
        if (a.release_time != b.release_time) {
          return a.release_time < b.release_time;
        }
        return a.task < b.task;
      });
  entries_.insert(pos, entry);
}

const DelayEntry& DelayQueue::head() const {
  LPFPS_CHECK(!entries_.empty());
  return entries_.front();
}

DelayEntry DelayQueue::pop_head() {
  LPFPS_CHECK(!entries_.empty());
  const DelayEntry entry = entries_.front();
  entries_.erase(entries_.begin());
  return entry;
}

std::optional<Time> DelayQueue::next_release() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.front().release_time;
}

void DelayQueue::shift_release_times(Time delta) {
  // A uniform translation preserves the (release_time, task) order, so
  // the sorted invariant survives untouched.
  for (DelayEntry& entry : entries_) entry.release_time += delta;
}

}  // namespace lpfps::sched
