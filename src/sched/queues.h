// The two scheduler queues of the kernel implementation model the paper
// builds on (Katcher et al. [17], Burns et al. [18], paper §3.1):
//
//  * run queue   — tasks released and waiting for the processor, ordered
//                  by priority (head = highest priority = lowest value);
//  * delay queue — tasks that finished their current instance and await
//                  their next release, ordered by release time.
//
// LPFPS's entire run-time knowledge derives from these queues: the head
// of the delay queue tells the scheduler the exact next release time,
// which is what makes exact power-down and safe DVS possible.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/units.h"
#include "sched/task.h"

namespace lpfps::sched {

/// An entry waiting in the run queue.
struct RunEntry {
  TaskIndex task = kNoTask;
  Priority priority = 0;

  /// Exact equality, for state fingerprints (cycle detection).
  friend bool operator==(const RunEntry&, const RunEntry&) = default;
};

/// An entry waiting in the delay queue.
struct DelayEntry {
  TaskIndex task = kNoTask;
  Time release_time = 0.0;

  /// Exact equality, for state fingerprints (cycle detection).
  friend bool operator==(const DelayEntry&, const DelayEntry&) = default;
};

/// Priority-ordered ready queue.  Ties (impossible with validated task
/// sets, which require unique priorities) would break by task index.
class RunQueue {
 public:
  RunQueue() = default;
  RunQueue(RunQueue&&) noexcept = default;
  RunQueue& operator=(RunQueue&&) noexcept = default;
  RunQueue(const RunQueue&) = default;
  RunQueue& operator=(const RunQueue&) = default;

  /// Preallocates for `tasks` entries (at most one per task can wait),
  /// so steady-state scheduling never grows the buffer.
  void reserve(std::size_t tasks) { entries_.reserve(tasks); }

  void insert(RunEntry entry);

  /// Empties the queue, keeping the allocated capacity.  The fleet
  /// engine uses this to rebind a simulation lane to a new task set
  /// without reallocating.
  void clear() noexcept { entries_.clear(); }

  /// Highest-priority waiting task.  Precondition: !empty().
  const RunEntry& head() const;

  /// Removes and returns the head.  Precondition: !empty().
  RunEntry pop_head();

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Entries in priority order (head first); used by tests that assert
  /// the paper's Figure 3 / Figure 5 queue snapshots.
  const std::vector<RunEntry>& entries() const noexcept { return entries_; }

 private:
  std::vector<RunEntry> entries_;  // Sorted by (priority, task).
};

/// Release-time-ordered queue of sleeping tasks.
class DelayQueue {
 public:
  DelayQueue() = default;
  DelayQueue(DelayQueue&&) noexcept = default;
  DelayQueue& operator=(DelayQueue&&) noexcept = default;
  DelayQueue(const DelayQueue&) = default;
  DelayQueue& operator=(const DelayQueue&) = default;

  /// Preallocates for `tasks` entries (one per sleeping task).
  void reserve(std::size_t tasks) { entries_.reserve(tasks); }

  void insert(DelayEntry entry);

  /// Empties the queue, keeping the allocated capacity (see
  /// RunQueue::clear).
  void clear() noexcept { entries_.clear(); }

  /// Earliest-release entry.  Precondition: !empty().
  const DelayEntry& head() const;

  /// Removes and returns the head.  Precondition: !empty().
  DelayEntry pop_head();

  /// Release time of the head, or nullopt when empty.
  std::optional<Time> next_release() const;

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Entries in release order (head first).
  const std::vector<DelayEntry>& entries() const noexcept { return entries_; }

  /// Translates every queued release by `delta` microseconds, preserving
  /// order.  The engine's steady-state fast-forward uses this to carry a
  /// proven-periodic queue state across the skipped hyperperiods.
  void shift_release_times(Time delta);

 private:
  std::vector<DelayEntry> entries_;  // Sorted by (release_time, task).
};

/// A copy of both queues plus the active task, for inspection hooks.
/// Snapshots are built only when an observer is installed — the hot
/// path never copies the queues.
struct QueueSnapshot {
  Time time = 0.0;
  std::vector<RunEntry> run_queue;
  std::vector<DelayEntry> delay_queue;
  TaskIndex active_task = kNoTask;
  Work active_executed = 0.0;  ///< E_i of the active task, if any.
};

/// Observes the scheduler state right after each scheduler invocation.
/// Opt-in: installing one re-enables the QueueSnapshot copies that the
/// snapshot-free default path skips.
using InvocationHook = std::function<void(const QueueSnapshot&)>;

}  // namespace lpfps::sched
