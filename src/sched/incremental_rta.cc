#include "sched/incremental_rta.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/float_compare.h"

namespace lpfps::sched {

IncrementalRta::IncrementalRta(TaskSet tasks, Mode mode)
    : tasks_(std::move(tasks)), mode_(mode) {
  tasks_.validate();
  response_.assign(tasks_.size(), std::nullopt);
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    recompute(i);
  }
}

bool IncrementalRta::schedulable() const {
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    const auto& r = response_[static_cast<std::size_t>(i)];
    if (!r.has_value()) return false;
    if (definitely_greater(*r, static_cast<double>(tasks_[i].deadline))) {
      return false;
    }
  }
  return true;
}

bool IncrementalRta::priority_taken(Priority priority,
                                    TaskIndex except) const {
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    if (i == except) continue;
    if (tasks_[i].priority == priority) return true;
  }
  return false;
}

void IncrementalRta::recompute(TaskIndex i) {
  response_[static_cast<std::size_t>(i)] =
      response_time_from_seed(tasks_, i, tasks_[i].wcet);
  ++stats_.tasks_reanalyzed;
}

void IncrementalRta::resume(TaskIndex i) {
  auto& r = response_[static_cast<std::size_t>(i)];
  if (!r.has_value()) {
    // Diverged under strictly smaller interference; the new least fixed
    // point can only be larger, so the task stays divergent — no
    // iteration needed to reproduce the from-scratch nullopt.
    ++stats_.tasks_skipped;
    return;
  }
  r = response_time_from_seed(tasks_, i, *r);
  ++stats_.tasks_reanalyzed;
  ++stats_.tasks_seeded;
}

TaskIndex IncrementalRta::add_task(Task task) {
  task.validate();
  LPFPS_CHECK_MSG(!priority_taken(task.priority, kNoTask),
                  "admission add: duplicate priority");
  ++stats_.mutations;
  const Priority added = task.priority;
  const TaskIndex index = tasks_.add(std::move(task));
  response_.emplace_back();

  if (mode_ == Mode::kFromScratch) {
    reanalyze_all();
    return index;
  }
  recompute(index);  // The newcomer has no prior state.
  for (TaskIndex i = 0; i < index; ++i) {
    if (tasks_[i].priority > added) {
      resume(i);  // Gained interference: old R seeds the new iteration.
    } else {
      ++stats_.tasks_kept;  // Higher priority: recurrence unchanged.
    }
  }
  return index;
}

bool IncrementalRta::try_add_task(Task task) {
  std::vector<std::optional<Time>> before = response_;
  add_task(std::move(task));
  if (schedulable()) return true;
  undo_add(std::move(before));
  return false;
}

void IncrementalRta::remove_task(TaskIndex index) {
  LPFPS_CHECK(index >= 0 &&
              static_cast<std::size_t>(index) < tasks_.size());
  ++stats_.mutations;
  const Priority removed = tasks_[index].priority;
  tasks_.remove(index);
  response_.erase(response_.begin() + index);

  if (mode_ == Mode::kFromScratch) {
    reanalyze_all();
    return;
  }
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    if (tasks_[i].priority > removed) {
      recompute(i);  // Lost interference: old R overshoots, start fresh.
    } else {
      ++stats_.tasks_kept;
    }
  }
}

void IncrementalRta::mutate_task(TaskIndex index, Task task) {
  LPFPS_CHECK(index >= 0 &&
              static_cast<std::size_t>(index) < tasks_.size());
  task.validate();
  LPFPS_CHECK_MSG(!priority_taken(task.priority, index),
                  "admission mutate: duplicate priority");
  ++stats_.mutations;
  const Task old = tasks_[index];
  const bool interference_same =
      task.priority == old.priority && task.wcet == old.wcet &&
      task.period == old.period;
  const bool interference_grew_only =
      task.priority == old.priority && task.wcet >= old.wcet &&
      task.period <= old.period;
  tasks_.replace(index, std::move(task));

  if (mode_ == Mode::kFromScratch) {
    reanalyze_all();
    return;
  }
  // The mutated task itself: its own recurrence may have shrunk (WCET
  // down) or its deadline bound moved, so always start fresh — one
  // task's scratch iteration is cheap.
  recompute(index);
  if (interference_same) {
    stats_.tasks_kept += static_cast<std::int64_t>(tasks_.size()) - 1;
    return;  // bcet/phase/deadline/name changes are invisible to others.
  }
  const Priority threshold =
      std::min(old.priority, tasks_[index].priority);
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    if (i == index) continue;
    if (tasks_[i].priority <= threshold) {
      ++stats_.tasks_kept;  // The mutated task never interfered here.
      continue;
    }
    if (interference_grew_only) {
      resume(i);
    } else {
      recompute(i);
    }
  }
}

void IncrementalRta::reanalyze_all() {
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    recompute(i);
  }
}

void IncrementalRta::reset(TaskSet tasks,
                           std::vector<std::optional<Time>> response_times) {
  LPFPS_CHECK(response_times.size() == tasks.size());
  tasks_ = std::move(tasks);
  response_ = std::move(response_times);
}

void IncrementalRta::undo_add(
    std::vector<std::optional<Time>> response_times) {
  LPFPS_CHECK(!tasks_.empty());
  tasks_.remove(static_cast<TaskIndex>(tasks_.size()) - 1);
  LPFPS_CHECK(response_times.size() == tasks_.size());
  response_ = std::move(response_times);
}

void IncrementalRta::undo_mutate(
    TaskIndex index, Task previous,
    std::vector<std::optional<Time>> response_times) {
  tasks_.replace(index, std::move(previous));
  LPFPS_CHECK(response_times.size() == tasks_.size());
  response_ = std::move(response_times);
}

}  // namespace lpfps::sched
