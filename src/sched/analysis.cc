#include "sched/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/float_compare.h"

namespace lpfps::sched {

double liu_layland_bound(int task_count) {
  LPFPS_CHECK(task_count > 0);
  const double n = task_count;
  return n * (std::pow(2.0, 1.0 / n) - 1.0);
}

bool passes_utilization_bound(const TaskSet& tasks) {
  LPFPS_CHECK(!tasks.empty());
  return tasks.utilization() <=
         liu_layland_bound(static_cast<int>(tasks.size())) + 1e-12;
}

std::optional<Time> response_time(const TaskSet& tasks, TaskIndex index) {
  tasks.validate();
  const Task& task = tasks[index];
  LPFPS_CHECK_MSG(task.deadline <= task.period,
                  "RTA requires constrained deadlines (D <= T)");

  // Fixed-point iteration R <- C_i + sum_hp ceil(R / T_j) C_j starting
  // from R = C_i.  The sequence is non-decreasing; it either converges or
  // exceeds the deadline (divergence for our purposes).
  double r = task.wcet;
  for (int iter = 0; iter < 100000; ++iter) {
    double next = task.wcet;
    for (const Task& other : tasks.tasks()) {
      if (other.priority >= task.priority) continue;
      LPFPS_CHECK(other.deadline <= other.period);
      const double jobs =
          std::ceil((r - kTimeEpsilon) / static_cast<double>(other.period));
      next += std::max(1.0, jobs) * other.wcet;
    }
    if (approx_equal(next, r)) return next;
    if (next > static_cast<double>(task.deadline) + kTimeEpsilon) {
      return std::nullopt;
    }
    r = next;
  }
  return std::nullopt;  // Did not converge within the iteration budget.
}

std::vector<std::optional<Time>> response_times(const TaskSet& tasks) {
  std::vector<std::optional<Time>> out;
  out.reserve(tasks.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    out.push_back(response_time(tasks, i));
  }
  return out;
}

std::optional<Time> response_time_from_seed(const TaskSet& tasks,
                                            TaskIndex index, Time seed) {
  const Task& task = tasks[index];
  LPFPS_CHECK_MSG(task.deadline <= task.period,
                  "RTA requires constrained deadlines (D <= T)");
  // Any seed at or below the least fixed point converges to it; the
  // iteration starts no lower than C_i (the from-scratch seed), which
  // also absorbs seeds made stale by an own-WCET increase.
  double r = std::max(seed, static_cast<double>(task.wcet));
  for (int iter = 0; iter < 100000; ++iter) {
    double next = task.wcet;
    for (const Task& other : tasks.tasks()) {
      if (other.priority >= task.priority) continue;
      const double jobs =
          std::ceil((r - kTimeEpsilon) / static_cast<double>(other.period));
      next += std::max(1.0, jobs) * other.wcet;
    }
    if (next == r) return r;  // Exact fixed point (see header).
    if (next > static_cast<double>(task.deadline) + kTimeEpsilon) {
      return std::nullopt;
    }
    r = next;
  }
  return std::nullopt;  // Did not converge within the iteration budget.
}

bool is_schedulable_rta(const TaskSet& tasks) {
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    const auto r = response_time(tasks, i);
    if (!r.has_value()) return false;
    if (definitely_greater(*r, static_cast<double>(tasks[i].deadline))) {
      return false;
    }
  }
  return true;
}

bool is_schedulable_edf(const TaskSet& tasks) {
  return approx_le(tasks.utilization(), 1.0);
}

Work demand_bound(const TaskSet& tasks, Time t) {
  LPFPS_CHECK(t >= 0.0);
  Work demand = 0.0;
  for (const Task& task : tasks.tasks()) {
    const double jobs =
        std::floor((t - static_cast<double>(task.deadline)) /
                   static_cast<double>(task.period)) +
        1.0;
    if (jobs > 0.0) demand += jobs * task.wcet;
  }
  return demand;
}

bool is_schedulable_edf_exact(const TaskSet& tasks) {
  LPFPS_CHECK(!tasks.empty());
  for (const Task& t : tasks.tasks()) {
    LPFPS_CHECK_MSG(t.deadline <= t.period,
                    "PDA here requires constrained deadlines");
    LPFPS_CHECK_MSG(t.phase == 0, "PDA assumes synchronous release");
  }
  const double u = tasks.utilization();
  if (definitely_greater(u, 1.0, 1e-9)) return false;
  if (tasks.implicit_deadlines()) return true;  // U <= 1 is exact.

  // Deadlines need checking only up to the smaller of the hyperperiod
  // and the Baruah-Rosier bound U/(1-U) * max(T_i - D_i) (when U < 1).
  double limit = static_cast<double>(tasks.hyperperiod());
  if (u < 1.0) {
    double max_gap = 0.0;
    for (const Task& t : tasks.tasks()) {
      max_gap = std::max(
          max_gap, static_cast<double>(t.period - t.deadline));
    }
    limit = std::min(limit, u / (1.0 - u) * max_gap);
  }

  for (const Task& t : tasks.tasks()) {
    for (double d = static_cast<double>(t.deadline); d <= limit + 1e-9;
         d += static_cast<double>(t.period)) {
      if (definitely_greater(demand_bound(tasks, d), d)) return false;
    }
  }
  return true;
}

AnalysisExtras AnalysisExtras::zero(const TaskSet& tasks) {
  AnalysisExtras extras;
  extras.jitter.assign(tasks.size(), 0.0);
  extras.blocking.assign(tasks.size(), 0.0);
  return extras;
}

void AnalysisExtras::validate(const TaskSet& tasks) const {
  LPFPS_CHECK(jitter.size() == tasks.size());
  LPFPS_CHECK(blocking.size() == tasks.size());
  for (const Time j : jitter) LPFPS_CHECK(j >= 0.0);
  for (const Time b : blocking) LPFPS_CHECK(b >= 0.0);
}

std::optional<Time> response_time_extended(const TaskSet& tasks,
                                           TaskIndex index,
                                           const AnalysisExtras& extras) {
  tasks.validate();
  extras.validate(tasks);
  const Task& task = tasks[index];
  LPFPS_CHECK_MSG(task.deadline <= task.period,
                  "RTA requires constrained deadlines (D <= T)");
  const auto at = [](const std::vector<Time>& v, TaskIndex i) {
    return v[static_cast<std::size_t>(i)];
  };

  const double own_jitter = at(extras.jitter, index);
  double w = task.wcet + at(extras.blocking, index);
  for (int iter = 0; iter < 100000; ++iter) {
    double next = task.wcet + at(extras.blocking, index);
    for (TaskIndex j = 0; j < static_cast<TaskIndex>(tasks.size()); ++j) {
      const Task& other = tasks[j];
      if (other.priority >= task.priority) continue;
      const double jobs = std::ceil(
          (w + at(extras.jitter, j) - kTimeEpsilon) /
          static_cast<double>(other.period));
      next += std::max(1.0, jobs) * other.wcet;
    }
    if (approx_equal(next, w)) return w + own_jitter;
    if (next + own_jitter >
        static_cast<double>(task.deadline) + kTimeEpsilon) {
      return std::nullopt;
    }
    w = next;
  }
  return std::nullopt;
}

bool is_schedulable_extended(const TaskSet& tasks,
                             const AnalysisExtras& extras) {
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    const auto r = response_time_extended(tasks, i, extras);
    if (!r.has_value()) return false;
    if (definitely_greater(*r, static_cast<double>(tasks[i].deadline))) {
      return false;
    }
  }
  return true;
}

double critical_scaling_factor(const TaskSet& tasks, double tolerance) {
  tasks.validate();
  LPFPS_CHECK(tolerance > 0.0);

  const auto schedulable_scaled = [&](double alpha) {
    TaskSet scaled = tasks;
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(scaled.size()); ++i) {
      Task& t = scaled.at(i);
      t.wcet *= alpha;
      t.bcet = std::min(t.bcet * alpha, t.wcet);
      if (t.wcet > static_cast<double>(t.deadline)) return false;
    }
    return is_schedulable_rta(scaled);
  };

  // Bracket: utilization bounds alpha above by 1/U (processor capacity).
  double lo = 0.0;
  double hi = 1.0 / tasks.utilization() + 1.0;
  if (!schedulable_scaled(tolerance)) return 0.0;
  lo = tolerance;
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2.0;
    if (schedulable_scaled(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Time static_idle_time_per_hyperperiod(const TaskSet& tasks) {
  // With synchronous release, D <= T and a schedulable set, every job
  // released in [0, H) also completes in [0, H), so idle time is exactly
  // H * (1 - U).
  LPFPS_CHECK(!tasks.empty());
  for (const Task& t : tasks.tasks()) LPFPS_CHECK(t.phase == 0);
  const double h = static_cast<double>(tasks.hyperperiod());
  const double u = tasks.utilization();
  LPFPS_CHECK_MSG(approx_le(u, 1.0), "overloaded task set");
  return h * (1.0 - u);
}

}  // namespace lpfps::sched
