// Periodic task model.
//
// The paper uses the classic Liu & Layland periodic model extended with
// deadlines (deadline-monotonic-compatible): each task tau_i releases an
// instance (a *job*) every T_i microseconds starting at its phase, each
// job needs at most C_i (WCET) and at least B_i (BCET) full-speed
// microseconds of processor time, and must finish within D_i of its
// release.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace lpfps::sched {

/// Priority value; lower value = higher priority (the real-time
/// scheduling convention, footnote 1 of the paper).
using Priority = int;

struct Task {
  std::string name;
  std::int64_t period = 0;    ///< T_i in microseconds (integer).
  std::int64_t deadline = 0;  ///< D_i in microseconds, relative to release.
  Work wcet = 0.0;            ///< C_i, worst-case execution time.
  Work bcet = 0.0;            ///< Best-case execution time (<= wcet).
  std::int64_t phase = 0;     ///< First release instant.
  Priority priority = 0;      ///< Lower value = higher priority.

  /// Processor utilization C_i / T_i.
  double utilization() const;

  /// Throws std::logic_error if any field is out of domain
  /// (period/deadline <= 0, wcet <= 0, bcet outside (0, wcet], wcet >
  /// deadline, phase < 0).
  void validate() const;
};

/// Convenience constructor for implicit-deadline tasks (D = T, phase 0,
/// BCET = WCET).  Priority must still be assigned (see sched/priority.h).
Task make_task(std::string name, std::int64_t period, Work wcet);

/// Full-field constructor with validation.
Task make_task(std::string name, std::int64_t period, std::int64_t deadline,
               Work wcet, Work bcet, std::int64_t phase = 0);

}  // namespace lpfps::sched
