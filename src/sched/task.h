// Periodic task model.
//
// The paper uses the classic Liu & Layland periodic model extended with
// deadlines (deadline-monotonic-compatible): each task tau_i releases an
// instance (a *job*) every T_i microseconds starting at its phase, each
// job needs at most C_i (WCET) and at least B_i (BCET) full-speed
// microseconds of processor time, and must finish within D_i of its
// release.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace lpfps::sched {

/// Priority value; lower value = higher priority (the real-time
/// scheduling convention, footnote 1 of the paper).
using Priority = int;

struct Task {
  std::string name;
  std::int64_t period = 0;    ///< T_i in microseconds (integer).
  std::int64_t deadline = 0;  ///< D_i in microseconds, relative to release.
  Work wcet = 0.0;            ///< C_i, worst-case execution time.
  Work bcet = 0.0;            ///< Best-case execution time (<= wcet).
  std::int64_t phase = 0;     ///< First release instant.
  Priority priority = 0;      ///< Lower value = higher priority.

  // Weakly-hard constraint (docs/WEAKLY_HARD.md).  A task declares at
  // most one of the two forms; both zero means hard (every deadline
  // binds).  Deadlines of weakly-hard tasks must satisfy D <= T so each
  // job's outcome is settled before the next release — the governor's
  // skip decisions then depend only on settled history.
  int mk_m = 0;    ///< (m,k)-firm: >= m met deadlines in every window of
                   ///< k consecutive jobs.  0 with mk_k == 0 means none.
  int mk_k = 0;    ///< (m,k)-firm window length; 1 <= m <= k <= 64 (the
                   ///< governor keeps the window in a 64-bit mask).
  int skip_s = 0;  ///< Skip-over parameter s >= 2: at most one skipped
                   ///< job per s consecutive jobs (== (s-1, s)-firm).

  /// True when the task carries an (m,k)-firm or skip-over constraint.
  bool weakly_hard() const { return mk_k > 0 || skip_s > 0; }

  /// The constraint as an (m, k) pair: (mk_m, mk_k) for (m,k)-firm
  /// tasks, (s-1, s) for skippable tasks, (0, 0) for hard tasks.
  int effective_m() const { return mk_k > 0 ? mk_m : (skip_s > 0 ? skip_s - 1 : 0); }
  int effective_k() const { return mk_k > 0 ? mk_k : skip_s; }

  /// Processor utilization C_i / T_i.
  double utilization() const;

  /// Throws std::logic_error if any field is out of domain
  /// (period/deadline <= 0, wcet <= 0, bcet outside (0, wcet], wcet >
  /// deadline, phase < 0, malformed weakly-hard parameters).
  void validate() const;
};

/// Convenience constructor for implicit-deadline tasks (D = T, phase 0,
/// BCET = WCET).  Priority must still be assigned (see sched/priority.h).
Task make_task(std::string name, std::int64_t period, Work wcet);

/// Full-field constructor with validation.
Task make_task(std::string name, std::int64_t period, std::int64_t deadline,
               Work wcet, Work bcet, std::int64_t phase = 0);

/// Returns `task` with an (m,k)-firm constraint attached (validated).
Task with_mk_constraint(Task task, int m, int k);

/// Returns `task` with a skip-over parameter attached (validated).
Task with_skip_parameter(Task task, int s);

}  // namespace lpfps::sched
