#include "sched/priority.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "sched/analysis.h"

namespace lpfps::sched {

namespace {

/// Assigns priorities 0..n-1 following the order of `keys` (stable by
/// index on ties).
void assign_by_key(TaskSet& tasks, const std::vector<std::int64_t>& keys) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    tasks.at(static_cast<TaskIndex>(order[rank])).priority =
        static_cast<Priority>(rank);
  }
}

}  // namespace

void assign_rate_monotonic(TaskSet& tasks) {
  std::vector<std::int64_t> keys;
  keys.reserve(tasks.size());
  for (const Task& t : tasks.tasks()) keys.push_back(t.period);
  assign_by_key(tasks, keys);
}

void assign_deadline_monotonic(TaskSet& tasks) {
  std::vector<std::int64_t> keys;
  keys.reserve(tasks.size());
  for (const Task& t : tasks.tasks()) keys.push_back(t.deadline);
  assign_by_key(tasks, keys);
}

bool assign_audsley_optimal(TaskSet& tasks) {
  // Audsley's algorithm: assign the lowest priority level to any task
  // that is schedulable at that level (all others assumed higher), then
  // recurse on the remainder.  If at some level no task fits, no
  // fixed-priority assignment exists.
  const int n = static_cast<int>(tasks.size());
  TaskSet work = tasks;
  std::vector<bool> placed(tasks.size(), false);
  std::vector<Priority> result(tasks.size(), 0);

  for (int level = n - 1; level >= 0; --level) {
    bool found = false;
    for (TaskIndex candidate = 0; candidate < n && !found; ++candidate) {
      if (placed[static_cast<std::size_t>(candidate)]) continue;
      // Tentatively give `candidate` the lowest unassigned level and all
      // other unplaced tasks strictly higher priorities.
      Priority next_high = 0;
      for (TaskIndex i = 0; i < n; ++i) {
        if (placed[static_cast<std::size_t>(i)]) {
          work.at(i).priority = result[static_cast<std::size_t>(i)];
        } else if (i == candidate) {
          work.at(i).priority = static_cast<Priority>(level);
        } else {
          work.at(i).priority = next_high++;
        }
      }
      LPFPS_CHECK(next_high <= level);
      const auto r = response_time(work, candidate);
      if (r.has_value() &&
          *r <= static_cast<double>(work[candidate].deadline)) {
        placed[static_cast<std::size_t>(candidate)] = true;
        result[static_cast<std::size_t>(candidate)] =
            static_cast<Priority>(level);
        found = true;
      }
    }
    if (!found) return false;
  }

  for (TaskIndex i = 0; i < n; ++i) {
    tasks.at(i).priority = result[static_cast<std::size_t>(i)];
  }
  return true;
}

}  // namespace lpfps::sched
