// Independent schedule validation.
//
// Replays a recorded Trace against the task-set ground truth and checks
// the properties any (work-conserving, preemptive, fixed-priority)
// power-managed schedule must satisfy — without reusing any engine
// logic, so engine bugs cannot vouch for themselves:
//
//   S1  segments are contiguous, forward-running, with ratios in (0,1];
//   S2  a task only runs inside one of its job windows
//       [release_k, completion_k];
//   S3  the work integral (ratio dt) inside each job window matches the
//       job record's executed time;
//   S4  while a higher-priority job is pending (released, unfinished),
//       no lower-priority task runs — the fixed-priority invariant;
//   S5  while any job is pending the processor is running (work
//       conservation: LPFPS never idles or sleeps with work queued);
//   S6  completion <= absolute deadline for every job not flagged
//       missed, and flagged records really are late.
//
// Requires a trace recorded with job records (EngineOptions::
// record_trace) over a task set with unique priorities and D <= T.
//
// The window model assumes *exact* periodic releases and in-contract
// demand.  Traces produced under release jitter or fault injection
// (overruns, kills) break that assumption structurally, so the
// validator detects them up front — declared jitter, off-nominal
// releases, killed records, past-WCET demand — and rejects with one
// precise diagnostic instead of reporting a cascade of bogus S2-S5
// violations.  Use audit::audit_run for those traces: its option set
// models jitter and fault relaxations explicitly.
#pragma once

#include <string>
#include <vector>

#include "sched/task_set.h"
#include "sim/trace.h"

namespace lpfps::sched {

struct ValidationReport {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  /// All violations joined by newlines (test-failure friendly).
  std::string to_string() const;
};

struct ValidatorOptions {
  /// Time tolerance for boundary coincidences, in microseconds.
  double epsilon = 1e-5;
  /// Stop after this many violations (the rest are usually echoes).
  int max_violations = 20;
  /// Check S5 (no idling while work pending).  True for every policy in
  /// this library; disable for externally produced non-work-conserving
  /// schedules.
  bool require_work_conserving = true;
  /// Declared per-task release jitter of the run that produced the
  /// trace (mirror EngineOptions::release_jitter here).  Any non-zero
  /// entry makes the validator reject the trace up front — its window
  /// model has no jitter notion — naming the declaration instead of
  /// misattributing the drift to schedule bugs.
  std::vector<Time> release_jitter;
};

ValidationReport validate_schedule(const sim::Trace& trace,
                                   const TaskSet& tasks,
                                   const ValidatorOptions& options = {});

}  // namespace lpfps::sched
