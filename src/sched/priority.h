// Fixed-priority assignment policies.
//
// Rate-monotonic (Liu & Layland [1]): shorter period = higher priority;
// optimal among fixed-priority policies for implicit deadlines.
// Deadline-monotonic (Audsley et al. [4]): shorter relative deadline =
// higher priority; optimal for constrained deadlines (D <= T).
// Audsley's algorithm: optimal priority ordering for the general case,
// built on the exact response-time test (sched/analysis.h).
#pragma once

#include "sched/task_set.h"

namespace lpfps::sched {

/// Assigns rate-monotonic priorities in place (0 = highest).  Ties on the
/// period are broken by index order, making the assignment deterministic.
void assign_rate_monotonic(TaskSet& tasks);

/// Assigns deadline-monotonic priorities in place (0 = highest), ties by
/// index order.
void assign_deadline_monotonic(TaskSet& tasks);

/// Audsley's optimal priority assignment: tries to find *some* priority
/// ordering under which every task passes the exact response-time test.
/// On success assigns priorities in place and returns true; on failure
/// (no fixed-priority ordering is feasible) leaves priorities untouched
/// and returns false.
bool assign_audsley_optimal(TaskSet& tasks);

}  // namespace lpfps::sched
