#include "sched/task_set.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/math_utils.h"

namespace lpfps::sched {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  for (const Task& t : tasks_) t.validate();
}

TaskIndex TaskSet::add(Task task) {
  task.validate();
  tasks_.push_back(std::move(task));
  return static_cast<TaskIndex>(tasks_.size() - 1);
}

void TaskSet::remove(TaskIndex index) {
  LPFPS_CHECK(index >= 0 && static_cast<std::size_t>(index) < tasks_.size());
  tasks_.erase(tasks_.begin() + index);
}

void TaskSet::replace(TaskIndex index, Task task) {
  LPFPS_CHECK(index >= 0 && static_cast<std::size_t>(index) < tasks_.size());
  task.validate();
  tasks_[static_cast<std::size_t>(index)] = std::move(task);
}

const Task& TaskSet::operator[](TaskIndex index) const {
  LPFPS_CHECK(index >= 0 && static_cast<std::size_t>(index) < tasks_.size());
  return tasks_[static_cast<std::size_t>(index)];
}

Task& TaskSet::at(TaskIndex index) {
  LPFPS_CHECK(index >= 0 && static_cast<std::size_t>(index) < tasks_.size());
  return tasks_[static_cast<std::size_t>(index)];
}

double TaskSet::utilization() const {
  double u = 0.0;
  for (const Task& t : tasks_) u += t.utilization();
  return u;
}

std::int64_t TaskSet::hyperperiod() const {
  LPFPS_CHECK(!tasks_.empty());
  std::vector<std::int64_t> periods;
  periods.reserve(tasks_.size());
  for (const Task& t : tasks_) periods.push_back(t.period);
  return lcm64(periods);
}

Work TaskSet::min_wcet() const {
  LPFPS_CHECK(!tasks_.empty());
  Work w = tasks_.front().wcet;
  for (const Task& t : tasks_) w = std::min(w, t.wcet);
  return w;
}

Work TaskSet::max_wcet() const {
  LPFPS_CHECK(!tasks_.empty());
  Work w = tasks_.front().wcet;
  for (const Task& t : tasks_) w = std::max(w, t.wcet);
  return w;
}

std::vector<std::string> TaskSet::names() const {
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const Task& t : tasks_) out.push_back(t.name);
  return out;
}

bool TaskSet::implicit_deadlines() const {
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [](const Task& t) { return t.deadline == t.period; });
}

bool TaskSet::priorities_are_unique() const {
  std::set<Priority> seen;
  for (const Task& t : tasks_) {
    if (!seen.insert(t.priority).second) return false;
  }
  return true;
}

bool TaskSet::has_weakly_hard() const {
  return std::any_of(tasks_.begin(), tasks_.end(),
                     [](const Task& t) { return t.weakly_hard(); });
}

void TaskSet::validate() const {
  for (const Task& t : tasks_) t.validate();
  LPFPS_CHECK_MSG(priorities_are_unique(), "duplicate priorities");
}

TaskSet TaskSet::with_bcet_ratio(double ratio) const {
  LPFPS_CHECK(ratio > 0.0 && ratio <= 1.0);
  TaskSet copy = *this;
  for (Task& t : copy.tasks_) t.bcet = t.wcet * ratio;
  return copy;
}

}  // namespace lpfps::sched
