// Schedulability analysis for fixed-priority preemptive scheduling.
//
// Two classic tests:
//  * the Liu & Layland utilization bound U <= n(2^{1/n} - 1), sufficient
//    for rate-monotonic with implicit deadlines;
//  * exact response-time analysis (Joseph & Pandya [3], Audsley et al.):
//      R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j
//    iterated to a fixed point, valid for D_i <= T_i and synchronous
//    release (critical instant), which covers every workload in the
//    paper.
#pragma once

#include <optional>
#include <vector>

#include "common/units.h"
#include "sched/task_set.h"

namespace lpfps::sched {

/// Liu & Layland utilization bound for n tasks: n(2^{1/n} - 1).
double liu_layland_bound(int task_count);

/// True if the set passes the (sufficient, not necessary) LL bound.
bool passes_utilization_bound(const TaskSet& tasks);

/// Worst-case response time of task `index` under the set's current
/// priorities, or nullopt if the iteration diverges past the deadline
/// (unschedulable at this priority level).  Preconditions: unique
/// priorities, D_i <= T_i for all tasks.
std::optional<Time> response_time(const TaskSet& tasks, TaskIndex index);

/// Response times for all tasks (nullopt entries where divergent).
std::vector<std::optional<Time>> response_times(const TaskSet& tasks);

/// Response time of task `index` iterated from an explicit seed and
/// terminated only on an *exact* (bitwise) fixed point — the primitive
/// the incremental analysis (sched/incremental_rta.h) is built on.
///
/// Exactness: each iterate is C_i + sum_j n_j * C_j where the n_j are
/// integer job counts, so the iterate's double value is a pure function
/// of the count vector; the counts are non-decreasing along the
/// iteration and bounded, hence eventually constant, at which point
/// next == r holds bitwise.  Because the convergent value depends only
/// on the final count vector (summed in task-index order), *any* seed
/// below the least fixed point converges to the bit-identical result:
/// seeding from C_i (from scratch) and seeding from a previous response
/// time after interference grew (incremental) agree to the last ulp.
///
/// Preconditions (checked where cheap): D_i <= T_i; seed <= the least
/// fixed point — holds for seed == C_i and for seed == the exact
/// response time under a subset of the current interference (seeds
/// below C_i are clamped up to C_i, the from-scratch start).
/// Unlike response_time() this does not re-validate the whole set per
/// call; the admission service validates once per mutation instead.
std::optional<Time> response_time_from_seed(const TaskSet& tasks,
                                            TaskIndex index, Time seed);

/// Exact fixed-priority schedulability: every task's response time exists
/// and is <= its deadline.
bool is_schedulable_rta(const TaskSet& tasks);

/// EDF schedulability for implicit deadlines: U <= 1 (exact; Liu &
/// Layland).  For constrained deadlines this is only necessary.
bool is_schedulable_edf(const TaskSet& tasks);

/// Demand bound function: the total work of jobs with both release and
/// deadline inside [0, t] under synchronous release:
///   h(t) = sum_i max(0, floor((t - D_i) / T_i) + 1) * C_i.
Work demand_bound(const TaskSet& tasks, Time t);

/// Exact EDF test for constrained deadlines (Baruah/Rosier processor
/// demand analysis): U <= 1 and h(t) <= t at every absolute deadline in
/// (0, min(hyperperiod, busy-period bound)].  Reduces to the U <= 1
/// test for implicit deadlines.
bool is_schedulable_edf_exact(const TaskSet& tasks);

/// Total slack of the synchronous busy period: the amount of idle time in
/// [0, hyperperiod) when every job takes its WCET at full speed.  This is
/// the "inherent" slack LPFPS exploits even at BCET == WCET.
Time static_idle_time_per_hyperperiod(const TaskSet& tasks);

// ---------------------------------------------------------------------
// Extended response-time analysis (Audsley/Burns/Tindell/Wellings —
// the framework of the paper's references [4] and [18]).
// ---------------------------------------------------------------------

/// Per-task analysis extensions.  Indexed like the TaskSet.
struct AnalysisExtras {
  /// Release jitter J_i: a job released at t may only become visible to
  /// the scheduler by t + J_i.  Interference from tau_j then counts
  /// ceil((R + J_j) / T_j) jobs, and the reported response time is
  /// measured from the nominal release: R_i = w_i + J_i.
  std::vector<Time> jitter;
  /// Blocking B_i: the longest time tau_i can be delayed by a lower-
  /// priority task holding a shared resource (priority-ceiling bound).
  std::vector<Time> blocking;

  /// All-zero extras sized for `tasks`.
  static AnalysisExtras zero(const TaskSet& tasks);
  void validate(const TaskSet& tasks) const;
};

/// Response time with jitter and blocking:
///   w = C_i + B_i + sum_{j in hp} ceil((w + J_j) / T_j) C_j,
///   R_i = w + J_i,
/// or nullopt on divergence past the deadline.  With zero extras this
/// reduces exactly to response_time().
std::optional<Time> response_time_extended(const TaskSet& tasks,
                                           TaskIndex index,
                                           const AnalysisExtras& extras);

/// Schedulability under the extended model.
bool is_schedulable_extended(const TaskSet& tasks,
                             const AnalysisExtras& extras);

/// The critical scaling factor: the largest multiplier alpha such that
/// the set stays RTA-schedulable with every WCET scaled by alpha
/// (bisection to `tolerance`).  alpha < 1 means unschedulable as given;
/// alpha == 1 + epsilon characterizes "just meets schedulability"
/// (paper §2.3's Table 1 has alpha ~= 1).  Its reciprocal is the
/// minimal feasible static clock ratio on a continuous table.
double critical_scaling_factor(const TaskSet& tasks,
                               double tolerance = 1e-6);

}  // namespace lpfps::sched
