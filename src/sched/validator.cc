#include "sched/validator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "common/check.h"

namespace lpfps::sched {

namespace {

/// A job's ground-truth window, reconstructed from its record.
struct JobWindow {
  std::int64_t instance = 0;
  double release = 0.0;
  double completion = 0.0;  ///< = +inf for never-finished jobs.
  double executed = 0.0;
};

class Validator {
 public:
  Validator(const sim::Trace& trace, const TaskSet& tasks,
            const ValidatorOptions& options)
      : trace_(trace), tasks_(tasks), options_(options) {}

  ValidationReport run() {
    tasks_.validate();
    if (reject_incompatible_trace()) return std::move(report_);
    collect_jobs();
    check_segment_structure();     // S1
    check_run_inside_windows();    // S2
    check_work_integrals();        // S3
    check_priority_invariant();    // S4
    if (options_.require_work_conserving) check_work_conserving();  // S5
    check_deadline_records();      // S6
    return std::move(report_);
  }

 private:
  void violation(const std::string& message) {
    if (static_cast<int>(report_.violations.size()) <
        options_.max_violations) {
      report_.violations.push_back(message);
    }
  }

  const std::string& name(TaskIndex task) const {
    return tasks_[task].name;
  }

  /// The validator's window model assumes exact periodic releases and
  /// in-contract demand.  Jittered or fault-injected traces break that
  /// structurally; detect them here and emit exactly one precise
  /// rejection instead of a cascade of misleading S2-S5 violations.
  /// Returns true when the trace was rejected.
  bool reject_incompatible_trace() {
    for (const Time jitter : options_.release_jitter) {
      if (jitter > 0.0) {
        violation(
            "trace rejected: the run declares non-zero release jitter, "
            "which this validator's exact-periodic window model cannot "
            "represent; use audit::audit_run (its jitter relaxations are "
            "explicit) or validate a jitter-free run");
        return true;
      }
    }
    for (const sim::JobRecord& record : trace_.jobs()) {
      if (record.task < 0 ||
          static_cast<std::size_t>(record.task) >= tasks_.size()) {
        continue;  // collect_jobs reports the bad index.
      }
      const Task& t = tasks_[record.task];
      if (record.killed) {
        violation("trace rejected: " + name(record.task) + " instance " +
                  std::to_string(record.instance) +
                  " is a killed job record (fault containment); the "
                  "validator assumes every record runs to completion — "
                  "use audit::audit_run with its containment options");
        return true;
      }
      const double nominal =
          static_cast<double>(t.phase) +
          static_cast<double>(record.instance) *
              static_cast<double>(t.period);
      if (std::fabs(record.release - nominal) > options_.epsilon) {
        violation("trace rejected: " + name(record.task) + " instance " +
                  std::to_string(record.instance) + " released at " +
                  std::to_string(record.release) +
                  " but the exact periodic model requires phase + k*T = " +
                  std::to_string(nominal) +
                  "; jittered traces need audit::audit_run");
        return true;
      }
      if (record.finished &&
          record.executed >
              static_cast<double>(t.wcet) + options_.epsilon * 10.0) {
        violation("trace rejected: " + name(record.task) + " instance " +
                  std::to_string(record.instance) + " executed " +
                  std::to_string(record.executed) + " > WCET " +
                  std::to_string(static_cast<double>(t.wcet)) +
                  " (an injected overrun or charged overhead); the "
                  "validator's demand model assumes in-contract jobs — "
                  "use audit::audit_run with check_job_demand relaxed");
        return true;
      }
    }
    return false;
  }

  void collect_jobs() {
    jobs_.resize(tasks_.size());
    for (const sim::JobRecord& record : trace_.jobs()) {
      if (record.task < 0 ||
          static_cast<std::size_t>(record.task) >= tasks_.size()) {
        violation("job record references unknown task index " +
                  std::to_string(record.task));
        continue;
      }
      JobWindow window;
      window.instance = record.instance;
      window.release = record.release;
      window.completion = record.finished
                              ? record.completion
                              : std::numeric_limits<double>::infinity();
      window.executed = record.executed;
      jobs_[static_cast<std::size_t>(record.task)].push_back(window);

      // Releases are deterministic: check the record's release against
      // the task parameters.
      const Task& t = tasks_[record.task];
      const double expected =
          static_cast<double>(t.phase) +
          static_cast<double>(record.instance) * static_cast<double>(t.period);
      if (std::fabs(record.release - expected) > options_.epsilon) {
        violation(name(record.task) + " instance " +
                  std::to_string(record.instance) +
                  ": release " + std::to_string(record.release) +
                  " != phase + k*T = " + std::to_string(expected));
      }
    }
    for (auto& windows : jobs_) {
      std::sort(windows.begin(), windows.end(),
                [](const JobWindow& a, const JobWindow& b) {
                  return a.release < b.release;
                });
    }
  }

  void check_segment_structure() {
    const auto& segments = trace_.segments();
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const sim::Segment& s = segments[i];
      if (s.end <= s.begin + 0.0) {
        violation("segment " + std::to_string(i) + " is empty or reversed");
      }
      if (i > 0 &&
          std::fabs(segments[i - 1].end - s.begin) > options_.epsilon) {
        violation("gap between segments " + std::to_string(i - 1) +
                  " and " + std::to_string(i));
      }
      if (s.ratio_begin <= 0.0 || s.ratio_begin > 1.0 + 1e-9 ||
          s.ratio_end <= 0.0 || s.ratio_end > 1.0 + 1e-9) {
        violation("segment " + std::to_string(i) +
                  " has speed ratio outside (0, 1]");
      }
      if (s.mode == sim::ProcessorMode::kRunning && s.task == kNoTask) {
        violation("running segment " + std::to_string(i) +
                  " names no task");
      }
    }
  }

  /// The job window that contains time t for `task`, or nullptr.
  const JobWindow* window_at(TaskIndex task, double t) const {
    for (const JobWindow& w : jobs_[static_cast<std::size_t>(task)]) {
      if (t >= w.release - options_.epsilon &&
          t <= w.completion + options_.epsilon) {
        return &w;
      }
    }
    return nullptr;
  }

  void check_run_inside_windows() {
    for (const sim::Segment& s : trace_.segments()) {
      if (s.mode != sim::ProcessorMode::kRunning || s.task == kNoTask) {
        continue;
      }
      const double mid = (s.begin + s.end) / 2.0;
      if (window_at(s.task, mid) == nullptr &&
          !runs_into_unrecorded_job(s)) {
        violation(name(s.task) + " runs at t=" + std::to_string(mid) +
                  " outside any of its job windows");
      }
    }
  }

  /// A segment may belong to a job still in flight at the horizon (no
  /// record).  It is legitimate iff it starts at/after a release that
  /// has no record.
  bool runs_into_unrecorded_job(const sim::Segment& s) const {
    const Task& t = tasks_[s.task];
    const auto& windows = jobs_[static_cast<std::size_t>(s.task)];
    const std::int64_t next_instance =
        windows.empty() ? 0
                        : windows.back().instance + 1;
    const double release =
        static_cast<double>(t.phase) +
        static_cast<double>(next_instance) * static_cast<double>(t.period);
    return s.begin >= release - options_.epsilon;
  }

  void check_work_integrals() {
    for (TaskIndex task = 0; task < static_cast<TaskIndex>(tasks_.size());
         ++task) {
      for (const JobWindow& w : jobs_[static_cast<std::size_t>(task)]) {
        if (!std::isfinite(w.completion)) continue;
        double work = 0.0;
        for (const sim::Segment& s : trace_.segments()) {
          if (s.mode != sim::ProcessorMode::kRunning || s.task != task) {
            continue;
          }
          const double lo = std::max(s.begin, w.release);
          const double hi = std::min(s.end, w.completion);
          if (hi <= lo) continue;
          // Linear ratio over the segment: integrate the clipped part.
          const double span = s.end - s.begin;
          const double r_lo =
              s.ratio_begin +
              (s.ratio_end - s.ratio_begin) * ((lo - s.begin) / span);
          const double r_hi =
              s.ratio_begin +
              (s.ratio_end - s.ratio_begin) * ((hi - s.begin) / span);
          work += (r_lo + r_hi) / 2.0 * (hi - lo);
        }
        // Tolerance scales with the work: ramp integrals accumulate
        // rounding across many segments.
        const double tol = options_.epsilon * 10.0 + w.executed * 1e-9;
        if (std::fabs(work - w.executed) > tol) {
          violation(name(task) + " instance " +
                    std::to_string(w.instance) + ": executed " +
                    std::to_string(w.executed) +
                    " but segments integrate to " + std::to_string(work));
        }
      }
    }
  }

  /// True if `task` has a pending (released, unfinished) job throughout
  /// a non-empty sub-interval of (begin, end).
  bool pending_overlap(TaskIndex task, double begin, double end) const {
    for (const JobWindow& w : jobs_[static_cast<std::size_t>(task)]) {
      const double lo = std::max(begin, w.release);
      const double hi = std::min(end, w.completion);
      if (hi - lo > options_.epsilon * 10.0) return true;
    }
    return false;
  }

  void check_priority_invariant() {
    for (const sim::Segment& s : trace_.segments()) {
      if (s.mode != sim::ProcessorMode::kRunning || s.task == kNoTask) {
        continue;
      }
      for (TaskIndex other = 0;
           other < static_cast<TaskIndex>(tasks_.size()); ++other) {
        if (other == s.task) continue;
        if (tasks_[other].priority >= tasks_[s.task].priority) continue;
        if (pending_overlap(other, s.begin, s.end)) {
          violation(name(s.task) + " runs in [" + std::to_string(s.begin) +
                    ", " + std::to_string(s.end) +
                    ") while higher-priority " + name(other) +
                    " has a pending job");
        }
      }
    }
  }

  void check_work_conserving() {
    for (const sim::Segment& s : trace_.segments()) {
      if (s.mode == sim::ProcessorMode::kRunning) continue;
      for (TaskIndex task = 0; task < static_cast<TaskIndex>(tasks_.size());
           ++task) {
        if (pending_overlap(task, s.begin, s.end)) {
          violation("processor is " + std::string(to_string(s.mode)) +
                    " in [" + std::to_string(s.begin) + ", " +
                    std::to_string(s.end) + ") while " + name(task) +
                    " has a pending job");
          break;
        }
      }
    }
  }

  void check_deadline_records() {
    for (const sim::JobRecord& record : trace_.jobs()) {
      if (!record.finished) continue;
      const bool late = record.completion >
                        record.absolute_deadline + options_.epsilon;
      if (late && !record.missed_deadline) {
        violation(name(record.task) + " instance " +
                  std::to_string(record.instance) +
                  " finished late but is not flagged as a miss");
      }
      if (!late && record.missed_deadline) {
        violation(name(record.task) + " instance " +
                  std::to_string(record.instance) +
                  " flagged as a miss but finished on time");
      }
    }
  }

  const sim::Trace& trace_;
  const TaskSet& tasks_;
  const ValidatorOptions& options_;
  std::vector<std::vector<JobWindow>> jobs_;
  ValidationReport report_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const std::string& violation : violations) os << violation << "\n";
  return os.str();
}

ValidationReport validate_schedule(const sim::Trace& trace,
                                   const TaskSet& tasks,
                                   const ValidatorOptions& options) {
  Validator validator(trace, tasks, options);
  return validator.run();
}

}  // namespace lpfps::sched
