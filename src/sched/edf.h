// Earliest-deadline-first reference scheduler.
//
// The paper contrasts fixed-priority scheduling with EDF (optimal dynamic
// priorities, schedulable iff U <= 1 for implicit deadlines).  This
// simulator exists as a comparison substrate: extension benches use it to
// study how the idle-time structure (which LPFPS feeds on) differs
// between RM and EDF schedules.
#pragma once

#include "sched/kernel.h"
#include "sched/task_set.h"
#include "sim/trace.h"

namespace lpfps::sched {

class EdfKernel {
 public:
  /// Priorities in the task set are ignored; deadlines drive dispatch.
  explicit EdfKernel(TaskSet tasks);

  /// Overrides the default all-jobs-take-WCET behaviour.
  void set_exec_time_provider(ExecTimeProvider provider);

  /// Simulates [0, horizon) under preemptive EDF.  Ties on the absolute
  /// deadline break by task index (deterministic).
  KernelResult run(Time horizon);

 private:
  TaskSet tasks_;
  ExecTimeProvider exec_time_;
};

}  // namespace lpfps::sched
