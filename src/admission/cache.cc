#include "admission/cache.h"

#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace lpfps::admission {

std::optional<std::size_t> cache_capacity_from_env() {
  const char* value = std::getenv("LPFPS_ADMISSION_CACHE");
  if (value == nullptr || *value == '\0') return std::nullopt;
  if (*value == '-') return std::nullopt;  // strtoull would wrap it.
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return std::nullopt;  // Not a number.
  return static_cast<std::size_t>(parsed);
}

AdmissionCache::AdmissionCache(std::size_t capacity) : capacity_(capacity) {}

const CacheEntry* AdmissionCache::find(std::uint64_t digest,
                                       std::string_view key) {
  auto it = map_.find(digest);
  if (it == map_.end()) {
    saturating_increment(counters_.misses);
    return nullptr;
  }
  if (it->second.key != key) {
    // Same 64-bit digest, different task set: never serve it.
    saturating_increment(counters_.collisions);
    saturating_increment(counters_.misses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  saturating_increment(counters_.hits);
  return &it->second.entry;
}

void AdmissionCache::insert(std::uint64_t digest, std::string key,
                            CacheEntry entry) {
  if (capacity_ == 0) return;
  auto it = map_.find(digest);
  if (it != map_.end()) {
    // Replace in place (digest collision overwrites: the canonical key
    // travels with the entry, so a stale occupant can only turn later
    // lookups of the old set into counted misses, never wrong answers).
    it->second.key = std::move(key);
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    saturating_increment(counters_.insertions);
    return;
  }
  if (map_.size() >= capacity_) {
    LPFPS_CHECK(!lru_.empty());
    map_.erase(lru_.back());
    lru_.pop_back();
    saturating_increment(counters_.evictions);
  }
  lru_.push_front(digest);
  map_.emplace(digest,
               Node{std::move(key), std::move(entry), lru_.begin()});
  saturating_increment(counters_.insertions);
}

SharedAdmissionCache::SharedAdmissionCache(std::size_t capacity,
                                           std::size_t shards) {
  LPFPS_CHECK(shards > 0);
  // Even split, rounded up so a nonzero total never silently disables a
  // shard; capacity 0 disables every shard (the AdmissionCache rule).
  const std::size_t per_shard =
      capacity == 0 ? 0 : (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

SharedAdmissionCache::Shard& SharedAdmissionCache::shard_for(
    std::uint64_t digest) {
  // Fibonacci-mix the digest before taking shard bits: the low FNV bits
  // also feed the shard map's bucketing, and reusing them raw would
  // correlate shard choice with in-shard placement.
  const std::uint64_t mixed = digest * 0x9e3779b97f4a7c15ull;
  return *shards_[static_cast<std::size_t>(mixed >> 32) % shards_.size()];
}

std::optional<CacheEntry> SharedAdmissionCache::find(std::uint64_t digest,
                                                     std::string_view key,
                                                     bool* collision) {
  Shard& shard = shard_for(digest);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint64_t collisions_before = shard.cache.counters().collisions;
  const CacheEntry* hit = shard.cache.find(digest, key);
  if (collision != nullptr) {
    *collision = shard.cache.counters().collisions != collisions_before;
  }
  if (hit == nullptr) return std::nullopt;
  return *hit;  // Copy out under the lock.
}

void SharedAdmissionCache::insert(std::uint64_t digest, std::string key,
                                  CacheEntry entry) {
  Shard& shard = shard_for(digest);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.cache.insert(digest, std::move(key), std::move(entry));
}

std::size_t SharedAdmissionCache::capacity() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->cache.capacity();
  return total;
}

std::size_t SharedAdmissionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->cache.size();
  }
  return total;
}

CacheCounters SharedAdmissionCache::counters() const {
  CacheCounters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    const CacheCounters& c = shard->cache.counters();
    saturating_add(total.hits, c.hits);
    saturating_add(total.misses, c.misses);
    saturating_add(total.insertions, c.insertions);
    saturating_add(total.evictions, c.evictions);
    saturating_add(total.collisions, c.collisions);
  }
  return total;
}

}  // namespace lpfps::admission
