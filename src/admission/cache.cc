#include "admission/cache.h"

#include <utility>

#include "common/check.h"

namespace lpfps::admission {

AdmissionCache::AdmissionCache(std::size_t capacity) : capacity_(capacity) {}

const CacheEntry* AdmissionCache::find(std::uint64_t digest,
                                       std::string_view key) {
  auto it = map_.find(digest);
  if (it == map_.end()) {
    saturating_increment(counters_.misses);
    return nullptr;
  }
  if (it->second.key != key) {
    // Same 64-bit digest, different task set: never serve it.
    saturating_increment(counters_.collisions);
    saturating_increment(counters_.misses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  saturating_increment(counters_.hits);
  return &it->second.entry;
}

void AdmissionCache::insert(std::uint64_t digest, std::string key,
                            CacheEntry entry) {
  if (capacity_ == 0) return;
  auto it = map_.find(digest);
  if (it != map_.end()) {
    // Replace in place (digest collision overwrites: the canonical key
    // travels with the entry, so a stale occupant can only turn later
    // lookups of the old set into counted misses, never wrong answers).
    it->second.key = std::move(key);
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    saturating_increment(counters_.insertions);
    return;
  }
  if (map_.size() >= capacity_) {
    LPFPS_CHECK(!lru_.empty());
    map_.erase(lru_.back());
    lru_.pop_back();
    saturating_increment(counters_.evictions);
  }
  lru_.push_front(digest);
  map_.emplace(digest,
               Node{std::move(key), std::move(entry), lru_.begin()});
  saturating_increment(counters_.insertions);
}

}  // namespace lpfps::admission
