#include "admission/workload.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "runner/runner.h"
#include "sched/analysis.h"
#include "sched/task.h"
#include "workloads/generator.h"

namespace lpfps::admission {

namespace {

/// Log-uniform period on the config's grid (the generator's convention).
std::int64_t draw_period(const ChurnConfig& config, Rng& rng) {
  const double lo = std::log(static_cast<double>(config.period_min));
  const double hi = std::log(static_cast<double>(config.period_max));
  const double p = std::exp(rng.uniform(lo, hi));
  const std::int64_t g = config.period_granularity;
  std::int64_t period = static_cast<std::int64_t>(std::llround(p / g)) * g;
  return std::clamp(period, config.period_min, config.period_max);
}

ChurnOp draw_op(const ChurnConfig& config, Rng& rng) {
  ChurnOp op;
  const double roll = rng.uniform(0.0, 1.0);
  if (roll < config.add_fraction) {
    op.kind = RequestKind::kAdd;
  } else if (roll < config.add_fraction + config.remove_fraction) {
    op.kind = RequestKind::kRemove;
  } else {
    op.kind = RequestKind::kMutate;
  }
  // Draw every field for every kind so a given op index always consumes
  // the same number of Rng values — the stream stays stable if a
  // config's mix changes between runs of the same seed.
  op.pick = static_cast<std::uint64_t>(rng.uniform_int(0, 1'000'000'000));
  op.period = draw_period(config, rng);
  const double u = rng.uniform(config.task_utilization_min,
                               config.task_utilization_max);
  op.wcet = std::max(1.0, u * static_cast<double>(op.period));
  const double dr = rng.uniform(config.deadline_ratio_min, 1.0);
  op.deadline =
      std::max(static_cast<std::int64_t>(std::ceil(op.wcet)),
               static_cast<std::int64_t>(dr * static_cast<double>(op.period)));
  op.deadline = std::min(op.deadline, op.period);
  op.bcet_ratio = config.bcet_ratio;
  op.priority_hint =
      static_cast<sched::Priority>(rng.uniform_int(0, config.priority_space - 1));
  if (config.deadline_monotonic_hints) {
    // Deterministic transform of already-drawn values (no extra Rng
    // consumption): map the deadline's position on the log-period grid
    // to a priority band, shorter deadline = higher priority.
    const double lo = std::log(static_cast<double>(config.period_min));
    const double hi = std::log(static_cast<double>(config.period_max));
    const double pos =
        hi > lo ? (std::log(static_cast<double>(op.deadline)) - lo) / (hi - lo)
                : 0.0;
    op.priority_hint = std::clamp(
        static_cast<sched::Priority>(pos * config.priority_space), 0,
        config.priority_space - 1);
  }
  op.change_priority =
      rng.uniform(0.0, 1.0) < config.mutate_priority_fraction;
  // Both draws happen unconditionally (and after every field above) so
  // op streams stay aligned across configs that differ only in the
  // relative-mutate mix — the same per-op Rng values land in the same
  // fields regardless of the roll.
  const bool relative = rng.uniform(0.0, 1.0) < config.relative_mutates;
  const double scale =
      rng.uniform(config.mutate_scale_min, config.mutate_scale_max);
  op.scale = relative ? scale : 0.0;
  return op;
}

/// Smallest priority >= hint not used by any task except `except`.
sched::Priority probe_priority(const sched::TaskSet& current,
                               sched::Priority hint, TaskIndex except) {
  sched::Priority p = hint;
  for (bool taken = true; taken; ++p) {
    taken = false;
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(current.size()); ++i) {
      if (i == except) continue;
      if (current[i].priority == p) {
        taken = true;
        break;
      }
    }
    if (!taken) return p;
  }
  return p;  // Unreachable; the probe always finds a free value.
}

sched::Task op_task(const ChurnOp& op, sched::Priority priority) {
  sched::Task task = sched::make_task(
      "churn", op.period, op.deadline, op.wcet,
      std::max(1e-9, op.wcet * op.bcet_ratio), /*phase=*/0);
  task.priority = priority;
  return task;
}

}  // namespace

ChurnStream make_churn_stream(const ChurnConfig& config,
                              std::uint64_t seed) {
  LPFPS_CHECK(config.requests >= 0);
  LPFPS_CHECK(config.initial_tasks >= 0);
  ChurnStream stream;

  workloads::GeneratorConfig gen;
  gen.task_count = config.initial_tasks;
  gen.total_utilization = config.initial_utilization;
  gen.period_min = config.period_min;
  gen.period_max = config.period_max;
  gen.period_granularity = config.period_granularity;
  gen.bcet_ratio = config.bcet_ratio;
  if (config.initial_tasks > 0) {
    Rng init_rng(runner::derive_seed(seed, 0));
    do {
      stream.initial = workloads::generate_task_set(gen, init_rng);
    } while (!sched::is_schedulable_rta(stream.initial));
  }

  stream.ops.reserve(static_cast<std::size_t>(config.requests));
  for (int i = 0; i < config.requests; ++i) {
    Rng op_rng(runner::derive_seed(seed, static_cast<std::uint64_t>(i) + 1));
    stream.ops.push_back(draw_op(config, op_rng));
  }
  return stream;
}

std::optional<Request> resolve(const ChurnOp& op,
                               const sched::TaskSet& current) {
  Request request;
  request.kind = op.kind;
  switch (op.kind) {
    case RequestKind::kAdd:
      request.task = op_task(op, probe_priority(current, op.priority_hint,
                                                kNoTask));
      return request;
    case RequestKind::kRemove:
      if (current.empty()) return std::nullopt;
      request.index =
          static_cast<TaskIndex>(op.pick % current.size());
      return request;
    case RequestKind::kMutate: {
      if (current.empty()) return std::nullopt;
      request.index = static_cast<TaskIndex>(op.pick % current.size());
      if (op.scale > 0.0) {
        // Relative WCET revision: the target's own parameters, WCET
        // multiplied by the drawn factor (clamped so the task still
        // validates: WCET <= deadline, BCET <= WCET).
        sched::Task task = current[request.index];
        task.wcet = std::min(task.wcet * op.scale,
                             static_cast<double>(task.deadline));
        task.wcet = std::max(task.wcet, 1e-9);
        task.bcet = std::min(task.bcet, task.wcet);
        request.task = std::move(task);
        return request;
      }
      const sched::Priority priority =
          op.change_priority
              ? probe_priority(current, op.priority_hint, request.index)
              : current[request.index].priority;
      request.task = op_task(op, priority);
      return request;
    }
  }
  return std::nullopt;  // Unreachable.
}

}  // namespace lpfps::admission
