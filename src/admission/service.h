// The admission-control service: schedulability as a long-lived query
// engine.
//
// A deployed LPFPS system does not analyze one task set once — modes
// change, tasks install and retire, measured WCETs are revised.  The
// service holds the current task set as mutable state and answers a
// stream of add / remove / parameter-change requests, each with an
// admit/reject decision and, for the admitted set, the minimum clock
// frequency at which every deadline still holds under the (possibly
// non-ideal) WCET scaling model.
//
// Three layers make the query loop fast without changing any answer:
//
//   1. incremental RTA (sched/incremental_rta.h) — response-time
//      fixed points are reused across mutations and resumed as seeds,
//      bit-identical to from-scratch analysis by the exact-fixed-point
//      contract;
//   2. a fingerprint-keyed memoization cache (admission/cache.h) —
//      revisited candidate sets replay their stored decision and
//      response-time vector, verified byte-exact against the canonical
//      key before being served;
//   3. a direction-aware minimum-frequency search — feasibility is
//      monotone in the frequency level AND in the request (adding or
//      tightening a task can only raise the minimum level, removing or
//      relaxing one can only lower it), so the incremental service
//      probes the previous answer first and gallops outward, with every
//      probe's fixed-point iteration seeded from the f_max response
//      times; the reference service binary-searches all levels from
//      C_i seeds.  Both land on the same minimal feasible level.
//
// The invariant after every request: the current set is schedulable at
// f_max.  Admitting a request means the post-change set keeps that
// invariant; rejecting rolls the service back to the pre-request state
// (removals are always admitted — shrinking interference cannot create
// a deadline miss).  Decision fields are bit-identical across
// {incremental, from-scratch} x {cache on, off} — the differential
// test's contract — while accounting fields tell the arms apart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "admission/cache.h"
#include "admission/types.h"
#include "power/frequency.h"
#include "sched/incremental_rta.h"
#include "wcet/scaling.h"

namespace lpfps::admission {

struct ServiceConfig {
  /// Discrete frequency levels the minimum-safe answer is drawn from.
  /// Continuous tables are rejected (no levels to search).
  power::FrequencyTable table = power::FrequencyTable::arm8_like();
  /// WCET-vs-frequency behavior; ideal() reproduces the 1/f assumption.
  wcet::FrequencyScalingModel scaling = wcet::FrequencyScalingModel::ideal();
  /// False = reference arm: every mutation reanalyzes every task from
  /// scratch and every frequency search binary-searches all levels.
  bool incremental = true;
  bool use_cache = true;
  std::size_t cache_capacity = 4096;

  /// Throws unless the table is discrete and the scaling model valid.
  void validate() const;
};

/// Cumulative service accounting (saturating, like CacheCounters).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t levels_probed = 0;  ///< feasible_at_level evaluations.
};

class AdmissionService {
 public:
  /// `initial` must be schedulable at f_max (the empty set is).
  explicit AdmissionService(sched::TaskSet initial, ServiceConfig config);

  /// Decides one request; applies it iff admitted.
  Decision handle(const Request& request);

  const sched::TaskSet& tasks() const { return rta_.tasks(); }
  const std::vector<std::optional<Time>>& response_times() const {
    return rta_.response_times();
  }
  const ServiceConfig& config() const { return config_; }

  /// FNV digest of the current set's canonical (RTA-relevant) bytes.
  std::uint64_t fingerprint() const;

  const ServiceStats& stats() const { return stats_; }
  const CacheCounters& cache_counters() const { return cache_.counters(); }
  const sched::IncrementalRta::Stats& rta_stats() const {
    return rta_.stats();
  }

  /// The canonical cache-key bytes of a task set: period, deadline,
  /// WCET bit pattern, and priority per task in index order.  Name,
  /// BCET, and phase are excluded — they cannot affect any RTA or
  /// minimum-frequency answer.  Exposed for tests.
  static std::string canonical_key(const sched::TaskSet& tasks);

 private:
  /// Which way the request can have moved the minimum feasible level
  /// relative to the previous answer (monotonicity of feasibility in
  /// interference).
  enum class SearchBound {
    kNotBelowHint,  ///< Add / tightening mutate: min can only rise.
    kNotAboveHint,  ///< Remove / relaxing mutate: min can only fall.
    kUnbounded,     ///< Mixed mutate: no direction known.
  };

  /// The candidate set's canonical key, built directly from the current
  /// set plus the request — byte-identical to canonical_key() of the
  /// materialized candidate, without copying the set.
  std::string candidate_key(const Request& request) const;

  /// True iff every current task, stretched to `level`'s ratio, meets
  /// its deadline.  Allocation-free mirror of scaled_task_set +
  /// response_time_from_seed (bitwise the same booleans); `seeds`, when
  /// non-null, resumes each task's iteration from its f_max response
  /// time (a valid seed at any level — stretching WCETs only raises the
  /// least fixed point), further tightened by the converged responses
  /// of an earlier feasible probe this search when that probe ran at a
  /// level >= `level` (less stretch there means a smaller fixed point,
  /// so those responses never overshoot here).  Counts one
  /// levels_probed.
  bool feasible_at_level(int level,
                         const std::vector<std::optional<Time>>* seeds);

  /// Lowest feasible level for the current set (known feasible at the
  /// top level).  Full binary search with C_i probe seeds (reference
  /// arm, and the first-ever answer); otherwise: predict the boundary
  /// from the utilization change, probe the prediction, and gallop out
  /// from it within the `bound`-implied bracket, with seeded probes.
  /// Identical result by monotonicity of feasibility in the level.
  int min_feasible_level(SearchBound bound);

  /// First-order boundary prediction: stretch(r_min) * U is roughly
  /// invariant across small churn, so calibrate it on the previous
  /// answer (`hint`, `last_util_`) and solve for the level at the
  /// current utilization.  A heuristic probe target only — never a
  /// correctness input.
  int predicted_level(int hint) const;

  ServiceConfig config_;
  sched::IncrementalRta rta_;
  AdmissionCache cache_;
  ServiceStats stats_;
  int last_min_level_ = -1;   ///< Search hint; -1 = no previous answer.
  double last_util_ = 0.0;    ///< Utilization at the previous answer.
  std::vector<double> scaled_wcet_;  ///< Probe scratch buffer.
  /// Within-search probe-seed reuse: the converged per-task responses
  /// of the lowest feasible probe so far (valid seeds for any probe at
  /// or below probe_level_; reset by min_feasible_level per search).
  std::vector<double> probe_r_;
  std::vector<double> probe_scratch_;
  int probe_level_ = -1;
};

}  // namespace lpfps::admission
