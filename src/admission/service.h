// The admission-control service: schedulability as a long-lived query
// engine.
//
// A deployed LPFPS system does not analyze one task set once — modes
// change, tasks install and retire, measured WCETs are revised.  The
// service holds the current task set as mutable state and answers a
// stream of add / remove / parameter-change requests, each with an
// admit/reject decision and, for the admitted set, the minimum clock
// frequency at which every deadline still holds under the (possibly
// non-ideal) WCET scaling model.
//
// Four reuse layers make the query loop fast without changing any
// answer:
//
//   1. incremental RTA (sched/incremental_rta.h) — response-time
//      fixed points are reused across mutations and resumed as seeds,
//      bit-identical to from-scratch analysis by the exact-fixed-point
//      contract;
//   2. a fingerprint-keyed memoization cache (admission/cache.h) —
//      revisited candidate sets replay their stored decision and
//      response-time vector, verified byte-exact against the canonical
//      key before being served; optionally one SharedAdmissionCache
//      serves many services across threads (ServiceConfig::shared_cache);
//   3. a direction-aware minimum-frequency search — feasibility is
//      monotone in the frequency level AND in the request (adding or
//      tightening a task can only raise the minimum level, removing or
//      relaxing one can only lower it), so the incremental service
//      probes the previous answer first and gallops outward, with every
//      probe's fixed-point iteration seeded from the f_max response
//      times; the reference service binary-searches all levels from
//      C_i seeds.  Both land on the same minimal feasible level;
//   4. a cross-request stationary-boundary fast path — most churn
//      (small WCET revisions, near-boundary oscillation) leaves the
//      minimum-frequency boundary where it was, so the incremental
//      service retains the previous search's converged per-boundary
//      responses and, when the request direction permits
//      (interference only grew), verifies the cached boundary with at
//      most two seeded probes and answers without galloping or binary
//      search.  Verification, not trust: the fast path returns only
//      when feasible(B) && !feasible(B - 1) is established, the exact
//      condition every other schedule proves, so the answer is
//      bit-identical by construction.
//
// The invariant after every request: the current set is schedulable at
// f_max.  Admitting a request means the post-change set keeps that
// invariant; rejecting rolls the service back to the pre-request state
// (removals are always admitted — shrinking interference cannot create
// a deadline miss).  Decision fields — including the sensitivity
// answer Decision::wcet_headroom — are bit-identical across
// {incremental, from-scratch} x {cache on, off, shared} — the
// differential test's contract — while accounting fields tell the arms
// apart.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "admission/cache.h"
#include "admission/types.h"
#include "power/frequency.h"
#include "sched/incremental_rta.h"
#include "wcet/scaling.h"

namespace lpfps::admission {

struct ServiceConfig {
  /// Discrete frequency levels the minimum-safe answer is drawn from.
  /// Continuous tables are rejected (no levels to search).
  power::FrequencyTable table = power::FrequencyTable::arm8_like();
  /// WCET-vs-frequency behavior; ideal() reproduces the 1/f assumption.
  wcet::FrequencyScalingModel scaling = wcet::FrequencyScalingModel::ideal();
  /// False = reference arm: every mutation reanalyzes every task from
  /// scratch and every frequency search binary-searches all levels.
  bool incremental = true;
  bool use_cache = true;
  std::size_t cache_capacity = 4096;
  /// Compute Decision::wcet_headroom for every admitted request (the
  /// largest uniform WCET-scaling factor feasible at the granted
  /// level).  A decision knob, not an arm knob: it changes what is
  /// answered, so it folds into the shared-cache config token.
  bool sensitivity = true;
  /// When set (and use_cache is true), decisions are memoized in this
  /// cache instead of a private one — shared across services and
  /// threads.  Keys are prefixed with a token over {table, scaling,
  /// sensitivity} so differently configured services sharing one cache
  /// can never serve each other's answers; the `incremental` flag is
  /// deliberately excluded (arms answer bit-identically, so cross-arm
  /// sharing is sound).  The LPFPS_ADMISSION_CACHE=0 override disables
  /// this path too.
  std::shared_ptr<SharedAdmissionCache> shared_cache;

  /// Throws unless the table is discrete and the scaling model valid.
  void validate() const;
};

/// Cumulative service accounting (saturating, like CacheCounters).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t levels_probed = 0;  ///< feasible_at_level evaluations.
  /// Searches answered by the stationary-boundary fast path (<= 2
  /// probes, no gallop or binary search).
  std::uint64_t stationary_hits = 0;
  std::uint64_t headroom_probes = 0;  ///< Sensitivity feasibility probes.
};

class AdmissionService {
 public:
  /// `initial` must be schedulable at f_max (the empty set is).
  explicit AdmissionService(sched::TaskSet initial, ServiceConfig config);

  /// Decides one request; applies it iff admitted.
  Decision handle(const Request& request);

  const sched::TaskSet& tasks() const { return rta_.tasks(); }
  const std::vector<std::optional<Time>>& response_times() const {
    return rta_.response_times();
  }
  const ServiceConfig& config() const { return config_; }

  /// FNV digest of the current set's canonical (RTA-relevant) bytes.
  std::uint64_t fingerprint() const;

  const ServiceStats& stats() const { return stats_; }
  /// This service's view of its cache traffic.  Private cache: the
  /// cache's own counters.  Shared cache: the lookups/insertions *this*
  /// service performed (evictions happen inside the shared cache and
  /// stay 0 here) — the shared cache's aggregate counters are on the
  /// SharedAdmissionCache itself.
  const CacheCounters& cache_counters() const {
    return config_.shared_cache != nullptr ? shared_view_
                                           : cache_.counters();
  }
  const sched::IncrementalRta::Stats& rta_stats() const {
    return rta_.stats();
  }

  /// The canonical cache-key bytes of a task set: period, deadline,
  /// WCET bit pattern, and priority per task in index order.  Name,
  /// BCET, and phase are excluded — they cannot affect any RTA or
  /// minimum-frequency answer.  Exposed for tests.
  static std::string canonical_key(const sched::TaskSet& tasks);

 private:
  /// Which way the request can have moved the minimum feasible level
  /// relative to the previous answer (monotonicity of feasibility in
  /// interference).
  enum class SearchBound {
    kNotBelowHint,  ///< Add / tightening mutate: min can only rise.
    kNotAboveHint,  ///< Remove / relaxing mutate: min can only fall.
    kUnbounded,     ///< Mixed mutate: no direction known.
  };

  /// The candidate set's canonical key, built directly from the current
  /// set plus the request — byte-identical to canonical_key() of the
  /// materialized candidate, without copying the set.
  std::string candidate_key(const Request& request) const;

  /// True iff every current task, stretched to `level`'s ratio, meets
  /// its deadline.  Allocation-free mirror of scaled_task_set +
  /// response_time_from_seed (bitwise the same booleans); `seeds`, when
  /// non-null, resumes each task's iteration from its f_max response
  /// time (a valid seed at any level — stretching WCETs only raises the
  /// least fixed point), further tightened by the converged responses
  /// of an earlier feasible probe this search when that probe ran at a
  /// level >= `level` (less stretch there means a smaller fixed point,
  /// so those responses never overshoot here).  Counts one
  /// levels_probed.
  bool feasible_at_level(int level,
                         const std::vector<std::optional<Time>>* seeds);

  /// Lowest feasible level for the current set (known feasible at the
  /// top level).  Full binary search with C_i probe seeds (reference
  /// arm, and the first-ever answer); otherwise: first try the
  /// stationary fast path (verify the previous boundary in <= 2
  /// probes), then predict the boundary from the utilization change,
  /// probe the prediction, and gallop out from it within the
  /// `bound`-implied bracket, with seeded probes.  Identical result by
  /// monotonicity of feasibility in the level.  Sets
  /// last_search_stationary_.
  int min_feasible_level(SearchBound bound);

  /// Sensitivity: the largest uniform WCET-scaling factor s >= 1 at
  /// which the current set stays feasible at `level`, via a *fixed*
  /// probe schedule (gallop s = 2, 4, ... capped at 2^20, then exactly
  /// 12 bisections) so the returned double depends only on the
  /// feasibility booleans — which are exact fixed-point answers — and
  /// is therefore bit-identical across arms and seeding strategies.
  double compute_headroom(int level);

  /// True iff every current task, stretched to `level` and further
  /// scaled by `scale`, meets its deadline.  The sensitivity analogue
  /// of feasible_at_level: the incremental arm seeds each iteration
  /// from the f_max responses, the level search's retained probe
  /// responses, and the previous feasible headroom probe's responses
  /// (all lie at or below the current least fixed point — interference
  /// here is scaled up from each of those states); the reference arm
  /// starts from the scaled C_i.  Counts one headroom probe.
  bool headroom_feasible(int level, double scale,
                         const std::vector<std::optional<Time>>* seeds);

  /// First-order boundary prediction: stretch(r_min) * U is roughly
  /// invariant across small churn, so calibrate it on the previous
  /// answer (`hint`, `last_util_`) and solve for the level at the
  /// current utilization.  A heuristic probe target only — never a
  /// correctness input.
  int predicted_level(int hint) const;

  /// Applies the LPFPS_ADMISSION_CACHE override (read once per
  /// service, the hoisted-env-read convention): 0 disables caching
  /// entirely (private and shared), any other value replaces the
  /// private cache capacity.
  static ServiceConfig apply_env_overrides(ServiceConfig config);

  ServiceConfig config_;
  sched::IncrementalRta rta_;
  AdmissionCache cache_;
  ServiceStats stats_;
  /// FNV token over {frequency table, scaling model, sensitivity},
  /// prefixed onto shared-cache keys (see ServiceConfig::shared_cache).
  std::string shared_key_prefix_;
  CacheCounters shared_view_;  ///< This service's shared-cache traffic.
  int last_min_level_ = -1;   ///< Search hint; -1 = no previous answer.
  double last_util_ = 0.0;    ///< Utilization at the previous answer.
  bool last_search_stationary_ = false;
  std::vector<double> scaled_wcet_;  ///< Probe scratch buffer.
  /// Probe-seed reuse: the converged per-task responses of the lowest
  /// feasible probe so far (valid seeds for any probe at or below
  /// probe_level_).  Retained *across* requests whenever the request
  /// can only have grown interference (SearchBound::kNotBelowHint:
  /// every fixed point rose, so the retained responses still lie at or
  /// below it); invalidated by handle() otherwise.  This is what makes
  /// the stationary fast path one cheap resumed probe instead of a
  /// from-C_i reanalysis at the boundary level.
  std::vector<double> probe_r_;
  std::vector<double> probe_scratch_;
  int probe_level_ = -1;
  /// Headroom probe chain: responses of the last feasible headroom
  /// probe (at hr_scale_), seeds for any later probe at a larger
  /// scale.  Reset per compute_headroom call.
  std::vector<double> hr_r_;
  std::vector<double> hr_scratch_;
  double hr_scale_ = 0.0;  ///< 0 = no feasible headroom probe yet.
};

}  // namespace lpfps::admission
