// Churn-workload generation for the admission service.
//
// A churn stream is an *abstract* request sequence: instead of naming
// concrete task indices (which drift as requests are admitted or
// rejected), each operation carries selectors — a `pick` value resolved
// against the current set size, a priority *hint* resolved by linear
// probing past occupied priorities.  Resolution is a pure function of
// (op, current set), so two services fed the same stream make identical
// decisions, stay in identical states, and therefore resolve every
// subsequent op identically — regardless of which analysis arm
// (incremental/from-scratch, cache on/off) they run.  That closure
// property is what lets the differential test replay one stream through
// both arms and demand bit-identical decisions.
//
// Determinism: op i is drawn from Rng(runner::derive_seed(seed, i + 1))
// and the initial set from derive_seed(seed, 0) — the per-request
// seeding discipline of the batch runner, so a stream is reproducible
// independent of thread count, batch position, or how many streams
// were generated before it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "admission/types.h"
#include "sched/task_set.h"

namespace lpfps::admission {

struct ChurnConfig {
  /// Initial set: UUniFast-drawn, redrawn until RTA-schedulable.
  int initial_tasks = 6;
  double initial_utilization = 0.5;

  int requests = 256;
  /// Operation mix; mutate takes the remainder.
  double add_fraction = 0.4;
  double remove_fraction = 0.3;
  /// Among mutates, the fraction that also re-draws the priority hint.
  double mutate_priority_fraction = 0.2;

  /// Parameter ranges for generated add/mutate tasks.
  std::int64_t period_min = 10'000;
  std::int64_t period_max = 1'000'000;
  std::int64_t period_granularity = 5'000;
  double task_utilization_min = 0.02;
  double task_utilization_max = 0.25;
  /// Deadlines drawn as ratio * period (constrained, D <= T).
  double deadline_ratio_min = 0.8;
  double bcet_ratio = 0.6;
  /// Priority hints are drawn in [0, priority_space).
  int priority_space = 64;
  /// When true, a drawn hint is replaced by the deadline's position on
  /// the log-period grid — shorter deadline, higher priority — so the
  /// stream models a controller that assigns deadline-monotonic-ish
  /// priorities (random hints make most adds unschedulable regardless
  /// of utilization, collapsing the set).  The transform consumes no
  /// extra Rng draws, so streams of either setting stay aligned.
  bool deadline_monotonic_hints = false;
  /// Fraction of mutates that are *relative*: instead of redrawing the
  /// task outright, the target keeps its period/deadline/priority and
  /// its WCET is multiplied by a factor drawn from
  /// [mutate_scale_min, mutate_scale_max] (clamped to the deadline).
  /// This models measured-WCET revision — the churn that dominates a
  /// deployed service and that mostly leaves the minimum-frequency
  /// boundary stationary (the fast path's target regime).  Factors on
  /// one side of 1.0 keep the request direction-known (>= 1 tightens,
  /// <= 1 relaxes), which is what lets the service retain probe state.
  double relative_mutates = 0.0;
  double mutate_scale_min = 0.97;
  double mutate_scale_max = 1.03;
};

/// One abstract operation; see resolve().
struct ChurnOp {
  RequestKind kind = RequestKind::kAdd;
  std::uint64_t pick = 0;  ///< Remove/mutate target: index = pick % size.
  std::int64_t period = 0;
  std::int64_t deadline = 0;
  Work wcet = 0.0;
  double bcet_ratio = 1.0;
  sched::Priority priority_hint = 0;
  bool change_priority = false;  ///< Mutate: re-probe priority from hint.
  /// Mutate: when > 0, a relative WCET revision by this factor against
  /// the target's *current* parameters (period/deadline/priority kept);
  /// 0 = absolute mutate using the drawn fields above.
  double scale = 0.0;
};

struct ChurnStream {
  sched::TaskSet initial;
  std::vector<ChurnOp> ops;
};

/// Draws a full stream.  Pure function of (config, seed).
ChurnStream make_churn_stream(const ChurnConfig& config, std::uint64_t seed);

/// Resolves an abstract op against the current set into a concrete
/// Request, or nullopt when the op is inapplicable (remove/mutate on an
/// empty set — the stream skips it).  Pure function of its arguments.
std::optional<Request> resolve(const ChurnOp& op,
                               const sched::TaskSet& current);

}  // namespace lpfps::admission
