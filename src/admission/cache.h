// Memoization of schedulability decisions, keyed on task-set
// fingerprints.
//
// Churn workloads revisit task sets: a rejected add is retried, a
// removed task is re-added, an overloaded set oscillates around the
// admission boundary.  Every revisit would otherwise pay a full
// analysis; this cache returns the previously computed decision —
// schedulability, minimum safe level, and the exact response-time
// vector (bit-identical by the incremental-RTA contract, so adopting a
// cached vector is indistinguishable from recomputing it).
//
// Keys reuse the FNV fingerprinting machinery the engine's
// state-identity checks standardized in core/fingerprint.h.  A 64-bit
// digest indexes the table; because digests can collide, every entry
// also stores the canonical key bytes (the schedulability-relevant
// task parameters) and a lookup only hits after an exact byte compare
// — a collision is counted and treated as a miss, never served.
//
// All counters saturate instead of wrapping (saturating_increment):
// a service that runs for months must not let a wrapped counter
// corrupt rate arithmetic downstream.  Counters are accounting, not
// results — they flow into bench JSON and AUDIT meta, and are excluded
// from io::admission_csv_row like the engine's cycle counters.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace lpfps::admission {

/// Bumps a saturating counter: sticks at max instead of wrapping.
inline void saturating_increment(std::uint64_t& counter) {
  if (counter != std::numeric_limits<std::uint64_t>::max()) ++counter;
}

/// `counter + amount`, saturating at max.
inline void saturating_add(std::uint64_t& counter, std::uint64_t amount) {
  const std::uint64_t room =
      std::numeric_limits<std::uint64_t>::max() - counter;
  counter += amount < room ? amount : room;
}

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t collisions = 0;  ///< Digest matched, canonical bytes did not.
};

/// The memoized outcome of analyzing one candidate set.
struct CacheEntry {
  bool schedulable = false;
  int min_level = -1;  ///< -1 when unschedulable.
  /// Uniform WCET-scaling headroom at min_level (0 when unschedulable
  /// or when the deciding service ran with sensitivity off).
  double wcet_headroom = 0.0;
  std::vector<std::optional<Time>> response_times;
};

/// Cache capacity override from the LPFPS_ADMISSION_CACHE environment
/// variable, or nullopt when unset/unparsable.  0 means "cache off".
/// Follows the hoisted-env-read convention of
/// core::cycle_detection_env_enabled(): the function re-reads the
/// environment on every call, and callers hoist one read per unit of
/// work — AdmissionService reads it once at construction, so every
/// request of one service sees the same verdict regardless of when the
/// environment changes mid-run.
std::optional<std::size_t> cache_capacity_from_env();

/// Deterministic bounded LRU: same lookup/insert sequence, same hits,
/// evictions, and counter values — on any thread count, because each
/// service owns its cache exclusively.
class AdmissionCache {
 public:
  /// `capacity == 0` disables storage (every lookup misses).
  explicit AdmissionCache(std::size_t capacity);

  /// Returns the entry for `digest` if present *and* the stored
  /// canonical key equals `key` byte-for-byte; refreshes LRU recency.
  /// Counts a hit, a miss, or a collision-plus-miss.
  const CacheEntry* find(std::uint64_t digest, std::string_view key);

  /// Inserts (or replaces) the entry, evicting the least-recently-used
  /// digest when at capacity.
  void insert(std::uint64_t digest, std::string key, CacheEntry entry);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheCounters& counters() const { return counters_; }

 private:
  struct Node {
    std::string key;
    CacheEntry entry;
    std::list<std::uint64_t>::iterator lru_it;
  };

  std::size_t capacity_ = 0;
  std::unordered_map<std::uint64_t, Node> map_;
  std::list<std::uint64_t> lru_;  ///< Front = most recently used.
  CacheCounters counters_;
};

/// One decision cache shared by many concurrent admission services:
/// mutex-striped shards, each an AdmissionCache, selected by mixed
/// digest bits (independent of the unordered_map's own bucketing).
/// The byte-exact canonical-key verification is unchanged — a lookup
/// only hits after the stored key compares equal, so a digest
/// collision still degrades to a counted miss.
///
/// Determinism contract: decisions served from this cache are
/// *bit-identical* to recomputing them (the per-service cache's
/// contract, inherited shard by shard), so sharing the cache across
/// pipeline sessions can change which sessions pay for an analysis but
/// never what any session answers — per-session decision digests stay
/// byte-identical to a serial, private-cache replay.  Hit/miss/eviction
/// *counters*, by contrast, depend on cross-thread interleaving and are
/// only deterministic for single-threaded use; they are accounting, not
/// results, and never reach a decision CSV row.
///
/// Keying caveat: the canonical key encodes the candidate task set
/// only, not the frequency table, scaling model, or sensitivity
/// setting.  A service folds a config token into its shared-cache keys
/// (see AdmissionService), so services with different configs can share
/// one cache without cross-serving each other's decisions.
class SharedAdmissionCache {
 public:
  /// Total `capacity` is split evenly across `shards` (each shard gets
  /// at least one slot unless capacity is 0, which disables storage).
  explicit SharedAdmissionCache(std::size_t capacity,
                                std::size_t shards = 8);

  SharedAdmissionCache(const SharedAdmissionCache&) = delete;
  SharedAdmissionCache& operator=(const SharedAdmissionCache&) = delete;

  /// Copies the entry out under the shard lock (a pointer into a
  /// concurrently mutated shard would dangle).  `collision`, when
  /// non-null, is set iff the digest matched but the canonical bytes
  /// did not.
  std::optional<CacheEntry> find(std::uint64_t digest,
                                 std::string_view key,
                                 bool* collision = nullptr);

  void insert(std::uint64_t digest, std::string key, CacheEntry entry);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t capacity() const;
  std::size_t size() const;
  /// Counters summed across shards (a consistent-per-shard snapshot;
  /// cross-shard totals can be mid-update while other threads run).
  CacheCounters counters() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    AdmissionCache cache;
    explicit Shard(std::size_t capacity) : cache(capacity) {}
  };

  Shard& shard_for(std::uint64_t digest);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lpfps::admission
