// Async request pipeline: many admission sessions over the batch
// runner's thread pool.
//
// Each *session* is an independent service instance consuming one churn
// stream; a batch of sessions fans out over runner::run_batch.  The
// determinism contract is inherited wholesale: a session's entire
// behavior is a pure function of its SessionSpec (its stream derives
// every per-request draw from derive_seed(spec.seed, request_index)),
// so an N-worker run returns bit-identical SessionResults to a serial
// run — tests/admission/pipeline_test.cc replays the same batch on 1
// and 4 threads and compares digests.
//
// The decision digest folds each decision's CSV row (decision fields
// only — accounting is excluded, so arms that differ merely in cache
// hits or probe counts digest equal) through the FNV machinery of
// core/fingerprint.h.
#pragma once

#include <cstdint>
#include <vector>

#include "admission/service.h"
#include "admission/workload.h"

namespace lpfps::admission {

struct SessionSpec {
  ChurnConfig churn;
  ServiceConfig service;
  std::uint64_t seed = 0;
};

struct SessionResult {
  std::uint64_t requests = 0;  ///< Ops resolved and handled.
  std::uint64_t skipped = 0;   ///< Ops inapplicable to the current state.
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// FNV-1a over the concatenated decision CSV rows, in request order.
  std::uint64_t decision_digest = 0;
  /// Fingerprint of the service's final task set.
  std::uint64_t final_fingerprint = 0;
  ServiceStats stats;
  CacheCounters cache;
  sched::IncrementalRta::Stats rta;
};

/// Runs one session start to finish on the calling thread.
SessionResult run_session(const SessionSpec& spec);

/// Runs every session via runner::run_batch; results in spec order,
/// bit-identical for every thread count (0 = default_job_count()).
std::vector<SessionResult> run_sessions(const std::vector<SessionSpec>& specs,
                                        std::size_t threads = 0);

// ---------------------------------------------------------------------
// Multicore churn sessions: the same abstract streams replayed against
// a multicore::PartitionedAdmission (one incremental RTA per core,
// first-fit placement).  Adds and removes resolve against the *global*
// admitted set — placement is internal — and mutate ops are counted as
// skipped (an in-place parameter change is a single-core concern the
// single-core sessions already cover).  Like the single-core pipeline,
// a session is a pure function of its spec, so N-worker batches are
// bit-identical to serial, and the scratch arm digests equal the
// incremental arm's.
// ---------------------------------------------------------------------

struct MulticoreSessionSpec {
  ChurnConfig churn;
  int cores = 4;
  /// True = reference arm (per-core engines reanalyze from scratch).
  bool scratch = false;
  std::uint64_t seed = 0;
};

struct MulticoreSessionResult {
  std::uint64_t requests = 0;  ///< Ops resolved and handled.
  std::uint64_t skipped = 0;   ///< Inapplicable ops (incl. all mutates).
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  /// FNV-1a over per-request decision records (kind, admitted, chosen
  /// core, post-decision placement fingerprint) — decision fields only,
  /// so the arms digest equal.
  std::uint64_t decision_digest = 0;
  /// PartitionedAdmission::fingerprint() of the final placement.
  std::uint64_t final_fingerprint = 0;
  sched::IncrementalRta::Stats rta;  ///< Summed over cores.
};

MulticoreSessionResult run_multicore_session(const MulticoreSessionSpec& spec);

std::vector<MulticoreSessionResult> run_multicore_sessions(
    const std::vector<MulticoreSessionSpec>& specs, std::size_t threads = 0);

}  // namespace lpfps::admission
