#include "admission/service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/float_compare.h"
#include "core/fingerprint.h"

namespace lpfps::admission {
namespace {

void append_bytes(std::string& key, const void* data, std::size_t size) {
  key.append(static_cast<const char*>(data), size);
}

// One task's contribution to the canonical key: period, deadline, WCET
// bit pattern, priority.  Name, BCET, and phase are excluded — they
// cannot affect any RTA or minimum-frequency answer.
void append_task_key(std::string& key, const sched::Task& t) {
  append_bytes(key, &t.period, sizeof(t.period));
  append_bytes(key, &t.deadline, sizeof(t.deadline));
  std::uint64_t wcet_bits = 0;
  static_assert(sizeof(wcet_bits) == sizeof(t.wcet));
  std::memcpy(&wcet_bits, &t.wcet, sizeof(wcet_bits));
  append_bytes(key, &wcet_bits, sizeof(wcet_bits));
  const std::int32_t priority = t.priority;
  append_bytes(key, &priority, sizeof(priority));
}

constexpr std::size_t kTaskKeyBytes = 8 + 8 + 8 + 4;

// Sensitivity probe schedule: gallop the scale upward by doubling
// (cap 2^20 — "effectively unbounded headroom"), then exactly this
// many bisections.  Fixed so the returned double is a function of the
// feasibility booleans alone; with powers-of-two endpoints every
// midpoint is exact in binary, so the same booleans give the same
// bits on every arm.
constexpr double kHeadroomCap = 1048576.0;  // 2^20.
constexpr int kHeadroomIters = 12;

}  // namespace

void ServiceConfig::validate() const {
  scaling.validate();
  LPFPS_CHECK_MSG(!table.is_continuous(),
                  "admission requires a discrete frequency table");
  LPFPS_CHECK_MSG(!table.levels().empty(),
                  "admission: frequency table has no levels");
  LPFPS_CHECK_MSG(table.levels().back() == table.f_max(),
                  "admission: top level must be f_max");
}

ServiceConfig AdmissionService::apply_env_overrides(ServiceConfig config) {
  if (const std::optional<std::size_t> capacity = cache_capacity_from_env()) {
    if (*capacity == 0) {
      // 0 = caching off entirely: the private cache stores nothing and
      // the shared cache is detached, so no lookup or insert happens.
      config.use_cache = false;
      config.shared_cache.reset();
    } else {
      config.cache_capacity = *capacity;
    }
  }
  return config;
}

AdmissionService::AdmissionService(sched::TaskSet initial,
                                   ServiceConfig config)
    : config_(apply_env_overrides(std::move(config))),
      rta_(std::move(initial),
           config_.incremental ? sched::IncrementalRta::Mode::kIncremental
                               : sched::IncrementalRta::Mode::kFromScratch),
      cache_(config_.use_cache && config_.shared_cache == nullptr
                 ? config_.cache_capacity
                 : 0) {
  config_.validate();
  LPFPS_CHECK_MSG(rta_.schedulable(),
                  "admission: initial set must be schedulable at f_max");
  if (config_.shared_cache != nullptr) {
    // Config token: everything besides the candidate task set that a
    // cached decision depends on.  Folded as a key prefix (not into the
    // digest alone) so token equality is byte-verified like the rest of
    // the canonical key.
    core::FnvHasher hasher;
    for (const MegaHertz level : config_.table.levels()) hasher.mix(level);
    hasher.mix(config_.scaling.memory_bound_fraction);
    hasher.mix(static_cast<std::uint64_t>(config_.sensitivity ? 1 : 0));
    const std::uint64_t token = hasher.digest();
    shared_key_prefix_.assign(reinterpret_cast<const char*>(&token),
                              sizeof(token));
  }
}

std::string AdmissionService::canonical_key(const sched::TaskSet& tasks) {
  std::string key;
  key.reserve(8 + tasks.size() * kTaskKeyBytes);
  const std::uint64_t count = tasks.size();
  append_bytes(key, &count, sizeof(count));
  for (const sched::Task& t : tasks.tasks()) append_task_key(key, t);
  return key;
}

std::string AdmissionService::candidate_key(const Request& request) const {
  // Byte-identical to canonical_key() of the materialized candidate:
  // TaskSet::add appends, remove erases in place, replace swaps in
  // place, so the candidate's index order is derivable from the current
  // set plus the request without copying n tasks per request.
  const std::vector<sched::Task>& current = rta_.tasks().tasks();
  std::uint64_t count = current.size();
  if (request.kind == RequestKind::kAdd) ++count;
  if (request.kind == RequestKind::kRemove) --count;
  std::string key;
  key.reserve(8 + count * kTaskKeyBytes);
  append_bytes(key, &count, sizeof(count));
  for (std::size_t i = 0; i < current.size(); ++i) {
    const bool at_index = static_cast<TaskIndex>(i) == request.index;
    if (request.kind == RequestKind::kRemove && at_index) continue;
    if (request.kind == RequestKind::kMutate && at_index) {
      append_task_key(key, request.task);
    } else {
      append_task_key(key, current[i]);
    }
  }
  if (request.kind == RequestKind::kAdd) append_task_key(key, request.task);
  return key;
}

std::uint64_t AdmissionService::fingerprint() const {
  return core::fnv1a(canonical_key(rta_.tasks()));
}

bool AdmissionService::feasible_at_level(
    int level, const std::vector<std::optional<Time>>* seeds) {
  saturating_increment(stats_.levels_probed);
  const MegaHertz f =
      config_.table.levels()[static_cast<std::size_t>(level)];
  const double stretch = config_.scaling.stretch(config_.table.ratio_of(f));
  const std::vector<sched::Task>& tasks = rta_.tasks().tasks();
  const std::size_t n = tasks.size();
  // Allocation-free mirror of wcet::scaled_task_set followed by
  // response_time_from_seed on every task: the same products,
  // comparisons, and summation order, so the boolean is bitwise what
  // the materialized reference path (the service_test brute-force
  // oracle) computes.
  scaled_wcet_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled_wcet_[i] = tasks[i].wcet * stretch;
    if (scaled_wcet_[i] > static_cast<double>(tasks[i].deadline)) {
      return false;  // A stretched WCET overran D.
    }
  }
  // An earlier feasible probe's converged responses seed this probe
  // when it ran at the same or a higher level: less stretch there means
  // a least fixed point at or below this level's, so resuming from it
  // cannot overshoot — it just starts the iteration much closer.
  const bool reuse_probe =
      seeds != nullptr && probe_level_ >= level && probe_r_.size() == n;
  const bool record_probe = seeds != nullptr;
  if (record_probe) probe_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sched::Task& task = tasks[i];
    // A convergent response time at f_max is a valid seed at any lower
    // level: stretching every WCET by the same factor >= 1 only raises
    // the least fixed point, and any seed at or below it converges to
    // it exactly (analysis.h).  The from-scratch arm passes no seeds
    // and starts at the scaled C_i, like response_time_from_seed does.
    double r = scaled_wcet_[i];
    if (seeds != nullptr && (*seeds)[i].has_value()) {
      r = std::max(*(*seeds)[i], r);
    }
    if (reuse_probe) r = std::max(probe_r_[i], r);
    bool converged = false;
    for (int iter = 0; iter < 100000; ++iter) {
      double next = scaled_wcet_[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (tasks[j].priority >= task.priority) continue;
        const double jobs = std::ceil(
            (r - kTimeEpsilon) / static_cast<double>(tasks[j].period));
        next += std::max(1.0, jobs) * scaled_wcet_[j];
      }
      if (next == r) {  // Exact fixed point (see analysis.h).
        converged = true;
        break;
      }
      if (next > static_cast<double>(task.deadline) + kTimeEpsilon) break;
      r = next;
    }
    if (!converged) return false;
    if (definitely_greater(r, static_cast<double>(task.deadline))) {
      return false;
    }
    if (record_probe) probe_scratch_[i] = r;
  }
  if (record_probe) {
    // A fully feasible probe becomes the new seed source: every later
    // probe in this search runs at or below this level.
    probe_r_.swap(probe_scratch_);
    probe_level_ = level;
  }
  return true;
}

int AdmissionService::predicted_level(int hint) const {
  // At the feasibility boundary, response times sit near their
  // deadlines, and to first order they scale with total utilization
  // times the WCET stretch — so stretch(r_min) * U is roughly invariant
  // across small churn.  Calibrate the product on the previous answer
  // and solve stretch(r) = k / U for the level at the current
  // utilization.  The prediction usually lands within a level or two
  // of the new boundary, which makes the probe count independent of
  // how far one request moved it.  It is only a probe target: the
  // search below proves minimality regardless of where this points.
  const double u = rta_.tasks().utilization();
  if (u <= 0.0 || last_util_ <= 0.0) return hint;
  const double beta = config_.scaling.memory_bound_fraction;
  if (1.0 - beta <= 1e-12) return hint;  // Stretch is flat in the level.
  const std::vector<MegaHertz>& levels = config_.table.levels();
  const double prev_ratio =
      config_.table.ratio_of(levels[static_cast<std::size_t>(hint)]);
  const double k = config_.scaling.stretch(prev_ratio) * last_util_;
  const double s = std::max(1.0, k / u);
  const double ratio = 1.0 / (1.0 + (s - 1.0) / (1.0 - beta));
  const double f_target = ratio * config_.table.f_max();
  const auto it =
      std::lower_bound(levels.begin(), levels.end(), f_target - 1e-9);
  return static_cast<int>(it - levels.begin());
}

int AdmissionService::min_feasible_level(SearchBound bound) {
  const int top = static_cast<int>(config_.table.levels().size()) - 1;
  const std::vector<std::optional<Time>>* seeds =
      config_.incremental ? &rta_.response_times() : nullptr;
  last_search_stationary_ = false;
  // probe_level_ / probe_r_ are NOT reset here: handle() already
  // invalidated them unless the request direction keeps them valid
  // (kNotBelowHint — every fixed point grew), in which case the first
  // probe below resumes from the previous search's converged state.
  const int hint = last_min_level_ < 0 ? -1 : std::min(last_min_level_, top);
  // Sound bracket for the minimum.  The top level is feasible without a
  // probe (stretch(1) == 1.0 exactly, so it is the f_max set the caller
  // just admitted); `bound` tightens the bracket further: kNotBelowHint
  // keeps every level below the previous answer infeasible, and
  // kNotAboveHint keeps every level at or above it feasible.
  int blo = 0;
  int bhi = top;
  if (config_.incremental && hint >= 0) {
    if (bound == SearchBound::kNotBelowHint) {
      blo = hint;
    } else if (bound == SearchBound::kNotAboveHint) {
      bhi = hint;
    }
  }
  // Memo for the (at most two) stationary-fast-path probes, consulted
  // before feasible_at_level so a fast-path miss never re-probes a
  // level the fall-through schedule visits again.  Memoized results
  // are the same booleans a re-probe would produce (exact fixed
  // points), so this can only change probe *counts*, never answers.
  int memo_level[2] = {-2, -2};
  bool memo_result[2] = {false, false};
  int memo_count = 0;
  const auto feasible = [&](int level) {
    if (level >= bhi) return true;
    for (int k = 0; k < memo_count; ++k) {
      if (memo_level[k] == level) return memo_result[k];
    }
    const bool result = feasible_at_level(level, seeds);
    if (memo_count < 2) {
      memo_level[memo_count] = level;
      memo_result[memo_count] = result;
      ++memo_count;
    }
    return result;
  };
  // Binary search for the lowest feasible level in [lo, hi], where
  // feasible(hi) is already established.
  const auto binary_min = [&](int lo, int hi) {
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (feasible(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };
  if (!config_.incremental || hint < 0) {
    // Reference arm (and the first-ever answer): no usable previous
    // answer — binary-search the whole table from C_i probe seeds.
    return binary_min(blo, bhi);
  }
  if (blo == bhi) return blo;
  // Stationary-boundary fast path: most churn leaves the boundary at
  // the previous answer, and verifying that takes at most two probes —
  // feasible(hint) pins it from above, infeasible(hint - 1) from below
  // (each side free when the bracket already supplies it).  Probes are
  // seeded from the retained previous-search responses when handle()
  // kept them valid, so the common verification converges in a handful
  // of iterations per task.  On a miss, the memoized results flow into
  // the prediction/gallop schedule below.
  switch (bound) {
    case SearchBound::kNotBelowHint:  // blo == hint: minimality is free.
      if (feasible(hint)) {
        last_search_stationary_ = true;
        return hint;
      }
      break;
    case SearchBound::kNotAboveHint:  // bhi == hint: feasibility is free.
      if (!feasible(hint - 1)) {
        last_search_stationary_ = true;
        return hint;
      }
      break;
    case SearchBound::kUnbounded:
      if (feasible(hint) && (hint == blo || !feasible(hint - 1))) {
        last_search_stationary_ = true;
        return hint;
      }
      break;
  }
  // Incremental arm: probe the predicted boundary, settle the common
  // "prediction exact" case with a second probe, and otherwise gallop
  // toward the boundary (O(log e) probes for a prediction off by e
  // levels).  Every return below is justified by level monotonicity
  // alone — feasible(p) with infeasible(p - 1) pins the minimum — so
  // any probe schedule lands on the same answer and the arms stay
  // bit-identical in every decision field.
  const int p = std::clamp(predicted_level(hint), blo, bhi);
  if (feasible(p)) {
    if (p == blo || !feasible(p - 1)) return p;
    // Overshot: the minimum is below p - 1.  Gallop down.
    int lo = blo;
    int hi = p - 1;
    if (hi == blo) return blo;  // feasible(p - 1) already pinned it.
    for (int step = 2;; step *= 2) {
      const int probe = p - step;
      if (probe <= blo) {
        if (feasible(blo)) return blo;
        lo = blo + 1;
        break;
      }
      if (feasible(probe)) {
        hi = probe;
      } else {
        lo = probe + 1;
        break;
      }
    }
    return binary_min(lo, hi);
  }
  // Undershot: the minimum is above p.  Gallop up.
  int lo = p + 1;
  int hi = bhi;
  for (int step = 1;; step *= 2) {
    const int probe = p + step;
    if (probe >= bhi) break;  // bhi is feasible without a probe.
    if (feasible(probe)) {
      hi = probe;
      break;
    }
    lo = probe + 1;
  }
  return binary_min(lo, hi);
}

bool AdmissionService::headroom_feasible(
    int level, double scale, const std::vector<std::optional<Time>>* seeds) {
  saturating_increment(stats_.headroom_probes);
  const MegaHertz f =
      config_.table.levels()[static_cast<std::size_t>(level)];
  const double stretch = config_.scaling.stretch(config_.table.ratio_of(f));
  const std::vector<sched::Task>& tasks = rta_.tasks().tasks();
  const std::size_t n = tasks.size();
  // scaled_wcet_ is free to reuse: compute_headroom runs strictly after
  // the level search, and the next feasible_at_level rewrites it.
  scaled_wcet_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled_wcet_[i] = tasks[i].wcet * stretch * scale;
    if (scaled_wcet_[i] > static_cast<double>(tasks[i].deadline)) {
      return false;
    }
  }
  // Seed validity mirrors feasible_at_level: this probe's interference
  // dominates (a) the f_max unscaled set, (b) the level search's last
  // feasible probe when it ran at or above `level` (the granted level
  // itself, normally), and (c) the last feasible headroom probe, whose
  // scale is <= this one on every schedule compute_headroom runs — so
  // each of those converged responses lies at or below this probe's
  // least fixed point and resuming from their max cannot overshoot.
  const bool reuse_level_probe =
      seeds != nullptr && probe_level_ >= level && probe_r_.size() == n;
  const bool reuse_chain =
      seeds != nullptr && hr_scale_ > 0.0 && hr_scale_ <= scale &&
      hr_r_.size() == n;
  const bool record = seeds != nullptr;
  if (record) hr_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sched::Task& task = tasks[i];
    double r = scaled_wcet_[i];
    if (seeds != nullptr && (*seeds)[i].has_value()) {
      r = std::max(*(*seeds)[i], r);
    }
    if (reuse_level_probe) r = std::max(probe_r_[i], r);
    if (reuse_chain) r = std::max(hr_r_[i], r);
    bool converged = false;
    for (int iter = 0; iter < 100000; ++iter) {
      double next = scaled_wcet_[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (tasks[j].priority >= task.priority) continue;
        const double jobs = std::ceil(
            (r - kTimeEpsilon) / static_cast<double>(tasks[j].period));
        next += std::max(1.0, jobs) * scaled_wcet_[j];
      }
      if (next == r) {
        converged = true;
        break;
      }
      if (next > static_cast<double>(task.deadline) + kTimeEpsilon) break;
      r = next;
    }
    if (!converged) return false;
    if (definitely_greater(r, static_cast<double>(task.deadline))) {
      return false;
    }
    if (record) hr_scratch_[i] = r;
  }
  if (record) {
    hr_r_.swap(hr_scratch_);
    hr_scale_ = scale;
  }
  return true;
}

double AdmissionService::compute_headroom(int level) {
  const std::vector<std::optional<Time>>* seeds =
      config_.incremental ? &rta_.response_times() : nullptr;
  hr_scale_ = 0.0;  // The chain is per call: the set or level changed.
  if (rta_.tasks().empty()) return kHeadroomCap;  // Nothing to scale.
  // scale = 1 is feasible by construction (`level` is the granted
  // minimum), so the gallop starts at 2 with lo = 1 already proven.
  double lo = 1.0;
  double hi = 2.0;
  while (headroom_feasible(level, hi, seeds)) {
    lo = hi;
    hi *= 2.0;
    if (hi > kHeadroomCap) return kHeadroomCap;
  }
  for (int i = 0; i < kHeadroomIters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (headroom_feasible(level, mid, seeds)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Decision AdmissionService::handle(const Request& request) {
  saturating_increment(stats_.requests);
  Decision d;
  d.kind = request.kind;

  std::string key = candidate_key(request);
  const std::uint64_t digest = core::fnv1a(key);
  d.fingerprint = digest;

  // A priority clash can never be scheduled under unique-priority FPS;
  // reject without analysis (and without poisoning the cache —
  // IncrementalRta refuses duplicate priorities outright).
  bool clash = false;
  if (request.kind != RequestKind::kRemove) {
    const std::vector<sched::Task>& current = rta_.tasks().tasks();
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (request.kind == RequestKind::kMutate &&
          static_cast<TaskIndex>(i) == request.index) {
        continue;
      }
      if (current[i].priority == request.task.priority) {
        clash = true;
        break;
      }
    }
  }

  bool schedulable = false;
  int min_level = -1;
  double headroom = 0.0;
  if (!clash) {
    // Request direction, hoisted ahead of the cache lookup: it both
    // brackets the level search and decides whether the retained
    // cross-request probe responses stay valid.  Same priority with
    // WCET up / period down / deadline down can only tighten every
    // task's constraint (interference grows, own slack shrinks); the
    // mirror image can only relax them.  Anything else gives no
    // direction.
    sched::Task previous;
    SearchBound bound = SearchBound::kUnbounded;
    switch (request.kind) {
      case RequestKind::kAdd:
        bound = SearchBound::kNotBelowHint;
        break;
      case RequestKind::kRemove:
        bound = SearchBound::kNotAboveHint;
        break;
      case RequestKind::kMutate:
        previous = rta_.tasks()[request.index];
        if (request.task.priority == previous.priority) {
          if (request.task.wcet >= previous.wcet &&
              request.task.period <= previous.period &&
              request.task.deadline <= previous.deadline) {
            bound = SearchBound::kNotBelowHint;
          } else if (request.task.wcet <= previous.wcet &&
                     request.task.period >= previous.period &&
                     request.task.deadline >= previous.deadline) {
            bound = SearchBound::kNotAboveHint;
          }
        }
        break;
    }
    // Retained probe responses survive exactly the requests that can
    // only *grow* every fixed point (kNotBelowHint): grown least fixed
    // points keep the old responses at or below them, so they remain
    // sound seeds.  A remove/relax shrinks fixed points and would turn
    // them into overshooting seeds — invalidate.  An add appends one
    // task; seed it with 0 (contributes nothing beyond the scaled C_i
    // floor) and pop it again if the add is rejected, which restores
    // the pre-request vector exactly because a rejected request never
    // runs a level search.
    const bool retain = config_.incremental &&
                        bound == SearchBound::kNotBelowHint &&
                        probe_level_ >= 0;
    bool probe_pushed = false;
    if (!retain) {
      probe_level_ = -1;
    } else if (request.kind == RequestKind::kAdd) {
      probe_r_.push_back(0.0);
      probe_pushed = true;
    }

    // Shared-cache traffic keys on the config token + canonical bytes
    // and hashes the prefixed key; d.fingerprint stays the unprefixed
    // candidate digest either way.
    const bool shared = config_.use_cache && config_.shared_cache != nullptr;
    std::string shared_key;
    std::uint64_t shared_digest = 0;
    if (shared) {
      shared_key.reserve(shared_key_prefix_.size() + key.size());
      shared_key = shared_key_prefix_;
      shared_key += key;
      shared_digest = core::fnv1a(shared_key);
    }
    std::optional<CacheEntry> shared_hit;
    const CacheEntry* hit = nullptr;
    if (shared) {
      bool collision = false;
      shared_hit =
          config_.shared_cache->find(shared_digest, shared_key, &collision);
      if (collision) saturating_increment(shared_view_.collisions);
      if (shared_hit.has_value()) {
        saturating_increment(shared_view_.hits);
        hit = &*shared_hit;
      } else {
        saturating_increment(shared_view_.misses);
      }
    } else if (config_.use_cache) {
      hit = cache_.find(digest, key);
    }

    if (hit != nullptr) {
      d.cache_hit = true;
      schedulable = hit->schedulable;
      min_level = hit->min_level;
      headroom = hit->wcet_headroom;
      if (schedulable) {
        // Adopt the memoized state: the stored response vector is what
        // analyzing the candidate produces (bit-identity contract), so
        // the service state is indistinguishable from a recomputation.
        sched::TaskSet candidate = rta_.tasks();
        switch (request.kind) {
          case RequestKind::kAdd:
            candidate.add(request.task);
            break;
          case RequestKind::kRemove:
            candidate.remove(request.index);
            break;
          case RequestKind::kMutate:
            candidate.replace(request.index, request.task);
            break;
        }
        rta_.reset(std::move(candidate), hit->response_times);
      }
    } else {
      // The rollback snapshot is one response vector plus (for mutate)
      // one task: a rejected add is undone by popping the appended
      // task, a rejected mutate by swapping the old task back, and
      // removals are never rejected — so no full TaskSet copy is needed
      // anywhere on this path.
      std::vector<std::optional<Time>> before_r = rta_.response_times();
      const sched::IncrementalRta::Stats rta_before = rta_.stats();
      switch (request.kind) {
        case RequestKind::kAdd:
          rta_.add_task(request.task);
          break;
        case RequestKind::kRemove:
          rta_.remove_task(request.index);
          break;
        case RequestKind::kMutate:
          rta_.mutate_task(request.index, request.task);
          break;
      }
      schedulable = rta_.schedulable();
      d.tasks_reanalyzed =
          rta_.stats().tasks_reanalyzed - rta_before.tasks_reanalyzed;
      d.tasks_seeded = rta_.stats().tasks_seeded - rta_before.tasks_seeded;
      if (schedulable) {
        const std::uint64_t probes_before = stats_.levels_probed;
        min_level = min_feasible_level(bound);
        d.levels_probed = static_cast<std::int64_t>(stats_.levels_probed -
                                                    probes_before);
        d.stationary = last_search_stationary_;
        if (d.stationary) saturating_increment(stats_.stationary_hits);
        if (config_.sensitivity) {
          const std::uint64_t hr_before = stats_.headroom_probes;
          headroom = compute_headroom(min_level);
          d.headroom_probes = static_cast<std::int64_t>(
              stats_.headroom_probes - hr_before);
        }
      }
      if (config_.use_cache) {
        CacheEntry entry{schedulable, min_level, headroom,
                         rta_.response_times()};
        if (shared) {
          config_.shared_cache->insert(shared_digest, std::move(shared_key),
                                       std::move(entry));
          saturating_increment(shared_view_.insertions);
        } else {
          cache_.insert(digest, std::move(key), std::move(entry));
        }
      }
      if (!schedulable) {
        // Shrinking interference cannot create a deadline miss, so a
        // rejection here is always an add or a mutate.
        LPFPS_CHECK(request.kind != RequestKind::kRemove);
        if (request.kind == RequestKind::kAdd) {
          rta_.undo_add(std::move(before_r));
        } else {
          rta_.undo_mutate(request.index, std::move(previous),
                           std::move(before_r));
        }
      }
    }
    if (probe_pushed && !schedulable) probe_r_.pop_back();
  }

  d.admitted = schedulable;
  if (schedulable) {
    d.min_level = min_level;
    d.wcet_headroom = headroom;
    d.min_safe_mhz =
        config_.table.levels()[static_cast<std::size_t>(min_level)];
    d.min_safe_ratio = config_.table.ratio_of(d.min_safe_mhz);
    last_min_level_ = min_level;
    last_util_ = rta_.tasks().utilization();
    saturating_increment(stats_.admitted);
  } else {
    saturating_increment(stats_.rejected);
  }
  d.task_count = static_cast<std::int64_t>(rta_.tasks().size());
  d.utilization = rta_.tasks().utilization();
  return d;
}

}  // namespace lpfps::admission
