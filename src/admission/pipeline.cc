#include "admission/pipeline.h"

#include <utility>

#include "core/fingerprint.h"
#include "io/admission_io.h"
#include "multicore/partitioned_admission.h"
#include "runner/runner.h"

namespace lpfps::admission {

SessionResult run_session(const SessionSpec& spec) {
  const ChurnStream stream = make_churn_stream(spec.churn, spec.seed);
  AdmissionService service(stream.initial, spec.service);

  SessionResult result;
  std::uint64_t digest = core::kFnvOffsetBasis;
  for (const ChurnOp& op : stream.ops) {
    const std::optional<Request> request = resolve(op, service.tasks());
    if (!request.has_value()) {
      ++result.skipped;
      continue;
    }
    const Decision decision = service.handle(*request);
    ++result.requests;
    if (decision.admitted) {
      ++result.admitted;
    } else {
      ++result.rejected;
    }
    digest = core::fnv1a(io::admission_csv_row(decision), digest);
  }
  result.decision_digest = digest;
  result.final_fingerprint = service.fingerprint();
  result.stats = service.stats();
  result.cache = service.cache_counters();
  result.rta = service.rta_stats();
  return result;
}

std::vector<SessionResult> run_sessions(
    const std::vector<SessionSpec>& specs, std::size_t threads) {
  return runner::run_batch(
      specs.size(),
      [&specs](std::size_t i) { return run_session(specs[i]); }, threads);
}

MulticoreSessionResult run_multicore_session(
    const MulticoreSessionSpec& spec) {
  const ChurnStream stream = make_churn_stream(spec.churn, spec.seed);
  multicore::PartitionedAdmission admission(spec.cores, spec.scratch);

  // The global view every op resolves against, plus where each of its
  // tasks currently lives: (core, index within that core).  Removal on
  // a core shifts that core's higher indices down (TaskSet::remove
  // semantics), mirrored here.
  sched::TaskSet view;
  std::vector<std::pair<int, TaskIndex>> locs;

  MulticoreSessionResult result;
  core::FnvHasher digest;
  const auto place = [&](const sched::Task& task) {
    const int core = admission.try_add(task);
    if (core >= 0) {
      view.add(task);
      locs.emplace_back(
          core,
          static_cast<TaskIndex>(admission.core(core).tasks().size()) - 1);
    }
    return core;
  };
  // Seed the cores with the stream's initial set, first-fit in index
  // order (tasks that fit nowhere are dropped — deterministically, so
  // both arms start from the identical placement).
  for (const sched::Task& task : stream.initial.tasks()) place(task);

  for (const ChurnOp& op : stream.ops) {
    const std::optional<Request> request = resolve(op, view);
    if (!request.has_value() || request->kind == RequestKind::kMutate) {
      ++result.skipped;
      continue;
    }
    ++result.requests;
    int core = -1;
    bool admitted = false;
    if (request->kind == RequestKind::kAdd) {
      core = place(request->task);
      admitted = core >= 0;
    } else {
      const std::size_t i = static_cast<std::size_t>(request->index);
      const auto [home, index_in_core] = locs[i];
      admission.remove(home, index_in_core);
      view.remove(request->index);
      locs.erase(locs.begin() + static_cast<std::ptrdiff_t>(i));
      for (auto& [other_core, other_index] : locs) {
        if (other_core == home && other_index > index_in_core) {
          --other_index;
        }
      }
      core = home;
      admitted = true;  // Departures are always granted.
    }
    if (admitted) {
      ++result.admitted;
    } else {
      ++result.rejected;
    }
    digest.mix(static_cast<std::int32_t>(request->kind));
    digest.mix(static_cast<std::uint64_t>(admitted ? 1 : 0));
    digest.mix(static_cast<std::int32_t>(core));
    digest.mix(admission.fingerprint());
  }
  result.decision_digest = digest.digest();
  result.final_fingerprint = admission.fingerprint();
  result.rta = admission.rta_stats();
  return result;
}

std::vector<MulticoreSessionResult> run_multicore_sessions(
    const std::vector<MulticoreSessionSpec>& specs, std::size_t threads) {
  return runner::run_batch(
      specs.size(),
      [&specs](std::size_t i) { return run_multicore_session(specs[i]); },
      threads);
}

}  // namespace lpfps::admission
