#include "admission/pipeline.h"

#include "core/fingerprint.h"
#include "io/admission_io.h"
#include "runner/runner.h"

namespace lpfps::admission {

SessionResult run_session(const SessionSpec& spec) {
  const ChurnStream stream = make_churn_stream(spec.churn, spec.seed);
  AdmissionService service(stream.initial, spec.service);

  SessionResult result;
  std::uint64_t digest = core::kFnvOffsetBasis;
  for (const ChurnOp& op : stream.ops) {
    const std::optional<Request> request = resolve(op, service.tasks());
    if (!request.has_value()) {
      ++result.skipped;
      continue;
    }
    const Decision decision = service.handle(*request);
    ++result.requests;
    if (decision.admitted) {
      ++result.admitted;
    } else {
      ++result.rejected;
    }
    digest = core::fnv1a(io::admission_csv_row(decision), digest);
  }
  result.decision_digest = digest;
  result.final_fingerprint = service.fingerprint();
  result.stats = service.stats();
  result.cache = service.cache_counters();
  result.rta = service.rta_stats();
  return result;
}

std::vector<SessionResult> run_sessions(
    const std::vector<SessionSpec>& specs, std::size_t threads) {
  return runner::run_batch(
      specs.size(),
      [&specs](std::size_t i) { return run_session(specs[i]); }, threads);
}

}  // namespace lpfps::admission
