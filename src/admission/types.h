// Request/decision vocabulary of the admission-control service.
//
// Clients stream task add / remove / parameter-change requests; the
// service answers admit/reject plus the minimum safe clock frequency
// at which the (changed) set still meets every deadline.  Decisions
// split into two kinds of fields:
//
//   * decision fields — what was decided (admitted, minimum safe
//     frequency, the candidate set's fingerprint).  These are
//     bit-identical between the incremental and from-scratch analysis
//     arms and between cache hits and misses, and they are exactly
//     what io::admission_csv_row serializes;
//   * accounting fields — how the decision was obtained (cache hit,
//     tasks reanalyzed, levels probed).  Like the engine's
//     cycle-detection counters (core/result.h), these are excluded
//     from the CSV row by design and flow into bench JSON / AUDIT meta
//     instead, so an accounting difference can never masquerade as a
//     behavioral one.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "sched/task.h"

namespace lpfps::admission {

enum class RequestKind { kAdd, kRemove, kMutate };

/// One concrete state-change request against the service's current set.
struct Request {
  RequestKind kind = RequestKind::kAdd;
  /// kRemove/kMutate: the target task's current index.
  TaskIndex index = kNoTask;
  /// kAdd: the task to admit.  kMutate: the replacement parameters.
  sched::Task task;
};

struct Decision {
  RequestKind kind = RequestKind::kAdd;
  /// True iff the request was applied: the resulting set is
  /// schedulable at f_max.  Rejected requests leave the service's set
  /// untouched (removals are always admitted — shrinking a schedulable
  /// set cannot break it).
  bool admitted = false;
  /// Index into the frequency table's levels of the lowest frequency
  /// at which the current set stays schedulable under the (non-ideal)
  /// WCET scaling model; -1 when rejected.
  int min_level = -1;
  MegaHertz min_safe_mhz = 0.0;
  Ratio min_safe_ratio = 0.0;
  /// Sensitivity: the largest uniform factor by which every WCET can be
  /// scaled while the set stays schedulable *at the granted level* —
  /// how much measured-WCET pessimism the admitted set tolerates before
  /// the answer above stops holding.  Always >= 1 for an admitted set
  /// (the unscaled set is feasible at min_level by construction);
  /// capped at 2^20 for sets with unbounded headroom (e.g. empty); 0
  /// when rejected or when ServiceConfig::sensitivity is off.  A
  /// decision field: bit-identical across arms (the probe schedule is
  /// fixed; only the fixed-point seeding differs, which cannot move an
  /// exact fixed point), serialized in the CSV row.
  double wcet_headroom = 0.0;
  /// Fingerprint of the *candidate* set the decision evaluated (the
  /// post-change set; equals the current set's fingerprint iff
  /// admitted).
  std::uint64_t fingerprint = 0;
  /// Size and utilization of the current (post-decision) set.
  std::int64_t task_count = 0;
  double utilization = 0.0;

  // --- accounting (excluded from io::admission_csv_row) ---
  bool cache_hit = false;
  /// The stationary-boundary fast path answered the minimum-frequency
  /// search (the cached boundary verified unchanged in <= 2 probes).
  bool stationary = false;
  std::int64_t tasks_reanalyzed = 0;
  std::int64_t tasks_seeded = 0;
  std::int64_t levels_probed = 0;
  std::int64_t headroom_probes = 0;  ///< Sensitivity feasibility probes.
};

}  // namespace lpfps::admission
