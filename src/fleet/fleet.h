// Batched structure-of-arrays fleet engine.
//
// Every sweep in this repository — random tasksets, fault magnitudes,
// policy ablations — is a loop of *independent* simulations, each tiny:
// a 5-task UUniFast set over a few hyperperiods costs a handful of
// microseconds, of which a large fraction is per-sim fixed setup (the
// Engine's task-set/processor/policy copies, half a dozen vector
// allocations for queues, job tables and per-task totals, power-model
// construction).  The fleet engine amortizes that fixed cost away:
//
//   * simulations are added up front as SimSpecs and partitioned into
//     batches of `batch_width`;
//   * each batch binds onto a pool of reusable SimState *lanes* —
//     rebinding a lane (SimState::reset) reuses every buffer the
//     previous sim allocated, so steady-state batches allocate nothing
//     per sim;
//   * hot per-lane scalars (clock, done flag, CPU mode, speed ratio,
//     event count, energy) are mirrored in contiguous arrays — the
//     structure-of-arrays view — and each lockstep round performs a
//     next-event-time reduction over the clock array (the *frontier*),
//     then advances exactly the lanes inside the window
//     [frontier, frontier + stride] by whole engine steps;
//   * within a batch, lanes are scheduled in cache-sized *blocks* of
//     `lane_block` lanes (default 64 — the measured sweet spot, see
//     docs/FLEET.md): each block's lockstep loop runs to completion
//     before the next block binds, so the live working set — lanes,
//     specs, SoA mirror slices — stays cache-resident at any batch
//     width instead of streaming from memory past ~64 live lanes.
//
// **Bit-identity contract.**  A lane executes the exact same
// begin()/step().../finish() sequence `core::Engine::run` executes —
// the same code, in SimState — and simulations are independent, so the
// interleaving order across lanes cannot influence any per-sim value.
// Every result (CSV row, coalesced trace, audit report) is therefore
// bit-identical to a serial `core::simulate` of the same spec.  The
// stride-invariance argument extends to *block-order* invariance: a
// block is just a subset of independent lanes, so any block size and
// any block execution order yield identical results.  The differential
// suite in tests/fleet/ pins this across batch widths, strides, block
// sizes and block orders, workloads, policies, faulted sims and
// cycle-eligible sims; docs/FLEET.md documents the argument and the
// measured scaling.
//
// **Batch width 1** is defined as the *unbatched serial reference*: the
// fleet runs each sim through `core::simulate` exactly like today's
// sweeps do (fresh Engine, fresh buffers, full fixed cost).  The
// batch-width scaling series in bench_kernel_throughput therefore
// measures batching against the status quo, not against a strawman.
//
// **Eligibility.**  Any spec `core::simulate` accepts is eligible —
// faults, containment, jitter, cycle detection, traces all ride along
// (bit-identity holds because the per-sim code is shared, not because
// features are excluded).  Two practical caveats: specs sharing one
// exec::TraceDrivenModel instance must not be batched (mutable replay
// cursors — same rule as the parallel runner), and EngineOptions
// invocation hooks fire interleaved across lanes (per-lane order is
// unchanged; hooks that assume global time monotonicity across *sims*
// would be confused).  The runner may still fan batches out across
// threads; the fleet is the within-thread layer below it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <random>
#include <vector>

#include "core/engine.h"
#include "core/policy.h"
#include "core/result.h"
#include "exec/exec_model.h"
#include "power/processor.h"
#include "runner/runner.h"
#include "sched/task_set.h"

namespace lpfps::core {
class SimState;
}  // namespace lpfps::core

namespace lpfps::fleet {

/// One simulation to run: the same four components core::simulate
/// takes, owned by value so a spec outlives the lane that borrows it.
struct SimSpec {
  sched::TaskSet tasks;
  power::ProcessorConfig processor;
  core::SchedulerPolicy policy;
  exec::ExecModelPtr exec_model;  ///< May be null (WCET execution).
  core::EngineOptions options;
};

struct FleetOptions {
  /// Lanes advanced in lockstep per batch.  1 (or 0) selects the
  /// unbatched serial reference path (see file comment).
  std::size_t batch_width = 256;
  /// Lockstep window length in simulated microseconds: each round, the
  /// lanes within `stride` of the frontier (the minimum lane clock)
  /// advance past the window before the next reduction.  <= 0 picks
  /// 1/16 of the shortest horizon in the block.  Any positive value
  /// yields identical results (the differential suite asserts stride
  /// invariance); it only tunes how often the reduction runs.
  Time stride = 0.0;
  /// Lane-block size: a batch is scheduled as consecutive blocks of
  /// this many lanes, each block's lockstep loop run to completion
  /// before the next block binds, keeping the live working set
  /// cache-resident at any batch width.  0 disables blocking (the
  /// whole batch is one block — the pre-blocking behavior).  Any value
  /// yields identical results (block-size/block-order invariance, see
  /// file comment); it only tunes cache residency.
  std::size_t lane_block = 64;
  /// Runs a batch's blocks highest-index-first instead of in add
  /// order.  A verification knob: the differential suite flips it to
  /// pin block-order invariance; there is no performance reason to.
  bool reverse_block_order = false;
};

/// Execution counters for one run_* call — the observability hooks the
/// bench and docs/FLEET.md report.
struct FleetStats {
  std::size_t sims = 0;
  std::size_t batches = 0;
  std::size_t blocks = 0;              ///< Lane blocks run to completion.
  std::size_t lane_constructions = 0;  ///< Fresh SimState allocations.
  std::size_t lane_rebinds = 0;        ///< Buffer-reusing resets.
  std::size_t rounds = 0;              ///< Lockstep reduction rounds.
  std::int64_t steps = 0;              ///< Engine steps across all lanes.
  std::int64_t events = 0;  ///< Scheduler invocations across all sims.
};

/// The batch engine.  Add every spec, then run; results come back in
/// add order.  Not thread-safe — one FleetEngine per thread (the
/// runner's run_batch fans out *above* this layer).
class FleetEngine {
 public:
  explicit FleetEngine(FleetOptions options = {});
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Registers one simulation; returns its index (== result slot).
  std::size_t add(SimSpec spec);

  std::size_t size() const { return specs_.size(); }

  /// Runs every added spec and returns results in add order.  A
  /// throwing sim aborts the run with the exception of the
  /// lowest-index failing sim (run_batch semantics).  Stats are
  /// overwritten per call; calling again re-runs the same specs and —
  /// determinism contract — returns identical results.
  std::vector<core::SimulationResult> run_all();

  /// run_all with per-sim fault isolation: a throwing sim yields a
  /// JobOutcome carrying its error text instead of aborting the batch
  /// (the fleet twin of runner::run_batch_isolated).  Surviving lanes
  /// are unaffected — simulations share no state.
  std::vector<runner::JobOutcome<core::SimulationResult>> run_outcomes();

  /// Counters of the most recent run_* call.
  const FleetStats& stats() const { return stats_; }

  /// Moves out the per-spec exception_ptrs of the most recent
  /// run_outcomes() call (null for specs that succeeded).  The sharded
  /// runner uses this to rethrow the lowest-spec-index failure with
  /// its original type after a fan-out, matching run_all semantics.
  std::vector<std::exception_ptr> take_errors() { return std::move(errors_); }

 private:
  /// Runs specs [first, last) as consecutive lane blocks of
  /// options_.lane_block; outcomes land in outcomes_[first..last).
  void run_batch_lockstep(std::size_t first, std::size_t last);
  /// Runs one lane block [first, last) — bind onto the lane pool, then
  /// the lockstep frontier loop to completion.
  void run_block_lockstep(std::size_t first, std::size_t last);
  /// The width<=1 reference path: core::simulate per spec.
  void run_batch_serial(std::size_t first, std::size_t last);

  FleetOptions options_;
  std::vector<SimSpec> specs_;

  // Per-spec preparation computed once at add() time (SimState::prepare):
  // the validation verdict and the cycle-eligibility probe are pure
  // functions of the immutable spec, so rebinding lanes skip both.
  // Stored as SoA columns to keep SimState incomplete here.  A spec
  // whose validation failed carries its exception and never binds a
  // lane; its outcome reports the same error begin() would have thrown.
  std::vector<std::int64_t> prep_hyperperiod_;  ///< 0 = cycle-ineligible.
  std::vector<std::exception_ptr> prep_errors_;
  /// Warmed RNG state per spec (Rng::warmed_engine of options.seed):
  /// restored on every lane bind, replaying the seeded stream
  /// bit-identically while skipping the ~2us mt19937_64 seed expansion
  /// + first-block generation — the single largest per-sim fixed cost.
  std::vector<std::mt19937_64> prep_rng_;

  // Lane pool: lane i hosts sim (block_first + i) of the current lane
  // block, so the pool (and the mirrors below) never grow past
  // lane_block lanes regardless of batch width; unique_ptr keeps
  // SimState incomplete in this header.
  std::vector<std::unique_ptr<core::SimState>> lanes_;

  // Structure-of-arrays mirrors of the hot lane scalars, refreshed
  // after every advance.  Indexed by lane, sized to the current block.
  std::vector<Time> lane_clock_;
  std::vector<std::uint8_t> lane_done_;  ///< finished or errored.
  std::vector<std::uint8_t> lane_mode_;  ///< sim::ProcessorMode.
  std::vector<Ratio> lane_ratio_;
  std::vector<Energy> lane_energy_;
  std::vector<std::int64_t> lane_events_;

  // Per-sim outcome staging (exception_ptr preserves the original
  // exception type for run_all's rethrow).
  std::vector<runner::JobOutcome<core::SimulationResult>> outcomes_;
  std::vector<std::exception_ptr> errors_;

  FleetStats stats_;
};

/// True iff the LPFPS_FLEET environment variable opts the process into
/// fleet-routed sweeps (set and not "0"/"off"/"false"; re-read per call
/// so tests can toggle it).  Benches use this to switch their batch
/// loops onto the fleet path with byte-identical output.
bool enabled();

/// One-call convenience: run `specs` through a FleetEngine.
std::vector<core::SimulationResult> run_fleet(std::vector<SimSpec> specs,
                                              const FleetOptions& options = {});

/// run_fleet with per-sim fault isolation (JobOutcome per spec).
std::vector<runner::JobOutcome<core::SimulationResult>> run_fleet_isolated(
    std::vector<SimSpec> specs, const FleetOptions& options = {});

/// Sharded fleet: partitions `specs` positionally into contiguous
/// shards, one per `runner::ThreadPool` worker, and runs one
/// FleetEngine per worker.  Because every spec carries its own seed
/// (the PR 1 positional-seed contract) and shard boundaries are a pure
/// function of (spec count, worker count), N-worker output is
/// byte-identical to a serial fleet run of the same specs — results
/// come back in spec order, and a failure surfaces as the
/// lowest-spec-index exception exactly like run_fleet (contiguous
/// ascending shards make the lowest failing shard's lowest failure the
/// global one).  `threads == 0` means runner::default_job_count()
/// (LPFPS_JOBS); `threads <= 1` degrades to run_fleet on the calling
/// thread.
std::vector<core::SimulationResult> run_fleet_sharded(
    std::vector<SimSpec> specs, const FleetOptions& options = {},
    std::size_t threads = 0);

/// run_fleet_sharded with per-sim fault isolation (JobOutcome per
/// spec, runner::run_batch_isolated semantics).
std::vector<runner::JobOutcome<core::SimulationResult>>
run_fleet_sharded_isolated(std::vector<SimSpec> specs,
                           const FleetOptions& options = {},
                           std::size_t threads = 0);

}  // namespace lpfps::fleet
