#include "fleet/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/sim_state.h"

namespace lpfps::fleet {

namespace {

/// Error text for an exception_ptr, matching run_batch_isolated's
/// wording so fleet and runner outcomes read identically.
std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    std::string text = e.what();
    return text.empty() ? "exception" : text;
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

bool enabled() {
  const char* value = std::getenv("LPFPS_FLEET");
  if (value == nullptr) return false;
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "off") != 0 && std::strcmp(value, "false") != 0;
}

FleetEngine::FleetEngine(FleetOptions options) : options_(options) {}

FleetEngine::~FleetEngine() = default;

std::size_t FleetEngine::add(SimSpec spec) {
  specs_.push_back(std::move(spec));
  const SimSpec& stored = specs_.back();
  std::int64_t hyper = 0;
  std::exception_ptr error;
  try {
    const core::SimState::SpecPrep prep =
        core::SimState::prepare(stored.tasks, stored.processor, stored.policy,
                                stored.exec_model, stored.options);
    hyper = prep.cycle_eligible ? prep.hyperperiod : 0;
  } catch (...) {
    error = std::current_exception();
  }
  prep_hyperperiod_.push_back(hyper);
  prep_errors_.push_back(std::move(error));
  prep_rng_.push_back(Rng::warmed_engine(stored.options.seed));
  return specs_.size() - 1;
}

void FleetEngine::run_batch_serial(std::size_t first, std::size_t last) {
  // The unbatched reference: exactly the call today's sweep loops make
  // per simulation, fixed setup cost (Engine copies, fresh buffers)
  // included.  This is what batch width 1 measures against.
  for (std::size_t i = first; i < last; ++i) {
    const SimSpec& spec = specs_[i];
    try {
      core::SimulationResult result =
          core::simulate(spec.tasks, spec.processor, spec.policy,
                         spec.exec_model, spec.options);
      stats_.events += result.scheduler_invocations;
      outcomes_[i].result.emplace(std::move(result));
    } catch (...) {
      errors_[i] = std::current_exception();
      outcomes_[i].error = describe(errors_[i]);
    }
  }
}

void FleetEngine::run_batch_lockstep(std::size_t first, std::size_t last) {
  // Lane-block scheduling: carve the batch into blocks of lane_block
  // lanes and run each block's lockstep loop to completion before the
  // next block binds.  Lanes are independent, so block size and block
  // order cannot change any per-sim value (the differential suite pins
  // both); what they change is cache residency — the live working set
  // is one block's lanes + specs + mirror slices, not the batch's.
  const std::size_t width = last - first;
  const std::size_t block =
      options_.lane_block == 0 ? width : std::min(options_.lane_block, width);
  if (!options_.reverse_block_order) {
    for (std::size_t begin = first; begin < last; begin += block) {
      run_block_lockstep(begin, std::min(last, begin + block));
    }
  } else {
    // Highest-index block first — the verification knob (see header).
    const std::size_t count = (width + block - 1) / block;
    for (std::size_t i = count; i-- > 0;) {
      const std::size_t begin = first + i * block;
      run_block_lockstep(begin, std::min(last, begin + block));
    }
  }
}

void FleetEngine::run_block_lockstep(std::size_t first, std::size_t last) {
  const std::size_t width = last - first;
  ++stats_.blocks;

  // Bind the block onto the lane pool: construct lanes on first use,
  // rebind (buffer-reusing reset) thereafter, and refresh the SoA
  // mirrors from each lane's post-begin state.
  if (lanes_.size() < width) lanes_.resize(width);
  lane_clock_.assign(width, 0.0);
  lane_done_.assign(width, 0);
  lane_mode_.assign(width, 0);
  lane_ratio_.assign(width, 1.0);
  lane_energy_.assign(width, 0.0);
  lane_events_.assign(width, 0);

  Time min_horizon = std::numeric_limits<Time>::infinity();
  for (std::size_t i = 0; i < width; ++i) {
    const SimSpec& spec = specs_[first + i];
    min_horizon = std::min(min_horizon, spec.options.horizon);
    if (prep_errors_[first + i]) {
      // The spec failed validation at add() time; begin() would throw
      // the identical error, so report it without binding a lane.
      errors_[first + i] = prep_errors_[first + i];
      outcomes_[first + i].error = describe(errors_[first + i]);
      lane_done_[i] = 1;
      continue;
    }
    core::SimState::SpecPrep prep;
    prep.hyperperiod = prep_hyperperiod_[first + i];
    prep.cycle_eligible = prep.hyperperiod != 0;
    try {
      if (lanes_[i] == nullptr) {
        lanes_[i] = std::make_unique<core::SimState>(
            spec.tasks, spec.processor, spec.policy, spec.exec_model,
            spec.options, &prep_rng_[first + i]);
        ++stats_.lane_constructions;
      } else {
        lanes_[i]->reset(spec.tasks, spec.processor, spec.policy,
                         spec.exec_model, spec.options,
                         &prep_rng_[first + i]);
        ++stats_.lane_rebinds;
      }
      lanes_[i]->begin(&prep);
      lane_clock_[i] = lanes_[i]->clock();
      lane_mode_[i] = static_cast<std::uint8_t>(lanes_[i]->mode_now());
      lane_ratio_[i] = lanes_[i]->ratio_now();
      lane_energy_[i] = lanes_[i]->energy_now();
      lane_events_[i] = lanes_[i]->invocations();
    } catch (...) {
      errors_[first + i] = std::current_exception();
      outcomes_[first + i].error = describe(errors_[first + i]);
      lane_done_[i] = 1;
    }
  }

  // Window length for each lockstep round (see FleetOptions::stride).
  Time stride = options_.stride;
  if (!(stride > 0.0)) stride = std::max(min_horizon / 16.0, 1.0);

  // Lockstep advance: reduce for the frontier (the earliest lane
  // clock), then advance every lane inside [frontier, frontier+stride]
  // past the window.  Lanes are independent, so this interleaving
  // cannot change any per-lane value — it only keeps the working set
  // of concurrently-hot lanes bounded and the reduction O(width).
  while (true) {
    Time frontier = std::numeric_limits<Time>::infinity();
    for (std::size_t i = 0; i < width; ++i) {
      if (!lane_done_[i] && lane_clock_[i] < frontier) {
        frontier = lane_clock_[i];
      }
    }
    if (frontier == std::numeric_limits<Time>::infinity()) break;
    ++stats_.rounds;
    const Time limit = frontier + stride;

    for (std::size_t i = 0; i < width; ++i) {
      if (lane_done_[i] || lane_clock_[i] > limit) continue;
      core::SimState& lane = *lanes_[i];
      try {
        while (!lane.finished() && lane.clock() <= limit) {
          lane.step();
          ++stats_.steps;
        }
        if (lane.finished()) {
          core::SimulationResult result = lane.finish();
          stats_.events += result.scheduler_invocations;
          outcomes_[first + i].result.emplace(std::move(result));
          lane_done_[i] = 1;
        }
        lane_clock_[i] = lane.clock();
        lane_mode_[i] = static_cast<std::uint8_t>(lane.mode_now());
        lane_ratio_[i] = lane.ratio_now();
        lane_energy_[i] = lane.energy_now();
        lane_events_[i] = lane.invocations();
      } catch (...) {
        // The lane's sim threw (deadline miss, livelock guard, ...):
        // capture and retire the lane.  Its SimState is left mid-run —
        // harmless, the next batch reset()s it from scratch.
        errors_[first + i] = std::current_exception();
        outcomes_[first + i].error = describe(errors_[first + i]);
        lane_done_[i] = 1;
      }
    }
  }
}

std::vector<runner::JobOutcome<core::SimulationResult>>
FleetEngine::run_outcomes() {
  stats_ = FleetStats{};
  stats_.sims = specs_.size();
  outcomes_.clear();
  outcomes_.resize(specs_.size());
  errors_.assign(specs_.size(), nullptr);

  const std::size_t width = std::max<std::size_t>(options_.batch_width, 1);
  for (std::size_t first = 0; first < specs_.size(); first += width) {
    const std::size_t last = std::min(specs_.size(), first + width);
    ++stats_.batches;
    if (width <= 1) {
      run_batch_serial(first, last);
    } else {
      run_batch_lockstep(first, last);
    }
  }
  return std::move(outcomes_);
}

std::vector<core::SimulationResult> FleetEngine::run_all() {
  std::vector<runner::JobOutcome<core::SimulationResult>> outcomes =
      run_outcomes();
  // run_batch semantics: surface the lowest-index failure, preserving
  // the original exception type.
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
  std::vector<core::SimulationResult> results;
  results.reserve(outcomes.size());
  for (runner::JobOutcome<core::SimulationResult>& outcome : outcomes) {
    LPFPS_CHECK(outcome.ok());
    results.push_back(std::move(*outcome.result));
  }
  return results;
}

std::vector<core::SimulationResult> run_fleet(std::vector<SimSpec> specs,
                                              const FleetOptions& options) {
  FleetEngine engine(options);
  for (SimSpec& spec : specs) engine.add(std::move(spec));
  return engine.run_all();
}

std::vector<runner::JobOutcome<core::SimulationResult>> run_fleet_isolated(
    std::vector<SimSpec> specs, const FleetOptions& options) {
  FleetEngine engine(options);
  for (SimSpec& spec : specs) engine.add(std::move(spec));
  return engine.run_outcomes();
}

namespace {

/// Contiguous positional shards: shard k owns specs
/// [k * chunk, (k + 1) * chunk).  A pure function of (spec count,
/// thread count), so the partition — and with it every per-shard
/// result — is independent of scheduling order.
struct Sharding {
  std::size_t shards = 1;
  std::size_t chunk = 0;

  Sharding(std::size_t specs, std::size_t threads) {
    if (threads == 0) threads = runner::default_job_count();
    shards = std::max<std::size_t>(std::min(threads, specs), 1);
    chunk = (specs + shards - 1) / shards;
  }
};

/// Runs one shard's specs through a worker-local FleetEngine and
/// returns the per-spec outcomes (never throws — run_batch requires
/// non-throwing jobs; the caller decides what a captured error means).
/// Moving from the shared spec vector is safe: shards own disjoint
/// index ranges.
template <typename RunShard>
auto shard_out(std::vector<SimSpec>& specs, const FleetOptions& options,
               const Sharding& sharding, RunShard run_shard) {
  return runner::run_batch(
      sharding.shards,
      [&](std::size_t shard) {
        FleetEngine engine(options);
        const std::size_t begin = shard * sharding.chunk;
        const std::size_t end =
            std::min(specs.size(), begin + sharding.chunk);
        for (std::size_t i = begin; i < end; ++i) {
          engine.add(std::move(specs[i]));
        }
        return run_shard(engine);
      },
      sharding.shards);
}

}  // namespace

std::vector<core::SimulationResult> run_fleet_sharded(
    std::vector<SimSpec> specs, const FleetOptions& options,
    std::size_t threads) {
  const Sharding sharding(specs.size(), threads);
  if (sharding.shards <= 1) return run_fleet(std::move(specs), options);
  // Workers capture failures as outcomes (run_batch jobs must not
  // throw); the first bad outcome in spec order rethrows afterwards,
  // reproducing run_fleet's lowest-index-failure semantics.
  auto per_shard = shard_out(specs, options, sharding,
                             [](FleetEngine& engine) {
                               auto outcomes = engine.run_outcomes();
                               // Preserve original exception types for
                               // the rethrow below.
                               return std::make_pair(std::move(outcomes),
                                                     engine.take_errors());
                             });
  std::vector<core::SimulationResult> results;
  results.reserve(specs.size());
  for (auto& [outcomes, errors] : per_shard) {
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    for (auto& outcome : outcomes) {
      LPFPS_CHECK(outcome.ok());
      results.push_back(std::move(*outcome.result));
    }
  }
  return results;
}

std::vector<runner::JobOutcome<core::SimulationResult>>
run_fleet_sharded_isolated(std::vector<SimSpec> specs,
                           const FleetOptions& options, std::size_t threads) {
  const Sharding sharding(specs.size(), threads);
  if (sharding.shards <= 1) {
    return run_fleet_isolated(std::move(specs), options);
  }
  std::vector<std::vector<runner::JobOutcome<core::SimulationResult>>>
      per_shard =
          shard_out(specs, options, sharding,
                    [](FleetEngine& engine) { return engine.run_outcomes(); });
  std::vector<runner::JobOutcome<core::SimulationResult>> outcomes;
  outcomes.reserve(specs.size());
  for (auto& shard : per_shard) {
    for (auto& outcome : shard) outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace lpfps::fleet
