// Seeded random number generation.
//
// Every stochastic component of the library (execution-time models, the
// UUniFast task-set generator) draws from an explicitly seeded Rng so that
// simulations, tests, and benches are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace lpfps {

/// A thin, explicitly seeded wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal (Gaussian) deviate with the given mean and standard deviation.
  /// stddev == 0 returns mean exactly.
  double gaussian(double mean, double stddev);

  /// Gaussian deviate clamped into [lo, hi].  This is the paper's
  /// execution-time construction (eqs. (4)-(5) plus the clamping step
  /// described in footnote 5).
  double clamped_gaussian(double mean, double stddev, double lo, double hi);

  /// Derives an independent child seed; used to give each task its own
  /// stream so that adding tasks does not perturb others' draws.
  std::uint64_t fork_seed();

  std::mt19937_64& engine() { return engine_; }

  /// Read-only engine access, used to fingerprint (and compare) the
  /// exact generator state between simulation checkpoints.
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lpfps
