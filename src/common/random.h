// Seeded random number generation.
//
// Every stochastic component of the library (execution-time models, the
// UUniFast task-set generator) draws from an explicitly seeded Rng so that
// simulations, tests, and benches are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace lpfps {

/// A thin, explicitly seeded wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Reseeds in place.  Bit-identical to constructing a fresh
  /// `Rng(seed)`: `mt19937_64::seed` performs the same state
  /// initialization as the seeded constructor, and every distribution
  /// method constructs its std:: distribution per call, so no sampling
  /// state survives a reseed.  The fleet engine relies on this to rebind
  /// simulation lanes without reallocating.
  void reseed(std::uint64_t seed) { engine_.seed(seed); }

  /// Restores an engine state previously captured with warmed_engine().
  /// A plain 2.5 KB copy — roughly 50x cheaper than reseed() plus the
  /// lazy first-block generation a freshly seeded mt19937_64 performs on
  /// its first draw.  The fleet engine caches one warmed state per spec
  /// and restores it on every lane rebind.
  void restore(const std::mt19937_64& engine) { engine_ = engine; }

  /// Engine state that replays, via restore(), the exact draw stream of
  /// `Rng(seed)` — with the seed expansion *and* the lazy first-block
  /// generation already performed, so the first draw after a restore is
  /// as cheap as any other.  The result is verified against a freshly
  /// seeded engine before being returned; if the verification fails
  /// (e.g. a standard library whose textual engine representation
  /// differs from the one the fast-forward relies on), a plainly seeded
  /// engine is returned instead — bit-identical either way, merely
  /// without the speedup.
  static std::mt19937_64 warmed_engine(std::uint64_t seed);

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal (Gaussian) deviate with the given mean and standard deviation.
  /// stddev == 0 returns mean exactly.
  double gaussian(double mean, double stddev);

  /// Gaussian deviate clamped into [lo, hi].  This is the paper's
  /// execution-time construction (eqs. (4)-(5) plus the clamping step
  /// described in footnote 5).
  double clamped_gaussian(double mean, double stddev, double lo, double hi);

  /// Derives an independent child seed; used to give each task its own
  /// stream so that adding tasks does not perturb others' draws.
  std::uint64_t fork_seed();

  std::mt19937_64& engine() { return engine_; }

  /// Read-only engine access, used to fingerprint (and compare) the
  /// exact generator state between simulation checkpoints.
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lpfps
