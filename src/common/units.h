// Unit conventions used throughout the library.
//
// All code in this repository shares one time base and one work base:
//
//   Time  — simulated wall-clock time in microseconds (double).  Task
//           releases happen at integer microsecond instants (periods and
//           phases are integers), which doubles represent exactly; only
//           DVS-scaled completion instants are fractional.
//
//   Work  — computation demand in *full-speed-equivalent microseconds*,
//           i.e. processor cycles divided by the maximum clock frequency.
//           A task with WCET C microseconds carries C units of work; run
//           at speed ratio r it consumes work at rate r per microsecond.
//
//   Speed ratio — clock frequency normalized to the maximum frequency,
//           in (0, 1].  The processor executes `ratio` units of work per
//           microsecond of wall time.
//
//   Power — normalized to full-power mode (running a typical instruction
//           at f_max / V_max), matching the paper's normalized reporting.
//           Energy is therefore in units of (full-power · microsecond).
#pragma once

#include <cstdint>

namespace lpfps {

/// Simulated time in microseconds.
using Time = double;

/// Computation demand in full-speed-equivalent microseconds.
using Work = double;

/// Clock frequency normalized to the maximum frequency, in (0, 1].
using Ratio = double;

/// Energy normalized to (full-power mode · 1 microsecond).
using Energy = double;

/// Clock frequency in MHz (the paper's processor spans 8..100 MHz).
using MegaHertz = double;

/// Supply voltage in volts.
using Volts = double;

/// Index of a task inside a TaskSet.
using TaskIndex = std::int32_t;

/// Sentinel for "no task" (e.g. an idle processor has no active task).
inline constexpr TaskIndex kNoTask = -1;

}  // namespace lpfps
