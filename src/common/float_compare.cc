#include "common/float_compare.h"

#include <cmath>

namespace lpfps {

bool approx_equal(double a, double b, double eps) {
  return std::fabs(a - b) <= eps;
}

bool approx_le(double a, double b, double eps) { return a <= b + eps; }

bool approx_ge(double a, double b, double eps) { return a >= b - eps; }

bool definitely_less(double a, double b, double eps) { return a < b - eps; }

bool definitely_greater(double a, double b, double eps) { return a > b + eps; }

double snap_nonnegative(double v, double eps) {
  if (v < 0.0 && v >= -eps) return 0.0;
  return v;
}

}  // namespace lpfps
