#include "common/math_utils.h"

#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace lpfps {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  LPFPS_CHECK(a >= 0 && b >= 0);
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  LPFPS_CHECK(a > 0 && b > 0);
  const std::int64_t g = gcd64(a, b);
  const std::int64_t a_red = a / g;
  if (a_red > std::numeric_limits<std::int64_t>::max() / b) {
    throw std::overflow_error("lcm64: hyperperiod overflows int64");
  }
  return a_red * b;
}

std::int64_t lcm64(const std::vector<std::int64_t>& values) {
  std::int64_t acc = 1;
  for (const std::int64_t v : values) acc = lcm64(acc, v);
  return acc;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  LPFPS_CHECK(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

double lerp(double a, double b, double t) { return a + t * (b - a); }

double clamp(double v, double lo, double hi) {
  LPFPS_CHECK(lo <= hi);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

double integrate_simpson(double (*f)(double, const void*), const void* ctx,
                         double a, double b, int steps) {
  LPFPS_CHECK(steps > 0);
  if (a == b) return 0.0;
  int n = steps;
  if (n % 2 != 0) ++n;
  if (n < 2) n = 2;
  const double h = (b - a) / n;
  double sum = f(a, ctx) + f(b, ctx);
  for (int i = 1; i < n; ++i) {
    const double x = a + h * i;
    sum += f(x, ctx) * ((i % 2 == 0) ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

}  // namespace lpfps
