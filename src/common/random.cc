#include "common/random.h"

#include "common/check.h"
#include "common/math_utils.h"

namespace lpfps {

double Rng::uniform(double lo, double hi) {
  LPFPS_CHECK(lo <= hi);
  if (lo == hi) return lo;
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LPFPS_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  LPFPS_CHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::clamped_gaussian(double mean, double stddev, double lo,
                             double hi) {
  LPFPS_CHECK(lo <= hi);
  return clamp(gaussian(mean, stddev), lo, hi);
}

std::uint64_t Rng::fork_seed() {
  // splitmix-style scrambling of a raw draw so that child streams do not
  // correlate with the parent's subsequent output.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace lpfps
