#include "common/random.h"

#include <sstream>
#include <string>

#include "common/check.h"
#include "common/math_utils.h"

namespace lpfps {

double Rng::uniform(double lo, double hi) {
  LPFPS_CHECK(lo <= hi);
  if (lo == hi) return lo;
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LPFPS_CHECK(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::gaussian(double mean, double stddev) {
  LPFPS_CHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::clamped_gaussian(double mean, double stddev, double lo,
                             double hi) {
  LPFPS_CHECK(lo <= hi);
  return clamp(gaussian(mean, stddev), lo, hi);
}

std::mt19937_64 Rng::warmed_engine(std::uint64_t seed) {
  // mt19937_64 works lazily in blocks of 312 words: seeding expands the
  // seed over the whole state, and the first draw generates the first
  // block -- together ~2us, the single largest fixed cost of starting a
  // simulation.  Both are pure functions of the seed, so they can be
  // hoisted: draw once to force the block generation, then rewind the
  // cursor to the block start through the engine's textual
  // representation (libstdc++ streams the 312 state words followed by
  // the cursor position).
  std::mt19937_64 engine(seed);
  (void)engine();
  std::ostringstream os;
  os << engine;
  std::string text = os.str();
  const std::size_t cut = text.find_last_of(' ');
  std::mt19937_64 rewound;
  bool ok = cut != std::string::npos;
  if (ok) {
    text.resize(cut + 1);
    text += '0';
    std::istringstream is(text);
    is >> rewound;
    ok = !is.fail();
  }
  if (ok) {
    // Contract check: the rewound engine must replay the fresh engine's
    // stream exactly.  Guards against a standard library whose textual
    // layout differs from the one assumed above.
    std::mt19937_64 fresh(seed);
    std::mt19937_64 probe = rewound;
    for (int i = 0; ok && i < 8; ++i) ok = fresh() == probe();
  }
  return ok ? rewound : std::mt19937_64(seed);
}

std::uint64_t Rng::fork_seed() {
  // splitmix-style scrambling of a raw draw so that child streams do not
  // correlate with the parent's subsequent output.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace lpfps
