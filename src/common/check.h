// Precondition / invariant checking.
//
// The library throws std::logic_error on contract violations instead of
// aborting: simulations are often driven from long-running sweeps (bench
// harnesses, random task-set studies) where a diagnosable exception that
// names the failed condition beats a core dump.
#pragma once

#include <stdexcept>
#include <string>

namespace lpfps::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw std::logic_error(std::string("check failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (": " + msg)));
}

}  // namespace lpfps::detail

/// Checks a precondition or invariant; throws std::logic_error on failure.
/// Active in all build types: the conditions guarded here (deadline misses,
/// negative work, malformed task sets) must never be silently ignored.
#define LPFPS_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::lpfps::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
    }                                                                      \
  } while (false)

/// LPFPS_CHECK with a contextual message (anything streamable to string
/// via std::to_string-free concatenation; pass a std::string).
#define LPFPS_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::lpfps::detail::check_failed(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                      \
  } while (false)
