// Small integer / numeric helpers shared across the library.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace lpfps {

/// Greatest common divisor of two non-negative integers.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple; throws std::overflow_error if the result would
/// not fit in int64 (hyperperiods of mutually-prime periods explode — the
/// paper itself notes this as the weakness of static LCM-based schedules).
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// LCM of a list (empty list -> 1).
std::int64_t lcm64(const std::vector<std::int64_t>& values);

/// ceil(a / b) for positive integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// Linear interpolation a + t * (b - a).
double lerp(double a, double b, double t);

/// Clamps v into [lo, hi] (precondition: lo <= hi).
double clamp(double v, double lo, double hi);

/// Numerically integrates f over [a, b] with composite Simpson's rule
/// using `steps` subintervals (rounded up to an even count, minimum 2).
/// Used for energy integrals over voltage ramps, where the integrand
/// P(f(t), V(f(t))) has no convenient closed form for the ring-oscillator
/// voltage model.
double integrate_simpson(double (*f)(double, const void*), const void* ctx,
                         double a, double b, int steps);

/// Convenience overload for callables.
template <typename F>
double integrate_simpson(F&& f, double a, double b, int steps) {
  using Fn = std::remove_reference_t<F>;
  struct Ctx {
    const Fn* fn;
  } ctx{std::addressof(f)};
  return integrate_simpson(
      [](double x, const void* c) -> double {
        return (*static_cast<const Ctx*>(c)->fn)(x);
      },
      &ctx, a, b, steps);
}

}  // namespace lpfps
