// Tolerant floating-point comparisons for simulation time arithmetic.
//
// The discrete-event engine mixes exact integer instants (task releases)
// with fractional instants produced by dividing work by speed ratios.
// Comparing such values with == or < directly invites off-by-one-ULP
// scheduling bugs (e.g. a completion computed as 99.99999999999999 being
// treated as strictly before a release at 100).  Every time comparison in
// the engine goes through these helpers.
#pragma once

namespace lpfps {

/// Default absolute tolerance for time comparisons, in microseconds.
/// One picosecond: far below any modelled effect (the shortest modelled
/// interval is a 0.1 us wakeup delay) yet far above accumulated rounding
/// error over simulation horizons of ~1e8 us.
inline constexpr double kTimeEpsilon = 1e-6;

/// True if |a - b| <= eps.
bool approx_equal(double a, double b, double eps = kTimeEpsilon);

/// True if a <= b + eps (a is before-or-at b, tolerantly).
bool approx_le(double a, double b, double eps = kTimeEpsilon);

/// True if a >= b - eps.
bool approx_ge(double a, double b, double eps = kTimeEpsilon);

/// True if a < b - eps (a is strictly before b even under tolerance).
bool definitely_less(double a, double b, double eps = kTimeEpsilon);

/// True if a > b + eps.
bool definitely_greater(double a, double b, double eps = kTimeEpsilon);

/// Clamps tiny negative values (rounding debris) to exactly zero.
/// Values below -eps are passed through unchanged so that genuine logic
/// errors remain visible to assertions downstream.
double snap_nonnegative(double v, double eps = kTimeEpsilon);

}  // namespace lpfps
