#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lpfps::metrics {

void Summary::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Summary::mean() const {
  LPFPS_CHECK(count_ > 0);
  return mean_;
}

double Summary::variance() const {
  LPFPS_CHECK(count_ > 0);
  if (count_ == 1) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  LPFPS_CHECK(count_ > 0);
  return min_;
}

double Summary::max() const {
  LPFPS_CHECK(count_ > 0);
  return max_;
}

}  // namespace lpfps::metrics
