// The Figure 8 experiment runner, shared by benches and integration
// tests.
//
// For a workload and a policy, sweeps the BCET/WCET ratio and reports
// the average power normalized to the FPS baseline (the paper's y-axis),
// averaging over several seeds of the clamped-Gaussian execution-time
// model.  At ratio 1.0 the execution times are deterministic (sigma = 0)
// and a single run suffices.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "core/policy.h"
#include "power/processor.h"
#include "sched/task_set.h"

namespace lpfps::metrics {

struct SweepConfig {
  /// BCET as a fraction of WCET, paper Figure 8 x-axis (0.1 .. 1.0).
  std::vector<double> bcet_ratios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                     0.6, 0.7, 0.8, 0.9, 1.0};
  int seeds = 5;
  Time horizon = 0.0;  ///< Required.
  /// Root of the sweep's randomness.  Sample (point, j) simulates with
  /// runner::derive_seed(base_seed, point * seeds + j) — a pure
  /// function of the grid position, so results are bit-identical for
  /// any thread count (the runner's determinism contract).
  std::uint64_t base_seed = 1;
};

struct SweepPoint {
  double bcet_ratio = 0.0;
  double fps_power = 0.0;      ///< Mean FPS average power at this BCET.
  double policy_power = 0.0;   ///< Mean policy average power.
  double normalized = 0.0;     ///< policy_power / fps_power (same BCET).
  double reduction_pct = 0.0;  ///< 100 * (1 - normalized).
  /// FPS average power with every job at its WCET — the paper's
  /// "proportional to utilization" FPS reference (§4), constant across
  /// the BCET axis.
  double fps_wcet_power = 0.0;
  /// 100 * (1 - policy_power / fps_wcet_power): the reduction measured
  /// against the WCET-utilization FPS reference; the paper's headline
  /// "up to 62% (INS)" reads on this scale.
  double reduction_vs_wcet_pct = 0.0;
};

/// Runs the sweep.  Both policies see identical seeds, hence identical
/// job-by-job execution times.
std::vector<SweepPoint> run_bcet_sweep(const sched::TaskSet& tasks,
                                       const power::ProcessorConfig& cpu,
                                       const core::SchedulerPolicy& policy,
                                       const SweepConfig& config);

}  // namespace lpfps::metrics
