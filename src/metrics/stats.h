// Streaming summary statistics.
#pragma once

#include <cstddef>

namespace lpfps::metrics {

/// Welford's online mean/variance plus min/max.
class Summary {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lpfps::metrics
