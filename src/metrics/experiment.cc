#include "metrics/experiment.h"

#include "audit/harness.h"
#include "common/check.h"
#include "exec/exec_model.h"
#include "fleet/fleet.h"
#include "metrics/stats.h"
#include "runner/runner.h"

namespace lpfps::metrics {

std::vector<SweepPoint> run_bcet_sweep(const sched::TaskSet& tasks,
                                       const power::ProcessorConfig& cpu,
                                       const core::SchedulerPolicy& policy,
                                       const SweepConfig& config) {
  LPFPS_CHECK(config.horizon > 0.0);
  LPFPS_CHECK(config.seeds > 0);
  LPFPS_CHECK(!config.bcet_ratios.empty());

  // Stateless, so safe to share across parallel simulation jobs.
  const auto exec_model = std::make_shared<exec::ClampedGaussianModel>();
  const auto fps = core::SchedulerPolicy::fps();

  // Scaled task sets per ratio, precomputed so the parallel jobs only
  // read shared immutable state.
  std::vector<sched::TaskSet> scaled_sets;
  scaled_sets.reserve(config.bcet_ratios.size());
  for (const double ratio : config.bcet_ratios) {
    scaled_sets.push_back(tasks.with_bcet_ratio(ratio));
  }

  // Flatten the sweep grid into independent simulation jobs.  Each
  // (point, sample) cell gets its seed from the cell's fixed grid
  // position — runner's determinism contract — and the policy and its
  // FPS baseline share that seed so their jobs draw identical
  // execution times.  Job 0 is the paper's FPS reference: every job at
  // its WCET (deterministic, one run), constant across the BCET axis.
  struct SimJob {
    const sched::TaskSet* tasks = nullptr;
    const core::SchedulerPolicy* policy = nullptr;
    bool use_exec_model = true;
    std::uint64_t seed = 1;
  };
  std::vector<SimJob> jobs;
  jobs.push_back({&tasks, &fps, /*use_exec_model=*/false, 1});
  for (std::size_t point = 0; point < config.bcet_ratios.size(); ++point) {
    // Deterministic at BCET == WCET: the Gaussian degenerates.
    const int samples = config.bcet_ratios[point] >= 1.0 ? 1 : config.seeds;
    for (int sample = 0; sample < samples; ++sample) {
      const std::uint64_t seed = runner::derive_seed(
          config.base_seed,
          point * static_cast<std::uint64_t>(config.seeds) +
              static_cast<std::uint64_t>(sample));
      jobs.push_back({&scaled_sets[point], &fps, true, seed});
      jobs.push_back({&scaled_sets[point], &policy, true, seed});
    }
  }

  std::vector<double> powers(jobs.size());
  if (fleet::enabled()) {
    // Fleet routing (LPFPS_FLEET): the same jobs, in the same order,
    // as one sharded audited fleet batch.  Seeds are baked into each
    // spec, so the output is byte-identical to the runner path below.
    std::vector<fleet::SimSpec> specs;
    specs.reserve(jobs.size());
    for (const SimJob& job : jobs) {
      fleet::SimSpec spec;
      spec.tasks = *job.tasks;
      spec.processor = cpu;
      spec.policy = *job.policy;
      spec.exec_model = job.use_exec_model ? exec_model : nullptr;
      spec.options.horizon = config.horizon;
      spec.options.seed = job.seed;
      specs.push_back(std::move(spec));
    }
    const std::vector<core::SimulationResult> results =
        audit::simulate_fleet_sharded(std::move(specs), {});
    for (std::size_t i = 0; i < results.size(); ++i) {
      powers[i] = results[i].average_power;
    }
  } else {
    powers = runner::run_batch(jobs.size(), [&](std::size_t index) {
      const SimJob& job = jobs[index];
      core::EngineOptions options;
      options.horizon = config.horizon;
      options.seed = job.seed;
      // Audited by default (LPFPS_AUDIT=0 opts out): every sweep cell
      // is trace-verified before its power number enters a figure.
      return audit::simulate(*job.tasks, cpu, *job.policy,
                             job.use_exec_model ? exec_model : nullptr, options)
          .average_power;
    });
  }

  // Reduce in grid order — independent of how many threads ran the
  // batch, so the sweep is bit-identical at any LPFPS_JOBS.
  const double fps_wcet_power = powers[0];
  std::vector<SweepPoint> points;
  points.reserve(config.bcet_ratios.size());
  std::size_t next = 1;
  for (const double ratio : config.bcet_ratios) {
    const int samples = ratio >= 1.0 ? 1 : config.seeds;
    Summary fps_power;
    Summary policy_power;
    for (int sample = 0; sample < samples; ++sample) {
      fps_power.add(powers[next++]);
      policy_power.add(powers[next++]);
    }

    SweepPoint point;
    point.bcet_ratio = ratio;
    point.fps_power = fps_power.mean();
    point.policy_power = policy_power.mean();
    point.normalized = point.policy_power / point.fps_power;
    point.reduction_pct = 100.0 * (1.0 - point.normalized);
    point.fps_wcet_power = fps_wcet_power;
    point.reduction_vs_wcet_pct =
        100.0 * (1.0 - point.policy_power / fps_wcet_power);
    points.push_back(point);
  }
  return points;
}

}  // namespace lpfps::metrics
