#include "metrics/experiment.h"

#include "common/check.h"
#include "exec/exec_model.h"
#include "metrics/stats.h"

namespace lpfps::metrics {

std::vector<SweepPoint> run_bcet_sweep(const sched::TaskSet& tasks,
                                       const power::ProcessorConfig& cpu,
                                       const core::SchedulerPolicy& policy,
                                       const SweepConfig& config) {
  LPFPS_CHECK(config.horizon > 0.0);
  LPFPS_CHECK(config.seeds > 0);
  LPFPS_CHECK(!config.bcet_ratios.empty());

  const auto exec_model = std::make_shared<exec::ClampedGaussianModel>();
  const auto fps = core::SchedulerPolicy::fps();

  // The paper's FPS reference: every job at its WCET (deterministic, one
  // run), constant across the BCET axis.
  double fps_wcet_power = 0.0;
  {
    core::EngineOptions options;
    options.horizon = config.horizon;
    fps_wcet_power =
        core::simulate(tasks, cpu, fps, nullptr, options).average_power;
  }

  std::vector<SweepPoint> points;
  points.reserve(config.bcet_ratios.size());
  for (const double ratio : config.bcet_ratios) {
    const sched::TaskSet scaled = tasks.with_bcet_ratio(ratio);
    // Deterministic at BCET == WCET: the Gaussian degenerates.
    const int seeds = ratio >= 1.0 ? 1 : config.seeds;

    Summary fps_power;
    Summary policy_power;
    for (int seed = 0; seed < seeds; ++seed) {
      core::EngineOptions options;
      options.horizon = config.horizon;
      options.seed = static_cast<std::uint64_t>(seed) + 1;
      fps_power.add(
          core::simulate(scaled, cpu, fps, exec_model, options)
              .average_power);
      policy_power.add(
          core::simulate(scaled, cpu, policy, exec_model, options)
              .average_power);
    }

    SweepPoint point;
    point.bcet_ratio = ratio;
    point.fps_power = fps_power.mean();
    point.policy_power = policy_power.mean();
    point.normalized = point.policy_power / point.fps_power;
    point.reduction_pct = 100.0 * (1.0 - point.normalized);
    point.fps_wcet_power = fps_wcet_power;
    point.reduction_vs_wcet_pct =
        100.0 * (1.0 - point.policy_power / fps_wcet_power);
    points.push_back(point);
  }
  return points;
}

}  // namespace lpfps::metrics
