// Aligned-text and CSV table emission for bench output.
#pragma once

#include <string>
#include <vector>

namespace lpfps::metrics {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (for terminal reading) or CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must match the header's column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 4);

  std::string to_aligned() const;
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lpfps::metrics
