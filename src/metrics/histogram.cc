#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace lpfps::metrics {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)) {
  LPFPS_CHECK(edges_.size() >= 2);
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    LPFPS_CHECK_MSG(edges_[i] > edges_[i - 1],
                    "histogram edges must ascend");
  }
  counts_.assign(edges_.size() - 1, 0);
}

Histogram Histogram::log_spaced(double lo, double hi, int bins) {
  LPFPS_CHECK(lo > 0.0 && hi > lo && bins >= 1);
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) + 1);
  const double step = (std::log(hi) - std::log(lo)) / bins;
  for (int i = 0; i <= bins; ++i) {
    edges.push_back(std::exp(std::log(lo) + step * i));
  }
  edges.back() = hi;  // Kill rounding on the last edge.
  return Histogram(std::move(edges));
}

void Histogram::add(double value) {
  values_.push_back(value);
  if (value < edges_.front()) {
    ++underflow_;
    return;
  }
  if (value >= edges_.back()) {
    ++overflow_;
    return;
  }
  const auto it =
      std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  ++counts_[bin];
}

std::int64_t Histogram::count(std::size_t bin) const {
  LPFPS_CHECK(bin < counts_.size());
  return counts_[bin];
}

std::int64_t Histogram::total() const {
  std::int64_t sum = underflow_ + overflow_;
  for (const std::int64_t c : counts_) sum += c;
  return sum;
}

double Histogram::fraction_below(double threshold) const {
  if (values_.empty()) return 0.0;
  const auto below = std::count_if(
      values_.begin(), values_.end(),
      [threshold](double v) { return v < threshold; });
  return static_cast<double>(below) / static_cast<double>(values_.size());
}

std::string Histogram::render(int width) const {
  LPFPS_CHECK(width > 0);
  std::int64_t peak = 1;
  for (const std::int64_t c : counts_) peak = std::max(peak, c);

  std::ostringstream os;
  if (underflow_ > 0) {
    os << "  < " << edges_.front() << ": " << underflow_ << "\n";
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(
        std::llround(static_cast<double>(counts_[i]) * width / peak));
    os << std::setw(10) << std::right << std::setprecision(6)
       << edges_[i] << " .. " << std::setw(10) << std::left
       << edges_[i + 1] << " |" << std::string(static_cast<std::size_t>(bar), '#')
       << " " << counts_[i] << "\n";
  }
  if (overflow_ > 0) {
    os << " >= " << edges_.back() << ": " << overflow_ << "\n";
  }
  return os.str();
}

}  // namespace lpfps::metrics
