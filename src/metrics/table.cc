#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace lpfps::metrics {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header)) {
  LPFPS_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LPFPS_CHECK_MSG(cells.size() == header_.size(),
                  "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::to_aligned() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace lpfps::metrics
