// A fixed-bin histogram with ASCII rendering, for distribution-shaped
// analyses (idle-gap lengths, response times, slack).
#pragma once

#include <string>
#include <vector>

namespace lpfps::metrics {

class Histogram {
 public:
  /// Bins are [edge[i], edge[i+1]); values below the first edge count
  /// as underflow, at/above the last as overflow.  Edges must be
  /// strictly ascending, at least two.
  explicit Histogram(std::vector<double> edges);

  /// Log-spaced edges from lo to hi (inclusive), `bins` bins.
  static Histogram log_spaced(double lo, double hi, int bins);

  void add(double value);

  std::size_t bin_count() const { return counts_.size(); }
  std::int64_t count(std::size_t bin) const;
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::int64_t total() const;

  /// Fraction of all added values strictly below `threshold` (linear
  /// interpolation inside the containing bin; under/overflow handled).
  double fraction_below(double threshold) const;

  /// ASCII rendering: one row per bin, bar scaled to `width` chars.
  std::string render(int width = 40) const;

 private:
  std::vector<double> edges_;
  std::vector<std::int64_t> counts_;
  std::vector<double> values_;  ///< Kept for exact fraction_below.
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

}  // namespace lpfps::metrics
