#include "power/power_model.h"

#include <cmath>

#include "common/check.h"
#include "common/math_utils.h"

namespace lpfps::power {

PowerModel::PowerModel(VoltageModelPtr voltage, PowerParams params)
    : voltage_(std::move(voltage)), params_(params) {
  LPFPS_CHECK(voltage_ != nullptr);
  LPFPS_CHECK(params_.nop_power_fraction > 0.0 &&
              params_.nop_power_fraction <= 1.0);
  LPFPS_CHECK(params_.power_down_fraction >= 0.0 &&
              params_.power_down_fraction <= 1.0);
  LPFPS_CHECK(params_.wakeup_cycles >= 0.0);
}

double PowerModel::run_power(Ratio ratio) const {
  return voltage_->power_factor(ratio);
}

double PowerModel::idle_nop_power(Ratio ratio) const {
  return params_.nop_power_fraction * run_power(ratio);
}

double PowerModel::power_down_power() const {
  return params_.power_down_fraction;
}

Energy PowerModel::ramp_energy(Ratio r0, Ratio r1, double rho,
                               bool executing) const {
  LPFPS_CHECK(rho > 0.0);
  const double duration = std::fabs(r1 - r0) / rho;
  if (duration == 0.0) return 0.0;
  const double scale = executing ? 1.0 : params_.nop_power_fraction;
  const auto integrand = [&](double t) {
    const Ratio r = r0 + (r1 - r0) * (t / duration);
    return scale * run_power(r);
  };
  return integrate_simpson(integrand, 0.0, duration, 64);
}

Time PowerModel::wakeup_delay(MegaHertz f_max) const {
  LPFPS_CHECK(f_max > 0.0);
  return params_.wakeup_cycles / f_max;  // cycles / (cycles per us).
}

}  // namespace lpfps::power
