// The complete variable-speed processor configuration.
//
// Bundles everything the engine needs to know about the hardware: the
// available frequencies, the voltage law, the power fractions, the
// frequency-transition rate, and the power-down wake-up latency.  The
// default matches the paper's experimental setup (§4).
#pragma once

#include <optional>
#include <vector>

#include "power/frequency.h"
#include "power/power_model.h"
#include "power/voltage.h"

namespace lpfps::power {

struct ProcessorConfig {
  FrequencyTable frequencies = FrequencyTable::arm8_like();
  /// Default voltage law: linear V ~ f with a 1.1 V floor, calibrated to
  /// the ARM8 DVS design of the paper's reference [20] (Burd/Pering):
  /// 8 MHz at 1.1 V, 100 MHz at 3.3 V.  The pure ring-oscillator
  /// inverter law overestimates the voltage needed at mid frequencies
  /// (velocity saturation helps real silicon); ablation A5 compares
  /// both.
  VoltageModelPtr voltage =
      std::make_shared<ProportionalVoltageModel>(3.3, 1.1);
  PowerParams power{};
  /// Speed-ratio change rate rho, per microsecond (paper: 0.07/us,
  /// e.g. 30 MHz -> 100 MHz including the voltage ramp in 10 us).
  double ramp_rate = 0.07;

  /// Optional sleep-state hierarchy (paper §2.1's PowerPC-style mode
  /// ladder).  Empty = the single classic power-down state from
  /// `power` (5% / 10 cycles).  When non-empty, LPFPS's exact timer
  /// picks the *deepest* (lowest-power) state whose wake-up latency
  /// still fits the known idle gap.
  std::vector<SleepState> sleep_states;

  /// The paper's ARM8-like processor: 100 MHz / 3.3 V max, 8..100 MHz in
  /// 1 MHz steps, rho = 0.07/us, power-down at 5% of full power with a
  /// 10-cycle wake-up, NOP at 20% of a typical instruction.
  static ProcessorConfig arm8_default();

  /// arm8_default() plus a PowerPC 603-style mode ladder (paper §2.1):
  /// doze 30% / 10 cycles, nap 10% / 20 cycles, sleep (PLL on) 5% /
  /// 10 us, deep sleep (PLL off) 2% / 100 us.
  static ProcessorConfig with_sleep_hierarchy();

  PowerModel make_power_model() const;

  /// Wake-up latency from power-down, in microseconds.
  Time wakeup_delay() const;

  /// The effective sleep ladder: `sleep_states` if set, else the single
  /// classic state synthesized from `power`.  Sorted shallowest (fastest
  /// wake) first; validate() checks depth and latency are aligned.
  std::vector<SleepState> sleep_ladder() const;

  /// The energy-optimal sleep state for an idle gap of `gap`
  /// microseconds: among states that can wake in time, the one
  /// minimizing (gap - latency) * power + latency * full-power — deeper
  /// states only win once the gap amortizes their longer full-power
  /// wake-up (§2.1's trade-off).  nullopt if no state can wake in time.
  std::optional<SleepState> deepest_state_for_gap(Time gap) const;

  /// Throws if the configuration is internally inconsistent.
  void validate() const;
};

}  // namespace lpfps::power
