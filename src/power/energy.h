// Energy accounting over a simulation run.
//
// The accumulator receives every processor interval the engine produces
// (runs, ramps, NOP idling, power-down, wake-up) and integrates the power
// model over it, keeping a per-mode breakdown so benches can report where
// the energy went (the paper's §4 discussion of *why* INS wins relies on
// exactly this breakdown).
#pragma once

#include <array>

#include "common/units.h"
#include "power/power_model.h"
#include "sim/trace.h"

namespace lpfps::power {

/// Energy and wall-time attributed to one processor mode.
struct ModeTotals {
  Energy energy = 0.0;
  Time time = 0.0;
  /// Charged intervals folded into this slot — the observability
  /// layer's per-mode event counter (e.g. how many distinct run bursts
  /// the accumulator saw, before trace-level merging).
  std::int64_t intervals = 0;
};

class EnergyAccumulator {
 public:
  explicit EnergyAccumulator(const PowerModel* model);

  /// Task execution at constant speed.
  void add_run(Time duration, Ratio ratio);

  /// Task execution during a frequency/voltage ramp (linear in time).
  void add_run_ramp(Time duration, Ratio from, Ratio to, double rho);

  /// Busy-wait NOP idling at constant speed.
  void add_idle_nop(Time duration, Ratio ratio);

  /// Ramp with nothing to execute (the processor spins NOPs while the
  /// voltage settles).
  void add_idle_ramp(Time duration, Ratio from, Ratio to, double rho);

  /// Power-down residence at the model's default power-down fraction.
  void add_power_down(Time duration);

  /// Power-down residence in a specific sleep state (fraction of full
  /// power); used with sleep-state hierarchies.
  void add_power_down(Time duration, double power_fraction);

  /// Wake-up transition (full power, no useful work).
  void add_wakeup(Time duration);

  /// Re-charges an interval whose energy a previous add_* call already
  /// computed (the engine's steady-state replay).  Identical guard and
  /// addition sequence as the original call, without re-evaluating the
  /// power model — `energy` must be the value that call charged.
  void charge_replay(sim::ProcessorMode mode, Time duration,
                     Energy energy) {
    charge(mode, duration, energy);
  }

  Energy total_energy() const;
  Time total_time() const;

  /// Average power = total energy / total time (0 if no time elapsed).
  double average_power() const;

  const ModeTotals& totals(sim::ProcessorMode mode) const;

 private:
  void charge(sim::ProcessorMode mode, Time duration, Energy energy);

  const PowerModel* model_;
  std::array<ModeTotals, 5> by_mode_{};
};

}  // namespace lpfps::power
