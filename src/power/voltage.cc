#include "power/voltage.h"

#include <cmath>

#include "common/check.h"

namespace lpfps::power {

double VoltageModel::power_factor(Ratio ratio) const {
  LPFPS_CHECK(ratio > 0.0 && ratio <= 1.0 + 1e-9);
  const Volts v = voltage_for_ratio(ratio);
  const double vv = v / v_max();
  return ratio * vv * vv;
}

RingOscillatorVoltageModel::RingOscillatorVoltageModel(Volts v_max,
                                                       Volts v_threshold)
    : v_max_(v_max), v_threshold_(v_threshold) {
  LPFPS_CHECK(v_max_ > v_threshold_ && v_threshold_ >= 0.0);
  norm_ = (v_max_ - v_threshold_) * (v_max_ - v_threshold_) / v_max_;
}

Ratio RingOscillatorVoltageModel::ratio_for_voltage(Volts v) const {
  LPFPS_CHECK(v > v_threshold_ && v <= v_max_ + 1e-9);
  return (v - v_threshold_) * (v - v_threshold_) / v / norm_;
}

Volts RingOscillatorVoltageModel::voltage_for_ratio(Ratio ratio) const {
  LPFPS_CHECK(ratio > 0.0 && ratio <= 1.0 + 1e-9);
  // Solve (V - Vt)^2 / V = ratio * norm for V:
  //   V^2 - (2 Vt + k) V + Vt^2 = 0,  k = ratio * norm,
  // taking the larger root (the smaller one lies below Vt, where the
  // oscillator does not run).
  const double k = ratio * norm_;
  const double b = 2.0 * v_threshold_ + k;
  const double disc = b * b - 4.0 * v_threshold_ * v_threshold_;
  LPFPS_CHECK(disc >= 0.0);
  const double v = (b + std::sqrt(disc)) / 2.0;
  return std::min(v, v_max_);
}

ProportionalVoltageModel::ProportionalVoltageModel(Volts v_max,
                                                   Volts v_floor)
    : v_max_(v_max), v_floor_(v_floor) {
  LPFPS_CHECK(v_max_ > 0.0 && v_floor_ >= 0.0 && v_floor_ <= v_max_);
}

Volts ProportionalVoltageModel::voltage_for_ratio(Ratio ratio) const {
  LPFPS_CHECK(ratio > 0.0 && ratio <= 1.0 + 1e-9);
  return std::max(v_floor_, v_max_ * ratio);
}

}  // namespace lpfps::power
