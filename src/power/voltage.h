// Supply-voltage-vs-frequency models.
//
// Dynamic CMOS power is P ~ Ceff * V^2 * f: lowering the clock alone
// saves energy only linearly, but each lower frequency also admits a
// lower supply voltage, and that quadratic factor is where DVS wins
// (paper §1).  How much lower V can go for a given f is the voltage
// model:
//
//  * RingOscillatorVoltageModel — the paper's reference [20] (Pering,
//    Burd, Brodersen) generates the clock from a ring oscillator driven
//    by the operating voltage, so f tracks the inverter delay law
//    f ~ (V - Vt)^2 / V.  We invert that law analytically.
//  * ProportionalVoltageModel — the idealized V = Vmax * ratio (with a
//    floor), common in early DVS literature; kept for ablation A5.
#pragma once

#include <memory>

#include "common/units.h"

namespace lpfps::power {

class VoltageModel {
 public:
  virtual ~VoltageModel() = default;

  /// Supply voltage required to sustain the given normalized speed.
  /// Precondition: 0 < ratio <= 1.  voltage_for_ratio(1) == v_max().
  virtual Volts voltage_for_ratio(Ratio ratio) const = 0;

  virtual Volts v_max() const = 0;

  /// Normalized dynamic power at the given speed:
  ///   P(ratio) / P_full = ratio * (V(ratio) / Vmax)^2.
  double power_factor(Ratio ratio) const;
};

/// f(V) ~ (V - Vt)^2 / V, normalized so ratio(v_max) == 1.
class RingOscillatorVoltageModel final : public VoltageModel {
 public:
  /// Defaults follow the paper's ARM8-like processor: Vmax = 3.3 V, and a
  /// threshold voltage of 0.8 V typical for the 0.6 um-era process.
  explicit RingOscillatorVoltageModel(Volts v_max = 3.3,
                                      Volts v_threshold = 0.8);

  Volts voltage_for_ratio(Ratio ratio) const override;
  Volts v_max() const override { return v_max_; }
  Volts v_threshold() const { return v_threshold_; }

  /// Forward map: normalized speed achievable at voltage v.
  Ratio ratio_for_voltage(Volts v) const;

 private:
  Volts v_max_;
  Volts v_threshold_;
  double norm_;  // (Vmax - Vt)^2 / Vmax, so ratio(v) = ((v-Vt)^2/v)/norm_.
};

/// V(ratio) = max(v_floor, v_max * ratio).
class ProportionalVoltageModel final : public VoltageModel {
 public:
  explicit ProportionalVoltageModel(Volts v_max = 3.3, Volts v_floor = 0.8);

  Volts voltage_for_ratio(Ratio ratio) const override;
  Volts v_max() const override { return v_max_; }

 private:
  Volts v_max_;
  Volts v_floor_;
};

/// Shared-ownership handle used throughout configs.
using VoltageModelPtr = std::shared_ptr<const VoltageModel>;

}  // namespace lpfps::power
