#include "power/frequency.h"

#include <algorithm>

#include "common/check.h"
#include "common/float_compare.h"
#include "common/math_utils.h"

namespace lpfps::power {

FrequencyTable FrequencyTable::arm8_like() {
  return stepped(8.0, 100.0, 1.0);
}

FrequencyTable FrequencyTable::stepped(MegaHertz f_min, MegaHertz f_max,
                                       MegaHertz step) {
  LPFPS_CHECK(f_min > 0.0 && f_max >= f_min && step > 0.0);
  std::vector<MegaHertz> levels;
  for (MegaHertz f = f_min; f <= f_max + 1e-9; f += step) {
    levels.push_back(std::min(f, f_max));
  }
  if (!approx_equal(levels.back(), f_max, 1e-9)) levels.push_back(f_max);
  return from_levels(std::move(levels));
}

FrequencyTable FrequencyTable::from_levels(std::vector<MegaHertz> levels) {
  LPFPS_CHECK(!levels.empty());
  std::sort(levels.begin(), levels.end());
  for (const MegaHertz f : levels) LPFPS_CHECK(f > 0.0);
  FrequencyTable table;
  table.levels_ = std::move(levels);
  table.f_min_ = table.levels_.front();
  table.f_max_ = table.levels_.back();
  table.continuous_ = false;
  return table;
}

FrequencyTable FrequencyTable::continuous(MegaHertz f_min, MegaHertz f_max) {
  LPFPS_CHECK(f_min > 0.0 && f_max >= f_min);
  FrequencyTable table;
  table.f_min_ = f_min;
  table.f_max_ = f_max;
  table.continuous_ = true;
  return table;
}

Ratio FrequencyTable::quantize_up(Ratio desired) const {
  const Ratio floor_ratio = f_min_ / f_max_;
  const Ratio clamped = clamp(desired, floor_ratio, 1.0);
  if (continuous_) return clamped;
  // Smallest level whose ratio is >= clamped (tolerantly, so a desired
  // ratio of exactly 0.5 selects 50 MHz rather than 51 MHz).
  for (const MegaHertz f : levels_) {
    const Ratio r = f / f_max_;
    if (approx_ge(r, clamped, 1e-12) || r >= clamped) return r;
  }
  return 1.0;
}

}  // namespace lpfps::power
