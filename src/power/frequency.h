// Discrete clock-frequency levels of a variable-speed processor.
//
// The paper's processor (ARM8-like) runs 8..100 MHz in 1 MHz steps at up
// to 3.3 V.  LPFPS computes a desired speed *ratio* and must then select
// an available frequency >= the computed one to preserve the timing
// guarantee (paper L18: "find a minimum allowable clock frequency >=
// speed_ratio * max_frequency").
#pragma once

#include <vector>

#include "common/units.h"

namespace lpfps::power {

class FrequencyTable {
 public:
  /// The paper's configuration: 100 MHz max, 8 MHz min, 1 MHz steps.
  static FrequencyTable arm8_like();

  /// Evenly stepped levels [f_min, f_max] inclusive.
  static FrequencyTable stepped(MegaHertz f_min, MegaHertz f_max,
                                MegaHertz step);

  /// Explicit levels (ablation A4 uses e.g. {25, 50, 75, 100}).
  static FrequencyTable from_levels(std::vector<MegaHertz> levels);

  /// An idealized continuously variable clock in [f_min, f_max]; the
  /// quantization upper bound on achievable savings.
  static FrequencyTable continuous(MegaHertz f_min, MegaHertz f_max);

  MegaHertz f_max() const { return f_max_; }
  MegaHertz f_min() const { return f_min_; }
  bool is_continuous() const { return continuous_; }

  /// Levels in ascending MHz (empty for a continuous table).
  const std::vector<MegaHertz>& levels() const { return levels_; }

  /// Smallest available ratio >= `desired` (clamped to [f_min/f_max, 1]).
  /// This implements L18 of the paper's pseudocode.
  Ratio quantize_up(Ratio desired) const;

  /// The ratio corresponding to a frequency level.
  Ratio ratio_of(MegaHertz f) const { return f / f_max_; }

 private:
  FrequencyTable() = default;

  std::vector<MegaHertz> levels_;  // Ascending; empty if continuous.
  MegaHertz f_min_ = 0.0;
  MegaHertz f_max_ = 0.0;
  bool continuous_ = false;
};

}  // namespace lpfps::power
