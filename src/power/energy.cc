#include "power/energy.h"

#include "common/check.h"
#include "common/float_compare.h"
#include "power/speed_profile.h"

namespace lpfps::power {

EnergyAccumulator::EnergyAccumulator(const PowerModel* model)
    : model_(model) {
  LPFPS_CHECK(model_ != nullptr);
}

void EnergyAccumulator::charge(sim::ProcessorMode mode, Time duration,
                               Energy energy) {
  LPFPS_CHECK(duration >= -kTimeEpsilon);
  if (duration <= 0.0) return;
  auto& slot = by_mode_[static_cast<std::size_t>(mode)];
  slot.time += duration;
  slot.energy += energy;
  ++slot.intervals;
}

void EnergyAccumulator::add_run(Time duration, Ratio ratio) {
  charge(sim::ProcessorMode::kRunning, duration,
         duration * model_->run_power(ratio));
}

void EnergyAccumulator::add_run_ramp(Time duration, Ratio from, Ratio to,
                                     double rho) {
  LPFPS_CHECK(approx_equal(duration, ramp_duration(from, to, rho),
                           1e-6 + duration * 1e-9));
  charge(sim::ProcessorMode::kRunning, duration,
         model_->ramp_energy(from, to, rho, /*executing=*/true));
}

void EnergyAccumulator::add_idle_nop(Time duration, Ratio ratio) {
  charge(sim::ProcessorMode::kIdleBusyWait, duration,
         duration * model_->idle_nop_power(ratio));
}

void EnergyAccumulator::add_idle_ramp(Time duration, Ratio from, Ratio to,
                                      double rho) {
  LPFPS_CHECK(approx_equal(duration, ramp_duration(from, to, rho),
                           1e-6 + duration * 1e-9));
  charge(sim::ProcessorMode::kRamping, duration,
         model_->ramp_energy(from, to, rho, /*executing=*/false));
}

void EnergyAccumulator::add_power_down(Time duration) {
  add_power_down(duration, model_->power_down_power());
}

void EnergyAccumulator::add_power_down(Time duration,
                                       double power_fraction) {
  LPFPS_CHECK(power_fraction >= 0.0 && power_fraction <= 1.0);
  charge(sim::ProcessorMode::kPowerDown, duration,
         duration * power_fraction);
}

void EnergyAccumulator::add_wakeup(Time duration) {
  charge(sim::ProcessorMode::kWakeUp, duration, duration * 1.0);
}

Energy EnergyAccumulator::total_energy() const {
  Energy total = 0.0;
  for (const ModeTotals& slot : by_mode_) total += slot.energy;
  return total;
}

Time EnergyAccumulator::total_time() const {
  Time total = 0.0;
  for (const ModeTotals& slot : by_mode_) total += slot.time;
  return total;
}

double EnergyAccumulator::average_power() const {
  const Time t = total_time();
  if (t <= 0.0) return 0.0;
  return total_energy() / t;
}

const ModeTotals& EnergyAccumulator::totals(sim::ProcessorMode mode) const {
  return by_mode_[static_cast<std::size_t>(mode)];
}

}  // namespace lpfps::power
