// Normalized processor power model.
//
// All powers are fractions of "full power" — the power drawn when
// executing typical instructions at (f_max, V_max).  The paper's
// experimental assumptions (§4):
//   * a NOP (busy-wait idle) instruction draws 20% of a typical
//     instruction [19];
//   * power-down mode draws 5% of full power, and returning from it
//     takes 10 clock cycles [9, 19];
//   * the clock/voltage transition follows the ring-oscillator model of
//     [20] with a worst-case delay of ~10 us (rate rho = 0.07 / us).
#pragma once

#include "common/units.h"
#include "power/voltage.h"

namespace lpfps::power {

struct PowerParams {
  /// NOP power as a fraction of a typical instruction at the same (f, V).
  double nop_power_fraction = 0.2;
  /// Power-down mode power as a fraction of full power.
  double power_down_fraction = 0.05;
  /// Clock cycles (at f_max) needed to return from power-down.
  double wakeup_cycles = 10.0;
};

/// One member of a sleep-state hierarchy (paper §2.1 describes the
/// PowerPC 603's four modes: each deeper state gates more of the chip
/// but takes longer to wake).  Power is a fraction of full power;
/// wake-up latency is in cycles at f_max.
struct SleepState {
  const char* name = "sleep";
  double power_fraction = 0.05;
  double wakeup_cycles = 10.0;
};

class PowerModel {
 public:
  PowerModel(VoltageModelPtr voltage, PowerParams params);

  /// Power while executing task work at normalized speed `ratio`:
  /// ratio * (V(ratio)/Vmax)^2.  run_power(1) == 1 by construction.
  double run_power(Ratio ratio) const;

  /// Power while busy-waiting on NOPs at normalized speed `ratio`.
  double idle_nop_power(Ratio ratio) const;

  /// Power while in power-down mode (independent of frequency).
  double power_down_power() const;

  /// Energy of one ramp from ratio r0 to r1 at rate `rho` (ratio units
  /// per microsecond).  `executing` selects run power (a task computes
  /// through the transition) vs NOP power (nothing to run).  Integrated
  /// numerically because V(ratio) has no convenient antiderivative for
  /// the ring-oscillator model.
  Energy ramp_energy(Ratio r0, Ratio r1, double rho, bool executing) const;

  /// Time to return from power-down, in microseconds, at f_max (MHz).
  Time wakeup_delay(MegaHertz f_max) const;

  const PowerParams& params() const { return params_; }
  const VoltageModel& voltage() const { return *voltage_; }

 private:
  VoltageModelPtr voltage_;
  PowerParams params_;
};

}  // namespace lpfps::power
