#include "power/processor.h"

#include "common/check.h"

namespace lpfps::power {

ProcessorConfig ProcessorConfig::arm8_default() { return ProcessorConfig{}; }

ProcessorConfig ProcessorConfig::with_sleep_hierarchy() {
  ProcessorConfig config;
  config.sleep_states = {
      {"doze", 0.30, 10.0},
      {"nap", 0.10, 20.0},
      {"sleep", 0.05, 1'000.0},        // PLL running; ~10 us at 100 MHz.
      {"deep-sleep", 0.02, 10'000.0},  // PLL off; ~100 us.
  };
  return config;
}

PowerModel ProcessorConfig::make_power_model() const {
  return PowerModel(voltage, power);
}

Time ProcessorConfig::wakeup_delay() const {
  return power.wakeup_cycles / frequencies.f_max();
}

std::vector<SleepState> ProcessorConfig::sleep_ladder() const {
  if (!sleep_states.empty()) return sleep_states;
  return {SleepState{"power-down", power.power_down_fraction,
                     power.wakeup_cycles}};
}

std::optional<SleepState> ProcessorConfig::deepest_state_for_gap(
    Time gap) const {
  // Choose the state minimizing the energy of covering the gap:
  //   (gap - latency) * state_power + latency * full_power,
  // restricted to states that can wake in time.  A deeper state only
  // pays when the gap amortizes its longer full-power wake-up — the
  // §2.1 trade-off.
  std::optional<SleepState> best;
  double best_energy = 0.0;
  for (const SleepState& state : sleep_ladder()) {
    const Time latency = state.wakeup_cycles / frequencies.f_max();
    if (latency >= gap) continue;  // Cannot wake in time.
    const double energy =
        (gap - latency) * state.power_fraction + latency * 1.0;
    if (!best.has_value() || energy < best_energy) {
      best = state;
      best_energy = energy;
    }
  }
  return best;
}

void ProcessorConfig::validate() const {
  LPFPS_CHECK(voltage != nullptr);
  LPFPS_CHECK(ramp_rate > 0.0);
  LPFPS_CHECK(frequencies.f_max() > 0.0);
  LPFPS_CHECK(frequencies.f_min() > 0.0);
  for (const SleepState& state : sleep_states) {
    LPFPS_CHECK(state.power_fraction >= 0.0 &&
                state.power_fraction <= 1.0);
    LPFPS_CHECK(state.wakeup_cycles >= 0.0);
  }
  // The voltage model must be defined down to the slowest frequency.
  (void)voltage->voltage_for_ratio(frequencies.f_min() /
                                   frequencies.f_max());
}

}  // namespace lpfps::power
