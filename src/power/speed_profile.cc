#include "power/speed_profile.h"

#include <cmath>

#include "common/check.h"
#include "common/float_compare.h"

namespace lpfps::power {

Time ramp_duration(Ratio from, Ratio to, double rho) {
  LPFPS_CHECK(rho > 0.0);
  return std::fabs(to - from) / rho;
}

Work ramp_work(Ratio from, Ratio to, double rho) {
  return ramp_duration(from, to, rho) * (from + to) / 2.0;
}

Work work_done(Ratio r0, double slope, Time elapsed) {
  LPFPS_CHECK(elapsed >= 0.0);
  LPFPS_CHECK(r0 > 0.0);
  LPFPS_CHECK(r0 + slope * elapsed >= -kTimeEpsilon);
  return r0 * elapsed + slope * elapsed * elapsed / 2.0;
}

std::optional<Time> time_to_complete(Ratio r0, double slope, Time window,
                                     Work work) {
  LPFPS_CHECK(r0 > 0.0 && window >= 0.0);
  work = snap_nonnegative(work);
  LPFPS_CHECK(work >= 0.0);
  if (work == 0.0) return 0.0;

  if (slope == 0.0) {
    const Time tau = work / r0;
    if (approx_le(tau, window)) return std::min(tau, window);
    return std::nullopt;
  }

  // slope/2 tau^2 + r0 tau - work = 0.  The product of roots is
  // -2*work/slope; for slope > 0 the roots straddle zero and we need the
  // positive one; for slope < 0 both roots are positive and we need the
  // smaller (the parabola's first crossing).
  const double a = slope / 2.0;
  const double disc = r0 * r0 + 2.0 * slope * work;
  if (disc < 0.0) return std::nullopt;  // Decelerating; work never reached.
  const double sqrt_disc = std::sqrt(disc);
  // Numerically stable smallest-positive-root selection: with b = r0 > 0
  // the root (-b + sqrt(disc)) / (2a) is the first crossing for both
  // slope signs; compute it via the conjugate form to avoid cancellation.
  const double tau = (2.0 * work) / (r0 + sqrt_disc);
  (void)a;
  if (tau < 0.0) return std::nullopt;
  if (approx_le(tau, window)) return std::min(tau, window);
  return std::nullopt;
}

Work plan_capacity(Ratio ratio, Time window, double rho) {
  LPFPS_CHECK(ratio > 0.0 && ratio <= 1.0 + 1e-12);
  LPFPS_CHECK(rho > 0.0);
  const Time ramp = (1.0 - ratio) / rho;
  LPFPS_CHECK_MSG(approx_le(ramp, window),
                  "window shorter than the ramp back to full speed");
  return ratio * window + (1.0 - ratio) * (1.0 - ratio) / (2.0 * rho);
}

}  // namespace lpfps::power
