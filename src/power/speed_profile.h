// Work/time arithmetic over piecewise-linear speed profiles.
//
// While the processor ramps between frequencies it keeps executing
// (paper §3.3: "the processor can still execute operations while its
// speed is being changed"), so the engine must integrate work under a
// trapezoidal speed curve.  These helpers isolate that math: they are the
// numerical heart of both the optimal ratio r_opt (paper eq. (2)) and the
// engine's completion-time predictions, and are tested directly against
// closed-form cases.
#pragma once

#include <optional>

#include "common/units.h"

namespace lpfps::power {

/// Duration of a ramp between two ratios at rate `rho` (ratio per us).
Time ramp_duration(Ratio from, Ratio to, double rho);

/// Work executed during a full ramp between two ratios: the trapezoid
/// area |to - from| / rho * (from + to) / 2.
Work ramp_work(Ratio from, Ratio to, double rho);

/// Work executed in `elapsed` microseconds when speed starts at `r0` and
/// changes linearly with slope `slope` (ratio per us; may be negative,
/// zero for constant speed).  The caller guarantees the speed stays
/// positive over [0, elapsed].
Work work_done(Ratio r0, double slope, Time elapsed);

/// Earliest tau in [0, window] with work_done(r0, slope, tau) == work, or
/// nullopt if the work does not complete within the window.  Solves the
/// quadratic slope/2 tau^2 + r0 tau - work = 0 robustly.
std::optional<Time> time_to_complete(Ratio r0, double slope, Time window,
                                     Work work);

/// Work capacity of the LPFPS slowdown plan of paper eq. (1): run at
/// `ratio` from now (t_c) until the last moment, then ramp up at `rho` so
/// the speed reaches 1.0 exactly at t_a.  Capacity over a window of
/// length `window` = t_a - t_c is  ratio * window + (1 - ratio)^2/(2 rho).
/// Precondition: the window is long enough to contain the ramp,
/// window >= (1 - ratio) / rho.
Work plan_capacity(Ratio ratio, Time window, double rho);

}  // namespace lpfps::power
