#include "faults/faults.h"

#include "common/check.h"

namespace lpfps::faults {

namespace {
const OverrunFault kDisabledOverrun{};
}  // namespace

void OverrunFault::validate() const {
  LPFPS_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                  "overrun probability outside [0, 1]");
  LPFPS_CHECK_MSG(magnitude >= 0.0, "overrun magnitude negative");
}

void RampFault::validate() const {
  LPFPS_CHECK_MSG(rho_factor > 0.0 && rho_factor <= 1.0,
                  "ramp rho_factor outside (0, 1]");
}

void WakeupFault::validate() const {
  LPFPS_CHECK_MSG(probability >= 0.0 && probability <= 1.0,
                  "wakeup probability outside [0, 1]");
  LPFPS_CHECK_MSG(max_delay >= 0.0, "wakeup max_delay negative");
}

bool FaultPlan::overruns_enabled() const {
  for (const OverrunFault& fault : overruns) {
    if (fault.enabled()) return true;
  }
  return false;
}

const OverrunFault& FaultPlan::overrun_for(std::size_t index) const {
  if (overruns.empty()) return kDisabledOverrun;
  if (overruns.size() == 1) return overruns.front();
  LPFPS_CHECK_MSG(index < overruns.size(),
                  "overrun_for: task index out of range");
  return overruns[index];
}

void FaultPlan::validate(std::size_t task_count) const {
  LPFPS_CHECK_MSG(overruns.empty() || overruns.size() == 1 ||
                      overruns.size() == task_count,
                  "FaultPlan::overruns must be empty, a single broadcast "
                  "entry, or one entry per task");
  for (const OverrunFault& fault : overruns) fault.validate();
  ramp.validate();
  wakeup.validate();
}

const char* to_string(OverrunAction action) {
  switch (action) {
    case OverrunAction::kNone:
      return "none";
    case OverrunAction::kThrottle:
      return "throttle";
    case OverrunAction::kKill:
      return "kill";
  }
  return "?";
}

void ContainmentPolicy::validate() const {
  // All representable states are valid today; the hook exists so new
  // fields (e.g. a budget epsilon) get a domain check alongside.
}

}  // namespace lpfps::faults
