// Injectable fault models and containment policies.
//
// LPFPS's deadline guarantee (paper Theorem 1) rests on three
// assumptions the rest of this library treats as axioms: every job
// finishes within its declared WCET, the voltage ramp really moves at
// the configured `rho`, and the power-down timer fires exactly when
// programmed.  This layer makes each assumption *breakable on purpose*
// so the engine's detection and containment machinery (budget
// enforcement, safe-mode fallback) can be exercised and verified — the
// robustness counterpart of the weakly-hard / feedback-scheduling lines
// of work (see docs/ROBUSTNESS.md).
//
// A FaultPlan is pure configuration: it never draws randomness itself.
// WCET overruns are injected by exec::FaultyExecModel (the one
// execution-time model whose samples may legally violate the
// [BCET, WCET] postcondition); ramp and wakeup faults are injected by
// core::Engine's physical layer.  With a default-constructed FaultPlan
// and ContainmentPolicy the engine's behaviour is bit-identical to a
// build without this layer (tests/core/engine_fault_injection_test.cc
// pins that differentially, data/golden/engine_equivalence.csv pins it
// against the pre-fault engine).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace lpfps::faults {

/// WCET overrun: with probability `probability`, a job's actual
/// execution time becomes wcet * (1 + magnitude) — deliberately past
/// the declared budget, by a deterministic factor so tests can predict
/// the faulted demand exactly (only the *whether*, not the *how much*,
/// is random).
struct OverrunFault {
  double probability = 0.0;  ///< Per-job chance of overrunning.
  double magnitude = 0.0;    ///< Fractional excess over the WCET.

  bool enabled() const { return probability > 0.0 && magnitude > 0.0; }
  void validate() const;
};

/// DVS ramp fault: the voltage regulator is slower than its datasheet.
/// The engine's *physics* move the ratio at `rho_factor * rho` while
/// every scheduling computation (slowdown ratios, just-in-time ramp-up
/// instants, plan windows) keeps using the spec `rho` — so plans return
/// to base speed later than promised, which is exactly the anomaly the
/// containment layer must catch.
struct RampFault {
  double rho_factor = 1.0;  ///< Effective rho = rho_factor * spec rho.

  bool enabled() const { return rho_factor < 1.0; }
  void validate() const;
};

/// Late power-down wakeup: with probability `probability` the wake-up
/// timer fires Uniform(0, max_delay] microseconds *after* the
/// programmed instant.  The scheduler programmed the timer for an exact
/// release; a late fire means releases can find the processor asleep.
struct WakeupFault {
  double probability = 0.0;
  Time max_delay = 0.0;  ///< Upper bound on the extra delay, us.

  bool enabled() const { return probability > 0.0 && max_delay > 0.0; }
  void validate() const;
};

/// Aggregate fault configuration for one run.  `overruns` is either
/// empty (no overrun faults), a single entry applied to every task, or
/// one entry per task (indexed like the TaskSet).
struct FaultPlan {
  std::vector<OverrunFault> overruns;
  RampFault ramp;
  WakeupFault wakeup;

  bool overruns_enabled() const;
  bool any() const {
    return overruns_enabled() || ramp.enabled() || wakeup.enabled();
  }

  /// The overrun spec governing task `index` (handles the broadcast
  /// single-entry form).  Returns a disabled spec when none apply.
  const OverrunFault& overrun_for(std::size_t index) const;

  /// Throws std::logic_error on out-of-domain parameters or an
  /// `overruns` vector that is neither empty, size 1, nor `task_count`.
  void validate(std::size_t task_count) const;
};

/// What the kernel does when the active job exhausts its WCET budget.
enum class OverrunAction : std::uint8_t {
  kNone,      ///< Detect and count only; the job keeps running.
  kThrottle,  ///< Suspend the job; resume with a fresh budget at the
              ///< task's next period boundary (weakly-hard degradation).
  kKill,      ///< Abort the job at the budget boundary; remaining work
              ///< is discarded (skippable-task semantics).
};

const char* to_string(OverrunAction action);

/// Kernel-level containment configuration.
struct ContainmentPolicy {
  OverrunAction on_overrun = OverrunAction::kNone;
  /// From the first detected anomaly (budget exhaustion, late ramp
  /// completion, late wakeup) until the next idle instant: cancel any
  /// DVS plan, ramp to base speed, and abstain from new slowdowns and
  /// power-downs — LPFPS fails toward plain FPS.
  bool safe_mode_fallback = false;

  bool enabled() const {
    return on_overrun != OverrunAction::kNone || safe_mode_fallback;
  }
  void validate() const;
};

}  // namespace lpfps::faults
