#include "core/yds.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/float_compare.h"
#include "common/random.h"

namespace lpfps::core {

namespace {

/// One critical-interval selection, in the (compressed) coordinates of
/// its round.
struct Round {
  Time begin = 0.0;
  Time end = 0.0;
  double speed = 0.0;
};

/// Finds the interval [a, b] (a from releases, b from deadlines)
/// maximizing the contained-work intensity.  Returns false if no jobs
/// remain.
bool critical_interval(const std::vector<YdsJob>& jobs, Round& out) {
  if (jobs.empty()) return false;
  std::vector<Time> starts;
  starts.reserve(jobs.size());
  for (const YdsJob& job : jobs) starts.push_back(job.release);
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  std::vector<const YdsJob*> by_deadline;
  by_deadline.reserve(jobs.size());
  for (const YdsJob& job : jobs) by_deadline.push_back(&job);
  std::sort(by_deadline.begin(), by_deadline.end(),
            [](const YdsJob* a, const YdsJob* b) {
              return a->deadline < b->deadline;
            });

  // For each candidate left edge a, sweep right edges in deadline order
  // accumulating the contained work: O(|starts| * |jobs|) total.
  bool found = false;
  for (const Time a : starts) {
    Work contained = 0.0;
    for (std::size_t i = 0; i < by_deadline.size(); ++i) {
      const YdsJob& job = *by_deadline[i];
      if (job.release >= a) contained += job.work;
      if (job.deadline <= a) continue;
      // Evaluate only once per distinct deadline, after its whole tie
      // group has been accumulated.
      if (i + 1 < by_deadline.size() &&
          by_deadline[i + 1]->deadline == job.deadline) {
        continue;
      }
      if (contained <= 0.0) continue;
      const double intensity = contained / (job.deadline - a);
      if (!found || intensity > out.speed + 1e-15) {
        out = Round{a, job.deadline, intensity};
        found = true;
      }
    }
  }
  return found;
}

}  // namespace

double yds_max_intensity(const std::vector<YdsJob>& jobs) {
  for (const YdsJob& job : jobs) {
    LPFPS_CHECK(job.deadline > job.release && job.work >= 0.0);
  }
  std::vector<YdsJob> live;
  for (const YdsJob& job : jobs) {
    if (job.work > 0.0) live.push_back(job);
  }
  Round round;
  if (!critical_interval(live, round)) return 0.0;
  return round.speed;
}

std::vector<SpeedInterval> yds_schedule(std::vector<YdsJob> jobs) {
  for (const YdsJob& job : jobs) {
    LPFPS_CHECK(job.deadline > job.release && job.work >= 0.0);
  }
  jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                            [](const YdsJob& j) { return j.work <= 0.0; }),
             jobs.end());

  // Phase 1: peel critical intervals, collapsing time after each round.
  std::vector<Round> rounds;
  while (true) {
    Round round;
    if (!critical_interval(jobs, round)) break;
    rounds.push_back(round);

    std::vector<YdsJob> rest;
    rest.reserve(jobs.size());
    const Time a = round.begin;
    const Time b = round.end;
    const Time width = b - a;
    for (const YdsJob& job : jobs) {
      if (job.release >= a && job.deadline <= b) continue;  // Scheduled.
      YdsJob moved = job;
      // Clamp endpoints inside the removed interval to its left edge,
      // then shift everything beyond it left by its width.
      auto compress = [&](Time t) {
        if (t <= a) return t;
        if (t <= b) return a;
        return t - width;
      };
      moved.release = compress(job.release);
      moved.deadline = compress(job.deadline);
      LPFPS_CHECK(moved.deadline > moved.release);
      rest.push_back(moved);
    }
    jobs = std::move(rest);
  }

  // Phase 2: map every round's interval back to original coordinates.
  // Round k lives in coordinates with rounds 0..k-1 removed; undo the
  // compressions in reverse order.  The result is the round's convex
  // hull in original time, inside which all earlier rounds it swallowed
  // are embedded.
  struct Hull {
    Time begin;
    Time end;
    double speed;
    std::size_t round;
  };
  std::vector<Hull> hulls;
  hulls.reserve(rounds.size());
  for (std::size_t k = 0; k < rounds.size(); ++k) {
    Time begin = rounds[k].begin;
    Time end = rounds[k].end;
    for (std::size_t j = k; j-- > 0;) {
      const Time a = rounds[j].begin;
      const Time width = rounds[j].end - rounds[j].begin;
      if (begin >= a) begin += width;
      if (end > a) end += width;
    }
    hulls.push_back(Hull{begin, end, rounds[k].speed, k});
  }

  // Phase 3: paint hulls; where hulls nest, the earliest round (the
  // highest intensity) wins.
  std::vector<Time> cuts;
  for (const Hull& hull : hulls) {
    cuts.push_back(hull.begin);
    cuts.push_back(hull.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<SpeedInterval> result;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const Time lo = cuts[i];
    const Time hi = cuts[i + 1];
    const Time mid = (lo + hi) / 2.0;
    const Hull* winner = nullptr;
    for (const Hull& hull : hulls) {
      if (mid > hull.begin && mid < hull.end &&
          (winner == nullptr || hull.round < winner->round)) {
        winner = &hull;
      }
    }
    if (winner == nullptr) continue;  // Idle gap.
    if (!result.empty() && approx_equal(result.back().end, lo) &&
        result.back().speed == winner->speed) {
      result.back().end = hi;
    } else {
      result.push_back(SpeedInterval{lo, hi, winner->speed});
    }
  }
  return result;
}

Energy yds_energy(const std::vector<SpeedInterval>& schedule,
                  const power::PowerModel& model, Ratio min_ratio) {
  LPFPS_CHECK(min_ratio > 0.0 && min_ratio <= 1.0);
  Energy total = 0.0;
  for (const SpeedInterval& interval : schedule) {
    LPFPS_CHECK(interval.end > interval.begin);
    LPFPS_CHECK_MSG(interval.speed <= 1.0 + 1e-9,
                    "YDS demands speed above the maximum clock: the job "
                    "set is infeasible");
    if (interval.speed <= 0.0) continue;
    const Work work = interval.speed * (interval.end - interval.begin);
    // Below the slowest clock, run at min_ratio for work/min_ratio and
    // idle (charged zero: lower bound) the rest.
    const Ratio effective = std::max(min_ratio, std::min(interval.speed, 1.0));
    total += work / effective * model.run_power(effective);
  }
  return total;
}

std::vector<YdsJob> jobs_from_task_set(const sched::TaskSet& tasks,
                                       Time horizon,
                                       const exec::ExecModelPtr& exec_model,
                                       std::uint64_t seed) {
  LPFPS_CHECK(horizon > 0.0);
  tasks.validate();

  // Enumerate (release, task) pairs in the engine's sampling order:
  // chronological by release, ties by task index.
  struct Slot {
    Time release;
    TaskIndex task;
  };
  std::vector<Slot> slots;
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
    const sched::Task& t = tasks[i];
    for (Time release = static_cast<Time>(t.phase); release < horizon;
         release += static_cast<Time>(t.period)) {
      slots.push_back(Slot{release, i});
    }
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    if (a.release != b.release) return a.release < b.release;
    return a.task < b.task;
  });

  Rng rng(seed);
  std::vector<YdsJob> jobs;
  jobs.reserve(slots.size());
  for (const Slot& slot : slots) {
    const sched::Task& t = tasks[slot.task];
    YdsJob job;
    job.release = slot.release;
    job.deadline = slot.release + static_cast<Time>(t.deadline);
    job.work = exec_model != nullptr ? exec_model->sample(t, rng) : t.wcet;
    // Jobs whose deadline crosses the horizon are kept: the bound must
    // cover the same demand the online policies execute.
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace lpfps::core
