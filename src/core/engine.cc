#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/float_compare.h"
#include "core/speed_ratio.h"
#include "power/energy.h"
#include "power/speed_profile.h"
#include "sched/queues.h"

namespace lpfps::core {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

/// An instant in simulated time, kept as an exact anchor plus a small
/// offset instead of one accumulated double.
///
/// The anchor is always an exactly-representable value (a release time,
/// a hyperperiod boundary, the horizon — integers in this codebase) and
/// the offset is the fractional distance the clock has moved since, a
/// value bounded by one task period.  Durations are computed as
/// (base difference) + (offset difference): the bases subtract exactly,
/// so a duration between two instants one hyperperiod later is
/// *bit-identical* — plain absolute doubles cannot promise that, because
/// crossing a power-of-two magnitude changes the rounding grid and an
/// `end - begin` subtraction picks up a different ulp.  This exact
/// shift-invariance is what lets the steady-state fast-forward replay a
/// proven cycle and still match a full simulation bit for bit.
///
/// Absolute times (trace segments, job completions) materialize with a
/// single rounding via absolute(); the replay re-materializes from the
/// same (base + n*H, offset) pair, reproducing the rounding exactly.
struct TimePoint {
  Time base = 0.0;    ///< Exact anchor (or +inf for "never").
  Time offset = 0.0;  ///< Time since the anchor; may be slightly negative
                      ///< (wake timers fire `latency` before a release).

  Time absolute() const { return base + offset; }
};

constexpr TimePoint kNeverPoint{kNever, 0.0};

TimePoint at(Time t) { return {t, 0.0}; }

TimePoint after(const TimePoint& p, Time delta) {
  return {p.base, p.offset + delta};
}

/// b - a with the anchors cancelling exactly (shift-invariant).
Time span(const TimePoint& a, const TimePoint& b) {
  return (b.base - a.base) + (b.offset - a.offset);
}

bool tp_less(const TimePoint& a, const TimePoint& b) {
  return span(a, b) > 0.0;
}
bool tp_approx_le(const TimePoint& a, const TimePoint& b) {
  return span(b, a) <= kTimeEpsilon;
}
bool tp_approx_ge(const TimePoint& a, const TimePoint& b) {
  return span(a, b) <= kTimeEpsilon;
}
bool tp_definitely_less(const TimePoint& a, const TimePoint& b) {
  return span(a, b) > kTimeEpsilon;
}
bool tp_definitely_greater(const TimePoint& a, const TimePoint& b) {
  return span(b, a) > kTimeEpsilon;
}

/// Processor macro-state.  The speed ratio / ramping sub-state is
/// orthogonal and tracked separately.
enum class CpuState : std::uint8_t {
  kIdle,       ///< No active task; busy-waiting NOPs.
  kRunning,    ///< Executing the active task.
  kPowerDown,  ///< Power-down mode, timer armed.
  kWakeUp,     ///< Returning from power-down (full power, no work).
};

/// Per-task in-flight job bookkeeping (E_i of the paper).
struct JobState {
  std::int64_t instance = 0;
  Time release = 0.0;
  Work total_work = 0.0;  ///< This instance's actual execution time.
  Work executed = 0.0;    ///< E_i: work consumed so far.
  // Budget-enforcement bookkeeping; inert (and never read) unless
  // faults or containment are configured.
  Time window_release = 0.0;  ///< Release of the enforcement window.
  Work budget_used = 0.0;     ///< Work consumed against the window budget.
  Work overhead = 0.0;        ///< Context-switch work past the nominal WCET.
  bool over_budget = false;   ///< Exhaustion latch: one firing per window.
  bool throttled = false;     ///< Suspended; the next start_job resumes it.
};

/// LPFPS_CYCLE=0/off/false force-disables steady-state fast-forward
/// regardless of EngineOptions::cycle_detection (the same convention the
/// audit layer uses for LPFPS_AUDIT).
bool cycle_detection_enabled_by_env() {
  const char* value = std::getenv("LPFPS_CYCLE");
  if (value == nullptr) return true;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

/// Canonical scheduler state at a hyperperiod boundary, with every
/// absolute time expressed relative to the boundary so two boundaries
/// one (or more) hyperperiods apart can compare equal.  Equality is
/// exact — bitwise on floats — because only a bit-identical state
/// guarantees bit-identical future evolution; a near-miss simply means
/// we keep simulating, never that we skip incorrectly.  kNever timers
/// stay infinite under subtraction, so idle timers compare equal too.
struct Fingerprint {
  CpuState state = CpuState::kIdle;
  TaskIndex active = kNoTask;
  Ratio ratio = 1.0;
  Ratio ramp_target = 1.0;
  bool reinvoke_after_ramp = false;
  bool plan_active = false;
  bool plan_up_started = false;
  /// The clock's own anchor decomposition at the boundary (normally
  /// (0, 0): phase-0 sets release every task there).  Two boundaries
  /// with different decompositions would materialize future absolute
  /// times differently, so they must not compare equal.
  Time now_base_rel = 0.0;
  Time now_offset = 0.0;
  Time plan_rampup_start_rel = 0.0;
  Time plan_end_rel = 0.0;
  Time wake_at_rel = 0.0;
  Time wake_end_rel = 0.0;
  Time shutdown_at_rel = 0.0;
  double sleep_power_fraction = 0.0;
  Time sleep_wake_latency = 0.0;
  std::vector<sched::RunEntry> run_queue;
  std::vector<sched::DelayEntry> delay_queue_rel;  ///< release -= boundary.
  std::vector<std::pair<TaskIndex, Time>> staged_rel;

  /// In-flight job of the active / ready / staged tasks.  Tasks waiting
  /// in the delay queue carry stale JobState (overwritten by the next
  /// start_job before any read), so only live jobs participate.
  struct LiveJob {
    TaskIndex task = kNoTask;
    Time release_rel = 0.0;
    Work total_work = 0.0;
    Work executed = 0.0;
    friend bool operator==(const LiveJob&, const LiveJob&) = default;
  };
  std::vector<LiveJob> live_jobs;

  /// Upcoming release of each task's *next* instance, relative to the
  /// boundary (start_job computes the absolute twin).  Implied by the
  /// delay-queue entries for well-formed states; carried explicitly so a
  /// next_instance_ divergence can never slip through.
  std::vector<Time> next_release_rel;

  /// The full generator state.  Deterministic models never touch it, so
  /// it compares equal; stochastic models advance it monotonically, so
  /// boundaries can never match (and one mismatch disarms the detector).
  std::mt19937_64 rng;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// One advance_to accumulation of the template cycle, replayed verbatim
/// per skipped hyperperiod.  Times are kept as TimePoints so the replay
/// re-materializes absolute trace times with the exact rounding the full
/// simulation would produce.  `ramp` records which accumulator overload
/// the simulation actually called (a sub-ulp ramp step can leave
/// ratio_begin == ratio_end while still being a ramp accumulation).
struct CycleSegment {
  TimePoint begin;
  TimePoint end;
  Time dt = 0.0;  ///< span(begin, end), the exact duration accumulated.
  /// Energy the accumulator charged for this segment.  A repeated
  /// segment's energy is a pure function of (dt, ratios, mode), so the
  /// replay adds this cached double — the identical value, in the
  /// identical order — instead of re-evaluating the power model, which
  /// is what makes fast-forward decisively cheaper than simulation.
  Energy energy = 0.0;
  sim::ProcessorMode mode = sim::ProcessorMode::kIdleBusyWait;
  TaskIndex task = kNoTask;
  Ratio ratio_begin = 1.0;
  Ratio ratio_end = 1.0;
};

/// One job completion inside the template cycle.  The completion instant
/// rides along as a TimePoint for exact re-materialization.
struct CycleJob {
  sim::JobRecord record;
  TimePoint completion;
};

/// Integer statistics at a boundary; per-cycle deltas extrapolate
/// exactly (replay adds `cycles * delta`, no float involved).
struct CounterSnapshot {
  int jobs_completed = 0;
  int deadline_misses = 0;
  int context_switches = 0;
  int scheduler_invocations = 0;
  int speed_changes = 0;
  int power_downs = 0;
  int dvs_slowdowns = 0;
};

/// The full mutable simulation state plus the main loop.  Engine::run
/// builds one of these per call, so Engine itself stays const and
/// reusable across sweeps.
class Simulation {
 public:
  Simulation(const sched::TaskSet& tasks,
             const power::ProcessorConfig& processor,
             const SchedulerPolicy& policy,
             const exec::ExecModelPtr& exec_model,
             const EngineOptions& options)
      : tasks_(tasks),
        processor_(processor),
        policy_(policy),
        exec_model_(exec_model),
        options_(options),
        rng_(options.seed),
        power_model_(processor.make_power_model()),
        accumulator_(&power_model_),
        jobs_(tasks.size()),
        next_instance_(tasks.size(), 0),
        per_task_(tasks.size()) {
    // Size every per-task buffer up front: each queue holds at most one
    // entry per task, so after this nothing in the scheduling hot path
    // allocates.
    run_queue_.reserve(tasks.size());
    delay_queue_.reserve(tasks.size());
    staged_.reserve(tasks.size());
    detection_enabled_ =
        options.faults.any() || options.containment.enabled();
    faults_injected_ = options.faults.any();
    overruns_possible_ = options.faults.overruns_enabled();
    ramp_fault_armed_ = options.faults.ramp.enabled();
    // The physical ramp slope.  With no ramp fault this is the exact
    // same double as the spec value, keeping fault-free runs
    // bit-identical; under a fault the scheduler keeps planning with the
    // spec rho while the hardware moves at this one.
    effective_ramp_rate_ =
        ramp_fault_armed_
            ? processor.ramp_rate * options.faults.ramp.rho_factor
            : processor.ramp_rate;
    if (overruns_possible_) {
      std::vector<std::string> names;
      names.reserve(tasks.size());
      for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
        names.push_back(tasks[i].name);
      }
      faulty_model_ = std::make_shared<exec::FaultyExecModel>(
          exec_model, options.faults.overruns, std::move(names));
    }
  }

  SimulationResult run();

 private:
  // --- scheduling machinery -------------------------------------------
  void start_job(TaskIndex task);
  void invoke_scheduler();
  void invoke_scheduler_impl();
  void try_slowdown();
  void enter_power_down();
  void finish_active_job();

  // --- fault detection and containment ---------------------------------
  /// The active job just exhausted its WCET budget: count the overrun,
  /// enter safe mode, apply the configured containment action.
  void on_budget_exhausted();
  /// Aborts the active job at its budget (OverrunAction::kKill).
  void kill_active_job();
  /// Suspends the active job to its next period window, where its
  /// budget replenishes (OverrunAction::kThrottle).
  void throttle_active_job();
  /// Re-inserts a contained task into the delay queue at its next
  /// enforcement-window boundary, forfeiting windows already overrun.
  void requeue_contained_task(TaskIndex index);
  /// Latches safe mode: cancel the DVS plan, ramp to base, and decline
  /// slowdowns/power-downs until the next idle instant.
  void enter_safe_mode();
  /// Compares the clock against the plan's commanded spec trajectory at
  /// the instant a plan ends; a measurable lag is a DVS ramp fault.
  void maybe_detect_ramp_fault();

  // --- time advancement ------------------------------------------------
  /// Current ramp slope in ratio-units per microsecond (0 when steady).
  double slope() const;
  /// Advances the clock to `next`, integrating energy, work and trace.
  void advance_to(const TimePoint& next);

  // --- steady-state cycle detection ------------------------------------
  /// Arms the detector when the run qualifies (see engine.h).
  void setup_cycle_detection();
  /// Fingerprints the state at now_ == next_boundary_; on a match,
  /// fast-forwards the remaining whole cycles and disarms.
  void on_cycle_boundary();
  Fingerprint take_fingerprint() const;
  CounterSnapshot snapshot_counters() const;
  /// Replays the recorded template cycle `cycles` times: identical
  /// accumulator calls for energy/ratio integrals, exact integer deltas
  /// for counters, time-shifted trace splices, then shifts every pending
  /// absolute time so the simulation resumes at now_ + cycles * H.
  void fast_forward(std::int64_t cycles);
  void disarm_cycle_detection();

  const sched::Task& task(TaskIndex index) const { return tasks_[index]; }
  JobState& job(TaskIndex index) {
    return jobs_[static_cast<std::size_t>(index)];
  }

  /// Next release the active task must be ready for: head of the delay
  /// queue, or (single-task systems) its own next period.
  Time next_arrival_for_active() const;

  // --- immutable inputs -------------------------------------------------
  const sched::TaskSet& tasks_;
  const power::ProcessorConfig& processor_;
  const SchedulerPolicy& policy_;
  const exec::ExecModelPtr& exec_model_;
  const EngineOptions& options_;

  // --- mutable state ----------------------------------------------------
  Rng rng_;
  power::PowerModel power_model_;
  power::EnergyAccumulator accumulator_;
  sim::Trace trace_;

  TimePoint now_;
  CpuState state_ = CpuState::kIdle;

  sched::RunQueue run_queue_;
  sched::DelayQueue delay_queue_;
  std::vector<JobState> jobs_;
  std::vector<std::int64_t> next_instance_;
  std::vector<power::ModeTotals> per_task_;
  TaskIndex active_ = kNoTask;

  /// Jobs released (instance started, execution time drawn) but not yet
  /// visible to the scheduler because of release jitter.
  struct StagedJob {
    TaskIndex task = kNoTask;
    TimePoint ready;
  };
  std::vector<StagedJob> staged_;

  // Speed sub-state: ratio_ moves toward ramp_target_ at ramp_rate.
  // "Full speed" for the scheduler is base_ratio_: 1.0 normally, or the
  // policy's constant clock under static slowdown.
  Ratio base_ratio_ = 1.0;
  Ratio ratio_ = 1.0;
  Ratio ramp_target_ = 1.0;
  /// L1-L4 semantics: re-enter the scheduler when the ramp completes.
  bool reinvoke_after_ramp_ = false;

  // DVS plan (active only while the active task runs slowed).
  bool plan_active_ = false;
  bool plan_up_started_ = false;
  TimePoint plan_rampup_start_ = kNeverPoint;
  TimePoint plan_end_ = kNeverPoint;

  // Power-down timers and the sleep state currently occupied.
  TimePoint wake_at_ = kNeverPoint;   ///< Timer expiry (start of wake-up).
  TimePoint wake_end_ = kNeverPoint;  ///< End of the wake-up transition.
  double sleep_power_fraction_ = 0.0;
  Time sleep_wake_latency_ = 0.0;

  // Timeout-shutdown policy state.
  TimePoint shutdown_at_ = kNeverPoint;

  // Fault injection / containment (resolved once in the constructor;
  // all of it inert — and bit-identity preserving — when neither
  // options_.faults nor options_.containment is configured).
  bool detection_enabled_ = false;  ///< Any fault or containment active.
  bool faults_injected_ = false;    ///< FaultPlan actually perturbs the run.
  bool overruns_possible_ = false;  ///< Execution model may exceed WCET.
  bool ramp_fault_armed_ = false;
  double effective_ramp_rate_ = 0.0;  ///< Physical rho (== spec if healthy).
  exec::ExecModelPtr faulty_model_;   ///< Overrun wrapper, else null.
  bool safe_mode_ = false;
  TimePoint wake_programmed_ = kNeverPoint;  ///< Spec wake instant (L14).
  int overruns_detected_ = 0;
  int ramp_faults_detected_ = 0;
  int late_wakeups_detected_ = 0;
  int jobs_killed_ = 0;
  int jobs_throttled_ = 0;
  int jobs_skipped_ = 0;
  int safe_mode_entries_ = 0;

  // Statistics.
  int jobs_completed_ = 0;
  int deadline_misses_ = 0;
  int context_switches_ = 0;
  int scheduler_invocations_ = 0;
  int speed_changes_ = 0;
  int power_downs_ = 0;
  int dvs_slowdowns_ = 0;
  int run_queue_high_water_ = 0;
  int delay_queue_high_water_ = 0;
  double running_ratio_integral_ = 0.0;
  Time running_time_ = 0.0;

  // Steady-state cycle detection (setup_cycle_detection decides whether
  // to arm; everything below is inert when cycle_armed_ is false).
  bool cycle_armed_ = false;
  bool cycle_recording_ = false;  ///< advance_to appends to the template.
  bool cycle_has_prev_ = false;
  Time cycle_length_ = 0.0;       ///< Hyperperiod, exactly representable.
  Time next_boundary_ = kNever;
  std::vector<std::int64_t> jobs_per_cycle_;  ///< H / period, per task.
  Fingerprint prev_fingerprint_;
  CounterSnapshot prev_counters_;
  std::vector<CycleSegment> cycle_segments_;  ///< Template cycle.
  std::vector<CycleJob> cycle_jobs_;  ///< Completions in the cycle.
  std::int64_t cycles_detected_ = 0;
  Time fast_forwarded_time_ = 0.0;
  std::int64_t fingerprint_checks_ = 0;
  double fingerprint_seconds_ = 0.0;

  /// Samples the queue depths for the high-water counters; called at
  /// every scheduler-invocation exit (the only points where the queues
  /// change).  The ready depth counts the dispatched task too.
  void sample_queue_depths() {
    const int ready = static_cast<int>(run_queue_.size()) +
                      (active_ != kNoTask ? 1 : 0);
    run_queue_high_water_ = std::max(run_queue_high_water_, ready);
    delay_queue_high_water_ = std::max(
        delay_queue_high_water_, static_cast<int>(delay_queue_.size()));
  }
};

void Simulation::start_job(TaskIndex index) {
  JobState& state = job(index);
  auto& instance = next_instance_[static_cast<std::size_t>(index)];
  const sched::Task& t = task(index);
  if (state.throttled) {
    // Resuming a throttled job: it keeps its identity (instance,
    // release, deadline) and residual demand; only the enforcement
    // window is new, with a freshly replenished budget.
    state.throttled = false;
    state.window_release = static_cast<Time>(t.phase) +
                           static_cast<Time>(instance * t.period);
    ++instance;
    state.budget_used = 0.0;
    state.overhead = 0.0;
    state.over_budget = false;
    return;
  }
  state.instance = instance++;
  state.release = static_cast<Time>(t.phase) +
                  static_cast<Time>(state.instance * t.period);
  state.window_release = state.release;
  state.executed = 0.0;
  state.budget_used = 0.0;
  state.overhead = 0.0;
  state.over_budget = false;
  state.throttled = false;
  const exec::ExecutionTimeModel* model =
      faulty_model_ != nullptr ? faulty_model_.get() : exec_model_.get();
  if (model != nullptr) {
    state.total_work = model->sample(t, rng_);
    // Running longer than the WCET would void every guarantee; running
    // shorter than the nominal BCET is harmless (BCET only parameterizes
    // execution-time models) and scenario models exploit it.  Injected
    // overruns violate the upper bound by design — that is the lie the
    // containment machinery exists to absorb.
    LPFPS_CHECK_MSG(state.total_work > 0.0 &&
                        (overruns_possible_ ||
                         state.total_work <= t.wcet + kTimeEpsilon),
                    t.name);
  } else {
    state.total_work = t.wcet;
  }
}

Time Simulation::next_arrival_for_active() const {
  if (const auto release = delay_queue_.next_release(); release.has_value()) {
    return *release;
  }
  // Single-task system: the processor is free until the task's own next
  // period begins (the enforcement window's end, which coincides with
  // the release for uncontained jobs).
  const JobState& state = jobs_[static_cast<std::size_t>(active_)];
  return state.window_release + static_cast<Time>(task(active_).period);
}

void Simulation::try_slowdown() {
  LPFPS_CHECK(active_ != kNoTask);
  LPFPS_CHECK(approx_equal(ratio_, base_ratio_, 1e-12));
  // A released-but-jitter-delayed job can become visible at any moment;
  // the exact-knowledge premise of the slowdown does not hold.
  if (!staged_.empty()) return;
  const sched::Task& t = task(active_);
  const JobState& state = job(active_);

  // Context-switch overhead can push a job's demand past its nominal
  // WCET; the WCET-based slack computation below would then lie, so
  // leave such jobs at base speed.  Under injected overruns the
  // scheduler is no longer omniscient — it knows only E_i against the
  // declared budget C_i (plus tracked kernel overhead), so the test
  // becomes: a job at or past its budget signals an overrun in
  // progress, not slack.
  if (overruns_possible_) {
    if (state.executed >= t.wcet + state.overhead - kTimeEpsilon) return;
  } else if (state.total_work > t.wcet + kTimeEpsilon) {
    return;
  }

  const Time arrival = next_arrival_for_active();
  // Safety cap (see engine.h): never stretch past the active task's own
  // absolute deadline.
  const Time window_end =
      std::min(arrival, state.release + static_cast<Time>(t.deadline));
  const Time window = span(now_, at(window_end));
  const Work remaining = snap_nonnegative(t.wcet - state.executed);
  // Slack exists only if the remaining worst-case work fits below the
  // base clock inside the window (base_ratio_ == 1 gives the paper's
  // Theorem 1 hypotheses; the hybrid policy measures slack against its
  // static base speed instead).
  if (!(window > 0.0 && remaining < base_ratio_ * window)) return;

  const Ratio desired =
      policy_.dvs == RatioMethod::kOptimal
          ? optimal_ratio_to_target(remaining, window,
                                    processor_.ramp_rate, base_ratio_)
          : heuristic_ratio(remaining, window);
  const Ratio quantized = processor_.frequencies.quantize_up(desired);
  if (quantized >= base_ratio_ - 1e-12) return;

  // Both the down-ramp (now) and the just-in-time up-ramp (before
  // window_end) must fit into the window without overlapping; otherwise
  // the slack is too short to exploit and we stay at base speed.  The
  // paper's Figure 7 discussion covers exactly this short-window regime.
  const Time ramp = (base_ratio_ - quantized) / processor_.ramp_rate;
  const TimePoint up_start{window_end, -ramp};
  if (tp_definitely_greater(after(now_, ramp), up_start)) return;

  ramp_target_ = quantized;
  reinvoke_after_ramp_ = false;
  ++speed_changes_;
  ++dvs_slowdowns_;
  plan_active_ = true;
  plan_up_started_ = false;
  plan_rampup_start_ = up_start;
  plan_end_ = at(window_end);
}

void Simulation::enter_power_down() {
  LPFPS_CHECK(state_ == CpuState::kIdle && active_ == kNoTask);
  LPFPS_CHECK(approx_equal(ratio_, base_ratio_, 1e-12));
  // Safe mode runs plain FPS: no power-down until the episode ends at
  // the next idle instant.  The idle branch clears the flag before the
  // idle-policy switch, so this guard is belt-and-braces for the
  // timeout-shutdown path.
  if (safe_mode_) return;
  // An imminent jitter-delayed arrival forbids sleeping: the timer's
  // "exact knowledge" premise does not hold.
  if (!staged_.empty()) return;
  const auto release = delay_queue_.next_release();
  if (!release.has_value()) return;  // Everything in flight is staged.
  // Pick the deepest sleep state whose wake-up fits the known gap
  // (the classic single 5%/10-cycle state unless a hierarchy is
  // configured), then set the timer early by its latency (L14).
  const auto state =
      processor_.deepest_state_for_gap(span(now_, at(*release)));
  if (!state.has_value()) return;  // Gap too short for any state.
  const Time latency =
      state->wakeup_cycles / processor_.frequencies.f_max();
  TimePoint timer{*release, -latency};  // L14.
  if (options_.timer_granularity > 0.0) {
    // Tick-based kernels wake on the grid: round down (early is safe).
    timer = at(std::floor(timer.absolute() / options_.timer_granularity) *
               options_.timer_granularity);
  }
  if (!tp_definitely_greater(timer, now_)) return;  // Too close to sleep.
  state_ = CpuState::kPowerDown;
  wake_at_ = timer;
  wake_programmed_ = timer;
  if (options_.faults.wakeup.enabled() &&
      rng_.uniform(0.0, 1.0) < options_.faults.wakeup.probability) {
    // The timer hardware fires late; wake_programmed_ keeps the spec
    // instant detection compares against when the wake finally lands.
    wake_at_ = after(timer, rng_.uniform(0.0, options_.faults.wakeup.max_delay));
  }
  wake_end_ = kNeverPoint;
  sleep_power_fraction_ = state->power_fraction;
  sleep_wake_latency_ = latency;
  shutdown_at_ = kNeverPoint;
  ++power_downs_;
}

void Simulation::invoke_scheduler() {
  invoke_scheduler_impl();
  if (options_.invocation_hook) {
    sched::QueueSnapshot snapshot;
    snapshot.time = now_.absolute();
    snapshot.run_queue = run_queue_.entries();
    snapshot.delay_queue = delay_queue_.entries();
    snapshot.active_task = active_;
    snapshot.active_executed =
        active_ == kNoTask ? 0.0 : job(active_).executed;
    options_.invocation_hook(snapshot);
  }
}

void Simulation::invoke_scheduler_impl() {
  ++scheduler_invocations_;

  // L1-L4: restore full (base) speed before any decision.
  if (ratio_ < base_ratio_ - 1e-12 || ramp_target_ < base_ratio_ - 1e-12) {
    if (!(ramp_target_ == base_ratio_ && ratio_ < ramp_target_)) {
      // Not already ramping up: redirect toward full speed.
      ramp_target_ = base_ratio_;
      ++speed_changes_;
    }
    reinvoke_after_ramp_ = true;
    return;
  }

  // L5-L7: release due tasks (via the jitter stage when configured).
  while (!delay_queue_.empty() &&
         tp_approx_le(at(delay_queue_.head().release_time), now_)) {
    const sched::DelayEntry due = delay_queue_.pop_head();
    start_job(due.task);
    TimePoint ready = at(job(due.task).release);
    if (!options_.release_jitter.empty()) {
      ready.offset += rng_.uniform(
          0.0,
          options_.release_jitter[static_cast<std::size_t>(due.task)]);
    }
    if (tp_approx_le(ready, now_)) {
      run_queue_.insert({due.task, task(due.task).priority});
    } else {
      staged_.push_back({due.task, ready});
    }
  }
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (tp_approx_le(it->ready, now_)) {
      run_queue_.insert({it->task, task(it->task).priority});
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }

  // L8-L11: dispatch / preempt.
  if (active_ == kNoTask) {
    if (!run_queue_.empty()) active_ = run_queue_.pop_head().task;
  } else if (!run_queue_.empty() &&
             run_queue_.head().priority < task(active_).priority) {
    run_queue_.insert({active_, task(active_).priority});
    active_ = run_queue_.pop_head().task;
    ++context_switches_;
    // Kernel save/restore overhead executes ahead of the incoming job's
    // own work, at the prevailing clock.  The budget tracks it too: the
    // overhead is the kernel's own doing, not the job lying.
    job(active_).total_work += options_.context_switch_cost;
    job(active_).overhead += options_.context_switch_cost;
  }

  // L12-L21: power management when the run queue is empty.
  if (active_ != kNoTask) {
    state_ = CpuState::kRunning;
    shutdown_at_ = kNeverPoint;
    if (run_queue_.empty() && policy_.uses_dvs() && !safe_mode_) {
      try_slowdown();
    }
    sample_queue_depths();
    return;
  }

  state_ = CpuState::kIdle;
  sample_queue_depths();
  // An idle instant ends any safe-mode episode: the anomaly's backlog
  // has drained, so DVS and power-down become trustworthy again —
  // including at this very instant (the switch below may sleep).
  safe_mode_ = false;
  if (delay_queue_.empty()) return;  // No future work at all.
  switch (policy_.idle) {
    case IdleMethod::kBusyWait:
      break;
    case IdleMethod::kExactPowerDown:
      enter_power_down();
      break;
    case IdleMethod::kTimeoutShutdown:
      shutdown_at_ = after(now_, policy_.shutdown_timeout);
      break;
  }
}

void Simulation::finish_active_job() {
  LPFPS_CHECK(active_ != kNoTask);
  const sched::Task& t = task(active_);
  JobState& state = job(active_);
  LPFPS_CHECK(approx_ge(state.executed, state.total_work));

  sim::JobRecord record;
  record.task = active_;
  record.instance = state.instance;
  record.release = state.release;
  record.absolute_deadline = state.release + static_cast<Time>(t.deadline);
  record.completion = now_.absolute();
  record.executed = state.total_work;
  record.finished = true;
  record.missed_deadline =
      tp_definitely_greater(now_, at(record.absolute_deadline));
  if (record.missed_deadline) {
    ++deadline_misses_;
    if (options_.throw_on_miss) {
      throw std::runtime_error(
          "deadline miss: task " + t.name + " instance " +
          std::to_string(state.instance) + " finished at " +
          std::to_string(record.completion) + " > deadline " +
          std::to_string(record.absolute_deadline) + " under policy " +
          policy_.name);
    }
  }
  if (options_.record_trace) {
    trace_.add_job(record);
    if (cycle_recording_) cycle_jobs_.push_back({record, now_});
  }
  ++jobs_completed_;

  delay_queue_.insert(
      {active_, state.window_release + static_cast<Time>(t.period)});
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  maybe_detect_ramp_fault();
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
}

void Simulation::on_budget_exhausted() {
  LPFPS_CHECK(state_ == CpuState::kRunning && active_ != kNoTask);
  JobState& state = job(active_);
  state.over_budget = true;
  ++overruns_detected_;
  enter_safe_mode();
  switch (options_.containment.on_overrun) {
    case faults::OverrunAction::kNone:
      // Monitor only: the overrunning job keeps the CPU (at base speed
      // once the safe-mode ramp lands) until its true demand drains.
      break;
    case faults::OverrunAction::kThrottle:
      throttle_active_job();
      break;
    case faults::OverrunAction::kKill:
      kill_active_job();
      break;
  }
}

void Simulation::kill_active_job() {
  const sched::Task& t = task(active_);
  JobState& state = job(active_);
  ++jobs_killed_;
  if (options_.record_trace) {
    sim::JobRecord record;
    record.task = active_;
    record.instance = state.instance;
    record.release = state.release;
    record.absolute_deadline =
        state.release + static_cast<Time>(t.deadline);
    record.completion = now_.absolute();
    record.executed = state.executed;
    record.finished = false;
    record.killed = true;
    // An abort is not a late completion; the instance is shed, so the
    // miss flag (and counter) stay untouched.
    trace_.add_job(record);
  }
  requeue_contained_task(active_);
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
}

void Simulation::throttle_active_job() {
  JobState& state = job(active_);
  ++jobs_throttled_;
  state.throttled = true;
  requeue_contained_task(active_);
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
}

void Simulation::requeue_contained_task(TaskIndex index) {
  const sched::Task& t = task(index);
  auto& instance = next_instance_[static_cast<std::size_t>(index)];
  Time next_release = static_cast<Time>(t.phase) +
                      static_cast<Time>(instance * t.period);
  // Enforcement windows the overrun already consumed are forfeited
  // (skippable-instance semantics): releasing them retroactively could
  // only cascade lateness.  With a schedulable declared demand the
  // budget exhausts before the window ends, so nothing is skipped.
  while (tp_definitely_greater(now_, at(next_release))) {
    ++instance;
    ++jobs_skipped_;
    next_release = static_cast<Time>(t.phase) +
                   static_cast<Time>(instance * t.period);
  }
  delay_queue_.insert({index, next_release});
}

void Simulation::enter_safe_mode() {
  if (!options_.containment.safe_mode_fallback || safe_mode_) return;
  safe_mode_ = true;
  ++safe_mode_entries_;
  // Fail toward plain FPS: abandon any slowdown plan, head straight
  // back to base speed, and (via the safe_mode_ gates) decline new
  // slowdowns, power-downs and shutdown timers until the next idle
  // instant.
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
  shutdown_at_ = kNeverPoint;
  if (ramp_target_ != base_ratio_) {
    ramp_target_ = base_ratio_;
    ++speed_changes_;
  }
}

void Simulation::maybe_detect_ramp_fault() {
  if (!ramp_fault_armed_ || !plan_active_ || !plan_up_started_) return;
  if (ratio_ >= base_ratio_ - 1e-12) return;  // The ramp landed on time.
  // The just-in-time plan commands ratio(t) = base - rho_spec *
  // (plan_end - t) during its up-ramp (and base thereafter); a clock
  // measurably below that trajectory means the physical regulator is
  // slower than its spec.
  const Ratio expected =
      base_ratio_ -
      processor_.ramp_rate * std::max(0.0, span(now_, plan_end_));
  if (ratio_ < expected - 1e-9) {
    ++ramp_faults_detected_;
    enter_safe_mode();
  }
}

void Simulation::setup_cycle_detection() {
  if (!options_.cycle_detection || !cycle_detection_enabled_by_env()) return;
  // Fault injection and containment carry state (budget windows, the
  // safe-mode latch, perturbed timers) the fingerprint does not
  // capture; declare such runs ineligible outright.
  if (detection_enabled_) return;
  // Jittered arrivals and tick-granular timers are aperiodic relative to
  // the hyperperiod; declare them ineligible outright so such runs report
  // cycles_detected == 0 without even paying for fingerprints.
  for (const Time j : options_.release_jitter) {
    if (j > 0.0) return;
  }
  if (options_.timer_granularity > 0.0) return;
  // A hook observes every scheduler invocation; skipping cycles would
  // silently drop the observations it is owed.
  if (options_.invocation_hook) return;
  // Trace-driven execution carries opaque per-task replay cursors the
  // fingerprint cannot see.
  if (exec_model_ != nullptr && exec_model_->name() == "trace") return;
  std::int64_t hyper = 0;
  try {
    hyper = tasks_.hyperperiod();
  } catch (const std::overflow_error&) {
    return;  // Mutually-prime periods: no cycle within 64 bits.
  }
  if (hyper <= 0) return;
  // Everything below trades on exact double arithmetic over boundary
  // times (k*H, shifts by n*H): keep all of it inside the integer-exact
  // mantissa range.
  if (hyper > (std::int64_t{1} << 52)) return;
  const Time length = static_cast<Time>(hyper);
  // Detection needs boundaries at H and 2H inside the horizon before it
  // can ever match; shorter runs would pay fingerprints for nothing.
  if (2.0 * length > options_.horizon) return;
  cycle_length_ = length;
  next_boundary_ = length;
  jobs_per_cycle_.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    jobs_per_cycle_[i] = hyper / tasks_[static_cast<TaskIndex>(i)].period;
  }
  cycle_armed_ = true;
}

Fingerprint Simulation::take_fingerprint() const {
  Fingerprint fp;
  fp.state = state_;
  fp.active = active_;
  fp.ratio = ratio_;
  fp.ramp_target = ramp_target_;
  fp.reinvoke_after_ramp = reinvoke_after_ramp_;
  fp.plan_active = plan_active_;
  fp.plan_up_started = plan_up_started_;
  fp.now_base_rel = now_.base - next_boundary_;
  fp.now_offset = now_.offset;
  fp.plan_rampup_start_rel = span(now_, plan_rampup_start_);
  fp.plan_end_rel = span(now_, plan_end_);
  fp.wake_at_rel = span(now_, wake_at_);
  fp.wake_end_rel = span(now_, wake_end_);
  fp.shutdown_at_rel = span(now_, shutdown_at_);
  fp.sleep_power_fraction = sleep_power_fraction_;
  fp.sleep_wake_latency = sleep_wake_latency_;
  fp.run_queue = run_queue_.entries();
  fp.delay_queue_rel = delay_queue_.entries();
  for (sched::DelayEntry& entry : fp.delay_queue_rel) {
    entry.release_time = span(now_, at(entry.release_time));
  }
  fp.staged_rel.reserve(staged_.size());
  for (const StagedJob& staged : staged_) {
    fp.staged_rel.emplace_back(staged.task, span(now_, staged.ready));
  }
  const auto add_live = [&](TaskIndex index) {
    const JobState& state = jobs_[static_cast<std::size_t>(index)];
    fp.live_jobs.push_back({index, span(now_, at(state.release)),
                            state.total_work, state.executed});
  };
  if (active_ != kNoTask) add_live(active_);
  for (const sched::RunEntry& entry : run_queue_.entries()) {
    add_live(entry.task);
  }
  for (const StagedJob& staged : staged_) add_live(staged.task);
  fp.next_release_rel.reserve(tasks_.size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    const sched::Task& t = task(i);
    fp.next_release_rel.push_back(span(
        now_,
        at(static_cast<Time>(t.phase) +
           static_cast<Time>(next_instance_[static_cast<std::size_t>(i)] *
                             t.period))));
  }
  fp.rng = rng_.engine();
  return fp;
}

CounterSnapshot Simulation::snapshot_counters() const {
  return {jobs_completed_,        deadline_misses_, context_switches_,
          scheduler_invocations_, speed_changes_,   power_downs_,
          dvs_slowdowns_};
}

void Simulation::disarm_cycle_detection() {
  cycle_armed_ = false;
  cycle_recording_ = false;
  cycle_has_prev_ = false;
  next_boundary_ = kNever;
  cycle_segments_.clear();
  cycle_jobs_.clear();
}

void Simulation::on_cycle_boundary() {
  const auto started = std::chrono::steady_clock::now();
  Fingerprint current = take_fingerprint();
  ++fingerprint_checks_;
  bool rng_moved = false;
  bool matched = false;
  if (cycle_has_prev_) {
    if (current.rng != prev_fingerprint_.rng) {
      rng_moved = true;
    } else {
      matched = current == prev_fingerprint_;
    }
  }
  fingerprint_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (rng_moved) {
    // The execution model consumes randomness each cycle; a mt19937
    // state never recurs within any simulatable horizon, so stop
    // checking.  Stochastic runs thus pay exactly two fingerprints.
    disarm_cycle_detection();
    return;
  }
  if (matched) {
    // Two consecutive boundaries are bit-identical: the simulation is a
    // proven cycle.  Skip every whole hyperperiod that still fits.
    const Time now_abs = now_.absolute();
    std::int64_t cycles = static_cast<std::int64_t>(
        (options_.horizon - now_abs) / cycle_length_);
    while (now_abs + static_cast<Time>(cycles + 1) * cycle_length_ <=
           options_.horizon) {
      ++cycles;
    }
    while (cycles > 0 &&
           now_abs + static_cast<Time>(cycles) * cycle_length_ >
               options_.horizon) {
      --cycles;
    }
    if (cycles > 0) fast_forward(cycles);
    // Any tail shorter than a cycle simulates normally; further
    // fingerprints could never pay off.
    disarm_cycle_detection();
    return;
  }
  prev_fingerprint_ = std::move(current);
  cycle_has_prev_ = true;
  prev_counters_ = snapshot_counters();
  cycle_segments_.clear();
  cycle_jobs_.clear();
  cycle_recording_ = true;
  next_boundary_ += cycle_length_;
}

void Simulation::fast_forward(std::int64_t cycles) {
  LPFPS_CHECK(cycles > 0 && cycle_recording_);
  // Replay the template through the *identical* accumulator calls the
  // simulation would have made, once per skipped cycle, so every float
  // total follows the same addition sequence (and the trace coalescer
  // sees the same segment stream) as the full run.  Durations come from
  // the template verbatim — shift-invariant TimePoint arithmetic makes
  // the full simulation's own cycle-j durations bit-identical to them —
  // and absolute trace times re-materialize from (base + j*H, offset)
  // with the exact single rounding the full run would apply.
  for (std::int64_t j = 1; j <= cycles; ++j) {
    const Time offset = static_cast<Time>(j) * cycle_length_;
    for (const CycleSegment& cs : cycle_segments_) {
      const Time dt = cs.dt;
      const Ratio rb = cs.ratio_begin;
      const Ratio re = cs.ratio_end;
      // The template caches the exact energy each accumulation charged,
      // so the replay is pure addition — no power-model evaluation.
      accumulator_.charge_replay(cs.mode, dt, cs.energy);
      if (cs.mode == sim::ProcessorMode::kRunning) {
        auto& slot = per_task_[static_cast<std::size_t>(cs.task)];
        slot.time += dt;
        slot.energy += cs.energy;
        running_ratio_integral_ += (rb + re) / 2.0 * dt;
        running_time_ += dt;
      }
      if (options_.record_trace) {
        sim::Segment segment;
        segment.begin = (cs.begin.base + offset) + cs.begin.offset;
        segment.end = (cs.end.base + offset) + cs.end.offset;
        segment.mode = cs.mode;
        segment.task = cs.task;
        segment.ratio_begin = rb;
        segment.ratio_end = re;
        trace_.add_segment(segment);
      }
    }
    if (options_.record_trace) {
      for (const CycleJob& cj : cycle_jobs_) {
        sim::JobRecord record = cj.record;
        record.instance +=
            j * jobs_per_cycle_[static_cast<std::size_t>(record.task)];
        record.release += offset;
        record.absolute_deadline += offset;
        record.completion =
            (cj.completion.base + offset) + cj.completion.offset;
        trace_.add_job(record);
      }
    }
  }

  // Integer statistics advance by exact per-cycle deltas.  High-water
  // marks need nothing: a repeated cycle sets no new maximum.
  const CounterSnapshot delta = snapshot_counters();
  jobs_completed_ +=
      static_cast<int>(cycles * (delta.jobs_completed -
                                 prev_counters_.jobs_completed));
  deadline_misses_ +=
      static_cast<int>(cycles * (delta.deadline_misses -
                                 prev_counters_.deadline_misses));
  context_switches_ +=
      static_cast<int>(cycles * (delta.context_switches -
                                 prev_counters_.context_switches));
  scheduler_invocations_ +=
      static_cast<int>(cycles * (delta.scheduler_invocations -
                                 prev_counters_.scheduler_invocations));
  speed_changes_ += static_cast<int>(
      cycles * (delta.speed_changes - prev_counters_.speed_changes));
  power_downs_ += static_cast<int>(
      cycles * (delta.power_downs - prev_counters_.power_downs));
  dvs_slowdowns_ += static_cast<int>(
      cycles * (delta.dvs_slowdowns - prev_counters_.dvs_slowdowns));

  // Shift every pending anchor so the state at now_ reappears, verbatim,
  // at now_ + cycles * H.  Anchors are exact integers (or infinity), so
  // the additions are exact and every offset survives untouched.  Stale
  // JobState entries of delay-queue tasks shift too — harmless,
  // start_job rewrites them before any read.
  const Time shift = static_cast<Time>(cycles) * cycle_length_;
  delay_queue_.shift_release_times(shift);
  for (StagedJob& staged : staged_) staged.ready.base += shift;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].release += shift;
    jobs_[i].window_release += shift;
    jobs_[i].instance += cycles * jobs_per_cycle_[i];
    next_instance_[i] += cycles * jobs_per_cycle_[i];
  }
  wake_at_.base += shift;
  wake_end_.base += shift;
  shutdown_at_.base += shift;
  plan_rampup_start_.base += shift;
  plan_end_.base += shift;
  now_.base += shift;

  cycles_detected_ += cycles;
  fast_forwarded_time_ += shift;
}

double Simulation::slope() const {
  if (ratio_ < ramp_target_) return effective_ramp_rate_;
  if (ratio_ > ramp_target_) return -effective_ramp_rate_;
  return 0.0;
}

void Simulation::advance_to(const TimePoint& next) {
  const Time dt = span(now_, next);
  LPFPS_CHECK(dt >= -kTimeEpsilon);
  if (dt <= 0.0) {
    now_ = next;
    return;
  }

  const double s = slope();
  Ratio end_ratio = ratio_ + s * dt;
  // Clamp onto the target to kill rounding drift at ramp boundaries.
  if ((s > 0.0 && end_ratio > ramp_target_) ||
      (s < 0.0 && end_ratio < ramp_target_) ||
      approx_equal(end_ratio, ramp_target_, 1e-9)) {
    end_ratio = ramp_target_;
  }

  sim::Segment segment;
  segment.begin = now_.absolute();
  segment.end = next.absolute();
  segment.ratio_begin = ratio_;
  segment.ratio_end = end_ratio;

  // The energy each branch charges into the accumulator; recorded into
  // the cycle template so the replay can re-add the identical value
  // without re-evaluating the power model.
  Energy charged = 0.0;
  switch (state_) {
    case CpuState::kRunning: {
      LPFPS_CHECK(active_ != kNoTask);
      const Work done = power::work_done(ratio_, s, dt);
      job(active_).executed += done;
      if (detection_enabled_) job(active_).budget_used += done;
      Energy spent = 0.0;
      if (s == 0.0) {
        accumulator_.add_run(dt, ratio_);
        spent = dt * power_model_.run_power(ratio_);
      } else {
        accumulator_.add_run_ramp(dt, ratio_, end_ratio,
                                  effective_ramp_rate_);
        spent = power_model_.ramp_energy(ratio_, end_ratio,
                                         effective_ramp_rate_, true);
      }
      charged = spent;
      auto& slot = per_task_[static_cast<std::size_t>(active_)];
      slot.time += dt;
      slot.energy += spent;
      running_ratio_integral_ += (ratio_ + end_ratio) / 2.0 * dt;
      running_time_ += dt;
      segment.mode = sim::ProcessorMode::kRunning;
      segment.task = active_;
      break;
    }
    case CpuState::kIdle: {
      if (s == 0.0) {
        accumulator_.add_idle_nop(dt, ratio_);
        if (cycle_recording_) {
          charged = dt * power_model_.idle_nop_power(ratio_);
        }
        segment.mode = sim::ProcessorMode::kIdleBusyWait;
      } else {
        accumulator_.add_idle_ramp(dt, ratio_, end_ratio,
                                   effective_ramp_rate_);
        if (cycle_recording_) {
          charged = power_model_.ramp_energy(ratio_, end_ratio,
                                             effective_ramp_rate_, false);
        }
        segment.mode = sim::ProcessorMode::kRamping;
      }
      break;
    }
    case CpuState::kPowerDown: {
      LPFPS_CHECK(s == 0.0);
      accumulator_.add_power_down(dt, sleep_power_fraction_);
      charged = dt * sleep_power_fraction_;
      segment.mode = sim::ProcessorMode::kPowerDown;
      break;
    }
    case CpuState::kWakeUp: {
      LPFPS_CHECK(s == 0.0);
      accumulator_.add_wakeup(dt);
      charged = dt * 1.0;
      segment.mode = sim::ProcessorMode::kWakeUp;
      break;
    }
  }

  if (cycle_recording_) {
    // Template for the steady-state replay: one entry per accumulation,
    // including sub-epsilon slivers the trace writer drops (their energy
    // still counts, so the replay must redo them).
    cycle_segments_.push_back({now_, next, dt, charged, segment.mode,
                               segment.task, segment.ratio_begin,
                               segment.ratio_end});
  }
  if (options_.record_trace) trace_.add_segment(segment);
  ratio_ = end_ratio;
  now_ = next;
}

SimulationResult Simulation::run() {
  LPFPS_CHECK(options_.horizon > 0.0);
  LPFPS_CHECK(options_.context_switch_cost >= 0.0);
  LPFPS_CHECK_MSG(options_.release_jitter.empty() ||
                      options_.release_jitter.size() == tasks_.size(),
                  "release_jitter must have one entry per task");
  for (const Time j : options_.release_jitter) LPFPS_CHECK(j >= 0.0);
  LPFPS_CHECK(options_.timer_granularity >= 0.0);
  options_.faults.validate(tasks_.size());
  options_.containment.validate();
  tasks_.validate();
  processor_.validate();
  policy_.validate();

  base_ratio_ = policy_.static_ratio;
  ratio_ = base_ratio_;
  ramp_target_ = base_ratio_;

  if (options_.record_trace) {
    // Reserve from the release pattern over the horizon (the horizon is
    // normally a whole number of hyperperiods): one job record per
    // released instance, and a few segments per job (run pieces split by
    // preemptions plus idle/ramp/power-down gaps between them).
    std::size_t job_hint = 0;
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
      job_hint += static_cast<std::size_t>(
                      options_.horizon / static_cast<Time>(task(i).period)) +
                  1;
    }
    trace_.reserve(4 * job_hint + 16, job_hint);
  }

  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    delay_queue_.insert({i, static_cast<Time>(task(i).phase)});
  }
  setup_cycle_detection();
  invoke_scheduler();

  const TimePoint horizon = at(options_.horizon);
  // Livelock detector: the loop must advance time (or change state so a
  // handler clears its condition) every iteration; a stuck boundary
  // would otherwise spin forever.  The threshold is far above any
  // legitimate same-instant handler cascade.
  TimePoint last_now{-1.0, 0.0};
  int stalled_iterations = 0;
  while (tp_definitely_less(now_, horizon)) {
    if (cycle_armed_) {
      const Time now_abs = now_.absolute();
      if (now_abs == next_boundary_) {
        // The clock landed exactly on a hyperperiod boundary (phase-0
        // task sets release every task there, so the loop always stops
        // at it) and the boundary's handlers have run: a canonical
        // sampling point.  on_cycle_boundary may fast-forward now_ to
        // the last whole cycle before the horizon; re-test the loop
        // condition before doing anything at the new instant.
        on_cycle_boundary();
        continue;
      }
      if (now_abs > next_boundary_) {
        // Overshot (phased releases leave no event on the boundary):
        // resync to the next multiple and restart the match hunt.
        while (next_boundary_ <= now_abs) next_boundary_ += cycle_length_;
        cycle_has_prev_ = false;
        cycle_recording_ = false;
        cycle_segments_.clear();
        cycle_jobs_.clear();
      }
    }
    if (now_.base == last_now.base && now_.offset == last_now.offset) {
      if (++stalled_iterations > 1000) {
        throw std::logic_error(
            "engine livelock at t=" + std::to_string(now_.absolute()) +
            " state=" + std::to_string(static_cast<int>(state_)) +
            " ratio=" + std::to_string(ratio_) + " target=" +
            std::to_string(ramp_target_) + " active=" +
            std::to_string(active_) + " plan=" +
            std::to_string(plan_active_) + " policy=" + policy_.name);
      }
    } else {
      stalled_iterations = 0;
      last_now = now_;
    }
    // ---- settle sub-resolution transitions before anything else.
    if (ratio_ != ramp_target_ &&
        power::ramp_duration(ratio_, ramp_target_, effective_ramp_rate_) <
            kTimeEpsilon) {
      // The residual transition is below the time resolution (either
      // float debris from a split ramp, or a near-instant ramp rate):
      // completing it now costs nothing measurable and prevents a
      // sub-ulp boundary that time arithmetic could never reach.
      ratio_ = ramp_target_;
    }
    if (ratio_ == ramp_target_ && reinvoke_after_ramp_) {
      // L1-L4's deferred re-entry must run *before* time advances past
      // this instant, or the power-management decision it defers (e.g.
      // entering power-down) would be skipped for the whole idle gap.
      reinvoke_after_ramp_ = false;
      invoke_scheduler();
    }

    // ---- gather candidate boundaries (all strictly in the future or
    // due exactly now; handlers below clear every condition they fire
    // on, so the loop always progresses).
    TimePoint next_other = horizon;
    // Injected faults can break the fault-free invariant that the clock
    // is back at base speed (and the CPU awake) before any release is
    // due: a slow ramp regulator or a safe-mode redirect leaves the
    // L1-L4 ramp-up in flight across a release, and a late wake timer
    // leaves the CPU asleep through one.  The scheduler defers those
    // releases (reinvoke_after_ramp_ / the wake handler serves them),
    // so they must not pin the loop at the current instant — nor may an
    // already-overslept release become a candidate in the past.
    const bool ramp_locked = reinvoke_after_ramp_ && ratio_ != ramp_target_;
    const bool releases_blocked =
        faults_injected_ &&
        (ramp_locked || state_ == CpuState::kPowerDown ||
         state_ == CpuState::kWakeUp);
    if (const auto release = delay_queue_.next_release();
        release.has_value() && !releases_blocked) {
      const TimePoint candidate = at(*release);
      if (tp_less(candidate, next_other)) next_other = candidate;
    }
    if (ratio_ != ramp_target_) {
      const TimePoint candidate =
          after(now_, power::ramp_duration(ratio_, ramp_target_,
                                           effective_ramp_rate_));
      if (tp_less(candidate, next_other)) next_other = candidate;
    }
    if (plan_active_ && !plan_up_started_ &&
        tp_less(plan_rampup_start_, next_other)) {
      next_other = plan_rampup_start_;
    }
    if (state_ == CpuState::kPowerDown && tp_less(wake_at_, next_other)) {
      next_other = wake_at_;
    }
    if (state_ == CpuState::kWakeUp && tp_less(wake_end_, next_other)) {
      next_other = wake_end_;
    }
    if (state_ == CpuState::kIdle && shutdown_at_.base != kNever &&
        tp_less(shutdown_at_, next_other)) {
      next_other = shutdown_at_;
    }
    if (!(faults_injected_ && ramp_locked)) {
      for (const StagedJob& staged : staged_) {
        if (tp_less(staged.ready, next_other)) next_other = staged.ready;
      }
    }
    LPFPS_CHECK(tp_approx_ge(next_other, now_));
    if (tp_less(next_other, now_)) next_other = now_;

    // ---- completion of the active task, if it lands first; under
    // detection, budget exhaustion competes on the same work clock.
    bool completes = false;
    bool budget_exhausts = false;
    TimePoint next = next_other;
    if (state_ == CpuState::kRunning) {
      const JobState& state = job(active_);
      const Work remaining =
          snap_nonnegative(state.total_work - state.executed);
      const auto tau = power::time_to_complete(
          ratio_, slope(), span(now_, next_other), remaining);
      if (tau.has_value()) {
        next = after(now_, *tau);
        completes = true;
      }
      if (detection_enabled_ && !state.over_budget) {
        const Work budget_left = snap_nonnegative(
            (task(active_).wcet + state.overhead) - state.budget_used);
        const Time budget_window = span(now_, next);
        const auto tau_budget = power::time_to_complete(
            ratio_, slope(), budget_window, budget_left);
        // The completion wins ties and sub-epsilon photo finishes: a
        // job finishing at its exact budget is in contract, and
        // time_to_complete clips near-boundary crossings onto the
        // window end (so an in-contract job's budget crossing can land
        // one ulp *before* its own completion).  Without a completion
        // in sight any in-window crossing is an overrun, including one
        // tying the window end exactly (a kill coinciding with a
        // release must fire before the released job runs); that is
        // safe for containment-without-faults bit-identity because an
        // in-contract job's crossing never precedes its completion, so
        // completes=false implies the true crossing also lies beyond
        // the window.
        const bool exhausts_first =
            tau_budget.has_value() &&
            (completes ? definitely_less(*tau_budget, *tau) : true);
        if (exhausts_first) {
          next = after(now_, *tau_budget);
          completes = false;
          budget_exhausts = true;
        }
      }
    }

    advance_to(next);

    // ---- fire handlers for every condition now due.
    bool need_scheduler = false;

    if (ratio_ == ramp_target_ && reinvoke_after_ramp_) {
      reinvoke_after_ramp_ = false;
      need_scheduler = true;  // L1-L4's deferred re-entry.
    }
    if (budget_exhausts) {
      on_budget_exhausted();
      need_scheduler = true;
    }
    if (completes) {
      finish_active_job();
      need_scheduler = true;
    }
    if (plan_active_ && !plan_up_started_ &&
        tp_approx_le(plan_rampup_start_, now_)) {
      plan_up_started_ = true;
      if (ramp_target_ != base_ratio_) {
        ramp_target_ = base_ratio_;
        ++speed_changes_;
      }
    }
    if (ramp_fault_armed_ && plan_active_ && plan_up_started_ &&
        ratio_ == base_ratio_ && ratio_ == ramp_target_) {
      // The plan's return ramp has (finally) reached base speed.  Under
      // a DVS ramp fault the physical slope is shallower than the spec
      // rho the just-in-time plan was computed with, so the clock can
      // still be below base at plan_end_ — the observable anomaly.
      if (tp_definitely_greater(now_, plan_end_)) {
        ++ramp_faults_detected_;
        enter_safe_mode();
      }
      plan_active_ = false;
      plan_up_started_ = false;
      plan_rampup_start_ = kNeverPoint;
      plan_end_ = kNeverPoint;
    }
    if (state_ == CpuState::kPowerDown && tp_approx_le(wake_at_, now_)) {
      if (detection_enabled_ &&
          span(wake_programmed_, now_) > kTimeEpsilon) {
        // The timer fired measurably after its programmed instant; the
        // gap the power-down was sized for is already compromised.
        ++late_wakeups_detected_;
        enter_safe_mode();
      }
      wake_programmed_ = kNeverPoint;
      wake_at_ = kNeverPoint;
      const Time delay = sleep_wake_latency_;
      if (delay > 0.0) {
        state_ = CpuState::kWakeUp;
        wake_end_ = after(now_, delay);
      } else {
        state_ = CpuState::kIdle;
        need_scheduler = true;
      }
    } else if (state_ == CpuState::kWakeUp &&
               tp_approx_le(wake_end_, now_)) {
      wake_end_ = kNeverPoint;
      state_ = CpuState::kIdle;
      need_scheduler = true;
    }
    if (state_ == CpuState::kIdle && shutdown_at_.base != kNever &&
        tp_approx_le(shutdown_at_, now_)) {
      shutdown_at_ = kNeverPoint;
      enter_power_down();
    }
    if ((state_ == CpuState::kIdle || state_ == CpuState::kRunning) &&
        !delay_queue_.empty() &&
        tp_approx_le(at(delay_queue_.head().release_time), now_)) {
      need_scheduler = true;
    }
    for (const StagedJob& staged : staged_) {
      if ((state_ == CpuState::kIdle || state_ == CpuState::kRunning) &&
          tp_approx_le(staged.ready, now_)) {
        need_scheduler = true;
        break;
      }
    }

    if (need_scheduler) invoke_scheduler();
  }

  // ---- assemble the result.  (The tolerance scales with the horizon:
  // long fast-forwardable runs accumulate ulp-level dt rounding across
  // millions of segment additions, exactly like a full simulation of
  // the same span would.)
  LPFPS_CHECK_MSG(
      approx_equal(accumulator_.total_time(), options_.horizon,
                   std::max(1e-3, 1e-9 * options_.horizon)),
      "unaccounted simulation time");

  SimulationResult result;
  result.policy_name = policy_.name;
  result.simulated_time = options_.horizon;
  result.total_energy = accumulator_.total_energy();
  result.average_power = result.total_energy / options_.horizon;
  for (std::size_t i = 0; i < result.by_mode.size(); ++i) {
    result.by_mode[i] =
        accumulator_.totals(static_cast<sim::ProcessorMode>(i));
  }
  result.jobs_completed = jobs_completed_;
  result.deadline_misses = deadline_misses_;
  result.context_switches = context_switches_;
  result.scheduler_invocations = scheduler_invocations_;
  result.speed_changes = speed_changes_;
  result.power_downs = power_downs_;
  result.dvs_slowdowns = dvs_slowdowns_;
  result.run_queue_high_water = run_queue_high_water_;
  result.delay_queue_high_water = delay_queue_high_water_;
  result.mean_running_ratio =
      running_time_ > 0.0 ? running_ratio_integral_ / running_time_ : 1.0;
  result.overruns_detected = overruns_detected_;
  result.ramp_faults_detected = ramp_faults_detected_;
  result.late_wakeups_detected = late_wakeups_detected_;
  result.jobs_killed = jobs_killed_;
  result.jobs_throttled = jobs_throttled_;
  result.jobs_skipped = jobs_skipped_;
  result.safe_mode_entries = safe_mode_entries_;
  result.cycles_detected = cycles_detected_;
  result.fast_forwarded_time = fast_forwarded_time_;
  result.fingerprint_checks = fingerprint_checks_;
  result.fingerprint_seconds = fingerprint_seconds_;
  result.per_task = per_task_;
  if (options_.record_trace) {
    trace_.check_invariants();
    result.trace = std::move(trace_);
  }
  return result;
}

}  // namespace

Engine::Engine(sched::TaskSet tasks, power::ProcessorConfig processor,
               SchedulerPolicy policy, exec::ExecModelPtr exec_model)
    : tasks_(std::move(tasks)),
      processor_(std::move(processor)),
      policy_(std::move(policy)),
      exec_model_(std::move(exec_model)) {
  LPFPS_CHECK_MSG(!tasks_.empty(), "engine needs at least one task");
  tasks_.validate();
  processor_.validate();
  policy_.validate();
}

SimulationResult Engine::run(const EngineOptions& options) const {
  Simulation simulation(tasks_, processor_, policy_, exec_model_, options);
  return simulation.run();
}

SimulationResult simulate(const sched::TaskSet& tasks,
                          const power::ProcessorConfig& processor,
                          const SchedulerPolicy& policy,
                          const exec::ExecModelPtr& exec_model,
                          const EngineOptions& options) {
  const Engine engine(tasks, processor, policy, exec_model);
  return engine.run(options);
}

double normalized_power(const sched::TaskSet& tasks,
                        const power::ProcessorConfig& processor,
                        const SchedulerPolicy& policy,
                        const exec::ExecModelPtr& exec_model,
                        const EngineOptions& options) {
  const SimulationResult fps = simulate(
      tasks, processor, SchedulerPolicy::fps(), exec_model, options);
  const SimulationResult other =
      simulate(tasks, processor, policy, exec_model, options);
  LPFPS_CHECK(fps.average_power > 0.0);
  return other.average_power / fps.average_power;
}

}  // namespace lpfps::core
