#include "core/engine.h"

#include <utility>

#include "common/check.h"
#include "core/sim_state.h"

namespace lpfps::core {

// The engine main loop lives in core::SimState (sim_state.cc): the loop
// was opened up into begin/step/finish so the fleet engine can
// interleave many simulations, and Engine::run delegates to the very
// same code — one implementation, two drivers, bit-identical results.

Engine::Engine(sched::TaskSet tasks, power::ProcessorConfig processor,
               SchedulerPolicy policy, exec::ExecModelPtr exec_model)
    : tasks_(std::move(tasks)),
      processor_(std::move(processor)),
      policy_(std::move(policy)),
      exec_model_(std::move(exec_model)) {
  LPFPS_CHECK_MSG(!tasks_.empty(), "engine needs at least one task");
  tasks_.validate();
  processor_.validate();
  policy_.validate();
}

SimulationResult Engine::run(const EngineOptions& options) const {
  SimState simulation(tasks_, processor_, policy_, exec_model_, options);
  return simulation.run();
}

SimulationResult simulate(const sched::TaskSet& tasks,
                          const power::ProcessorConfig& processor,
                          const SchedulerPolicy& policy,
                          const exec::ExecModelPtr& exec_model,
                          const EngineOptions& options) {
  const Engine engine(tasks, processor, policy, exec_model);
  return engine.run(options);
}

double normalized_power(const sched::TaskSet& tasks,
                        const power::ProcessorConfig& processor,
                        const SchedulerPolicy& policy,
                        const exec::ExecModelPtr& exec_model,
                        const EngineOptions& options) {
  const SimulationResult fps = simulate(
      tasks, processor, SchedulerPolicy::fps(), exec_model, options);
  const SimulationResult other =
      simulate(tasks, processor, policy, exec_model, options);
  LPFPS_CHECK(fps.average_power > 0.0);
  return other.average_power / fps.average_power;
}

}  // namespace lpfps::core
