#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/float_compare.h"
#include "core/speed_ratio.h"
#include "power/energy.h"
#include "power/speed_profile.h"
#include "sched/queues.h"

namespace lpfps::core {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::infinity();

/// Processor macro-state.  The speed ratio / ramping sub-state is
/// orthogonal and tracked separately.
enum class CpuState : std::uint8_t {
  kIdle,       ///< No active task; busy-waiting NOPs.
  kRunning,    ///< Executing the active task.
  kPowerDown,  ///< Power-down mode, timer armed.
  kWakeUp,     ///< Returning from power-down (full power, no work).
};

/// Per-task in-flight job bookkeeping (E_i of the paper).
struct JobState {
  std::int64_t instance = 0;
  Time release = 0.0;
  Work total_work = 0.0;  ///< This instance's actual execution time.
  Work executed = 0.0;    ///< E_i: work consumed so far.
};

/// The full mutable simulation state plus the main loop.  Engine::run
/// builds one of these per call, so Engine itself stays const and
/// reusable across sweeps.
class Simulation {
 public:
  Simulation(const sched::TaskSet& tasks,
             const power::ProcessorConfig& processor,
             const SchedulerPolicy& policy,
             const exec::ExecModelPtr& exec_model,
             const EngineOptions& options)
      : tasks_(tasks),
        processor_(processor),
        policy_(policy),
        exec_model_(exec_model),
        options_(options),
        rng_(options.seed),
        power_model_(processor.make_power_model()),
        accumulator_(&power_model_),
        jobs_(tasks.size()),
        next_instance_(tasks.size(), 0),
        per_task_(tasks.size()) {
    // Size every per-task buffer up front: each queue holds at most one
    // entry per task, so after this nothing in the scheduling hot path
    // allocates.
    run_queue_.reserve(tasks.size());
    delay_queue_.reserve(tasks.size());
    staged_.reserve(tasks.size());
  }

  SimulationResult run();

 private:
  // --- scheduling machinery -------------------------------------------
  void start_job(TaskIndex task);
  void invoke_scheduler();
  void invoke_scheduler_impl();
  void try_slowdown();
  void enter_power_down();
  void finish_active_job();

  // --- time advancement ------------------------------------------------
  /// Current ramp slope in ratio-units per microsecond (0 when steady).
  double slope() const;
  /// Advances the clock to `next`, integrating energy, work and trace.
  void advance_to(Time next);

  const sched::Task& task(TaskIndex index) const { return tasks_[index]; }
  JobState& job(TaskIndex index) {
    return jobs_[static_cast<std::size_t>(index)];
  }

  /// Next release the active task must be ready for: head of the delay
  /// queue, or (single-task systems) its own next period.
  Time next_arrival_for_active() const;

  // --- immutable inputs -------------------------------------------------
  const sched::TaskSet& tasks_;
  const power::ProcessorConfig& processor_;
  const SchedulerPolicy& policy_;
  const exec::ExecModelPtr& exec_model_;
  const EngineOptions& options_;

  // --- mutable state ----------------------------------------------------
  Rng rng_;
  power::PowerModel power_model_;
  power::EnergyAccumulator accumulator_;
  sim::Trace trace_;

  Time now_ = 0.0;
  CpuState state_ = CpuState::kIdle;

  sched::RunQueue run_queue_;
  sched::DelayQueue delay_queue_;
  std::vector<JobState> jobs_;
  std::vector<std::int64_t> next_instance_;
  std::vector<power::ModeTotals> per_task_;
  TaskIndex active_ = kNoTask;

  /// Jobs released (instance started, execution time drawn) but not yet
  /// visible to the scheduler because of release jitter.
  struct StagedJob {
    TaskIndex task = kNoTask;
    Time ready = 0.0;
  };
  std::vector<StagedJob> staged_;

  // Speed sub-state: ratio_ moves toward ramp_target_ at ramp_rate.
  // "Full speed" for the scheduler is base_ratio_: 1.0 normally, or the
  // policy's constant clock under static slowdown.
  Ratio base_ratio_ = 1.0;
  Ratio ratio_ = 1.0;
  Ratio ramp_target_ = 1.0;
  /// L1-L4 semantics: re-enter the scheduler when the ramp completes.
  bool reinvoke_after_ramp_ = false;

  // DVS plan (active only while the active task runs slowed).
  bool plan_active_ = false;
  bool plan_up_started_ = false;
  Time plan_rampup_start_ = kNever;
  Time plan_end_ = kNever;

  // Power-down timers and the sleep state currently occupied.
  Time wake_at_ = kNever;   ///< Timer expiry (start of wake-up).
  Time wake_end_ = kNever;  ///< End of the wake-up transition.
  double sleep_power_fraction_ = 0.0;
  Time sleep_wake_latency_ = 0.0;

  // Timeout-shutdown policy state.
  Time shutdown_at_ = kNever;

  // Statistics.
  int jobs_completed_ = 0;
  int deadline_misses_ = 0;
  int context_switches_ = 0;
  int scheduler_invocations_ = 0;
  int speed_changes_ = 0;
  int power_downs_ = 0;
  int dvs_slowdowns_ = 0;
  int run_queue_high_water_ = 0;
  int delay_queue_high_water_ = 0;
  double running_ratio_integral_ = 0.0;
  Time running_time_ = 0.0;

  /// Samples the queue depths for the high-water counters; called at
  /// every scheduler-invocation exit (the only points where the queues
  /// change).  The ready depth counts the dispatched task too.
  void sample_queue_depths() {
    const int ready = static_cast<int>(run_queue_.size()) +
                      (active_ != kNoTask ? 1 : 0);
    run_queue_high_water_ = std::max(run_queue_high_water_, ready);
    delay_queue_high_water_ = std::max(
        delay_queue_high_water_, static_cast<int>(delay_queue_.size()));
  }
};

void Simulation::start_job(TaskIndex index) {
  JobState& state = job(index);
  auto& instance = next_instance_[static_cast<std::size_t>(index)];
  const sched::Task& t = task(index);
  state.instance = instance++;
  state.release = static_cast<Time>(t.phase) +
                  static_cast<Time>(state.instance * t.period);
  state.executed = 0.0;
  if (exec_model_ != nullptr) {
    state.total_work = exec_model_->sample(t, rng_);
    // Running longer than the WCET would void every guarantee; running
    // shorter than the nominal BCET is harmless (BCET only parameterizes
    // execution-time models) and scenario models exploit it.
    LPFPS_CHECK_MSG(state.total_work > 0.0 &&
                        state.total_work <= t.wcet + kTimeEpsilon,
                    t.name);
  } else {
    state.total_work = t.wcet;
  }
}

Time Simulation::next_arrival_for_active() const {
  if (const auto release = delay_queue_.next_release(); release.has_value()) {
    return *release;
  }
  // Single-task system: the processor is free until the task's own next
  // period begins.
  const JobState& state = jobs_[static_cast<std::size_t>(active_)];
  return state.release + static_cast<Time>(task(active_).period);
}

void Simulation::try_slowdown() {
  LPFPS_CHECK(active_ != kNoTask);
  LPFPS_CHECK(approx_equal(ratio_, base_ratio_, 1e-12));
  // A released-but-jitter-delayed job can become visible at any moment;
  // the exact-knowledge premise of the slowdown does not hold.
  if (!staged_.empty()) return;
  const sched::Task& t = task(active_);
  const JobState& state = job(active_);

  // Context-switch overhead can push a job's demand past its nominal
  // WCET; the WCET-based slack computation below would then lie, so
  // leave such jobs at base speed.
  if (state.total_work > t.wcet + kTimeEpsilon) return;

  const Time arrival = next_arrival_for_active();
  // Safety cap (see engine.h): never stretch past the active task's own
  // absolute deadline.
  const Time window_end =
      std::min(arrival, state.release + static_cast<Time>(t.deadline));
  const Time window = window_end - now_;
  const Work remaining = snap_nonnegative(t.wcet - state.executed);
  // Slack exists only if the remaining worst-case work fits below the
  // base clock inside the window (base_ratio_ == 1 gives the paper's
  // Theorem 1 hypotheses; the hybrid policy measures slack against its
  // static base speed instead).
  if (!(window > 0.0 && remaining < base_ratio_ * window)) return;

  const Ratio desired =
      policy_.dvs == RatioMethod::kOptimal
          ? optimal_ratio_to_target(remaining, window,
                                    processor_.ramp_rate, base_ratio_)
          : heuristic_ratio(remaining, window);
  const Ratio quantized = processor_.frequencies.quantize_up(desired);
  if (quantized >= base_ratio_ - 1e-12) return;

  // Both the down-ramp (now) and the just-in-time up-ramp (before
  // window_end) must fit into the window without overlapping; otherwise
  // the slack is too short to exploit and we stay at base speed.  The
  // paper's Figure 7 discussion covers exactly this short-window regime.
  const Time ramp = (base_ratio_ - quantized) / processor_.ramp_rate;
  const Time up_start = window_end - ramp;
  if (definitely_greater(now_ + ramp, up_start)) return;

  ramp_target_ = quantized;
  reinvoke_after_ramp_ = false;
  ++speed_changes_;
  ++dvs_slowdowns_;
  plan_active_ = true;
  plan_up_started_ = false;
  plan_rampup_start_ = up_start;
  plan_end_ = window_end;
}

void Simulation::enter_power_down() {
  LPFPS_CHECK(state_ == CpuState::kIdle && active_ == kNoTask);
  LPFPS_CHECK(approx_equal(ratio_, base_ratio_, 1e-12));
  // An imminent jitter-delayed arrival forbids sleeping: the timer's
  // "exact knowledge" premise does not hold.
  if (!staged_.empty()) return;
  const auto release = delay_queue_.next_release();
  if (!release.has_value()) return;  // Everything in flight is staged.
  // Pick the deepest sleep state whose wake-up fits the known gap
  // (the classic single 5%/10-cycle state unless a hierarchy is
  // configured), then set the timer early by its latency (L14).
  const auto state = processor_.deepest_state_for_gap(*release - now_);
  if (!state.has_value()) return;  // Gap too short for any state.
  const Time latency =
      state->wakeup_cycles / processor_.frequencies.f_max();
  Time timer = *release - latency;  // L14.
  if (options_.timer_granularity > 0.0) {
    // Tick-based kernels wake on the grid: round down (early is safe).
    timer = std::floor(timer / options_.timer_granularity) *
            options_.timer_granularity;
  }
  if (!definitely_greater(timer, now_)) return;  // Too close to sleep.
  state_ = CpuState::kPowerDown;
  wake_at_ = timer;
  wake_end_ = kNever;
  sleep_power_fraction_ = state->power_fraction;
  sleep_wake_latency_ = latency;
  shutdown_at_ = kNever;
  ++power_downs_;
}

void Simulation::invoke_scheduler() {
  invoke_scheduler_impl();
  if (options_.invocation_hook) {
    sched::QueueSnapshot snapshot;
    snapshot.time = now_;
    snapshot.run_queue = run_queue_.entries();
    snapshot.delay_queue = delay_queue_.entries();
    snapshot.active_task = active_;
    snapshot.active_executed =
        active_ == kNoTask ? 0.0 : job(active_).executed;
    options_.invocation_hook(snapshot);
  }
}

void Simulation::invoke_scheduler_impl() {
  ++scheduler_invocations_;

  // L1-L4: restore full (base) speed before any decision.
  if (ratio_ < base_ratio_ - 1e-12 || ramp_target_ < base_ratio_ - 1e-12) {
    if (!(ramp_target_ == base_ratio_ && ratio_ < ramp_target_)) {
      // Not already ramping up: redirect toward full speed.
      ramp_target_ = base_ratio_;
      ++speed_changes_;
    }
    reinvoke_after_ramp_ = true;
    return;
  }

  // L5-L7: release due tasks (via the jitter stage when configured).
  while (!delay_queue_.empty() &&
         approx_le(delay_queue_.head().release_time, now_)) {
    const sched::DelayEntry due = delay_queue_.pop_head();
    start_job(due.task);
    Time ready = job(due.task).release;
    if (!options_.release_jitter.empty()) {
      ready += rng_.uniform(
          0.0,
          options_.release_jitter[static_cast<std::size_t>(due.task)]);
    }
    if (approx_le(ready, now_)) {
      run_queue_.insert({due.task, task(due.task).priority});
    } else {
      staged_.push_back({due.task, ready});
    }
  }
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (approx_le(it->ready, now_)) {
      run_queue_.insert({it->task, task(it->task).priority});
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }

  // L8-L11: dispatch / preempt.
  if (active_ == kNoTask) {
    if (!run_queue_.empty()) active_ = run_queue_.pop_head().task;
  } else if (!run_queue_.empty() &&
             run_queue_.head().priority < task(active_).priority) {
    run_queue_.insert({active_, task(active_).priority});
    active_ = run_queue_.pop_head().task;
    ++context_switches_;
    // Kernel save/restore overhead executes ahead of the incoming job's
    // own work, at the prevailing clock.
    job(active_).total_work += options_.context_switch_cost;
  }

  // L12-L21: power management when the run queue is empty.
  if (active_ != kNoTask) {
    state_ = CpuState::kRunning;
    shutdown_at_ = kNever;
    if (run_queue_.empty() && policy_.uses_dvs()) try_slowdown();
    sample_queue_depths();
    return;
  }

  state_ = CpuState::kIdle;
  sample_queue_depths();
  if (delay_queue_.empty()) return;  // No future work at all.
  switch (policy_.idle) {
    case IdleMethod::kBusyWait:
      break;
    case IdleMethod::kExactPowerDown:
      enter_power_down();
      break;
    case IdleMethod::kTimeoutShutdown:
      shutdown_at_ = now_ + policy_.shutdown_timeout;
      break;
  }
}

void Simulation::finish_active_job() {
  LPFPS_CHECK(active_ != kNoTask);
  const sched::Task& t = task(active_);
  JobState& state = job(active_);
  LPFPS_CHECK(approx_ge(state.executed, state.total_work));

  sim::JobRecord record;
  record.task = active_;
  record.instance = state.instance;
  record.release = state.release;
  record.absolute_deadline = state.release + static_cast<Time>(t.deadline);
  record.completion = now_;
  record.executed = state.total_work;
  record.finished = true;
  record.missed_deadline =
      definitely_greater(now_, record.absolute_deadline);
  if (record.missed_deadline) {
    ++deadline_misses_;
    if (options_.throw_on_miss) {
      throw std::runtime_error(
          "deadline miss: task " + t.name + " instance " +
          std::to_string(state.instance) + " finished at " +
          std::to_string(now_) + " > deadline " +
          std::to_string(record.absolute_deadline) + " under policy " +
          policy_.name);
    }
  }
  if (options_.record_trace) trace_.add_job(record);
  ++jobs_completed_;

  delay_queue_.insert(
      {active_, state.release + static_cast<Time>(t.period)});
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNever;
  plan_end_ = kNever;
}

double Simulation::slope() const {
  if (ratio_ < ramp_target_) return processor_.ramp_rate;
  if (ratio_ > ramp_target_) return -processor_.ramp_rate;
  return 0.0;
}

void Simulation::advance_to(Time next) {
  const Time dt = next - now_;
  LPFPS_CHECK(dt >= -kTimeEpsilon);
  if (dt <= 0.0) {
    now_ = next;
    return;
  }

  const double s = slope();
  Ratio end_ratio = ratio_ + s * dt;
  // Clamp onto the target to kill rounding drift at ramp boundaries.
  if ((s > 0.0 && end_ratio > ramp_target_) ||
      (s < 0.0 && end_ratio < ramp_target_) ||
      approx_equal(end_ratio, ramp_target_, 1e-9)) {
    end_ratio = ramp_target_;
  }

  sim::Segment segment;
  segment.begin = now_;
  segment.end = next;
  segment.ratio_begin = ratio_;
  segment.ratio_end = end_ratio;

  switch (state_) {
    case CpuState::kRunning: {
      LPFPS_CHECK(active_ != kNoTask);
      const Work done = power::work_done(ratio_, s, dt);
      job(active_).executed += done;
      Energy spent = 0.0;
      if (s == 0.0) {
        accumulator_.add_run(dt, ratio_);
        spent = dt * power_model_.run_power(ratio_);
      } else {
        accumulator_.add_run_ramp(dt, ratio_, end_ratio,
                                  processor_.ramp_rate);
        spent = power_model_.ramp_energy(ratio_, end_ratio,
                                         processor_.ramp_rate, true);
      }
      auto& slot = per_task_[static_cast<std::size_t>(active_)];
      slot.time += dt;
      slot.energy += spent;
      running_ratio_integral_ += (ratio_ + end_ratio) / 2.0 * dt;
      running_time_ += dt;
      segment.mode = sim::ProcessorMode::kRunning;
      segment.task = active_;
      break;
    }
    case CpuState::kIdle: {
      if (s == 0.0) {
        accumulator_.add_idle_nop(dt, ratio_);
        segment.mode = sim::ProcessorMode::kIdleBusyWait;
      } else {
        accumulator_.add_idle_ramp(dt, ratio_, end_ratio,
                                   processor_.ramp_rate);
        segment.mode = sim::ProcessorMode::kRamping;
      }
      break;
    }
    case CpuState::kPowerDown: {
      LPFPS_CHECK(s == 0.0);
      accumulator_.add_power_down(dt, sleep_power_fraction_);
      segment.mode = sim::ProcessorMode::kPowerDown;
      break;
    }
    case CpuState::kWakeUp: {
      LPFPS_CHECK(s == 0.0);
      accumulator_.add_wakeup(dt);
      segment.mode = sim::ProcessorMode::kWakeUp;
      break;
    }
  }

  if (options_.record_trace) trace_.add_segment(segment);
  ratio_ = end_ratio;
  now_ = next;
}

SimulationResult Simulation::run() {
  LPFPS_CHECK(options_.horizon > 0.0);
  LPFPS_CHECK(options_.context_switch_cost >= 0.0);
  LPFPS_CHECK_MSG(options_.release_jitter.empty() ||
                      options_.release_jitter.size() == tasks_.size(),
                  "release_jitter must have one entry per task");
  for (const Time j : options_.release_jitter) LPFPS_CHECK(j >= 0.0);
  LPFPS_CHECK(options_.timer_granularity >= 0.0);
  tasks_.validate();
  processor_.validate();
  policy_.validate();

  base_ratio_ = policy_.static_ratio;
  ratio_ = base_ratio_;
  ramp_target_ = base_ratio_;

  if (options_.record_trace) {
    // Reserve from the release pattern over the horizon (the horizon is
    // normally a whole number of hyperperiods): one job record per
    // released instance, and a few segments per job (run pieces split by
    // preemptions plus idle/ramp/power-down gaps between them).
    std::size_t job_hint = 0;
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
      job_hint += static_cast<std::size_t>(
                      options_.horizon / static_cast<Time>(task(i).period)) +
                  1;
    }
    trace_.reserve(4 * job_hint + 16, job_hint);
  }

  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_.size()); ++i) {
    delay_queue_.insert({i, static_cast<Time>(task(i).phase)});
  }
  invoke_scheduler();

  const Time horizon = options_.horizon;
  // Livelock detector: the loop must advance time (or change state so a
  // handler clears its condition) every iteration; a stuck boundary
  // would otherwise spin forever.  The threshold is far above any
  // legitimate same-instant handler cascade.
  Time last_now = -1.0;
  int stalled_iterations = 0;
  while (definitely_less(now_, horizon)) {
    if (now_ == last_now) {
      if (++stalled_iterations > 1000) {
        throw std::logic_error(
            "engine livelock at t=" + std::to_string(now_) + " state=" +
            std::to_string(static_cast<int>(state_)) + " ratio=" +
            std::to_string(ratio_) + " target=" +
            std::to_string(ramp_target_) + " active=" +
            std::to_string(active_) + " plan=" +
            std::to_string(plan_active_) + " policy=" + policy_.name);
      }
    } else {
      stalled_iterations = 0;
      last_now = now_;
    }
    // ---- settle sub-resolution transitions before anything else.
    if (ratio_ != ramp_target_ &&
        power::ramp_duration(ratio_, ramp_target_, processor_.ramp_rate) <
            kTimeEpsilon) {
      // The residual transition is below the time resolution (either
      // float debris from a split ramp, or a near-instant ramp rate):
      // completing it now costs nothing measurable and prevents a
      // sub-ulp boundary that time arithmetic could never reach.
      ratio_ = ramp_target_;
    }
    if (ratio_ == ramp_target_ && reinvoke_after_ramp_) {
      // L1-L4's deferred re-entry must run *before* time advances past
      // this instant, or the power-management decision it defers (e.g.
      // entering power-down) would be skipped for the whole idle gap.
      reinvoke_after_ramp_ = false;
      invoke_scheduler();
    }

    // ---- gather candidate boundaries (all strictly in the future or
    // due exactly now; handlers below clear every condition they fire
    // on, so the loop always progresses).
    Time next_other = horizon;
    if (const auto release = delay_queue_.next_release();
        release.has_value()) {
      next_other = std::min(next_other, *release);
    }
    if (ratio_ != ramp_target_) {
      next_other = std::min(
          next_other, now_ + power::ramp_duration(ratio_, ramp_target_,
                                                  processor_.ramp_rate));
    }
    if (plan_active_ && !plan_up_started_) {
      next_other = std::min(next_other, plan_rampup_start_);
    }
    if (state_ == CpuState::kPowerDown) {
      next_other = std::min(next_other, wake_at_);
    }
    if (state_ == CpuState::kWakeUp) {
      next_other = std::min(next_other, wake_end_);
    }
    if (state_ == CpuState::kIdle && shutdown_at_ != kNever) {
      next_other = std::min(next_other, shutdown_at_);
    }
    for (const StagedJob& staged : staged_) {
      next_other = std::min(next_other, staged.ready);
    }
    LPFPS_CHECK(approx_ge(next_other, now_));
    next_other = std::max(next_other, now_);

    // ---- completion of the active task, if it lands first.
    bool completes = false;
    Time next = next_other;
    if (state_ == CpuState::kRunning) {
      const JobState& state = job(active_);
      const Work remaining =
          snap_nonnegative(state.total_work - state.executed);
      const auto tau = power::time_to_complete(ratio_, slope(),
                                               next_other - now_, remaining);
      if (tau.has_value()) {
        next = now_ + *tau;
        completes = true;
      }
    }

    advance_to(next);

    // ---- fire handlers for every condition now due.
    bool need_scheduler = false;

    if (ratio_ == ramp_target_ && reinvoke_after_ramp_) {
      reinvoke_after_ramp_ = false;
      need_scheduler = true;  // L1-L4's deferred re-entry.
    }
    if (completes) {
      finish_active_job();
      need_scheduler = true;
    }
    if (plan_active_ && !plan_up_started_ &&
        approx_le(plan_rampup_start_, now_)) {
      plan_up_started_ = true;
      if (ramp_target_ != base_ratio_) {
        ramp_target_ = base_ratio_;
        ++speed_changes_;
      }
    }
    if (state_ == CpuState::kPowerDown && approx_le(wake_at_, now_)) {
      wake_at_ = kNever;
      const Time delay = sleep_wake_latency_;
      if (delay > 0.0) {
        state_ = CpuState::kWakeUp;
        wake_end_ = now_ + delay;
      } else {
        state_ = CpuState::kIdle;
        need_scheduler = true;
      }
    } else if (state_ == CpuState::kWakeUp && approx_le(wake_end_, now_)) {
      wake_end_ = kNever;
      state_ = CpuState::kIdle;
      need_scheduler = true;
    }
    if (state_ == CpuState::kIdle && shutdown_at_ != kNever &&
        approx_le(shutdown_at_, now_)) {
      shutdown_at_ = kNever;
      enter_power_down();
    }
    if ((state_ == CpuState::kIdle || state_ == CpuState::kRunning) &&
        !delay_queue_.empty() &&
        approx_le(delay_queue_.head().release_time, now_)) {
      need_scheduler = true;
    }
    for (const StagedJob& staged : staged_) {
      if ((state_ == CpuState::kIdle || state_ == CpuState::kRunning) &&
          approx_le(staged.ready, now_)) {
        need_scheduler = true;
        break;
      }
    }

    if (need_scheduler) invoke_scheduler();
  }

  // ---- assemble the result.
  LPFPS_CHECK_MSG(
      approx_equal(accumulator_.total_time(), horizon, 1e-3),
      "unaccounted simulation time");

  SimulationResult result;
  result.policy_name = policy_.name;
  result.simulated_time = horizon;
  result.total_energy = accumulator_.total_energy();
  result.average_power = result.total_energy / horizon;
  for (std::size_t i = 0; i < result.by_mode.size(); ++i) {
    result.by_mode[i] =
        accumulator_.totals(static_cast<sim::ProcessorMode>(i));
  }
  result.jobs_completed = jobs_completed_;
  result.deadline_misses = deadline_misses_;
  result.context_switches = context_switches_;
  result.scheduler_invocations = scheduler_invocations_;
  result.speed_changes = speed_changes_;
  result.power_downs = power_downs_;
  result.dvs_slowdowns = dvs_slowdowns_;
  result.run_queue_high_water = run_queue_high_water_;
  result.delay_queue_high_water = delay_queue_high_water_;
  result.mean_running_ratio =
      running_time_ > 0.0 ? running_ratio_integral_ / running_time_ : 1.0;
  result.per_task = per_task_;
  if (options_.record_trace) {
    trace_.check_invariants();
    result.trace = std::move(trace_);
  }
  return result;
}

}  // namespace

Engine::Engine(sched::TaskSet tasks, power::ProcessorConfig processor,
               SchedulerPolicy policy, exec::ExecModelPtr exec_model)
    : tasks_(std::move(tasks)),
      processor_(std::move(processor)),
      policy_(std::move(policy)),
      exec_model_(std::move(exec_model)) {
  LPFPS_CHECK_MSG(!tasks_.empty(), "engine needs at least one task");
  tasks_.validate();
  processor_.validate();
  policy_.validate();
}

SimulationResult Engine::run(const EngineOptions& options) const {
  Simulation simulation(tasks_, processor_, policy_, exec_model_, options);
  return simulation.run();
}

SimulationResult simulate(const sched::TaskSet& tasks,
                          const power::ProcessorConfig& processor,
                          const SchedulerPolicy& policy,
                          const exec::ExecModelPtr& exec_model,
                          const EngineOptions& options) {
  const Engine engine(tasks, processor, policy, exec_model);
  return engine.run(options);
}

double normalized_power(const sched::TaskSet& tasks,
                        const power::ProcessorConfig& processor,
                        const SchedulerPolicy& policy,
                        const exec::ExecModelPtr& exec_model,
                        const EngineOptions& options) {
  const SimulationResult fps = simulate(
      tasks, processor, SchedulerPolicy::fps(), exec_model, options);
  const SimulationResult other =
      simulate(tasks, processor, policy, exec_model, options);
  LPFPS_CHECK(fps.average_power > 0.0);
  return other.average_power / fps.average_power;
}

}  // namespace lpfps::core
