#include "core/speed_ratio.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/float_compare.h"
#include "power/speed_profile.h"

namespace lpfps::core {

Ratio heuristic_ratio(Work remaining, Time window) {
  LPFPS_CHECK(window > 0.0);
  remaining = snap_nonnegative(remaining);
  LPFPS_CHECK(remaining >= 0.0);
  if (remaining >= window) return 1.0;
  if (remaining == 0.0) return 0.0;
  return remaining / window;
}

Ratio optimal_ratio(Work remaining, Time window, double rho) {
  return optimal_ratio_to_target(remaining, window, rho, 1.0);
}

Ratio optimal_ratio_to_target(Work remaining, Time window, double rho,
                              Ratio target) {
  LPFPS_CHECK(window > 0.0 && rho > 0.0);
  LPFPS_CHECK(target > 0.0 && target <= 1.0 + 1e-12);
  remaining = snap_nonnegative(remaining);
  LPFPS_CHECK(remaining >= 0.0);
  // At speeds capped by `target`, the window can hold at most
  // target * window (+ nothing: the plan never exceeds target).
  if (remaining >= target * window) return target;

  // Slowest ratio from which the processor can still ramp back to
  // `target` within the window.
  const double floor = std::max(0.0, target - rho * window);

  // window*r + (target - r)^2/(2 rho) = remaining
  //   <=> r^2 + r(2 rho window - 2 target) + target^2 - 2 rho remaining = 0.
  const double rw = rho * window;
  const double disc =
      rw * rw - 2.0 * rw * target + 2.0 * rho * remaining;
  double r = 0.0;
  if (disc < 0.0) {
    // Even the slowest feasible plan holds more than `remaining` work;
    // the floor is the best (slowest) safe choice.
    r = floor;
  } else {
    r = target - rw + std::sqrt(disc);
  }
  return std::clamp(r, floor, static_cast<double>(target));
}

Work plan_work_capacity(Ratio ratio, Time window, double rho) {
  return power::plan_capacity(ratio, window, rho);
}

bool theorem1_applies(Work remaining, Time window) {
  return window > 0.0 && window > remaining;
}

}  // namespace lpfps::core
