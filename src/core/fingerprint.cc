#include "core/fingerprint.h"

namespace lpfps::core {

std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                          std::uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t hash) {
  return fnv1a_bytes(text.data(), text.size(), hash);
}

std::string hex64(std::uint64_t digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

}  // namespace lpfps::core
