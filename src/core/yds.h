// YDS — the optimal (clairvoyant, offline) voltage schedule of Yao,
// Demers, and Shenker, "A scheduling model for reduced CPU energy",
// FOCS 1995: the paper's reference [14] and the theoretical floor for
// every DVS policy in this library.
//
// Given jobs with release times, deadlines, and (actual) work, YDS
// repeatedly finds the *critical interval* — the window [a, b]
// maximizing intensity g = (sum of work of jobs contained in [a, b]) /
// (b - a) — runs exactly those jobs there at constant speed g under
// EDF, removes them, collapses the interval, and recurses.  The result
// minimizes total energy for any convex power-speed curve, so
//
//     yds_energy(...) <= energy of LPFPS / AVR / static / anything
//
// for the *same* actual execution times (ignoring power-down and
// transition overheads, which only widen the gap).  bench_yds_bound
// reports how close each policy comes to this floor.
//
// Complexity: O(J^2) intervals examined per critical-interval round and
// at most J rounds — fine for the hyperperiod job counts of the paper's
// workloads (tens to a few thousand jobs).
#pragma once

#include <vector>

#include "common/units.h"
#include "exec/exec_model.h"
#include "power/power_model.h"
#include "sched/task_set.h"

namespace lpfps::core {

/// One piece of work for the offline scheduler.
struct YdsJob {
  Time release = 0.0;
  Time deadline = 0.0;
  Work work = 0.0;  ///< Full-speed-equivalent microseconds.
};

/// A maximal interval of constant planned speed.  Speeds are in
/// work-units per microsecond: 1.0 is the full clock; feasible inputs
/// (EDF-schedulable at full speed) always yield speeds <= 1.
struct SpeedInterval {
  Time begin = 0.0;
  Time end = 0.0;
  double speed = 0.0;
};

/// The YDS optimal speed profile for `jobs` (need not be sorted).
/// Returned intervals are disjoint, ordered, and cover exactly the time
/// where work is scheduled (gaps are zero-speed idle).  Throws on
/// malformed jobs (deadline <= release, negative work).
std::vector<SpeedInterval> yds_schedule(std::vector<YdsJob> jobs);

/// Max intensity over all intervals == the speed of the first critical
/// interval.  The job set is EDF-feasible on a unit-speed processor iff
/// this is <= 1.
double yds_max_intensity(const std::vector<YdsJob>& jobs);

/// Energy of executing the profile on `model`, clamping each interval's
/// speed to the processor's [min_ratio, 1] range (speeds below the
/// slowest clock run at min_ratio and idle the remainder at zero cost —
/// still a valid lower bound).  `horizon` scales nothing; it is only
/// used to compute average power.
Energy yds_energy(const std::vector<SpeedInterval>& schedule,
                  const power::PowerModel& model, Ratio min_ratio);

/// Expands a periodic task set into the jobs released in [0, horizon),
/// with actual work drawn from `exec_model` (or WCET when null) using
/// the engine's per-job sampling order so results are seed-comparable.
std::vector<YdsJob> jobs_from_task_set(const sched::TaskSet& tasks,
                                       Time horizon,
                                       const exec::ExecModelPtr& exec_model,
                                       std::uint64_t seed);

}  // namespace lpfps::core
