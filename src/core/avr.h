// Average Rate Heuristic (AVR) baseline — Yao, Demers, Shenker [14],
// as discussed in the paper's §2.2.
//
// AVR assigns each job an average-rate requirement C_j / (d_j - a_j)
// and, at any instant, runs the earliest-deadline available job at a
// speed equal to the sum of the average rates of all jobs whose
// [arrival, deadline] window contains the instant.  For strictly
// periodic tasks with deadline == period the windows tile time exactly,
// so the AVR speed is the constant sum_i C_i / T_i = U: AVR degenerates
// to EDF at a fixed clock ratio of U (quantized up to an available
// frequency).  The paper's criticism — the rates are computed from
// WCETs, so AVR cannot reclaim slack when actual execution times vary —
// is directly measurable against LPFPS in bench_baselines.
#pragma once

#include <cstdint>

#include "core/result.h"
#include "exec/exec_model.h"
#include "power/processor.h"
#include "sched/task_set.h"

namespace lpfps::core {

struct AvrOptions {
  Time horizon = 0.0;  ///< Required.
  std::uint64_t seed = 1;
  bool throw_on_miss = true;
};

/// Simulates AVR (EDF at the constant quantized-U clock) and accounts
/// energy on the same processor model as the engine: run power at the
/// AVR ratio, NOP idle at the AVR ratio.  Requires implicit deadlines
/// and U <= 1.
SimulationResult simulate_avr(const sched::TaskSet& tasks,
                              const power::ProcessorConfig& processor,
                              const exec::ExecModelPtr& exec_model,
                              const AvrOptions& options);

/// The constant speed AVR selects for a periodic implicit-deadline set:
/// its utilization, quantized up to an available frequency.
Ratio avr_ratio(const sched::TaskSet& tasks,
                const power::FrequencyTable& frequencies);

}  // namespace lpfps::core
