#include "core/static_slowdown.h"

#include <cmath>

#include "common/check.h"
#include "sched/analysis.h"

namespace lpfps::core {

sched::TaskSet scale_to_ratio(const sched::TaskSet& tasks, Ratio ratio) {
  LPFPS_CHECK(ratio > 0.0 && ratio <= 1.0 + 1e-12);
  sched::TaskSet scaled = tasks;
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(scaled.size()); ++i) {
    sched::Task& t = scaled.at(i);
    t.wcet /= ratio;
    t.bcet /= ratio;
    LPFPS_CHECK_MSG(t.wcet <= static_cast<double>(t.deadline),
                    t.name + ": WCET at this ratio exceeds the deadline");
  }
  return scaled;
}

bool schedulable_at_ratio(const sched::TaskSet& tasks, Ratio ratio) {
  // A scaled WCET above its deadline is a trivially infeasible ratio,
  // not a contract violation.
  for (const sched::Task& t : tasks.tasks()) {
    if (t.wcet / ratio > static_cast<double>(t.deadline)) return false;
  }
  return sched::is_schedulable_rta(scale_to_ratio(tasks, ratio));
}

std::optional<Ratio> min_feasible_static_ratio(
    const sched::TaskSet& tasks,
    const power::FrequencyTable& frequencies) {
  tasks.validate();
  if (!sched::is_schedulable_rta(tasks)) return std::nullopt;

  // Utilization is a hard floor: below U the processor cannot keep up
  // regardless of priorities.
  const double floor = tasks.utilization();

  if (!frequencies.is_continuous()) {
    for (const MegaHertz level : frequencies.levels()) {
      const Ratio ratio = frequencies.ratio_of(level);
      if (ratio < floor) continue;
      if (schedulable_at_ratio(tasks, ratio)) return ratio;
    }
    return 1.0;  // Schedulable at full speed by the check above.
  }

  const Ratio lowest = frequencies.f_min() / frequencies.f_max();
  Ratio lo = std::max(lowest, floor);
  if (schedulable_at_ratio(tasks, lo)) return lo;
  Ratio hi = 1.0;
  // Invariant: infeasible at lo, feasible at hi.
  while (hi - lo > 1e-6) {
    const Ratio mid = (lo + hi) / 2.0;
    if (schedulable_at_ratio(tasks, mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace lpfps::core
