#include "core/avr.h"

#include <stdexcept>

#include "common/check.h"
#include "common/float_compare.h"
#include "sched/edf.h"

namespace lpfps::core {

Ratio avr_ratio(const sched::TaskSet& tasks,
                const power::FrequencyTable& frequencies) {
  LPFPS_CHECK_MSG(tasks.implicit_deadlines(),
                  "AVR reduction to constant speed needs D == T");
  const double u = tasks.utilization();
  LPFPS_CHECK_MSG(approx_le(u, 1.0), "AVR needs U <= 1");
  return frequencies.quantize_up(u);
}

SimulationResult simulate_avr(const sched::TaskSet& tasks,
                              const power::ProcessorConfig& processor,
                              const exec::ExecModelPtr& exec_model,
                              const AvrOptions& options) {
  LPFPS_CHECK(options.horizon > 0.0);
  processor.validate();
  const Ratio ratio = avr_ratio(tasks, processor.frequencies);

  // EDF at constant speed `ratio` is EDF at full speed with all
  // execution times stretched by 1/ratio; drive the reference EDF
  // kernel that way and convert the trace's time totals into energy.
  Rng rng(options.seed);
  sched::EdfKernel kernel(tasks);
  if (exec_model != nullptr) {
    // The kernel samples per (task, instance); Rng is shared so the
    // draw sequence matches the engine's for identical seeds.
    kernel.set_exec_time_provider(
        [&tasks, exec_model, &rng, ratio](TaskIndex task,
                                          std::int64_t) -> Work {
          return exec_model->sample(tasks[task], rng) / ratio;
        });
  } else {
    kernel.set_exec_time_provider(
        [&tasks, ratio](TaskIndex task, std::int64_t) -> Work {
          return tasks[task].wcet / ratio;
        });
  }

  const sched::KernelResult raw = kernel.run(options.horizon);
  if (raw.deadline_misses > 0 && options.throw_on_miss) {
    throw std::runtime_error("AVR missed " +
                             std::to_string(raw.deadline_misses) +
                             " deadline(s)");
  }

  const power::PowerModel power_model = processor.make_power_model();
  const Time busy =
      raw.trace.time_in_mode(sim::ProcessorMode::kRunning);
  const Time idle =
      raw.trace.time_in_mode(sim::ProcessorMode::kIdleBusyWait);

  SimulationResult result;
  result.policy_name = "AVR";
  result.simulated_time = options.horizon;
  result.by_mode[static_cast<std::size_t>(sim::ProcessorMode::kRunning)] = {
      busy * power_model.run_power(ratio), busy};
  result.by_mode[static_cast<std::size_t>(
      sim::ProcessorMode::kIdleBusyWait)] = {
      idle * power_model.idle_nop_power(ratio), idle};
  result.total_energy = busy * power_model.run_power(ratio) +
                        idle * power_model.idle_nop_power(ratio);
  result.average_power = result.total_energy / options.horizon;
  result.jobs_completed =
      static_cast<int>(raw.trace.jobs().size());
  result.deadline_misses = raw.deadline_misses;
  result.context_switches = raw.context_switches;
  result.scheduler_invocations = raw.scheduler_invocations;
  result.mean_running_ratio = ratio;
  return result;
}

}  // namespace lpfps::core
