// Static slowdown: the strongest *non-adaptive* DVS baseline.
//
// The paper's §2.2 discusses static scheduling methods [14-16] that fix
// processor speeds offline assuming WCET execution.  For fixed-priority
// periodic tasks the natural static policy is a single constant clock
// ratio — the slowest available frequency at which the task set is
// still schedulable by exact response-time analysis with every WCET
// inflated by 1/ratio.  LPFPS should beat it exactly when execution
// times vary (the static schedule cannot reclaim dynamic slack), which
// is the paper's §2.2 criticism; bench_baselines quantifies it.
#pragma once

#include <optional>

#include "power/frequency.h"
#include "sched/task_set.h"

namespace lpfps::core {

/// The task set scaled to run at `ratio`: every WCET (and BCET)
/// multiplied by 1/ratio.  Periods, deadlines, phases, priorities are
/// unchanged.  Throws if any scaled WCET exceeds its deadline.
sched::TaskSet scale_to_ratio(const sched::TaskSet& tasks, Ratio ratio);

/// True if the set remains RTA-schedulable when run at `ratio`.
bool schedulable_at_ratio(const sched::TaskSet& tasks, Ratio ratio);

/// The smallest available frequency ratio at which the set is still
/// schedulable (exact RTA), or nullopt if it is unschedulable even at
/// full speed.  For a continuous table the ratio is found by bisection
/// to 1e-6; for discrete tables by scanning levels upward.
std::optional<Ratio> min_feasible_static_ratio(
    const sched::TaskSet& tasks, const power::FrequencyTable& frequencies);

}  // namespace lpfps::core
