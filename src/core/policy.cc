#include "core/policy.h"

#include "common/check.h"

namespace lpfps::core {

const char* to_string(RatioMethod method) {
  switch (method) {
    case RatioMethod::kNone:
      return "none";
    case RatioMethod::kHeuristic:
      return "heuristic";
    case RatioMethod::kOptimal:
      return "optimal";
  }
  return "?";
}

const char* to_string(IdleMethod method) {
  switch (method) {
    case IdleMethod::kBusyWait:
      return "busy-wait";
    case IdleMethod::kExactPowerDown:
      return "exact-power-down";
    case IdleMethod::kTimeoutShutdown:
      return "timeout-shutdown";
  }
  return "?";
}

SchedulerPolicy SchedulerPolicy::fps() {
  return SchedulerPolicy{"FPS", RatioMethod::kNone, IdleMethod::kBusyWait,
                         0.0};
}

SchedulerPolicy SchedulerPolicy::lpfps() {
  return SchedulerPolicy{"LPFPS", RatioMethod::kHeuristic,
                         IdleMethod::kExactPowerDown, 0.0};
}

SchedulerPolicy SchedulerPolicy::lpfps_optimal() {
  return SchedulerPolicy{"LPFPS-opt", RatioMethod::kOptimal,
                         IdleMethod::kExactPowerDown, 0.0};
}

SchedulerPolicy SchedulerPolicy::lpfps_dvs_only() {
  return SchedulerPolicy{"LPFPS-dvs", RatioMethod::kHeuristic,
                         IdleMethod::kBusyWait, 0.0};
}

SchedulerPolicy SchedulerPolicy::lpfps_powerdown_only() {
  return SchedulerPolicy{"LPFPS-pd", RatioMethod::kNone,
                         IdleMethod::kExactPowerDown, 0.0};
}

SchedulerPolicy SchedulerPolicy::fps_timeout_shutdown(Time timeout) {
  LPFPS_CHECK(timeout >= 0.0);
  SchedulerPolicy policy{"FPS-timeout", RatioMethod::kNone,
                         IdleMethod::kTimeoutShutdown, timeout};
  return policy;
}

SchedulerPolicy SchedulerPolicy::static_slowdown(Ratio ratio) {
  SchedulerPolicy policy{"Static-" + std::to_string(ratio),
                         RatioMethod::kNone, IdleMethod::kExactPowerDown,
                         0.0, ratio};
  policy.validate();
  return policy;
}

SchedulerPolicy SchedulerPolicy::lpfps_hybrid(Ratio ratio) {
  SchedulerPolicy policy{"Hybrid-" + std::to_string(ratio),
                         RatioMethod::kHeuristic,
                         IdleMethod::kExactPowerDown, 0.0, ratio};
  policy.validate();
  return policy;
}

void SchedulerPolicy::validate() const {
  LPFPS_CHECK(!name.empty());
  LPFPS_CHECK(shutdown_timeout >= 0.0);
  LPFPS_CHECK(static_ratio > 0.0 && static_ratio <= 1.0 + 1e-12);
}

}  // namespace lpfps::core
