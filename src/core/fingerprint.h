// FNV-1a fingerprinting — the shared hashing machinery behind every
// "is this state one we have seen before?" question in the repository.
//
// The steady-state cycle detector compares full scheduler states
// (core/sim_state.h) for exact equality; the golden-equivalence suite
// pins engine behavior by hashing canonical CSV renderings; and the
// admission service (src/admission/) memoizes schedulability decisions
// keyed on task-set fingerprints.  All three reduce byte streams to
// 64-bit digests the same way: FNV-1a, chosen for its trivial
// incremental form (fold one byte at a time) and stable cross-platform
// output — a digest written into a golden file or a bench baseline on
// one machine compares equal on every other.
//
// Digests are identifiers, not proofs: two different states can collide.
// Callers that must not act on a collision keep the canonical bytes
// alongside the digest and verify on match (the admission cache does;
// see admission/cache.h), or use the digest only as an index into an
// exact comparison (the golden CSV files store the hashed text's
// provenance in git).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace lpfps::core {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds `size` bytes into `hash` (FNV-1a).  Chain calls to fingerprint
/// a composite structure; start from kFnvOffsetBasis.
std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                          std::uint64_t hash = kFnvOffsetBasis);

/// FNV-1a of a text buffer (the golden-equivalence hashes).
std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t hash = kFnvOffsetBasis);

/// Incremental FNV-1a accumulator for heterogeneous records.  Scalars
/// are folded as their in-memory byte patterns (doubles by bit pattern,
/// so +0.0 and -0.0 differ — canonicalize upstream if that matters);
/// strings fold their length first so {"ab","c"} and {"a","bc"} hash
/// differently.
class FnvHasher {
 public:
  FnvHasher& mix_bytes(const void* data, std::size_t size) {
    hash_ = fnv1a_bytes(data, size, hash_);
    return *this;
  }
  FnvHasher& mix(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return mix_bytes(&bits, sizeof(bits));
  }
  FnvHasher& mix(std::int64_t value) { return mix_bytes(&value, sizeof(value)); }
  FnvHasher& mix(std::uint64_t value) { return mix_bytes(&value, sizeof(value)); }
  FnvHasher& mix(std::int32_t value) { return mix_bytes(&value, sizeof(value)); }
  FnvHasher& mix(std::string_view text) {
    mix(static_cast<std::uint64_t>(text.size()));
    return mix_bytes(text.data(), text.size());
  }

  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffsetBasis;
};

/// `digest` as 16 lowercase hex characters (the golden-file rendering).
std::string hex64(std::uint64_t digest);

}  // namespace lpfps::core
