// Outcome of one simulated run of a policy over a task set.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "power/energy.h"
#include "sim/trace.h"

namespace lpfps::core {

struct SimulationResult {
  std::string policy_name;
  Time simulated_time = 0.0;
  Energy total_energy = 0.0;
  /// total_energy / simulated_time, normalized to full power == 1.
  double average_power = 0.0;

  /// Per-mode (energy, time) — indexed by sim::ProcessorMode.
  std::array<power::ModeTotals, 5> by_mode{};

  int jobs_completed = 0;
  int deadline_misses = 0;  ///< Non-zero only with throw_on_miss=false.
  int context_switches = 0;
  int scheduler_invocations = 0;
  int speed_changes = 0;  ///< Ramp initiations (down or up).
  int power_downs = 0;    ///< Power-down mode entries.
  int dvs_slowdowns = 0;  ///< DVS slowdown plans activated (L16-L20).
  /// Deepest the ready set ever got (run queue + active task) — how much
  /// simultaneous released work the scheduler had to juggle.
  int run_queue_high_water = 0;
  /// Deepest the delay queue ever got at a scheduler invocation.
  int delay_queue_high_water = 0;

  /// Time-weighted mean speed ratio while executing task work.
  double mean_running_ratio = 1.0;

  /// Fault detection / containment counters (EngineOptions::faults and
  /// ::containment; all zero when neither is configured).  Excluded
  /// from io::result_csv_row — the pre-fault row format is golden-hashed
  /// — and exported via io::result_fault_csv_row / bench JSON instead.
  int overruns_detected = 0;      ///< WCET-budget exhaustions observed.
  int ramp_faults_detected = 0;   ///< Plans that returned to base late.
  int late_wakeups_detected = 0;  ///< Wake timers that fired late.
  int jobs_killed = 0;            ///< Jobs aborted at their budget.
  int jobs_throttled = 0;         ///< Jobs suspended to their next window.
  /// Releases *displaced* by kill/throttle containment: enforcement
  /// windows an overrunning job consumed, forfeited when the task is
  /// requeued.  Not a scheduling decision — for deliberate weakly-hard
  /// policy skips see jobs_skipped_weakly.
  int jobs_skipped = 0;
  int safe_mode_entries = 0;      ///< Safe-mode episodes entered.

  /// Weakly-hard governor counters (EngineOptions::weakly_hard,
  /// docs/WEAKLY_HARD.md); all zero when the governor is disarmed.
  /// Excluded from io::result_csv_row like the fault counters above;
  /// exported via io::result_fault_csv_row / bench JSON / AUDIT meta.
  int jobs_skipped_weakly = 0;  ///< Jobs skipped at release by policy.
  int mk_violations = 0;  ///< Settled k-windows that fell below m met.
  /// Per-task minimum over settled windows of (met jobs in window - m),
  /// indexed like the TaskSet; negative entries are (m,k) violations.
  /// INT_MAX marks hard tasks.  Empty when the governor is disarmed.
  std::vector<int> weakly_hard_worst_slack;

  /// Steady-state fast-forward statistics (EngineOptions::cycle_detection).
  /// These describe how the result was *obtained*, not what it contains,
  /// so they are deliberately excluded from io::result_csv_row — a
  /// fast-forwarded run and its fully simulated twin must stay
  /// row-for-row identical.
  std::int64_t cycles_detected = 0;   ///< Whole hyperperiods skipped.
  Time fast_forwarded_time = 0.0;     ///< Simulated time covered by replay.
  std::int64_t fingerprint_checks = 0;  ///< Boundary fingerprints taken.
  double fingerprint_seconds = 0.0;   ///< Wall time spent fingerprinting.

  /// Per-task execution energy and processor time, indexed like the
  /// TaskSet (idle/power-down/wake energy is not attributed to tasks).
  /// Lets analyses answer the paper's §4 question — *which* task's
  /// stretching produces the saving — directly.
  std::vector<power::ModeTotals> per_task;

  /// Recorded only when EngineOptions::record_trace is set.
  std::optional<sim::Trace> trace;

  power::ModeTotals mode(sim::ProcessorMode m) const {
    return by_mode[static_cast<std::size_t>(m)];
  }

  /// Multi-line human-readable summary (used by examples).
  std::string summary() const;
};

}  // namespace lpfps::core
