// The LPFPS simulation engine.
//
// Executes a SchedulerPolicy over a periodic task set on the variable
// voltage processor model, implementing the scheduler of the paper's
// Figure 4:
//
//   L1-L4   on any scheduler invocation below full speed, first ramp the
//           clock/voltage back to maximum and exit; the scheduler
//           re-enters when the transition completes;
//   L5-L7   move due tasks from the delay queue to the run queue;
//   L8-L11  preempt the active task if a higher-priority task arrived;
//   L12-L15 run queue empty and no active task: set the wake-up timer to
//           (next release - wakeup delay) and enter power-down;
//   L16-L20 run queue empty with an active task: compute the speed ratio
//           (heuristic eq. 3 or optimal eq. 2), quantize *up* to the
//           next available frequency, and slow down, scheduling a
//           just-in-time ramp back to full speed.
//
// One deliberate strengthening over the paper's text: the slowdown
// window is capped at min(t_a, active task's absolute deadline).  The
// paper uses t_a (next release) alone, which is unsafe when the next
// release of every sleeping task lies beyond the active task's own
// deadline (possible even with deadline == period; see
// tests/core/engine_safety_test.cc).  With the cap, LPFPS preserves
// exactly the guarantees of the underlying fixed-priority schedule.
//
// Timing model details:
//  * the processor executes through frequency transitions (ramps) at the
//    instantaneous speed (paper §3.3 / [20]);
//  * ramps change the speed ratio linearly at rate `ramp_rate` per us;
//  * power-down wake-up takes wakeup_cycles at f_max and burns full
//    power; the timer is set early by that amount (L14).
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "core/result.h"
#include "exec/exec_model.h"
#include "faults/faults.h"
#include "power/processor.h"
#include "sched/queues.h"
#include "sched/task_set.h"
#include "weakly_hard/governor.h"

namespace lpfps::core {

/// Weakly-hard scheduling configuration (docs/WEAKLY_HARD.md).  Inert
/// unless the task set declares weakly-hard constraints *and* the
/// policy is not kNever — the engine stays bit-identical to the hard
/// engine otherwise (pinned differentially).
struct WeaklyHardOptions {
  /// When the governor spends permitted skips.  The default kOverload
  /// degrades only while the overload latch is raised: from t = 0 on
  /// sets whose hard RTA fails (structural overload), and from the
  /// first predicted miss / detected overrun / actual miss until the
  /// next idle instant otherwise.
  weakly_hard::SkipPolicy policy = weakly_hard::SkipPolicy::kOverload;
  /// Skip-aware DVS (skip-to-slack conversion): slowdown windows extend
  /// past arrivals whose jobs the governor will certainly skip, and
  /// such releases are consumed without ramping back to base speed —
  /// a granted skip's reclaimed demand becomes a deeper slowdown.
  /// Without it, skips shed the same load but every arrival still
  /// interrupts the plan (plain LPFPS energy behavior).
  bool skip_dvs = false;
};

struct EngineOptions {
  Time horizon = 0.0;  ///< Required: simulate [0, horizon).
  std::uint64_t seed = 1;
  bool record_trace = false;
  /// Throw std::runtime_error on a deadline miss (hard real-time default)
  /// instead of recording it in the result.  Misses are detected when a
  /// job *completes* after its deadline; a job still unfinished at the
  /// horizon is not counted (size horizons in whole hyperperiods, or
  /// long enough for backlog to drain, when probing overload).
  bool throw_on_miss = true;
  /// Kernel overhead charged per preemptive context switch (save +
  /// restore combined), in full-speed-equivalent microseconds.  The cost
  /// is added to the incoming job's demand, so it executes at the
  /// prevailing clock ratio like real kernel code would.  Non-zero costs
  /// are unmodelled by the schedulability analysis: inflate WCETs
  /// accordingly or expect (deliberate) deadline throws under overload.
  Work context_switch_cost = 0.0;
  /// Per-task maximum release jitter (empty = none; otherwise one entry
  /// per task).  Each job becomes visible to the scheduler at
  /// release + Uniform(0, jitter_i); deadlines stay relative to the
  /// nominal release (the standard jitter model of
  /// sched::response_time_extended).  The scheduler's delay queue still
  /// predicts the *nominal* release — a safe lower bound on the actual
  /// arrival — and LPFPS conservatively abstains from DVS and
  /// power-down while a released-but-not-yet-visible job is in flight.
  /// Note: the independent schedule validator assumes zero jitter.
  std::vector<Time> release_jitter;
  /// Wake-up timer granularity in microseconds (0 = a free-running
  /// comparator, the paper's implicit assumption).  Tick-based kernels
  /// can only program wake-ups on a tick grid: the timer is rounded
  /// *down* to a multiple of the granularity (waking early is safe,
  /// late is not), shaving the tail off every power-down interval.
  Time timer_granularity = 0.0;
  /// Opt-in observer called with a QueueSnapshot after every scheduler
  /// invocation (the engine-side twin of FixedPriorityKernel's hook).
  /// Building a snapshot copies both scheduler queues, so the default —
  /// no hook — keeps the hot path snapshot-free; install one only for
  /// inspection, debugging, or queue-shape tests.
  sched::InvocationHook invocation_hook;
  /// Steady-state fast-forward: fingerprint the full scheduler state at
  /// each hyperperiod boundary and, once two consecutive boundaries
  /// match, replay the proven cycle arithmetically instead of
  /// re-simulating it.  Output (result CSV rows, coalesced traces,
  /// audits) is bit-identical to the full simulation; only wall-clock
  /// time changes.  Deterministic execution models (wcet/bcet) converge
  /// after the first hyperperiod; stochastic models and jittered or
  /// tick-granular runs never match and pay one fingerprint per
  /// hyperperiod at most.  The LPFPS_CYCLE environment variable
  /// (0/off/false) force-disables it without touching call sites.
  bool cycle_detection = true;
  /// Fault injection (docs/ROBUSTNESS.md).  Overrun specs wrap the
  /// execution-time model in exec::FaultyExecModel internally — this
  /// plan is the single configuration point; do not pre-wrap the model
  /// yourself.  Ramp and wakeup faults perturb the engine's physical
  /// layer while every scheduling computation keeps using the spec
  /// values.  A default-constructed (empty) plan leaves the engine
  /// bit-identical to a fault-free build; fault runs are ineligible for
  /// steady-state cycle detection.
  faults::FaultPlan faults;
  /// Detection and containment: budget enforcement at WCET exhaustion
  /// (throttle/kill) and the safe-mode fallback that runs plain FPS
  /// from the first detected anomaly until the next idle instant.
  /// Enabling containment without faults changes nothing observable
  /// (in-contract jobs never exhaust their budget), which the
  /// differential test in tests/core/engine_fault_injection_test.cc
  /// pins bit-for-bit.  kThrottle and kKill displace overrun windows,
  /// so pair them with throw_on_miss=false when probing overload.
  faults::ContainmentPolicy containment;
  /// Weakly-hard skip governor (docs/WEAKLY_HARD.md).  Armed only when
  /// the task set declares (m,k)/skip constraints and the policy is not
  /// kNever; disarmed runs are bit-identical to the hard engine.
  /// Governor-armed runs are ineligible for steady-state cycle
  /// detection (the skip history is not part of the state fingerprint).
  /// Pair with throw_on_miss=false when probing overload.
  WeaklyHardOptions weakly_hard;
};

class Engine {
 public:
  /// `tasks` must validate (unique priorities assigned).  `exec_model`
  /// may be null, in which case every job takes its WCET.
  Engine(sched::TaskSet tasks, power::ProcessorConfig processor,
         SchedulerPolicy policy, exec::ExecModelPtr exec_model);

  SimulationResult run(const EngineOptions& options) const;

 private:
  sched::TaskSet tasks_;
  power::ProcessorConfig processor_;
  SchedulerPolicy policy_;
  exec::ExecModelPtr exec_model_;
};

/// The LPFPS_CYCLE runtime gate: false iff the environment variable is
/// set to 0/off/false.  The engine re-reads it at every begin(); this
/// accessor lets a caller hoist one read for a whole section of work
/// (bake the verdict into EngineOptions::cycle_detection) so runs
/// started at different times cannot disagree about the gate mid-bench.
bool cycle_detection_env_enabled();

/// One-call convenience wrapper.
SimulationResult simulate(const sched::TaskSet& tasks,
                          const power::ProcessorConfig& processor,
                          const SchedulerPolicy& policy,
                          const exec::ExecModelPtr& exec_model,
                          const EngineOptions& options);

/// Runs `policy` and the FPS baseline under identical seeds and returns
/// policy_average_power / fps_average_power (the paper's normalized
/// power metric of Figure 8).
double normalized_power(const sched::TaskSet& tasks,
                        const power::ProcessorConfig& processor,
                        const SchedulerPolicy& policy,
                        const exec::ExecModelPtr& exec_model,
                        const EngineOptions& options);

}  // namespace lpfps::core
