#include "core/result.h"

#include <iomanip>
#include <sstream>

namespace lpfps::core {

std::string SimulationResult::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "policy            : " << policy_name << "\n"
     << "simulated time    : " << simulated_time << " us\n"
     << "total energy      : " << total_energy << " (full-power * us)\n"
     << "average power     : " << average_power << " (of full power)\n"
     << "jobs completed    : " << jobs_completed << "\n"
     << "deadline misses   : " << deadline_misses << "\n"
     << "context switches  : " << context_switches << "\n"
     << "speed changes     : " << speed_changes << "\n"
     << "power-down entries: " << power_downs << "\n"
     << "DVS slowdowns     : " << dvs_slowdowns << "\n"
     << "queue high water  : run " << run_queue_high_water << ", delay "
     << delay_queue_high_water << "\n"
     << "mean running ratio: " << mean_running_ratio << "\n";
  if (overruns_detected > 0 || ramp_faults_detected > 0 ||
      late_wakeups_detected > 0 || safe_mode_entries > 0) {
    os << "faults detected   : " << overruns_detected << " overruns, "
       << ramp_faults_detected << " ramp faults, " << late_wakeups_detected
       << " late wakeups\n"
       << "containment       : " << jobs_killed << " killed, "
       << jobs_throttled << " throttled, " << jobs_skipped
       << " releases skipped, " << safe_mode_entries
       << " safe-mode entries\n";
  }
  if (cycles_detected > 0) {
    os << "cycles skipped    : " << cycles_detected << " hyperperiods ("
       << fast_forwarded_time << " us fast-forwarded)\n";
  }
  static constexpr const char* kModeNames[5] = {
      "run", "idle-nop", "power-down", "wake-up", "ramping"};
  for (std::size_t i = 0; i < by_mode.size(); ++i) {
    const auto& slot = by_mode[i];
    if (slot.time <= 0.0) continue;
    os << "  " << std::left << std::setw(11) << kModeNames[i]
       << " time=" << std::right << std::setw(14) << slot.time
       << " us  energy=" << std::setw(14) << slot.energy << "\n";
  }
  return os.str();
}

}  // namespace lpfps::core
