// Method bodies of core::SimState — the engine main loop, moved here
// verbatim from engine.cc when the loop was opened up for the fleet
// engine (see sim_state.h for the contract).  Engine::run delegates to
// SimState::run, so this file *is* the reference simulation semantics.
#include "core/sim_state.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/float_compare.h"
#include "core/speed_ratio.h"
#include "power/speed_profile.h"
#include "sched/analysis.h"

namespace lpfps::core {

using namespace detail;

namespace {

}  // namespace

/// LPFPS_CYCLE=0/off/false force-disables steady-state fast-forward
/// regardless of EngineOptions::cycle_detection (the same convention the
/// audit layer uses for LPFPS_AUDIT).
bool cycle_detection_env_enabled() {
  const char* value = std::getenv("LPFPS_CYCLE");
  if (value == nullptr) return true;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "false") != 0;
}

namespace {


/// The begin() validation bundle, shared with SimState::prepare so the
/// fleet's hoisted checks are exactly the per-run ones.
void validate_spec(const sched::TaskSet& tasks,
                   const power::ProcessorConfig& processor,
                   const SchedulerPolicy& policy,
                   const EngineOptions& options) {
  LPFPS_CHECK(options.horizon > 0.0);
  LPFPS_CHECK(options.context_switch_cost >= 0.0);
  LPFPS_CHECK_MSG(options.release_jitter.empty() ||
                      options.release_jitter.size() == tasks.size(),
                  "release_jitter must have one entry per task");
  for (const Time j : options.release_jitter) LPFPS_CHECK(j >= 0.0);
  LPFPS_CHECK(options.timer_granularity >= 0.0);
  options.faults.validate(tasks.size());
  options.containment.validate();
  tasks.validate();
  processor.validate();
  policy.validate();
  if (tasks.has_weakly_hard() &&
      options.weakly_hard.policy != weakly_hard::SkipPolicy::kNever) {
    // Throttling resumes a job across enforcement windows, settling its
    // forfeited windows out of instance order — the governor's history
    // masks (and the auditor's replay) require in-order settlement.
    // Throttling *is* already a weakly-hard degradation mechanism; use
    // kill containment alongside the governor instead.
    LPFPS_CHECK_MSG(
        options.containment.on_overrun != faults::OverrunAction::kThrottle,
        "throttle containment cannot combine with the weakly-hard governor");
  }
}

/// Hard RTA verdict for the structural overload latch: a set that cannot
/// meet every deadline even at full speed is in permanent overload, so
/// the governor degrades from t = 0.  Sets outside the RTA's D <= T
/// domain fall back to the utilization test alone (the dynamic latch
/// still covers them at run time).
bool hard_rta_schedulable(const sched::TaskSet& tasks) {
  if (tasks.utilization() > 1.0) return false;
  for (const sched::Task& t : tasks.tasks()) {
    if (t.deadline > t.period) return true;
  }
  return sched::is_schedulable_rta(tasks);
}

/// The spec-fixed cycle-eligibility gates of setup_cycle_detection (the
/// LPFPS_CYCLE env gate stays at run time): returns the hyperperiod when
/// the spec qualifies, 0 when it does not.  Gate rationale lives at the
/// call site in setup_cycle_detection.
std::int64_t eligible_cycle_hyperperiod(const sched::TaskSet& tasks,
                                        const exec::ExecModelPtr& exec_model,
                                        const EngineOptions& options) {
  if (!options.cycle_detection) return 0;
  if (options.faults.any() || options.containment.enabled()) return 0;
  // The governor's skip history (window masks, overload latch) is not
  // part of the boundary fingerprint, so armed runs must not fast-forward.
  if (tasks.has_weakly_hard() &&
      options.weakly_hard.policy != weakly_hard::SkipPolicy::kNever) {
    return 0;
  }
  for (const Time j : options.release_jitter) {
    if (j > 0.0) return 0;
  }
  if (options.timer_granularity > 0.0) return 0;
  if (options.invocation_hook) return 0;
  if (exec_model != nullptr && exec_model->name() == "trace") return 0;
  std::int64_t hyper = 0;
  try {
    hyper = tasks.hyperperiod();
  } catch (const std::overflow_error&) {
    return 0;  // Mutually-prime periods: no cycle within 64 bits.
  }
  if (hyper <= 0) return 0;
  if (hyper > (std::int64_t{1} << 52)) return 0;
  if (2.0 * static_cast<Time>(hyper) > options.horizon) return 0;
  return hyper;
}

}  // namespace

SimState::SimState(const sched::TaskSet& tasks,
                   const power::ProcessorConfig& processor,
                   const SchedulerPolicy& policy,
                   const exec::ExecModelPtr& exec_model,
                   const EngineOptions& options,
                   const std::mt19937_64* rng_state) {
  reset(tasks, processor, policy, exec_model, options, rng_state);
}

void SimState::reset(const sched::TaskSet& tasks,
                     const power::ProcessorConfig& processor,
                     const SchedulerPolicy& policy,
                     const exec::ExecModelPtr& exec_model,
                     const EngineOptions& options,
                     const std::mt19937_64* rng_state) {
  tasks_ = &tasks;
  processor_ = &processor;
  policy_ = &policy;
  exec_model_ = exec_model;
  options_ = &options;

  // Rng::reseed is bit-identical to fresh construction (see random.h),
  // and the optional re-emplacement rebuilds the power model in place —
  // the accumulator pointer below always refers to this lane's storage.
  // A caller-provided warmed state (Rng::warmed_engine of options.seed)
  // replays the same stream while skipping the seed expansion and the
  // lazy first-block generation.
  if (rng_state != nullptr) {
    rng_.restore(*rng_state);
  } else {
    rng_.reseed(options.seed);
  }
  power_model_.emplace(processor.make_power_model());
  accumulator_.emplace(&*power_model_);
  trace_ = sim::Trace();

  now_ = TimePoint{};
  state_ = CpuState::kIdle;

  // Size every per-task buffer up front: each queue holds at most one
  // entry per task, so after this nothing in the scheduling hot path
  // allocates.  assign() produces the same value-initialized elements a
  // fresh sized construction would; reserve() only ever grows, so a lane
  // rebinding to a smaller task set keeps (and reuses) its capacity.
  run_queue_.clear();
  run_queue_.reserve(tasks.size());
  delay_queue_.clear();
  delay_queue_.reserve(tasks.size());
  jobs_.assign(tasks.size(), JobState{});
  next_instance_.assign(tasks.size(), 0);
  per_task_.assign(tasks.size(), power::ModeTotals{});
  active_ = kNoTask;
  staged_.clear();
  staged_.reserve(tasks.size());

  base_ratio_ = 1.0;
  ratio_ = 1.0;
  ramp_target_ = 1.0;
  reinvoke_after_ramp_ = false;
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
  wake_at_ = kNeverPoint;
  wake_end_ = kNeverPoint;
  sleep_power_fraction_ = 0.0;
  sleep_wake_latency_ = 0.0;
  shutdown_at_ = kNeverPoint;

  detection_enabled_ = options.faults.any() || options.containment.enabled();
  faults_injected_ = options.faults.any();
  overruns_possible_ = options.faults.overruns_enabled();
  ramp_fault_armed_ = options.faults.ramp.enabled();
  // The physical ramp slope.  With no ramp fault this is the exact
  // same double as the spec value, keeping fault-free runs
  // bit-identical; under a fault the scheduler keeps planning with the
  // spec rho while the hardware moves at this one.
  effective_ramp_rate_ =
      ramp_fault_armed_
          ? processor.ramp_rate * options.faults.ramp.rho_factor
          : processor.ramp_rate;
  faulty_model_.reset();
  if (overruns_possible_) {
    std::vector<std::string> names;
    names.reserve(tasks.size());
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks.size()); ++i) {
      names.push_back(tasks[i].name);
    }
    faulty_model_ = std::make_shared<exec::FaultyExecModel>(
        exec_model, options.faults.overruns, std::move(names));
  }
  safe_mode_ = false;
  wake_programmed_ = kNeverPoint;
  overruns_detected_ = 0;
  ramp_faults_detected_ = 0;
  late_wakeups_detected_ = 0;
  jobs_killed_ = 0;
  jobs_throttled_ = 0;
  jobs_skipped_ = 0;
  safe_mode_entries_ = 0;

  // Weakly-hard governor wiring, resolved once: disarmed runs (no
  // weakly-hard tasks, or policy kNever) never touch any of it, keeping
  // them bit-identical to the hard engine.  The structural overload
  // latch needs a validated spec, so begin() computes it.
  weakly_hard_enabled_ =
      tasks.has_weakly_hard() &&
      options.weakly_hard.policy != weakly_hard::SkipPolicy::kNever;
  skip_policy_ = weakly_hard_enabled_ ? options.weakly_hard.policy
                                      : weakly_hard::SkipPolicy::kNever;
  skip_dvs_ = weakly_hard_enabled_ && options.weakly_hard.skip_dvs;
  overload_structural_ = false;
  overload_dynamic_ = false;
  if (weakly_hard_enabled_) governor_.reset(tasks);

  jobs_completed_ = 0;
  deadline_misses_ = 0;
  context_switches_ = 0;
  scheduler_invocations_ = 0;
  speed_changes_ = 0;
  power_downs_ = 0;
  dvs_slowdowns_ = 0;
  run_queue_high_water_ = 0;
  delay_queue_high_water_ = 0;
  running_ratio_integral_ = 0.0;
  running_time_ = 0.0;

  // prev_fingerprint_ / prev_counters_ may carry the previous sim's
  // state; both are gated behind cycle_has_prev_ and overwritten before
  // any read, so clearing them would only cost allocations.
  cycle_armed_ = false;
  cycle_recording_ = false;
  cycle_has_prev_ = false;
  cycle_length_ = 0.0;
  next_boundary_ = kNever;
  jobs_per_cycle_.clear();
  cycle_segments_.clear();
  cycle_jobs_.clear();
  cycles_detected_ = 0;
  fast_forwarded_time_ = 0.0;
  fingerprint_checks_ = 0;
  fingerprint_seconds_ = 0.0;

  horizon_ = kNeverPoint;
  last_now_ = TimePoint{-1.0, 0.0};
  stalled_iterations_ = 0;
}

sim::ProcessorMode SimState::mode_now() const {
  switch (state_) {
    case CpuState::kRunning:
      return sim::ProcessorMode::kRunning;
    case CpuState::kPowerDown:
      return sim::ProcessorMode::kPowerDown;
    case CpuState::kWakeUp:
      return sim::ProcessorMode::kWakeUp;
    case CpuState::kIdle:
      break;
  }
  // Idle splits exactly like advance_to's segment attribution: a ramp in
  // flight is kRamping, a settled clock busy-waits.
  return ratio_ != ramp_target_ ? sim::ProcessorMode::kRamping
                                : sim::ProcessorMode::kIdleBusyWait;
}

void SimState::start_job(TaskIndex index) {
  JobState& state = job(index);
  auto& instance = next_instance_[static_cast<std::size_t>(index)];
  const sched::Task& t = task(index);
  if (state.throttled) {
    // Resuming a throttled job: it keeps its identity (instance,
    // release, deadline) and residual demand; only the enforcement
    // window is new, with a freshly replenished budget.
    state.throttled = false;
    state.window_release = static_cast<Time>(t.phase) +
                           static_cast<Time>(instance * t.period);
    ++instance;
    state.budget_used = 0.0;
    state.overhead = 0.0;
    state.over_budget = false;
    return;
  }
  state.instance = instance++;
  state.release = static_cast<Time>(t.phase) +
                  static_cast<Time>(state.instance * t.period);
  state.window_release = state.release;
  state.executed = 0.0;
  state.budget_used = 0.0;
  state.overhead = 0.0;
  state.over_budget = false;
  state.throttled = false;
  const exec::ExecutionTimeModel* model =
      faulty_model_ != nullptr ? faulty_model_.get() : exec_model_.get();
  if (model != nullptr) {
    state.total_work = model->sample(t, rng_);
    // Running longer than the WCET would void every guarantee; running
    // shorter than the nominal BCET is harmless (BCET only parameterizes
    // execution-time models) and scenario models exploit it.  Injected
    // overruns violate the upper bound by design — that is the lie the
    // containment machinery exists to absorb.
    LPFPS_CHECK_MSG(state.total_work > 0.0 &&
                        (overruns_possible_ ||
                         state.total_work <= t.wcet + kTimeEpsilon),
                    t.name);
  } else {
    state.total_work = t.wcet;
  }
}

Time SimState::next_arrival_for_active() const {
  if (const auto release = delay_queue_.next_release(); release.has_value()) {
    return *release;
  }
  // Single-task system: the processor is free until the task's own next
  // period begins (the enforcement window's end, which coincides with
  // the release for uncontained jobs).
  const JobState& state = jobs_[static_cast<std::size_t>(active_)];
  return state.window_release + static_cast<Time>(task(active_).period);
}

bool SimState::weakly_hard_should_skip(TaskIndex index) const {
  return governor_.should_skip(index, skip_policy_,
                               overload_structural_ || overload_dynamic_);
}

void SimState::note_release_pressure(TaskIndex index) {
  if (overload_structural_ || overload_dynamic_) return;
  if (skip_policy_ != weakly_hard::SkipPolicy::kOverload) return;
  const sched::Task& t = task(index);
  const JobState& released = job(index);
  // Release-time overload probe: the declared demand that must clear
  // before this job's deadline at base speed — its own WCET plus the
  // remaining declared budgets of every strictly-higher-priority job in
  // flight.  Conservative and cheap; the structural latch covers
  // admission-time infeasibility, this catches runtime pile-ups
  // (overrun and containment backlogs) before they turn into misses.
  Work demand = t.wcet;
  const auto add_if_higher = [&](TaskIndex other) {
    const sched::Task& o = task(other);
    if (o.priority >= t.priority) return;
    const JobState& s = jobs_[static_cast<std::size_t>(other)];
    demand += snap_nonnegative(o.wcet + s.overhead - s.executed);
  };
  if (active_ != kNoTask) add_if_higher(active_);
  for (const sched::RunEntry& entry : run_queue_.entries()) {
    add_if_higher(entry.task);
  }
  const Time deadline = released.release + static_cast<Time>(t.deadline);
  if (tp_definitely_greater(after(now_, demand / base_ratio_),
                            at(deadline))) {
    overload_dynamic_ = true;
  }
}

void SimState::skip_released_job(TaskIndex index) {
  const sched::Task& t = task(index);
  JobState& state = job(index);
  if (options_->record_trace) {
    sim::JobRecord record;
    record.task = index;
    record.instance = state.instance;
    record.release = state.release;
    record.absolute_deadline =
        state.release + static_cast<Time>(t.deadline);
    record.completion = now_.absolute();
    record.executed = 0.0;
    record.finished = false;
    record.skipped = true;
    // A skip is a scheduling decision, not a late completion: the miss
    // flag (and counter) stay untouched; the governor's (m,k) ledger
    // carries the QoS accounting instead.
    trace_.add_job(record);
    if (cycle_recording_) cycle_jobs_.push_back({record, now_});
  }
  settle_weakly_hard(index, /*met=*/false, /*skipped=*/true);
  delay_queue_.insert(
      {index, state.window_release + static_cast<Time>(t.period)});
}

void SimState::settle_weakly_hard(TaskIndex index, bool met, bool skipped) {
  if (!weakly_hard_enabled_) return;
  governor_.settle(index, met, skipped);
}

Time SimState::next_arrival_for_active_skip_aware() const {
  // Earliest pending release whose job will actually demand the CPU: a
  // release the governor certainly skips — permission already earned
  // (the task's window history is frozen while it waits in the delay
  // queue) and the overload latch unable to clear before the CPU next
  // idles — defers that task's demand by one period.  Lookahead is a
  // single skip: the skip itself changes the task's window, so nothing
  // further is certain.
  bool any = false;
  Time best = 0.0;
  for (const sched::DelayEntry& entry : delay_queue_.entries()) {
    Time candidate = entry.release_time;
    if (weakly_hard_should_skip(entry.task)) {
      candidate += static_cast<Time>(task(entry.task).period);
    }
    if (!any || candidate < best) {
      best = candidate;
      any = true;
    }
  }
  if (any) return best;
  // Single-task system, as in next_arrival_for_active.
  const JobState& state = jobs_[static_cast<std::size_t>(active_)];
  return state.window_release + static_cast<Time>(task(active_).period);
}

void SimState::try_slowdown() {
  LPFPS_CHECK(active_ != kNoTask);
  LPFPS_CHECK(approx_equal(ratio_, base_ratio_, 1e-12));
  // A released-but-jitter-delayed job can become visible at any moment;
  // the exact-knowledge premise of the slowdown does not hold.
  if (!staged_.empty()) return;
  const sched::Task& t = task(active_);
  const JobState& state = job(active_);

  // Context-switch overhead can push a job's demand past its nominal
  // WCET; the WCET-based slack computation below would then lie, so
  // leave such jobs at base speed.  Under injected overruns the
  // scheduler is no longer omniscient — it knows only E_i against the
  // declared budget C_i (plus tracked kernel overhead), so the test
  // becomes: a job at or past its budget signals an overrun in
  // progress, not slack.
  if (overruns_possible_) {
    if (state.executed >= t.wcet + state.overhead - kTimeEpsilon) return;
  } else if (state.total_work > t.wcet + kTimeEpsilon) {
    return;
  }

  const Time arrival = skip_dvs_ ? next_arrival_for_active_skip_aware()
                                 : next_arrival_for_active();
  // Safety cap (see engine.h): never stretch past the active task's own
  // absolute deadline.
  const Time window_end =
      std::min(arrival, state.release + static_cast<Time>(t.deadline));
  const Time window = span(now_, at(window_end));
  const Work remaining = snap_nonnegative(t.wcet - state.executed);
  // Slack exists only if the remaining worst-case work fits below the
  // base clock inside the window (base_ratio_ == 1 gives the paper's
  // Theorem 1 hypotheses; the hybrid policy measures slack against its
  // static base speed instead).
  if (!(window > 0.0 && remaining < base_ratio_ * window)) return;

  const Ratio desired =
      policy_->dvs == RatioMethod::kOptimal
          ? optimal_ratio_to_target(remaining, window,
                                    processor_->ramp_rate, base_ratio_)
          : heuristic_ratio(remaining, window);
  const Ratio quantized = processor_->frequencies.quantize_up(desired);
  if (quantized >= base_ratio_ - 1e-12) return;

  // Both the down-ramp (now) and the just-in-time up-ramp (before
  // window_end) must fit into the window without overlapping; otherwise
  // the slack is too short to exploit and we stay at base speed.  The
  // paper's Figure 7 discussion covers exactly this short-window regime.
  const Time ramp = (base_ratio_ - quantized) / processor_->ramp_rate;
  const TimePoint up_start{window_end, -ramp};
  if (tp_definitely_greater(after(now_, ramp), up_start)) return;

  ramp_target_ = quantized;
  reinvoke_after_ramp_ = false;
  ++speed_changes_;
  ++dvs_slowdowns_;
  plan_active_ = true;
  plan_up_started_ = false;
  plan_rampup_start_ = up_start;
  plan_end_ = at(window_end);
}

void SimState::enter_power_down() {
  LPFPS_CHECK(state_ == CpuState::kIdle && active_ == kNoTask);
  LPFPS_CHECK(approx_equal(ratio_, base_ratio_, 1e-12));
  // Safe mode runs plain FPS: no power-down until the episode ends at
  // the next idle instant.  The idle branch clears the flag before the
  // idle-policy switch, so this guard is belt-and-braces for the
  // timeout-shutdown path.
  if (safe_mode_) return;
  // An imminent jitter-delayed arrival forbids sleeping: the timer's
  // "exact knowledge" premise does not hold.
  if (!staged_.empty()) return;
  const auto release = delay_queue_.next_release();
  if (!release.has_value()) return;  // Everything in flight is staged.
  // Pick the deepest sleep state whose wake-up fits the known gap
  // (the classic single 5%/10-cycle state unless a hierarchy is
  // configured), then set the timer early by its latency (L14).
  const auto state =
      processor_->deepest_state_for_gap(span(now_, at(*release)));
  if (!state.has_value()) return;  // Gap too short for any state.
  const Time latency =
      state->wakeup_cycles / processor_->frequencies.f_max();
  TimePoint timer{*release, -latency};  // L14.
  if (options_->timer_granularity > 0.0) {
    // Tick-based kernels wake on the grid: round down (early is safe).
    timer = at(std::floor(timer.absolute() / options_->timer_granularity) *
               options_->timer_granularity);
  }
  if (!tp_definitely_greater(timer, now_)) return;  // Too close to sleep.
  state_ = CpuState::kPowerDown;
  wake_at_ = timer;
  wake_programmed_ = timer;
  if (options_->faults.wakeup.enabled() &&
      rng_.uniform(0.0, 1.0) < options_->faults.wakeup.probability) {
    // The timer hardware fires late; wake_programmed_ keeps the spec
    // instant detection compares against when the wake finally lands.
    wake_at_ =
        after(timer, rng_.uniform(0.0, options_->faults.wakeup.max_delay));
  }
  wake_end_ = kNeverPoint;
  sleep_power_fraction_ = state->power_fraction;
  sleep_wake_latency_ = latency;
  shutdown_at_ = kNeverPoint;
  ++power_downs_;
}

void SimState::invoke_scheduler() {
  invoke_scheduler_impl();
  if (options_->invocation_hook) {
    sched::QueueSnapshot snapshot;
    snapshot.time = now_.absolute();
    snapshot.run_queue = run_queue_.entries();
    snapshot.delay_queue = delay_queue_.entries();
    snapshot.active_task = active_;
    snapshot.active_executed =
        active_ == kNoTask ? 0.0 : job(active_).executed;
    options_->invocation_hook(snapshot);
  }
}

bool SimState::consume_releases_under_plan() {
  // Skip-to-slack conversion (docs/WEAKLY_HARD.md): consume due releases
  // the governor skips so they do not tear down the slowdown plan that
  // was sized against the skip-aware arrival.  The first non-skipped due
  // release is handed over exactly as L5-L7 would and ends the plan via
  // the ordinary L1-L4 ramp-up.  Throttle containment is banned while
  // the governor is armed (validate_spec), so every popped entry is a
  // fresh release here.
  while (!delay_queue_.empty() &&
         tp_approx_le(at(delay_queue_.head().release_time), now_)) {
    const sched::DelayEntry due = delay_queue_.pop_head();
    start_job(due.task);
    note_release_pressure(due.task);
    if (weakly_hard_should_skip(due.task)) {
      skip_released_job(due.task);
      continue;
    }
    TimePoint ready = at(job(due.task).release);
    if (!options_->release_jitter.empty()) {
      ready.offset += rng_.uniform(
          0.0,
          options_->release_jitter[static_cast<std::size_t>(due.task)]);
    }
    if (tp_approx_le(ready, now_)) {
      run_queue_.insert({due.task, task(due.task).priority});
    } else {
      staged_.push_back({due.task, ready});
    }
    break;
  }
  bool staged_due = false;
  for (const auto& entry : staged_) {
    if (tp_approx_le(entry.ready, now_)) staged_due = true;
  }
  // Fully handled only if nothing else demands the scheduler right now:
  // the plan continues uninterrupted through the skipped arrivals.
  return run_queue_.empty() && !staged_due && active_ != kNoTask &&
         (delay_queue_.empty() ||
          !tp_approx_le(at(delay_queue_.head().release_time), now_));
}

void SimState::invoke_scheduler_impl() {
  ++scheduler_invocations_;

  // Skip-aware DVS: under an active slowdown plan, arrivals the governor
  // skips are consumed without ramping back to base — the plan keeps
  // running through them.
  if (skip_dvs_ && plan_active_ && active_ != kNoTask &&
      consume_releases_under_plan()) {
    sample_queue_depths();
    return;
  }

  // L1-L4: restore full (base) speed before any decision.
  if (ratio_ < base_ratio_ - 1e-12 || ramp_target_ < base_ratio_ - 1e-12) {
    if (!(ramp_target_ == base_ratio_ && ratio_ < ramp_target_)) {
      // Not already ramping up: redirect toward full speed.
      ramp_target_ = base_ratio_;
      ++speed_changes_;
    }
    reinvoke_after_ramp_ = true;
    return;
  }

  // L5-L7: release due tasks (via the jitter stage when configured).
  while (!delay_queue_.empty() &&
         tp_approx_le(at(delay_queue_.head().release_time), now_)) {
    const sched::DelayEntry due = delay_queue_.pop_head();
    start_job(due.task);
    // Throttle containment is banned while the governor is armed
    // (validate_spec), so every popped entry is a fresh release.
    if (weakly_hard_enabled_) {
      note_release_pressure(due.task);
      if (weakly_hard_should_skip(due.task)) {
        skip_released_job(due.task);
        continue;
      }
    }
    TimePoint ready = at(job(due.task).release);
    if (!options_->release_jitter.empty()) {
      ready.offset += rng_.uniform(
          0.0,
          options_->release_jitter[static_cast<std::size_t>(due.task)]);
    }
    if (tp_approx_le(ready, now_)) {
      run_queue_.insert({due.task, task(due.task).priority});
    } else {
      staged_.push_back({due.task, ready});
    }
  }
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (tp_approx_le(it->ready, now_)) {
      run_queue_.insert({it->task, task(it->task).priority});
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }

  // L8-L11: dispatch / preempt.
  if (active_ == kNoTask) {
    if (!run_queue_.empty()) active_ = run_queue_.pop_head().task;
  } else if (!run_queue_.empty() &&
             run_queue_.head().priority < task(active_).priority) {
    run_queue_.insert({active_, task(active_).priority});
    active_ = run_queue_.pop_head().task;
    ++context_switches_;
    // Kernel save/restore overhead executes ahead of the incoming job's
    // own work, at the prevailing clock.  The budget tracks it too: the
    // overhead is the kernel's own doing, not the job lying.
    job(active_).total_work += options_->context_switch_cost;
    job(active_).overhead += options_->context_switch_cost;
  }

  // L12-L21: power management when the run queue is empty.
  if (active_ != kNoTask) {
    state_ = CpuState::kRunning;
    shutdown_at_ = kNeverPoint;
    if (run_queue_.empty() && policy_->uses_dvs() && !safe_mode_) {
      try_slowdown();
    }
    sample_queue_depths();
    return;
  }

  state_ = CpuState::kIdle;
  sample_queue_depths();
  // An idle instant ends any safe-mode episode: the anomaly's backlog
  // has drained, so DVS and power-down become trustworthy again —
  // including at this very instant (the switch below may sleep).
  safe_mode_ = false;
  // It likewise ends a dynamic overload episode — the backlog that
  // predicted or produced misses is gone.  (The structural latch, a
  // property of the task set, never clears.)
  overload_dynamic_ = false;
  if (delay_queue_.empty()) return;  // No future work at all.
  switch (policy_->idle) {
    case IdleMethod::kBusyWait:
      break;
    case IdleMethod::kExactPowerDown:
      enter_power_down();
      break;
    case IdleMethod::kTimeoutShutdown:
      shutdown_at_ = after(now_, policy_->shutdown_timeout);
      break;
  }
}

void SimState::finish_active_job() {
  LPFPS_CHECK(active_ != kNoTask);
  const sched::Task& t = task(active_);
  JobState& state = job(active_);
  LPFPS_CHECK(approx_ge(state.executed, state.total_work));

  sim::JobRecord record;
  record.task = active_;
  record.instance = state.instance;
  record.release = state.release;
  record.absolute_deadline = state.release + static_cast<Time>(t.deadline);
  record.completion = now_.absolute();
  record.executed = state.total_work;
  record.finished = true;
  record.missed_deadline =
      tp_definitely_greater(now_, at(record.absolute_deadline));
  if (record.missed_deadline) {
    ++deadline_misses_;
    if (options_->throw_on_miss) {
      throw std::runtime_error(
          "deadline miss: task " + t.name + " instance " +
          std::to_string(state.instance) + " finished at " +
          std::to_string(record.completion) + " > deadline " +
          std::to_string(record.absolute_deadline) + " under policy " +
          policy_->name);
    }
  }
  if (options_->record_trace) {
    trace_.add_job(record);
    if (cycle_recording_) cycle_jobs_.push_back({record, now_});
  }
  ++jobs_completed_;

  if (weakly_hard_enabled_) {
    // An actual miss is the strongest overload evidence there is.
    if (record.missed_deadline) overload_dynamic_ = true;
    settle_weakly_hard(active_, /*met=*/!record.missed_deadline,
                       /*skipped=*/false);
  }

  delay_queue_.insert(
      {active_, state.window_release + static_cast<Time>(t.period)});
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  maybe_detect_ramp_fault();
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
}

void SimState::on_budget_exhausted() {
  LPFPS_CHECK(state_ == CpuState::kRunning && active_ != kNoTask);
  JobState& state = job(active_);
  state.over_budget = true;
  ++overruns_detected_;
  // A detected overrun raises the dynamic overload latch: undeclared
  // demand is in the system, so permitted skips may now be spent.
  if (weakly_hard_enabled_) overload_dynamic_ = true;
  enter_safe_mode();
  switch (options_->containment.on_overrun) {
    case faults::OverrunAction::kNone:
      // Monitor only: the overrunning job keeps the CPU (at base speed
      // once the safe-mode ramp lands) until its true demand drains.
      break;
    case faults::OverrunAction::kThrottle:
      throttle_active_job();
      break;
    case faults::OverrunAction::kKill:
      kill_active_job();
      break;
  }
}

void SimState::kill_active_job() {
  const sched::Task& t = task(active_);
  JobState& state = job(active_);
  ++jobs_killed_;
  if (options_->record_trace) {
    sim::JobRecord record;
    record.task = active_;
    record.instance = state.instance;
    record.release = state.release;
    record.absolute_deadline =
        state.release + static_cast<Time>(t.deadline);
    record.completion = now_.absolute();
    record.executed = state.executed;
    record.finished = false;
    record.killed = true;
    // An abort is not a late completion; the instance is shed, so the
    // miss flag (and counter) stay untouched.
    trace_.add_job(record);
  }
  // The killed instance settles as a failure in its task's (m,k) window
  // — the work was discarded, not delivered.
  settle_weakly_hard(active_, /*met=*/false, /*skipped=*/false);
  requeue_contained_task(active_);
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
}

void SimState::throttle_active_job() {
  JobState& state = job(active_);
  ++jobs_throttled_;
  state.throttled = true;
  requeue_contained_task(active_);
  active_ = kNoTask;
  state_ = CpuState::kIdle;
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
}

void SimState::requeue_contained_task(TaskIndex index) {
  const sched::Task& t = task(index);
  auto& instance = next_instance_[static_cast<std::size_t>(index)];
  Time next_release = static_cast<Time>(t.phase) +
                      static_cast<Time>(instance * t.period);
  // Enforcement windows the overrun already consumed are forfeited
  // (skippable-instance semantics): releasing them retroactively could
  // only cascade lateness.  With a schedulable declared demand the
  // budget exhausts before the window ends, so nothing is skipped.
  while (tp_definitely_greater(now_, at(next_release))) {
    ++instance;
    ++jobs_skipped_;
    // Each forfeited window is a failed delivery in the task's (m,k)
    // ledger, settled here in instance order (kill settles the aborted
    // instance first; throttle never combines with the governor).
    settle_weakly_hard(index, /*met=*/false, /*skipped=*/false);
    next_release = static_cast<Time>(t.phase) +
                   static_cast<Time>(instance * t.period);
  }
  delay_queue_.insert({index, next_release});
}

void SimState::enter_safe_mode() {
  if (!options_->containment.safe_mode_fallback || safe_mode_) return;
  safe_mode_ = true;
  ++safe_mode_entries_;
  // Fail toward plain FPS: abandon any slowdown plan, head straight
  // back to base speed, and (via the safe_mode_ gates) decline new
  // slowdowns, power-downs and shutdown timers until the next idle
  // instant.
  plan_active_ = false;
  plan_up_started_ = false;
  plan_rampup_start_ = kNeverPoint;
  plan_end_ = kNeverPoint;
  shutdown_at_ = kNeverPoint;
  if (ramp_target_ != base_ratio_) {
    ramp_target_ = base_ratio_;
    ++speed_changes_;
  }
}

void SimState::maybe_detect_ramp_fault() {
  if (!ramp_fault_armed_ || !plan_active_ || !plan_up_started_) return;
  if (ratio_ >= base_ratio_ - 1e-12) return;  // The ramp landed on time.
  // The just-in-time plan commands ratio(t) = base - rho_spec *
  // (plan_end - t) during its up-ramp (and base thereafter); a clock
  // measurably below that trajectory means the physical regulator is
  // slower than its spec.
  const Ratio expected =
      base_ratio_ -
      processor_->ramp_rate * std::max(0.0, span(now_, plan_end_));
  if (ratio_ < expected - 1e-9) {
    ++ramp_faults_detected_;
    enter_safe_mode();
  }
}

void SimState::setup_cycle_detection(const SpecPrep* prep) {
  // The spec-fixed gates live in eligible_cycle_hyperperiod below
  // (precomputed by prepare() on the fleet path): fault injection and
  // containment carry state (budget windows, the safe-mode latch,
  // perturbed timers) the fingerprint does not capture; jittered
  // arrivals and tick-granular timers are aperiodic relative to the
  // hyperperiod; an invocation hook observes every scheduler invocation
  // and skipping cycles would silently drop the observations it is
  // owed; trace-driven execution carries opaque per-task replay cursors
  // the fingerprint cannot see; the boundary arithmetic (k*H, shifts by
  // n*H) must stay inside the integer-exact double mantissa range; and
  // detection needs boundaries at H and 2H inside the horizon before it
  // can ever match.
  const std::int64_t hyper =
      prep != nullptr
          ? (prep->cycle_eligible ? prep->hyperperiod : 0)
          : eligible_cycle_hyperperiod(*tasks_, exec_model_, *options_);
  if (hyper == 0) return;
  if (!cycle_detection_env_enabled()) return;
  const Time length = static_cast<Time>(hyper);
  cycle_length_ = length;
  next_boundary_ = length;
  jobs_per_cycle_.resize(tasks_->size());
  for (std::size_t i = 0; i < tasks_->size(); ++i) {
    jobs_per_cycle_[i] =
        hyper / (*tasks_)[static_cast<TaskIndex>(i)].period;
  }
  cycle_armed_ = true;
}

Fingerprint SimState::take_fingerprint() const {
  Fingerprint fp;
  fp.state = state_;
  fp.active = active_;
  fp.ratio = ratio_;
  fp.ramp_target = ramp_target_;
  fp.reinvoke_after_ramp = reinvoke_after_ramp_;
  fp.plan_active = plan_active_;
  fp.plan_up_started = plan_up_started_;
  fp.now_base_rel = now_.base - next_boundary_;
  fp.now_offset = now_.offset;
  fp.plan_rampup_start_rel = span(now_, plan_rampup_start_);
  fp.plan_end_rel = span(now_, plan_end_);
  fp.wake_at_rel = span(now_, wake_at_);
  fp.wake_end_rel = span(now_, wake_end_);
  fp.shutdown_at_rel = span(now_, shutdown_at_);
  fp.sleep_power_fraction = sleep_power_fraction_;
  fp.sleep_wake_latency = sleep_wake_latency_;
  fp.run_queue = run_queue_.entries();
  fp.delay_queue_rel = delay_queue_.entries();
  for (sched::DelayEntry& entry : fp.delay_queue_rel) {
    entry.release_time = span(now_, at(entry.release_time));
  }
  fp.staged_rel.reserve(staged_.size());
  for (const StagedJob& staged : staged_) {
    fp.staged_rel.emplace_back(staged.task, span(now_, staged.ready));
  }
  const auto add_live = [&](TaskIndex index) {
    const JobState& state = jobs_[static_cast<std::size_t>(index)];
    fp.live_jobs.push_back({index, span(now_, at(state.release)),
                            state.total_work, state.executed});
  };
  if (active_ != kNoTask) add_live(active_);
  for (const sched::RunEntry& entry : run_queue_.entries()) {
    add_live(entry.task);
  }
  for (const StagedJob& staged : staged_) add_live(staged.task);
  fp.next_release_rel.reserve(tasks_->size());
  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_->size()); ++i) {
    const sched::Task& t = task(i);
    fp.next_release_rel.push_back(span(
        now_,
        at(static_cast<Time>(t.phase) +
           static_cast<Time>(next_instance_[static_cast<std::size_t>(i)] *
                             t.period))));
  }
  fp.rng = rng_.engine();
  return fp;
}

CounterSnapshot SimState::snapshot_counters() const {
  return {jobs_completed_,        deadline_misses_, context_switches_,
          scheduler_invocations_, speed_changes_,   power_downs_,
          dvs_slowdowns_};
}

void SimState::disarm_cycle_detection() {
  cycle_armed_ = false;
  cycle_recording_ = false;
  cycle_has_prev_ = false;
  next_boundary_ = kNever;
  cycle_segments_.clear();
  cycle_jobs_.clear();
}

void SimState::on_cycle_boundary() {
  const auto started = std::chrono::steady_clock::now();
  Fingerprint current = take_fingerprint();
  ++fingerprint_checks_;
  bool rng_moved = false;
  bool matched = false;
  if (cycle_has_prev_) {
    if (current.rng != prev_fingerprint_.rng) {
      rng_moved = true;
    } else {
      matched = current == prev_fingerprint_;
    }
  }
  fingerprint_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (rng_moved) {
    // The execution model consumes randomness each cycle; a mt19937
    // state never recurs within any simulatable horizon, so stop
    // checking.  Stochastic runs thus pay exactly two fingerprints.
    disarm_cycle_detection();
    return;
  }
  if (matched) {
    // Two consecutive boundaries are bit-identical: the simulation is a
    // proven cycle.  Skip every whole hyperperiod that still fits.
    const Time now_abs = now_.absolute();
    std::int64_t cycles = static_cast<std::int64_t>(
        (options_->horizon - now_abs) / cycle_length_);
    while (now_abs + static_cast<Time>(cycles + 1) * cycle_length_ <=
           options_->horizon) {
      ++cycles;
    }
    while (cycles > 0 &&
           now_abs + static_cast<Time>(cycles) * cycle_length_ >
               options_->horizon) {
      --cycles;
    }
    if (cycles > 0) fast_forward(cycles);
    // Any tail shorter than a cycle simulates normally; further
    // fingerprints could never pay off.
    disarm_cycle_detection();
    return;
  }
  prev_fingerprint_ = std::move(current);
  cycle_has_prev_ = true;
  prev_counters_ = snapshot_counters();
  cycle_segments_.clear();
  cycle_jobs_.clear();
  cycle_recording_ = true;
  next_boundary_ += cycle_length_;
}

void SimState::fast_forward(std::int64_t cycles) {
  LPFPS_CHECK(cycles > 0 && cycle_recording_);
  // Replay the template through the *identical* accumulator calls the
  // simulation would have made, once per skipped cycle, so every float
  // total follows the same addition sequence (and the trace coalescer
  // sees the same segment stream) as the full run.  Durations come from
  // the template verbatim — shift-invariant TimePoint arithmetic makes
  // the full simulation's own cycle-j durations bit-identical to them —
  // and absolute trace times re-materialize from (base + j*H, offset)
  // with the exact single rounding the full run would apply.
  for (std::int64_t j = 1; j <= cycles; ++j) {
    const Time offset = static_cast<Time>(j) * cycle_length_;
    for (const CycleSegment& cs : cycle_segments_) {
      const Time dt = cs.dt;
      const Ratio rb = cs.ratio_begin;
      const Ratio re = cs.ratio_end;
      // The template caches the exact energy each accumulation charged,
      // so the replay is pure addition — no power-model evaluation.
      accumulator_->charge_replay(cs.mode, dt, cs.energy);
      if (cs.mode == sim::ProcessorMode::kRunning) {
        auto& slot = per_task_[static_cast<std::size_t>(cs.task)];
        slot.time += dt;
        slot.energy += cs.energy;
        running_ratio_integral_ += (rb + re) / 2.0 * dt;
        running_time_ += dt;
      }
      if (options_->record_trace) {
        sim::Segment segment;
        segment.begin = (cs.begin.base + offset) + cs.begin.offset;
        segment.end = (cs.end.base + offset) + cs.end.offset;
        segment.mode = cs.mode;
        segment.task = cs.task;
        segment.ratio_begin = rb;
        segment.ratio_end = re;
        trace_.add_segment(segment);
      }
    }
    if (options_->record_trace) {
      for (const CycleJob& cj : cycle_jobs_) {
        sim::JobRecord record = cj.record;
        record.instance +=
            j * jobs_per_cycle_[static_cast<std::size_t>(record.task)];
        record.release += offset;
        record.absolute_deadline += offset;
        record.completion =
            (cj.completion.base + offset) + cj.completion.offset;
        trace_.add_job(record);
      }
    }
  }

  // Integer statistics advance by exact per-cycle deltas.  High-water
  // marks need nothing: a repeated cycle sets no new maximum.
  const CounterSnapshot delta = snapshot_counters();
  jobs_completed_ +=
      static_cast<int>(cycles * (delta.jobs_completed -
                                 prev_counters_.jobs_completed));
  deadline_misses_ +=
      static_cast<int>(cycles * (delta.deadline_misses -
                                 prev_counters_.deadline_misses));
  context_switches_ +=
      static_cast<int>(cycles * (delta.context_switches -
                                 prev_counters_.context_switches));
  scheduler_invocations_ +=
      static_cast<int>(cycles * (delta.scheduler_invocations -
                                 prev_counters_.scheduler_invocations));
  speed_changes_ += static_cast<int>(
      cycles * (delta.speed_changes - prev_counters_.speed_changes));
  power_downs_ += static_cast<int>(
      cycles * (delta.power_downs - prev_counters_.power_downs));
  dvs_slowdowns_ += static_cast<int>(
      cycles * (delta.dvs_slowdowns - prev_counters_.dvs_slowdowns));

  // Shift every pending anchor so the state at now_ reappears, verbatim,
  // at now_ + cycles * H.  Anchors are exact integers (or infinity), so
  // the additions are exact and every offset survives untouched.  Stale
  // JobState entries of delay-queue tasks shift too — harmless,
  // start_job rewrites them before any read.
  const Time shift = static_cast<Time>(cycles) * cycle_length_;
  delay_queue_.shift_release_times(shift);
  for (StagedJob& staged : staged_) staged.ready.base += shift;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].release += shift;
    jobs_[i].window_release += shift;
    jobs_[i].instance += cycles * jobs_per_cycle_[i];
    next_instance_[i] += cycles * jobs_per_cycle_[i];
  }
  wake_at_.base += shift;
  wake_end_.base += shift;
  shutdown_at_.base += shift;
  plan_rampup_start_.base += shift;
  plan_end_.base += shift;
  now_.base += shift;

  cycles_detected_ += cycles;
  fast_forwarded_time_ += shift;
}

double SimState::slope() const {
  if (ratio_ < ramp_target_) return effective_ramp_rate_;
  if (ratio_ > ramp_target_) return -effective_ramp_rate_;
  return 0.0;
}

void SimState::advance_to(const TimePoint& next) {
  const Time dt = span(now_, next);
  LPFPS_CHECK(dt >= -kTimeEpsilon);
  if (dt <= 0.0) {
    now_ = next;
    return;
  }

  const double s = slope();
  Ratio end_ratio = ratio_ + s * dt;
  // Clamp onto the target to kill rounding drift at ramp boundaries.
  if ((s > 0.0 && end_ratio > ramp_target_) ||
      (s < 0.0 && end_ratio < ramp_target_) ||
      approx_equal(end_ratio, ramp_target_, 1e-9)) {
    end_ratio = ramp_target_;
  }

  sim::Segment segment;
  segment.begin = now_.absolute();
  segment.end = next.absolute();
  segment.ratio_begin = ratio_;
  segment.ratio_end = end_ratio;

  // The energy each branch charges into the accumulator; recorded into
  // the cycle template so the replay can re-add the identical value
  // without re-evaluating the power model.
  Energy charged = 0.0;
  switch (state_) {
    case CpuState::kRunning: {
      LPFPS_CHECK(active_ != kNoTask);
      const Work done = power::work_done(ratio_, s, dt);
      job(active_).executed += done;
      if (detection_enabled_) job(active_).budget_used += done;
      Energy spent = 0.0;
      if (s == 0.0) {
        accumulator_->add_run(dt, ratio_);
        spent = dt * power_model_->run_power(ratio_);
      } else {
        accumulator_->add_run_ramp(dt, ratio_, end_ratio,
                                  effective_ramp_rate_);
        spent = power_model_->ramp_energy(ratio_, end_ratio,
                                          effective_ramp_rate_, true);
      }
      charged = spent;
      auto& slot = per_task_[static_cast<std::size_t>(active_)];
      slot.time += dt;
      slot.energy += spent;
      running_ratio_integral_ += (ratio_ + end_ratio) / 2.0 * dt;
      running_time_ += dt;
      segment.mode = sim::ProcessorMode::kRunning;
      segment.task = active_;
      break;
    }
    case CpuState::kIdle: {
      if (s == 0.0) {
        accumulator_->add_idle_nop(dt, ratio_);
        if (cycle_recording_) {
          charged = dt * power_model_->idle_nop_power(ratio_);
        }
        segment.mode = sim::ProcessorMode::kIdleBusyWait;
      } else {
        accumulator_->add_idle_ramp(dt, ratio_, end_ratio,
                                   effective_ramp_rate_);
        if (cycle_recording_) {
          charged = power_model_->ramp_energy(ratio_, end_ratio,
                                              effective_ramp_rate_, false);
        }
        segment.mode = sim::ProcessorMode::kRamping;
      }
      break;
    }
    case CpuState::kPowerDown: {
      LPFPS_CHECK(s == 0.0);
      accumulator_->add_power_down(dt, sleep_power_fraction_);
      charged = dt * sleep_power_fraction_;
      segment.mode = sim::ProcessorMode::kPowerDown;
      break;
    }
    case CpuState::kWakeUp: {
      LPFPS_CHECK(s == 0.0);
      accumulator_->add_wakeup(dt);
      charged = dt * 1.0;
      segment.mode = sim::ProcessorMode::kWakeUp;
      break;
    }
  }

  if (cycle_recording_) {
    // Template for the steady-state replay: one entry per accumulation,
    // including sub-epsilon slivers the trace writer drops (their energy
    // still counts, so the replay must redo them).
    cycle_segments_.push_back({now_, next, dt, charged, segment.mode,
                               segment.task, segment.ratio_begin,
                               segment.ratio_end});
  }
  if (options_->record_trace) trace_.add_segment(segment);
  ratio_ = end_ratio;
  now_ = next;
}

SimState::SpecPrep SimState::prepare(const sched::TaskSet& tasks,
                                     const power::ProcessorConfig& processor,
                                     const SchedulerPolicy& policy,
                                     const exec::ExecModelPtr& exec_model,
                                     const EngineOptions& options) {
  validate_spec(tasks, processor, policy, options);
  SpecPrep prep;
  prep.hyperperiod = eligible_cycle_hyperperiod(tasks, exec_model, options);
  prep.cycle_eligible = prep.hyperperiod != 0;
  return prep;
}

void SimState::begin(const SpecPrep* prep) {
  if (prep == nullptr) {
    validate_spec(*tasks_, *processor_, *policy_, *options_);
  }

  // kOverload's structural trigger: hard-infeasible sets are in
  // overload from the first release, before any miss can be observed.
  if (weakly_hard_enabled_ &&
      skip_policy_ == weakly_hard::SkipPolicy::kOverload) {
    overload_structural_ = !hard_rta_schedulable(*tasks_);
  }

  base_ratio_ = policy_->static_ratio;
  ratio_ = base_ratio_;
  ramp_target_ = base_ratio_;

  if (options_->record_trace) {
    // Reserve from the release pattern over the horizon (the horizon is
    // normally a whole number of hyperperiods): one job record per
    // released instance, and a few segments per job (run pieces split by
    // preemptions plus idle/ramp/power-down gaps between them).
    std::size_t job_hint = 0;
    for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_->size()); ++i) {
      job_hint +=
          static_cast<std::size_t>(options_->horizon /
                                   static_cast<Time>(task(i).period)) +
          1;
    }
    trace_.reserve(4 * job_hint + 16, job_hint);
  }

  for (TaskIndex i = 0; i < static_cast<TaskIndex>(tasks_->size()); ++i) {
    delay_queue_.insert({i, static_cast<Time>(task(i).phase)});
  }
  setup_cycle_detection(prep);
  invoke_scheduler();

  // Loop bookkeeping the old run() kept in locals.  horizon_ flips
  // finished() live: before begin() it is kNeverPoint, so finished() is
  // false and callers cannot skip the prologue.
  horizon_ = at(options_->horizon);
  last_now_ = TimePoint{-1.0, 0.0};
  stalled_iterations_ = 0;
}

void SimState::step() {
  if (cycle_armed_) {
    const Time now_abs = now_.absolute();
    if (now_abs == next_boundary_) {
      // The clock landed exactly on a hyperperiod boundary (phase-0
      // task sets release every task there, so the loop always stops
      // at it) and the boundary's handlers have run: a canonical
      // sampling point.  on_cycle_boundary may fast-forward now_ to
      // the last whole cycle before the horizon; re-test finished()
      // before doing anything at the new instant (the old loop's
      // `continue`).
      on_cycle_boundary();
      return;
    }
    if (now_abs > next_boundary_) {
      // Overshot (phased releases leave no event on the boundary):
      // resync to the next multiple and restart the match hunt.
      while (next_boundary_ <= now_abs) next_boundary_ += cycle_length_;
      cycle_has_prev_ = false;
      cycle_recording_ = false;
      cycle_segments_.clear();
      cycle_jobs_.clear();
    }
  }
  // Livelock detector: every step must advance time (or change state so
  // a handler clears its condition); a stuck boundary would otherwise
  // spin forever.  The threshold is far above any legitimate
  // same-instant handler cascade.
  if (now_.base == last_now_.base && now_.offset == last_now_.offset) {
    if (++stalled_iterations_ > 1000) {
      throw std::logic_error(
          "engine livelock at t=" + std::to_string(now_.absolute()) +
          " state=" + std::to_string(static_cast<int>(state_)) +
          " ratio=" + std::to_string(ratio_) + " target=" +
          std::to_string(ramp_target_) + " active=" +
          std::to_string(active_) + " plan=" +
          std::to_string(plan_active_) + " policy=" + policy_->name);
    }
  } else {
    stalled_iterations_ = 0;
    last_now_ = now_;
  }
  // ---- settle sub-resolution transitions before anything else.
  if (ratio_ != ramp_target_ &&
      power::ramp_duration(ratio_, ramp_target_, effective_ramp_rate_) <
          kTimeEpsilon) {
    // The residual transition is below the time resolution (either
    // float debris from a split ramp, or a near-instant ramp rate):
    // completing it now costs nothing measurable and prevents a
    // sub-ulp boundary that time arithmetic could never reach.
    ratio_ = ramp_target_;
  }
  if (ratio_ == ramp_target_ && reinvoke_after_ramp_) {
    // L1-L4's deferred re-entry must run *before* time advances past
    // this instant, or the power-management decision it defers (e.g.
    // entering power-down) would be skipped for the whole idle gap.
    reinvoke_after_ramp_ = false;
    invoke_scheduler();
  }

  // ---- gather candidate boundaries (all strictly in the future or
  // due exactly now; handlers below clear every condition they fire
  // on, so the loop always progresses).
  TimePoint next_other = horizon_;
  // Injected faults can break the fault-free invariant that the clock
  // is back at base speed (and the CPU awake) before any release is
  // due: a slow ramp regulator or a safe-mode redirect leaves the
  // L1-L4 ramp-up in flight across a release, and a late wake timer
  // leaves the CPU asleep through one.  The scheduler defers those
  // releases (reinvoke_after_ramp_ / the wake handler serves them),
  // so they must not pin the loop at the current instant — nor may an
  // already-overslept release become a candidate in the past.
  const bool ramp_locked = reinvoke_after_ramp_ && ratio_ != ramp_target_;
  const bool releases_blocked =
      faults_injected_ &&
      (ramp_locked || state_ == CpuState::kPowerDown ||
       state_ == CpuState::kWakeUp);
  if (const auto release = delay_queue_.next_release();
      release.has_value() && !releases_blocked) {
    const TimePoint candidate = at(*release);
    if (tp_less(candidate, next_other)) next_other = candidate;
  }
  if (ratio_ != ramp_target_) {
    const TimePoint candidate =
        after(now_, power::ramp_duration(ratio_, ramp_target_,
                                         effective_ramp_rate_));
    if (tp_less(candidate, next_other)) next_other = candidate;
  }
  if (plan_active_ && !plan_up_started_ &&
      tp_less(plan_rampup_start_, next_other)) {
    next_other = plan_rampup_start_;
  }
  if (state_ == CpuState::kPowerDown && tp_less(wake_at_, next_other)) {
    next_other = wake_at_;
  }
  if (state_ == CpuState::kWakeUp && tp_less(wake_end_, next_other)) {
    next_other = wake_end_;
  }
  if (state_ == CpuState::kIdle && shutdown_at_.base != kNever &&
      tp_less(shutdown_at_, next_other)) {
    next_other = shutdown_at_;
  }
  if (!(faults_injected_ && ramp_locked)) {
    for (const StagedJob& staged : staged_) {
      if (tp_less(staged.ready, next_other)) next_other = staged.ready;
    }
  }
  LPFPS_CHECK(tp_approx_ge(next_other, now_));
  if (tp_less(next_other, now_)) next_other = now_;

  // ---- completion of the active task, if it lands first; under
  // detection, budget exhaustion competes on the same work clock.
  bool completes = false;
  bool budget_exhausts = false;
  TimePoint next = next_other;
  if (state_ == CpuState::kRunning) {
    const JobState& state = job(active_);
    const Work remaining =
        snap_nonnegative(state.total_work - state.executed);
    const auto tau = power::time_to_complete(
        ratio_, slope(), span(now_, next_other), remaining);
    if (tau.has_value()) {
      next = after(now_, *tau);
      completes = true;
    }
    if (detection_enabled_ && !state.over_budget) {
      const Work budget_left = snap_nonnegative(
          (task(active_).wcet + state.overhead) - state.budget_used);
      const Time budget_window = span(now_, next);
      const auto tau_budget = power::time_to_complete(
          ratio_, slope(), budget_window, budget_left);
      // The completion wins ties and sub-epsilon photo finishes: a
      // job finishing at its exact budget is in contract, and
      // time_to_complete clips near-boundary crossings onto the
      // window end (so an in-contract job's budget crossing can land
      // one ulp *before* its own completion).  Without a completion
      // in sight any in-window crossing is an overrun, including one
      // tying the window end exactly (a kill coinciding with a
      // release must fire before the released job runs); that is
      // safe for containment-without-faults bit-identity because an
      // in-contract job's crossing never precedes its completion, so
      // completes=false implies the true crossing also lies beyond
      // the window.
      const bool exhausts_first =
          tau_budget.has_value() &&
          (completes ? definitely_less(*tau_budget, *tau) : true);
      if (exhausts_first) {
        next = after(now_, *tau_budget);
        completes = false;
        budget_exhausts = true;
      }
    }
  }

  advance_to(next);

  // ---- fire handlers for every condition now due.
  bool need_scheduler = false;

  if (ratio_ == ramp_target_ && reinvoke_after_ramp_) {
    reinvoke_after_ramp_ = false;
    need_scheduler = true;  // L1-L4's deferred re-entry.
  }
  if (budget_exhausts) {
    on_budget_exhausted();
    need_scheduler = true;
  }
  if (completes) {
    finish_active_job();
    need_scheduler = true;
  }
  if (plan_active_ && !plan_up_started_ &&
      tp_approx_le(plan_rampup_start_, now_)) {
    plan_up_started_ = true;
    if (ramp_target_ != base_ratio_) {
      ramp_target_ = base_ratio_;
      ++speed_changes_;
    }
  }
  if (ramp_fault_armed_ && plan_active_ && plan_up_started_ &&
      ratio_ == base_ratio_ && ratio_ == ramp_target_) {
    // The plan's return ramp has (finally) reached base speed.  Under
    // a DVS ramp fault the physical slope is shallower than the spec
    // rho the just-in-time plan was computed with, so the clock can
    // still be below base at plan_end_ — the observable anomaly.
    if (tp_definitely_greater(now_, plan_end_)) {
      ++ramp_faults_detected_;
      enter_safe_mode();
    }
    plan_active_ = false;
    plan_up_started_ = false;
    plan_rampup_start_ = kNeverPoint;
    plan_end_ = kNeverPoint;
  }
  if (state_ == CpuState::kPowerDown && tp_approx_le(wake_at_, now_)) {
    if (detection_enabled_ &&
        span(wake_programmed_, now_) > kTimeEpsilon) {
      // The timer fired measurably after its programmed instant; the
      // gap the power-down was sized for is already compromised.
      ++late_wakeups_detected_;
      enter_safe_mode();
    }
    wake_programmed_ = kNeverPoint;
    wake_at_ = kNeverPoint;
    const Time delay = sleep_wake_latency_;
    if (delay > 0.0) {
      state_ = CpuState::kWakeUp;
      wake_end_ = after(now_, delay);
    } else {
      state_ = CpuState::kIdle;
      need_scheduler = true;
    }
  } else if (state_ == CpuState::kWakeUp &&
             tp_approx_le(wake_end_, now_)) {
    wake_end_ = kNeverPoint;
    state_ = CpuState::kIdle;
    need_scheduler = true;
  }
  if (state_ == CpuState::kIdle && shutdown_at_.base != kNever &&
      tp_approx_le(shutdown_at_, now_)) {
    shutdown_at_ = kNeverPoint;
    enter_power_down();
  }
  if ((state_ == CpuState::kIdle || state_ == CpuState::kRunning) &&
      !delay_queue_.empty() &&
      tp_approx_le(at(delay_queue_.head().release_time), now_)) {
    need_scheduler = true;
  }
  for (const StagedJob& staged : staged_) {
    if ((state_ == CpuState::kIdle || state_ == CpuState::kRunning) &&
        tp_approx_le(staged.ready, now_)) {
      need_scheduler = true;
      break;
    }
  }

  if (need_scheduler) invoke_scheduler();
}

SimulationResult SimState::finish() {
  // The tolerance scales with the horizon: long fast-forwardable runs
  // accumulate ulp-level dt rounding across millions of segment
  // additions, exactly like a full simulation of the same span would.
  LPFPS_CHECK_MSG(
      approx_equal(accumulator_->total_time(), options_->horizon,
                   std::max(1e-3, 1e-9 * options_->horizon)),
      "unaccounted simulation time");

  SimulationResult result;
  result.policy_name = policy_->name;
  result.simulated_time = options_->horizon;
  result.total_energy = accumulator_->total_energy();
  result.average_power = result.total_energy / options_->horizon;
  for (std::size_t i = 0; i < result.by_mode.size(); ++i) {
    result.by_mode[i] =
        accumulator_->totals(static_cast<sim::ProcessorMode>(i));
  }
  result.jobs_completed = jobs_completed_;
  result.deadline_misses = deadline_misses_;
  result.context_switches = context_switches_;
  result.scheduler_invocations = scheduler_invocations_;
  result.speed_changes = speed_changes_;
  result.power_downs = power_downs_;
  result.dvs_slowdowns = dvs_slowdowns_;
  result.run_queue_high_water = run_queue_high_water_;
  result.delay_queue_high_water = delay_queue_high_water_;
  result.mean_running_ratio =
      running_time_ > 0.0 ? running_ratio_integral_ / running_time_ : 1.0;
  result.overruns_detected = overruns_detected_;
  result.ramp_faults_detected = ramp_faults_detected_;
  result.late_wakeups_detected = late_wakeups_detected_;
  result.jobs_killed = jobs_killed_;
  result.jobs_throttled = jobs_throttled_;
  result.jobs_skipped = jobs_skipped_;
  result.safe_mode_entries = safe_mode_entries_;
  if (weakly_hard_enabled_) {
    result.jobs_skipped_weakly = governor_.jobs_skipped_weakly();
    result.mk_violations = governor_.mk_violations();
    result.weakly_hard_worst_slack = governor_.worst_window_slack();
  }
  result.cycles_detected = cycles_detected_;
  result.fast_forwarded_time = fast_forwarded_time_;
  result.fingerprint_checks = fingerprint_checks_;
  result.fingerprint_seconds = fingerprint_seconds_;
  result.per_task = per_task_;
  if (options_->record_trace) {
    trace_.check_invariants();
    result.trace = std::move(trace_);
  }
  return result;
}

SimulationResult SimState::run() {
  begin();
  while (!finished()) step();
  return finish();
}

}  // namespace lpfps::core
