// Stepwise simulation state — the engine's main loop, opened up.
//
// core::Engine::run is a closed box: construct, run to the horizon,
// return the result.  SimState is the same machinery (it *is* the
// engine's former internal Simulation class, verbatim) exposed as an
// incremental state machine so callers that interleave many independent
// simulations — the fleet engine in src/fleet/ — can drive each one
// event by event:
//
//   SimState sim(tasks, cpu, policy, exec, options);
//   sim.begin();                       // validate, seed queues, L1 entry
//   while (!sim.finished()) sim.step() // one event-loop iteration
//   SimulationResult r = sim.finish(); // totals check + result assembly
//
// run() performs exactly that sequence, and Engine::run delegates to it,
// so the serial path and any stepwise driver execute the *identical*
// arithmetic in the identical order: a stepwise run is bit-identical to
// Engine::run by construction, not by testing alone (the differential
// suite in tests/fleet/ pins it anyway).
//
// reset() rebinds an existing SimState to a new simulation while
// retaining every internal buffer's capacity (queues, job tables,
// per-task totals).  A reset state is bit-identical to a freshly
// constructed one — the mt19937 reseed, the cleared queues, and the
// re-derived fault wiring reproduce the constructor exactly — which is
// what lets the fleet engine reuse a fixed pool of lanes across
// thousands of simulations without paying the allocation and setup cost
// per sim (docs/FLEET.md quantifies that cost).
//
// Lifetime: SimState borrows `tasks`, `processor`, `policy` and
// `options` (it stores pointers); they must outlive the run.  The
// execution model is shared by shared_ptr.  Engine::run and
// fleet::FleetEngine both satisfy this by keeping the spec alive for
// the duration.
//
// The hot accessors (clock / mode_now / ratio_now / invocations /
// energy_now) exist for the fleet's structure-of-arrays mirrors: they
// are O(1) reads of scalar state, safe between any two steps.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <random>
#include <vector>

#include "common/float_compare.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/policy.h"
#include "core/result.h"
#include "exec/exec_model.h"
#include "faults/faults.h"
#include "power/energy.h"
#include "power/power_model.h"
#include "power/processor.h"
#include "sched/queues.h"
#include "sched/task_set.h"
#include "sim/trace.h"

namespace lpfps::core {

/// Internal time/state machinery of the engine loop.  Exposed in a
/// header only so SimState can live outside engine.cc; not a public
/// API surface — everything here may change with the engine.
namespace detail {

inline constexpr Time kNever = std::numeric_limits<Time>::infinity();

/// An instant in simulated time, kept as an exact anchor plus a small
/// offset instead of one accumulated double.
///
/// The anchor is always an exactly-representable value (a release time,
/// a hyperperiod boundary, the horizon — integers in this codebase) and
/// the offset is the fractional distance the clock has moved since, a
/// value bounded by one task period.  Durations are computed as
/// (base difference) + (offset difference): the bases subtract exactly,
/// so a duration between two instants one hyperperiod later is
/// *bit-identical* — plain absolute doubles cannot promise that, because
/// crossing a power-of-two magnitude changes the rounding grid and an
/// `end - begin` subtraction picks up a different ulp.  This exact
/// shift-invariance is what lets the steady-state fast-forward replay a
/// proven cycle and still match a full simulation bit for bit.
///
/// Absolute times (trace segments, job completions) materialize with a
/// single rounding via absolute(); the replay re-materializes from the
/// same (base + n*H, offset) pair, reproducing the rounding exactly.
struct TimePoint {
  Time base = 0.0;    ///< Exact anchor (or +inf for "never").
  Time offset = 0.0;  ///< Time since the anchor; may be slightly negative
                      ///< (wake timers fire `latency` before a release).

  Time absolute() const { return base + offset; }
};

inline constexpr TimePoint kNeverPoint{kNever, 0.0};

inline TimePoint at(Time t) { return {t, 0.0}; }

inline TimePoint after(const TimePoint& p, Time delta) {
  return {p.base, p.offset + delta};
}

/// b - a with the anchors cancelling exactly (shift-invariant).
inline Time span(const TimePoint& a, const TimePoint& b) {
  return (b.base - a.base) + (b.offset - a.offset);
}

inline bool tp_less(const TimePoint& a, const TimePoint& b) {
  return span(a, b) > 0.0;
}
inline bool tp_approx_le(const TimePoint& a, const TimePoint& b) {
  return span(b, a) <= kTimeEpsilon;
}
inline bool tp_approx_ge(const TimePoint& a, const TimePoint& b) {
  return span(a, b) <= kTimeEpsilon;
}
inline bool tp_definitely_less(const TimePoint& a, const TimePoint& b) {
  return span(a, b) > kTimeEpsilon;
}
inline bool tp_definitely_greater(const TimePoint& a, const TimePoint& b) {
  return span(b, a) > kTimeEpsilon;
}

/// Processor macro-state.  The speed ratio / ramping sub-state is
/// orthogonal and tracked separately.
enum class CpuState : std::uint8_t {
  kIdle,       ///< No active task; busy-waiting NOPs.
  kRunning,    ///< Executing the active task.
  kPowerDown,  ///< Power-down mode, timer armed.
  kWakeUp,     ///< Returning from power-down (full power, no work).
};

/// Per-task in-flight job bookkeeping (E_i of the paper).
struct JobState {
  std::int64_t instance = 0;
  Time release = 0.0;
  Work total_work = 0.0;  ///< This instance's actual execution time.
  Work executed = 0.0;    ///< E_i: work consumed so far.
  // Budget-enforcement bookkeeping; inert (and never read) unless
  // faults or containment are configured.
  Time window_release = 0.0;  ///< Release of the enforcement window.
  Work budget_used = 0.0;     ///< Work consumed against the window budget.
  Work overhead = 0.0;        ///< Context-switch work past the nominal WCET.
  bool over_budget = false;   ///< Exhaustion latch: one firing per window.
  bool throttled = false;     ///< Suspended; the next start_job resumes it.
};

/// Canonical scheduler state at a hyperperiod boundary, with every
/// absolute time expressed relative to the boundary so two boundaries
/// one (or more) hyperperiods apart can compare equal.  Equality is
/// exact — bitwise on floats — because only a bit-identical state
/// guarantees bit-identical future evolution; a near-miss simply means
/// we keep simulating, never that we skip incorrectly.  kNever timers
/// stay infinite under subtraction, so idle timers compare equal too.
struct Fingerprint {
  CpuState state = CpuState::kIdle;
  TaskIndex active = kNoTask;
  Ratio ratio = 1.0;
  Ratio ramp_target = 1.0;
  bool reinvoke_after_ramp = false;
  bool plan_active = false;
  bool plan_up_started = false;
  /// The clock's own anchor decomposition at the boundary (normally
  /// (0, 0): phase-0 sets release every task there).  Two boundaries
  /// with different decompositions would materialize future absolute
  /// times differently, so they must not compare equal.
  Time now_base_rel = 0.0;
  Time now_offset = 0.0;
  Time plan_rampup_start_rel = 0.0;
  Time plan_end_rel = 0.0;
  Time wake_at_rel = 0.0;
  Time wake_end_rel = 0.0;
  Time shutdown_at_rel = 0.0;
  double sleep_power_fraction = 0.0;
  Time sleep_wake_latency = 0.0;
  std::vector<sched::RunEntry> run_queue;
  std::vector<sched::DelayEntry> delay_queue_rel;  ///< release -= boundary.
  std::vector<std::pair<TaskIndex, Time>> staged_rel;

  /// In-flight job of the active / ready / staged tasks.  Tasks waiting
  /// in the delay queue carry stale JobState (overwritten by the next
  /// start_job before any read), so only live jobs participate.
  struct LiveJob {
    TaskIndex task = kNoTask;
    Time release_rel = 0.0;
    Work total_work = 0.0;
    Work executed = 0.0;
    friend bool operator==(const LiveJob&, const LiveJob&) = default;
  };
  std::vector<LiveJob> live_jobs;

  /// Upcoming release of each task's *next* instance, relative to the
  /// boundary (start_job computes the absolute twin).  Implied by the
  /// delay-queue entries for well-formed states; carried explicitly so a
  /// next_instance_ divergence can never slip through.
  std::vector<Time> next_release_rel;

  /// The full generator state.  Deterministic models never touch it, so
  /// it compares equal; stochastic models advance it monotonically, so
  /// boundaries can never match (and one mismatch disarms the detector).
  std::mt19937_64 rng;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// One advance_to accumulation of the template cycle, replayed verbatim
/// per skipped hyperperiod.  Times are kept as TimePoints so the replay
/// re-materializes absolute trace times with the exact rounding the full
/// simulation would produce.  `ramp` records which accumulator overload
/// the simulation actually called (a sub-ulp ramp step can leave
/// ratio_begin == ratio_end while still being a ramp accumulation).
struct CycleSegment {
  TimePoint begin;
  TimePoint end;
  Time dt = 0.0;  ///< span(begin, end), the exact duration accumulated.
  /// Energy the accumulator charged for this segment.  A repeated
  /// segment's energy is a pure function of (dt, ratios, mode), so the
  /// replay adds this cached double — the identical value, in the
  /// identical order — instead of re-evaluating the power model, which
  /// is what makes fast-forward decisively cheaper than simulation.
  Energy energy = 0.0;
  sim::ProcessorMode mode = sim::ProcessorMode::kIdleBusyWait;
  TaskIndex task = kNoTask;
  Ratio ratio_begin = 1.0;
  Ratio ratio_end = 1.0;
};

/// One job completion inside the template cycle.  The completion instant
/// rides along as a TimePoint for exact re-materialization.
struct CycleJob {
  sim::JobRecord record;
  TimePoint completion;
};

/// Integer statistics at a boundary; per-cycle deltas extrapolate
/// exactly (replay adds `cycles * delta`, no float involved).
struct CounterSnapshot {
  int jobs_completed = 0;
  int deadline_misses = 0;
  int context_switches = 0;
  int scheduler_invocations = 0;
  int speed_changes = 0;
  int power_downs = 0;
  int dvs_slowdowns = 0;
};

}  // namespace detail

/// The full mutable state of one simulation plus the engine main loop,
/// decomposed into begin / step / finish (see the file comment for the
/// contract).  Engine::run builds one of these per call; the fleet
/// engine keeps a pool of them and reset()s each lane between sims.
class SimState {
 public:
  /// `tasks` must validate (unique priorities assigned).  `exec_model`
  /// may be null, in which case every job takes its WCET.  Borrows every
  /// reference argument for the lifetime of the run (see file comment).
  /// `rng_state`, when non-null, must be Rng::warmed_engine of
  /// `options.seed`: the generator is restored from it instead of
  /// reseeded, skipping the seed expansion and first-block generation
  /// bit-identically (the fleet caches one warmed state per spec).
  SimState(const sched::TaskSet& tasks,
           const power::ProcessorConfig& processor,
           const SchedulerPolicy& policy, const exec::ExecModelPtr& exec_model,
           const EngineOptions& options,
           const std::mt19937_64* rng_state = nullptr);

  SimState(const SimState&) = delete;
  SimState& operator=(const SimState&) = delete;

  /// Rebinds to a new simulation, reusing buffer capacity.  The state
  /// after reset is bit-identical to a freshly constructed SimState.
  /// `rng_state` as in the constructor.
  void reset(const sched::TaskSet& tasks,
             const power::ProcessorConfig& processor,
             const SchedulerPolicy& policy,
             const exec::ExecModelPtr& exec_model,
             const EngineOptions& options,
             const std::mt19937_64* rng_state = nullptr);

  /// Per-spec work that is a pure function of the (immutable) spec: the
  /// validation verdict and the cycle-eligibility probe (hyperperiod
  /// LCM included).  The fleet computes one of these per spec at add()
  /// time and passes it back on every rebind, so lanes skip the
  /// redundant re-checks; begin(nullptr) — the serial path — recomputes
  /// both, bit-identically (neither influences any simulated value,
  /// only whether begin() throws and whether the detector arms).
  struct SpecPrep {
    bool cycle_eligible = false;   ///< Passed every spec-fixed gate.
    std::int64_t hyperperiod = 0;  ///< Cycle length; valid when eligible.
  };

  /// Validates the spec exactly as begin() would (same checks, same
  /// exceptions) and probes cycle eligibility.
  static SpecPrep prepare(const sched::TaskSet& tasks,
                          const power::ProcessorConfig& processor,
                          const SchedulerPolicy& policy,
                          const exec::ExecModelPtr& exec_model,
                          const EngineOptions& options);

  /// Validates inputs, seeds the delay queue, arms cycle detection, and
  /// performs the initial scheduler invocation (the prologue of the old
  /// Engine::run).  Must be called exactly once before step().  With a
  /// `prep` (from prepare() on the same spec), validation and the
  /// eligibility probe are skipped; only the runtime LPFPS_CYCLE gate is
  /// re-read.
  void begin(const SpecPrep* prep = nullptr);

  /// True once the clock has reached the horizon; finish() may be called.
  bool finished() const {
    return !detail::tp_definitely_less(now_, horizon_);
  }

  /// One iteration of the engine event loop: settle sub-resolution
  /// transitions, gather candidate boundaries, advance time, fire every
  /// handler now due.  Precondition: begin() was called, !finished().
  void step();

  /// Checks the accounted-time invariant and assembles the result.
  /// Call exactly once, after finished() turns true.
  SimulationResult finish();

  /// begin + step-to-horizon + finish, the exact serial semantics of
  /// Engine::run (which delegates here).
  SimulationResult run();

  // --- hot scalar mirrors for the fleet's SoA arrays -----------------
  /// Current simulated instant (absolute microseconds).
  Time clock() const { return now_.absolute(); }
  /// Current processor mode, mapped exactly like trace segments are.
  sim::ProcessorMode mode_now() const;
  /// Current speed ratio.
  Ratio ratio_now() const { return ratio_; }
  /// Scheduler invocations so far — the engine's "event" unit.
  std::int64_t invocations() const { return scheduler_invocations_; }
  /// Energy accumulated so far.
  Energy energy_now() const { return accumulator_->total_energy(); }

 private:
  // --- scheduling machinery -------------------------------------------
  void start_job(TaskIndex task);
  void invoke_scheduler();
  void invoke_scheduler_impl();
  void try_slowdown();
  void enter_power_down();
  void finish_active_job();

  // --- weakly-hard skip governor (docs/WEAKLY_HARD.md) ------------------
  /// Release-time decision for the just-started job of `index`: governor
  /// armed, constraint window permits, and the policy/overload state
  /// calls for spending the skip.
  bool weakly_hard_should_skip(TaskIndex index) const;
  /// Raises the dynamic overload latch when the just-released job of
  /// `index` cannot complete by its deadline at base speed given the
  /// declared remaining demand of higher-priority ready jobs.
  void note_release_pressure(TaskIndex index);
  /// Books a governor-granted skip of the just-started job: skip record,
  /// settle, re-queue at the next period.  The job never becomes ready.
  void skip_released_job(TaskIndex index);
  /// Feeds a settled job outcome to the governor (no-op when disarmed).
  void settle_weakly_hard(TaskIndex index, bool met, bool skipped);
  /// Skip-aware DVS fast path: while a slowdown plan is active, consume
  /// due releases before the L1-L4 ramp-up check; skipped ones never
  /// wake the plan.  Returns true when the invocation is fully handled
  /// (only skipped releases were due) and the plan should keep running.
  bool consume_releases_under_plan();

  // --- fault detection and containment ---------------------------------
  /// The active job just exhausted its WCET budget: count the overrun,
  /// enter safe mode, apply the configured containment action.
  void on_budget_exhausted();
  /// Aborts the active job at its budget (OverrunAction::kKill).
  void kill_active_job();
  /// Suspends the active job to its next period window, where its
  /// budget replenishes (OverrunAction::kThrottle).
  void throttle_active_job();
  /// Re-inserts a contained task into the delay queue at its next
  /// enforcement-window boundary, forfeiting windows already overrun.
  void requeue_contained_task(TaskIndex index);
  /// Latches safe mode: cancel the DVS plan, ramp to base, and decline
  /// slowdowns/power-downs until the next idle instant.
  void enter_safe_mode();
  /// Compares the clock against the plan's commanded spec trajectory at
  /// the instant a plan ends; a measurable lag is a DVS ramp fault.
  void maybe_detect_ramp_fault();

  // --- time advancement ------------------------------------------------
  /// Current ramp slope in ratio-units per microsecond (0 when steady).
  double slope() const;
  /// Advances the clock to `next`, integrating energy, work and trace.
  void advance_to(const detail::TimePoint& next);

  // --- steady-state cycle detection ------------------------------------
  /// Arms the detector when the run qualifies (see engine.h).  With a
  /// `prep`, reuses its precomputed eligibility verdict + hyperperiod.
  void setup_cycle_detection(const SpecPrep* prep);
  /// Fingerprints the state at now_ == next_boundary_; on a match,
  /// fast-forwards the remaining whole cycles and disarms.
  void on_cycle_boundary();
  detail::Fingerprint take_fingerprint() const;
  detail::CounterSnapshot snapshot_counters() const;
  /// Replays the recorded template cycle `cycles` times: identical
  /// accumulator calls for energy/ratio integrals, exact integer deltas
  /// for counters, time-shifted trace splices, then shifts every pending
  /// absolute time so the simulation resumes at now_ + cycles * H.
  void fast_forward(std::int64_t cycles);
  void disarm_cycle_detection();

  const sched::Task& task(TaskIndex index) const {
    return (*tasks_)[index];
  }
  detail::JobState& job(TaskIndex index) {
    return jobs_[static_cast<std::size_t>(index)];
  }

  /// Next release the active task must be ready for: head of the delay
  /// queue, or (single-task systems) its own next period.
  Time next_arrival_for_active() const;

  /// Skip-aware twin: the next release whose job the governor will
  /// *not* certainly skip (each certainly-skipped head defers its task
  /// by one period).  Equals next_arrival_for_active when skip-aware
  /// DVS is off.
  Time next_arrival_for_active_skip_aware() const;

  // --- borrowed inputs (rebound by reset) ------------------------------
  const sched::TaskSet* tasks_ = nullptr;
  const power::ProcessorConfig* processor_ = nullptr;
  const SchedulerPolicy* policy_ = nullptr;
  exec::ExecModelPtr exec_model_;
  const EngineOptions* options_ = nullptr;

  // --- mutable state ----------------------------------------------------
  // Optionals give the lane-reuse story in-place re-emplacement: the
  // power model's address stays stable (the accumulator points at it)
  // and neither needs a default-constructed null state.
  Rng rng_{0};
  std::optional<power::PowerModel> power_model_;
  std::optional<power::EnergyAccumulator> accumulator_;
  sim::Trace trace_;

  detail::TimePoint now_;
  detail::CpuState state_ = detail::CpuState::kIdle;

  sched::RunQueue run_queue_;
  sched::DelayQueue delay_queue_;
  std::vector<detail::JobState> jobs_;
  std::vector<std::int64_t> next_instance_;
  std::vector<power::ModeTotals> per_task_;
  TaskIndex active_ = kNoTask;

  /// Jobs released (instance started, execution time drawn) but not yet
  /// visible to the scheduler because of release jitter.
  struct StagedJob {
    TaskIndex task = kNoTask;
    detail::TimePoint ready;
  };
  std::vector<StagedJob> staged_;

  // Speed sub-state: ratio_ moves toward ramp_target_ at ramp_rate.
  // "Full speed" for the scheduler is base_ratio_: 1.0 normally, or the
  // policy's constant clock under static slowdown.
  Ratio base_ratio_ = 1.0;
  Ratio ratio_ = 1.0;
  Ratio ramp_target_ = 1.0;
  /// L1-L4 semantics: re-enter the scheduler when the ramp completes.
  bool reinvoke_after_ramp_ = false;

  // DVS plan (active only while the active task runs slowed).
  bool plan_active_ = false;
  bool plan_up_started_ = false;
  detail::TimePoint plan_rampup_start_ = detail::kNeverPoint;
  detail::TimePoint plan_end_ = detail::kNeverPoint;

  // Power-down timers and the sleep state currently occupied.
  detail::TimePoint wake_at_ = detail::kNeverPoint;   ///< Timer expiry.
  detail::TimePoint wake_end_ = detail::kNeverPoint;  ///< End of wake-up.
  double sleep_power_fraction_ = 0.0;
  Time sleep_wake_latency_ = 0.0;

  // Timeout-shutdown policy state.
  detail::TimePoint shutdown_at_ = detail::kNeverPoint;

  // Fault injection / containment (resolved once per reset; all of it
  // inert — and bit-identity preserving — when neither options->faults
  // nor options->containment is configured).
  bool detection_enabled_ = false;  ///< Any fault or containment active.
  bool faults_injected_ = false;    ///< FaultPlan actually perturbs the run.
  bool overruns_possible_ = false;  ///< Execution model may exceed WCET.
  bool ramp_fault_armed_ = false;
  double effective_ramp_rate_ = 0.0;  ///< Physical rho (== spec if healthy).
  exec::ExecModelPtr faulty_model_;   ///< Overrun wrapper, else null.
  bool safe_mode_ = false;
  detail::TimePoint wake_programmed_ = detail::kNeverPoint;  ///< Spec L14.
  int overruns_detected_ = 0;
  int ramp_faults_detected_ = 0;
  int late_wakeups_detected_ = 0;
  int jobs_killed_ = 0;
  int jobs_throttled_ = 0;
  int jobs_skipped_ = 0;
  int safe_mode_entries_ = 0;

  // Weakly-hard skip governor (resolved once per reset; everything
  // below is inert — and bit-identity preserving — unless the task set
  // declares weakly-hard constraints and the policy is not kNever).
  bool weakly_hard_enabled_ = false;
  bool skip_dvs_ = false;
  weakly_hard::SkipPolicy skip_policy_ = weakly_hard::SkipPolicy::kNever;
  weakly_hard::SkipGovernor governor_;
  /// Hard RTA failed at reset: the set cannot meet every deadline even
  /// at base speed, so degradation is on from t = 0 and never clears.
  bool overload_structural_ = false;
  /// Runtime trigger — predicted miss at a release, detected overrun,
  /// or an actual miss; cleared at the next idle instant (the backlog
  /// has drained).
  bool overload_dynamic_ = false;

  // Statistics.
  int jobs_completed_ = 0;
  int deadline_misses_ = 0;
  int context_switches_ = 0;
  int scheduler_invocations_ = 0;
  int speed_changes_ = 0;
  int power_downs_ = 0;
  int dvs_slowdowns_ = 0;
  int run_queue_high_water_ = 0;
  int delay_queue_high_water_ = 0;
  double running_ratio_integral_ = 0.0;
  Time running_time_ = 0.0;

  // Steady-state cycle detection (setup_cycle_detection decides whether
  // to arm; everything below is inert when cycle_armed_ is false).
  bool cycle_armed_ = false;
  bool cycle_recording_ = false;  ///< advance_to appends to the template.
  bool cycle_has_prev_ = false;
  Time cycle_length_ = 0.0;       ///< Hyperperiod, exactly representable.
  Time next_boundary_ = detail::kNever;
  std::vector<std::int64_t> jobs_per_cycle_;  ///< H / period, per task.
  detail::Fingerprint prev_fingerprint_;
  detail::CounterSnapshot prev_counters_;
  std::vector<detail::CycleSegment> cycle_segments_;  ///< Template cycle.
  std::vector<detail::CycleJob> cycle_jobs_;  ///< Completions in the cycle.
  std::int64_t cycles_detected_ = 0;
  Time fast_forwarded_time_ = 0.0;
  std::int64_t fingerprint_checks_ = 0;
  double fingerprint_seconds_ = 0.0;

  // Loop bookkeeping, formerly locals of the old run() (the livelock
  // detector and the horizon the loop tests against).
  detail::TimePoint horizon_ = detail::kNeverPoint;
  detail::TimePoint last_now_{-1.0, 0.0};
  int stalled_iterations_ = 0;

  /// Samples the queue depths for the high-water counters; called at
  /// every scheduler-invocation exit (the only points where the queues
  /// change).  The ready depth counts the dispatched task too.
  void sample_queue_depths() {
    const int ready = static_cast<int>(run_queue_.size()) +
                      (active_ != kNoTask ? 1 : 0);
    run_queue_high_water_ = std::max(run_queue_high_water_, ready);
    delay_queue_high_water_ = std::max(
        delay_queue_high_water_, static_cast<int>(delay_queue_.size()));
  }
};

}  // namespace lpfps::core
