// Scheduling policy configurations: the paper's FPS baseline and LPFPS,
// plus the ablation variants DESIGN.md calls out.
#pragma once

#include <string>

#include "common/units.h"

namespace lpfps::core {

/// How the scheduler computes the DVS slowdown ratio (paper §3.3),
/// or kNone to disable dynamic voltage scaling.
enum class RatioMethod : std::uint8_t {
  kNone,       ///< Never slow the clock.
  kHeuristic,  ///< r_heu = (C_i - E_i) / (t_a - t_c)  (eq. 3).
  kOptimal,    ///< r_opt from eq. (2), ramp-aware.
};

/// What the processor does when no task is eligible.
enum class IdleMethod : std::uint8_t {
  kBusyWait,         ///< NOP loop at full speed (the FPS baseline, §4).
  kExactPowerDown,   ///< LPFPS: timer = next release - wakeup, power down.
  kTimeoutShutdown,  ///< Conventional portable-computer heuristic (§2.1):
                     ///< busy-wait for a fixed timeout first, then power
                     ///< down.  (Wake-up is still timer-exact so that
                     ///< deadlines stay hard; only the energy penalty of
                     ///< the timeout is modelled.)
};

const char* to_string(RatioMethod method);
const char* to_string(IdleMethod method);

struct SchedulerPolicy {
  std::string name;
  RatioMethod dvs = RatioMethod::kNone;
  IdleMethod idle = IdleMethod::kBusyWait;
  /// Busy-wait time before shutdown, for kTimeoutShutdown only.
  Time shutdown_timeout = 0.0;
  /// Constant base clock ratio (static slowdown, §2.2's offline DVS
  /// baseline).  Must be 1.0 when dynamic DVS is enabled; choose a
  /// feasible value via core::min_feasible_static_ratio.
  Ratio static_ratio = 1.0;

  /// The paper's baseline: fixed priority, full speed, NOP busy-wait.
  static SchedulerPolicy fps();

  /// The paper's contribution: heuristic DVS + exact power-down.
  static SchedulerPolicy lpfps();

  /// LPFPS with the optimal (ramp-aware) ratio of eq. (2)  (ablation A1).
  static SchedulerPolicy lpfps_optimal();

  /// DVS only; idle time is busy-waited  (ablation A2).
  static SchedulerPolicy lpfps_dvs_only();

  /// Power-down only; tasks always run at full speed  (ablation A2).
  static SchedulerPolicy lpfps_powerdown_only();

  /// FPS + conventional timeout shutdown  (related-work baseline, §2.1).
  static SchedulerPolicy fps_timeout_shutdown(Time timeout);

  /// Constant clock at `ratio` with exact power-down when idle — the
  /// offline static-DVS baseline of §2.2.  Pass a ratio proven feasible
  /// (core::min_feasible_static_ratio); the engine still verifies every
  /// deadline at run time.
  static SchedulerPolicy static_slowdown(Ratio ratio);

  /// Static + dynamic (the direction the paper's §5 future work points
  /// to, later published as Pillai & Shin's static/cycle-conserving
  /// scaling): the clock idles down to a feasible static base `ratio`,
  /// and LPFPS-style per-window reclamation stretches lone tasks below
  /// it, ramping back to the base (not to full speed) by the window's
  /// end.  Pass a ratio proven feasible at WCET.
  static SchedulerPolicy lpfps_hybrid(Ratio ratio);

  bool uses_dvs() const { return dvs != RatioMethod::kNone; }
  void validate() const;
};

}  // namespace lpfps::core
