// Computation of the processor speed ratio (paper §3.3).
//
// When the active task tau_i is alone (run queue empty), LPFPS slows the
// processor so that the task's remaining worst-case work R = C_i - E_i
// finishes exactly when the next release t_a arrives.  Two solutions:
//
//  * Optimal r_opt (eq. (2)): accounts for the just-in-time linear ramp
//    back to full speed at rate rho, during which the processor keeps
//    executing.  Solves eq. (1):
//        (t_a - t_c) * r + (1 - r)^2 / (2 rho) = R.
//  * Heuristic r_heu (eq. (3)): ignores the ramp, r_heu = R / (t_a-t_c).
//    Cheap enough for a kernel hot path and *safe*: Theorem 1 proves
//    r_heu >= r_opt whenever t_a > t_c and t_a - t_c > R, so running at
//    r_heu never finishes later than the optimal plan.
#pragma once

#include "common/units.h"

namespace lpfps::core {

/// r_heu = remaining / window (eq. 3), clamped into (0, 1].  If the
/// window cannot even hold the remaining work at full speed the function
/// returns 1 (no slowdown possible).
Ratio heuristic_ratio(Work remaining, Time window);

/// r_opt per eq. (2), derived from eq. (1):
///   r = 1 - rho*w + sqrt((rho*w)^2 - 2*rho*(w - R)),   w = window.
/// Feasibility floor: the ramp (1 - r)/rho must fit inside the window,
/// i.e. r >= 1 - rho*w.  When the equation has no root above the floor
/// (the discriminant is negative — even the slowest feasible plan has
/// more capacity than R) the floor itself is returned: it is the slowest
/// safe speed.  Result is clamped into (0, 1].
Ratio optimal_ratio(Work remaining, Time window, double rho);

/// Generalization of eq. (2) for a plan that ramps back to `target`
/// (not necessarily full speed) by the window's end — needed by the
/// hybrid static+dynamic policy, whose "full speed" is the static base
/// ratio.  Solves
///   window * r + (target - r)^2 / (2 rho) = remaining
/// for the feasible root, clamped into
/// [max(0, target - rho*window), target] — 0 means even the ramp alone
/// over-delivers, and the caller's frequency floor takes over.
/// target == 1 reduces exactly to optimal_ratio().
Ratio optimal_ratio_to_target(Work remaining, Time window, double rho,
                              Ratio target);

/// Work capacity of the plan "run at `ratio`, then ramp to full speed
/// reaching 1.0 exactly at the window's end" — the left side of eq. (1).
/// Exposed for tests that verify optimal_ratio inverts it exactly.
Work plan_work_capacity(Ratio ratio, Time window, double rho);

/// Theorem 1's hypotheses: window > 0 and window > remaining.
bool theorem1_applies(Work remaining, Time window);

}  // namespace lpfps::core
