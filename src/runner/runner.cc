#include "runner/runner.h"

#include <cstdlib>
#include <string>

#include "common/check.h"

namespace lpfps::runner {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // splitmix64 (Steele/Lea/Flood): advance the state by (job_index + 1)
  // golden-gamma increments, then apply the output permutation.  The
  // same mixer as Rng::fork_seed, made positional.
  std::uint64_t z = base_seed + (job_index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t default_job_count() {
  if (const char* env = std::getenv("LPFPS_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_job_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  LPFPS_CHECK(job != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LPFPS_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-then-exit: a stopping pool still runs everything queued.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace lpfps::runner
