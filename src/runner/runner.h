// Parallel batch-experiment runner.
//
// Every experiment in this repository — the Figure 8 sweeps, the
// baseline landscape, the A6 random-taskset study, partitioned
// multicore — is an embarrassingly parallel loop of independent
// `core::simulate` calls.  This layer fans such loops out over a small
// thread pool while preserving a hard **determinism contract**:
//
//   1. every job's randomness derives from `(base_seed, job_index)`
//      via `derive_seed` (a splitmix64 step), never from shared RNG
//      state, thread identity, or scheduling order;
//   2. `run_batch` returns results indexed by job, and callers reduce
//      them in job order;
//
// so an N-thread run is bit-identical to a serial run of the same
// batch.  `tests/runner/determinism_test.cc` asserts this contract on
// a 50-taskset batch.
//
// Thread-safety note: jobs run concurrently, so everything a job
// touches must be immutable or job-local.  `core::simulate` already
// qualifies (the engine owns its Rng, seeded from EngineOptions), and
// the stock execution-time models are stateless — with one exception:
// `exec::TraceDrivenModel` keeps mutable replay cursors and must not
// be shared across parallel jobs.
//
// Concurrency defaults to `std::thread::hardware_concurrency()`,
// overridable with the `LPFPS_JOBS` environment variable (re-read on
// every call, so tests and scripts can vary it); `LPFPS_JOBS=1` forces
// the serial path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace lpfps::runner {

/// Derives the RNG seed for job `job_index` of a batch rooted at
/// `base_seed`: one splitmix64 step on the state
/// `base_seed + (job_index + 1) * golden_gamma`.  A pure function of
/// its arguments — the seed of a job depends on its position in the
/// batch, never on thread count or execution order — and consecutive
/// indices yield statistically independent streams.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

/// Worker count used when a caller does not pin one: `LPFPS_JOBS` if
/// set to a positive integer, else `hardware_concurrency()`, else 1.
/// Reads the environment on every call.
std::size_t default_job_count();

/// A minimal fixed-size pool: `threads` workers draining a FIFO work
/// queue.  Destruction drains the queue (every submitted job runs)
/// and joins the workers.
class ThreadPool {
 public:
  /// `threads == 0` means `default_job_count()`.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a job.  Jobs must not throw — wrap and capture instead
  /// (`run_batch` shows the pattern); a throwing job terminates.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and no worker is mid-job.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< Wakes workers.
  std::condition_variable idle_cv_;  ///< Wakes wait_idle().
  std::size_t active_ = 0;           ///< Jobs currently executing.
  bool stopping_ = false;
};

/// Runs `fn(0) .. fn(job_count - 1)` and returns their results in job
/// order.  `threads == 0` means `default_job_count()`; `threads <= 1`
/// (or a single job) runs serially on the calling thread.  The result
/// vector is identical for every thread count provided `fn` honors the
/// determinism contract (job-local state seeded from the job index).
///
/// If jobs throw, the exception of the *lowest-index* failing job is
/// rethrown after the batch drains — the same exception a serial run
/// would have surfaced first.
template <typename Fn>
auto run_batch(std::size_t job_count, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<Result>,
                "run_batch jobs must return a value; fold side effects "
                "into the result and reduce after the batch");

  if (threads == 0) threads = default_job_count();
  std::vector<std::optional<Result>> slots(job_count);

  if (threads <= 1 || job_count <= 1) {
    for (std::size_t i = 0; i < job_count; ++i) slots[i].emplace(fn(i));
  } else {
    std::vector<std::exception_ptr> errors(job_count);
    {
      ThreadPool pool(std::min(threads, job_count));
      for (std::size_t i = 0; i < job_count; ++i) {
        pool.submit([&slots, &errors, &fn, i] {
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  std::vector<Result> results;
  results.reserve(job_count);
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

/// Outcome of one fault-isolated job: the result, or the error text of
/// the exception that killed it.
template <typename T>
struct JobOutcome {
  std::optional<T> result;
  std::string error;  ///< Empty iff the job succeeded.

  bool ok() const { return result.has_value(); }
};

/// `run_batch` with per-job fault isolation: a throwing job is captured
/// into its JobOutcome's `error` instead of aborting the batch, so one
/// faulted configuration in a sweep cannot take down the healthy
/// results around it.  Determinism contract unchanged — job i's outcome
/// (including its error text) is independent of thread count.  Use the
/// plain `run_batch` when any failure should fail the whole experiment
/// (its propagate-first-exception default).
template <typename Fn>
auto run_batch_isolated(std::size_t job_count, Fn&& fn,
                        std::size_t threads = 0)
    -> std::vector<JobOutcome<std::invoke_result_t<Fn&, std::size_t>>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  auto guarded = [&fn](std::size_t i) {
    JobOutcome<Result> outcome;
    try {
      outcome.result.emplace(fn(i));
    } catch (const std::exception& e) {
      outcome.error = e.what();
      if (outcome.error.empty()) outcome.error = "exception";
    } catch (...) {
      outcome.error = "unknown exception";
    }
    return outcome;
  };
  return run_batch(job_count, guarded, threads);
}

}  // namespace lpfps::runner
