#include "sim/event_queue.h"

#include <sstream>

#include "common/check.h"

namespace lpfps::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskRelease:
      return "release";
    case EventKind::kCompletion:
      return "completion";
    case EventKind::kTimerExpire:
      return "timer";
    case EventKind::kRampComplete:
      return "ramp-complete";
    case EventKind::kSimulationEnd:
      return "end";
  }
  return "?";
}

std::string describe(const Event& event) {
  std::ostringstream os;
  os << "[t=" << event.time << " " << to_string(event.kind);
  if (event.payload >= 0) os << " task=" << event.payload;
  os << "]";
  return os.str();
}

EventId EventQueue::push(const Event& event) {
  const EventId id = next_id_++;
  heap_.push(Entry{event, id, next_sequence_++});
  in_heap_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  LPFPS_CHECK(id != 0 && id < next_id_);
  // Cancelling an id that was already popped (or already cancelled) is a
  // benign no-op: the engine may race a completion against its own
  // delivery.
  if (in_heap_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_count_;
  return true;
}

bool EventQueue::empty() const { return live_count_ == 0; }

void EventQueue::skim() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const { return peek().time; }

const Event& EventQueue::peek() const {
  LPFPS_CHECK(!empty());
  skim();
  LPFPS_CHECK(!heap_.empty());
  return heap_.top().event;
}

Event EventQueue::pop() {
  LPFPS_CHECK(!empty());
  skim();
  LPFPS_CHECK(!heap_.empty());
  const Event event = heap_.top().event;
  in_heap_.erase(heap_.top().id);
  heap_.pop();
  --live_count_;
  return event;
}

}  // namespace lpfps::sim
