#include "sim/event_queue.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace lpfps::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskRelease:
      return "release";
    case EventKind::kCompletion:
      return "completion";
    case EventKind::kTimerExpire:
      return "timer";
    case EventKind::kRampComplete:
      return "ramp-complete";
    case EventKind::kSimulationEnd:
      return "end";
  }
  return "?";
}

std::string describe(const Event& event) {
  std::ostringstream os;
  os << "[t=" << event.time << " " << to_string(event.kind);
  if (event.payload >= 0) os << " task=" << event.payload;
  os << "]";
  return os.str();
}

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

void EventQueue::sift_up(std::size_t index, HeapEntry entry) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    place(index, heap_[parent]);
    index = parent;
  }
  place(index, entry);
}

void EventQueue::sift_down(std::size_t index, HeapEntry entry) {
  const std::size_t count = heap_.size();
  for (;;) {
    const std::size_t first_child = 4 * index + 1;
    if (first_child >= count) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        first_child + 4 < count ? first_child + 4 : count;
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], entry)) break;
    place(index, heap_[best]);
    index = best;
  }
  place(index, entry);
}

void EventQueue::erase_at(std::size_t index) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;  // Erased the final key.
  // The filler may belong above the hole (the hole's subtree and the
  // filler's origin are unrelated branches) or below it.
  if (index > 0 && earlier(last, heap_[(index - 1) / 4])) {
    sift_up(index, last);
  } else {
    sift_down(index, last);
  }
}

void EventQueue::retire(std::uint32_t slot) {
  slots_[slot].live = false;
  ++slots_[slot].generation;
  free_slots_.push_back(slot);
}

EventId EventQueue::push(const Event& event) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  slots_[slot].event = event;
  slots_[slot].live = true;
  // The id is issued against the slot's *current* generation; retire()
  // bumps it when the entry leaves the heap, so this id goes stale.
  const EventId id =
      (static_cast<EventId>(slots_[slot].generation) << 32) |
      static_cast<EventId>(slot);
  heap_.push_back(HeapEntry{event.time, next_sequence_++, slot,
                            event.priority});
  sift_up(heap_.size() - 1, heap_.back());
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  // An id whose slot was never allocated, or whose generation lies in
  // the slot's future, was never issued by push(): that is a caller bug,
  // not a benign race of a completion against its own delivery.
  LPFPS_CHECK_MSG(slot < slots_.size() &&
                      generation <= slots_[slot].generation,
                  "cancel of an EventId that was never issued");
  if (generation != slots_[slot].generation || !slots_[slot].live) {
    return false;  // Already popped or cancelled; benign no-op.
  }
  const std::uint32_t position = slots_[slot].heap_pos;
  retire(slot);
  erase_at(position);
  return true;
}

Time EventQueue::next_time() const { return peek().time; }

const Event& EventQueue::peek() const {
  LPFPS_CHECK(!empty());
  // Eager cancellation: every key in the heap is live, so the head is
  // always the next deliverable event.
  return slots_[heap_.front().slot].event;
}

Event EventQueue::pop() {
  LPFPS_CHECK(!empty());
  const std::uint32_t slot = heap_.front().slot;
  const Event event = slots_[slot].event;
  retire(slot);
  erase_at(0);
  return event;
}

std::vector<Event> EventQueue::canonical_events() const {
  std::vector<HeapEntry> keys = heap_;
  std::sort(keys.begin(), keys.end(),
            [](const HeapEntry& a, const HeapEntry& b) {
              return earlier(a, b);
            });
  std::vector<Event> events;
  events.reserve(keys.size());
  for (const HeapEntry& key : keys) {
    events.push_back(slots_[key.slot].event);
  }
  return events;
}

}  // namespace lpfps::sim
