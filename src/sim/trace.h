// Execution trace recording.
//
// A Trace is the ground truth a simulation leaves behind: a contiguous
// sequence of processor segments (what ran, at what speed, in which power
// mode) plus one record per job (release, completion, deadline verdict).
// Tests assert schedule shapes against it (paper Figures 2, 3, 5) and the
// Gantt renderer turns it into the paper's schedule pictures.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace lpfps::sim {

/// Processor activity during one trace segment.
enum class ProcessorMode : std::uint8_t {
  kRunning,       ///< Executing a task's work.
  kIdleBusyWait,  ///< NOP busy-wait loop (the FPS baseline's idle).
  kPowerDown,     ///< Power-down mode (clock gated except PLL/timer).
  kWakeUp,        ///< Returning from power-down (full power, no work).
  kRamping,       ///< Frequency/voltage transition with no active task.
};

const char* to_string(ProcessorMode mode);

/// One maximal interval of uniform processor activity.  While kRunning or
/// kRamping, the speed ratio moves linearly from ratio_begin to ratio_end
/// (equal values mean constant speed).
struct Segment {
  Time begin = 0.0;
  Time end = 0.0;
  ProcessorMode mode = ProcessorMode::kIdleBusyWait;
  TaskIndex task = kNoTask;  ///< Valid when mode == kRunning.
  Ratio ratio_begin = 1.0;
  Ratio ratio_end = 1.0;

  Time duration() const { return end - begin; }
};

/// Lifecycle record of one job (one instance of a periodic task).
struct JobRecord {
  TaskIndex task = kNoTask;
  std::int64_t instance = 0;    ///< 0-based instance number of the task.
  Time release = 0.0;
  Time absolute_deadline = 0.0;
  Time completion = -1.0;       ///< -1 while in flight / unfinished.
  Work executed = 0.0;          ///< Work actually consumed (<= WCET).
  bool finished = false;
  bool missed_deadline = false;
  /// Aborted by budget-enforcement containment (faults::OverrunAction::
  /// kKill): `completion` is the kill instant, `finished` stays false,
  /// and the remaining work was discarded.  Never set outside fault
  /// runs, so io::trace_jobs_csv (golden-hashed) need not change.
  bool killed = false;
  /// Skipped at release by the weakly-hard governor (docs/
  /// WEAKLY_HARD.md): `completion` is the release-time decision instant,
  /// `finished` stays false, and `executed` is 0 — the job never touched
  /// the CPU.  Never set unless the governor is armed, so
  /// io::trace_jobs_csv (golden-hashed) need not change.
  bool skipped = false;

  Time response_time() const { return completion - release; }
};

/// True when `b` can be folded into `a` by the record-time coalescing
/// rule: same mode and task, speed-continuous (a.ratio_end ==
/// b.ratio_begin exactly), and either both at constant speed or both
/// ramping in the same direction at the same rate (slopes equal within
/// 1e-9 relative tolerance).  Time contiguity is the caller's concern.
bool can_coalesce(const Segment& a, const Segment& b);

/// Applies the coalescing rule to an already-recorded segment list and
/// returns the canonical form.  Idempotent on anything Trace records;
/// equivalence tests canonicalize both sides before comparing so traces
/// written before and after record-time coalescing hash identically.
std::vector<Segment> coalesce_segments(const std::vector<Segment>& segments);

/// Recorded simulation history.
class Trace {
 public:
  /// Preallocates the segment and job buffers; simulators call this with
  /// hints derived from the task set and horizon so steady-state
  /// recording never reallocates.
  void reserve(std::size_t segments, std::size_t jobs);

  /// Appends a segment.  Zero-length segments are dropped.  Segments must
  /// be appended in order and contiguously (each begins where the previous
  /// ended); adjacent segments satisfying can_coalesce — same mode and
  /// task at constant speed, or a continuing ramp — are merged in place
  /// (the record-time coalescing writer).
  void add_segment(const Segment& segment);

  void add_job(const JobRecord& job);

  /// Builds a trace verbatim, bypassing add_segment's contiguity and
  /// merge rules.  For tests that need deliberately corrupt timelines
  /// (the audit layer's adversarial cases); never used by simulators.
  static Trace unchecked(std::vector<Segment> segments,
                         std::vector<JobRecord> jobs);

  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<JobRecord>& jobs() const { return jobs_; }

  /// Total time spent in a given mode.
  Time time_in_mode(ProcessorMode mode) const;

  /// Total time the given task was running.
  Time running_time(TaskIndex task) const;

  /// Number of preemptions: completions of a kRunning segment whose task
  /// was resumed later (i.e. a task's running segments for one job are
  /// non-contiguous).  Computed from job/segment structure.
  int preemption_count() const;

  /// Jobs that missed their deadline (should be empty for every policy in
  /// this library; the engine also throws when a miss occurs unless miss
  /// recording is explicitly enabled).
  std::vector<JobRecord> missed_jobs() const;

  /// Throws if segments are non-contiguous, overlap, or run backwards.
  void check_invariants() const;

 private:
  std::vector<Segment> segments_;
  std::vector<JobRecord> jobs_;
};

/// Renders an ASCII Gantt chart of [begin, end) with one row per task
/// plus an idle/power row, `width` characters wide.  `task_names` supplies
/// row labels indexed by TaskIndex.
std::string render_gantt(const Trace& trace,
                         const std::vector<std::string>& task_names,
                         Time begin, Time end, int width);

/// Renders the segment list as an aligned text table (begin, end, mode,
/// task, speed); handy in examples and golden tests.
std::string render_segments(const Trace& trace,
                            const std::vector<std::string>& task_names);

}  // namespace lpfps::sim
