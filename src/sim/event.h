// Event types for the discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace lpfps::sim {

/// What an event means to the scheduler engine.
enum class EventKind : std::uint8_t {
  kTaskRelease,    ///< A periodic task instance becomes ready.
  kCompletion,     ///< The active task finishes its remaining work.
  kTimerExpire,    ///< The power-down wakeup timer fires.
  kRampComplete,   ///< A frequency/voltage transition reaches its target.
  kSimulationEnd,  ///< Horizon reached; the engine stops processing.
};

const char* to_string(EventKind kind);

/// A scheduled occurrence.  `payload` is interpreted per kind (for
/// kTaskRelease it is the TaskIndex of the released task); unused
/// otherwise.  `priority` breaks ties between events at the same instant:
/// lower values are delivered first, so e.g. a completion at t is handled
/// before a release at t (the completing job must not be preempted by a
/// job it already beat to the finish line).
struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kTaskRelease;
  std::int32_t payload = -1;
  std::int32_t priority = 0;
};

/// Human-readable one-line rendering, for traces and test diagnostics.
std::string describe(const Event& event);

}  // namespace lpfps::sim
