#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/float_compare.h"

namespace lpfps::sim {

const char* to_string(ProcessorMode mode) {
  switch (mode) {
    case ProcessorMode::kRunning:
      return "run";
    case ProcessorMode::kIdleBusyWait:
      return "idle-nop";
    case ProcessorMode::kPowerDown:
      return "power-down";
    case ProcessorMode::kWakeUp:
      return "wake-up";
    case ProcessorMode::kRamping:
      return "ramping";
  }
  return "?";
}

bool can_coalesce(const Segment& a, const Segment& b) {
  if (a.mode != b.mode || a.task != b.task) return false;
  if (a.ratio_end != b.ratio_begin) return false;
  const bool a_const = a.ratio_begin == a.ratio_end;
  const bool b_const = b.ratio_begin == b.ratio_end;
  if (a_const && b_const) return true;
  if (a_const || b_const) return false;
  // Both ramping: fold only a continuing ramp (same direction, same
  // rate).  The engine splits ramps at unrelated decision boundaries
  // (releases, plan checks); those pieces are collinear by construction,
  // so a tight slope tolerance suffices and distinct ramp rates (e.g. a
  // clamped final piece) stay separate.
  if (!(a.duration() > 0.0) || !(b.duration() > 0.0)) return false;
  const double sa = (a.ratio_end - a.ratio_begin) / a.duration();
  const double sb = (b.ratio_end - b.ratio_begin) / b.duration();
  if ((sa > 0.0) != (sb > 0.0)) return false;
  return std::abs(sa - sb) <=
         1e-9 * std::max(1.0, std::max(std::abs(sa), std::abs(sb)));
}

std::vector<Segment> coalesce_segments(const std::vector<Segment>& segments) {
  std::vector<Segment> out;
  out.reserve(segments.size());
  for (const Segment& s : segments) {
    if (!out.empty() && can_coalesce(out.back(), s)) {
      out.back().end = s.end;
      out.back().ratio_end = s.ratio_end;
    } else {
      out.push_back(s);
    }
  }
  return out;
}

void Trace::reserve(std::size_t segments, std::size_t jobs) {
  segments_.reserve(segments);
  jobs_.reserve(jobs);
}

void Trace::add_segment(const Segment& segment) {
  LPFPS_CHECK_MSG(approx_le(segment.begin, segment.end),
                  "segment runs backwards");
  if (approx_equal(segment.begin, segment.end)) return;
  if (!segments_.empty()) {
    LPFPS_CHECK_MSG(approx_equal(segments_.back().end, segment.begin),
                    "segments must be contiguous");
    Segment& last = segments_.back();
    if (can_coalesce(last, segment)) {
      last.end = segment.end;
      last.ratio_end = segment.ratio_end;
      return;
    }
  }
  segments_.push_back(segment);
}

void Trace::add_job(const JobRecord& job) { jobs_.push_back(job); }

Trace Trace::unchecked(std::vector<Segment> segments,
                       std::vector<JobRecord> jobs) {
  Trace trace;
  trace.segments_ = std::move(segments);
  trace.jobs_ = std::move(jobs);
  return trace;
}

Time Trace::time_in_mode(ProcessorMode mode) const {
  Time total = 0.0;
  for (const Segment& s : segments_) {
    if (s.mode == mode) total += s.duration();
  }
  return total;
}

Time Trace::running_time(TaskIndex task) const {
  Time total = 0.0;
  for (const Segment& s : segments_) {
    if (s.mode == ProcessorMode::kRunning && s.task == task) {
      total += s.duration();
    }
  }
  return total;
}

int Trace::preemption_count() const {
  // A preemption shows up as a kRunning segment of task A directly
  // followed (possibly after ramps) by a kRunning segment of task B while
  // A's job has not finished by that boundary.
  int count = 0;
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    const Segment& cur = segments_[i];
    if (cur.mode != ProcessorMode::kRunning) continue;
    // Find the next running segment.
    std::size_t j = i + 1;
    while (j < segments_.size() &&
           segments_[j].mode != ProcessorMode::kRunning) {
      ++j;
    }
    if (j >= segments_.size()) break;
    const Segment& next = segments_[j];
    if (next.task == cur.task) continue;
    // Was cur's task unfinished at the boundary?  Check job records.
    for (const JobRecord& job : jobs_) {
      if (job.task != cur.task) continue;
      if (approx_le(job.release, cur.end) &&
          (!job.finished || definitely_greater(job.completion, cur.end))) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<JobRecord> Trace::missed_jobs() const {
  std::vector<JobRecord> missed;
  for (const JobRecord& job : jobs_) {
    if (job.missed_deadline) missed.push_back(job);
  }
  return missed;
}

void Trace::check_invariants() const {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    LPFPS_CHECK(definitely_less(s.begin, s.end));
    LPFPS_CHECK(s.ratio_begin > 0.0 && s.ratio_begin <= 1.0 + kTimeEpsilon);
    LPFPS_CHECK(s.ratio_end > 0.0 && s.ratio_end <= 1.0 + kTimeEpsilon);
    if (i > 0) {
      LPFPS_CHECK(approx_equal(segments_[i - 1].end, s.begin));
    }
    if (s.mode == ProcessorMode::kRunning) {
      LPFPS_CHECK(s.task != kNoTask);
    }
  }
}

namespace {

char glyph_for(const Segment& s) {
  switch (s.mode) {
    case ProcessorMode::kRunning:
      return '#';
    case ProcessorMode::kIdleBusyWait:
      return '.';
    case ProcessorMode::kPowerDown:
      return '_';
    case ProcessorMode::kWakeUp:
      return 'w';
    case ProcessorMode::kRamping:
      return '/';
  }
  return '?';
}

}  // namespace

std::string render_gantt(const Trace& trace,
                         const std::vector<std::string>& task_names,
                         Time begin, Time end, int width) {
  LPFPS_CHECK(width > 0 && definitely_less(begin, end));
  const double scale = width / (end - begin);
  std::size_t label_width = 4;
  for (const std::string& name : task_names) {
    label_width = std::max(label_width, name.size());
  }

  auto make_row = [&](const std::string& label) {
    std::string row = label;
    row.resize(label_width, ' ');
    row += " |";
    row.append(static_cast<std::size_t>(width), ' ');
    return row;
  };

  std::vector<std::string> rows;
  rows.reserve(task_names.size() + 1);
  for (const std::string& name : task_names) rows.push_back(make_row(name));
  rows.push_back(make_row("cpu"));

  auto paint = [&](std::string& row, Time t0, Time t1, char glyph) {
    const int c0 =
        static_cast<int>(std::max(0.0, (t0 - begin) * scale + 1e-9));
    int c1 = static_cast<int>((t1 - begin) * scale - 1e-9);
    c1 = std::min(c1, width - 1);
    for (int c = c0; c <= c1; ++c) {
      row[label_width + 2 + static_cast<std::size_t>(c)] = glyph;
    }
  };

  for (const Segment& s : trace.segments()) {
    if (approx_le(s.end, begin) || approx_ge(s.begin, end)) continue;
    const Time t0 = std::max(s.begin, begin);
    const Time t1 = std::min(s.end, end);
    if (s.mode == ProcessorMode::kRunning) {
      const auto row_index = static_cast<std::size_t>(s.task);
      LPFPS_CHECK(row_index < task_names.size());
      const bool slowed = s.ratio_begin < 1.0 || s.ratio_end < 1.0;
      paint(rows[row_index], t0, t1, slowed ? 'o' : '#');
    }
    paint(rows.back(), t0, t1, glyph_for(s));
  }

  std::ostringstream os;
  os << std::string(label_width, ' ') << "  " << begin
     << " .. " << end << " us  (#: full speed, o: scaled, .: nop idle, "
        "_: power-down, /: ramp, w: wake)\n";
  for (const std::string& row : rows) os << row << "\n";
  return os.str();
}

std::string render_segments(const Trace& trace,
                            const std::vector<std::string>& task_names) {
  std::ostringstream os;
  os << std::left << std::setw(12) << "begin" << std::setw(12) << "end"
     << std::setw(12) << "mode" << std::setw(10) << "task" << std::setw(14)
     << "speed" << "\n";
  for (const Segment& s : trace.segments()) {
    std::string task = "-";
    if (s.task != kNoTask) {
      const auto index = static_cast<std::size_t>(s.task);
      task = index < task_names.size() ? task_names[index]
                                       : std::to_string(s.task);
    }
    std::ostringstream speed;
    speed << std::setprecision(4) << s.ratio_begin;
    if (s.ratio_begin != s.ratio_end) {
      speed << "->" << std::setprecision(4) << s.ratio_end;
    }
    os << std::left << std::setw(12) << s.begin << std::setw(12) << s.end
       << std::setw(12) << to_string(s.mode) << std::setw(10) << task
       << std::setw(14) << speed.str() << "\n";
  }
  return os.str();
}

}  // namespace lpfps::sim
