// A cancellable, stable-ordered event queue for discrete-event simulation.
//
// Ordering: events are delivered by ascending time; ties are broken by
// ascending Event::priority, then by insertion order (FIFO), so simulation
// runs are fully deterministic.
//
// Cancellation: push() returns an EventId; cancel() lazily invalidates the
// entry (it is skipped when it reaches the top).  The scheduler engine uses
// this for tentative completion events that become stale when the processor
// speed changes or the active task is preempted.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.h"

namespace lpfps::sim {

/// Identifier of a queued event, usable for cancellation.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Enqueues an event and returns its id.
  EventId push(const Event& event);

  /// Invalidates a previously pushed event.  Cancelling an id that was
  /// already popped or cancelled is a no-op (returns false).
  bool cancel(EventId id);

  /// True if no live events remain.
  bool empty() const;

  /// Number of live (non-cancelled) events.
  std::size_t size() const { return live_count_; }

  /// Time of the earliest live event.  Precondition: !empty().
  Time next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Event pop();

  /// Earliest live event without removing it.  Precondition: !empty().
  const Event& peek() const;

 private:
  struct Entry {
    Event event;
    EventId id;
    std::uint64_t sequence;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.event.time != b.event.time) return a.event.time > b.event.time;
      if (a.event.priority != b.event.priority) {
        return a.event.priority > b.event.priority;
      }
      return a.sequence > b.sequence;
    }
  };

  /// Drops cancelled entries from the top of the heap.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  /// Ids of live (pushed, not yet popped, not cancelled) events.
  mutable std::unordered_set<EventId> in_heap_;
  /// Ids cancelled while still physically present in the heap.
  mutable std::unordered_set<EventId> cancelled_;
  std::size_t live_count_ = 0;
  EventId next_id_ = 1;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace lpfps::sim
